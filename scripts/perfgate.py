#!/usr/bin/env python3
"""Wall-time regression gate over benchmark metric snapshots.

Compares every BENCH_*.json present in both a baseline directory (committed
under bench/baselines/) and a candidate directory (freshly produced by the
bench binaries with EVSYS_BENCH_METRICS_DIR). Only gauges whose name ends in
``_wall_s`` are compared — the deterministic artifacts (event counts,
physics gauges) are pinned byte-for-byte by Golden.HotPathArtifacts instead
and must never drift at all.

A candidate wall time more than --threshold (default 15%) above baseline
fails the gate; --warn-only downgrades failures to warnings, which is how
the first CI run seeds confidence before the committed baselines reflect CI
hardware. Improvements are reported, never penalised.

Exit codes: 0 ok (or warn-only), 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_wall_gauges(path: Path) -> dict[str, float]:
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"perfgate: cannot read {path}: {err}", file=sys.stderr)
        raise SystemExit(2) from err
    gauges = snapshot.get("gauges", {})
    return {
        name: float(value)
        for name, value in gauges.items()
        if name.endswith("wall_s") and isinstance(value, (int, float))
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--candidate", required=True, type=Path,
                        help="directory of freshly produced BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional slowdown that fails the gate (default 0.15)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (first-run seeding)")
    args = parser.parse_args()

    for directory in (args.baseline, args.candidate):
        if not directory.is_dir():
            print(f"perfgate: {directory} is not a directory", file=sys.stderr)
            return 2

    baselines = sorted(args.baseline.glob("BENCH_*.json"))
    if not baselines:
        print(f"perfgate: no BENCH_*.json baselines in {args.baseline} — "
              "nothing to gate (commit baselines to arm the gate)")
        return 0

    regressions: list[str] = []
    compared = 0
    for base_path in baselines:
        cand_path = args.candidate / base_path.name
        if not cand_path.is_file():
            print(f"perfgate: {base_path.name}: no candidate produced — skipped")
            continue
        base = load_wall_gauges(base_path)
        cand = load_wall_gauges(cand_path)
        if not base:
            print(f"perfgate: {base_path.name}: baseline has no *_wall_s gauges — skipped")
            continue
        for name, base_s in sorted(base.items()):
            if name not in cand:
                regressions.append(f"{base_path.name}: gauge {name} vanished from candidate")
                continue
            cand_s = cand[name]
            compared += 1
            if base_s <= 0.0:
                print(f"  ? {name}: baseline {base_s:.6f}s not positive — skipped")
                continue
            delta = cand_s / base_s - 1.0
            marker = "OK"
            if delta > args.threshold:
                marker = "REGRESSION"
                regressions.append(
                    f"{base_path.name}: {name} {base_s:.3f}s -> {cand_s:.3f}s "
                    f"(+{delta:.0%}, threshold +{args.threshold:.0%})")
            elif delta < 0:
                marker = "improved"
            print(f"  {marker:>10}  {name}: {base_s:.3f}s -> {cand_s:.3f}s ({delta:+.1%})")

    print(f"perfgate: compared {compared} wall-time gauge(s), "
          f"{len(regressions)} regression(s)")
    for line in regressions:
        print(f"perfgate: {line}", file=sys.stderr)
    if regressions and not args.warn_only:
        return 1
    if regressions:
        print("perfgate: --warn-only set — reporting without failing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
