#!/usr/bin/env bash
# clang-tidy over the evsys sources using the repo .clang-tidy profile.
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed (the default container ships only the GCC toolchain), so the
# sweep is advisory locally and enforced in the CI static-analysis job.
#
#   $ scripts/tidy.sh                 # whole tree
#   $ scripts/tidy.sh src/analysis    # one subtree
#   $ scripts/tidy.sh file1.cpp ...   # explicit files
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
build_dir="$repo_root/build"
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

tidy_bin=$(command -v clang-tidy || true)
if [[ -z "$tidy_bin" ]]; then
  echo "tidy: clang-tidy not found on PATH — skipping (advisory pass)" >&2
  exit 0
fi

# clang-tidy needs a compilation database; configure one if missing.
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    > /dev/null
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "tidy: no compile_commands.json in $build_dir" >&2
  exit 1
fi

# Arguments: directories are expanded to their .cpp files, files pass
# through; no arguments means the whole tree.
files=()
if [[ $# -eq 0 ]]; then
  while IFS= read -r f; do files+=("$f"); done \
    < <(find "$repo_root/src" "$repo_root/tools" -name '*.cpp' | sort)
else
  for arg in "$@"; do
    if [[ -d "$arg" ]]; then
      while IFS= read -r f; do files+=("$f"); done \
        < <(find "$arg" -name '*.cpp' | sort)
    else
      files+=("$arg")
    fi
  done
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "tidy: nothing to check" >&2
  exit 0
fi

echo "==> clang-tidy (${#files[@]} files, $jobs jobs)"
printf '%s\n' "${files[@]}" \
  | xargs -P "$jobs" -I{} "$tidy_bin" -p "$build_dir" --quiet {}
echo "==> tidy clean"
