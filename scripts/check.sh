#!/usr/bin/env bash
# Full verification sweep: build and test the default (Release) configuration
# and an ASan+UBSan configuration. Run from anywhere inside the repository.
#
#   $ scripts/check.sh            # release + asan/ubsan
#   $ scripts/check.sh release    # Release only
#   $ scripts/check.sh sanitize   # ASan+UBSan only
#   $ scripts/check.sh tsan       # ThreadSanitizer only (not part of `all`:
#                                 # TSan and ASan cannot share a process, so
#                                 # it is its own configuration and CI job)
set -euo pipefail

repo_root=$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)
jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
what=${1:-all}

run_config() {
  local name=$1 build_dir=$2
  shift 2
  echo "==> [$name] configure"
  cmake -B "$build_dir" -S "$repo_root" "$@"
  echo "==> [$name] build"
  cmake --build "$build_dir" -j "$jobs"
  echo "==> [$name] ctest"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

case "$what" in
  release|all)
    run_config release "$repo_root/build" -DCMAKE_BUILD_TYPE=Release
    ;;&
  sanitize|all)
    run_config sanitize "$repo_root/build-asan" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEVSYS_SANITIZE=ON
    ;;&
  tsan)
    run_config tsan "$repo_root/build-tsan" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DEVSYS_SANITIZE=thread
    ;;&
  release|sanitize|tsan|all) ;;
  *)
    echo "usage: $0 [release|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "==> all checks passed"
