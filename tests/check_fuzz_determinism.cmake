# Fuzz-campaign determinism contract, run under ctest (see
# tests/CMakeLists.txt):
#   same --seed, rerun           -> byte-identical report
#   --jobs 1 vs --jobs 8         -> byte-identical report
#   the bounded campaign         -> exit 0 (no failures on this seed)
# Expects -DEVSYS=<path to the evsys binary>.
if(NOT DEFINED EVSYS)
  message(FATAL_ERROR "pass -DEVSYS=<binary>")
endif()

set(work "${CMAKE_CURRENT_BINARY_DIR}/fuzz_determinism")
file(MAKE_DIRECTORY "${work}")

function(run_fuzz tag jobs)
  execute_process(
    COMMAND "${EVSYS}" fuzz --seed 5 --count 8 --jobs "${jobs}"
            --out "${work}/${tag}.json"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys fuzz (${tag}) failed with ${code}")
  endif()
endfunction()

run_fuzz(serial_a 1)
run_fuzz(serial_b 1)
run_fuzz(wide 8)

execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${work}/serial_a.json" "${work}/serial_b.json"
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR "same-seed reruns differ in the fuzz report")
endif()
execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${work}/serial_a.json" "${work}/wide.json"
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR "--jobs 1 vs --jobs 8 differ in the fuzz report")
endif()
message(STATUS "deterministic: same seed and any --jobs byte-identical")
