// Unit tests for the observability layer: metric registry semantics and
// determinism, histogram bounds, span sink capacity, the simulator observer,
// and exporter round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ev/obs/export.h"
#include "ev/obs/metric_id.h"
#include "ev/obs/metrics.h"
#include "ev/obs/sim_observer.h"
#include "ev/obs/span_trace.h"
#include "ev/sim/simulator.h"

namespace {

using namespace ev::obs;
using ev::sim::Simulator;
using ev::sim::Time;

// ------------------------------------------------------------- interner ----

TEST(Interner, StableIdsAndLookup) {
  Interner in;
  const MetricId a = in.intern("alpha");
  const MetricId b = in.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("alpha"), a);  // idempotent
  EXPECT_EQ(in.name(a), "alpha");
  EXPECT_TRUE(in.contains("beta"));
  EXPECT_FALSE(in.contains("gamma"));
  EXPECT_EQ(in.size(), 2u);
}

// ------------------------------------------------------------- registry ----

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("events");
  reg.add(c);
  reg.add(c, 9);
  EXPECT_EQ(reg.counter_value(c), 10u);
  EXPECT_EQ(reg.kind(c), MetricKind::kCounter);
}

TEST(Metrics, GaugeSetAndPeak) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("depth");
  reg.set(g, 3.0);
  reg.set_max(g, 1.0);  // lower value does not regress the peak
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 3.0);
  reg.set_max(g, 7.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 7.5);
}

TEST(Metrics, RegistrationIsIdempotentAndKindChecked) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("x");
  EXPECT_EQ(reg.counter("x"), c);
  // Re-registering under a different kind is a caller bug, not a new metric.
  EXPECT_THROW((void)reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("x", 0, 1), std::invalid_argument);
}

TEST(Metrics, HotPathIgnoresInvalidAndMismatchedIds) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("g");
  // None of these may throw or corrupt state: detached instrumentation
  // (kInvalidId) and kind mismatches are silent no-ops by contract.
  reg.add(kInvalidId);
  reg.set(kInvalidId, 1.0);
  reg.observe(kInvalidId, 1.0);
  reg.add(g);           // counter op on a gauge
  reg.observe(g, 2.0);  // histogram op on a gauge
  EXPECT_DOUBLE_EQ(reg.gauge_value(g), 0.0);
}

TEST(Metrics, ReadoutThrowsOnBadId) {
  MetricsRegistry reg;
  const MetricId g = reg.gauge("g");
  EXPECT_THROW((void)reg.counter_value(g), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge_value(MetricId{99}), std::out_of_range);
}

TEST(Metrics, HistogramClampsToBoundaryBins) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("lat", 0.0, 100.0, 10);
  reg.observe(h, -5.0);    // below range -> first bin
  reg.observe(h, 1e9);     // above range -> last bin
  reg.observe(h, 55.0);    // in range
  const ev::util::Histogram& bins = reg.histogram_bins(h);
  EXPECT_EQ(bins.total(), 3u);
  EXPECT_EQ(bins.bin_count(0), 1u);
  EXPECT_EQ(bins.bin_count(9), 1u);
  EXPECT_EQ(bins.bin_count(5), 1u);
  // Streaming stats see the raw (unclamped) values.
  EXPECT_EQ(reg.histogram_stats(h).count(), 3u);
  EXPECT_DOUBLE_EQ(reg.histogram_stats(h).max(), 1e9);
}

TEST(Metrics, RegistrationOrderIsDeterministic) {
  // Two registries fed the same registration sequence hand out the same ids —
  // the property that makes exported snapshots byte-identical across runs.
  MetricsRegistry a, b;
  for (MetricsRegistry* reg : {&a, &b}) {
    (void)reg->counter("one");
    (void)reg->gauge("two");
    (void)reg->histogram("three", 0, 10, 4);
  }
  for (MetricId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.name(id), b.name(id));
    EXPECT_EQ(a.kind(id), b.kind(id));
  }
}

TEST(Metrics, ObserveNanCountsBucketWithoutPoisoningStats) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("lat", 0.0, 10.0, 4);
  reg.observe(h, 5.0);
  reg.observe(h, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(reg.histogram_bins(h).nan_count(), 1u);
  EXPECT_EQ(reg.histogram_bins(h).total(), 2u);
  EXPECT_EQ(reg.histogram_stats(h).count(), 1u);  // NaN never reaches the moments
  EXPECT_DOUBLE_EQ(reg.histogram_stats(h).mean(), 5.0);
  EXPECT_FALSE(std::isnan(reg.histogram_stats(h).min()));
}

TEST(Metrics, MergeSumsCountersMaxesGaugesCombinesHistograms) {
  MetricsRegistry a, b;
  a.add(a.counter("frames"), 3);
  b.add(b.counter("frames"), 4);
  a.set(a.gauge("depth.peak"), 2.0);
  b.set(b.gauge("depth.peak"), 5.0);
  a.observe(a.histogram("lat", 0.0, 10.0, 4), 1.0);
  b.observe(b.histogram("lat", 0.0, 10.0, 4), 9.0);
  b.set(b.gauge("only_b"), -4.0);  // unseen gauge copies, never maxes vs 0

  a.merge(b);
  EXPECT_EQ(a.counter_value(a.counter("frames")), 7u);
  EXPECT_DOUBLE_EQ(a.gauge_value(a.gauge("depth.peak")), 5.0);
  EXPECT_DOUBLE_EQ(a.gauge_value(a.gauge("only_b")), -4.0);
  const MetricId h = a.histogram("lat", 0.0, 10.0, 4);
  EXPECT_EQ(a.histogram_bins(h).total(), 2u);
  EXPECT_EQ(a.histogram_stats(h).count(), 2u);
  EXPECT_EQ(a.histogram_stats(h).min(), 1.0);
  EXPECT_EQ(a.histogram_stats(h).max(), 9.0);
}

TEST(Metrics, MergeSnapshotIsOrderIndependent) {
  // Campaign shards come from the same scenario code, so they register the
  // same names in the same order but accumulate different values. The
  // aggregate must not depend on which shard the fold sees first:
  // merge(A, B) and merge(B, A) export byte-identical JSON.
  const auto make_shard = [](std::uint64_t weight, int samples) {
    MetricsRegistry reg;
    reg.add(reg.counter("bus.frames"), 11 * weight);
    reg.set(reg.gauge("queue.peak"), 3.0 / static_cast<double>(weight));
    const MetricId h = reg.histogram("lat", 0.0, 100.0, 8);
    for (int k = 0; k < samples; ++k)
      reg.observe(h, 1.7 * k * static_cast<double>(weight));
    reg.add(reg.counter("bus.dropped"), weight);
    return reg;
  };
  const auto render = [](const MetricsRegistry& first,
                         const MetricsRegistry& second) {
    MetricsRegistry merged;
    merged.merge(first);
    merged.merge(second);
    std::ostringstream out;
    write_metrics_json(merged, out);
    return out.str();
  };
  const MetricsRegistry a = make_shard(1, 50);
  const MetricsRegistry b = make_shard(3, 20);
  EXPECT_EQ(render(a, b), render(b, a));
}

// ------------------------------------------------------------ span trace ----

TEST(SpanTrace, RecordsBeginAttrEnd) {
  TraceLog log;
  const MetricId name = log.intern("window");
  const MetricId cat = log.intern("partition");
  const MetricId key = log.intern("util");
  const SpanId s = log.begin(name, cat, 1000);
  log.attr(s, key, 0.5);
  log.end(s, 3000);
  ASSERT_EQ(log.spans().size(), 1u);
  const Span& span = log.spans().front();
  EXPECT_EQ(span.begin_ns, 1000);
  EXPECT_EQ(span.end_ns, 3000);
  ASSERT_EQ(span.attr_count, 1);
  EXPECT_EQ(span.attrs[0].key, key);
  EXPECT_DOUBLE_EQ(span.attrs[0].value, 0.5);
}

TEST(SpanTrace, BoundedCapacityCountsDrops) {
  TraceLog log(2);
  const MetricId n = log.intern("s");
  const MetricId c = log.intern("c");
  EXPECT_NE(log.complete(n, c, 0, 1), kInvalidId);
  EXPECT_NE(log.complete(n, c, 1, 2), kInvalidId);
  EXPECT_EQ(log.complete(n, c, 2, 3), kInvalidId);  // full
  EXPECT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  // Operations on the sentinel id are safe no-ops.
  log.attr(kInvalidId, n, 1.0);
  log.end(kInvalidId, 9);
}

// ---------------------------------------------------------- sim observer ----

TEST(SimObserver, CountsAndAttributesEvents) {
  MetricsRegistry reg;
  SimObserver obs(reg);
  Simulator sim;
  sim.set_observer(&obs);
  const ev::sim::EventTag brake = obs.source("brake");
  sim.schedule_periodic(Time::ms(1), Time::ms(1), [] {}, brake);
  const auto doomed = sim.schedule_at(Time::s(2), [] {});
  sim.cancel(doomed);
  sim.run_until(Time::ms(10));
  EXPECT_EQ(reg.counter_value(reg.counter("sim.events_dispatched")), sim.dispatched());
  EXPECT_EQ(reg.counter_value(reg.counter("sim.events_cancelled")), 1u);
  EXPECT_EQ(reg.counter_value(reg.counter("sim.dispatched.brake")), 10u);
  // Every periodic firing lagged exactly one period behind its (re)arming.
  const ev::util::RunningStats& lat = reg.histogram_stats(reg.histogram(
      "sim.dispatch_delay_us", 0.0, 1e6, 64));
  EXPECT_EQ(lat.count(), sim.dispatched());
  EXPECT_DOUBLE_EQ(lat.max(), 1000.0);
  EXPECT_GE(reg.gauge_value(reg.gauge("sim.queue_depth.peak")), 1.0);
}

// -------------------------------------------------------------- exporters ----

TEST(Export, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 3.141592653589793, 1e-30, 6.02e23, 0.1}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  // Shortest form wins: a clean decimal stays clean.
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(3.0), "3");
}

TEST(Export, CsvRoundTripsScalars) {
  MetricsRegistry reg;
  reg.add(reg.counter("frames"), 42);
  reg.set(reg.gauge("util"), 0.375);
  reg.observe(reg.histogram("lat", 0.0, 10.0, 4), 2.5);
  std::ostringstream out;
  write_metrics_csv(reg, out);

  // Parse the kind,name,field,value rows back and check the values survived.
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "kind,name,field,value");
  bool saw_counter = false, saw_gauge = false, saw_hist_count = false;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string kind, name, field, value;
    std::getline(row, kind, ',');
    std::getline(row, name, ',');
    std::getline(row, field, ',');
    std::getline(row, value, ',');
    if (name == "frames" && field == "value") {
      EXPECT_EQ(kind, "counter");
      EXPECT_EQ(value, "42");
      saw_counter = true;
    } else if (name == "util" && field == "value") {
      EXPECT_EQ(std::strtod(value.c_str(), nullptr), 0.375);
      saw_gauge = true;
    } else if (name == "lat" && field == "count") {
      EXPECT_EQ(value, "1");
      saw_hist_count = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist_count);
}

TEST(Export, JsonSnapshotContainsAllSections) {
  MetricsRegistry reg;
  reg.add(reg.counter("frames"), 7);
  reg.set(reg.gauge("util"), 0.5);
  reg.observe(reg.histogram("lat", 0.0, 10.0, 2), 4.0);
  std::ostringstream out;
  write_metrics_json(reg, out);
  const std::string j = out.str();
  EXPECT_NE(j.find("\"frames\": 7"), std::string::npos) << j;
  EXPECT_NE(j.find("\"util\": 0.5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"bins\":[1,0]"), std::string::npos) << j;
}

TEST(Export, JsonSnapshotIsDeterministic) {
  auto render = [] {
    MetricsRegistry reg;
    reg.add(reg.counter("a"), 3);
    reg.set(reg.gauge("b"), 1.0 / 3.0);
    const MetricId h = reg.histogram("c", 0.0, 1.0, 8);
    for (int k = 0; k < 100; ++k) reg.observe(h, 0.01 * k);
    std::ostringstream out;
    write_metrics_json(reg, out);
    return out.str();
  };
  EXPECT_EQ(render(), render());  // byte-identical across identical runs
}

TEST(Export, ChromeTraceEmitsCompleteEvents) {
  TraceLog log;
  const MetricId name = log.intern("ctrl");
  const MetricId cat = log.intern("partition");
  const MetricId key = log.intern("util");
  const SpanId s = log.begin(name, cat, 2'000'000);  // 2 ms in ns
  log.attr(s, key, 0.25);
  log.end(s, 3'500'000);
  (void)log.begin(name, cat, 9'000'000);  // still open: must be skipped
  std::ostringstream out;
  write_chrome_trace(log, out);
  const std::string j = out.str();
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"name\":\"ctrl\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"partition\""), std::string::npos);
  // ts/dur are microseconds; parse them so the exact decimal rendering
  // (plain vs exponent form) is not part of the contract.
  const auto number_after = [&](const char* tag) {
    const std::size_t pos = j.find(tag);
    EXPECT_NE(pos, std::string::npos) << tag;
    return std::strtod(j.c_str() + pos + std::string(tag).size(), nullptr);
  };
  EXPECT_DOUBLE_EQ(number_after("\"ts\":"), 2000.0);
  EXPECT_DOUBLE_EQ(number_after("\"dur\":"), 1500.0);
  EXPECT_DOUBLE_EQ(number_after("\"util\":"), 0.25);
  // Exactly one event: the open span produced none.
  EXPECT_EQ(j.find("\"ph\":\"X\"", j.find("\"ph\":\"X\"") + 1), std::string::npos);
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), '\n');
}

}  // namespace
