// Unit tests for the discrete-event kernel and the trace recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ev/sim/simulator.h"
#include "ev/sim/trace.h"

namespace {

using ev::sim::Simulator;
using ev::sim::Time;
using ev::sim::Trace;

TEST(Time, FactoryAndConversion) {
  EXPECT_EQ(Time::us(1).count_ns(), 1000);
  EXPECT_EQ(Time::ms(2).count_ns(), 2'000'000);
  EXPECT_EQ(Time::s(1).count_ns(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Time::seconds(0.5).to_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(Time::ms(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::us(250).to_us(), 250.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::ms(10);
  const Time b = Time::ms(3);
  EXPECT_EQ((a + b).count_ns(), Time::ms(13).count_ns());
  EXPECT_EQ((a - b).count_ns(), Time::ms(7).count_ns());
  EXPECT_EQ((a * 3).count_ns(), Time::ms(30).count_ns());
  EXPECT_EQ(a / b, 3);
  EXPECT_EQ((a % b).count_ns(), Time::ms(1).count_ns());
  EXPECT_LT(b, a);
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::s(2).to_string(), "2 s");
  EXPECT_EQ(Time::ms(5).to_string(), "5 ms");
  EXPECT_EQ(Time::us(7).to_string(), "7 us");
  EXPECT_EQ(Time::ns(9).to_string(), "9 ns");
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(Time::ms(30), [&] { fired.push_back(3); });
  sim.schedule_at(Time::ms(10), [&] { fired.push_back(1); });
  sim.schedule_at(Time::ms(20), [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::ms(30));
}

TEST(Simulator, FifoTieBreakAtEqualTimes) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(Time::ms(5), [&fired, i] { fired.push_back(i); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time seen;
  sim.schedule_at(Time::ms(10), [&] {
    sim.schedule_in(Time::ms(5), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, Time::ms(15));
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(Time::ms(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(Time::ms(5), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(Time::ms(10), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicRepeatsUntilCancelled) {
  Simulator sim;
  int count = 0;
  ev::sim::EventId id = 0;
  id = sim.schedule_periodic(Time::ms(10), Time::ms(10), [&] {
    if (++count == 5) sim.cancel(id);
  });
  sim.run_until(Time::s(1));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicExactTimestamps) {
  Simulator sim;
  std::vector<Time> at;
  const auto id = sim.schedule_periodic(Time::ms(3), Time::ms(7),
                                        [&] { at.push_back(sim.now()); });
  sim.run_until(Time::ms(25));
  sim.cancel(id);
  ASSERT_EQ(at.size(), 4u);  // 3, 10, 17, 24 ms
  EXPECT_EQ(at[0], Time::ms(3));
  EXPECT_EQ(at[3], Time::ms(24));
}

TEST(Simulator, PeriodicAfterOverloadIsDelayRelative) {
  Simulator sim;
  sim.schedule_at(Time::ms(4), [] {});
  sim.run_until(Time::ms(4));  // now = 4 ms
  std::vector<Time> at;
  const auto id = sim.schedule_periodic(ev::sim::After{Time::ms(3)}, Time::ms(10),
                                        [&] { at.push_back(sim.now()); });
  sim.run_until(Time::ms(30));
  sim.cancel(id);
  ASSERT_EQ(at.size(), 3u);  // 7, 17, 27 ms — first firing now + delay
  EXPECT_EQ(at[0], Time::ms(7));
  EXPECT_EQ(at[2], Time::ms(27));
}

namespace {
struct RecordingObserver final : Simulator::Observer {
  int scheduled = 0, dispatched = 0, cancelled = 0;
  std::size_t peak_pending = 0;
  ev::sim::Time last_delay{};
  std::vector<ev::sim::EventTag> tags;
  void on_scheduled(ev::sim::EventId, Time, Time, std::size_t pending) noexcept override {
    ++scheduled;
    peak_pending = std::max(peak_pending, pending);
  }
  void on_dispatched(ev::sim::EventId, Time at, Time enqueued_at, std::size_t,
                     ev::sim::EventTag tag) noexcept override {
    ++dispatched;
    last_delay = at - enqueued_at;
    tags.push_back(tag);
  }
  void on_cancelled(ev::sim::EventId, std::size_t) noexcept override { ++cancelled; }
};
}  // namespace

TEST(Simulator, ObserverSeesLifecycleAndTags) {
  Simulator sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  constexpr ev::sim::EventTag kBrakeTag = 7;
  sim.schedule_at(Time::ms(1), [] {}, kBrakeTag);
  sim.schedule_at(Time::ms(2), [] {});
  const auto doomed = sim.schedule_at(Time::ms(3), [] {});
  sim.cancel(doomed);
  sim.run_until(Time::ms(10));
  EXPECT_EQ(obs.scheduled, 3);
  EXPECT_EQ(obs.dispatched, 2);
  EXPECT_EQ(obs.cancelled, 1);
  EXPECT_EQ(obs.peak_pending, 3u);
  EXPECT_EQ(sim.dispatched(), 2u);
  ASSERT_EQ(obs.tags.size(), 2u);
  EXPECT_EQ(obs.tags[0], kBrakeTag);
  EXPECT_EQ(obs.tags[1], ev::sim::kUntagged);
}

TEST(Simulator, ObserverDispatchDelayIsEnqueueToFire) {
  Simulator sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  sim.schedule_at(Time::ms(5), [&] { sim.schedule_in(Time::ms(2), [] {}); });
  sim.run_until(Time::ms(10));
  // The nested event was enqueued at t=5 and fired at t=7.
  EXPECT_EQ(obs.last_delay, Time::ms(2));
}

TEST(Simulator, ObserverPeriodicDelayResetEachCycle) {
  Simulator sim;
  RecordingObserver obs;
  sim.set_observer(&obs);
  const auto id = sim.schedule_periodic(Time::ms(10), Time::ms(10), [] {});
  sim.run_until(Time::ms(35));
  sim.cancel(id);
  EXPECT_EQ(obs.dispatched, 3);
  // Each firing's delay is one period, not the cumulative age of the event.
  EXPECT_EQ(obs.last_delay, Time::ms(10));
}

TEST(Simulator, RunUntilAdvancesClockToBoundary) {
  Simulator sim;
  sim.schedule_at(Time::ms(5), [] {});
  const std::size_t n = sim.run_until(Time::ms(100));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(sim.now(), Time::ms(100));
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(Time::ms(200), [&] { late_fired = true; });
  sim.run_until(Time::ms(100));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(late_fired);
}

TEST(Simulator, StepSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::ms(1), [&] { ++fired; });
  sim.schedule_at(Time::ms(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, HandlerMaySchedule) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(Time::us(1), chain);
  };
  sim.schedule_at(Time{}, chain);
  sim.run();
  EXPECT_EQ(depth, 10);
}

TEST(Simulator, PeriodicHandlerCancelSelfInsideHandler) {
  Simulator sim;
  int count = 0;
  ev::sim::EventId id = sim.schedule_periodic(Time::ms(1), Time::ms(1), [&] { ++count; });
  sim.schedule_at(Time::ms(3) + Time::us(1), [&] { sim.cancel(id); });
  sim.run_until(Time::ms(100));
  EXPECT_EQ(count, 3);
}

// --- arena event queue -------------------------------------------------------

TEST(ArenaQueue, CancelDuringFireSuppressesSameTimestampVictims) {
  Simulator sim;
  std::vector<int> fired;
  ev::sim::EventId victim1 = ev::sim::kNoEvent;
  ev::sim::EventId victim2 = ev::sim::kNoEvent;
  sim.schedule_at(Time::ms(1), [&] {
    fired.push_back(0);
    EXPECT_TRUE(sim.cancel(victim1));
    EXPECT_TRUE(sim.cancel(victim2));
  });
  victim1 = sim.schedule_at(Time::ms(1), [&] { fired.push_back(1); });
  sim.schedule_at(Time::ms(1), [&] { fired.push_back(2); });
  victim2 = sim.schedule_at(Time::ms(1), [&] { fired.push_back(3); });
  sim.run_until(Time::ms(2));
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

TEST(ArenaQueue, StaleIdAfterSlotReuseDoesNotCancelNewTenant) {
  Simulator sim;
  int fired = 0;
  const ev::sim::EventId id1 = sim.schedule_at(Time::ms(1), [&] { ++fired; });
  ASSERT_TRUE(sim.cancel(id1));  // releases the slot to the free list
  const ev::sim::EventId id2 = sim.schedule_at(Time::ms(1), [&] { fired += 10; });
  EXPECT_NE(id1, id2);
  EXPECT_FALSE(sim.cancel(id1));  // stale generation must miss the new tenant
  sim.run_until(Time::ms(2));
  EXPECT_EQ(fired, 10);
}

TEST(ArenaQueue, RescheduleStormRecyclesSlots) {
  Simulator sim;
  // 64 chains, each handler releasing its slot and re-acquiring a fresh one
  // per hop. The arena must recycle indices without unbounded growth and the
  // handlers (this + scalars) must stay inside EventFn's inline buffer.
  struct Chain {
    Simulator* sim;
    int hops_left;
    std::uint64_t* fired;
    void arm() {
      if (hops_left-- == 0) return;
      sim->schedule_in(Time::us(7), [this] {
        ++*fired;
        arm();
      });
    }
  };
  std::uint64_t fired = 0;
  std::vector<std::unique_ptr<Chain>> chains;
  const std::uint64_t before = ev::sim::EventFn::heap_constructions();
  for (int i = 0; i < 64; ++i) {
    chains.push_back(std::make_unique<Chain>(Chain{&sim, 1000, &fired}));
    chains.back()->arm();
  }
  sim.run();
  EXPECT_EQ(fired, 64u * 1000u);
  EXPECT_EQ(ev::sim::EventFn::heap_constructions(), before);
}

TEST(ArenaQueue, MillionEventChurnStaysAllocationFree) {
  Simulator sim;
  constexpr int kBatch = 512;
  constexpr int kRounds = 2000;  // 512 * 2000 > 1M one-shot events
  std::uint64_t fired = 0;
  // Warm-up: push the slab, free list, and heap to their peak footprint.
  for (int i = 0; i < kBatch; ++i)
    sim.schedule_in(Time::us(1 + i), [&fired] { ++fired; });
  sim.run();
  const std::uint64_t baseline = ev::sim::EventFn::heap_constructions();
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kBatch; ++i)
      sim.schedule_in(Time::us(1 + i), [&fired] { ++fired; });
    sim.run();
  }
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kBatch) * (kRounds + 1));
  // Steady-state churn must not construct a single handler on the heap.
  EXPECT_EQ(ev::sim::EventFn::heap_constructions(), baseline);
}

// --- RAII event ownership ----------------------------------------------------

TEST(ScheduledHandle, CancelsOnDestruction) {
  Simulator sim;
  int fired = 0;
  {
    ev::sim::ScheduledHandle handle{sim,
                                    sim.schedule_at(Time::ms(1), [&] { ++fired; })};
    EXPECT_TRUE(handle.active());
  }
  sim.run_until(Time::ms(2));
  EXPECT_EQ(fired, 0);
}

TEST(ScheduledHandle, ReleaseDetachesWithoutCancelling) {
  Simulator sim;
  int fired = 0;
  ev::sim::EventId raw = ev::sim::kNoEvent;
  {
    ev::sim::ScheduledHandle handle{sim,
                                    sim.schedule_at(Time::ms(1), [&] { ++fired; })};
    raw = handle.release();
    EXPECT_FALSE(handle.active());
  }
  EXPECT_NE(raw, ev::sim::kNoEvent);
  sim.run_until(Time::ms(2));
  EXPECT_EQ(fired, 1);
}

TEST(ScheduledHandle, MoveTransfersOwnership) {
  Simulator sim;
  int fired = 0;
  ev::sim::ScheduledHandle a{sim, sim.schedule_at(Time::ms(1), [&] { ++fired; })};
  ev::sim::ScheduledHandle b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_TRUE(b.active());
  EXPECT_TRUE(b.cancel());
  EXPECT_FALSE(b.cancel());  // idempotent
  sim.run_until(Time::ms(2));
  EXPECT_EQ(fired, 0);
}

TEST(ScheduledHandle, AssignCancelsPreviousEvent) {
  Simulator sim;
  int first = 0;
  int second = 0;
  ev::sim::ScheduledHandle handle{sim,
                                  sim.schedule_at(Time::ms(1), [&] { ++first; })};
  handle = ev::sim::ScheduledHandle{sim,
                                    sim.schedule_at(Time::ms(1), [&] { ++second; })};
  sim.run_until(Time::ms(2));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Trace, RecordsAndStats) {
  Trace t("signal");
  t.record(Time::ms(0), 1.0);
  t.record(Time::ms(10), 3.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.name(), "signal");
  EXPECT_DOUBLE_EQ(t.stats().mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.last(), 3.0);
}

TEST(Trace, SampleAtInterpolates) {
  Trace t;
  t.record(Time::ms(0), 0.0);
  t.record(Time::ms(10), 10.0);
  EXPECT_DOUBLE_EQ(t.sample_at(Time::ms(5)), 5.0);
  EXPECT_DOUBLE_EQ(t.sample_at(Time::ms(-5)), 0.0);   // clamp below
  EXPECT_DOUBLE_EQ(t.sample_at(Time::ms(50)), 10.0);  // clamp above
}

TEST(Trace, SampleAtEmptyThrows) {
  Trace t;
  EXPECT_THROW((void)t.sample_at(Time::ms(1)), std::out_of_range);
}

}  // namespace
