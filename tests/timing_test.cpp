// Unit tests for the timing-analysis substrate: concrete caches (LRU, FIFO,
// PLRU), the program model and generator, abstract must-analysis, the
// precise collecting analysis, WCET bounds, and scratchpad allocation.
#include <gtest/gtest.h>

#include "ev/timing/analysis.h"
#include "ev/timing/cache.h"
#include "ev/timing/program.h"
#include "ev/timing/spm.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::timing;

constexpr std::uint64_t line(std::uint64_t k) { return 0x1000 + 64 * k; }

CacheConfig tiny_cache(Replacement policy, std::size_t ways = 2) {
  CacheConfig c;
  c.sets = 1;  // fully associative within one set: simplest to reason about
  c.ways = ways;
  c.policy = policy;
  return c;
}

// ---------------------------------------------------------------- caches ----

TEST(CacheSim, LruEvictsLeastRecent) {
  CacheSim c(tiny_cache(Replacement::kLru, 2));
  EXPECT_FALSE(c.access(line(0)));
  EXPECT_FALSE(c.access(line(1)));
  EXPECT_TRUE(c.access(line(0)));   // touch 0 -> 1 becomes LRU
  EXPECT_FALSE(c.access(line(2)));  // evicts 1
  EXPECT_TRUE(c.access(line(0)));
  EXPECT_FALSE(c.access(line(1)));  // 1 was evicted
}

TEST(CacheSim, FifoIgnoresHits) {
  CacheSim c(tiny_cache(Replacement::kFifo, 2));
  EXPECT_FALSE(c.access(line(0)));
  EXPECT_FALSE(c.access(line(1)));
  EXPECT_TRUE(c.access(line(0)));   // hit does NOT refresh insertion order
  EXPECT_FALSE(c.access(line(2)));  // evicts 0 (oldest by insertion)
  EXPECT_FALSE(c.access(line(0)));  // 0 gone — the FIFO anomaly vs LRU
}

TEST(CacheSim, PlruTracksTreeBits) {
  CacheSim c(tiny_cache(Replacement::kPlru, 4));
  for (int k = 0; k < 4; ++k) EXPECT_FALSE(c.access(line(static_cast<std::uint64_t>(k))));
  for (int k = 0; k < 4; ++k) EXPECT_TRUE(c.access(line(static_cast<std::uint64_t>(k))));
  EXPECT_FALSE(c.access(line(9)));  // one of the four is evicted
  // Probe membership on copies so the probes themselves cannot evict.
  int hits = 0;
  for (int k = 0; k < 4; ++k) {
    CacheSim probe = c;
    if (probe.access(line(static_cast<std::uint64_t>(k)))) ++hits;
  }
  EXPECT_EQ(hits, 3);  // exactly one victim was chosen
}

TEST(CacheSim, SetIndexingSeparatesLines) {
  CacheConfig cfg;
  cfg.sets = 4;
  cfg.ways = 1;
  CacheSim c(cfg);
  // Lines mapping to different sets do not evict each other.
  EXPECT_FALSE(c.access(0 * 64));
  EXPECT_FALSE(c.access(1 * 64));
  EXPECT_TRUE(c.access(0 * 64));
  EXPECT_TRUE(c.access(1 * 64));
  // Same set, different tag: conflict.
  EXPECT_FALSE(c.access(4 * 64));
  EXPECT_FALSE(c.access(0 * 64));
}

TEST(CacheSim, CycleAccounting) {
  CacheConfig cfg = tiny_cache(Replacement::kLru);
  cfg.hit_cycles = 1;
  cfg.miss_cycles = 10;
  CacheSim c(cfg);
  (void)c.access(line(0));  // miss
  (void)c.access(line(0));  // hit
  EXPECT_EQ(c.cycles(), 11);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheSim, PlruRequiresPowerOfTwo) {
  CacheConfig cfg = tiny_cache(Replacement::kPlru, 3);
  EXPECT_THROW(CacheSim{cfg}, std::invalid_argument);
}

// --------------------------------------------------------------- program ----

TEST(Program, GeneratorProducesAcyclicCfg) {
  ev::util::Rng rng(41);
  ProgramGenConfig cfg;
  cfg.segments = 12;
  const Program p = generate_program(cfg, rng);
  EXPECT_GT(p.blocks.size(), 11u);
  EXPECT_NO_THROW((void)p.topological_order());
  EXPECT_GT(p.access_count(), 100u);
  EXPECT_GE(p.path_count(), 1.0);
}

TEST(Program, PathCountGrowsWithDiamonds) {
  ev::util::Rng rng1(1), rng2(1);
  ProgramGenConfig few;
  few.segments = 4;
  few.branch_probability = 0.0;
  ProgramGenConfig many;
  many.segments = 10;
  many.branch_probability = 1.0;
  EXPECT_EQ(generate_program(few, rng1).path_count(), 1.0);
  EXPECT_EQ(generate_program(many, rng2).path_count(), 1024.0);  // 2^10
}

TEST(Program, DeterministicForSeed) {
  ev::util::Rng a(5), b(5);
  ProgramGenConfig cfg;
  const Program pa = generate_program(cfg, a);
  const Program pb = generate_program(cfg, b);
  ASSERT_EQ(pa.blocks.size(), pb.blocks.size());
  for (std::size_t i = 0; i < pa.blocks.size(); ++i)
    EXPECT_EQ(pa.blocks[i].accesses, pb.blocks[i].accesses);
}

// ----------------------------------------------------------- must analysis ----

Program straight_line(std::vector<std::vector<std::uint64_t>> accesses) {
  Program p;
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    BasicBlock b;
    b.id = static_cast<int>(i);
    b.accesses = std::move(accesses[i]);
    if (i + 1 < accesses.size()) b.successors = {static_cast<int>(i + 1)};
    p.blocks.push_back(std::move(b));
  }
  return p;
}

TEST(MustAnalysis, RepeatedAccessClassifiedHit) {
  const Program p = straight_line({{line(0), line(0)}});
  const AnalysisResult r = must_analysis(p, tiny_cache(Replacement::kLru));
  EXPECT_EQ(r.blocks[0].first_iteration[0], Classification::kNotClassified);  // cold
  EXPECT_EQ(r.blocks[0].first_iteration[1], Classification::kAlwaysHit);
}

TEST(MustAnalysis, JoinLosesOneSidedLines) {
  // Diamond: then-branch loads line 1, else-branch does not; after the join
  // line 1 must not be classified as a hit.
  Program p;
  p.blocks.resize(4);
  p.blocks[0] = {0, {line(0)}, 1, {1, 2}};
  p.blocks[1] = {1, {line(1)}, 1, {3}};
  p.blocks[2] = {2, {line(2)}, 1, {3}};
  p.blocks[3] = {3, {line(1)}, 1, {}};
  const AnalysisResult r = must_analysis(p, tiny_cache(Replacement::kLru, 4));
  EXPECT_EQ(r.blocks[3].first_iteration[0], Classification::kNotClassified);
}

TEST(MustAnalysis, LoopSteadyStateHits) {
  // A loop block re-touching its working set: steady iterations all hit.
  Program p = straight_line({{line(0), line(1)}});
  p.blocks[0].iterations = 10;
  const AnalysisResult r = must_analysis(p, tiny_cache(Replacement::kLru, 4));
  EXPECT_EQ(r.blocks[0].steady_state[0], Classification::kAlwaysHit);
  EXPECT_EQ(r.blocks[0].steady_state[1], Classification::kAlwaysHit);
}

TEST(MustAnalysis, FifoGetsFewerGuarantees) {
  ev::util::Rng rng(43);
  ProgramGenConfig cfg;
  cfg.segments = 8;
  const Program p = generate_program(cfg, rng);
  const CacheConfig lru = {8, 4, 64, 1, 20, Replacement::kLru};
  const CacheConfig fifo = {8, 4, 64, 1, 20, Replacement::kFifo};
  auto count_hits = [](const AnalysisResult& r) {
    std::size_t n = 0;
    for (const auto& b : r.blocks)
      for (auto c : b.first_iteration)
        if (c == Classification::kAlwaysHit) ++n;
    return n;
  };
  EXPECT_GE(count_hits(must_analysis(p, lru)), count_hits(must_analysis(p, fifo)));
}

// Soundness property: every access the must-analysis classifies as
// AlwaysHit really hits on random concrete executions.
class MustSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MustSoundness, AlwaysHitNeverMisses) {
  ev::util::Rng rng(GetParam());
  ProgramGenConfig gen;
  gen.segments = 8;
  const Program p = generate_program(gen, rng);
  const CacheConfig cfg = {4, 2, 64, 1, 20, Replacement::kLru};
  const AnalysisResult r = must_analysis(p, cfg);

  ev::util::Rng path_rng(GetParam() + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    CacheSim sim(cfg);
    int id = p.topological_order().front();
    while (true) {
      const BasicBlock& b = p.blocks[static_cast<std::size_t>(id)];
      for (std::int64_t iter = 0; iter < b.iterations; ++iter) {
        for (std::size_t a = 0; a < b.accesses.size(); ++a) {
          const bool hit = sim.access(b.accesses[a]);
          const Classification cls =
              iter == 0 ? r.blocks[static_cast<std::size_t>(id)].first_iteration[a]
                        : r.blocks[static_cast<std::size_t>(id)].steady_state[a];
          if (cls == Classification::kAlwaysHit) {
            ASSERT_TRUE(hit) << "unsound AlwaysHit in block " << id << " access " << a;
          }
        }
      }
      if (b.successors.empty()) break;
      id = b.successors[static_cast<std::size_t>(
          path_rng.uniform_int(0, static_cast<std::int64_t>(b.successors.size()) - 1))];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MustSoundness, ::testing::Values(1, 2, 3, 4, 5));

// ----------------------------------------------------- collecting analysis ----

TEST(Collecting, ExactOnStraightLine) {
  const Program p = straight_line({{line(0), line(1), line(0)}});
  const AnalysisResult r = collecting_analysis(p, tiny_cache(Replacement::kLru, 2));
  EXPECT_EQ(r.blocks[0].first_iteration[0], Classification::kAlwaysMiss);
  EXPECT_EQ(r.blocks[0].first_iteration[1], Classification::kAlwaysMiss);
  EXPECT_EQ(r.blocks[0].first_iteration[2], Classification::kAlwaysHit);
}

TEST(Collecting, AtLeastAsPreciseAsMust) {
  ev::util::Rng rng(47);
  ProgramGenConfig gen;
  gen.segments = 6;
  const Program p = generate_program(gen, rng);
  const CacheConfig cfg = {4, 2, 64, 1, 20, Replacement::kLru};
  const std::int64_t bound_must = wcet_bound_cycles(p, cfg, must_analysis(p, cfg));
  const std::int64_t bound_coll = wcet_bound_cycles(p, cfg, collecting_analysis(p, cfg));
  EXPECT_LE(bound_coll, bound_must);
}

TEST(Collecting, DegradesGracefullyAtStateCap) {
  ev::util::Rng rng(49);
  ProgramGenConfig gen;
  gen.segments = 10;
  gen.branch_probability = 1.0;
  const Program p = generate_program(gen, rng);
  const CacheConfig cfg = {4, 2, 64, 1, 20, Replacement::kLru};
  // Absurdly small cap: the analysis must still terminate and stay sound
  // (degraded blocks classify NotClassified = miss in the bound).
  const AnalysisResult capped = collecting_analysis(p, cfg, 2);
  const std::int64_t bound_capped = wcet_bound_cycles(p, cfg, capped);
  const std::int64_t exact = exact_wcet_cycles(p, cfg);
  ASSERT_GE(exact, 0);
  EXPECT_GE(bound_capped, exact);
}

// ------------------------------------------------------------------ WCET ----

TEST(Wcet, BoundDominatesExactDominatesObserved) {
  ev::util::Rng rng(51);
  ProgramGenConfig gen;
  gen.segments = 7;
  const Program p = generate_program(gen, rng);
  const CacheConfig cfg = {8, 2, 64, 1, 20, Replacement::kLru};

  const std::int64_t bound = wcet_bound_cycles(p, cfg, must_analysis(p, cfg));
  const std::int64_t exact = exact_wcet_cycles(p, cfg);
  ev::util::Rng sample_rng(52);
  const std::int64_t observed = observed_wcet_cycles(p, cfg, 200, sample_rng);

  ASSERT_GE(exact, 0);
  EXPECT_GE(bound, exact);
  EXPECT_GE(exact, observed);
  EXPECT_GT(observed, 0);
}

TEST(Wcet, ExactRefusesHugePathCounts) {
  ev::util::Rng rng(53);
  ProgramGenConfig gen;
  gen.segments = 30;
  gen.branch_probability = 1.0;  // 2^30 paths
  const Program p = generate_program(gen, rng);
  EXPECT_EQ(exact_wcet_cycles(p, {8, 2, 64, 1, 20, Replacement::kLru}, 1e6), -1);
}

TEST(Wcet, LongestPathPicksWorseBranch) {
  // Diamond where the else-branch is far more expensive.
  Program p;
  p.blocks.resize(4);
  p.blocks[0] = {0, {line(0)}, 1, {1, 2}};
  p.blocks[1] = {1, {line(1)}, 1, {3}};
  p.blocks[2] = {2, {line(2), line(3), line(4), line(5)}, 1, {3}};
  p.blocks[3] = {3, {line(0)}, 1, {}};
  const CacheConfig cfg = {1, 8, 64, 1, 20, Replacement::kLru};
  const std::int64_t bound = wcet_bound_cycles(p, cfg, must_analysis(p, cfg));
  // Worst path: 0 (miss) + else (4 misses) + join (hit on line 0) = 5*20 + 1.
  EXPECT_EQ(bound, 101);
}

// ------------------------------------------------------------------- SPM ----

TEST(Spm, AllocationPrefersHotLines) {
  Program p = straight_line({{line(0), line(0), line(0), line(1)}});
  SpmConfig cfg;
  cfg.capacity_lines = 1;
  const SpmAllocation alloc = allocate_spm(p, cfg);
  ASSERT_EQ(alloc.lines.size(), 1u);
  EXPECT_TRUE(alloc.lines.contains(line(0)));
}

TEST(Spm, WcetExactlyPredictable) {
  Program p = straight_line({{line(0), line(1), line(0)}});
  SpmConfig cfg;
  cfg.capacity_lines = 1;
  const SpmAllocation alloc = allocate_spm(p, cfg);
  // line(0): 2 accesses in SPM (1 cycle), line(1): memory (20 cycles).
  EXPECT_EQ(alloc.wcet_cycles, 2 * 1 + 20);
  EXPECT_EQ(alloc.total_static_accesses, 3);
  EXPECT_EQ(alloc.spm_static_accesses, 2);
}

TEST(Spm, MoreCapacityNeverHurts) {
  ev::util::Rng rng(55);
  ProgramGenConfig gen;
  gen.segments = 8;
  const Program p = generate_program(gen, rng);
  SpmConfig small;
  small.capacity_lines = 4;
  SpmConfig big;
  big.capacity_lines = 32;
  EXPECT_GE(allocate_spm(p, small).wcet_cycles, allocate_spm(p, big).wcet_cycles);
}

TEST(Spm, IterationWeightedFrequency) {
  // A loop block's line beats a one-shot line for the single SPM slot.
  Program p = straight_line({{line(0)}, {line(1)}});
  p.blocks[1].iterations = 50;
  SpmConfig cfg;
  cfg.capacity_lines = 1;
  const SpmAllocation alloc = allocate_spm(p, cfg);
  EXPECT_TRUE(alloc.lines.contains(line(1)));
}

}  // namespace
