# Bit-exactness contract of the hot-path rework (SoA cell batch, arena event
# queue, zero-copy publish), run under ctest (see tests/CMakeLists.txt): the
# deterministic artifacts of E2/E17/E18 and the evsys run/campaign reports
# must stay byte-identical to the goldens captured from the pre-rework tree
# (tests/data/golden/). Any drift means the optimisation changed simulated
# behaviour, not just its cost.
# Expects -DBENCH_E2=, -DBENCH_E17=, -DBENCH_E18=, -DEVSYS=, -DSOURCE_DIR=.
foreach(var BENCH_E2 BENCH_E17 BENCH_E18 EVSYS SOURCE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

set(golden_dir "${SOURCE_DIR}/tests/data/golden")
set(work_dir "${CMAKE_CURRENT_BINARY_DIR}/hot_path_goldens")
file(MAKE_DIRECTORY "${work_dir}")

function(compare_or_die produced golden what)
  execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                  "${produced}" "${golden}"
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR
      "${what}: ${produced} differs from golden ${golden} — the hot-path "
      "rework changed simulated behaviour (bit-exactness contract broken)")
  endif()
  message(STATUS "byte-identical: ${what}")
endfunction()

# --- benchmark artifacts (each bench writes BENCH_*.json into its cwd) -------
foreach(pair IN ITEMS
    "${BENCH_E2};BENCH_e2_cell_balancing.json"
    "${BENCH_E17};BENCH_e17_fault_injection.json"
    "${BENCH_E18};BENCH_e18_scenario_vehicle.json")
  list(GET pair 0 bench)
  list(GET pair 1 artifact)
  execute_process(COMMAND "${bench}"
                  WORKING_DIRECTORY "${work_dir}"
                  RESULT_VARIABLE code
                  OUTPUT_QUIET ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${bench} failed with ${code}")
  endif()
  compare_or_die("${work_dir}/${artifact}" "${golden_dir}/${artifact}" "${artifact}")
endforeach()

# --- evsys single run + seed-ladder campaign ---------------------------------
set(scenario "${SOURCE_DIR}/examples/scenarios/city_commute.scn")
execute_process(COMMAND "${EVSYS}" run "${scenario}"
                --out "${work_dir}/city_commute.result.json"
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "evsys run failed with ${code}")
endif()
compare_or_die("${work_dir}/city_commute.result.json"
               "${golden_dir}/golden_city_commute.result.json"
               "evsys run report")

execute_process(COMMAND "${EVSYS}" campaign "${scenario}" --seeds 4 --jobs 2
                --out "${work_dir}/city_commute.campaign.json"
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "evsys campaign failed with ${code}")
endif()
compare_or_die("${work_dir}/city_commute.campaign.json"
               "${golden_dir}/golden_city_commute.campaign.json"
               "evsys campaign report")
