// Unit tests for the security layer: SHA-256 and HMAC against published
// test vectors, ChaCha20 against RFC 8439, the authenticated secure channel,
// and the charging-session attack/defence matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "ev/security/chacha20.h"
#include "ev/security/charging.h"
#include "ev/security/hmac.h"
#include "ev/security/secure_channel.h"
#include "ev/security/sha256.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::security;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string hex_of(std::span<const std::uint8_t> data) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : data) {
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

// -------------------------------------------------------------- SHA-256 ----

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const auto msg = bytes_of("abc");
  EXPECT_EQ(hex_of(Sha256::hash(msg)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto msg = bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(hex_of(Sha256::hash(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto msg = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); i += 7)
    h.update(std::span<const std::uint8_t>(msg.data() + i, std::min<std::size_t>(7, msg.size() - i)));
  EXPECT_EQ(hex_of(h.finish()), hex_of(Sha256::hash(msg)));
}

// ----------------------------------------------------------------- HMAC ----

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto msg = bytes_of("Hi There");
  EXPECT_EQ(hex_of(hmac_sha256(key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  const auto msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(hex_of(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hex_of(hmac_sha256(key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(ConstantTime, EqualAndUnequal) {
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{1, 2, 3};
  const std::vector<std::uint8_t> c{1, 2, 4};
  const std::vector<std::uint8_t> d{1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

TEST(DeriveKey, ContextSeparation) {
  const auto master = bytes_of("master-secret-material");
  const Key k1 = derive_key(master, bytes_of("enc"));
  const Key k2 = derive_key(master, bytes_of("mac"));
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, derive_key(master, bytes_of("enc")));  // deterministic
  EXPECT_EQ(derive_key(master, bytes_of("enc"), 16).size(), 16u);
  EXPECT_THROW(derive_key(master, bytes_of("x"), 64), std::invalid_argument);
}

// -------------------------------------------------------------- ChaCha20 ----

TEST(ChaCha20, Rfc8439Vector) {
  // RFC 8439 section 2.4.2 test vector.
  std::vector<std::uint8_t> key(32);
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::vector<std::uint8_t> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                           0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  ChaCha20 cipher(key, nonce, 1);
  const auto ct = cipher.transform(plaintext);
  EXPECT_EQ(hex_of(std::span<const std::uint8_t>(ct.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(ct.size(), plaintext.size());
}

TEST(ChaCha20, RoundTrip) {
  std::vector<std::uint8_t> key(32, 7);
  std::vector<std::uint8_t> nonce(12, 9);
  const auto msg = bytes_of("attack at dawn");
  ChaCha20 enc(key, nonce);
  ChaCha20 dec(key, nonce);
  EXPECT_EQ(dec.transform(enc.transform(msg)), msg);
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  std::vector<std::uint8_t> short_key(16);
  std::vector<std::uint8_t> nonce(12);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  std::vector<std::uint8_t> key(32);
  std::vector<std::uint8_t> short_nonce(8);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

// --------------------------------------------------------- secure channel ----

Key test_key() { return bytes_of("a-32-byte-long-pre-shared-key!!!"); }

TEST(SecureChannel, RoundTrip) {
  SecureChannel sender(test_key(), 1);
  SecureChannel receiver(test_key(), 1);
  const auto msg = bytes_of("torque=120Nm");
  const auto wire = sender.protect(msg);
  EXPECT_EQ(wire.size(), msg.size() + sender.overhead_bytes());
  ChannelStatus status;
  const auto plain = receiver.unprotect(wire, &status);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(status, ChannelStatus::kOk);
  EXPECT_EQ(*plain, msg);
}

TEST(SecureChannel, DetectsTampering) {
  SecureChannel sender(test_key(), 1);
  SecureChannel receiver(test_key(), 1);
  auto wire = sender.protect(bytes_of("brake=0.4"));
  wire[6] ^= 0x01;  // flip one ciphertext bit
  ChannelStatus status;
  EXPECT_FALSE(receiver.unprotect(wire, &status).has_value());
  EXPECT_EQ(status, ChannelStatus::kBadTag);
  EXPECT_EQ(receiver.rejected_bad_tag(), 1u);
}

TEST(SecureChannel, RejectsReplay) {
  SecureChannel sender(test_key(), 1);
  SecureChannel receiver(test_key(), 1);
  const auto wire = sender.protect(bytes_of("unlock"));
  ASSERT_TRUE(receiver.unprotect(wire).has_value());
  ChannelStatus status;
  EXPECT_FALSE(receiver.unprotect(wire, &status).has_value());
  EXPECT_EQ(status, ChannelStatus::kReplayed);
}

TEST(SecureChannel, WrongKeyFails) {
  SecureChannel sender(test_key(), 1);
  SecureChannel receiver(bytes_of("completely-different-key-here!!!"), 1);
  const auto wire = sender.protect(bytes_of("hello"));
  ChannelStatus status;
  EXPECT_FALSE(receiver.unprotect(wire, &status).has_value());
  EXPECT_EQ(status, ChannelStatus::kBadTag);
}

TEST(SecureChannel, ChannelIdSeparatesKeys) {
  SecureChannel sender(test_key(), 1);
  SecureChannel receiver(test_key(), 2);  // different logical channel
  const auto wire = sender.protect(bytes_of("hello"));
  EXPECT_FALSE(receiver.unprotect(wire).has_value());
}

TEST(SecureChannel, MalformedTooShort) {
  SecureChannel receiver(test_key(), 1);
  ChannelStatus status;
  EXPECT_FALSE(receiver.unprotect(std::vector<std::uint8_t>{1, 2, 3}, &status).has_value());
  EXPECT_EQ(status, ChannelStatus::kMalformed);
}

TEST(SecureChannel, CanPayloadCannotCarryProtectedMessage) {
  // The paper's point: 8-byte CAN payloads cannot even hold the counter +
  // truncated tag, let alone data.
  SecureChannel ch(test_key(), 1);
  EXPECT_FALSE(ch.max_plaintext(8).has_value());
  // Ethernet payloads fit comfortably.
  const auto eth = ch.max_plaintext(1500);
  ASSERT_TRUE(eth.has_value());
  EXPECT_GT(*eth, 1400u);
}

TEST(SecureChannel, UnencryptedModeStillAuthenticated) {
  ChannelConfig cfg;
  cfg.encrypt = false;
  SecureChannel sender(test_key(), 1, cfg);
  SecureChannel receiver(test_key(), 1, cfg);
  const auto msg = bytes_of("soc=55%");
  auto wire = sender.protect(msg);
  // Plaintext is visible on the wire...
  EXPECT_NE(std::search(wire.begin(), wire.end(), msg.begin(), msg.end()), wire.end());
  // ...but tampering is still detected.
  wire[5] ^= 1;
  EXPECT_FALSE(receiver.unprotect(wire).has_value());
}

TEST(SecureChannel, ValidatesConfig) {
  EXPECT_THROW(SecureChannel(test_key(), 1, ChannelConfig{2, 4, true}),
               std::invalid_argument);
  EXPECT_THROW(SecureChannel(test_key(), 1, ChannelConfig{8, 1, true}),
               std::invalid_argument);
}

// --------------------------------------------------------------- charging ----

struct ChargingCase {
  MitmAttacker::Attack attack;
  bool authenticate;
  bool expect_fraud;  // billed != delivered or V2G accepted
};

class ChargingMatrix : public ::testing::TestWithParam<ChargingCase> {};

TEST_P(ChargingMatrix, AttackOutcomeMatchesDefence) {
  const ChargingCase c = GetParam();
  ev::util::Rng rng(61);
  MitmAttacker attacker(c.attack);
  ChargingConfig cfg;
  cfg.authenticate = c.authenticate;
  const Key credential = bytes_of("vehicle-provisioned-credential-k");
  const SessionOutcome out =
      run_charging_session(credential, cfg, attacker, 11.0, 600.0, rng);
  ASSERT_TRUE(out.completed);
  // Fraud = the attacker gained something: inflated billing or an accepted
  // forged command. (Under authentication a tampering attacker can still
  // deny service — billed < delivered — which is detected, not fraud.)
  const bool fraud = out.billed_kwh > out.delivered_kwh + 1e-9 ||
                     out.accepted_v2g_commands > 0;
  EXPECT_EQ(fraud, c.expect_fraud)
      << "billed=" << out.billed_kwh << " delivered=" << out.delivered_kwh
      << " v2g=" << out.accepted_v2g_commands;
  if (c.authenticate && c.attack != MitmAttacker::Attack::kNone) {
    EXPECT_GT(out.rejected_messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AttackDefenceMatrix, ChargingMatrix,
    ::testing::Values(
        ChargingCase{MitmAttacker::Attack::kNone, false, false},
        ChargingCase{MitmAttacker::Attack::kNone, true, false},
        ChargingCase{MitmAttacker::Attack::kInflateBilling, false, true},
        ChargingCase{MitmAttacker::Attack::kInflateBilling, true, false},
        ChargingCase{MitmAttacker::Attack::kInjectV2g, false, true},
        ChargingCase{MitmAttacker::Attack::kInjectV2g, true, false},
        ChargingCase{MitmAttacker::Attack::kReplayMeter, false, true},
        ChargingCase{MitmAttacker::Attack::kReplayMeter, true, false}));

TEST(Charging, AuthenticatedSessionBillsExactly) {
  ev::util::Rng rng(63);
  MitmAttacker none(MitmAttacker::Attack::kNone);
  ChargingConfig cfg;
  const SessionOutcome out =
      run_charging_session(bytes_of("credential"), cfg, none, 22.0, 3600.0, rng);
  EXPECT_TRUE(out.authenticated);
  EXPECT_NEAR(out.billed_kwh, 22.0, 1e-6);
  EXPECT_NEAR(out.delivered_kwh, 22.0, 1e-6);
}

TEST(Charging, InflationTriplesUnprotectedBill) {
  ev::util::Rng rng(65);
  MitmAttacker attacker(MitmAttacker::Attack::kInflateBilling);
  ChargingConfig cfg;
  cfg.authenticate = false;
  const SessionOutcome out =
      run_charging_session(bytes_of("credential"), cfg, attacker, 10.0, 600.0, rng);
  EXPECT_NEAR(out.billed_kwh, 3.0 * out.delivered_kwh, 1e-9);
  EXPECT_GT(attacker.tampered(), 0u);
}

}  // namespace
