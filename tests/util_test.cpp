// Unit tests for ev::util — math helpers, deterministic RNG, statistics,
// table rendering, CRC, and the bounded ring buffer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "ev/util/crc.h"
#include "ev/util/math.h"
#include "ev/util/ring_buffer.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"
#include "ev/util/table.h"
#include "ev/util/units.h"

namespace {

using namespace ev::util;

// ---------------------------------------------------------------- math ----

TEST(Math, ClampBounds) {
  EXPECT_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Math, LerpEndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(Math, SignFunction) {
  EXPECT_EQ(sign(3.2), 1);
  EXPECT_EQ(sign(-0.1), -1);
  EXPECT_EQ(sign(0.0), 0);
}

TEST(Math, WrapAngleIntoRange) {
  EXPECT_NEAR(wrap_angle(3.0 * kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_angle(-0.5), kTwoPi - 0.5, 1e-12);
  EXPECT_NEAR(wrap_angle_signed(kTwoPi - 0.25), -0.25, 1e-12);
}

TEST(Math, ApproxEqualTolerances) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.01));
  EXPECT_TRUE(approx_equal(1e9, 1e9 + 0.5, 1e-9, 1e-9));
}

TEST(Math, IntegerHelpers) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(10000, 25000), 50000);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(kmh_to_mps(36.0), 10.0);
  EXPECT_DOUBLE_EQ(mps_to_kmh(10.0), 36.0);
  EXPECT_NEAR(rpm_to_rad_s(60.0), kTwoPi, 1e-9);
  EXPECT_NEAR(rad_s_to_rpm(rpm_to_rad_s(1234.0)), 1234.0, 1e-9);
  EXPECT_DOUBLE_EQ(wh_to_j(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(j_to_kwh(3.6e6), 1.0);
  EXPECT_DOUBLE_EQ(ah_to_coulomb(2.0), 7200.0);
}

// ----------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  bool seen[6] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.uniform_int(0, 5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UniformIntFullRangeReturnsRawDraw) {
  // lo = INT64_MIN, hi = INT64_MAX makes the span wrap to zero; the draw
  // must come back unreduced instead of hitting a modulo by zero.
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  Rng a(21);
  Rng b(21);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform_int(lo, hi), static_cast<std::int64_t>(b.next_u64()));
}

TEST(Rng, UniformIntNearFullRangeStaysInBounds) {
  // One below the full span: still wider than any positive int64, so the
  // reduction has to happen in the unsigned domain to avoid overflow.
  constexpr std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 1;
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, UniformIntConsumesOneDrawPerCall) {
  // The full-range special case must not change how much state a call
  // advances, so downstream draws stay aligned across range choices.
  Rng a(23);
  Rng b(23);
  (void)a.uniform_int(std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max());
  (void)b.uniform_int(0, 5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanApproximate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.08);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// --------------------------------------------------------------- stats ----

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.range(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.range(), 0.0);
}

TEST(RunningStats, EmptyMinMaxAreIdentityElements) {
  // The documented empty-state contract: min() = +inf and max() = -inf, so
  // any real sample (or merge) replaces them. The old zero-initialised
  // state silently absorbed all-positive or all-negative streams.
  RunningStats s;
  EXPECT_EQ(s.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.max(), -std::numeric_limits<double>::infinity());
  s.add(4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  RunningStats negative;
  negative.add(-3.0);
  EXPECT_EQ(negative.min(), -3.0);
  EXPECT_EQ(negative.max(), -3.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  RunningStats whole, left, right;
  for (int i = 0; i < 40; ++i) {
    const double x = 0.37 * i - 5.0;
    whole.add(x);
    (i < 17 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
}

TEST(RunningStats, MergeIsBitwiseCommutative) {
  // The campaign fold depends on merge(A,B) == merge(B,A) down to the last
  // bit — every subexpression in the merge is symmetric in its operands.
  RunningStats a, b;
  for (int i = 0; i < 23; ++i) a.add(1.0 / (i + 1));
  for (int i = 0; i < 9; ++i) b.add(-7.25 * i + 0.125);
  RunningStats ab = a;
  ab.merge(b);
  RunningStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.mean(), ba.mean());
  EXPECT_EQ(ab.variance(), ba.variance());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats filled;
  filled.add(1.0);
  filled.add(3.0);
  RunningStats empty;
  RunningStats from_empty = empty;
  from_empty.merge(filled);
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.mean(), 2.0);
  filled.merge(empty);
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_EQ(filled.min(), 1.0);
  EXPECT_EQ(filled.max(), 3.0);
}

TEST(SampleSeries, PercentilesExact) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(SampleSeries, PercentileAfterMoreSamples) {
  SampleSeries s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(20.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, ExtremeValuesClampWithoutOverflow) {
  // ±1e308 (and ±inf) used to be cast to an integer bin index while far
  // outside its range — undefined behaviour. They must clamp in the double
  // domain first and land in the edge bins.
  Histogram h(0.0, 10.0, 10);
  h.add(1e308);
  h.add(-1e308);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.nan_count(), 0u);
}

TEST(Histogram, NanLandsInDedicatedBucket) {
  Histogram h(0.0, 10.0, 4);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::nan(""));
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
  std::size_t binned = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) binned += h.bin_count(i);
  EXPECT_EQ(binned + h.nan_count(), h.total());
}

TEST(Histogram, MergeAddsCountsAndChecksShape) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(1.5);
  b.add(9.9);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(4), 1u);
  EXPECT_EQ(a.nan_count(), 1u);
  Histogram other_shape(0.0, 10.0, 6);
  EXPECT_THROW(a.merge(other_shape), std::invalid_argument);
  Histogram other_range(0.0, 12.0, 5);
  EXPECT_THROW(a.merge(other_range), std::invalid_argument);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------------- table ----

TEST(Table, RendersAlignedColumns) {
  Table t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "22");
}

TEST(Table, RejectsMismatchedRow) {
  Table t("x", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t("", {"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, FixedAndSiAndPercent) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.256, 1), "25.6%");
  EXPECT_EQ(fmt_si(1500.0, 1), "1.5 k");
  EXPECT_EQ(fmt_si(0.002, 1), "2.0 m");
}

// ----------------------------------------------------------------- crc ----

TEST(Crc, Crc32KnownVector) {
  const char* s = "123456789";
  const auto crc = crc32_ieee(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);  // canonical check value
}

TEST(Crc, Crc32EmptyIsZero) {
  EXPECT_EQ(crc32_ieee({}), 0x00000000u);
}

TEST(Crc, Crc15DetectsChange) {
  std::uint8_t a[4] = {1, 2, 3, 4};
  std::uint8_t b[4] = {1, 2, 3, 5};
  EXPECT_NE(crc15_can(a), crc15_can(b));
  EXPECT_LT(crc15_can(a), 1u << 15);  // 15-bit result
}

TEST(Crc, Crc15Deterministic) {
  std::uint8_t a[8] = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4};
  EXPECT_EQ(crc15_can(a), crc15_can(a));
}

// --------------------------------------------------------- ring buffer ----

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_FALSE(rb.push(4));  // full
  EXPECT_EQ(rb.pop().value(), 1);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop().value(), 2);
  EXPECT_EQ(rb.pop().value(), 3);
  EXPECT_EQ(rb.pop().value(), 4);
  EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, FrontAndClear) {
  RingBuffer<std::string> rb(2);
  EXPECT_THROW((void)rb.front(), std::out_of_range);
  ASSERT_TRUE(rb.push("x"));
  EXPECT_EQ(rb.front(), "x");
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), 2u);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

// Property sweep: push/pop sequences preserve count invariants.
class RingBufferProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingBufferProperty, SizeNeverExceedsCapacity) {
  const std::size_t cap = GetParam();
  RingBuffer<int> rb(cap);
  Rng rng(cap);
  std::size_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.bernoulli(0.6)) {
      if (rb.push(i)) ++expected;
    } else {
      if (rb.pop().has_value()) --expected;
    }
    EXPECT_EQ(rb.size(), expected);
    EXPECT_LE(rb.size(), cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferProperty,
                         ::testing::Values(1, 2, 7, 64));

}  // namespace
