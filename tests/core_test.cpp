// Unit tests for the core architecture model: the reference function
// network, federated/integrated synthesis, evaluation metrics, and the
// whole-vehicle co-simulation.
#include <gtest/gtest.h>

#include <set>

#include "ev/core/architecture.h"
#include "ev/core/cosim.h"
#include "ev/core/evaluation.h"
#include "ev/core/synthesis.h"

namespace {

using namespace ev::core;

// --------------------------------------------------------- architecture ----

TEST(ReferenceNetwork, WellFormed) {
  const FunctionNetwork net = reference_function_network();
  EXPECT_GE(net.functions.size(), 25u);
  EXPECT_GE(net.signals.size(), 20u);
  for (const SignalSpec& s : net.signals) {
    EXPECT_LT(s.from, net.functions.size());
    EXPECT_LT(s.to, net.functions.size());
    EXPECT_NE(s.from, s.to);
  }
  for (const FunctionSpec& f : net.functions) {
    EXPECT_GT(f.period_us, 0);
    EXPECT_GT(f.wcet_us, 0);
    EXPECT_LT(f.wcet_us, f.period_us);
  }
}

TEST(ReferenceNetwork, ScaleGrowsSystem) {
  const auto base = reference_function_network(1);
  const auto big = reference_function_network(5);
  EXPECT_GT(big.functions.size(), base.functions.size());
  EXPECT_GT(big.signals.size(), base.signals.size());
}

TEST(ReferenceNetwork, CoversAllDomains) {
  const auto net = reference_function_network();
  std::set<Domain> domains;
  for (const auto& f : net.functions) domains.insert(f.domain);
  EXPECT_EQ(domains.size(), 5u);
}

TEST(BusTech, PropertiesOrdered) {
  EXPECT_LT(bit_rate_of(BusTech::kLin), bit_rate_of(BusTech::kCan));
  EXPECT_LT(bit_rate_of(BusTech::kCan), bit_rate_of(BusTech::kFlexRay));
  EXPECT_LT(bit_rate_of(BusTech::kFlexRay), bit_rate_of(BusTech::kEthernet));
  EXPECT_EQ(to_string(BusTech::kFlexRay), "FlexRay");
  EXPECT_EQ(to_string(Domain::kChassis), "chassis");
}

// ------------------------------------------------------------ synthesis ----

TEST(Federated, OneEcuPerFunction) {
  const auto net = reference_function_network();
  const Architecture arch = synthesize_federated(net);
  EXPECT_EQ(arch.ecus.size(), net.functions.size());
  EXPECT_EQ(arch.style, "federated");
  EXPECT_EQ(arch.gateway_count, 1u);
  // One bus per populated domain.
  EXPECT_EQ(arch.buses.size(), 5u);
  // Every function mapped exactly once.
  for (std::size_t f = 0; f < net.functions.size(); ++f)
    EXPECT_NO_THROW((void)arch.ecu_of(f));
}

TEST(Federated, EcusAttachedToDomainBuses) {
  const Architecture arch = synthesize_federated(reference_function_network());
  std::size_t attached = 0;
  for (const BusInstance& bus : arch.buses) attached += bus.attached_ecus.size();
  EXPECT_EQ(attached, arch.ecus.size());
}

TEST(Integrated, ConsolidatesDramatically) {
  const auto net = reference_function_network();
  const Architecture fed = synthesize_federated(net);
  const Architecture integ = synthesize_integrated(net);
  EXPECT_LT(integ.ecus.size(), fed.ecus.size() / 3);
  EXPECT_EQ(integ.buses.size(), 1u);
  EXPECT_EQ(integ.gateway_count, 0u);
  // Mapping is total and disjoint.
  std::set<std::size_t> mapped;
  for (const EcuInstance& e : integ.ecus)
    for (std::size_t f : e.hosted_functions) EXPECT_TRUE(mapped.insert(f).second);
  EXPECT_EQ(mapped.size(), net.functions.size());
}

TEST(Integrated, SegregationWithoutPartitionsNeedsMoreEcus) {
  const auto net = reference_function_network();
  IntegratedOptions with;
  with.partitioned_middleware = true;
  IntegratedOptions without;
  without.partitioned_middleware = false;
  EXPECT_GE(synthesize_integrated(net, without).ecus.size(),
            synthesize_integrated(net, with).ecus.size());
}

TEST(Integrated, RespectUtilizationBound) {
  const auto net = reference_function_network(4);
  IntegratedOptions opt;
  const Architecture arch = synthesize_integrated(net, opt);
  const ArchitectureMetrics m = evaluate(arch);
  EXPECT_LE(m.max_utilization, opt.utilization_bound + 1e-9);
}

// ------------------------------------------------------------ evaluation ----

TEST(Evaluation, IntegratedBeatsFederatedOnCostAndWiring) {
  const auto net = reference_function_network();
  const ArchitectureMetrics fed = evaluate(synthesize_federated(net));
  const ArchitectureMetrics integ = evaluate(synthesize_integrated(net));
  EXPECT_LT(integ.ecu_count, fed.ecu_count);
  EXPECT_LT(integ.wiring_m, fed.wiring_m);
  EXPECT_LT(integ.hardware_cost, fed.hardware_cost);
  // Consolidation converts network signals into ECU-local ones.
  EXPECT_GT(integ.local_signals, fed.local_signals);
  EXPECT_LT(integ.cross_ecu_signals, fed.cross_ecu_signals);
}

TEST(Evaluation, FederatedHasLowUtilization) {
  const auto net = reference_function_network();
  const ArchitectureMetrics fed = evaluate(synthesize_federated(net));
  // One function per ECU: hardware mostly idle (the paper's inefficiency).
  EXPECT_LT(fed.mean_utilization, 0.2);
  const ArchitectureMetrics integ = evaluate(synthesize_integrated(net));
  EXPECT_GT(integ.mean_utilization, fed.mean_utilization);
}

TEST(Evaluation, BusLoadsFeasible) {
  const auto net = reference_function_network();
  EXPECT_TRUE(evaluate(synthesize_federated(net)).buses_feasible);
  EXPECT_TRUE(evaluate(synthesize_integrated(net)).buses_feasible);
}

TEST(Evaluation, LocalSignalDetection) {
  FunctionNetwork net;
  net.functions.push_back({"a", Domain::kComfort, Criticality::kQm, 10000, 100});
  net.functions.push_back({"b", Domain::kComfort, Criticality::kQm, 10000, 100});
  net.signals.push_back({"a->b", 0, 1, 8, 10000});
  const Architecture integ = synthesize_integrated(net);
  ASSERT_EQ(integ.ecus.size(), 1u);
  EXPECT_TRUE(integ.signal_is_local(net.signals[0]));
  const ArchitectureMetrics m = evaluate(integ);
  EXPECT_EQ(m.local_signals, 1u);
  EXPECT_EQ(m.cross_ecu_signals, 0u);
}

// ----------------------------------------------------------------- cosim ----

TEST(CoSim, ShortUrbanDriveBindsAllLayers) {
  VehicleSystemConfig cfg;
  VehicleSystem vs(cfg);
  // A trimmed cycle keeps the test fast.
  ev::powertrain::CycleBuilder b("short");
  b.ramp_to(40.0, 15.0).cruise(30.0).stop(10.0, 5.0);
  const auto cycle = std::move(b).build();
  const CoSimResult r = vs.run(cycle);

  EXPECT_GT(r.cycle.distance_km, 0.2);
  EXPECT_GT(r.bms_frames_published, 100u);
  // Real pack data reached the infotainment domain through the gateway.
  EXPECT_GT(r.bms_frames_at_hmi, 100u);
  EXPECT_GT(r.bms_to_hmi_latency_ms, 0.0);
  EXPECT_LT(r.bms_to_hmi_latency_ms, 50.0);
  // The range SOA service was exercised and answers plausibly.
  EXPECT_GT(r.range_service_calls, 0u);
  EXPECT_GT(r.last_range_km, 10.0);
}

TEST(CoSim, NetworkCarriesBackgroundTraffic) {
  VehicleSystemConfig cfg;
  VehicleSystem vs(cfg);
  ev::powertrain::CycleBuilder b("mini");
  b.ramp_to(30.0, 10.0).stop(8.0, 2.0);
  (void)vs.run(std::move(b).build());
  for (auto* bus : vs.network().buses()) EXPECT_GT(bus->delivered_count(), 0u);
}

}  // namespace
