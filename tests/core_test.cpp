// Unit tests for the core architecture model: the reference function
// network, federated/integrated synthesis, evaluation metrics, and the
// whole-vehicle co-simulation.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>

#include "ev/config/scenario.h"
#include "ev/core/architecture.h"
#include "ev/core/cosim.h"
#include "ev/core/evaluation.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/core/synthesis.h"
#include "ev/faults/degradation.h"

namespace {

using namespace ev::core;

// --------------------------------------------------------- architecture ----

TEST(ReferenceNetwork, WellFormed) {
  const FunctionNetwork net = reference_function_network();
  EXPECT_GE(net.functions.size(), 25u);
  EXPECT_GE(net.signals.size(), 20u);
  for (const SignalSpec& s : net.signals) {
    EXPECT_LT(s.from, net.functions.size());
    EXPECT_LT(s.to, net.functions.size());
    EXPECT_NE(s.from, s.to);
  }
  for (const FunctionSpec& f : net.functions) {
    EXPECT_GT(f.period_us, 0);
    EXPECT_GT(f.wcet_us, 0);
    EXPECT_LT(f.wcet_us, f.period_us);
  }
}

TEST(ReferenceNetwork, ScaleGrowsSystem) {
  const auto base = reference_function_network(1);
  const auto big = reference_function_network(5);
  EXPECT_GT(big.functions.size(), base.functions.size());
  EXPECT_GT(big.signals.size(), base.signals.size());
}

TEST(ReferenceNetwork, CoversAllDomains) {
  const auto net = reference_function_network();
  std::set<Domain> domains;
  for (const auto& f : net.functions) domains.insert(f.domain);
  EXPECT_EQ(domains.size(), 5u);
}

TEST(BusTech, PropertiesOrdered) {
  EXPECT_LT(bit_rate_of(BusTech::kLin), bit_rate_of(BusTech::kCan));
  EXPECT_LT(bit_rate_of(BusTech::kCan), bit_rate_of(BusTech::kFlexRay));
  EXPECT_LT(bit_rate_of(BusTech::kFlexRay), bit_rate_of(BusTech::kEthernet));
  EXPECT_EQ(to_string(BusTech::kFlexRay), "FlexRay");
  EXPECT_EQ(to_string(Domain::kChassis), "chassis");
}

// ------------------------------------------------------------ synthesis ----

TEST(Federated, OneEcuPerFunction) {
  const auto net = reference_function_network();
  const Architecture arch = synthesize_federated(net);
  EXPECT_EQ(arch.ecus.size(), net.functions.size());
  EXPECT_EQ(arch.style, "federated");
  EXPECT_EQ(arch.gateway_count, 1u);
  // One bus per populated domain.
  EXPECT_EQ(arch.buses.size(), 5u);
  // Every function mapped exactly once.
  for (std::size_t f = 0; f < net.functions.size(); ++f)
    EXPECT_NO_THROW((void)arch.ecu_of(f));
}

TEST(Federated, EcusAttachedToDomainBuses) {
  const Architecture arch = synthesize_federated(reference_function_network());
  std::size_t attached = 0;
  for (const BusInstance& bus : arch.buses) attached += bus.attached_ecus.size();
  EXPECT_EQ(attached, arch.ecus.size());
}

TEST(Integrated, ConsolidatesDramatically) {
  const auto net = reference_function_network();
  const Architecture fed = synthesize_federated(net);
  const Architecture integ = synthesize_integrated(net);
  EXPECT_LT(integ.ecus.size(), fed.ecus.size() / 3);
  EXPECT_EQ(integ.buses.size(), 1u);
  EXPECT_EQ(integ.gateway_count, 0u);
  // Mapping is total and disjoint.
  std::set<std::size_t> mapped;
  for (const EcuInstance& e : integ.ecus)
    for (std::size_t f : e.hosted_functions) EXPECT_TRUE(mapped.insert(f).second);
  EXPECT_EQ(mapped.size(), net.functions.size());
}

TEST(Integrated, SegregationWithoutPartitionsNeedsMoreEcus) {
  const auto net = reference_function_network();
  IntegratedOptions with;
  with.partitioned_middleware = true;
  IntegratedOptions without;
  without.partitioned_middleware = false;
  EXPECT_GE(synthesize_integrated(net, without).ecus.size(),
            synthesize_integrated(net, with).ecus.size());
}

TEST(Integrated, RespectUtilizationBound) {
  const auto net = reference_function_network(4);
  IntegratedOptions opt;
  const Architecture arch = synthesize_integrated(net, opt);
  const ArchitectureMetrics m = evaluate(arch);
  EXPECT_LE(m.max_utilization, opt.utilization_bound + 1e-9);
}

// ------------------------------------------------------------ evaluation ----

TEST(Evaluation, IntegratedBeatsFederatedOnCostAndWiring) {
  const auto net = reference_function_network();
  const ArchitectureMetrics fed = evaluate(synthesize_federated(net));
  const ArchitectureMetrics integ = evaluate(synthesize_integrated(net));
  EXPECT_LT(integ.ecu_count, fed.ecu_count);
  EXPECT_LT(integ.wiring_m, fed.wiring_m);
  EXPECT_LT(integ.hardware_cost, fed.hardware_cost);
  // Consolidation converts network signals into ECU-local ones.
  EXPECT_GT(integ.local_signals, fed.local_signals);
  EXPECT_LT(integ.cross_ecu_signals, fed.cross_ecu_signals);
}

TEST(Evaluation, FederatedHasLowUtilization) {
  const auto net = reference_function_network();
  const ArchitectureMetrics fed = evaluate(synthesize_federated(net));
  // One function per ECU: hardware mostly idle (the paper's inefficiency).
  EXPECT_LT(fed.mean_utilization, 0.2);
  const ArchitectureMetrics integ = evaluate(synthesize_integrated(net));
  EXPECT_GT(integ.mean_utilization, fed.mean_utilization);
}

TEST(Evaluation, BusLoadsFeasible) {
  const auto net = reference_function_network();
  EXPECT_TRUE(evaluate(synthesize_federated(net)).buses_feasible);
  EXPECT_TRUE(evaluate(synthesize_integrated(net)).buses_feasible);
}

TEST(Evaluation, LocalSignalDetection) {
  FunctionNetwork net;
  net.functions.push_back({"a", Domain::kComfort, Criticality::kQm, 10000, 100});
  net.functions.push_back({"b", Domain::kComfort, Criticality::kQm, 10000, 100});
  net.signals.push_back({"a->b", 0, 1, 8, 10000});
  const Architecture integ = synthesize_integrated(net);
  ASSERT_EQ(integ.ecus.size(), 1u);
  EXPECT_TRUE(integ.signal_is_local(net.signals[0]));
  const ArchitectureMetrics m = evaluate(integ);
  EXPECT_EQ(m.local_signals, 1u);
  EXPECT_EQ(m.cross_ecu_signals, 0u);
}

// ----------------------------------------------------------------- cosim ----

TEST(CoSim, ShortUrbanDriveBindsAllLayers) {
  VehicleSystemConfig cfg;
  VehicleSystem vs(cfg);
  // A trimmed cycle keeps the test fast.
  ev::powertrain::CycleBuilder b("short");
  b.ramp_to(40.0, 15.0).cruise(30.0).stop(10.0, 5.0);
  const auto cycle = std::move(b).build();
  const CoSimResult r = vs.run(cycle);

  EXPECT_GT(r.cycle.distance_km, 0.2);
  EXPECT_GT(r.bms_frames_published, 100u);
  // Real pack data reached the infotainment domain through the gateway.
  EXPECT_GT(r.bms_frames_at_hmi, 100u);
  EXPECT_GT(r.bms_to_hmi_latency_ms, 0.0);
  EXPECT_LT(r.bms_to_hmi_latency_ms, 50.0);
  // The range SOA service was exercised and answers plausibly.
  EXPECT_GT(r.range_service_calls, 0u);
  EXPECT_GT(r.last_range_km, 10.0);
}

TEST(CoSim, NetworkCarriesBackgroundTraffic) {
  VehicleSystemConfig cfg;
  VehicleSystem vs(cfg);
  ev::powertrain::CycleBuilder b("mini");
  b.ramp_to(30.0, 10.0).stop(8.0, 2.0);
  (void)vs.run(std::move(b).build());
  for (auto* bus : vs.network().buses()) EXPECT_GT(bus->delivered_count(), 0u);
}

TEST(CoSim, NonPositiveTimingConfigThrows) {
  VehicleSystemConfig cfg;
  cfg.control_period_s = 0.0;
  EXPECT_THROW(VehicleSystem{cfg}, std::invalid_argument);
  cfg = VehicleSystemConfig{};
  cfg.control_period_s = -0.1;
  EXPECT_THROW(VehicleSystem{cfg}, std::invalid_argument);
  cfg = VehicleSystemConfig{};
  cfg.bms_publish_period_s = 0.0;
  EXPECT_THROW(VehicleSystem{cfg}, std::invalid_argument);
  cfg = VehicleSystemConfig{};
  cfg.middleware_frame_us = 0;
  EXPECT_THROW(VehicleSystem{cfg}, std::invalid_argument);
  cfg = VehicleSystemConfig{};
  EXPECT_NO_THROW(VehicleSystem{cfg});
}

// ------------------------------------------------------------- subsystems ----

ev::powertrain::DriveCycle short_cycle() {
  // Gentle enough (slow ramp, soft braking) that a fault-free drive stays
  // in normal mode, but fast enough (60 km/h cruise) that the limp-home
  // speed cap (~45 km/h) bites.
  ev::powertrain::CycleBuilder b("short");
  b.ramp_to(60.0, 15.0).cruise(25.0).stop(20.0, 5.0);
  return std::move(b).build();
}

TEST(Subsystems, FindSubsystemLocatesAttachedAdapters) {
  VehicleSystem vs{VehicleSystemConfig{}};
  EXPECT_EQ(vs.find_subsystem<ObservabilitySubsystem>(), nullptr);
  auto& obs = vs.attach(std::make_unique<ObservabilitySubsystem>());
  EXPECT_EQ(vs.find_subsystem<ObservabilitySubsystem>(), &obs);
  EXPECT_EQ(vs.find_subsystem<FaultsSubsystem>(), nullptr);
}

TEST(Subsystems, SnapshotsLandInCoSimResult) {
  VehicleSystem vs{VehicleSystemConfig{}};
  (void)vs.attach(std::make_unique<ObservabilitySubsystem>());
  (void)vs.attach(std::make_unique<HealthSubsystem>());
  const CoSimResult r = vs.run(short_cycle());
  ASSERT_EQ(r.subsystems.size(), 2u);
  EXPECT_EQ(r.subsystems[0].name, "obs");
  EXPECT_EQ(r.subsystems[1].name, "health");
  // The obs snapshot carries a non-trivial event count.
  ASSERT_FALSE(r.subsystems[0].values.empty());
  EXPECT_EQ(r.subsystems[0].values[0].first, "events_dispatched");
  EXPECT_GT(r.subsystems[0].values[0].second, 1000.0);
}

TEST(Subsystems, ScenarioBusFaultsEscalateToLimpHomeMidDrive) {
  ev::config::ScenarioSpec spec;
  spec.powertrain.seed = 7;
  spec.subsystems.obs = false;
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  spec.fault_seed = 42;
  using ev::config::FaultEventSpec;
  using ev::config::FaultKind;
  spec.faults = {
      FaultEventSpec{2.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{4.0, FaultKind::kBusCorrupt, "safety_can", 4.0},
      FaultEventSpec{6.0, FaultKind::kBusOff, "safety_can", 0.05},
  };

  // Same trimmed mission, clean vs faulted, through the composition root.
  ev::config::ScenarioSpec clean = spec;
  clean.faults.clear();
  auto clean_vehicle = build_vehicle(clean);
  const CoSimResult clean_r = clean_vehicle->run(short_cycle());

  auto vehicle = build_vehicle(spec);
  const CoSimResult faulted_r = vehicle->run(short_cycle());

  auto* faults = vehicle->find_subsystem<FaultsSubsystem>();
  ASSERT_NE(faults, nullptr);
  EXPECT_EQ(faults->plan().injections().size(), 3u);
  EXPECT_EQ(faults->degradation().mode(), ev::faults::DriveMode::kLimpHome);

  // The escalation happened mid-drive, stepwise, for network causes.
  const auto& changes = faults->mode_changes();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].to, ev::faults::DriveMode::kDerated);
  EXPECT_EQ(changes[1].to, ev::faults::DriveMode::kLimpHome);
  EXPECT_GT(changes[0].t_s, 1.0);
  EXPECT_LT(changes[1].t_s, faulted_r.cycle.duration_s);
  EXPECT_EQ(changes[1].cause, "bus_faults");

  // Limp-home torque/speed limits show up in the drive ledger: same mission
  // time, strictly less ground covered once the limits bite.
  EXPECT_LT(faults->degradation().torque_limit_fraction(), 1.0);
  EXPECT_LT(faulted_r.cycle.distance_km, 0.99 * clean_r.cycle.distance_km);

  // Clean twin stayed in normal mode.
  auto* clean_faults = clean_vehicle->find_subsystem<FaultsSubsystem>();
  EXPECT_EQ(clean_faults->degradation().mode(), ev::faults::DriveMode::kNormal);
}

TEST(Subsystems, ResultJsonIsDeterministic) {
  ev::config::ScenarioSpec spec;
  spec.subsystems.obs = false;
  spec.subsystems.health = true;
  auto run_once = [&] {
    auto vehicle = build_vehicle(spec);
    ScenarioRunResult result;
    result.scenario = spec.name;
    result.cosim = vehicle->run(short_cycle());
    return result_json(result);
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Subsystems, UnknownFaultTargetThrowsOnRun) {
  ev::config::ScenarioSpec spec;
  spec.subsystems.obs = false;
  spec.subsystems.faults = true;
  spec.faults = {ev::config::FaultEventSpec{
      1.0, ev::config::FaultKind::kBusDrop, "warp_bus", 1.0}};
  auto vehicle = build_vehicle(spec);
  EXPECT_THROW((void)vehicle->run(short_cycle()), std::invalid_argument);
}

}  // namespace
