// Unit tests for the campaign module: the worker pool, the seed ladder,
// and the determinism contract — a campaign report must be byte-identical
// for any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "ev/campaign/campaign.h"
#include "ev/campaign/parallel.h"
#include "ev/config/scenario.h"

namespace {

using ev::campaign::CampaignOptions;
using ev::campaign::CampaignResult;
using ev::campaign::SeedPlan;

// ------------------------------------------------------------- parallel ----

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> hits(37);
    ev::campaign::parallel_for(37, jobs, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, HandlesDegenerateShapes) {
  std::atomic<int> calls{0};
  ev::campaign::parallel_for(0, 4, [&](int) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  ev::campaign::parallel_for(3, 16, [&](int) { ++calls; });  // jobs > count
  EXPECT_EQ(calls.load(), 3);
  ev::campaign::parallel_for(5, 0, [&](int) { ++calls; });  // 0 = hardware
  EXPECT_EQ(calls.load(), 8);
}

TEST(ParallelFor, PropagatesTheFirstException) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      ev::campaign::parallel_for(16, 4,
                                 [&](int i) {
                                   if (i == 5) throw std::runtime_error("boom");
                                   ++completed;
                                 }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the pool drains before rethrowing
}

TEST(ResolveJobs, ClampsToTaskCount) {
  EXPECT_EQ(ev::campaign::resolve_jobs(4, 2), 2);
  EXPECT_EQ(ev::campaign::resolve_jobs(1, 100), 1);
  EXPECT_GE(ev::campaign::resolve_jobs(0, 100), 1);  // hardware concurrency
  EXPECT_EQ(ev::campaign::resolve_jobs(-3, 100), ev::campaign::resolve_jobs(0, 100));
}

// ------------------------------------------------------------ seed plan ----

TEST(SeedPlan, LadderArithmetic) {
  const SeedPlan plan{/*first=*/10, /*stride=*/3, /*count=*/4};
  EXPECT_EQ(plan.seed(0), 10u);
  EXPECT_EQ(plan.seed(3), 19u);
}

// ------------------------------------------------------------- campaign ----

ev::config::ScenarioSpec test_scenario() {
  ev::config::ScenarioSpec spec;
  spec.name = "campaign-test";
  spec.drive.cycle = ev::config::CycleKind::kUrban;
  spec.subsystems.obs = true;
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  return spec;
}

TEST(Campaign, ReportIsByteIdenticalAcrossWorkerCounts) {
  // The tentpole contract: per-seed runs are pure functions of (spec, seed)
  // and the fold happens in seed-index order on one thread, so the rendered
  // report can never depend on --jobs.
  const ev::config::ScenarioSpec spec = test_scenario();
  const auto render = [&](int jobs) {
    const CampaignOptions options{{/*first=*/1, /*stride=*/1, /*count=*/4}, jobs};
    return ev::campaign::campaign_json(ev::campaign::run_scenario_campaign(spec, options));
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(3));
  EXPECT_NE(serial.find("\"runs\":["), std::string::npos);
  EXPECT_NE(serial.find("\"cross_seed\":"), std::string::npos);
  EXPECT_NE(serial.find("\"metrics\":"), std::string::npos);
  EXPECT_EQ(serial.find("\"jobs\":"), std::string::npos);  // worker count never leaks
}

TEST(Campaign, RunsCarrySeedsInLadderOrder) {
  const CampaignOptions options{{/*first=*/5, /*stride=*/2, /*count=*/3}, 2};
  const CampaignResult result =
      ev::campaign::run_scenario_campaign(test_scenario(), options);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.runs[0].seed, 5u);
  EXPECT_EQ(result.runs[1].seed, 7u);
  EXPECT_EQ(result.runs[2].seed, 9u);
  for (const ev::campaign::SeedRun& run : result.runs) {
    EXPECT_GT(run.distance_km, 0.0);
    EXPECT_GT(run.battery_energy_out_wh, 0.0);
  }
  // Different seeds perturb the powertrain, so the digests must differ.
  EXPECT_NE(result.runs[0].digest, result.runs[1].digest);
}

}  // namespace
