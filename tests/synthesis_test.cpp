// Unit tests for the design-space synthesizer: the repair path must turn the
// overloaded fixture into a scenario `evsys check` accepts, the seeded search
// must be byte-deterministic for any seed/jobs combination, the emitted spec
// must re-extract to exactly the fitness the search reported (the mirror
// contract), and the exposed building blocks (Audsley ids, rate-monotonic
// slots, FFD windows, Pareto dominance) must behave on their own.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"
#include "ev/config/scenario.h"
#include "ev/synthesis/synthesis.h"

namespace {

using namespace ev::synthesis;
using ev::analysis::Fitness;
using ev::analysis::FitnessEvaluator;
using ev::analysis::VehicleModel;

// tests/data/overloaded.scn, inline: 20x nominal traffic saturates the
// network, so the unrepaired scenario fails check with errors.
ev::config::ScenarioSpec overloaded_spec() {
  ev::config::ScenarioSpec spec;
  spec.name = "overloaded";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  spec.network.load_scale = 20.0;
  return spec;
}

ev::config::ScenarioSpec clean_spec() {
  ev::config::ScenarioSpec spec;
  spec.name = "clean";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  return spec;
}

SynthesisOptions quick_options(std::uint64_t seed = 1, int iters = 10) {
  SynthesisOptions options;
  options.seed = seed;
  options.iters = iters;
  return options;
}

// ------------------------------------------------------------ repair --------

TEST(Synthesize, RepairsOverloadedScenarioToCheckClean) {
  const SynthesisResult result = synthesize(overloaded_spec(), quick_options());
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.fitness.feasible());
  // The ladder had to shed load: 20x nominal is architecturally hopeless.
  EXPECT_LT(result.load_scale, 20.0);
  EXPECT_GE(result.load_scale, 1.0);
  EXPECT_GT(result.ladder_steps, 1u);

  // The emitted spec IS the design: a from-scratch analysis must agree.
  const ev::analysis::Report report =
      ev::analysis::analyze_scenario(result.spec);
  EXPECT_EQ(report.count(ev::analysis::Severity::kError), 0u);
  EXPECT_EQ(report.count(ev::analysis::Severity::kWarning), 0u);
  EXPECT_EQ(ev::analysis::exit_code_for(report), 0);
}

TEST(Synthesize, FeasibleInputStaysFeasibleAndKeepsItsLoad) {
  const SynthesisResult result = synthesize(clean_spec(), quick_options(3, 5));
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.load_scale, 1.0);
}

TEST(Synthesize, EmittedSpecRoundTripsThroughText) {
  const SynthesisResult result = synthesize(overloaded_spec(), quick_options());
  const ev::config::ScenarioSpec reparsed =
      ev::config::ScenarioSpec::from_text(result.spec.to_text());
  EXPECT_EQ(reparsed, result.spec);
}

// ------------------------------------------------------- determinism --------

TEST(Synthesize, SameSeedGivesByteIdenticalResult) {
  const SynthesisResult a = synthesize(overloaded_spec(), quick_options(7, 12));
  const SynthesisResult b = synthesize(overloaded_spec(), quick_options(7, 12));
  EXPECT_EQ(a.spec.to_text(), b.spec.to_text());
  EXPECT_EQ(synthesis_json(a), synthesis_json(b));
}

TEST(Synthesize, WorkerCountDoesNotChangeTheResult) {
  SynthesisOptions serial = quick_options(5, 12);
  SynthesisOptions wide = serial;
  wide.jobs = 8;
  const SynthesisResult a = synthesize(overloaded_spec(), serial);
  const SynthesisResult b = synthesize(overloaded_spec(), wide);
  EXPECT_EQ(a.spec.to_text(), b.spec.to_text());
  EXPECT_EQ(synthesis_json(a), synthesis_json(b));
}

TEST(Synthesize, CrossCheckModeAgreesWithIncrementalSearch) {
  SynthesisOptions checked = quick_options(2, 6);
  checked.cross_check = true;
  // Every accepted move re-runs a from-scratch evaluation; divergence throws.
  const SynthesisResult a = synthesize(overloaded_spec(), checked);
  const SynthesisResult b = synthesize(overloaded_spec(), quick_options(2, 6));
  EXPECT_EQ(synthesis_json(a), synthesis_json(b));
}

TEST(Synthesize, SeedLadderAllFeasible) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const SynthesisResult result =
        synthesize(overloaded_spec(), quick_options(seed, 6));
    EXPECT_TRUE(result.feasible) << "seed " << seed;
    EXPECT_EQ(ev::analysis::exit_code_for(
                  ev::analysis::analyze_scenario(result.spec)),
              0)
        << "seed " << seed;
  }
}

// ------------------------------------------------------------ pareto --------

TEST(Synthesize, ParetoArchiveIsNonDominatedAndSlackSorted) {
  const SynthesisResult result = synthesize(overloaded_spec(), quick_options(9, 20));
  ASSERT_FALSE(result.pareto.empty());
  for (const ParetoPoint& point : result.pareto)
    EXPECT_TRUE(point.fitness.feasible());
  for (std::size_t i = 0; i < result.pareto.size(); ++i)
    for (std::size_t j = 0; j < result.pareto.size(); ++j)
      if (i != j)
        EXPECT_FALSE(dominates(result.pareto[i].fitness, result.pareto[j].fitness))
            << i << " dominates " << j;
  for (std::size_t i = 1; i < result.pareto.size(); ++i)
    EXPECT_GE(result.pareto[i - 1].fitness.worst_slack_us,
              result.pareto[i].fitness.worst_slack_us);
}

TEST(Dominates, RequiresNoWorseEverywhereAndBetterSomewhere) {
  Fitness base;
  base.worst_slack_us = 100.0;
  base.peak_busload = 0.5;
  base.deployment = 6;

  Fitness better = base;
  better.worst_slack_us = 200.0;
  EXPECT_TRUE(dominates(better, base));
  EXPECT_FALSE(dominates(base, better));
  EXPECT_FALSE(dominates(base, base));  // equal: no strict improvement

  Fitness tradeoff = base;
  tradeoff.worst_slack_us = 200.0;
  tradeoff.peak_busload = 0.7;  // better slack, worse busload
  EXPECT_FALSE(dominates(tradeoff, base));
  EXPECT_FALSE(dominates(base, tradeoff));
}

TEST(Energy, FeasibilityDominatesThenSlack) {
  Fitness infeasible;
  infeasible.errors = 1;
  infeasible.worst_slack_us = 10000.0;
  Fitness feasible;
  feasible.worst_slack_us = 1.0;
  feasible.peak_busload = 0.9;
  feasible.deployment = 7;
  EXPECT_LT(energy(feasible), energy(infeasible));

  Fitness slacker = feasible;
  slacker.worst_slack_us = 500.0;
  EXPECT_LT(energy(slacker), energy(feasible));
}

// --------------------------------------------------- building blocks --------

TEST(AssignCanIds, ReusesTheBusIdPoolAsAPermutation) {
  FitnessEvaluator evaluator(ev::analysis::extract_model(clean_spec()));
  evaluator.evaluate();
  const std::size_t comfort = 1;
  const std::map<std::size_t, std::uint32_t> assignment =
      assign_can_ids(evaluator, comfort);
  ASSERT_FALSE(assignment.empty());

  std::multiset<std::uint32_t> before, after;
  for (const auto& [frame, id] : assignment) {
    const ev::analysis::FrameModel& model_frame = evaluator.model().frames[frame];
    EXPECT_EQ(model_frame.bus, comfort);
    EXPECT_TRUE(model_frame.id_mutable);
    before.insert(model_frame.id);
    after.insert(id);
  }
  EXPECT_EQ(before, after);  // same pool, possibly permuted
}

TEST(RmFrSlots, ShorterPeriodsGetEarlierSlotsTiesById) {
  const VehicleModel model = ev::analysis::extract_model(clean_spec());
  const std::size_t chassis = 4;
  const std::map<std::uint32_t, std::size_t> slots = rm_fr_slots(model, chassis);
  ASSERT_EQ(slots.size(), model.buses[chassis].fr_static_slot.size());

  // Slot order must follow (period asc, id asc); ids owning a slot but
  // carrying no frame (the real-BMS case frees 0x106) sort last.
  const auto period_of = [&](std::uint32_t id) {
    for (const ev::analysis::FrameModel& frame : model.frames)
      if (frame.bus == chassis && frame.id == id) return frame.period_s;
    return 1e18;
  };
  std::vector<std::uint32_t> by_slot(slots.size());
  for (const auto& [id, slot] : slots) by_slot[slot] = id;
  for (std::size_t i = 1; i < by_slot.size(); ++i) {
    const double prev = period_of(by_slot[i - 1]);
    const double cur = period_of(by_slot[i]);
    EXPECT_TRUE(prev < cur || (prev == cur && by_slot[i - 1] < by_slot[i]))
        << "slot " << i;
  }
}

TEST(FfdPartitionWindows, OrdersByDecreasingBudgetAndCoversDemand) {
  const VehicleModel model = ev::analysis::extract_model(clean_spec());
  const std::vector<std::pair<std::string, std::int64_t>> windows =
      ffd_partition_windows(model);
  ASSERT_EQ(windows.size(), model.app.partitions.size());

  std::int64_t total = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_GE(windows[i].second, 1);
    total += windows[i].second;
    if (i > 0) EXPECT_GE(windows[i - 1].second, windows[i].second);
  }
  EXPECT_LE(total, model.app.major_frame_us);

  // Every partition appears exactly once.
  std::set<std::string> names;
  for (const auto& [name, budget] : windows) names.insert(name);
  EXPECT_EQ(names.size(), model.app.partitions.size());
}

TEST(SynthesisJson, ReportCarriesSearchProvenance) {
  const SynthesisResult result = synthesize(overloaded_spec(), quick_options(4, 5));
  const std::string json = synthesis_json(result);
  EXPECT_NE(json.find("\"scenario\": \"overloaded\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"iters\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"feasible\": true"), std::string::npos);
  EXPECT_NE(json.find("\"pareto\""), std::string::npos);
  // No worker count and no timing: the report is rerun/jobs invariant.
  EXPECT_EQ(json.find("\"jobs\""), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

}  // namespace
