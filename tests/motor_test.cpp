// Unit tests for the motor drive: reference-frame transforms, the PMSM
// model, space-vector modulation, the switched inverter with fault
// injection, FOC, the fault detector, and the closed-loop drive.
#include <gtest/gtest.h>

#include <cmath>

#include "ev/motor/drive.h"
#include "ev/motor/fault.h"
#include "ev/motor/foc.h"
#include "ev/motor/inverter.h"
#include "ev/motor/pmsm.h"
#include "ev/motor/svm.h"
#include "ev/motor/transforms.h"
#include "ev/util/math.h"

namespace {

using namespace ev::motor;
using ev::util::kPi;
using ev::util::kTwoPi;

// ---------------------------------------------------------- transforms ----

class TransformRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TransformRoundTrip, ClarkeParkInverse) {
  const double theta = GetParam();
  const Dq dq{12.5, -7.25};
  const AlphaBeta ab = inverse_park(dq, theta);
  const Dq back = park(ab, theta);
  EXPECT_NEAR(back.d, dq.d, 1e-9);
  EXPECT_NEAR(back.q, dq.q, 1e-9);

  const Abc abc = inverse_clarke(ab);
  EXPECT_NEAR(abc.a + abc.b + abc.c, 0.0, 1e-9);  // balanced
  const AlphaBeta ab2 = clarke(abc);
  EXPECT_NEAR(ab2.alpha, ab.alpha, 1e-9);
  EXPECT_NEAR(ab2.beta, ab.beta, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Angles, TransformRoundTrip,
                         ::testing::Values(0.0, 0.5, kPi / 3, kPi, 1.5 * kPi,
                                           kTwoPi - 0.01));

TEST(Transforms, ClarkeAmplitudeInvariant) {
  // Balanced three-phase set with amplitude 10 -> alpha-beta magnitude 10.
  for (double theta = 0.0; theta < kTwoPi; theta += 0.37) {
    const Abc abc{10.0 * std::cos(theta), 10.0 * std::cos(theta - 2.0 * kPi / 3.0),
                  10.0 * std::cos(theta + 2.0 * kPi / 3.0)};
    const AlphaBeta ab = clarke(abc);
    EXPECT_NEAR(std::hypot(ab.alpha, ab.beta), 10.0, 1e-9);
  }
}

// ---------------------------------------------------------------- pmsm ----

TEST(Pmsm, TorqueEquation) {
  Pmsm m;
  // Inject dq currents indirectly: with zero speed, constant v_q builds i_q.
  const double kt = 1.5 * m.params().pole_pairs * m.params().flux_linkage_wb;
  EXPECT_GT(kt, 0.0);
  EXPECT_DOUBLE_EQ(m.torque_nm(), 0.0);  // no current, no torque
}

TEST(Pmsm, AcceleratesUnderQVoltage) {
  Pmsm m;
  // Apply a small stationary-frame voltage aligned with q for a while.
  for (int i = 0; i < 20000; ++i) {
    const AlphaBeta v = inverse_park(Dq{0.0, 5.0}, m.electrical_angle());
    m.step(inverse_clarke(v), 0.0, 1e-5);
  }
  EXPECT_GT(m.speed_rad_s(), 1.0);
}

TEST(Pmsm, LoadTorqueDecelerates) {
  Pmsm m;
  m.set_speed(100.0);
  for (int i = 0; i < 10000; ++i) m.step(Abc{}, 20.0, 1e-5);
  EXPECT_LT(m.speed_rad_s(), 100.0);
}

TEST(Pmsm, ElectricalAngleWraps) {
  Pmsm m;
  m.set_speed(500.0);
  for (int i = 0; i < 100000; ++i) m.step(Abc{}, 0.0, 1e-5);
  EXPECT_GE(m.electrical_angle(), 0.0);
  EXPECT_LT(m.electrical_angle(), kTwoPi);
}

TEST(Pmsm, ElectricalSpeedIsPolePairsTimesMechanical) {
  Pmsm m;
  m.set_speed(100.0);
  EXPECT_DOUBLE_EQ(m.electrical_speed(), 100.0 * m.params().pole_pairs);
}

// ----------------------------------------------------------------- svm ----

TEST(Svm, DutiesWithinBounds) {
  const double vdc = 400.0;
  for (double theta = 0.0; theta < kTwoPi; theta += 0.1) {
    const double amp = SvmModulator::max_amplitude(vdc) * 0.95;
    const AlphaBeta v{amp * std::cos(theta), amp * std::sin(theta)};
    const Duties d = SvmModulator::modulate(v, vdc);
    EXPECT_GE(d.a, 0.0);
    EXPECT_LE(d.a, 1.0);
    EXPECT_GE(d.b, 0.0);
    EXPECT_LE(d.b, 1.0);
    EXPECT_GE(d.c, 0.0);
    EXPECT_LE(d.c, 1.0);
  }
}

TEST(Svm, ZeroVoltageGivesCenteredDuties) {
  const Duties d = SvmModulator::modulate(AlphaBeta{0.0, 0.0}, 400.0);
  EXPECT_NEAR(d.a, 0.5, 1e-12);
  EXPECT_NEAR(d.b, 0.5, 1e-12);
  EXPECT_NEAR(d.c, 0.5, 1e-12);
}

TEST(Svm, LinearRegionReproducesReference) {
  // Average phase voltage from the duties must equal the reference (up to
  // common mode, which the line-line difference removes).
  const double vdc = 400.0;
  const AlphaBeta v{100.0, 50.0};
  const Duties d = SvmModulator::modulate(v, vdc);
  const Abc ph = inverse_clarke(v);
  const double vab_ref = ph.a - ph.b;
  const double vab_avg = (d.a - d.b) * vdc;
  EXPECT_NEAR(vab_avg, vab_ref, 1e-9);
}

TEST(Svm, SaturatesBeyondHexagon) {
  const double vdc = 400.0;
  const AlphaBeta v{10.0 * vdc, 0.0};
  const Duties d = SvmModulator::modulate(v, vdc);
  EXPECT_GE(d.a, 0.0);
  EXPECT_LE(d.a, 1.0);
}

TEST(Svm, SectorsProgress) {
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{1.0, 0.1}), 1);
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{0.0, 1.0}), 2);
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{-1.0, 0.1}), 3);
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{-1.0, -0.1}), 4);
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{0.0, -1.0}), 5);
  EXPECT_EQ(SvmModulator::sector(AlphaBeta{1.0, -0.1}), 6);
}

TEST(FourSwitch, PreservesLineToLineVoltages) {
  const double vdc = 400.0;
  const FourSwitchModulator b4(0);  // phase a faulty, tied to midpoint
  const AlphaBeta v{60.0, 30.0};
  const Duties d = b4.modulate(v, vdc);
  EXPECT_DOUBLE_EQ(d.a, 0.5);
  const Abc ph = inverse_clarke(v);
  // v_b - v_a reproduced by the b-leg duty against the midpoint.
  EXPECT_NEAR((d.b - 0.5) * vdc, ph.b - ph.a, 1e-9);
  EXPECT_NEAR((d.c - 0.5) * vdc, ph.c - ph.a, 1e-9);
}

TEST(FourSwitch, RejectsBadPhase) {
  EXPECT_THROW(FourSwitchModulator(3), std::invalid_argument);
  EXPECT_THROW(FourSwitchModulator(-1), std::invalid_argument);
}

// ------------------------------------------------------------- inverter ----

TEST(Inverter, HealthyLegsFollowCommands) {
  Inverter inv(400.0);
  const Abc v = inv.leg_voltages(LegStates{true, false, true}, Abc{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(v.a, 400.0);
  EXPECT_DOUBLE_EQ(v.b, 0.0);
  EXPECT_DOUBLE_EQ(v.c, 400.0);
}

TEST(Inverter, OpenUpperFaultClampsByCurrentDirection) {
  Inverter inv(400.0);
  inv.set_open_fault(Igbt::kUpperA, true);
  // Commanded high, positive current -> lower diode, 0 V.
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{true, false, false}, Abc{5.0, 0, 0}).a, 0.0);
  // Commanded high, negative current -> upper diode, Vdc.
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{true, false, false}, Abc{-5.0, 0, 0}).a,
                   400.0);
  // Lower switch still works.
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{false, false, false}, Abc{5.0, 0, 0}).a, 0.0);
}

TEST(Inverter, OpenLowerFaultClampsByCurrentDirection) {
  Inverter inv(400.0);
  inv.set_open_fault(Igbt::kLowerB, true);
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{false, false, false}, Abc{0, 5.0, 0}).b, 0.0);
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{false, false, false}, Abc{0, -5.0, 0}).b,
                   400.0);
}

TEST(Inverter, MidpointIsolationOverridesSwitching) {
  Inverter inv(400.0);
  inv.isolate_leg_to_midpoint(2);
  EXPECT_TRUE(inv.leg_isolated(2));
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{false, false, true}, Abc{}).c, 200.0);
  EXPECT_DOUBLE_EQ(inv.leg_voltages(LegStates{false, false, false}, Abc{}).c, 200.0);
}

TEST(Inverter, PhaseVoltagesRemoveCommonMode) {
  Inverter inv(400.0);
  const Abc v = inv.phase_voltages(LegStates{true, true, true}, Abc{});
  EXPECT_NEAR(v.a, 0.0, 1e-9);
  EXPECT_NEAR(v.b, 0.0, 1e-9);
  EXPECT_NEAR(v.c, 0.0, 1e-9);
}

TEST(Inverter, CarrierComparisonCentersOnTime) {
  // duty 0.5: high exactly in the middle half of the period.
  const Duties d{0.5, 1.0, 0.0};
  EXPECT_FALSE(Inverter::compare_carrier(d, 0.1).a);
  EXPECT_TRUE(Inverter::compare_carrier(d, 0.5).a);
  EXPECT_FALSE(Inverter::compare_carrier(d, 0.9).a);
  EXPECT_TRUE(Inverter::compare_carrier(d, 0.5).b);   // duty 1 always on mid
  EXPECT_FALSE(Inverter::compare_carrier(d, 0.5).c);  // duty 0 never on
}

TEST(Inverter, AnyFaultReflectsInjection) {
  Inverter inv;
  EXPECT_FALSE(inv.any_fault());
  inv.set_open_fault(Igbt::kLowerC, true);
  EXPECT_TRUE(inv.any_fault());
  EXPECT_TRUE(inv.has_open_fault(Igbt::kLowerC));
  inv.set_open_fault(Igbt::kLowerC, false);
  EXPECT_FALSE(inv.any_fault());
}

// ------------------------------------------------------------------ pi ----

TEST(PiController, TracksAndClamps) {
  PiController pi(1.0, 10.0, 5.0);
  EXPECT_DOUBLE_EQ(pi.update(100.0, 0.01), 5.0);  // clamped
  // Anti-windup: integral does not keep growing while clamped.
  for (int i = 0; i < 100; ++i) (void)pi.update(100.0, 0.01);
  (void)pi.update(-1.0, 0.01);
  EXPECT_LT(pi.integral(), 6.0);
}

TEST(PiController, ResetClearsIntegral) {
  PiController pi(0.0, 10.0, 100.0);
  (void)pi.update(1.0, 1.0);
  EXPECT_GT(pi.integral(), 0.0);
  pi.reset();
  EXPECT_DOUBLE_EQ(pi.integral(), 0.0);
}

// -------------------------------------------------------------- detector ----

TEST(OpenSwitchDetector, SilentOnHealthyCurrents) {
  // Window covers exactly two electrical periods so the residual mean of a
  // healthy sinusoid vanishes (real detectors size the window this way).
  OpenSwitchDetector det(200, 0.25);
  for (int i = 0; i < 1000; ++i) {
    const double th = kTwoPi / 100.0 * i;
    det.sample(Abc{50 * std::cos(th), 50 * std::cos(th - 2 * kPi / 3),
                   50 * std::cos(th + 2 * kPi / 3)});
  }
  EXPECT_FALSE(det.diagnose().has_value());
}

TEST(OpenSwitchDetector, IdentifiesUpperFaultFromNegativeMean) {
  OpenSwitchDetector det(100, 0.25);
  for (int i = 0; i < 200; ++i) {
    const double th = 0.05 * i;
    // Phase a positive half-wave suppressed (upper switch open).
    const double ia = std::min(50 * std::cos(th), 0.0);
    det.sample(Abc{ia, 50 * std::cos(th - 2 * kPi / 3), 50 * std::cos(th + 2 * kPi / 3)});
  }
  ASSERT_TRUE(det.diagnose().has_value());
  EXPECT_EQ(det.diagnose()->phase, 0);
  EXPECT_TRUE(det.diagnose()->upper);
  EXPECT_EQ(det.diagnose()->igbt(), Igbt::kUpperA);
}

TEST(OpenSwitchDetector, ResetClearsLatch) {
  OpenSwitchDetector det(10, 0.25);
  for (int i = 0; i < 20; ++i) det.sample(Abc{-10.0, 5.0, 5.0});
  EXPECT_TRUE(det.diagnose().has_value());
  det.reset();
  EXPECT_FALSE(det.diagnose().has_value());
  EXPECT_EQ(det.samples_seen(), 0u);
}

// ---------------------------------------------------------------- drive ----

TEST(MotorDrive, SpeedLoopConverges) {
  MotorDrive drive;
  for (int k = 0; k < 30000; ++k) drive.step(150.0, 20.0);
  EXPECT_NEAR(drive.machine().speed_rad_s(), 150.0, 2.0);
}

TEST(MotorDrive, HealthyWaveformLowThd) {
  MotorDrive drive;
  for (int k = 0; k < 30000; ++k) drive.step(200.0, 30.0);
  drive.set_recording(true);
  for (int k = 0; k < 5000; ++k) drive.step(200.0, 30.0);
  const double fund_hz = drive.machine().electrical_speed() / kTwoPi;
  const double thd = total_harmonic_distortion(drive.recorded_current_a(),
                                               drive.record_rate_hz(), fund_hz);
  EXPECT_LT(thd, 0.15);
  EXPECT_GT(harmonic_amplitude(drive.recorded_current_a(), drive.record_rate_hz(),
                               fund_hz, 1),
            10.0);  // a real fundamental is present
}

TEST(MotorDrive, TorqueModeProducesTorque) {
  MotorDrive drive;
  // Short horizon: with no load the machine accelerates hard, and past the
  // base speed the voltage limit (no field weakening here) erodes torque.
  for (int k = 0; k < 500; ++k) drive.step_torque(100.0, 0.0);
  EXPECT_GT(drive.machine().torque_nm(), 10.0);
  EXPECT_GT(drive.machine().speed_rad_s(), 0.0);
}

TEST(MotorDrive, FaultDistortsThenRecovers) {
  MotorDrive drive;
  for (int k = 0; k < 30000; ++k) drive.step(200.0, 30.0);

  drive.inject_open_fault(Igbt::kUpperA);
  EXPECT_NE(drive.mode(), DriveMode::kNormal);
  // Detection + reconfiguration happen autonomously.
  for (int k = 0; k < 50000 && drive.mode() != DriveMode::kReconfigured; ++k)
    drive.step(200.0, 30.0);
  EXPECT_EQ(drive.mode(), DriveMode::kReconfigured);
  ASSERT_TRUE(drive.detection_latency_s().has_value());
  EXPECT_LT(*drive.detection_latency_s(), 0.1);  // real-time requirement

  // Post-fault operation returns to the commanded speed.
  for (int k = 0; k < 50000; ++k) drive.step(200.0, 30.0);
  EXPECT_NEAR(drive.machine().speed_rad_s(), 200.0, 5.0);
  EXPECT_TRUE(drive.inverter().leg_isolated(0));
}

TEST(MotorDrive, NonFaultTolerantDriveStaysDegraded) {
  DriveConfig cfg;
  cfg.fault_tolerant = false;
  MotorDrive drive(cfg);
  for (int k = 0; k < 20000; ++k) drive.step(200.0, 30.0);
  drive.inject_open_fault(Igbt::kUpperA);
  for (int k = 0; k < 30000; ++k) drive.step(200.0, 30.0);
  EXPECT_EQ(drive.mode(), DriveMode::kFaulted);  // never reconfigures
}

TEST(MotorDrive, RecordingLifecycle) {
  MotorDrive drive;
  drive.set_recording(true);
  for (int k = 0; k < 10; ++k) drive.step(10.0, 0.0);
  EXPECT_EQ(drive.recorded_current_a().size(), 100u);  // 10 substeps/period
  EXPECT_EQ(drive.recorded_torque().size(), 10u);
  drive.clear_recording();
  EXPECT_TRUE(drive.recorded_current_a().empty());
}

TEST(Thd, PureSineIsClean) {
  std::vector<double> wave;
  const double fs = 10000.0;
  const double f0 = 50.0;
  for (int i = 0; i < 2000; ++i) wave.push_back(std::sin(kTwoPi * f0 * i / fs));
  EXPECT_LT(total_harmonic_distortion(wave, fs, f0), 0.01);
  EXPECT_NEAR(harmonic_amplitude(wave, fs, f0, 1), 1.0, 0.01);
}

TEST(Thd, SquareWaveMatchesTheory) {
  std::vector<double> wave;
  const double fs = 50000.0;
  const double f0 = 50.0;
  for (int i = 0; i < 50000; ++i)
    wave.push_back(std::sin(kTwoPi * f0 * i / fs) >= 0.0 ? 1.0 : -1.0);
  // Square wave THD (up to infinite harmonics) ~ 48.3%; truncated at 20
  // harmonics it is a bit below that.
  const double thd = total_harmonic_distortion(wave, fs, f0, 20);
  EXPECT_NEAR(thd, 0.45, 0.05);
}

}  // namespace
