// Unit tests for time-triggered schedule synthesis, modular integration,
// and the event-triggered response-time analyses.
#include <gtest/gtest.h>

#include "ev/scheduling/integration.h"
#include "ev/scheduling/model.h"
#include "ev/scheduling/response_time.h"
#include "ev/scheduling/synthesis.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::scheduling;

// ------------------------------------------------------ conflict check ----

TEST(Conflict, DisjointSlotsDoNotConflict) {
  // Same period, back-to-back slots.
  EXPECT_FALSE(activities_conflict(0, 100, 1000, 100, 100, 1000));
  EXPECT_FALSE(activities_conflict(100, 100, 1000, 0, 100, 1000));
}

TEST(Conflict, OverlapDetected) {
  EXPECT_TRUE(activities_conflict(0, 200, 1000, 100, 100, 1000));
  EXPECT_TRUE(activities_conflict(0, 100, 1000, 0, 100, 1000));
}

TEST(Conflict, HarmonicPeriods) {
  // 1000/2000 periods: activity B at offset 500 fits between A's instances.
  EXPECT_FALSE(activities_conflict(0, 100, 1000, 500, 100, 2000));
  // But at offset 950 it collides with A's next instance (wrap via gcd).
  EXPECT_TRUE(activities_conflict(0, 100, 1000, 950, 100, 2000));
}

TEST(Conflict, CoprimePeriodsAlmostAlwaysCollide) {
  // gcd(999, 1000) = 1: any nonzero durations collide somewhere.
  EXPECT_TRUE(activities_conflict(0, 10, 999, 500, 10, 1000));
}

// ------------------------------------------------------------ topology ----

TEST(TopologicalOrder, RespectsPrecedence) {
  System sys;
  sys.activities = {{0, "a", 0, 1000, 10, {}},
                    {1, "b", 0, 1000, 10, {0}},
                    {2, "c", 0, 1000, 10, {1}}};
  const auto order = topological_order(sys);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_LT(std::find(order.begin(), order.end(), 0) - order.begin(),
            std::find(order.begin(), order.end(), 1) - order.begin());
}

TEST(TopologicalOrder, DetectsCycle) {
  System sys;
  sys.activities = {{0, "a", 0, 1000, 10, {1}}, {1, "b", 0, 1000, 10, {0}}};
  EXPECT_THROW(topological_order(sys), std::invalid_argument);
}

TEST(TopologicalOrder, UnknownPredecessorRejected) {
  System sys;
  sys.activities = {{0, "a", 0, 1000, 10, {42}}};
  EXPECT_THROW(topological_order(sys), std::invalid_argument);
}

// ------------------------------------------------------------ synthesis ----

System chain_system() {
  // sensor (ECU0) -> message (bus 10) -> controller (ECU1), 10 ms period.
  System sys;
  sys.activities = {{0, "sense", 0, 10000, 500, {}},
                    {1, "msg", 10, 10000, 200, {0}},
                    {2, "control", 1, 10000, 800, {1}}};
  sys.chains = {{"loop", {0, 1, 2}, 5000}};
  sys.offset_granularity_us = 100;
  return sys;
}

TEST(Monolithic, SchedulesSimpleChain) {
  const Schedule s = MonolithicSynthesizer().synthesize(chain_system());
  ASSERT_TRUE(s.feasible);
  // Precedence: each stage starts after its predecessor ends.
  EXPECT_GE(s.offset_us[1], s.offset_us[0] + 500);
  EXPECT_GE(s.offset_us[2], s.offset_us[1] + 200);
}

TEST(Monolithic, ChainLatencyShortAndWithinDeadline) {
  const System sys = chain_system();
  const Schedule s = MonolithicSynthesizer().synthesize(sys);
  ASSERT_TRUE(s.feasible);
  const std::int64_t latency = chain_latency_us(sys, s, sys.chains[0]);
  EXPECT_GT(latency, 0);
  EXPECT_LE(latency, sys.chains[0].deadline_us);
}

TEST(Monolithic, NoConflictsInResult) {
  // Several tasks share one ECU; verify pairwise conflict-freedom.
  System sys;
  for (int i = 0; i < 8; ++i)
    sys.activities.push_back({i, "t" + std::to_string(i), 0,
                              (i % 2 == 0) ? 10000 : 20000, 900, {}});
  const Schedule s = MonolithicSynthesizer().synthesize(sys);
  ASSERT_TRUE(s.feasible);
  for (std::size_t i = 0; i < sys.activities.size(); ++i)
    for (std::size_t j = i + 1; j < sys.activities.size(); ++j)
      EXPECT_FALSE(activities_conflict(
          s.offset_us[i], sys.activities[i].duration_us, sys.activities[i].period_us,
          s.offset_us[j], sys.activities[j].duration_us, sys.activities[j].period_us));
}

TEST(Monolithic, DetectsOverload) {
  // Two tasks that together exceed the resource within their period.
  System sys;
  sys.activities = {{0, "a", 0, 1000, 600, {}}, {1, "b", 0, 1000, 600, {}}};
  sys.offset_granularity_us = 10;
  const Schedule s = MonolithicSynthesizer().synthesize(sys);
  EXPECT_FALSE(s.feasible);
}

TEST(Monolithic, EmptySystemTriviallyFeasible) {
  EXPECT_TRUE(MonolithicSynthesizer().synthesize(System{}).feasible);
}

// Property sweep: random systems — every feasible schedule is conflict-free
// and respects precedence.
class SynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisProperty, FeasibleSchedulesAreValid) {
  ev::util::Rng rng(GetParam());
  System sys;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    Activity a;
    a.id = i;
    a.name = "t" + std::to_string(i);
    a.resource = static_cast<int>(rng.uniform_int(0, 2));
    const std::int64_t periods[] = {5000, 10000, 20000};
    a.period_us = periods[rng.uniform_int(0, 2)];
    a.duration_us = rng.uniform_int(100, 800);
    if (i > 0 && rng.bernoulli(0.4))
      a.predecessors.push_back(static_cast<int>(rng.uniform_int(0, i - 1)));
    sys.activities.push_back(std::move(a));
  }
  sys.offset_granularity_us = 100;
  const Schedule s = MonolithicSynthesizer().synthesize(sys);
  if (!s.feasible) GTEST_SKIP() << "randomly infeasible instance";
  for (std::size_t i = 0; i < sys.activities.size(); ++i) {
    for (int pred : sys.activities[i].predecessors) {
      const auto p = static_cast<std::size_t>(pred);
      EXPECT_GE(s.offset_us[i], s.offset_us[p] + sys.activities[p].duration_us);
    }
    for (std::size_t j = i + 1; j < sys.activities.size(); ++j) {
      if (sys.activities[i].resource != sys.activities[j].resource) continue;
      EXPECT_FALSE(activities_conflict(
          s.offset_us[i], sys.activities[i].duration_us, sys.activities[i].period_us,
          s.offset_us[j], sys.activities[j].duration_us, sys.activities[j].period_us));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------- integration ----

std::vector<Subsystem> make_subsystems(int count, int tasks_each) {
  // Every subsystem has private ECU tasks plus one message on the shared bus
  // (resource 100).
  std::vector<Subsystem> subs;
  for (int s = 0; s < count; ++s) {
    Subsystem sub;
    sub.name = "sub" + std::to_string(s);
    for (int t = 0; t < tasks_each; ++t) {
      Activity a;
      a.id = t;
      a.name = sub.name + "-t" + std::to_string(t);
      a.resource = s;  // private ECU
      a.period_us = 10000;
      a.duration_us = 700;
      if (t > 0) a.predecessors.push_back(t - 1);
      sub.system.activities.push_back(std::move(a));
    }
    Activity msg;
    msg.id = tasks_each;
    msg.name = sub.name + "-msg";
    msg.resource = 100;  // shared bus
    msg.period_us = 10000;
    msg.duration_us = 400;
    msg.predecessors.push_back(tasks_each - 1);
    sub.system.activities.push_back(std::move(msg));
    sub.system.offset_granularity_us = 100;
    subs.push_back(std::move(sub));
  }
  return subs;
}

TEST(Integration, IntegratesDisjointSubsystems) {
  const auto subs = make_subsystems(4, 3);
  const IntegrationResult r = ScheduleIntegrator().integrate(subs);
  ASSERT_TRUE(r.feasible);
  // Shared-bus messages from different subsystems must not collide.
  for (std::size_t s = 0; s < subs.size(); ++s) {
    for (std::size_t t = s + 1; t < subs.size(); ++t) {
      const std::size_t ms = subs[s].system.activities.size() - 1;
      const std::size_t mt = subs[t].system.activities.size() - 1;
      EXPECT_FALSE(activities_conflict(
          r.global_offset_us(s, ms), subs[s].system.activities[ms].duration_us,
          subs[s].system.activities[ms].period_us, r.global_offset_us(t, mt),
          subs[t].system.activities[mt].duration_us,
          subs[t].system.activities[mt].period_us));
    }
  }
}

TEST(Integration, CheaperThanMonolithic) {
  const auto subs = make_subsystems(6, 4);
  const IntegrationResult modular = ScheduleIntegrator().integrate(subs);
  ASSERT_TRUE(modular.feasible);

  // Equivalent monolithic problem.
  System big;
  int next_id = 0;
  for (const auto& sub : subs) {
    const int base = next_id;
    for (const Activity& a : sub.system.activities) {
      Activity copy = a;
      copy.id = next_id++;
      copy.predecessors.clear();
      for (int p : a.predecessors) copy.predecessors.push_back(base + p);
      big.activities.push_back(std::move(copy));
    }
  }
  big.offset_granularity_us = 100;
  const Schedule mono = MonolithicSynthesizer().synthesize(big);
  ASSERT_TRUE(mono.feasible);
  // The integration search touches far fewer candidates than the global one.
  EXPECT_LT(modular.search_steps, mono.search_steps * 2);
}

TEST(Integration, FailsWhenBusSaturated) {
  // Messages so long that the shared bus cannot host all subsystems.
  auto subs = make_subsystems(8, 1);
  for (auto& sub : subs) sub.system.activities.back().duration_us = 2000;
  const IntegrationResult r =
      ScheduleIntegrator(SynthesisOptions{}, 100).integrate(subs);
  EXPECT_FALSE(r.feasible);
}

// --------------------------------------------------------- response time ----

TEST(ResponseTime, ClassicExample) {
  // Three tasks, rate-monotonic priorities.
  std::vector<FpTask> tasks{{"t1", 1, 10000, 2000, 0},
                            {"t2", 2, 20000, 4000, 0},
                            {"t3", 3, 40000, 8000, 0}};
  const auto r = fp_response_times(tasks);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].response_us, 2000);
  EXPECT_EQ(r[1].response_us, 6000);   // 4000 + one preemption by t1
  EXPECT_EQ(r[2].response_us, 16000);  // fixed point: 8 + 2*2 + 1*4
  for (const auto& x : r) EXPECT_TRUE(x.schedulable);
}

TEST(ResponseTime, OverloadUnschedulable) {
  std::vector<FpTask> tasks{{"t1", 1, 1000, 600, 0}, {"t2", 2, 1000, 600, 0}};
  const auto r = fp_response_times(tasks);
  EXPECT_FALSE(r[1].schedulable);
}

TEST(ResponseTime, JitterIncreasesResponse) {
  std::vector<FpTask> base{{"t1", 1, 10000, 2000, 0}, {"t2", 2, 20000, 4000, 0}};
  std::vector<FpTask> jittered = base;
  jittered[0].jitter_us = 1000;
  const auto r0 = fp_response_times(base);
  const auto r1 = fp_response_times(jittered);
  EXPECT_GE(r1[1].response_us, r0[1].response_us);
}

TEST(Utilization, Sums) {
  std::vector<FpTask> tasks{{"a", 1, 10000, 2500, 0}, {"b", 2, 20000, 5000, 0}};
  EXPECT_DOUBLE_EQ(utilization(tasks), 0.5);
}

TEST(SampledChain, AddsPeriodPerHop) {
  // Three hops: response times 1,2,3 ms; periods 10 ms each.
  const std::int64_t latency =
      sampled_chain_latency_us({1000, 2000, 3000}, {10000, 10000, 10000});
  EXPECT_EQ(latency, 1000 + (2000 + 10000) + (3000 + 10000));
}

TEST(SampledChain, SizeMismatchRejected) {
  EXPECT_THROW((void)sampled_chain_latency_us({1000}, {}), std::invalid_argument);
}

}  // namespace
