// Unit tests for the drive-by-wire redundancy layer: voting, fault
// injection, diversity vs identical replication, and the brake-mission
// simulation.
#include <gtest/gtest.h>

#include "ev/bywire/brake_system.h"
#include "ev/bywire/redundancy.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::bywire;

RedundantChannelSet healthy_triplex() {
  return make_diverse_redundancy(3, 0.0, 0.0);
}

TEST(Redundancy, HealthyChannelsAgree) {
  ev::util::Rng rng(1);
  RedundantChannelSet set = healthy_triplex();
  const VoteResult r = set.actuate(0.42, rng);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.undetected_wrong);
  EXPECT_DOUBLE_EQ(r.output, 0.42);
  EXPECT_EQ(r.disagreeing, 0u);
}

TEST(Redundancy, SingleFaultMaskedByTriplex) {
  ev::util::Rng rng(2);
  RedundantChannelSet set = healthy_triplex();
  set.inject_random_fault(1);
  const VoteResult r = set.actuate(0.5, rng);
  EXPECT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.output, 0.5);  // majority of healthy channels wins
  EXPECT_EQ(r.disagreeing, 1u);
  EXPECT_FALSE(r.undetected_wrong);
}

TEST(Redundancy, DoubleFaultOutcomeDependsOnDiversity) {
  // Identical replicas fail with the SAME wrong value: two faulted copies
  // outvote the healthy one — dangerous.
  ev::util::Rng rng(3);
  RedundantChannelSet identical = make_identical_redundancy(3, 0.0, 0.0);
  identical.inject_random_fault(0);
  identical.inject_random_fault(2);
  EXPECT_TRUE(identical.actuate(0.5, rng).undetected_wrong);

  // Diverse replicas fail with DIFFERENT wrong values: no two channels
  // agree, so the voter reports loss of function instead of a wrong value.
  RedundantChannelSet diverse = healthy_triplex();
  diverse.inject_random_fault(0);
  diverse.inject_random_fault(2);
  const VoteResult r = diverse.actuate(0.5, rng);
  EXPECT_FALSE(r.valid);
  EXPECT_FALSE(r.undetected_wrong);
}

TEST(Redundancy, SystematicFaultKillsIdenticalReplicas) {
  ev::util::Rng rng(4);
  RedundantChannelSet identical = make_identical_redundancy(3, 0.0, 0.0);
  identical.inject_systematic_fault(0);  // the one shared implementation
  const VoteResult r = identical.actuate(0.6, rng);
  // Every replica fails together; the vote is unanimous and WRONG.
  EXPECT_TRUE(r.undetected_wrong);

  ev::util::Rng rng2(4);
  RedundantChannelSet diverse = make_diverse_redundancy(3, 0.0, 0.0);
  diverse.inject_systematic_fault(0);  // only one of three implementations
  const VoteResult rd = diverse.actuate(0.6, rng2);
  EXPECT_TRUE(rd.valid);
  EXPECT_FALSE(rd.undetected_wrong);
  EXPECT_DOUBLE_EQ(rd.output, 0.6);
}

TEST(Redundancy, RepairRestores) {
  ev::util::Rng rng(5);
  RedundantChannelSet set = make_identical_redundancy(3, 0.0, 0.0);
  set.inject_random_fault(0);
  set.inject_random_fault(1);
  EXPECT_TRUE(set.actuate(0.5, rng).undetected_wrong);
  set.repair();
  const VoteResult r = set.actuate(0.5, rng);
  EXPECT_TRUE(r.valid);
  EXPECT_FALSE(r.undetected_wrong);
}

TEST(Redundancy, ImplementationCount) {
  EXPECT_EQ(make_identical_redundancy(4, 0.0, 0.0).implementation_count(), 1u);
  EXPECT_EQ(make_diverse_redundancy(4, 0.0, 0.0).implementation_count(), 4u);
}

TEST(Redundancy, EmptyRejected) {
  EXPECT_THROW(RedundantChannelSet({}, 0.0, 0.05), std::invalid_argument);
}

TEST(Redundancy, RandomFaultIndexOutOfRangeThrows) {
  RedundantChannelSet set = make_identical_redundancy(3, 0.0, 0.0);
  EXPECT_THROW(set.inject_random_fault(3), std::out_of_range);
  EXPECT_THROW(set.inject_random_fault(1000), std::out_of_range);
  // A failed injection must not have faulted anything.
  ev::util::Rng rng(9);
  const VoteResult r = set.actuate(0.5, rng);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.disagreeing, 0u);
  // In-range indices still work.
  set.inject_random_fault(2);
  EXPECT_EQ(set.actuate(0.5, rng).disagreeing, 1u);
}

TEST(Redundancy, CountersAccumulate) {
  ev::util::Rng rng(6);
  RedundantChannelSet set = healthy_triplex();
  for (int i = 0; i < 100; ++i) (void)set.actuate(0.3, rng);
  EXPECT_EQ(set.cycles(), 100u);
  EXPECT_EQ(set.invalid_cycles(), 0u);
  EXPECT_EQ(set.undetected_wrong_cycles(), 0u);
}

// Property: diversity never increases the dangerous-failure count for the
// same fault environment.
class DiversityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiversityProperty, DiverseNeverWorseThanIdentical) {
  BrakeSystemConfig identical;
  identical.diverse = false;
  identical.systematic_fault_rate = 1e-5;  // accelerated for test speed
  identical.random_fault_rate = 1e-7;
  BrakeSystemConfig diverse = identical;
  diverse.diverse = true;

  ev::util::Rng rng_i(GetParam());
  ev::util::Rng rng_d(GetParam());
  const BrakeMissionReport ri = simulate_brake_mission(identical, 0.2, rng_i);
  const BrakeMissionReport rd = simulate_brake_mission(diverse, 0.2, rng_d);
  // Same fault trace (same seed): diversity converts unanimous-wrong cycles
  // into masked or detected ones.
  EXPECT_LE(rd.wrong_output_cycles, ri.wrong_output_cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiversityProperty, ::testing::Values(11, 22, 33));

TEST(BrakeMission, CleanMissionIsPerfect) {
  BrakeSystemConfig cfg;
  cfg.random_fault_rate = 0.0;
  cfg.systematic_fault_rate = 0.0;
  cfg.sensor_fault_rate = 0.0;
  ev::util::Rng rng(7);
  const BrakeMissionReport r = simulate_brake_mission(cfg, 0.1, rng);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.loss_of_function_cycles, 0u);
  EXPECT_EQ(r.wrong_output_cycles, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(BrakeMission, ReportsRates) {
  BrakeSystemConfig cfg;
  cfg.systematic_fault_rate = 1e-4;  // very faulty, identical replicas
  cfg.diverse = false;
  ev::util::Rng rng(8);
  const BrakeMissionReport r = simulate_brake_mission(cfg, 0.1, rng);
  EXPECT_GT(r.wrong_output_cycles, 0u);
  EXPECT_GT(r.dangerous_rate_per_hour, 0.0);
}

}  // namespace
