// Unit tests for the computation platforms: multi-core placement, FPGA
// partial-reconfiguration recovery, and the data-parallel vision pipeline.
#include <gtest/gtest.h>

#include "ev/ecu/fpga.h"
#include "ev/ecu/multicore.h"
#include "ev/ecu/vision.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::ecu;

// ------------------------------------------------------------ multicore ----

std::vector<HostedFunction> uniform_functions(std::size_t n, std::int64_t wcet_us = 2000,
                                              std::int64_t period_us = 10000) {
  std::vector<HostedFunction> fns;
  for (std::size_t i = 0; i < n; ++i)
    fns.push_back(HostedFunction{"f" + std::to_string(i), period_us, wcet_us});
  return fns;
}

TEST(Multicore, PlacesWithinSingleCore) {
  MulticoreConfig cfg;
  cfg.core_count = 1;
  cfg.interference_factor = 0.0;
  MulticoreEcu ecu(cfg);
  // 4 x 0.2 utilization = 0.8 == bound: fits exactly.
  const PlacementResult r = ecu.place(uniform_functions(4));
  EXPECT_TRUE(r.all_placed);
  EXPECT_EQ(r.placed_count, 4u);
  // A fifth does not fit.
  EXPECT_FALSE(ecu.place(uniform_functions(5)).all_placed);
}

TEST(Multicore, MoreCoresHostMoreFunctions) {
  MulticoreConfig one;
  one.core_count = 1;
  MulticoreConfig four;
  four.core_count = 4;
  const auto fns = uniform_functions(64);
  EXPECT_GT(MulticoreEcu(four).capacity(fns), MulticoreEcu(one).capacity(fns));
}

TEST(Multicore, InterferenceReducesCapacity) {
  MulticoreConfig clean;
  clean.core_count = 8;
  clean.interference_factor = 0.0;
  MulticoreConfig noisy = clean;
  noisy.interference_factor = 0.25;
  const auto fns = uniform_functions(64);
  EXPECT_GT(MulticoreEcu(clean).capacity(fns), MulticoreEcu(noisy).capacity(fns));
}

TEST(Multicore, UtilizationNeverExceedsBound) {
  MulticoreConfig cfg;
  cfg.core_count = 4;
  MulticoreEcu ecu(cfg);
  const PlacementResult r = ecu.place(uniform_functions(20, 1500, 10000));
  for (double u : r.core_utilization) EXPECT_LE(u, cfg.utilization_bound + 1e-9);
}

TEST(Multicore, RejectedFunctionsMarked) {
  MulticoreConfig cfg;
  cfg.core_count = 1;
  MulticoreEcu ecu(cfg);
  const PlacementResult r = ecu.place(uniform_functions(10));
  int rejected = 0;
  for (int c : r.core_of)
    if (c < 0) ++rejected;
  EXPECT_EQ(static_cast<std::size_t>(rejected), 10u - r.placed_count);
}

// ----------------------------------------------------------------- FPGA ----

TEST(Fpga, RecoveryTimeOrdering) {
  const FpgaConfig cfg;
  const double partial = recovery_time_s(cfg, RecoveryStrategy::kPartialReconfiguration);
  const double full = recovery_time_s(cfg, RecoveryStrategy::kFullReconfiguration);
  const double failover = recovery_time_s(cfg, RecoveryStrategy::kEcuFailover);
  const double dual = recovery_time_s(cfg, RecoveryStrategy::kDualHardware);
  // Partial reconfiguration beats full device programming, which beats an
  // ECU reboot; hot standby is fastest but costs double hardware.
  EXPECT_LT(partial, full);
  EXPECT_LT(full, failover);
  EXPECT_LT(dual, partial);
  EXPECT_LT(partial, 0.01);  // sub-10 ms per-region reconfiguration
}

TEST(Fpga, MissionAvailabilityRanking) {
  const FpgaConfig cfg;
  ev::util::Rng rng(71);
  const double mission = 8 * 3600.0;
  const auto partial =
      simulate_mission(cfg, RecoveryStrategy::kPartialReconfiguration, mission, rng);
  ev::util::Rng rng2(71);
  const auto failover = simulate_mission(cfg, RecoveryStrategy::kEcuFailover, mission, rng2);
  EXPECT_EQ(partial.faults, failover.faults);  // same fault trace (same seed)
  EXPECT_GT(partial.availability, failover.availability);
  EXPECT_LT(partial.downtime_s, failover.downtime_s);
}

TEST(Fpga, IsolationOnlyForPartialAndDual) {
  const FpgaConfig cfg;
  ev::util::Rng rng(73);
  const double mission = 24 * 3600.0;
  const auto partial =
      simulate_mission(cfg, RecoveryStrategy::kPartialReconfiguration, mission, rng);
  EXPECT_DOUBLE_EQ(partial.system_downtime_s, 0.0);
  ev::util::Rng rng2(73);
  const auto full =
      simulate_mission(cfg, RecoveryStrategy::kFullReconfiguration, mission, rng2);
  if (full.faults > 0) {
    EXPECT_GT(full.system_downtime_s, 0.0);
  }
}

TEST(Fpga, HardwareOverheadReported) {
  const FpgaConfig cfg;
  ev::util::Rng rng(75);
  EXPECT_DOUBLE_EQ(
      simulate_mission(cfg, RecoveryStrategy::kDualHardware, 3600.0, rng).hardware_overhead,
      1.0);
  EXPECT_LT(simulate_mission(cfg, RecoveryStrategy::kPartialReconfiguration, 3600.0, rng)
                .hardware_overhead,
            0.5);
}

TEST(Fpga, NoFaultsMeansFullAvailability) {
  FpgaConfig cfg;
  cfg.fault_rate_per_hour = 0.0;
  ev::util::Rng rng(77);
  const auto r =
      simulate_mission(cfg, RecoveryStrategy::kPartialReconfiguration, 3600.0, rng);
  EXPECT_EQ(r.faults, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
}

TEST(Fpga, StrategyNames) {
  EXPECT_EQ(to_string(RecoveryStrategy::kPartialReconfiguration), "partial-reconfig");
  EXPECT_EQ(to_string(RecoveryStrategy::kDualHardware), "dual-hardware");
}

// ---------------------------------------------------------------- vision ----

TEST(Vision, SceneHasPedestrianContrast) {
  ev::util::Rng rng(81);
  const Image img = generate_scene(128, 96, 3, rng);
  EXPECT_EQ(img.pixels.size(), 128u * 96u);
  int bright = 0;
  for (std::uint8_t p : img.pixels)
    if (p > 180) ++bright;
  EXPECT_GT(bright, 50);  // figures are visibly brighter than background
}

TEST(Vision, DetectorFindsPedestrians) {
  ev::util::Rng rng(83);
  const Image img = generate_scene(256, 192, 4, rng);
  const auto detections = detect_pedestrians_scalar(img, DetectorConfig{});
  EXPECT_GT(detections.size(), 0u);
}

TEST(Vision, EmptySceneFewerDetections) {
  ev::util::Rng rng_a(85);
  ev::util::Rng rng_b(85);
  const Image with = generate_scene(256, 192, 5, rng_a);
  const Image without = generate_scene(256, 192, 0, rng_b);
  const DetectorConfig cfg;
  EXPECT_GT(detect_pedestrians_scalar(with, cfg).size(),
            detect_pedestrians_scalar(without, cfg).size());
}

// Property: parallel result identical to scalar for any worker count.
class VisionParallel : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VisionParallel, MatchesScalarExactly) {
  ev::util::Rng rng(87);
  const Image img = generate_scene(320, 240, 4, rng);
  const DetectorConfig cfg;
  const auto scalar = detect_pedestrians_scalar(img, cfg);
  auto parallel = detect_pedestrians_parallel(img, cfg, GetParam());
  // Chunked order may differ between workers; sort both for comparison.
  auto key = [](const Detection& d) { return std::make_pair(d.y, d.x); };
  std::sort(parallel.begin(), parallel.end(),
            [&](const Detection& a, const Detection& b) { return key(a) < key(b); });
  auto sorted_scalar = scalar;
  std::sort(sorted_scalar.begin(), sorted_scalar.end(),
            [&](const Detection& a, const Detection& b) { return key(a) < key(b); });
  ASSERT_EQ(parallel.size(), sorted_scalar.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].x, sorted_scalar[i].x);
    EXPECT_EQ(parallel[i].y, sorted_scalar[i].y);
    EXPECT_DOUBLE_EQ(parallel[i].score, sorted_scalar[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, VisionParallel, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
