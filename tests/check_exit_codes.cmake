# Round-trip test for the `evsys check` severity -> exit-code contract, run
# under ctest (see tests/CMakeLists.txt):
#   clean scenario            -> 0, byte-identical JSON across two runs
#   warnings-only scenario    -> 3
#   scenario with errors      -> 1
# Expects -DEVSYS=<path to the evsys binary> and -DSOURCE_DIR=<repo root>.
if(NOT DEFINED EVSYS OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DEVSYS=<binary> -DSOURCE_DIR=<repo root>")
endif()

function(expect_exit scenario expected)
  execute_process(
    COMMAND "${EVSYS}" check "${scenario}"
    RESULT_VARIABLE code
    OUTPUT_QUIET ERROR_QUIET)
  if(NOT code EQUAL expected)
    message(FATAL_ERROR
      "evsys check ${scenario}: expected exit ${expected}, got ${code}")
  endif()
  message(STATUS "exit ${code} as expected: ${scenario}")
endfunction()

expect_exit("${SOURCE_DIR}/examples/scenarios/city_commute.scn" 0)
expect_exit("${SOURCE_DIR}/tests/data/unwatched.scn" 3)
expect_exit("${SOURCE_DIR}/tests/data/overloaded.scn" 1)

# Same scenario twice must render byte-identical diagnostics JSON.
set(out_a "${CMAKE_CURRENT_BINARY_DIR}/check_a.json")
set(out_b "${CMAKE_CURRENT_BINARY_DIR}/check_b.json")
foreach(out IN ITEMS "${out_a}" "${out_b}")
  execute_process(
    COMMAND "${EVSYS}" check "${SOURCE_DIR}/examples/scenarios/city_commute.scn"
            --out "${out}"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys check --out ${out} failed with ${code}")
  endif()
endforeach()
execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files "${out_a}" "${out_b}"
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR "evsys check JSON differs between identical runs")
endif()
message(STATUS "deterministic: two runs byte-identical")
