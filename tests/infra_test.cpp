// Unit tests for the charging-infrastructure / fleet information system.
#include <gtest/gtest.h>

#include "ev/infra/charging_network.h"

namespace {

using namespace ev::infra;

FleetConfig small_city() {
  FleetConfig cfg;
  cfg.station_count = 3;
  cfg.vehicle_count = 20;
  cfg.sim_hours = 4.0;
  cfg.seed = 5;
  return cfg;
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance_km({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_km({1, 1}, {1, 1}), 0.0);
}

TEST(ChargingNetwork, DeterministicConstruction) {
  const FleetConfig cfg = small_city();
  ChargingNetwork a(cfg);
  ChargingNetwork b(cfg);
  ASSERT_EQ(a.stations().size(), 3u);
  ASSERT_EQ(a.fleet().size(), 20u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(a.stations()[s].position.x_km, b.stations()[s].position.x_km);
    EXPECT_DOUBLE_EQ(a.stations()[s].position.y_km, b.stations()[s].position.y_km);
  }
}

TEST(ChargingNetwork, FleetKeepsDriving) {
  ChargingNetwork net(small_city());
  const FleetReport r = net.run(AssignmentPolicy::kNearestStation);
  EXPECT_GT(r.trips_completed, 10u);
  EXPECT_GT(r.station_utilization, 0.0);
}

TEST(ChargingNetwork, RunIsRepeatable) {
  ChargingNetwork net(small_city());
  const FleetReport a = net.run(AssignmentPolicy::kCoordinated);
  const FleetReport b = net.run(AssignmentPolicy::kCoordinated);
  EXPECT_EQ(a.trips_completed, b.trips_completed);
  EXPECT_DOUBLE_EQ(a.mean_wait_min, b.mean_wait_min);
}

TEST(ChargingNetwork, CoordinationReducesWaiting) {
  // Undersupplied city: coordination must pay off in queue time.
  FleetConfig cfg;
  cfg.station_count = 3;
  cfg.vehicle_count = 80;
  cfg.sim_hours = 8.0;
  cfg.seed = 11;
  ChargingNetwork net(cfg);
  const FleetReport nearest = net.run(AssignmentPolicy::kNearestStation);
  const FleetReport coordinated = net.run(AssignmentPolicy::kCoordinated);
  EXPECT_LT(coordinated.mean_wait_min, nearest.mean_wait_min);
}

TEST(ChargingNetwork, V2gServesEnergyWithoutStranding) {
  ChargingNetwork net(small_city());
  const FleetReport without = net.run(AssignmentPolicy::kCoordinated, 0.0);
  const FleetReport with = net.run(AssignmentPolicy::kCoordinated, 40.0);
  EXPECT_DOUBLE_EQ(without.v2g_energy_kwh, 0.0);
  EXPECT_GT(with.v2g_energy_kwh, 1.0);
  // The reserve floor keeps V2G from stranding more vehicles.
  EXPECT_LE(with.stranded, without.stranded + 1);
}

TEST(ChargingNetwork, PolicyNames) {
  EXPECT_EQ(to_string(AssignmentPolicy::kNearestStation), "nearest-station");
  EXPECT_EQ(to_string(AssignmentPolicy::kCoordinated), "coordinated");
}

TEST(ChargingNetwork, MoreStationsLessWaiting) {
  FleetConfig scarce;
  scarce.station_count = 2;
  scarce.vehicle_count = 60;
  scarce.sim_hours = 6.0;
  scarce.seed = 13;
  FleetConfig ample = scarce;
  ample.station_count = 10;
  const FleetReport r_scarce = ChargingNetwork(scarce).run(AssignmentPolicy::kNearestStation);
  const FleetReport r_ample = ChargingNetwork(ample).run(AssignmentPolicy::kNearestStation);
  EXPECT_LE(r_ample.mean_wait_min, r_scarce.mean_wait_min);
}

}  // namespace
