# Determinism contract of the parallel campaign runner, run under ctest
# (see tests/CMakeLists.txt): the same seed ladder through `evsys campaign`
# must render a byte-identical report for any --jobs value.
# Expects -DEVSYS=<path to the evsys binary> and -DSOURCE_DIR=<repo root>.
if(NOT DEFINED EVSYS OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DEVSYS=<binary> -DSOURCE_DIR=<repo root>")
endif()

set(scenario "${SOURCE_DIR}/examples/scenarios/city_commute.scn")
set(out_serial "${CMAKE_CURRENT_BINARY_DIR}/campaign_jobs1.json")
set(out_parallel "${CMAKE_CURRENT_BINARY_DIR}/campaign_jobs4.json")

foreach(jobs_out IN ITEMS "1;${out_serial}" "4;${out_parallel}")
  list(GET jobs_out 0 jobs)
  list(GET jobs_out 1 out)
  execute_process(
    COMMAND "${EVSYS}" campaign "${scenario}" --seeds 8 --jobs "${jobs}"
            --out "${out}"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys campaign --jobs ${jobs} failed with ${code}")
  endif()
endforeach()

execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${out_serial}" "${out_parallel}"
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
    "campaign report differs between --jobs 1 and --jobs 4 — the parallel "
    "fold is not deterministic")
endif()
message(STATUS "deterministic: --jobs 1 and --jobs 4 reports byte-identical")
