// Unit tests for the in-vehicle network models: CAN (+ response-time
// analysis), LIN, FlexRay, MOST, switched Ethernet (strict priority, CBS,
// time-aware gates), PTP synchronization, the gateway, and the Fig. 1
// topology builder.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "ev/network/can.h"
#include "ev/network/ethernet.h"
#include "ev/network/flexray.h"
#include "ev/network/gateway.h"
#include "ev/network/lin.h"
#include "ev/network/most.h"
#include "ev/network/ptp.h"
#include "ev/obs/metrics.h"
#include "ev/network/topology.h"
#include "ev/sim/simulator.h"

namespace {

using namespace ev::network;
using ev::sim::Simulator;
using ev::sim::Time;

// ------------------------------------------------------------------ CAN ----

TEST(Can, FrameBitsFormula) {
  // 47 + 8n + stuffing((34 + 8n - 1) / 4).
  EXPECT_EQ(CanBus::frame_bits(0), 47u + 8u);
  EXPECT_EQ(CanBus::frame_bits(8), 47u + 64u + 24u);
}

TEST(Can, DeliversSingleFrame) {
  Simulator sim;
  CanBus bus(sim, "can", 500e3);
  int delivered = 0;
  bus.subscribe([&](const Frame&, Time) { ++delivered; });
  Frame f;
  f.id = 0x100;
  f.payload_size = 8;
  EXPECT_TRUE(bus.send(f));
  sim.run();
  EXPECT_EQ(delivered, 1);
  // 135 bits at 500 kbit/s = 270 us.
  EXPECT_NEAR(bus.latency().mean(), 270e-6, 1e-6);
}

TEST(Can, RejectsOversizedPayload) {
  Simulator sim;
  CanBus bus(sim, "can");
  Frame f;
  f.payload_size = 9;
  EXPECT_FALSE(bus.send(f));
}

TEST(Can, ArbitrationLowestIdWins) {
  Simulator sim;
  CanBus bus(sim, "can", 500e3);
  std::vector<std::uint32_t> order;
  bus.subscribe([&](const Frame& f, Time) { order.push_back(f.id); });
  // Seed one frame to occupy the bus, then queue contenders.
  Frame f;
  f.payload_size = 8;
  f.id = 0x50;
  ASSERT_TRUE(bus.send(f));
  f.id = 0x300;
  ASSERT_TRUE(bus.send(f));
  f.id = 0x100;
  ASSERT_TRUE(bus.send(f));
  f.id = 0x200;
  ASSERT_TRUE(bus.send(f));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x50, 0x100, 0x200, 0x300}));
}

TEST(Can, NonPreemptive) {
  Simulator sim;
  CanBus bus(sim, "can", 500e3);
  std::vector<std::uint32_t> order;
  bus.subscribe([&](const Frame& f, Time) { order.push_back(f.id); });
  Frame low;
  low.id = 0x700;
  low.payload_size = 8;
  ASSERT_TRUE(bus.send(low));
  // A higher-priority frame arriving mid-transmission must wait.
  sim.schedule_at(Time::us(50), [&] {
    Frame high;
    high.id = 0x001;
    high.payload_size = 8;
    ASSERT_TRUE(bus.send(high));
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0x700, 0x001}));
}

TEST(Can, UtilizationAccumulates) {
  Simulator sim;
  CanBus bus(sim, "can", 500e3);
  bus.subscribe([](const Frame&, Time) {});
  sim.schedule_periodic(Time{}, Time::ms(1), [&] {
    Frame f;
    f.id = 1;
    f.payload_size = 8;
    (void)bus.send(f);
  });
  sim.run_until(Time::s(1));
  // 135 bits / 1 ms at 500 kbit/s = 27% utilization.
  EXPECT_NEAR(bus.utilization(), 0.27, 0.01);
}

TEST(Can, ObserverGaugesMatchHandRolledCounters) {
  Simulator sim;
  ev::obs::MetricsRegistry registry;
  CanBus bus(sim, "can0", 500e3);
  bus.attach_observer(registry);
  bus.subscribe([](const Frame&, Time) {});
  sim.schedule_periodic(Time{}, Time::ms(1), [&] {
    Frame f;
    f.id = 1;
    f.payload_size = 8;
    (void)bus.send(f);
  });
  sim.run_until(Time::s(1));
  EXPECT_EQ(registry.counter_value(registry.counter("net.can0.frames")),
            bus.delivered_count());
  EXPECT_EQ(registry.counter_value(registry.counter("net.can0.payload_bytes")),
            bus.delivered_payload_bytes());
  // The gauge holds utilization as of the last delivery (slightly before the
  // horizon the hand-rolled query sees), so compare with a small tolerance.
  EXPECT_NEAR(registry.gauge_value(registry.gauge("net.can0.utilization")),
              bus.utilization(), 1e-3);
  EXPECT_EQ(
      registry
          .histogram_stats(registry.histogram("net.can0.frame_latency_us", 0.0, 1e5, 64))
          .count(),
      bus.latency().count());
  EXPECT_GT(bus.delivered_count(), 0u);
}

TEST(CanAnalysis, HighestPriorityBoundTight) {
  std::vector<CanMessageSpec> set{{1, 8, 0.01, 0.0}, {2, 8, 0.01, 0.0}, {3, 8, 0.01, 0.0}};
  const auto results = can_response_times(set, 500e3);
  ASSERT_EQ(results.size(), 3u);
  // Highest priority: blocking (one 135-bit frame) + own transmission.
  EXPECT_NEAR(results[0].worst_case_s, 2 * 135.0 / 500e3, 1e-6);
  EXPECT_TRUE(results[0].schedulable);
  // Monotone: lower priority has larger bound.
  EXPECT_GE(results[1].worst_case_s, results[0].worst_case_s);
  EXPECT_GE(results[2].worst_case_s, results[1].worst_case_s);
}

TEST(CanAnalysis, OverloadDetected) {
  // 30 messages at 1 ms on 500 kbit/s: > 100% utilization.
  std::vector<CanMessageSpec> set;
  for (std::uint32_t i = 0; i < 30; ++i) set.push_back({i, 8, 0.001, 0.0});
  const auto results = can_response_times(set, 500e3);
  EXPECT_FALSE(results.back().schedulable);
}

TEST(CanAnalysis, BoundDominatesSimulation) {
  // The analytical worst case must upper-bound every observed latency.
  std::vector<CanMessageSpec> set{{1, 8, 0.005, 0.0}, {2, 8, 0.007, 0.0},
                                  {3, 8, 0.009, 0.0}, {4, 8, 0.011, 0.0}};
  const auto bounds = can_response_times(set, 500e3);
  std::map<std::uint32_t, double> bound_of;
  for (const auto& b : bounds) bound_of[b.id] = b.worst_case_s;

  Simulator sim;
  CanBus bus(sim, "can", 500e3);
  std::map<std::uint32_t, double> observed_max;
  bus.subscribe([&](const Frame& f, Time at) {
    observed_max[f.id] =
        std::max(observed_max[f.id], (at - f.created).to_seconds());
  });
  for (const auto& m : set) {
    sim.schedule_periodic(Time{}, Time::seconds(m.period_s), [&bus, m] {
      Frame f;
      f.id = m.id;
      f.payload_size = m.payload_bytes;
      (void)bus.send(f);
    });
  }
  sim.run_until(Time::s(5));
  for (const auto& [id, obs] : observed_max) EXPECT_LE(obs, bound_of[id] + 1e-9);
}

// ------------------------------------------------- CAN stochastic errors ----

// Fixed periodic workload shared by the error-model tests: four frames sent
// on their periods until \p until_s, then one extra second of drain time
// (errors delay frames, they never lose them). Returns the send count.
std::size_t drive_workload(Simulator& sim, CanBus& bus, double until_s) {
  auto sent = std::make_shared<std::size_t>(0);
  for (std::uint32_t id = 1; id <= 4; ++id) {
    const double period_s = 0.004 + 0.001 * id;
    sim.schedule_periodic(Time{}, Time::seconds(period_s),
                          [&bus, &sim, sent, id, until_s] {
                            if (sim.now().to_seconds() > until_s) return;
                            Frame f;
                            f.id = id;
                            f.payload_size = 8;
                            if (bus.send(f)) ++*sent;
                          });
  }
  sim.run_until(Time::seconds(until_s + 1.0));
  return *sent;
}

TEST(CanErrorModel, ZeroModelIsInert) {
  Simulator clean_sim, armed_sim;
  CanBus clean(clean_sim, "can", 125e3);
  CanBus armed(armed_sim, "can", 125e3);
  armed.arm_error_model(CanErrorModel{});  // all-zero: disarmed
  drive_workload(clean_sim, clean, 1.0);
  drive_workload(armed_sim, armed, 1.0);
  EXPECT_EQ(armed.fault_error_count(), 0u);
  EXPECT_EQ(armed.delivered_count(), clean.delivered_count());
  EXPECT_EQ(armed.latency().max(), clean.latency().max());
  EXPECT_EQ(armed.latency().mean(), clean.latency().mean());
}

TEST(CanErrorModel, PoissonErrorsDelayButNeverLose) {
  Simulator clean_sim, armed_sim;
  CanBus clean(clean_sim, "can", 125e3);
  CanBus armed(armed_sim, "can", 125e3);
  CanErrorModel model;
  model.poisson_rate_per_s = 400.0;
  model.seed = 7;
  armed.arm_error_model(model);
  drive_workload(clean_sim, clean, 2.0);
  drive_workload(armed_sim, armed, 2.0);
  EXPECT_GT(armed.fault_error_count(), 0u);
  // Automatic retransmission: every frame still arrives, only later.
  EXPECT_EQ(armed.delivered_count(), clean.delivered_count());
  EXPECT_GT(armed.latency().mean(), clean.latency().mean());
}

TEST(CanErrorModel, BernoulliErrorsDelayButNeverLose) {
  Simulator sim;
  CanBus bus(sim, "can", 125e3);
  CanErrorModel model;
  model.per_attempt_prob = 0.25;
  model.seed = 11;
  bus.arm_error_model(model);
  const std::size_t sent = drive_workload(sim, bus, 2.0);
  EXPECT_GT(bus.fault_error_count(), 0u);
  // ~1/3 extra attempts at p = 0.25; every one of them ends in a delivery.
  EXPECT_EQ(bus.delivered_count(), sent);
}

TEST(CanErrorModel, SameSeedReplaysBitIdentically) {
  const auto run = [](std::uint64_t seed) {
    Simulator sim;
    CanBus bus(sim, "can", 125e3);
    CanErrorModel model;
    model.poisson_rate_per_s = 300.0;
    model.per_attempt_prob = 0.05;
    model.seed = seed;
    bus.arm_error_model(model);
    drive_workload(sim, bus, 2.0);
    return std::tuple{bus.fault_error_count(), bus.latency().max(),
                      bus.latency().mean()};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(CanAnalysis, FaultAwareLadderMatchesErrorFreeAtZero) {
  const std::vector<CanMessageSpec> set{{1, 8, 0.005, 0.0}, {2, 8, 0.007, 0.0002},
                                        {3, 8, 0.009, 0.0}, {4, 4, 0.011, 0.0}};
  const auto clean = can_response_times(set, 125e3);
  const auto zero = can_response_times(set, 125e3, 135.0 / 125e3, 0);
  ASSERT_EQ(clean.size(), zero.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    // Bit-identical, not merely close: the k = 0 rung IS the deterministic
    // analysis (the E24 degeneracy contract).
    EXPECT_EQ(clean[i].worst_case_s, zero[i].worst_case_s);
    EXPECT_EQ(clean[i].schedulable, zero[i].schedulable);
  }
}

TEST(CanAnalysis, FaultAwareLadderMonotoneInErrors) {
  const std::vector<CanMessageSpec> set{{1, 8, 0.005, 0.0}, {2, 8, 0.007, 0.0},
                                        {3, 8, 0.009, 0.0}, {4, 8, 0.011, 0.0}};
  const double overhead_s = (31.0 + 135.0) / 125e3;
  auto prev = can_response_times(set, 125e3, overhead_s, 0);
  for (int k = 1; k <= 8; ++k) {
    const auto next = can_response_times(set, 125e3, overhead_s, k);
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (!prev[i].schedulable) continue;
      if (next[i].schedulable) {
        EXPECT_GE(next[i].worst_case_s, prev[i].worst_case_s + overhead_s - 1e-12);
      }
    }
    prev = next;
  }
}

// ------------------------------------------------------------------ LIN ----

TEST(Lin, ScheduleDeliversInSlots) {
  Simulator sim;
  LinBus bus(sim, "lin", {{0x10, 1, 2}, {0x11, 2, 2}}, 0.01);
  std::vector<std::uint32_t> order;
  bus.subscribe([&](const Frame& f, Time) { order.push_back(f.id); });
  Frame f;
  f.id = 0x11;
  ASSERT_TRUE(bus.send(f));
  f.id = 0x10;
  ASSERT_TRUE(bus.send(f));
  bus.start();
  sim.run_until(Time::ms(25));
  // Slot order follows the schedule table, not send order.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0x10u);
  EXPECT_EQ(order[1], 0x11u);
}

TEST(Lin, UnknownIdRejected) {
  Simulator sim;
  LinBus bus(sim, "lin", {{0x10, 1, 2}});
  Frame f;
  f.id = 0x42;
  EXPECT_FALSE(bus.send(f));
}

TEST(Lin, LatencyBoundedByCycle) {
  Simulator sim;
  LinBus bus(sim, "lin", {{0x10, 1, 2}, {0x11, 2, 2}, {0x12, 3, 2}, {0x13, 4, 2}}, 0.01);
  bus.subscribe([](const Frame&, Time) {});
  bus.start();
  sim.schedule_periodic(Time::ms(1), Time::ms(40), [&] {
    Frame f;
    f.id = 0x12;
    (void)bus.send(f);
  });
  sim.run_until(Time::s(2));
  EXPECT_GT(bus.delivered_count(), 10u);
  EXPECT_LE(bus.latency().max(), bus.cycle_time_s() + 0.001);
}

TEST(Lin, StateSemanticsKeepLatest) {
  Simulator sim;
  LinBus bus(sim, "lin", {{0x10, 1, 2}}, 0.01);
  std::vector<std::uint64_t> seqs;
  bus.subscribe([&](const Frame& f, Time) { seqs.push_back(f.sequence); });
  Frame f;
  f.id = 0x10;
  ASSERT_TRUE(bus.send(f));  // seq 0
  ASSERT_TRUE(bus.send(f));  // seq 1 overwrites
  bus.start();
  sim.run_until(Time::ms(15));
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 1u);
}

TEST(Lin, RejectsSlotShorterThanFrame) {
  Simulator sim;
  EXPECT_THROW(LinBus(sim, "lin", {{0x10, 1, 8}}, 0.001), std::invalid_argument);
}

// -------------------------------------------------------------- FlexRay ----

FlexRayConfig small_flexray() {
  FlexRayConfig cfg;
  cfg.static_slots = {{0x1, 1, 16}, {0x2, 2, 16}, {0x3, 3, 16}};
  cfg.static_payload_bytes = 16;
  return cfg;
}

TEST(FlexRay, StaticSlotDeterministicLatency) {
  Simulator sim;
  FlexRayBus bus(sim, "fr", small_flexray());
  ev::util::SampleSeries latency;
  bus.subscribe([&](const Frame& f, Time at) {
    if (f.id == 0x2) latency.add((at - f.created).to_seconds());
  });
  bus.start();
  // Publish synchronously with the cycle: latency must be constant.
  sim.schedule_periodic(Time::us(1), Time::seconds(bus.cycle_time_s()), [&] {
    Frame f;
    f.id = 0x2;
    (void)bus.send(f);
  });
  sim.run_until(Time::s(1));
  ASSERT_GT(latency.count(), 100u);
  // Zero jitter: max == min.
  EXPECT_NEAR(latency.max() - latency.min(), 0.0, 1e-9);
}

TEST(FlexRay, DynamicSegmentPriorityOrder) {
  Simulator sim;
  FlexRayBus bus(sim, "fr", small_flexray());
  std::vector<std::uint32_t> order;
  bus.subscribe([&](const Frame& f, Time) { order.push_back(f.id); });
  Frame f;
  f.payload_size = 8;
  f.id = 0x300;
  ASSERT_TRUE(bus.send(f));
  f.id = 0x100;
  ASSERT_TRUE(bus.send(f));
  bus.start();
  sim.run_until(Time::seconds(bus.cycle_time_s() * 2));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0x100u);  // lower id first in the minislot sequence
}

TEST(FlexRay, DynamicOverflowCarriesToNextCycle) {
  Simulator sim;
  FlexRayConfig cfg = small_flexray();
  cfg.minislot_count = 10;  // tiny dynamic segment
  FlexRayBus bus(sim, "fr", cfg);
  int delivered = 0;
  bus.subscribe([&](const Frame&, Time) { ++delivered; });
  // Queue more dynamic frames than one cycle can carry.
  Frame f;
  f.payload_size = 32;
  for (std::uint32_t i = 0; i < 6; ++i) {
    f.id = 0x200 + i;
    ASSERT_TRUE(bus.send(f));
  }
  bus.start();
  sim.run_until(Time::seconds(bus.cycle_time_s() * 1.1));
  EXPECT_LT(delivered, 6);
  sim.run_until(Time::seconds(bus.cycle_time_s() * 10));
  EXPECT_EQ(delivered, 6);
}

TEST(FlexRay, DuplicateStaticIdRejected) {
  Simulator sim;
  FlexRayConfig cfg;
  cfg.static_slots = {{0x1, 1, 16}, {0x1, 2, 16}};
  EXPECT_THROW(FlexRayBus(sim, "fr", cfg), std::invalid_argument);
}

TEST(FlexRay, StateSemanticsOnStaticSlots) {
  Simulator sim;
  FlexRayBus bus(sim, "fr", small_flexray());
  std::vector<std::uint64_t> seqs;
  bus.subscribe([&](const Frame& f, Time) { seqs.push_back(f.sequence); });
  Frame f;
  f.id = 0x1;
  ASSERT_TRUE(bus.send(f));
  ASSERT_TRUE(bus.send(f));  // overwrites the buffered value
  bus.start();
  sim.run_until(Time::seconds(bus.cycle_time_s() * 1.5));
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 1u);
}

// ----------------------------------------------------------------- MOST ----

TEST(Most, SynchronousStreamConstantLatency) {
  Simulator sim;
  MostBus bus(sim, "most", {{0x800, 8}});
  ev::util::SampleSeries lat;
  bus.subscribe([&](const Frame& f, Time at) {
    if (f.id == 0x800) lat.add((at - f.created).to_seconds());
  });
  bus.start();
  sim.schedule_periodic(Time::ms(1), Time::ms(5), [&] {
    Frame f;
    f.id = 0x800;
    f.payload_size = 8;
    (void)bus.send(f);
  });
  sim.run_until(Time::s(1));
  ASSERT_GT(lat.count(), 50u);
  EXPECT_NEAR(lat.max(), bus.frame_period_s(), 1e-6);
  EXPECT_NEAR(lat.min(), bus.frame_period_s(), 1e-6);
}

TEST(Most, AsyncLargeTransferFragmented) {
  Simulator sim;
  MostBus bus(sim, "most", {});
  int delivered = 0;
  bus.subscribe([&](const Frame&, Time) { ++delivered; });
  Frame f;
  f.id = 0x900;
  f.payload_size = 16384;  // needs hundreds of frames of async budget
  ASSERT_TRUE(bus.send(f));
  bus.start();
  sim.run_until(Time::ms(3));
  EXPECT_EQ(delivered, 0);  // still in flight
  sim.run_until(Time::ms(500));
  EXPECT_EQ(delivered, 1);
}

TEST(Most, SyncReservationBoundsChecked) {
  Simulator sim;
  EXPECT_THROW(MostBus(sim, "most", {{0x1, 100}, {0x2, 100}}, 25e6, 44100.0),
               std::invalid_argument);
}

// ------------------------------------------------------------- Ethernet ----

TEST(Ethernet, RoutesToDestination) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 4);
  sw.attach(1, 0);
  sw.attach(2, 1);
  sw.add_route(0x10, EthRoute{{1}, EthClass::kBestEffort});
  int delivered = 0;
  sw.subscribe([&](const Frame&, Time) { ++delivered; });
  Frame f;
  f.id = 0x10;
  f.source = 1;
  f.payload_size = 100;
  EXPECT_TRUE(sw.send(f));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Ethernet, UnknownSourceOrRouteRejected) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  Frame f;
  f.id = 0x10;
  f.source = 99;
  EXPECT_FALSE(sw.send(f));
  f.source = 1;
  EXPECT_FALSE(sw.send(f));  // no route
}

TEST(Ethernet, LatencyMatchesStoreAndForward) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 2, 100e6, 4e-6);
  sw.attach(1, 0);
  sw.add_route(0x10, EthRoute{{1}, EthClass::kBestEffort});
  double latency = 0.0;
  sw.subscribe([&](const Frame& f, Time at) { latency = (at - f.created).to_seconds(); });
  Frame f;
  f.id = 0x10;
  f.source = 1;
  f.payload_size = 100;
  ASSERT_TRUE(sw.send(f));
  sim.run();
  const double wire = EthernetSwitch::frame_bits(100) / 100e6;
  EXPECT_NEAR(latency, 2 * wire + 4e-6, 1e-7);  // uplink + forward + egress
}

TEST(Ethernet, StrictPriorityPreemptsQueueOrder) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  sw.add_route(0x10, EthRoute{{1}, EthClass::kBestEffort});
  sw.add_route(0x20, EthRoute{{1}, EthClass::kTimeTriggered});
  std::vector<std::uint32_t> order;
  sw.subscribe([&](const Frame& f, Time) { order.push_back(f.id); });
  // Burst of best-effort, then one TT frame right behind.
  Frame be;
  be.id = 0x10;
  be.source = 1;
  be.payload_size = 1500;
  Frame tt;
  tt.id = 0x20;
  tt.source = 1;
  tt.payload_size = 64;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sw.send(be));
  ASSERT_TRUE(sw.send(tt));
  sim.run();
  ASSERT_EQ(order.size(), 4u);
  // The TT frame overtakes queued best-effort frames at the egress.
  EXPECT_NE(order.back(), 0x20u);
}

TEST(Ethernet, CbsThrottlesClassA) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  sw.add_route(0x30, EthRoute{{1}, EthClass::kAvbClassA});
  sw.enable_cbs(1, 0.10);  // only 10% of line rate for class A
  sw.subscribe([](const Frame&, Time) {});
  // Saturating class-A burst.
  sim.schedule_periodic(Time{}, Time::us(50), [&] {
    Frame f;
    f.id = 0x30;
    f.source = 1;
    f.payload_size = 1000;
    (void)sw.send(f);
  });
  sim.run_until(Time::ms(100));
  // Egress throughput limited to ~10% of 100 Mbit/s = ~1.25 kB/ms.
  const double goodput_bps =
      static_cast<double>(sw.delivered_payload_bytes()) * 8.0 / 0.1;
  EXPECT_LT(goodput_bps, 0.18 * 100e6);
}

TEST(Ethernet, TimeAwareGateDelaysUntilWindow) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 2);
  sw.attach(1, 0);
  sw.add_route(0x40, EthRoute{{1}, EthClass::kTimeTriggered});
  GateSchedule gs;
  gs.cycle_s = 1e-3;
  gs.windows.push_back(GateWindow{0.5e-3, 0.2e-3, true});   // TT window
  gs.windows.push_back(GateWindow{0.0, 0.5e-3, false});     // the rest
  gs.windows.push_back(GateWindow{0.7e-3, 0.3e-3, false});
  sw.set_gate_schedule(1, gs);
  Time delivered_at;
  sw.subscribe([&](const Frame&, Time at) { delivered_at = at; });
  Frame f;
  f.id = 0x40;
  f.source = 1;
  f.payload_size = 64;
  sim.schedule_at(Time::us(100), [&] { ASSERT_TRUE(sw.send(f)); });
  sim.run_until(Time::ms(2));
  // The frame waits for the 0.5 ms TT window.
  EXPECT_GE(delivered_at.to_seconds(), 0.5e-3);
  EXPECT_LE(delivered_at.to_seconds(), 0.75e-3);
}

TEST(Ethernet, MulticastFanOut) {
  Simulator sim;
  EthernetSwitch sw(sim, "eth", 4);
  sw.attach(1, 0);
  sw.add_route(0x50, EthRoute{{1, 2, 3}, EthClass::kBestEffort});
  int delivered = 0;
  sw.subscribe([&](const Frame&, Time) { ++delivered; });
  Frame f;
  f.id = 0x50;
  f.source = 1;
  ASSERT_TRUE(sw.send(f));
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(Ethernet, MinimumFramePadding) {
  EXPECT_EQ(EthernetSwitch::frame_bits(1), EthernetSwitch::frame_bits(46));
  EXPECT_GT(EthernetSwitch::frame_bits(100), EthernetSwitch::frame_bits(46));
}

// ------------------------------------------------------------------ PTP ----

TEST(Ptp, ResidualErrorBounded) {
  Simulator sim;
  ev::util::Rng rng(31);
  PtpConfig cfg;
  PtpSync sync(sim, {20.0, -35.0, 50.0}, cfg, rng);
  sync.start();
  sim.run_until(Time::s(10));
  EXPECT_GT(sync.rounds(), 50u);
  // After convergence the residual must be far below a millisecond —
  // microsecond-class, enabling time-triggered Ethernet guard bands.
  EXPECT_LT(sync.residual_error().percentile(99), 20e-6);
}

TEST(Ptp, AsymmetryCreatesErrorFloor) {
  Simulator sim;
  ev::util::Rng rng(33);
  PtpConfig cfg;
  cfg.asymmetry_s = 5e-6;
  PtpSync sync(sim, {10.0}, cfg, rng);
  sync.start();
  sim.run_until(Time::s(10));
  // The uncompensated asymmetry biases every estimate by ~asymmetry.
  EXPECT_GT(sync.residual_error().percentile(50), 2e-6);
}

TEST(DriftingClock, DriftAccumulates) {
  DriftingClock clock(100.0, 0.0);  // 100 ppm
  EXPECT_NEAR(clock.error_s(Time::s(10)), 1e-3, 1e-9);
  clock.correct(1e-3);
  EXPECT_NEAR(clock.error_s(Time::s(10)), 0.0, 1e-9);
}

// -------------------------------------------------------------- gateway ----

TEST(Gateway, ForwardsAndTranslates) {
  Simulator sim;
  CanBus a(sim, "a", 500e3);
  CanBus b(sim, "b", 500e3);
  Gateway gw(sim, "gw", 100e-6);
  gw.add_route({&a, 0x10, &b, 0x99, 4});
  std::vector<std::uint32_t> seen;
  b.subscribe([&](const Frame& f, Time) { seen.push_back(f.id); });
  Frame f;
  f.id = 0x10;
  f.payload_size = 8;
  ASSERT_TRUE(a.send(f));
  sim.run();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 0x99u);
  EXPECT_EQ(gw.forwarded_count(), 1u);
}

TEST(Gateway, PreservesEndToEndTimestamp) {
  Simulator sim;
  CanBus a(sim, "a", 500e3);
  CanBus b(sim, "b", 500e3);
  Gateway gw(sim, "gw", 200e-6);
  gw.add_route({&a, 0x10, &b, 0x10, 0});
  double e2e = 0.0;
  b.subscribe([&](const Frame& f, Time at) { e2e = (at - f.created).to_seconds(); });
  // Send at t > 0: a zero `created` stamp is the "unset" sentinel, so a
  // frame genuinely created at t = 0 would be re-stamped by the second bus.
  sim.schedule_at(Time::ms(1), [&] {
    Frame f;
    f.id = 0x10;
    f.payload_size = 8;
    ASSERT_TRUE(a.send(f));
  });
  sim.run();
  // Two CAN transmissions (270 us each) + 200 us gateway processing.
  EXPECT_NEAR(e2e, 2 * 270e-6 + 200e-6, 5e-6);
}

TEST(Gateway, CountsDropsOnRejectingTarget) {
  Simulator sim;
  CanBus a(sim, "a", 500e3);
  LinBus b(sim, "b", {{0x10, 1, 2}});
  Gateway gw(sim, "gw");
  gw.add_route({&a, 0x20, &b, 0x42, 0});  // 0x42 has no LIN slot
  Frame f;
  f.id = 0x20;
  f.payload_size = 8;
  ASSERT_TRUE(a.send(f));
  sim.run();
  EXPECT_EQ(gw.dropped_count(), 1u);
}

TEST(Gateway, ObserverCountsForwardsDropsAndHopLatency) {
  Simulator sim;
  ev::obs::MetricsRegistry metrics;
  CanBus a(sim, "a", 500e3);
  CanBus b(sim, "b", 500e3);
  LinBus c(sim, "c", {{0x10, 1, 2}});
  Gateway gw(sim, "gw", 150e-6);
  gw.attach_observer(metrics);
  gw.add_route({&a, 0x10, &b, 0x10, 0});
  gw.add_route({&a, 0x20, &c, 0x42, 0});  // 0x42 has no LIN slot -> dropped
  Frame ok;
  ok.id = 0x10;
  ok.payload_size = 8;
  Frame doomed;
  doomed.id = 0x20;
  doomed.payload_size = 8;
  ASSERT_TRUE(a.send(ok));
  ASSERT_TRUE(a.send(doomed));
  sim.run();
  EXPECT_EQ(metrics.counter_value(metrics.counter("net.gw.gw.forwarded")), 1u);
  EXPECT_EQ(metrics.counter_value(metrics.counter("net.gw.gw.dropped")), 1u);
  // Per-hop processing latency: both frames were measured, and each hop
  // took at least the 150 us processing delay.
  const auto& stats = metrics.histogram_stats(
      metrics.histogram("net.gw.gw.hop_latency_us", 0.0, 1e4, 64));
  ASSERT_EQ(stats.count(), 2u);
  EXPECT_GE(stats.min(), 150.0);
}

// ------------------------------------------------------------- topology ----

TEST(Figure1, BuildsFiveBuses) {
  Simulator sim;
  Figure1Network net(sim);
  EXPECT_EQ(net.buses().size(), 5u);
  EXPECT_GT(net.sources().size(), 15u);
}

TEST(Figure1, TrafficFlowsEverywhere) {
  Simulator sim;
  Figure1Network net(sim);
  net.start();
  sim.run_until(Time::s(5));
  for (Bus* bus : net.buses()) {
    EXPECT_GT(bus->delivered_count(), 10u) << bus->name();
    EXPECT_GT(bus->utilization(), 0.0) << bus->name();
    EXPECT_LT(bus->utilization(), 1.0) << bus->name();
  }
  EXPECT_GT(net.gateway().forwarded_count(), 50u);
}

TEST(Figure1, CrossDomainFlowsMeasured) {
  Simulator sim;
  Figure1Network net(sim);
  net.start();
  sim.run_until(Time::s(5));
  ASSERT_EQ(net.flow_latency().size(), 3u);
  for (const auto& [name, series] : net.flow_latency()) {
    EXPECT_GT(series.count(), 10u) << name;
    EXPECT_LT(series.max(), 0.2) << name;  // cross-domain within 200 ms
  }
}

TEST(Figure1, LoadScaleIncreasesUtilization) {
  Simulator sim_lo;
  Figure1Config lo;
  lo.load_scale = 0.5;
  Figure1Network net_lo(sim_lo, lo);
  net_lo.start();
  sim_lo.run_until(Time::s(3));

  Simulator sim_hi;
  Figure1Config hi;
  hi.load_scale = 2.0;
  Figure1Network net_hi(sim_hi, hi);
  net_hi.start();
  sim_hi.run_until(Time::s(3));

  EXPECT_GT(net_hi.safety_can().utilization(), net_lo.safety_can().utilization());
}

}  // namespace
