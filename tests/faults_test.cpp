// Unit and end-to-end tests for the fault-injection subsystem: the seeded
// FaultPlan, the bus/sensor/partition injector hooks, the middleware
// HealthMonitor watchdog, and the vehicle-level DegradationManager. The
// end-to-end cases mirror the E17 experiment: each injected fault must be
// detected by the *regular* detection chain (CRC, debounce, heartbeat) and
// drive the mode machine through the expected transitions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ev/bms/battery_manager.h"
#include "ev/bywire/redundancy.h"
#include "ev/faults/degradation.h"
#include "ev/faults/fault_plan.h"
#include "ev/faults/network_faults.h"
#include "ev/middleware/health.h"
#include "ev/middleware/middleware.h"
#include "ev/network/can.h"
#include "ev/obs/metrics.h"
#include "ev/powertrain/drive_cycle.h"
#include "ev/powertrain/simulation.h"
#include "ev/sim/simulator.h"
#include "ev/util/rng.h"

namespace {

using ev::faults::DegradationManager;
using ev::faults::DegradationPolicy;
using ev::faults::DriveMode;
using ev::faults::FaultPlan;
using ev::sim::Simulator;
using ev::sim::Time;

// ------------------------------------------------------- bus fault hooks ----

TEST(BusFaults, DropDiscardsExactlyRequestedFrames) {
  Simulator sim;
  ev::network::CanBus bus(sim, "can");
  int delivered = 0;
  bus.subscribe([&](const ev::network::Frame&, Time) { ++delivered; });
  bus.inject_drop(2);
  for (int i = 0; i < 5; ++i) {
    ev::network::Frame f;
    f.id = static_cast<std::uint32_t>(i);
    f.source = 1;
    ASSERT_TRUE(bus.send(f));
  }
  sim.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(bus.fault_dropped_count(), 2u);
}

TEST(BusFaults, CorruptionIsDetectedByCrcAndDiscarded) {
  Simulator sim;
  ev::network::CanBus bus(sim, "can");
  int delivered = 0;
  bus.subscribe([&](const ev::network::Frame&, Time) { ++delivered; });
  bus.inject_corruption(1);
  ev::network::Frame f;
  f.id = 1;
  f.source = 1;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  f.payload_size = f.payload.size();
  ASSERT_TRUE(bus.send(f));
  sim.run();
  EXPECT_EQ(delivered, 0);  // CRC mismatch -> receiver discards
  EXPECT_EQ(bus.fault_corrupted_count(), 1u);
}

TEST(BusFaults, BusOffRejectsSendsUntilRecovery) {
  Simulator sim;
  ev::network::CanBus bus(sim, "can");
  int delivered = 0;
  bus.subscribe([&](const ev::network::Frame&, Time) { ++delivered; });
  bus.inject_bus_off(Time::ms(10));
  EXPECT_TRUE(bus.bus_off());
  ev::network::Frame f;
  f.id = 1;
  f.source = 1;
  EXPECT_FALSE(bus.send(f));
  EXPECT_EQ(bus.busoff_rejected_count(), 1u);
  // After the recovery window the medium accepts traffic again.
  sim.schedule_at(Time::ms(11), [&] {
    EXPECT_FALSE(bus.bus_off());
    ev::network::Frame g;
    g.id = 2;
    g.source = 1;
    EXPECT_TRUE(bus.send(g));
  });
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(BusFaults, HappyPathCountersStayZero) {
  Simulator sim;
  ev::network::CanBus bus(sim, "can");
  bus.subscribe([](const ev::network::Frame&, Time) {});
  for (int i = 0; i < 20; ++i) {
    ev::network::Frame f;
    f.id = static_cast<std::uint32_t>(i);
    f.source = 1;
    ASSERT_TRUE(bus.send(f));
  }
  sim.run();
  EXPECT_EQ(bus.fault_dropped_count(), 0u);
  EXPECT_EQ(bus.fault_corrupted_count(), 0u);
  EXPECT_EQ(bus.busoff_rejected_count(), 0u);
  EXPECT_EQ(bus.delivered_count(), 20u);
}

// -------------------------------------------------------- degradation ----

TEST(DegradationManager, EscalatesAndLatches) {
  Simulator sim;
  DegradationManager deg(sim);
  EXPECT_EQ(deg.mode(), DriveMode::kNormal);
  EXPECT_DOUBLE_EQ(deg.torque_limit_fraction(), 1.0);

  deg.on_bms(ev::bms::SafetyAction::kDerate);
  EXPECT_EQ(deg.mode(), DriveMode::kDerated);

  ev::motor::FaultDiagnosis diag;
  diag.phase = 1;
  deg.on_motor(diag);
  EXPECT_EQ(deg.mode(), DriveMode::kLimpHome);

  // Weaker evidence never de-escalates.
  deg.on_bms(ev::bms::SafetyAction::kDerate);
  EXPECT_EQ(deg.mode(), DriveMode::kLimpHome);
  EXPECT_LT(deg.torque_limit_fraction(), 0.5);
  EXPECT_LT(deg.speed_limit_mps(), 20.0);

  deg.on_bms(ev::bms::SafetyAction::kOpenContactor);
  EXPECT_EQ(deg.mode(), DriveMode::kSafeStop);
  EXPECT_DOUBLE_EQ(deg.torque_limit_fraction(), 0.0);
  EXPECT_EQ(deg.transitions(), 3u);

  deg.service_reset();
  EXPECT_EQ(deg.mode(), DriveMode::kNormal);
}

TEST(DegradationManager, BywireVoteMapsToModes) {
  Simulator sim;
  DegradationManager deg(sim);
  ev::bywire::VoteResult vote;
  vote.valid = true;
  vote.disagreeing = 1;
  deg.on_bywire(vote);
  EXPECT_EQ(deg.mode(), DriveMode::kDerated);
  vote.valid = false;
  deg.on_bywire(vote);
  EXPECT_EQ(deg.mode(), DriveMode::kSafeStop);
}

TEST(DegradationManager, RepeatedRestartsEscalateToLimpHome) {
  Simulator sim;
  DegradationManager deg(sim);
  deg.on_partition_restart();
  EXPECT_EQ(deg.mode(), DriveMode::kDerated);
  deg.on_partition_restart();
  deg.on_partition_restart();
  EXPECT_EQ(deg.mode(), DriveMode::kLimpHome);
}

TEST(DegradationManager, ListenerSeesTransitions) {
  Simulator sim;
  DegradationManager deg(sim);
  std::vector<std::string> causes;
  deg.set_listener([&](DriveMode, DriveMode, const std::string& cause) {
    causes.push_back(cause);
  });
  deg.on_bus_fault();
  deg.on_bus_fault();
  deg.on_bus_fault();
  ASSERT_EQ(causes.size(), 2u);
  EXPECT_EQ(causes[0], "bus_fault");
  EXPECT_EQ(causes[1], "bus_faults");
}

// --------------------------------------------------------- fault plan ----

TEST(FaultPlan, SameSeedSameSchedule) {
  auto build = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    std::vector<std::int64_t> times;
    for (int i = 0; i < 8; ++i)
      times.push_back(static_cast<std::int64_t>(plan.rng().uniform() * 1e6));
    return times;
  };
  EXPECT_EQ(build(42), build(42));
  EXPECT_NE(build(42), build(43));
}

TEST(FaultPlan, FiresActionsAtExactTimesAndRecordsThem) {
  Simulator sim;
  FaultPlan plan(7);
  int fired = 0;
  plan.add(Time::ms(5), "first", [&] { ++fired; });
  plan.add(Time::ms(9), "second", [&] { ++fired; });
  plan.arm(sim);
  sim.run();
  EXPECT_EQ(fired, 2);
  ASSERT_EQ(plan.injections().size(), 2u);
  EXPECT_EQ(plan.injections()[0].label, "first");
  EXPECT_EQ(plan.injections()[0].at, Time::ms(5));
  EXPECT_EQ(plan.injections()[1].label, "second");
}

TEST(FaultPlan, RejectsAddAfterArm) {
  Simulator sim;
  FaultPlan plan(1);
  plan.add(Time::ms(1), "x", [] {});
  plan.arm(sim);
  EXPECT_THROW(plan.add(Time::ms(2), "y", [] {}), std::logic_error);
}

// ------------------------------------------------------ health monitor ----

TEST(HealthMonitor, DetectsCrashAndRestartsPartition) {
  using namespace ev::middleware;
  Simulator sim;
  ev::obs::MetricsRegistry metrics;
  Middleware mw(sim, "vcu", 10000);
  const std::size_t app = mw.create_partition("app", 3000);
  mw.deploy(app, Runnable{"work", 10000, 100, [] { return RunOutcome::kOk; }});

  HealthMonitor health(sim, mw);
  health.attach_observer(metrics);
  health.start();
  mw.start();

  sim.schedule_at(Time::ms(50), [&] { mw.partition(app).inject_crash(); });
  sim.run_until(Time::ms(200));

  EXPECT_EQ(health.restarts(), 1u);
  EXPECT_EQ(mw.partition(app).health(), PartitionHealth::kHealthy);
  EXPECT_GE(health.heartbeat_misses(), 2u);
  // Detection latency was recorded.
  const auto& stats =
      metrics.histogram_stats(metrics.histogram("mw.vcu.health.detection_latency_us", 0.0,
                                                1e6, 64));
  EXPECT_EQ(stats.count(), 1u);
  // The partition keeps beating after the restart.
  const std::uint64_t beats = health.heartbeats(app);
  sim.run_until(Time::ms(300));
  EXPECT_GT(health.heartbeats(app), beats);
}

TEST(HealthMonitor, DetectsHangEvenThoughPartitionLooksHealthy) {
  using namespace ev::middleware;
  Simulator sim;
  Middleware mw(sim, "vcu", 10000);
  const std::size_t app = mw.create_partition("app", 3000);

  HealthMonitor health(sim, mw);
  health.start();
  mw.start();

  sim.schedule_at(Time::ms(40), [&] { mw.partition(app).inject_hang(100); });
  sim.run_until(Time::ms(120));
  // A hung partition never reports kStopped — only the heartbeat reveals it.
  EXPECT_GE(health.restarts(), 1u);
}

// ------------------------------------------------------ network watcher ----

TEST(NetworkHealthWatcher, BabblingIdiotDrivesDegradation) {
  using ev::faults::BabblingIdiot;
  using ev::faults::NetworkHealthWatcher;
  Simulator sim;
  DegradationManager deg(sim);
  ev::network::CanBus bus(sim, "can", 125e3);
  // Background traffic at a modest rate.
  sim.schedule_periodic(Time::us(500), Time::ms(10), [&] {
    ev::network::Frame f;
    f.id = 0x200;
    f.source = 2;
    (void)bus.send(f);
  });
  NetworkHealthWatcher watcher(sim, deg, {/*poll_period_us=*/5000,
                                          /*utilization_limit=*/0.5});
  watcher.watch(bus);
  watcher.start();

  BabblingIdiot idiot(sim, bus, /*id=*/0, /*period_us=*/200);
  sim.schedule_at(Time::ms(50), [&] { idiot.start(); });
  sim.run_until(Time::ms(500));

  EXPECT_GT(idiot.frames_sent(), 100u);
  EXPECT_GE(watcher.faults_reported(), 1u);
  EXPECT_GE(deg.mode(), DriveMode::kDerated);
}

TEST(NetworkHealthWatcher, ReportsBusOffAndCorruptionEpisodes) {
  using ev::faults::NetworkHealthWatcher;
  Simulator sim;
  DegradationManager deg(sim);
  ev::network::CanBus bus(sim, "can");
  NetworkHealthWatcher watcher(sim, deg, {/*poll_period_us=*/1000,
                                          /*utilization_limit=*/0.99});
  watcher.watch(bus);
  watcher.start();
  sim.schedule_at(Time::ms(5), [&] { bus.inject_bus_off(Time::ms(3)); });
  sim.schedule_at(Time::ms(20), [&] {
    bus.inject_corruption(1);
    ev::network::Frame f;
    f.id = 1;
    f.source = 1;
    f.payload = {0x42};
    f.payload_size = 1;
    (void)bus.send(f);
  });
  sim.run_until(Time::ms(40));
  EXPECT_GE(watcher.faults_reported(), 2u);
}

// ------------------------------------------------- end-to-end detection ----

// Injected BMS sensor fault -> SafetyMonitor debounce -> DegradationManager.
TEST(EndToEnd, StuckVoltageSensorDeratesVehicle) {
  Simulator sim;
  DegradationManager deg(sim);
  FaultPlan plan(11);
  plan.set_degradation(&deg);
  ev::obs::MetricsRegistry metrics;
  deg.attach_observer(metrics);

  ev::util::Rng rng(31);
  ev::battery::PackConfig pc;
  pc.initial_soc = 0.7;
  ev::battery::Pack pack(pc, rng);
  ev::bms::BmsConfig bc;
  bc.initial_soc_estimate = 0.7;
  ev::bms::BatteryManager bms(pack, bc);

  // Stuck-at-5V voltage sensor on cell 3, injected off-phase between BMS
  // periods so the detection latency is a real, nonzero delay.
  ev::battery::SensorFault stuck;
  stuck.mode = ev::battery::SensorFaultMode::kStuckAt;
  stuck.stuck_value = 5.0;
  plan.add(Time::us(105000), "bms_stuck_sensor",
           [&] { bms.inject_voltage_sensor_fault(3, stuck); });
  plan.arm(sim);

  // 10 ms BMS period driven by the simulator.
  sim.schedule_periodic(Time::ms(10), Time::ms(10), [&] {
    (void)pack.step(10.0, 0.01);
    deg.on_bms(bms.step(pack, 0.01, rng).action);
  });
  sim.run_until(Time::ms(400));

  // The 5 V reading enters the warn band at the first post-fault sample
  // (kDerate) and latches overvoltage after the debounce window (kSafeStop).
  EXPECT_EQ(deg.mode(), DriveMode::kSafeStop);
  EXPECT_FALSE(bms.safety().faults().empty());
  // Detection latency (injection -> first escalation) landed in the
  // histogram: the injection sits 5 ms before the next BMS period.
  const auto& stats = metrics.histogram_stats(
      metrics.histogram("deg.detection_latency_us", 0.0, 1e7, 64));
  ASSERT_EQ(stats.count(), 1u);
  EXPECT_GE(stats.min(), 5000.0);
}

// Partition crash -> heartbeat silence -> watchdog restart -> degradation.
TEST(EndToEnd, PartitionCrashDeratesVehicle) {
  using namespace ev::middleware;
  Simulator sim;
  DegradationManager deg(sim);
  FaultPlan plan(13);
  plan.set_degradation(&deg);
  ev::obs::MetricsRegistry metrics;
  deg.attach_observer(metrics);

  Middleware mw(sim, "vcu", 10000);
  const std::size_t app = mw.create_partition("app", 3000);
  HealthMonitor health(sim, mw);
  health.set_listener([&](std::size_t, HealthEvent event, Time) {
    if (event == HealthEvent::kRestart) deg.on_partition_restart();
  });
  health.start();
  mw.start();

  plan.add(Time::ms(70), "partition_crash", [&] { mw.partition(app).inject_crash(); });
  plan.arm(sim);
  sim.run_until(Time::ms(300));

  EXPECT_EQ(health.restarts(), 1u);
  EXPECT_EQ(deg.mode(), DriveMode::kDerated);
  const auto& stats = metrics.histogram_stats(
      metrics.histogram("deg.detection_latency_us", 0.0, 1e7, 64));
  EXPECT_EQ(stats.count(), 1u);
}

// Babbling idiot -> utilization episode -> degradation, via the fault plan.
TEST(EndToEnd, BabblingIdiotLimpsHomeAfterRepeatedEpisodes) {
  using ev::faults::BabblingIdiot;
  using ev::faults::NetworkHealthWatcher;
  Simulator sim;
  DegradationManager deg(sim);
  ev::network::CanBus bus(sim, "can", 125e3);
  NetworkHealthWatcher watcher(sim, deg, {/*poll_period_us=*/5000,
                                          /*utilization_limit=*/0.5});
  watcher.watch(bus);
  watcher.start();
  BabblingIdiot idiot(sim, bus, 0, 200);

  FaultPlan plan(17);
  plan.set_degradation(&deg);
  plan.add(Time::ms(20), "babble_start", [&] { idiot.start(); });
  // Keep injecting secondary faults; repeated episodes reach limp-home.
  plan.add(Time::ms(100), "bus_corruption", [&] { bus.inject_corruption(3); });
  plan.add(Time::ms(150), "bus_off", [&] { bus.inject_bus_off(Time::ms(5)); });
  plan.arm(sim);
  sim.run_until(Time::ms(400));

  EXPECT_GE(watcher.faults_reported(), 3u);
  EXPECT_EQ(deg.mode(), DriveMode::kLimpHome);
  EXPECT_EQ(plan.injections().size(), 3u);
}

// Degradation limits actually constrain the powertrain plant.
TEST(EndToEnd, DriveLimitsConstrainPowertrain) {
  ev::powertrain::PowertrainSimulation sim_free;
  ev::powertrain::PowertrainSimulation sim_limited;
  sim_limited.set_drive_limits(0.2, 12.5);
  double v_free = 0.0, v_limited = 0.0;
  for (int i = 0; i < 600; ++i) {
    v_free = sim_free.step(40.0).speed_mps;
    v_limited = sim_limited.step(40.0).speed_mps;
  }
  EXPECT_GT(v_free, 20.0);       // unconstrained plant approaches the target
  EXPECT_LE(v_limited, 13.0);    // limp-home plant respects the speed cap
  sim_limited.clear_drive_limits();
  EXPECT_DOUBLE_EQ(sim_limited.torque_limit_fraction(), 1.0);
}

}  // namespace
