// Unit tests for the powertrain: vehicle dynamics, drive cycles, DC-DC,
// driver model, brake blending, quasi-static motor map, range estimation,
// and the integrated simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "ev/powertrain/dcdc.h"
#include "ev/powertrain/drive_cycle.h"
#include "ev/powertrain/driver.h"
#include "ev/powertrain/motor_map.h"
#include "ev/powertrain/range.h"
#include "ev/powertrain/regen.h"
#include "ev/powertrain/simulation.h"
#include "ev/powertrain/vehicle.h"
#include "ev/util/units.h"

namespace {

using namespace ev::powertrain;

// ------------------------------------------------------------- vehicle ----

TEST(VehicleDynamics, AcceleratesUnderForce) {
  VehicleDynamics v;
  const double accel = v.step(3200.0, 1.0);  // 3200 N on 1600 kg
  EXPECT_NEAR(accel, 2.0, 0.1);              // minus rolling resistance at start
  EXPECT_GT(v.speed_mps(), 1.5);
}

TEST(VehicleDynamics, CoastDownDecaysSpeed) {
  VehicleDynamics v;
  v.set_speed(30.0);
  for (int i = 0; i < 60; ++i) (void)v.step(0.0, 1.0);
  EXPECT_LT(v.speed_mps(), 25.0);
  EXPECT_GT(v.speed_mps(), 5.0);
}

TEST(VehicleDynamics, NeverReverses) {
  VehicleDynamics v;
  v.set_speed(1.0);
  for (int i = 0; i < 100; ++i) (void)v.step(-20000.0, 0.1);
  EXPECT_DOUBLE_EQ(v.speed_mps(), 0.0);
}

TEST(VehicleDynamics, RoadLoadGrowsWithSpeed) {
  VehicleDynamics v;
  v.set_speed(10.0);
  const double low = v.road_load_n();
  v.set_speed(30.0);
  EXPECT_GT(v.road_load_n(), low);
}

TEST(VehicleDynamics, GradeAddsLoad) {
  VehicleDynamics v;
  v.set_speed(20.0);
  EXPECT_GT(v.road_load_n(0.05), v.road_load_n(0.0));
  EXPECT_LT(v.road_load_n(-0.05), v.road_load_n(0.0));
}

TEST(VehicleDynamics, GearPathRoundTrip) {
  VehicleDynamics v;
  const double torque = 100.0;
  const double force = v.wheel_force_n(torque);
  EXPECT_NEAR(v.motor_torque_nm(force), torque, 1e-9);
  v.set_speed(20.0);
  EXPECT_NEAR(v.motor_speed_rad_s(), 20.0 / 0.31 * 9.0, 1e-9);
}

TEST(VehicleDynamics, DistanceIntegrates) {
  VehicleDynamics v;
  v.set_speed(10.0);
  VehicleParameters p = v.params();
  for (int i = 0; i < 100; ++i) (void)v.step(v.road_load_n(), 0.1);  // hold speed
  EXPECT_NEAR(v.distance_m(), 100.0, 1.0);
  (void)p;
}

// ---------------------------------------------------------- drive cycle ----

class CycleValidity : public ::testing::TestWithParam<const char*> {
 public:
  static DriveCycle cycle_for(const std::string& name) {
    if (name == "urban") return DriveCycle::urban();
    if (name == "highway") return DriveCycle::highway();
    return DriveCycle::suburban();
  }
};

TEST_P(CycleValidity, WellFormed) {
  const DriveCycle c = cycle_for(GetParam());
  EXPECT_GT(c.duration_s(), 100.0);
  EXPECT_GT(c.ideal_distance_m(), 500.0);
  EXPECT_GT(c.mean_speed_mps(), 1.0);
  // Speed profile is continuous and clamped at the ends.
  EXPECT_DOUBLE_EQ(c.speed_at(-10.0), c.speed_at(0.0));
  EXPECT_DOUBLE_EQ(c.speed_at(c.duration_s() + 100.0), 0.0);
  for (double t = 0.0; t < c.duration_s(); t += 1.0) EXPECT_GE(c.speed_at(t), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cycles, CycleValidity,
                         ::testing::Values("urban", "highway", "suburban"));

TEST(DriveCycle, UrbanHasManyStops) {
  EXPECT_GE(DriveCycle::urban().stop_count(), 10);
  EXPECT_LE(DriveCycle::highway().stop_count(), 1);
}

TEST(DriveCycle, UrbanSlowerThanHighway) {
  EXPECT_LT(DriveCycle::urban().mean_speed_mps(), DriveCycle::highway().mean_speed_mps());
}

TEST(DriveCycle, RepeatConcatenates) {
  const DriveCycle base = DriveCycle::urban();
  const DriveCycle x3 = DriveCycle::repeat(base, 3);
  EXPECT_NEAR(x3.duration_s(), 3 * base.duration_s(), 1e-6);
  EXPECT_NEAR(x3.ideal_distance_m(), 3 * base.ideal_distance_m(), 1e-6);
  EXPECT_NEAR(x3.speed_at(base.duration_s() + 10.0), base.speed_at(10.0), 1e-9);
}

TEST(DriveCycle, BuilderProducesMonotoneTime) {
  CycleBuilder b("test");
  b.ramp_to(50.0, 10.0).cruise(20.0).stop(8.0);
  const DriveCycle c = std::move(b).build();
  for (std::size_t i = 1; i < c.points().size(); ++i)
    EXPECT_GT(c.points()[i].t_s, c.points()[i - 1].t_s);
  EXPECT_NEAR(c.speed_at(10.0), ev::util::kmh_to_mps(50.0), 1e-9);
}

TEST(DriveCycle, RejectsInvalidProfiles) {
  EXPECT_THROW(DriveCycle("x", {{0.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(DriveCycle("x", {{1.0, 0.0}, {2.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DriveCycle("x", {{0.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(DriveCycle("x", {{0.0, 0.0}, {1.0, -5.0}}), std::invalid_argument);
}

// ----------------------------------------------------------------- dcdc ----

TEST(DcDc, EfficiencyPeaksMidLoad) {
  DcDcConverter c;
  EXPECT_GT(c.efficiency(1500.0), 0.9);
  EXPECT_LT(c.efficiency(50.0), c.efficiency(1500.0));  // fixed losses dominate
  EXPECT_DOUBLE_EQ(c.efficiency(0.0), 0.0);
}

TEST(DcDc, TransferAccountsEnergy) {
  DcDcConverter c;
  const double in = c.transfer(1000.0, 10.0);
  EXPECT_GT(in, 1000.0);
  EXPECT_NEAR(c.delivered_j(), 10000.0, 1e-9);
  EXPECT_NEAR(c.losses_j(), (in - 1000.0) * 10.0, 1e-9);
}

TEST(DcDc, ClampsAtRatedPower) {
  DcDcConverter c;
  const double in = c.transfer(1e6, 1.0);
  EXPECT_LT(in, 3500.0);  // rated 3 kW + losses
}

// --------------------------------------------------------------- driver ----

TEST(Driver, AcceleratesTowardTarget) {
  DriverModel d;
  const PedalState p = d.update(20.0, 0.0, 0.1);
  EXPECT_GT(p.accelerator, 0.5);
  EXPECT_DOUBLE_EQ(p.brake, 0.0);
}

TEST(Driver, BrakesWhenTooFast) {
  DriverModel d;
  const PedalState p = d.update(5.0, 20.0, 0.1);
  EXPECT_GT(p.brake, 0.5);
  EXPECT_DOUBLE_EQ(p.accelerator, 0.0);
}

TEST(Driver, HoldsBrakeAtStandstill) {
  DriverModel d;
  const PedalState p = d.update(0.0, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(p.accelerator, 0.0);
  EXPECT_DOUBLE_EQ(p.brake, 1.0);
}

// ----------------------------------------------------------------- regen ----

TEST(BrakeBlender, SplitsSumToDemand) {
  BrakeBlender b;
  for (double pedal : {0.1, 0.5, 1.0}) {
    const BrakeSplit s = b.split(pedal, 20.0, 60e3);
    EXPECT_NEAR(s.regen_force_n + s.friction_force_n,
                pedal * b.config().max_brake_force_n, 1e-9);
    EXPECT_GE(s.regen_force_n, 0.0);
    EXPECT_GE(s.friction_force_n, 0.0);
    EXPECT_LE(s.regen_force_n, b.config().max_regen_force_n + 1e-9);
  }
}

TEST(BrakeBlender, DisabledMeansAllFriction) {
  RegenConfig cfg;
  cfg.enabled = false;
  BrakeBlender b(cfg);
  const BrakeSplit s = b.split(0.8, 20.0, 60e3);
  EXPECT_DOUBLE_EQ(s.regen_force_n, 0.0);
  EXPECT_GT(s.friction_force_n, 0.0);
}

TEST(BrakeBlender, RespectsChargeLimit) {
  BrakeBlender b;
  const BrakeSplit s = b.split(1.0, 20.0, 10e3);  // battery only takes 10 kW
  EXPECT_LE(s.regen_force_n * 20.0, 10e3 * 1.0001);
}

TEST(BrakeBlender, FadesAtLowSpeed) {
  BrakeBlender b;
  // Below the fade knee the available regen force shrinks with speed (the
  // machine loses field-oriented authority), reaching zero at standstill.
  const BrakeSplit slow = b.split(1.0, 0.5, 60e3);
  const BrakeSplit knee = b.split(1.0, b.config().fade_below_mps, 60e3);
  EXPECT_LT(slow.regen_force_n, knee.regen_force_n);
  const BrakeSplit stopped = b.split(1.0, 0.0, 60e3);
  EXPECT_DOUBLE_EQ(stopped.regen_force_n, 0.0);
}

// ------------------------------------------------------------- motor map ----

TEST(MotorMap, ClampsTorqueAndPower) {
  MotorMap m;
  EXPECT_DOUBLE_EQ(m.clamp_torque(1000.0, 10.0), m.config().max_torque_nm);
  // At high speed, the power envelope binds before the torque limit.
  const double w = 800.0;
  EXPECT_NEAR(m.clamp_torque(1000.0, w), m.config().max_power_w / w, 1e-9);
}

TEST(MotorMap, LossesAlwaysPositive) {
  MotorMap m;
  EXPECT_GT(m.loss_w(0.0, 0.0), 0.0);  // inverter fixed losses
  EXPECT_GT(m.loss_w(100.0, 300.0), m.loss_w(10.0, 300.0));
}

TEST(MotorMap, MotoringDrawsMoreThanMechanical) {
  MotorMap m;
  const double mech = 100.0 * 300.0;
  EXPECT_GT(m.electrical_power_w(100.0, 300.0), mech);
}

TEST(MotorMap, RegenReturnsLessThanMechanical) {
  MotorMap m;
  const double mech = -100.0 * 300.0;  // negative: generating
  const double elec = m.electrical_power_w(-100.0, 300.0);
  EXPECT_LT(elec, 0.0);
  EXPECT_GT(elec, mech);  // magnitude reduced by losses
}

TEST(MotorMap, EfficiencyReasonableAtCruise) {
  MotorMap m;
  const double eta = m.efficiency(80.0, 400.0);
  EXPECT_GT(eta, 0.80);
  EXPECT_LT(eta, 0.99);
}

// ------------------------------------------------------------------ range ----

TEST(RangeEstimator, LearnsConsumption) {
  RangeEstimator r(160.0);
  // Feed 1 km at 200 Wh/km repeatedly.
  for (int i = 0; i < 100; ++i) r.update(200.0, 1000.0);
  EXPECT_NEAR(r.consumption_wh_km(), 200.0, 5.0);
}

TEST(RangeEstimator, RangeScalesWithEnergy) {
  RangeEstimator r(200.0);
  EXPECT_NEAR(r.remaining_range_km(10000.0), 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.remaining_range_km(-5.0), 0.0);
}

TEST(RangeEstimator, ReachabilityKeepsReserve) {
  RangeEstimator r(200.0);
  // 50 km of energy, 15% reserve -> 42.5 km reachable.
  EXPECT_TRUE(r.reachable(40.0, 10000.0));
  EXPECT_FALSE(r.reachable(45.0, 10000.0));
}

TEST(RangeEstimator, SmallSegmentsAccumulate) {
  RangeEstimator r(160.0);
  const double before = r.consumption_wh_km();
  for (int i = 0; i < 9; ++i) r.update(2.0, 10.0);  // below granule
  EXPECT_DOUBLE_EQ(r.consumption_wh_km(), before);
  for (int i = 0; i < 20; ++i) r.update(2.0, 10.0);  // crosses 100 m
  EXPECT_NE(r.consumption_wh_km(), before);
}

// -------------------------------------------------------------- simulation ----

TEST(PowertrainSimulation, TracksUrbanCycle) {
  PowertrainConfig cfg;
  PowertrainSimulation sim(cfg);
  const CycleResult r = sim.run_cycle(DriveCycle::urban());
  EXPECT_GT(r.distance_km, 4.0);
  EXPECT_LT(r.mean_abs_speed_error_mps, 0.5);
  EXPECT_GT(r.battery_energy_out_wh, 200.0);
  EXPECT_FALSE(r.safety_tripped);
}

TEST(PowertrainSimulation, ConsumptionInPlausibleBand) {
  PowertrainConfig cfg;
  PowertrainSimulation sim(cfg);
  const CycleResult r = sim.run_cycle(DriveCycle::urban());
  EXPECT_GT(r.consumption_wh_km, 80.0);
  EXPECT_LT(r.consumption_wh_km, 300.0);
}

TEST(PowertrainSimulation, RegenImprovesUrbanConsumption) {
  PowertrainConfig with;
  PowertrainConfig without;
  without.regen.enabled = false;
  PowertrainSimulation a(with);
  PowertrainSimulation b(without);
  const CycleResult ra = a.run_cycle(DriveCycle::urban());
  const CycleResult rb = b.run_cycle(DriveCycle::urban());
  EXPECT_LT(ra.consumption_wh_km, rb.consumption_wh_km * 0.9);
  EXPECT_GT(rb.friction_brake_loss_wh, ra.friction_brake_loss_wh);
  EXPECT_GT(ra.regen_recovered_wh, 50.0);
}

TEST(PowertrainSimulation, EnergyLedgerConsistent) {
  PowertrainConfig cfg;
  PowertrainSimulation sim(cfg);
  const CycleResult r = sim.run_cycle(DriveCycle::suburban());
  // Gross out >= net consumption component sums (losses all positive).
  EXPECT_GE(r.battery_energy_out_wh, r.aux_energy_wh);
  EXPECT_GE(r.motor_loss_wh, 0.0);
  EXPECT_GE(r.friction_brake_loss_wh, 0.0);
  EXPECT_LT(r.final_soc, 0.9);
}

TEST(PowertrainSimulation, SocDecreasesMonotonically) {
  PowertrainConfig cfg;
  PowertrainSimulation sim(cfg);
  const double soc0 = sim.pack().mean_soc();
  (void)sim.run_cycle(DriveCycle::urban());
  const double soc1 = sim.pack().mean_soc();
  (void)sim.run_cycle(DriveCycle::urban());
  const double soc2 = sim.pack().mean_soc();
  EXPECT_LT(soc1, soc0);
  EXPECT_LT(soc2, soc1);
}

TEST(PowertrainSimulation, DeterministicForEqualSeeds) {
  PowertrainConfig cfg;
  cfg.seed = 77;
  PowertrainSimulation a(cfg);
  PowertrainSimulation b(cfg);
  const CycleResult ra = a.run_cycle(DriveCycle::urban());
  const CycleResult rb = b.run_cycle(DriveCycle::urban());
  EXPECT_DOUBLE_EQ(ra.battery_energy_out_wh, rb.battery_energy_out_wh);
  EXPECT_DOUBLE_EQ(ra.distance_km, rb.distance_km);
}

TEST(PowertrainSimulation, SnapshotFieldsPopulated) {
  PowertrainConfig cfg;
  PowertrainSimulation sim(cfg);
  PowertrainSnapshot snap{};
  for (int i = 0; i < 300; ++i) snap = sim.step(15.0);
  EXPECT_GT(snap.speed_mps, 5.0);
  EXPECT_GT(snap.pack_voltage_v, 100.0);
  EXPECT_GT(snap.remaining_range_km, 10.0);
  EXPECT_GT(snap.battery_power_w, 0.0);
}

}  // namespace
