// Unit tests for the middleware: partitions (temporal isolation, fault
// containment), publish/subscribe determinism, the SOA registry, and the
// time-triggered dispatcher.
#include <gtest/gtest.h>

#include "ev/middleware/middleware.h"
#include "ev/middleware/partition.h"
#include "ev/middleware/pubsub.h"
#include "ev/middleware/services.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace {

using namespace ev::middleware;
using ev::sim::Simulator;
using ev::sim::Time;

// Empty payload for raw-broker tests.
constexpr std::span<const std::uint8_t> kNoBytes{};

Runnable ok_runnable(const std::string& name, std::int64_t period_us,
                     std::int64_t wcet_us, int* counter = nullptr) {
  return Runnable{name, period_us, wcet_us, [counter] {
                    if (counter) ++*counter;
                    return RunOutcome::kOk;
                  }};
}

// ------------------------------------------------------------ partition ----

TEST(Partition, ExecutesDueJobs) {
  Partition p("app", 1000);
  int runs = 0;
  p.deploy(ok_runnable("r", 10000, 200, &runs));
  (void)p.execute_window(0, 1000);
  EXPECT_EQ(runs, 1);
  // Not due again until the period elapses.
  (void)p.execute_window(5000, 1000);
  EXPECT_EQ(runs, 1);
  (void)p.execute_window(10000, 1000);
  EXPECT_EQ(runs, 2);
}

TEST(Partition, BudgetDefersJobs) {
  Partition p("app", 500);
  int a = 0, b = 0;
  p.deploy(ok_runnable("a", 10000, 400, &a));
  p.deploy(ok_runnable("b", 10000, 400, &b));
  (void)p.execute_window(0, 500);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);  // would exceed the window
  EXPECT_EQ(p.jobs_deferred(), 1u);
  // The deferred job runs in the next window.
  (void)p.execute_window(100, 500);
  EXPECT_EQ(b, 1);
}

TEST(Partition, CrashStopsPartition) {
  Partition p("app", 1000);
  p.deploy(Runnable{"bad", 10000, 100, [] { return RunOutcome::kCrash; }});
  int later = 0;
  p.deploy(ok_runnable("later", 10000, 100, &later));
  (void)p.execute_window(0, 1000);
  EXPECT_EQ(p.health(), PartitionHealth::kStopped);
  EXPECT_EQ(p.fault_count(), 1u);
  EXPECT_EQ(later, 0);  // jobs after the crash are not executed
  // Stopped partitions consume nothing.
  EXPECT_EQ(p.execute_window(10000, 1000), 0);
  p.restart();
  EXPECT_EQ(p.health(), PartitionHealth::kHealthy);
}

TEST(Partition, OverrunConsumesWholeWindow) {
  Partition p("app", 1000);
  p.deploy(Runnable{"hog", 10000, 100, [] { return RunOutcome::kOverrun; }});
  const std::int64_t consumed = p.execute_window(0, 1000);
  EXPECT_EQ(consumed, 1000);
  EXPECT_EQ(p.health(), PartitionHealth::kStopped);
}

TEST(Partition, RejectsInvalidDeployments) {
  Partition p("app", 1000);
  EXPECT_THROW(p.deploy(Runnable{"x", 1000, 100, nullptr}), std::invalid_argument);
  EXPECT_THROW(p.deploy(Runnable{"x", 0, 100, [] { return RunOutcome::kOk; }}),
               std::invalid_argument);
  EXPECT_THROW(Partition("zero", 0), std::invalid_argument);
}

TEST(Partition, CpuTimeAccounted) {
  Partition p("app", 1000);
  p.deploy(ok_runnable("r", 10000, 300));
  (void)p.execute_window(0, 1000);
  (void)p.execute_window(10000, 1000);
  EXPECT_EQ(p.cpu_time_us(), 600);
}

// -------------------------------------------------------------- pub/sub ----

TEST(PubSub, DeliversOnFlushOnly) {
  PubSubBroker broker;
  int received = 0;
  broker.subscribe(7, [&](const SampleView&) { ++received; });
  Topic<double>(broker, 7).publish(1.0, 0);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(broker.backlog(), 1u);
  broker.flush();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(broker.backlog(), 0u);
}

TEST(PubSub, MultipleSubscribersFanOut) {
  PubSubBroker broker;
  int a = 0, b = 0;
  broker.subscribe(1, [&](const SampleView&) { ++a; });
  broker.subscribe(1, [&](const SampleView&) { ++b; });
  broker.publish(1, kNoBytes, 0);
  broker.flush();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(broker.delivered(), 2u);
}

TEST(PubSub, PublicationsDuringFlushDeferred) {
  PubSubBroker broker;
  int second = 0;
  broker.subscribe(1, [&](const SampleView&) { broker.publish(2, kNoBytes, 1); });
  broker.subscribe(2, [&](const SampleView&) { ++second; });
  broker.publish(1, kNoBytes, 0);
  broker.flush();
  EXPECT_EQ(second, 0);  // chained publication waits for the next flush
  broker.flush();
  EXPECT_EQ(second, 1);
}

TEST(PubSub, TypedTopicRoundTrip) {
  const auto bytes = Topic<double>::encode(3.14159);
  const Sample s{bytes, 42};
  EXPECT_DOUBLE_EQ(Topic<double>::decode(s), 3.14159);
  // Decoding with the wrong payload type is a detected error, not garbage.
  EXPECT_THROW((void)Topic<double>::decode(Sample{{1, 2}, 0}), std::invalid_argument);
}

TEST(PubSub, TypedTopicCarriesPodStructs) {
  struct WheelSpeeds {
    double fl, fr, rl, rr;
  };
  PubSubBroker broker;
  Topic<WheelSpeeds> topic(broker, 11);
  WheelSpeeds seen{};
  std::int64_t seen_at = -1;
  topic.subscribe([&](const WheelSpeeds& w, const SampleView& s) {
    seen = w;
    seen_at = s.published_us;
  });
  topic.publish(WheelSpeeds{1.0, 2.0, 3.0, 4.0}, 500);
  broker.flush();
  EXPECT_DOUBLE_EQ(seen.fl, 1.0);
  EXPECT_DOUBLE_EQ(seen.rr, 4.0);
  EXPECT_EQ(seen_at, 500);
}

TEST(PubSub, TopicsAreIndependent) {
  PubSubBroker broker;
  int received = 0;
  broker.subscribe(1, [&](const SampleView&) { ++received; });
  broker.publish(2, kNoBytes, 0);  // different topic
  broker.flush();
  EXPECT_EQ(received, 0);
}

TEST(PubSub, SpanPublishDeliversExactBytes) {
  PubSubBroker broker;
  const std::uint8_t payload[] = {0xde, 0xad, 0xbe, 0xef};
  std::vector<std::uint8_t> seen;
  std::int64_t seen_at = -1;
  broker.subscribe(4, [&](const SampleView& s) {
    seen.assign(s.data.begin(), s.data.end());
    seen_at = s.published_us;
  });
  broker.publish(4, std::span<const std::uint8_t>(payload, sizeof payload), 77);
  broker.flush();
  EXPECT_EQ(seen, (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(seen_at, 77);
}

TEST(PubSub, InterleavedPayloadsStayIntact) {
  // Multiple pending payloads of different sizes share the arena; each view
  // must cover exactly its own bytes.
  PubSubBroker broker;
  std::vector<std::vector<std::uint8_t>> seen;
  broker.subscribe(1, [&](const SampleView& s) {
    seen.emplace_back(s.data.begin(), s.data.end());
  });
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2, 3, 4};
  const std::uint8_t c[] = {5, 6};
  broker.publish(1, std::span<const std::uint8_t>(a, 1), 0);
  broker.publish(1, std::span<const std::uint8_t>(b, 3), 0);
  broker.publish(1, std::span<const std::uint8_t>(c, 2), 0);
  broker.flush();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::vector<std::uint8_t>{1}));
  EXPECT_EQ(seen[1], (std::vector<std::uint8_t>{2, 3, 4}));
  EXPECT_EQ(seen[2], (std::vector<std::uint8_t>{5, 6}));
}

TEST(PubSub, VectorPayloadPublishesThroughSpan) {
  // The owning-vector overload is gone; a vector payload publishes through
  // the implicit vector -> span conversion and the broker copies the bytes
  // into its arena, so the vector can die before flush().
  PubSubBroker broker;
  std::size_t seen_size = 0;
  broker.subscribe(9, [&](const SampleView& s) { seen_size = s.data.size(); });
  {
    const std::vector<std::uint8_t> payload{7, 8, 9};
    broker.publish(9, payload, 0);
  }
  broker.flush();
  EXPECT_EQ(seen_size, 3u);
}

TEST(PubSub, ViewToSampleDeepCopies) {
  PubSubBroker broker;
  Sample kept;
  broker.subscribe(2, [&](const SampleView& s) { kept = s.to_sample(); });
  const std::uint8_t payload[] = {42, 43};
  broker.publish(2, std::span<const std::uint8_t>(payload, 2), 5);
  broker.flush();
  // The copy outlives the flush that produced the view.
  EXPECT_EQ(kept.data, (std::vector<std::uint8_t>{42, 43}));
  EXPECT_EQ(kept.published_us, 5);
}

// ------------------------------------------------------ subscriber queue ----

TEST(SubscriberQueue, BuffersAcrossFlushAndDrainsViews) {
  PubSubBroker broker;
  Topic<double> topic(broker, 6);
  SubscriberQueue queue(broker, 6);
  topic.publish(1.5, 10);
  topic.publish(2.5, 20);
  broker.flush();
  EXPECT_EQ(queue.size(), 2u);
  std::vector<double> values;
  std::vector<std::int64_t> stamps;
  queue.drain([&](const SampleView& s) {
    values.push_back(Topic<double>::decode(s));
    stamps.push_back(s.published_us);
  });
  EXPECT_EQ(values, (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(stamps, (std::vector<std::int64_t>{10, 20}));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.total_enqueued(), 2u);
}

TEST(SubscriberQueue, ClearDropsBacklog) {
  PubSubBroker broker;
  Topic<int> topic(broker, 3);
  SubscriberQueue queue(broker, 3);
  topic.publish(1, 0);
  broker.flush();
  EXPECT_EQ(queue.size(), 1u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  int drained = 0;
  queue.drain([&](const SampleView&) { ++drained; });
  EXPECT_EQ(drained, 0);
  EXPECT_EQ(queue.total_enqueued(), 1u);
}

// ------------------------------------------------------------- services ----

TEST(Services, CallRegisteredService) {
  ServiceRegistry reg;
  reg.provide("echo", nullptr, [](const std::vector<std::uint8_t>& req) {
    return std::optional<std::vector<std::uint8_t>>(req);
  });
  const auto resp = reg.call("echo", {1, 2, 3});
  EXPECT_EQ(resp.status, CallStatus::kOk);
  EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Services, UnknownServiceReported) {
  ServiceRegistry reg;
  EXPECT_EQ(reg.call("missing", {}).status, CallStatus::kUnknownService);
}

TEST(Services, HandlerErrorReported) {
  ServiceRegistry reg;
  reg.provide("fail", nullptr,
              [](const std::vector<std::uint8_t>&)
                  -> std::optional<std::vector<std::uint8_t>> { return std::nullopt; });
  EXPECT_EQ(reg.call("fail", {}).status, CallStatus::kError);
}

TEST(Services, StoppedPartitionUnavailable) {
  ServiceRegistry reg;
  Partition host("host", 1000);
  reg.provide("svc", &host, [](const std::vector<std::uint8_t>&) {
    return std::optional<std::vector<std::uint8_t>>(std::vector<std::uint8_t>{});
  });
  EXPECT_EQ(reg.call("svc", {}).status, CallStatus::kOk);
  host.deploy(Runnable{"bad", 1000, 10, [] { return RunOutcome::kCrash; }});
  (void)host.execute_window(0, 1000);
  // Isolation: the crashed host makes the service unavailable — the caller
  // gets a clean status instead of a propagated failure.
  EXPECT_EQ(reg.call("svc", {}).status, CallStatus::kUnavailable);
}

TEST(Services, EnumeratesNames) {
  ServiceRegistry reg;
  reg.provide("a", nullptr, [](const auto&) {
    return std::optional<std::vector<std::uint8_t>>(std::vector<std::uint8_t>{});
  });
  reg.provide("b", nullptr, [](const auto&) {
    return std::optional<std::vector<std::uint8_t>>(std::vector<std::uint8_t>{});
  });
  EXPECT_TRUE(reg.has_service("a"));
  EXPECT_FALSE(reg.has_service("z"));
  EXPECT_EQ(reg.service_names().size(), 2u);
}

// ------------------------------------------------------------ middleware ----

TEST(Middleware, DispatchesPartitionsInWindows) {
  Simulator sim;
  Middleware mw(sim, "ecu", 10000);
  const std::size_t p0 = mw.create_partition("ctrl", 4000, 2);
  const std::size_t p1 = mw.create_partition("infotainment", 5000, 0);
  int ctrl_runs = 0, info_runs = 0;
  mw.deploy(p0, ok_runnable("c", 10000, 1000, &ctrl_runs));
  mw.deploy(p1, ok_runnable("i", 20000, 2000, &info_runs));
  mw.start();
  sim.run_until(Time::ms(100));
  EXPECT_EQ(mw.frames_run(), 11u);  // t=0 .. t=100ms inclusive
  EXPECT_GE(ctrl_runs, 10);
  EXPECT_GE(info_runs, 5);
  EXPECT_EQ(mw.slack_us(), 1000);
}

TEST(Middleware, BudgetOverflowRejected) {
  Simulator sim;
  Middleware mw(sim, "ecu", 10000);
  (void)mw.create_partition("a", 8000);
  EXPECT_THROW(mw.create_partition("b", 3000), std::invalid_argument);
}

TEST(Middleware, FaultIsolationBetweenPartitions) {
  Simulator sim;
  Middleware mw(sim, "ecu", 10000);
  const std::size_t bad = mw.create_partition("bad", 3000, 0);
  const std::size_t good = mw.create_partition("good", 3000, 2);
  int good_runs = 0;
  mw.deploy(bad, Runnable{"crash", 10000, 100, [] { return RunOutcome::kCrash; }});
  mw.deploy(good, ok_runnable("g", 10000, 500, &good_runs));
  mw.start();
  sim.run_until(Time::ms(100));
  // The crashed partition is stopped; the healthy one keeps running — the
  // consolidation-enabling isolation property.
  EXPECT_EQ(mw.partition(bad).health(), PartitionHealth::kStopped);
  EXPECT_GE(good_runs, 10);
}

TEST(Middleware, PubSubFlushedAtWindowBoundaries) {
  Simulator sim;
  Middleware mw(sim, "ecu", 10000);
  const std::size_t prod = mw.create_partition("producer", 2000);
  const std::size_t cons = mw.create_partition("consumer", 2000);
  double last_seen = 0.0;
  Topic<double> speed(mw.broker(), 9);
  speed.subscribe([&](const double& v) { last_seen = v; });
  int tick = 0;
  mw.deploy(prod, Runnable{"pub", 10000, 100, [&] {
                             speed.publish(++tick, 0);
                             return RunOutcome::kOk;
                           }});
  (void)cons;
  mw.start();
  sim.run_until(Time::ms(50));
  EXPECT_GE(last_seen, 5.0);  // publications delivered every frame
}

// ---------------------------------------------------------- observability ----

TEST(Middleware, BrokerMetricsMatchHandRolledCounters) {
  ev::obs::MetricsRegistry registry;
  PubSubBroker broker;
  broker.attach_observer(registry, "t");
  Topic<double> topic(broker, 3);
  topic.subscribe([](const double&) {});
  topic.subscribe([](const double&) {});
  for (int k = 0; k < 5; ++k) topic.publish(k, k * 10);
  broker.flush(100);
  // The delivered counter tracks the broker's own ledger exactly.
  EXPECT_EQ(registry.counter_value(registry.counter("t.pubsub.delivered")),
            broker.delivered());
  EXPECT_EQ(broker.delivered(), 10u);  // 5 samples x 2 subscribers
  // Peak backlog saw all five buffered publications.
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge("t.pubsub.backlog.peak")), 5.0);
  // Timed flush attributed one latency sample per delivery.
  EXPECT_EQ(registry
                .histogram_stats(
                    registry.histogram("t.pubsub.delivery_latency_us", 0.0, 1e6, 64))
                .count(),
            10u);
}

TEST(Middleware, ObserverMetricsMatchHandRolledCounters) {
  Simulator sim;
  ev::obs::MetricsRegistry registry;
  Middleware mw(sim, "ecu0", 10000);
  mw.attach_observer(registry);
  const std::size_t p = mw.create_partition("ctrl", 4000);
  int runs = 0;
  mw.deploy(p, ok_runnable("c", 10000, 1000, &runs));
  mw.start();
  sim.run_until(Time::ms(50));
  EXPECT_EQ(registry.counter_value(registry.counter("mw.ecu0.frames")),
            mw.frames_run());
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge("mw.ecu0.slack_us")),
                   static_cast<double>(mw.slack_us()));
  // The partition ran in every frame, consuming 1000 of its 4000 us budget.
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge("mw.ecu0.ctrl.budget_util")),
                   0.25);
  // jobs_completed mirrors the partition's cumulative ledger.
  EXPECT_DOUBLE_EQ(registry.gauge_value(registry.gauge("mw.ecu0.ctrl.jobs_completed")),
                   static_cast<double>(mw.partition(p).jobs_completed()));
  EXPECT_EQ(mw.partition(p).jobs_completed(), static_cast<std::uint64_t>(runs));
}

TEST(Middleware, ObserverRecordsPartitionSpans) {
  Simulator sim;
  ev::obs::MetricsRegistry registry;
  ev::obs::TraceLog trace;
  Middleware mw(sim, "ecu0", 10000);
  mw.attach_observer(registry, &trace);
  const std::size_t p = mw.create_partition("ctrl", 4000);
  mw.deploy(p, ok_runnable("c", 10000, 1000));
  mw.start();
  sim.run_until(Time::ms(20));
  ASSERT_FALSE(trace.spans().empty());
  const ev::obs::Span& s = trace.spans().front();
  EXPECT_EQ(trace.names().name(s.name), "ctrl");
  EXPECT_EQ(trace.names().name(s.category), "partition");
  EXPECT_EQ(s.end_ns - s.begin_ns, 1000 * 1000);  // the 1000 us consumed
}

TEST(Middleware, RuntimeDeploymentWorks) {
  Simulator sim;
  Middleware mw(sim, "ecu", 10000);
  const std::size_t p = mw.create_partition("apps", 5000);
  mw.start();
  sim.run_until(Time::ms(20));
  // "Purchasing a feature" mid-operation: deploy while dispatching.
  int runs = 0;
  mw.deploy(p, ok_runnable("new-feature", 10000, 500, &runs));
  sim.run_until(Time::ms(60));
  EXPECT_GE(runs, 3);
}

}  // namespace
