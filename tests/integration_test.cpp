// Cross-module integration tests: scenarios that exercise several evsys
// layers together, mirroring the paper's end-to-end arguments.
#include <gtest/gtest.h>

#include <cstring>

#include "ev/bms/battery_manager.h"
#include "ev/network/can.h"
#include "ev/network/ethernet.h"
#include "ev/network/flexray.h"
#include "ev/network/topology.h"
#include "ev/powertrain/simulation.h"
#include "ev/scheduling/synthesis.h"
#include "ev/security/secure_channel.h"
#include "ev/sim/simulator.h"
#include "ev/verification/model_checker.h"

namespace {

using ev::sim::Simulator;
using ev::sim::Time;

// --- BMS + battery: balancing yields usable capacity ------------------------

TEST(Integration, ActiveBalancingRecoversUsableEnergy) {
  ev::util::Rng rng_a(101), rng_b(101);
  ev::battery::PackConfig pc;
  pc.module_count = 2;
  pc.cells_per_module = 6;
  pc.soc_spread_sigma = 0.04;  // badly imbalanced pack
  ev::battery::Pack balanced(pc, rng_a);
  ev::battery::Pack unbalanced(pc, rng_b);

  ev::bms::BmsConfig bc;
  bc.balancing = ev::bms::BalancingKind::kActive;
  bc.initial_soc_estimate = 0.9;
  ev::bms::BatteryManager bms(balanced, bc);

  ev::util::Rng noise(102);
  for (int i = 0; i < 40000; ++i) {
    (void)balanced.step(0.0, 1.0);
    (void)bms.step(balanced, 1.0, noise);
  }
  // Same cells, same time idle — but the balanced pack can deliver more.
  EXPECT_GT(balanced.usable_energy_wh(), unbalanced.usable_energy_wh() * 1.02);
}

// --- Powertrain + BMS: derating propagates to the vehicle --------------------

TEST(Integration, DepletedPackLimitsAcceleration) {
  ev::powertrain::PowertrainConfig cfg;
  cfg.pack.initial_soc = 0.06;  // nearly empty: SoC-based derating active
  cfg.pack.soc_spread_sigma = 0.0;
  ev::powertrain::PowertrainSimulation low(cfg);
  ev::powertrain::PowertrainConfig full_cfg;
  full_cfg.pack.initial_soc = 0.9;
  ev::powertrain::PowertrainSimulation full(full_cfg);
  // Full-throttle demand for 10 s.
  for (int i = 0; i < 100; ++i) {
    (void)low.step(40.0);
    (void)full.step(40.0);
  }
  EXPECT_LT(low.vehicle().speed_mps(), full.vehicle().speed_mps());
}

// --- Scheduling + network: synthesized offsets executed on FlexRay ----------

TEST(Integration, SynthesizedScheduleRunsJitterFree) {
  // Synthesize offsets for three messages sharing the chassis bus.
  ev::scheduling::System sys;
  for (int i = 0; i < 3; ++i) {
    ev::scheduling::Activity a;
    a.id = i;
    a.name = "msg" + std::to_string(i);
    a.resource = 0;
    a.period_us = 10000;
    a.duration_us = 200;
    sys.activities.push_back(a);
  }
  const auto schedule = ev::scheduling::MonolithicSynthesizer().synthesize(sys);
  ASSERT_TRUE(schedule.feasible);

  // Execute: senders fire at their synthesized offsets on a FlexRay bus with
  // matching static slots.
  Simulator sim;
  ev::network::FlexRayConfig fr;
  fr.static_slots = {{0, 1, 16}, {1, 2, 16}, {2, 3, 16}};
  ev::network::FlexRayBus bus(sim, "fr", fr);
  std::map<std::uint32_t, ev::util::SampleSeries> latency;
  bus.subscribe([&](const ev::network::Frame& f, Time at) {
    latency[f.id].add((at - f.created).to_seconds());
  });
  bus.start();
  for (int i = 0; i < 3; ++i) {
    const auto offset = Time::us(schedule.offset_us[static_cast<std::size_t>(i)] + 1);
    sim.schedule_periodic(offset, Time::us(10000), [&bus, i] {
      ev::network::Frame f;
      f.id = static_cast<std::uint32_t>(i);
      (void)bus.send(f);
    });
  }
  sim.run_until(Time::s(2));
  for (auto& [id, series] : latency) {
    ASSERT_GT(series.count(), 100u);
    // The sender period (10 ms) is not a multiple of the FlexRay cycle, so
    // the buffered frame waits a varying fraction of one cycle — but never
    // more: time-triggered transport bounds the jitter by one cycle.
    EXPECT_LT(series.max() - series.min(), bus.cycle_time_s()) << "message " << id;
    EXPECT_LT(series.max(), 2.0 * bus.cycle_time_s()) << "message " << id;
  }

  // With senders synchronized to the communication cycle (the global
  // schedule of the paper), the latency becomes exactly constant.
  Simulator sim2;
  ev::network::FlexRayBus bus2(sim2, "fr2", fr);
  ev::util::SampleSeries sync_latency;
  bus2.subscribe([&](const ev::network::Frame& f, Time at) {
    if (f.id == 0) sync_latency.add((at - f.created).to_seconds());
  });
  bus2.start();
  sim2.schedule_periodic(Time::us(1), Time::seconds(bus2.cycle_time_s()), [&bus2] {
    ev::network::Frame f;
    f.id = 0;
    (void)bus2.send(f);
  });
  sim2.run_until(Time::s(2));
  ASSERT_GT(sync_latency.count(), 100u);
  EXPECT_LT(sync_latency.max() - sync_latency.min(), 1e-9);
}

// --- Security + network: authenticated frames across a switched backbone ----

TEST(Integration, SecureChannelOverEthernet) {
  Simulator sim;
  ev::network::EthernetSwitch sw(sim, "backbone", 2);
  sw.attach(1, 0);
  sw.add_route(0x77, ev::network::EthRoute{{1}, ev::network::EthClass::kAvbClassA});

  const ev::security::Key key(32, 0x42);
  ev::security::SecureChannel sender(key, 7);
  ev::security::SecureChannel receiver(key, 7);

  std::vector<std::uint8_t> received_plaintext;
  std::size_t rejected = 0;
  sw.subscribe([&](const ev::network::Frame& f, Time) {
    ev::security::ChannelStatus status;
    const auto plain = receiver.unprotect(f.payload, &status);
    if (plain)
      received_plaintext = *plain;
    else
      ++rejected;
  });

  // Send one genuine protected frame and one tampered copy.
  const std::vector<std::uint8_t> message = {'s', 'o', 'c', '=', '7', '1'};
  ev::network::Frame genuine;
  genuine.id = 0x77;
  genuine.source = 1;
  genuine.payload = sender.protect(message);
  genuine.payload_size = genuine.payload.size();
  ev::network::Frame tampered = genuine;
  tampered.payload = sender.protect(message);
  tampered.payload[8] ^= 0xFF;
  tampered.payload_size = tampered.payload.size();

  ASSERT_TRUE(sw.send(genuine));
  ASSERT_TRUE(sw.send(tampered));
  sim.run();

  EXPECT_EQ(received_plaintext, message);
  EXPECT_EQ(rejected, 1u);
}

// --- Verification + scheduling: a schedule's gap pattern verified -----------

TEST(Integration, ScheduleGapVerifiedAgainstControlRequirement) {
  // A control message scheduled in 8 of every 10 slots (2-slot maintenance
  // gap) must satisfy "no 3 consecutive drops" but violates "at least 9 of
  // any 10" — checked by the model checker, not by simulation.
  const auto system = ev::verification::TransmissionSystem::time_triggered(10, 2);
  EXPECT_TRUE(
      ev::verification::verify(system, ev::verification::MonitorDfa::max_consecutive_drops(2))
          .verified);
  const auto tight =
      ev::verification::verify(system, ev::verification::MonitorDfa::at_least_m_of_n(9, 10));
  EXPECT_FALSE(tight.verified);
  EXPECT_FALSE(tight.counterexample.empty());
}

// --- Security + topology: the Bluetooth-virus scenario of refs [33],[34] ----

TEST(Integration, CompromisedInfotainmentCannotForgeChassisCommands) {
  // An attacker who owns an infotainment ECU (the Bluetooth entry point of
  // the paper's cited attacks) injects frames into its domain. Without
  // authentication the forged frame crosses the gateway into the chassis
  // domain and is indistinguishable from a real command; with authenticated
  // frames, the chassis ECU rejects it.
  Simulator sim;
  ev::network::Figure1Network net(sim);
  net.start();

  const ev::security::Key chassis_key(32, 0x5C);
  ev::security::SecureChannel legit_sender(chassis_key, 1);
  ev::security::SecureChannel chassis_receiver(chassis_key, 1);

  std::size_t accepted_unauthenticated = 0;
  std::size_t accepted_authenticated = 0;
  net.chassis_flexray().subscribe([&](const ev::network::Frame& f, Time) {
    if (f.id != ev::network::kFrameIdCrashOnChassis) return;
    // Legacy ECU: believes any frame with the right id.
    ++accepted_unauthenticated;
    // Hardened ECU: verifies the MAC before acting.
    if (!f.payload.empty() && chassis_receiver.unprotect(f.payload).has_value())
      ++accepted_authenticated;
  });

  // The attacker spoofs the crash-status id on the safety CAN (reachable
  // from a compromised node), which the gateway forwards to the chassis.
  sim.schedule_at(Time::ms(50), [&] {
    ev::network::Frame forged;
    forged.id = 0x200;  // crash status id on the safety CAN
    forged.source = 99;
    forged.payload = {0xDE, 0xAD};  // no valid MAC
    forged.payload_size = forged.payload.size();
    ASSERT_TRUE(net.safety_can().send(std::move(forged)));
  });
  sim.run_until(Time::ms(200));

  EXPECT_GE(accepted_unauthenticated, 1u);  // legacy design is open
  EXPECT_EQ(accepted_authenticated, 0u);    // authenticated design rejects

  // A genuine protected command cannot even be carried by the legacy CAN —
  // counter + tag exceed the 8-byte payload (the paper's E11 point) — so the
  // hardened design sends it on the chassis FlexRay's 16-byte static slot.
  sim.schedule_at(Time::ms(250), [&] {
    ev::network::Frame too_big;
    too_big.id = 0x200;
    too_big.source = 10;
    too_big.payload = legit_sender.protect({{0x01}});
    too_big.payload_size = too_big.payload.size();
    EXPECT_FALSE(net.safety_can().send(too_big));  // CAN refuses: > 8 bytes

    ev::network::Frame real;
    real.id = ev::network::kFrameIdCrashOnChassis;
    real.source = 10;
    real.payload = legit_sender.protect({{0x02}});
    real.payload_size = real.payload.size();
    ASSERT_TRUE(net.chassis_flexray().send(std::move(real)));
  });
  sim.run_until(Time::ms(400));
  EXPECT_EQ(accepted_authenticated, 1u);
}

// --- CAN analysis vs simulated heavy load ------------------------------------

TEST(Integration, CanAnalysisPredictsStarvation) {
  // Load the bus so the lowest-priority message misses its deadline; the
  // simulation must show the same starvation the analysis predicts.
  std::vector<ev::network::CanMessageSpec> set;
  for (std::uint32_t i = 0; i < 16; ++i) set.push_back({i, 8, 0.003, 0.0});
  const auto analysis = ev::network::can_response_times(set, 500e3);
  const bool predicted_ok = analysis.back().schedulable;
  EXPECT_FALSE(predicted_ok);

  Simulator sim;
  ev::network::CanBus bus(sim, "can", 500e3);
  double worst_lowprio = 0.0;
  std::size_t lowprio_delivered = 0;
  bus.subscribe([&](const ev::network::Frame& f, Time at) {
    if (f.id == 15) {
      ++lowprio_delivered;
      worst_lowprio = std::max(worst_lowprio, (at - f.created).to_seconds());
    }
  });
  for (const auto& m : set) {
    sim.schedule_periodic(Time{}, Time::seconds(m.period_s), [&bus, m] {
      ev::network::Frame f;
      f.id = m.id;
      f.payload_size = 8;
      (void)bus.send(f);
    });
  }
  sim.run_until(Time::s(2));
  // Under >100% utilization the lowest priority either misses its deadline
  // or is starved outright (delivers far fewer than the ~666 activations).
  EXPECT_TRUE(worst_lowprio > 0.003 || lowprio_delivered < 300u)
      << "worst=" << worst_lowprio << " delivered=" << lowprio_delivered;
}

}  // namespace
