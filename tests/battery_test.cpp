// Unit tests for the battery plant: OCV curves, the electro-thermal cell,
// module balancing hardware, the pack, and the sensor chain.
#include <gtest/gtest.h>

#include "ev/battery/cell.h"
#include "ev/battery/module.h"
#include "ev/battery/ocv_curve.h"
#include "ev/battery/pack.h"
#include "ev/battery/sensors.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"

namespace {

using namespace ev::battery;

// ----------------------------------------------------------- OCV curve ----

TEST(OcvCurve, NmcEndpoints) {
  const OcvCurve c = OcvCurve::nmc();
  EXPECT_DOUBLE_EQ(c.voltage(0.0), 3.0);
  EXPECT_DOUBLE_EQ(c.voltage(1.0), 4.2);
  EXPECT_DOUBLE_EQ(c.min_voltage(), 3.0);
  EXPECT_DOUBLE_EQ(c.max_voltage(), 4.2);
}

TEST(OcvCurve, MonotonicInSoc) {
  const OcvCurve c = OcvCurve::nmc();
  double prev = c.voltage(0.0);
  for (double s = 0.01; s <= 1.0; s += 0.01) {
    const double v = c.voltage(s);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(OcvCurve, InverseRoundTrip) {
  const OcvCurve c = OcvCurve::nmc();
  for (double s = 0.05; s <= 0.95; s += 0.05)
    EXPECT_NEAR(c.soc(c.voltage(s)), s, 1e-9);
}

TEST(OcvCurve, ClampsOutOfRange) {
  const OcvCurve c = OcvCurve::nmc();
  EXPECT_DOUBLE_EQ(c.voltage(-1.0), 3.0);
  EXPECT_DOUBLE_EQ(c.voltage(2.0), 4.2);
  EXPECT_DOUBLE_EQ(c.soc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.soc(9.0), 1.0);
}

TEST(OcvCurve, LfpPlateauIsFlat) {
  const OcvCurve c = OcvCurve::lfp();
  // The mid-range slope of LFP is tiny compared to NMC.
  const double lfp_slope = c.voltage(0.6) - c.voltage(0.4);
  const OcvCurve n = OcvCurve::nmc();
  const double nmc_slope = n.voltage(0.6) - n.voltage(0.4);
  EXPECT_LT(lfp_slope, nmc_slope / 3.0);
}

TEST(OcvCurve, RejectsInvalidKnots) {
  EXPECT_THROW(OcvCurve({{0.0, 3.0}}), std::invalid_argument);
  EXPECT_THROW(OcvCurve({{0.0, 3.0}, {0.5, 2.9}, {1.0, 4.2}}), std::invalid_argument);
  EXPECT_THROW(OcvCurve({{0.1, 3.0}, {1.0, 4.2}}), std::invalid_argument);
}

// ---------------------------------------------------------------- cell ----

CellParameters small_cell() {
  CellParameters p;
  p.capacity_ah = 10.0;
  return p;
}

TEST(Cell, CoulombCountingDischarge) {
  Cell cell(small_cell(), OcvCurve::nmc(), 1.0);
  // 10 A for 1800 s = 5 Ah = half the capacity.
  for (int i = 0; i < 1800; ++i) (void)cell.step(10.0, 1.0);
  EXPECT_NEAR(cell.soc(), 0.5, 0.01);
  EXPECT_NEAR(cell.throughput_ah(), 5.0, 0.05);
}

TEST(Cell, ChargeRaisesSoc) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.2);
  for (int i = 0; i < 360; ++i) (void)cell.step(-10.0, 1.0);
  EXPECT_NEAR(cell.soc(), 0.3, 0.01);
}

TEST(Cell, TerminalVoltageDropsUnderLoad) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.5);
  const double open = cell.terminal_voltage(0.0);
  const double loaded = cell.terminal_voltage(100.0);
  EXPECT_GT(open, loaded);
  EXPECT_NEAR(open - loaded, 100.0 * cell.params().r0_ohm, 1e-9);
}

TEST(Cell, PolarizationRelaxes) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.5);
  for (int i = 0; i < 120; ++i) (void)cell.step(50.0, 1.0);
  const double sagged = cell.terminal_voltage(0.0);
  for (int i = 0; i < 600; ++i) (void)cell.step(0.0, 1.0);
  const double rested = cell.terminal_voltage(0.0);
  EXPECT_GT(rested, sagged);  // RC branches decay back toward OCV
  EXPECT_NEAR(rested, cell.open_circuit_voltage(), 2e-3);
}

TEST(Cell, HeatsUnderLoadAndCools) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.8, 25.0);
  for (int i = 0; i < 600; ++i) (void)cell.step(200.0, 1.0, 25.0);
  const double hot = cell.temperature_c();
  EXPECT_GT(hot, 26.0);
  for (int i = 0; i < 3600; ++i) (void)cell.step(0.0, 1.0, 25.0);
  EXPECT_LT(cell.temperature_c(), hot);
}

TEST(Cell, ExtraHeatRaisesTemperature) {
  Cell a(small_cell(), OcvCurve::nmc(), 0.5);
  Cell b(small_cell(), OcvCurve::nmc(), 0.5);
  for (int i = 0; i < 600; ++i) {
    (void)a.step(0.0, 1.0, 25.0, 0.0);
    (void)b.step(0.0, 1.0, 25.0, 5.0);
  }
  EXPECT_GT(b.temperature_c(), a.temperature_c() + 1.0);
}

TEST(Cell, SafetyFlagsRaised) {
  CellParameters p = small_cell();
  Cell cell(p, OcvCurve::nmc(), 0.01);
  CellStatus st{};
  for (int i = 0; i < 600 && !st.undervoltage; ++i) st = cell.step(50.0, 1.0);
  EXPECT_TRUE(st.undervoltage);

  Cell oc(p, OcvCurve::nmc(), 0.5);
  EXPECT_TRUE(oc.step(p.max_discharge_current_a + 1.0, 0.1).overcurrent);
  EXPECT_TRUE(oc.step(-(p.max_charge_current_a + 1.0), 0.1).overcurrent);
}

TEST(Cell, AgeingReducesCapacity) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.5);
  const double fresh = cell.capacity_ah();
  // Heavy cycling.
  for (int cyc = 0; cyc < 50; ++cyc) {
    for (int i = 0; i < 360; ++i) (void)cell.step(20.0, 1.0);
    for (int i = 0; i < 360; ++i) (void)cell.step(-20.0, 1.0);
  }
  EXPECT_LT(cell.capacity_ah(), fresh);
  EXPECT_LT(cell.state_of_health(), 1.0);
  EXPECT_GT(cell.state_of_health(), 0.5);  // fade model floor
}

TEST(Cell, InjectChargeBypassesLoss) {
  Cell cell(small_cell(), OcvCurve::nmc(), 0.5);
  cell.inject_charge(360.0);  // +0.1 Ah on a 10 Ah cell = +1% SoC
  EXPECT_NEAR(cell.soc(), 0.51, 1e-6);
  cell.inject_charge(-360.0);
  EXPECT_NEAR(cell.soc(), 0.50, 1e-6);
}

// -------------------------------------------------------------- module ----

SeriesModule make_module(std::size_t n, std::initializer_list<double> socs) {
  std::vector<Cell> cells;
  auto it = socs.begin();
  for (std::size_t i = 0; i < n; ++i)
    cells.emplace_back(small_cell(), OcvCurve::nmc(), it != socs.end() ? *it++ : 0.5);
  return SeriesModule(std::move(cells));
}

TEST(SeriesModule, VoltageIsSumOfCells) {
  SeriesModule m = make_module(4, {0.5, 0.5, 0.5, 0.5});
  EXPECT_NEAR(m.terminal_voltage(0.0), 4.0 * m.cell(0).terminal_voltage(0.0), 1e-9);
}

TEST(SeriesModule, BleedDischargesOnlyTargetCell) {
  SeriesModule m = make_module(3, {0.6, 0.6, 0.6});
  m.set_bleed(1, true);
  for (int i = 0; i < 600; ++i) (void)m.step(0.0, 1.0);
  EXPECT_LT(m.cell(1).soc(), m.cell(0).soc());
  EXPECT_NEAR(m.cell(0).soc(), m.cell(2).soc(), 1e-9);
  EXPECT_GT(m.bleed_energy_j(), 0.0);
}

TEST(SeriesModule, ActiveTransferMovesCharge) {
  SeriesModule m = make_module(2, {0.7, 0.5});
  m.command_transfer(0, 1);
  for (int i = 0; i < 600; ++i) (void)m.step(0.0, 1.0);
  EXPECT_LT(m.cell(0).soc(), 0.7);
  EXPECT_GT(m.cell(1).soc(), 0.5);
  EXPECT_GT(m.transfer_loss_j(), 0.0);  // converter is not lossless
}

TEST(SeriesModule, TransferConservesChargeMinusLoss) {
  SeriesModule m = make_module(2, {0.7, 0.5});
  const double before = m.cell(0).soc() + m.cell(1).soc();
  m.command_transfer(0, 1);
  for (int i = 0; i < 600; ++i) (void)m.step(0.0, 1.0);
  const double after = m.cell(0).soc() + m.cell(1).soc();
  EXPECT_LT(after, before);                // some charge lost in the converter
  EXPECT_GT(after, before - 0.02);         // but only the efficiency share
}

TEST(SeriesModule, RejectsBadTransferCommands) {
  SeriesModule m = make_module(2, {0.5, 0.5});
  EXPECT_THROW(m.command_transfer(0, 0), std::invalid_argument);
  EXPECT_THROW(m.command_transfer(0, 5), std::out_of_range);
}

TEST(SeriesModule, SocSpreadReflectsCells) {
  SeriesModule m = make_module(3, {0.4, 0.5, 0.6});
  EXPECT_NEAR(m.soc_spread(), 0.2, 1e-9);
  EXPECT_NEAR(m.min_soc(), 0.4, 1e-9);
  EXPECT_NEAR(m.max_soc(), 0.6, 1e-9);
}

TEST(SeriesModule, EmptyCellListRejected) {
  EXPECT_THROW(SeriesModule(std::vector<Cell>{}), std::invalid_argument);
}

// ---------------------------------------------------------------- pack ----

TEST(Pack, BuildGeometry) {
  ev::util::Rng rng(3);
  PackConfig cfg;
  cfg.module_count = 4;
  cfg.cells_per_module = 6;
  Pack pack(cfg, rng);
  EXPECT_EQ(pack.module_count(), 4u);
  EXPECT_EQ(pack.cell_count(), 24u);
  EXPECT_GT(pack.terminal_voltage(0.0), 24 * 3.0);
  EXPECT_LT(pack.terminal_voltage(0.0), 24 * 4.2);
}

TEST(Pack, ManufacturingSpreadProducesImbalance) {
  ev::util::Rng rng(5);
  PackConfig cfg;
  cfg.soc_spread_sigma = 0.02;
  Pack pack(cfg, rng);
  EXPECT_GT(pack.max_soc() - pack.min_soc(), 0.005);
}

TEST(Pack, OpenContactorBlocksCurrent) {
  ev::util::Rng rng(7);
  PackConfig cfg;
  Pack pack(cfg, rng);
  const double soc_before = pack.mean_soc();
  pack.open_contactor();
  for (int i = 0; i < 100; ++i) (void)pack.step(100.0, 1.0);
  EXPECT_NEAR(pack.mean_soc(), soc_before, 1e-6);
  EXPECT_DOUBLE_EQ(pack.terminal_voltage(10.0), 0.0);
  pack.close_contactor();
  for (int i = 0; i < 100; ++i) (void)pack.step(100.0, 1.0);
  EXPECT_LT(pack.mean_soc(), soc_before);
}

TEST(Pack, UsableEnergyLimitedByWeakestCell) {
  ev::util::Rng rng(9);
  PackConfig cfg;
  cfg.module_count = 1;
  cfg.cells_per_module = 4;
  cfg.soc_spread_sigma = 0.0;
  Pack pack(cfg, rng);
  const double balanced = pack.usable_energy_wh();
  // Drain one cell directly: usable energy collapses toward that cell.
  pack.module(0).cell(0).inject_charge(-0.5 * pack.module(0).cell(0).charge_coulomb());
  EXPECT_LT(pack.usable_energy_wh(), 0.6 * balanced);
}

TEST(Pack, SensedCurrentTracksTrueCurrent) {
  ev::util::Rng rng(11);
  PackConfig cfg;
  Pack pack(cfg, rng);
  (void)pack.step(50.0, 0.1);
  EXPECT_NEAR(pack.sensed_current_a(), 50.0, 1.0);
}

TEST(Pack, ModuleTransferMovesChargeAcrossModules) {
  ev::util::Rng rng(31);
  PackConfig cfg;
  cfg.module_count = 2;
  cfg.cells_per_module = 3;
  cfg.soc_spread_sigma = 0.0;
  Pack pack(cfg, rng);
  // Skew module 0 upward by direct injection.
  for (std::size_t c = 0; c < 3; ++c)
    pack.module(0).cell(c).inject_charge(0.05 * pack.module(0).cell(c).charge_coulomb());
  const double m0_before = pack.module(0).min_soc();
  const double m1_before = pack.module(1).min_soc();
  pack.command_module_transfer(0, 1);
  EXPECT_TRUE(pack.module_transfer_active());
  for (int i = 0; i < 600; ++i) (void)pack.step(0.0, 1.0);
  EXPECT_LT(pack.module(0).min_soc(), m0_before);
  EXPECT_GT(pack.module(1).min_soc(), m1_before);
  EXPECT_GT(pack.total_transfer_loss_j(), 0.0);  // converter efficiency < 1
  pack.clear_module_transfer();
  EXPECT_FALSE(pack.module_transfer_active());
}

TEST(Pack, ModuleTransferValidatesArguments) {
  ev::util::Rng rng(33);
  PackConfig cfg;
  cfg.module_count = 2;
  Pack pack(cfg, rng);
  EXPECT_THROW(pack.command_module_transfer(0, 0), std::invalid_argument);
  EXPECT_THROW(pack.command_module_transfer(0, 9), std::out_of_range);
}

TEST(Pack, ModuleTransferConservesChargeMinusEfficiency) {
  ev::util::Rng rng(35);
  PackConfig cfg;
  cfg.module_count = 2;
  cfg.cells_per_module = 2;
  cfg.soc_spread_sigma = 0.0;
  cfg.capacity_spread_sigma = 0.0;
  Pack pack(cfg, rng);
  double before = 0.0;
  for (std::size_t m = 0; m < 2; ++m)
    for (std::size_t c = 0; c < 2; ++c) before += pack.module(m).cell(c).charge_coulomb();
  pack.command_module_transfer(0, 1);
  for (int i = 0; i < 100; ++i) (void)pack.step(0.0, 1.0);
  double after = 0.0;
  for (std::size_t m = 0; m < 2; ++m)
    for (std::size_t c = 0; c < 2; ++c) after += pack.module(m).cell(c).charge_coulomb();
  EXPECT_LT(after, before);  // converter losses
  // Lost fraction bounded by (1 - eta) of what moved.
  const double moved = 5.0 * 100.0;  // transfer current * time per source cell
  EXPECT_GT(after, before - 2.0 * moved * (1.0 - 0.92) - 1e-6 - moved * 0.2);
}

// ------------------------------------------------------------- sensors ----

TEST(Sensors, BiasAndQuantization) {
  ev::util::Rng rng(13);
  ScalarSensor s(/*noise=*/0.0, /*bias=*/0.5, /*quantization=*/0.25);
  EXPECT_DOUBLE_EQ(s.measure(1.0, rng), 1.5);
  EXPECT_DOUBLE_EQ(s.measure(1.1, rng), 1.5);  // quantized to 0.25 grid
}

TEST(Sensors, NoiseStatistics) {
  ev::util::Rng rng(15);
  VoltageSensor s;
  ev::util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(s.measure(3.7, rng));
  EXPECT_NEAR(stats.mean(), 3.7, 1e-3);
  EXPECT_LT(stats.stddev(), 5e-3);
}

TEST(Sensors, CurrentSensorHasBias) {
  ev::util::Rng rng(17);
  CurrentSensor s;
  ev::util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(s.measure(0.0, rng));
  EXPECT_GT(stats.mean(), 0.01);  // the drift source for coulomb counting
}

}  // namespace
