# Synthesis determinism contract, run under ctest (see tests/CMakeLists.txt):
#   same scenario + same --seed        -> byte-identical scenario and report
#   --jobs 1 vs --jobs 8               -> byte-identical scenario and report
#   the synthesized scenario           -> `evsys check` exits 0
# Expects -DEVSYS=<path to the evsys binary> and -DSOURCE_DIR=<repo root>.
if(NOT DEFINED EVSYS OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DEVSYS=<binary> -DSOURCE_DIR=<repo root>")
endif()

set(scenario "${SOURCE_DIR}/tests/data/overloaded.scn")
set(work "${CMAKE_CURRENT_BINARY_DIR}/synthesis_determinism")
file(MAKE_DIRECTORY "${work}")

function(run_synthesize tag jobs)
  execute_process(
    COMMAND "${EVSYS}" synthesize "${scenario}" --seed 7 --iters 40
            --jobs "${jobs}"
            --out "${work}/${tag}.scn" --report "${work}/${tag}.json"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys synthesize (${tag}) failed with ${code}")
  endif()
endfunction()

run_synthesize(serial_a 1)
run_synthesize(serial_b 1)
run_synthesize(wide 8)

foreach(ext IN ITEMS scn json)
  execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                  "${work}/serial_a.${ext}" "${work}/serial_b.${ext}"
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "same-seed reruns differ in the .${ext} artifact")
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                  "${work}/serial_a.${ext}" "${work}/wide.${ext}"
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "--jobs 1 vs --jobs 8 differ in the .${ext} artifact")
  endif()
endforeach()
message(STATUS "deterministic: same seed and any --jobs byte-identical")

# The synthesized design must pass static analysis cleanly — that is the
# whole point of the synthesizer.
execute_process(
  COMMAND "${EVSYS}" check "${work}/serial_a.scn"
  RESULT_VARIABLE code
  OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "evsys check rejected the synthesized scenario (${code})")
endif()
message(STATUS "synthesized scenario checks clean (exit 0)")
