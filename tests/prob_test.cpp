// Unit tests for the probabilistic fault-aware CAN timing analysis (E24):
// the Poisson/binomial math kernel (mass accounting, clamps, edge cases),
// error-model derivation from fault specs, the zero-rate degeneracy to the
// deterministic analyzer (byte-identical report), monotonicity in the error
// rate, the prob.* wiring lints, and the memoized probabilistic outcomes
// inside the incremental FitnessEvaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/diagnostics.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"
#include "ev/analysis/prob.h"
#include "ev/config/scenario.h"

namespace {

using namespace ev::analysis;
using ev::config::FaultEventSpec;
using ev::config::FaultKind;
using ev::config::ScenarioSpec;

ScenarioSpec clean_spec() {
  ScenarioSpec spec;
  spec.name = "clean";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  return spec;
}

ScenarioSpec spec_with_fault(FaultKind kind, const std::string& target, double value) {
  ScenarioSpec spec = clean_spec();
  spec.subsystems.faults = true;
  spec.faults.push_back(FaultEventSpec{0.0, kind, target, value});
  return spec;
}

std::string report_text(const Report& report) {
  std::ostringstream out;
  write_report_json(report, out);
  return out.str();
}

// ------------------------------------------------------------ math kernel ----

TEST(ProbKernel, PoissonPmfEdgeCases) {
  EXPECT_EQ(poisson_pmf(0.0, 0), 1.0);  // point mass at zero
  EXPECT_EQ(poisson_pmf(0.0, 1), 0.0);
  EXPECT_EQ(poisson_pmf(3.0, -1), 0.0);
  EXPECT_NEAR(poisson_pmf(2.0, 0), std::exp(-2.0), 1e-15);
  EXPECT_NEAR(poisson_pmf(2.0, 3), std::exp(-2.0) * 8.0 / 6.0, 1e-15);
}

TEST(ProbKernel, PoissonMassFullyAccounted) {
  // pmf(0..K) + tail_above(K) == 1: no probability mass leaks into the tail.
  for (const double mean : {0.0, 0.3, 1.0, 4.5, 20.0}) {
    for (const int cut : {0, 1, 5, 30}) {
      double mass = 0.0;
      for (int k = 0; k <= cut; ++k) mass += poisson_pmf(mean, k);
      EXPECT_NEAR(mass + poisson_tail_above(mean, cut), 1.0, 1e-12)
          << "mean " << mean << " cut " << cut;
    }
  }
}

TEST(ProbKernel, PoissonTailMonotoneAndClamped) {
  EXPECT_EQ(poisson_tail_above(2.0, -1), 1.0);
  EXPECT_EQ(poisson_tail_above(0.0, 0), 0.0);
  // Non-decreasing in the mean, non-increasing in the cutoff.
  double prev = 0.0;
  for (const double mean : {0.1, 0.5, 1.0, 2.0, 8.0}) {
    const double tail = poisson_tail_above(mean, 3);
    EXPECT_GE(tail, prev);
    prev = tail;
  }
  for (int k = 0; k < 10; ++k)
    EXPECT_GE(poisson_tail_above(3.0, k), poisson_tail_above(3.0, k + 1));
}

TEST(ProbKernel, BinomialPmfEdgeCases) {
  EXPECT_EQ(binomial_pmf(5, 0.0, 0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 0.0, 1), 0.0);
  EXPECT_EQ(binomial_pmf(5, 1.0, 5), 1.0);
  EXPECT_EQ(binomial_pmf(5, 1.0, 4), 0.0);
  EXPECT_EQ(binomial_pmf(5, 0.5, 6), 0.0);
  EXPECT_EQ(binomial_pmf(5, 0.5, -1), 0.0);
  double mass = 0.0;
  for (int k = 0; k <= 7; ++k) mass += binomial_pmf(7, 0.3, k);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(ProbKernel, CombinedTailDegeneratesToSingleChannels) {
  for (const int k : {0, 2, 5}) {
    EXPECT_NEAR(combined_tail_above(2.5, 0, 0.0, k), poisson_tail_above(2.5, k),
                1e-15);
    double binom_tail = 1.0;
    for (int j = 0; j <= k; ++j) binom_tail -= binomial_pmf(12, 0.2, j);
    EXPECT_NEAR(combined_tail_above(0.0, 12, 0.2, k), binom_tail, 1e-12);
  }
  // Convolving a second channel in can only add miss mass.
  EXPECT_GE(combined_tail_above(2.5, 12, 0.2, 3), poisson_tail_above(2.5, 3));
  EXPECT_LE(combined_tail_above(2.5, 12, 0.2, 3), 1.0);
}

// -------------------------------------------------- error-model derivation ----

TEST(ProbDerive, RatesSuperposeAndProbsCompose) {
  ScenarioSpec spec = clean_spec();
  spec.subsystems.faults = true;
  spec.faults = {
      FaultEventSpec{0.0, FaultKind::kBusErrorRate, "safety_can", 100.0},
      FaultEventSpec{5.0, FaultKind::kBusErrorRate, "safety_can", 50.0},
      FaultEventSpec{0.0, FaultKind::kBusErrorProb, "comfort_can", 0.5},
      FaultEventSpec{1.0, FaultKind::kBusErrorProb, "comfort_can", 0.5},
      FaultEventSpec{0.0, FaultKind::kBusDrop, "safety_can", 3.0},  // not an error model
  };
  const VehicleModel model = extract_model(spec);
  const std::vector<BusErrorModel> models = derive_error_models(model);
  double rate = 0.0, prob = 0.0;
  for (std::size_t b = 0; b < model.buses.size(); ++b) {
    if (model.buses[b].scenario_name == "safety_can") {
      rate = models[b].poisson_rate_per_s;
      EXPECT_EQ(models[b].per_attempt_prob, 0.0);
    }
    if (model.buses[b].scenario_name == "comfort_can")
      prob = models[b].per_attempt_prob;
  }
  EXPECT_EQ(rate, 150.0);        // independent Poisson processes superpose
  EXPECT_NEAR(prob, 0.75, 1e-15);  // 1 - (1 - 0.5)^2
}

// -------------------------------------------------------- degeneracy at 0 ----

TEST(ProbAnalyzer, ZeroRateReportByteIdenticalToDeterministic) {
  // Explicit zero-valued error models: armed() is false, nothing renders.
  ScenarioSpec spec = clean_spec();
  spec.subsystems.faults = true;
  spec.faults = {FaultEventSpec{0.0, FaultKind::kBusErrorRate, "safety_can", 0.0},
                 FaultEventSpec{0.0, FaultKind::kBusErrorProb, "comfort_can", 0.0}};
  EXPECT_EQ(report_text(analyze_probabilistic_scenario(spec)),
            report_text(analyze_scenario(spec)));
  // No fault plan at all degenerates the same way.
  EXPECT_EQ(report_text(analyze_probabilistic_scenario(clean_spec())),
            report_text(analyze_scenario(clean_spec())));
}

TEST(ProbAnalyzer, RerunsAreByteIdentical) {
  const ScenarioSpec spec =
      spec_with_fault(FaultKind::kBusErrorRate, "safety_can", 250.0);
  EXPECT_EQ(report_text(analyze_probabilistic_scenario(spec)),
            report_text(analyze_probabilistic_scenario(spec)));
}

// ------------------------------------------------------------- armed rules ----

TEST(ProbAnalyzer, ArmedBusRendersProbRules) {
  const ScenarioSpec spec =
      spec_with_fault(FaultKind::kBusErrorRate, "safety_can", 250.0);
  const Report report = analyze_probabilistic_scenario(spec);
  const Diagnostic* bus_error = report.find("prob.bus_error", "safety_can");
  ASSERT_NE(bus_error, nullptr);
  EXPECT_EQ(bus_error->severity, Severity::kInfo);
  EXPECT_EQ(bus_error->bound, 250.0);
  // Every safety_can frame gets a miss bound; the unarmed buses get none.
  std::size_t safety_frames = 0;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule_id == "prob.frame_miss") {
      EXPECT_EQ(d.subject.rfind("safety_can/", 0), 0u) << d.subject;
      EXPECT_GE(d.bound, 0.0);
      EXPECT_LE(d.bound, 1.0);
      ++safety_frames;
    }
  EXPECT_GT(safety_frames, 0u);
}

TEST(ProbAnalyzer, MissProbabilityMonotoneInErrorRate) {
  // Doubling the Poisson rate can only leave each frame's bound in place or
  // raise it (stress the bus so the bounds are away from both 0 and 1).
  std::vector<double> previous;
  for (const double rate : {100.0, 300.0, 900.0}) {
    ScenarioSpec spec = spec_with_fault(FaultKind::kBusErrorRate, "safety_can", rate);
    spec.network.can_bit_rate = 125e3;
    const VehicleModel model = extract_model(spec);
    ProbabilisticCanAnalyzer analyzer(model);
    std::vector<double> bounds;
    for (std::size_t b = 0; b < model.buses.size(); ++b)
      for (const FrameMissBound& fmb : analyzer.bus_outcome(b).frames)
        bounds.push_back(fmb.miss_probability);
    ASSERT_FALSE(bounds.empty());
    if (!previous.empty()) {
      ASSERT_EQ(bounds.size(), previous.size());
      for (std::size_t i = 0; i < bounds.size(); ++i)
        EXPECT_GE(bounds[i], previous[i] - 1e-15) << "frame " << i;
    }
    previous = bounds;
  }
}

// ------------------------------------------------------------ wiring lints ----

TEST(ProbWiring, UnknownBusTargetIsError) {
  const ScenarioSpec spec =
      spec_with_fault(FaultKind::kBusErrorRate, "no_such_bus", 100.0);
  const Report report = analyze_probabilistic_scenario(spec);
  const Diagnostic* d = report.find("fault.unknown_target", "fault[0]");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(ProbWiring, NonCanBusTargetIsError) {
  const ScenarioSpec spec =
      spec_with_fault(FaultKind::kBusErrorProb, "body_lin", 0.1);
  const Report report = analyze_probabilistic_scenario(spec);
  const Diagnostic* d = report.find("prob.unsupported_target", "fault[0]");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  // The deterministic analyzer lints the same structure — the rule fires
  // without --prob too (it is a wiring check, not a probabilistic pass).
  EXPECT_NE(analyze_scenario(spec).find("prob.unsupported_target", "fault[0]"),
            nullptr);
}

// --------------------------------------------------- incremental evaluator ----

TEST(ProbFitness, IncrementalOutcomesSurviveMovesUnderCrossCheck) {
  ScenarioSpec spec = spec_with_fault(FaultKind::kBusErrorRate, "safety_can", 300.0);
  spec.network.can_bit_rate = 125e3;
  const VehicleModel model = extract_model(spec);
  ProbabilisticCanAnalyzer analyzer(model);
  FitnessEvaluator& evaluator = analyzer.evaluator();
  // Every evaluate() recomputes from scratch and throws on any divergence
  // between the memoized outcomes (including ProbOutcomes) and fresh ones.
  evaluator.set_cross_check(true);
  (void)evaluator.evaluate();

  // A bit-rate change dirties every CAN bus: the armed bus's miss bounds
  // must be recomputed against the faster wire.
  std::vector<double> before;
  for (std::size_t b = 0; b < model.buses.size(); ++b)
    for (const FrameMissBound& fmb : analyzer.bus_outcome(b).frames)
      before.push_back(fmb.miss_probability);
  evaluator.set_can_bit_rate(500e3);
  EXPECT_NO_THROW((void)evaluator.evaluate());
  std::vector<double> after;
  for (std::size_t b = 0; b < model.buses.size(); ++b)
    for (const FrameMissBound& fmb : analyzer.bus_outcome(b).frames)
      after.push_back(fmb.miss_probability);
  ASSERT_EQ(before.size(), after.size());
  // 4x the bit rate shrinks every transmission: no bound may get worse.
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_LE(after[i], before[i] + 1e-15);

  // Frame renumbering on the armed bus re-runs the ladder too; the
  // cross-check inside evaluate() asserts the memoized result matches a
  // from-scratch evaluation byte for byte.
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (evaluator.model().frames[f].id_mutable &&
        evaluator.model().buses[evaluator.model().frames[f].bus].scenario_name ==
            "safety_can") {
      evaluator.renumber_frame(f, 0x7f0);
      break;
    }
  EXPECT_NO_THROW((void)evaluator.evaluate());
}

TEST(ProbFitness, ReportMatchesBatchAnalyzerAfterEnablingLate) {
  const ScenarioSpec spec =
      spec_with_fault(FaultKind::kBusErrorProb, "comfort_can", 0.02);
  const VehicleModel model = extract_model(spec);
  // Evaluate deterministically first, then arm the probabilistic pass: the
  // memoized report must still match a from-scratch probabilistic analysis.
  FitnessEvaluator evaluator(model);
  (void)evaluator.evaluate();
  evaluator.set_probabilistic(true);
  EXPECT_EQ(report_text(evaluator.report()),
            report_text(analyze_probabilistic(model)));
}

}  // namespace
