// Unit tests for the whole-vehicle static analyzer: negative paths that
// must surface as typed diagnostics (overloaded ECUs and buses, wiring
// mistakes, bad fault-plan targets), the exit-code mapping the CLI relies
// on, and the determinism of the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/diagnostics.h"
#include "ev/analysis/fitness.h"
#include "ev/analysis/model.h"
#include "ev/config/scenario.h"

namespace {

using namespace ev::analysis;

// The city-commute configuration: every subsystem that silences a lint is
// enabled, no faults planned. Must analyze clean.
ev::config::ScenarioSpec clean_spec() {
  ev::config::ScenarioSpec spec;
  spec.name = "clean";
  spec.subsystems.obs = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  return spec;
}

// ------------------------------------------------------------ happy path ----

TEST(Analyzer, CleanScenarioHasBoundsButNoFindings) {
  const Report report = analyze_scenario(clean_spec());
  EXPECT_EQ(report.count(Severity::kError), 0u);
  EXPECT_EQ(report.count(Severity::kWarning), 0u);
  EXPECT_GT(report.count(Severity::kInfo), 20u);
  EXPECT_EQ(exit_code_for(report), 0);

  // Every Fig. 1 bus gets a worst-case end-to-end bound.
  for (const char* bus : {"body_lin", "comfort_can", "infotainment_most",
                          "safety_can", "chassis_flexray"}) {
    const Diagnostic* d = report.find("rta.bus", bus);
    ASSERT_NE(d, nullptr) << bus;
    EXPECT_GT(d->bound, 0.0) << bus;
  }
  // And the cockpit partitions get response times within the major frame.
  const Diagnostic* info = report.find("rta.partition", "cockpit-controller/information");
  ASSERT_NE(info, nullptr);
  EXPECT_GT(info->bound, 0.0);
}

TEST(Analyzer, ReportJsonIsDeterministic) {
  const Report report = analyze_scenario(clean_spec());
  const std::string a = report_json(report);
  const std::string b = report_json(analyze_scenario(clean_spec()));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"summary\""), std::string::npos);
}

// -------------------------------------------------------- overloaded ECU ----

TEST(Analyzer, OverloadedMajorFrameIsAnError) {
  ev::config::ScenarioSpec spec = clean_spec();
  spec.timing.middleware_frame_us = 10000;  // budgets sum to 12000 us
  const Report report = analyze_scenario(spec);
  EXPECT_TRUE(report.has_errors());
  ASSERT_NE(report.find("ecu.frame_overflow", "cockpit-controller"), nullptr);
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(Analyzer, OvercommittedPartitionIsAnError) {
  VehicleModel model = extract_model(clean_spec());
  ASSERT_FALSE(model.app.partitions.empty());
  ev::core::PartitionModel& part = model.app.partitions.front();
  // One runnable per frame demanding more than the whole window budget.
  part.runnables.push_back(ev::core::RunnableModel{
      "hog", model.app.major_frame_us, part.budget_us + 1000});
  const Report report = analyze(model);
  const std::string subject = model.app.ecu_name + "/" + part.name;
  ASSERT_NE(report.find("partition.overcommitted", subject), nullptr);
  EXPECT_EQ(exit_code_for(report), 1);
}

// -------------------------------------------------------- overloaded bus ----

TEST(Analyzer, SaturatedCanBusIsUnschedulable) {
  ev::config::ScenarioSpec spec = clean_spec();
  spec.network.load_scale = 20.0;  // 20x traffic swamps the 500 kbit/s CAN
  const Report report = analyze_scenario(spec);
  EXPECT_TRUE(report.has_errors());
  EXPECT_NE(report.find("bus.overload", "safety_can"), nullptr);
  // At least one safety frame blows past its period.
  bool unschedulable_frame = false;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule_id == "rta.unschedulable" &&
        d.subject.find("safety_can/") == 0)
      unschedulable_frame = true;
  EXPECT_TRUE(unschedulable_frame);
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(Analyzer, OversizedCanPayloadIsAnError) {
  VehicleModel model = extract_model(clean_spec());
  // Bus 3 is the safety CAN in Fig. 1 order.
  ASSERT_EQ(model.buses.at(3).protocol, Protocol::kCan);
  FrameModel frame;
  frame.bus = 3;
  frame.id = 0x7FF;
  frame.payload_bytes = 12;  // classic CAN carries at most 8
  frame.period_s = 0.01;
  frame.description = "oversized";
  model.frames.push_back(frame);
  const Report report = analyze(model);
  ASSERT_NE(report.find("can.payload_size", "safety_can/0x7ff"), nullptr);
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(Analyzer, UnscheduledLinIdIsAnError) {
  VehicleModel model = extract_model(clean_spec());
  ASSERT_EQ(model.buses.at(0).protocol, Protocol::kLin);
  FrameModel frame;
  frame.bus = 0;
  frame.id = 0x3E;  // not in the master schedule table
  frame.payload_bytes = 2;
  frame.period_s = 0.1;
  frame.description = "unscheduled";
  model.frames.push_back(frame);
  const Report report = analyze(model);
  ASSERT_NE(report.find("lin.no_slot", "body_lin/0x03e"), nullptr);
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(Analyzer, FlexRayFrameBeyondDynamicSegmentIsAnError) {
  VehicleModel model = extract_model(clean_spec());
  ASSERT_EQ(model.buses.at(4).protocol, Protocol::kFlexRay);
  FrameModel frame;
  frame.bus = 4;
  frame.id = 0x1F0;  // no static slot -> dynamic segment
  frame.payload_bytes = 1000;  // transmission longer than the whole segment
  frame.period_s = 0.1;
  frame.description = "bulk dump";
  model.frames.push_back(frame);
  const Report report = analyze(model);
  ASSERT_NE(report.find("flexray.dynamic_overflow", "chassis_flexray/0x1f0"),
            nullptr);
  EXPECT_EQ(exit_code_for(report), 1);
}

// ----------------------------------------------------------- wiring lints ----

TEST(Analyzer, OrphanAndUnfedTopicsAreWarnings) {
  VehicleModel model = extract_model(clean_spec());
  ev::core::TopicModel orphan;
  orphan.id = 0x90;
  orphan.name = "debug.trace";
  orphan.payload_bytes = 8;
  orphan.publishers = {"information"};
  model.app.topics.push_back(orphan);
  ev::core::TopicModel unfed;
  unfed.id = 0x91;
  unfed.name = "nav.route";
  unfed.payload_bytes = 16;
  unfed.subscribers = {"hmi"};
  model.app.topics.push_back(unfed);

  const Report report = analyze(model);
  ASSERT_NE(report.find("pubsub.orphan_topic", "cockpit-controller/debug.trace"),
            nullptr);
  ASSERT_NE(report.find("pubsub.unfed_topic", "cockpit-controller/nav.route"),
            nullptr);
  EXPECT_FALSE(report.has_errors());
  EXPECT_EQ(exit_code_for(report), 3);
}

TEST(Analyzer, DisabledHealthMonitoringIsAWarningPerPartition) {
  ev::config::ScenarioSpec spec = clean_spec();
  spec.subsystems.health = false;
  const Report report = analyze_scenario(spec);
  EXPECT_EQ(report.count(Severity::kWarning), 2u);  // information + hmi
  EXPECT_NE(report.find("health.uncovered_partition",
                        "cockpit-controller/information"),
            nullptr);
  EXPECT_EQ(exit_code_for(report), 3);
}

TEST(Analyzer, FaultPlanNamingNonexistentTargetsIsAnError) {
  ev::config::ScenarioSpec spec = clean_spec();
  spec.subsystems.faults = true;
  spec.faults = {
      // Misspelt bus, missing partition, and a cell index beyond the pack.
      {1.0, ev::config::FaultKind::kBusDrop, "safty_can", 2.0},
      {2.0, ev::config::FaultKind::kPartitionCrash, "navigation", 0.0},
      {3.0, ev::config::FaultKind::kSensorStuck, "500", 4.2},
  };
  const Report report = analyze_scenario(spec);
  EXPECT_EQ(report.count(Severity::kError), 3u);
  for (const char* subject : {"fault[0]", "fault[1]", "fault[2]"})
    ASSERT_NE(report.find("fault.unknown_target", subject), nullptr) << subject;
  EXPECT_EQ(exit_code_for(report), 1);
}

TEST(Analyzer, ValidFaultTargetsPassClean) {
  ev::config::ScenarioSpec spec = clean_spec();
  spec.subsystems.faults = true;
  spec.faults = {
      {1.0, ev::config::FaultKind::kBusDrop, "safety_can", 2.0},
      {2.0, ev::config::FaultKind::kPartitionCrash, "hmi", 0.0},
      {3.0, ev::config::FaultKind::kSensorStuck, "17", 4.2},
  };
  const Report report = analyze_scenario(spec);
  EXPECT_EQ(report.count(Severity::kError), 0u);
}

// ---------------------------------------------------- report + exit codes ----

TEST(Diagnostics, ExitCodeMapsSeverities) {
  Report clean;
  EXPECT_EQ(exit_code_for(clean), 0);

  Report info_only;
  info_only.add(Severity::kInfo, "rta.bus", "safety_can", "bound", 1.0);
  EXPECT_EQ(exit_code_for(info_only), 0);

  Report warned = info_only;
  warned.add(Severity::kWarning, "pubsub.orphan_topic", "t", "orphan");
  EXPECT_EQ(exit_code_for(warned), 3);

  Report failed = warned;
  failed.add(Severity::kError, "bus.overload", "safety_can", "overload", 2.0);
  EXPECT_EQ(exit_code_for(failed), 1);
  EXPECT_TRUE(failed.has_errors());
}

TEST(Diagnostics, SortOrdersErrorsFirstThenRuleSubject) {
  Report report;
  report.add(Severity::kInfo, "rta.bus", "b", "info");
  report.add(Severity::kWarning, "pubsub.orphan_topic", "t", "warn");
  report.add(Severity::kError, "bus.overload", "z", "err2");
  report.add(Severity::kError, "bus.overload", "a", "err1");
  report.sort();
  ASSERT_EQ(report.diagnostics.size(), 4u);
  EXPECT_EQ(report.diagnostics[0].subject, "a");
  EXPECT_EQ(report.diagnostics[1].subject, "z");
  EXPECT_EQ(report.diagnostics[2].severity, Severity::kWarning);
  EXPECT_EQ(report.diagnostics[3].severity, Severity::kInfo);
}

TEST(Diagnostics, JsonEscapesAndFindsBySubject) {
  Report report;
  report.scenario = "quote\"and\\slash";
  report.add(Severity::kInfo, "rta.bus", "bus\n1", "tab\there", 0.5);
  const std::string json = report_json(report);
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("bus\\n1"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_EQ(report.find("rta.bus", "nope"), nullptr);
  ASSERT_NE(report.find("rta.bus", "bus\n1"), nullptr);
}

// ------------------------------------------------- incremental fitness ------

// Frame index of a source frame by its Fig. 1 base id.
std::size_t frame_by_base(const VehicleModel& model, std::uint32_t base_id) {
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (!model.frames[f].routed && model.frames[f].base_id == base_id) return f;
  ADD_FAILURE() << "no source frame with base id " << base_id;
  return 0;
}

TEST(FitnessEvaluator, OneFullEvaluationIsTheAnalyzer) {
  const VehicleModel model = extract_model(clean_spec());
  FitnessEvaluator evaluator(model);
  EXPECT_EQ(report_json(evaluator.report()), report_json(analyze(model)));
}

TEST(FitnessEvaluator, RepeatedEvaluationIsByteIdentical) {
  FitnessEvaluator evaluator(extract_model(clean_spec()));
  const std::string first = report_json(evaluator.report());
  // Again on the settled evaluator (all memoized), and on a fresh twin.
  EXPECT_EQ(report_json(evaluator.report()), first);
  FitnessEvaluator twin(extract_model(clean_spec()));
  EXPECT_EQ(report_json(twin.report()), first);
}

TEST(FitnessEvaluator, IncrementalMatchesFullAfterEveryMoveKind) {
  FitnessEvaluator evaluator(extract_model(clean_spec()));
  evaluator.evaluate();
  const auto expect_matches_full = [&](const char* what) {
    EXPECT_EQ(report_json(evaluator.report()), report_json(analyze(evaluator.model())))
        << what;
  };

  evaluator.move_frame(frame_by_base(evaluator.model(), 0x010), 1);
  expect_matches_full("move body frame 0x010 to comfort CAN");

  evaluator.renumber_frame(frame_by_base(evaluator.model(), 0x302), 0x320);
  expect_matches_full("renumber comfort frame 0x302 to 0x320");

  evaluator.set_can_bit_rate(800e3);
  expect_matches_full("raise the CAN bit rate");

  std::map<std::uint32_t, std::size_t> slots;
  for (const auto& [id, slot] : evaluator.model().buses[4].fr_static_slot)
    slots[id] = slot;
  std::swap(slots.at(0x100), slots.at(0x105));
  evaluator.set_fr_slots(slots);
  expect_matches_full("swap two chassis static slots");

  std::vector<std::pair<std::string, std::int64_t>> windows;
  for (const auto& partition : evaluator.model().app.partitions)
    windows.emplace_back(partition.name, partition.budget_us);
  std::reverse(windows.begin(), windows.end());
  evaluator.set_partition_windows(windows);
  expect_matches_full("reverse the partition window order");
}

TEST(FitnessEvaluator, EvaluationOrderDoesNotChangeTheReport) {
  // Same two moves, settled in one evaluation vs. one evaluation each.
  const VehicleModel model = extract_model(clean_spec());
  FitnessEvaluator batched(model);
  batched.move_frame(frame_by_base(model, 0x010), 1);
  batched.move_frame(frame_by_base(model, 0x011), 3);
  const std::string batched_json = report_json(batched.report());

  FitnessEvaluator stepped(model);
  stepped.move_frame(frame_by_base(model, 0x010), 1);
  stepped.evaluate();
  stepped.move_frame(frame_by_base(model, 0x011), 3);
  EXPECT_EQ(report_json(stepped.report()), batched_json);
}

TEST(FitnessEvaluator, MoveReanalyzesOnlyTheDirtyClosure) {
  FitnessEvaluator evaluator(extract_model(clean_spec()));
  evaluator.evaluate();
  const std::uint64_t settled = evaluator.bus_pass_evals();
  // Comfort -> safety move dirties the CAN buses plus their gateway-routed
  // downstream closure, but never the body LIN bus: fewer single-bus passes
  // than the 5-bus full recompute (3 passes per dirty bus).
  evaluator.move_frame(frame_by_base(evaluator.model(), 0x302), 3);
  evaluator.evaluate();
  const std::uint64_t delta = evaluator.bus_pass_evals() - settled;
  EXPECT_GT(delta, 0u);
  EXPECT_LT(delta, 15u);
}

TEST(FitnessEvaluator, CrossCheckModeAcceptsAMoveSequence) {
  FitnessEvaluator evaluator(extract_model(clean_spec()));
  evaluator.set_cross_check(true);  // throws std::logic_error on divergence
  evaluator.evaluate();
  evaluator.move_frame(frame_by_base(evaluator.model(), 0x012), 1);
  evaluator.evaluate();
  evaluator.renumber_frame(frame_by_base(evaluator.model(), 0x300), 0x330);
  evaluator.evaluate();
  evaluator.set_can_bit_rate(1e6);
  EXPECT_NO_THROW(evaluator.evaluate());
}

TEST(FitnessEvaluator, FitnessTracksFeasibilityAndSlack) {
  ev::config::ScenarioSpec spec = clean_spec();
  FitnessEvaluator clean(extract_model(spec));
  const Fitness good = clean.evaluate();
  EXPECT_TRUE(good.feasible());
  EXPECT_GT(good.worst_slack_us, 0.0);
  EXPECT_GT(good.peak_busload, 0.0);
  EXPECT_GT(good.deployment, 0u);

  spec.network.load_scale = 20.0;
  FitnessEvaluator saturated(extract_model(spec));
  const Fitness bad = saturated.evaluate();
  EXPECT_FALSE(bad.feasible());
  EXPECT_GT(bad.errors, 0u);
}

}  // namespace
