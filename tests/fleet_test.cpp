// Tests for the fleet charging backend: the deterministic retry/backoff
// queue (budget exhaustion, jitter determinism), the ThrottleAlive heartbeat
// lease (boundary-exact expiry), the challenge-response authorization round
// trip, the grid-safety invariant under injected faults, and the
// byte-identical determinism of whole runs across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "ev/campaign/worker_pool.h"
#include "ev/config/fleet.h"
#include "ev/fleet/central.h"
#include "ev/fleet/retry.h"
#include "ev/fleet/simulation.h"
#include "ev/fleet/station.h"
#include "ev/util/rng.h"

namespace {

using ev::config::FleetSpec;
using ev::config::GridFaultKindSpec;
using ev::config::GridFaultSpec;
using ev::fleet::FleetResult;
using ev::fleet::Message;
using ev::fleet::MessageType;
using ev::fleet::RetryPolicy;
using ev::fleet::RetryQueue;

Message heartbeat_msg(std::uint32_t station, double created_s) {
  Message msg;
  msg.type = MessageType::kHeartbeat;
  msg.station = station;
  msg.created_s = created_s;
  return msg;
}

// --- FleetSpec round trip and validation ------------------------------------

TEST(FleetSpec, DefaultRoundTripsLosslessly) {
  const FleetSpec spec;
  const FleetSpec reparsed = FleetSpec::from_text(spec.to_text());
  EXPECT_EQ(spec, reparsed);
}

TEST(FleetSpec, FaultTimelineRoundTrips) {
  FleetSpec spec;
  spec.name = "faulted";
  spec.seed = 99;
  spec.grid_faults.push_back(
      GridFaultSpec{120.0, GridFaultKindSpec::kCapacityDrop, 0, 0.4, 600.0});
  spec.grid_faults.push_back(
      GridFaultSpec{900.0, GridFaultKindSpec::kFeederPartition, 2, 0.0, 300.0});
  spec.grid_faults.push_back(
      GridFaultSpec{1500.0, GridFaultKindSpec::kCommsBlackout, 8, 16.0, 240.0});
  const FleetSpec reparsed = FleetSpec::from_text(spec.to_text());
  EXPECT_EQ(spec, reparsed);
}

TEST(FleetSpec, ValidateRejectsBadValues) {
  FleetSpec spec;
  spec.heartbeat_lease_s = spec.heartbeat_period_s / 2.0;  // lease < period
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.msg_loss_probability = 1.0;  // loss must leave a delivery path
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.station_min_current_a = spec.station_max_current_a + 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.retry_max_attempts = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(FleetSpec, FromTextRejectsDuplicateKeys) {
  const FleetSpec spec;
  const std::string text = spec.to_text() + "fleet.stations = 9\n";
  EXPECT_THROW((void)FleetSpec::from_text(text), std::invalid_argument);
}

// Substring assertion helper for the .fleet parser's diagnostics.
void expect_fleet_rejects(const std::string& line, const std::string& needle) {
  try {
    (void)FleetSpec::from_text(line);
    FAIL() << "accepted: " << line;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "for " << line << " got: " << e.what();
  }
}

TEST(FleetSpec, ParserRejectsOutOfRangeAndNonFinite) {
  // Same closed grammar as the scenario parser: the .fleet reader shares
  // kv_text.h, so strtod/strtoull saturation and extensions must fail
  // typed here too.
  expect_fleet_rejects("grid.capacity_kw = 1e999\n", "out of range");
  expect_fleet_rejects("fleet.tick_s = 1e-999\n", "out of range");
  expect_fleet_rejects("fleet.stations = 99999999999999999999\n",
                       "out of range");
  expect_fleet_rejects("grid.capacity_kw = inf\n", "expects a number");
  expect_fleet_rejects("grid.capacity_kw = nan\n", "expects a number");
  expect_fleet_rejects("fleet.stations = +4\n", "non-negative integer");
  expect_fleet_rejects("fleet.tick_s = 0x1p-1\n", "expects a number");
  expect_fleet_rejects("fleet.tick_s = +0.5\n", "expects a number");
  expect_fleet_rejects("fleet.tick_s =\n", "empty");
}

TEST(FleetSpec, ValidateRejectsNonFiniteFields) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  FleetSpec spec;
  spec.grid_capacity_kw = inf;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.tick_s = nan;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.msg_loss_probability = nan;  // NaN sails through `< 0 || > 1`
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = FleetSpec{};
  spec.grid_faults.push_back(
      GridFaultSpec{nan, GridFaultKindSpec::kCommsBlackout, 0, 0.0, 60.0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

// --- Retry queue edge cases (satellite: retry/backoff coverage) -------------

// Attempt-budget exhaustion: a message that can never be sent must land in
// the dead-letter handler after exactly max_attempts attempts, and the
// queue's conservation law delivered + dead_letters == enqueued must hold.
TEST(RetryQueue, BudgetExhaustionDeadLetters) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout_s = 1.0;
  policy.backoff_base_s = 1.0;
  policy.backoff_cap_s = 4.0;
  policy.jitter = 0.0;
  RetryQueue queue(policy);
  ev::util::Rng rng(7);

  queue.enqueue(heartbeat_msg(0, 0.0), 0.0);
  std::vector<Message> dead;
  for (int tick = 0; tick <= 100 && queue.pending() > 0; ++tick) {
    queue.pump(static_cast<double>(tick), rng, [](const Message&) { return false; },
               [&](const Message& msg) { dead.push_back(msg); });
  }
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].type, MessageType::kHeartbeat);
  EXPECT_EQ(queue.attempts(), 3u);
  EXPECT_EQ(queue.dead_letters(), 1u);
  EXPECT_EQ(queue.delivered(), 0u);
  EXPECT_EQ(queue.retries(), 2u);  // attempts 1 and 2 re-armed, 3 dead-lettered
  EXPECT_EQ(queue.delivered() + queue.dead_letters(), queue.enqueued());
  EXPECT_EQ(queue.pending(), 0u);
}

// Backoff delays must double per attempt, saturate at the cap, and sit on
// top of the loss-detection timeout.
TEST(RetryQueue, BackoffDoublesAndSaturates) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.timeout_s = 2.0;
  policy.backoff_base_s = 2.0;
  policy.backoff_cap_s = 16.0;
  policy.jitter = 0.0;
  RetryQueue queue(policy);
  ev::util::Rng rng(1);

  EXPECT_DOUBLE_EQ(queue.backoff_delay_s(1, rng), 2.0 + 2.0);
  EXPECT_DOUBLE_EQ(queue.backoff_delay_s(2, rng), 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(queue.backoff_delay_s(3, rng), 2.0 + 8.0);
  EXPECT_DOUBLE_EQ(queue.backoff_delay_s(4, rng), 2.0 + 16.0);
  EXPECT_DOUBLE_EQ(queue.backoff_delay_s(5, rng), 2.0 + 16.0);  // capped
}

// Jitter determinism: two queues fed from equal-seeded RNGs must schedule
// bit-identical retry times; a different seed must diverge.
TEST(RetryQueue, JitterIsSeedDeterministic) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  RetryQueue a(policy), b(policy), c(policy);
  ev::util::Rng rng_a(1234), rng_b(1234), rng_c(99);

  bool diverged = false;
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const double delay_a = a.backoff_delay_s(attempt, rng_a);
    const double delay_b = b.backoff_delay_s(attempt, rng_b);
    const double delay_c = c.backoff_delay_s(attempt, rng_c);
    EXPECT_EQ(delay_a, delay_b) << "same-seed backoff diverged at " << attempt;
    diverged = diverged || delay_a != delay_c;
  }
  EXPECT_TRUE(diverged) << "different seeds never changed the jitter";
}

// Entries that are not yet due keep their enqueue order and positions.
TEST(RetryQueue, PumpPreservesOrderAndDueTimes) {
  RetryPolicy policy;
  policy.timeout_s = 5.0;
  policy.jitter = 0.0;
  RetryQueue queue(policy);
  ev::util::Rng rng(3);

  queue.enqueue(heartbeat_msg(0, 0.0), 0.0);
  Message meter = heartbeat_msg(0, 0.0);
  meter.type = MessageType::kMeterValues;
  queue.enqueue(meter, 0.0);

  // First pump fails both: both re-arm at 0 + timeout + backoff.
  queue.pump(0.0, rng, [](const Message&) { return false; },
             [](const Message&) { FAIL() << "unexpected dead letter"; });
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_TRUE(queue.has(MessageType::kHeartbeat));
  EXPECT_TRUE(queue.has(MessageType::kMeterValues));
  EXPECT_GT(queue.next_due_s(), 0.0);

  // Pump before the due time: nothing attempted.
  const std::uint64_t attempts_before = queue.attempts();
  queue.pump(1.0, rng, [](const Message&) { return true; },
             [](const Message&) {});
  EXPECT_EQ(queue.attempts(), attempts_before);

  // At the due time both deliver, heartbeat first (enqueue order).
  std::vector<MessageType> delivered;
  queue.pump(queue.next_due_s() + policy.backoff_cap_s + policy.timeout_s, rng,
             [&](const Message& msg) {
               delivered.push_back(msg.type);
               return true;
             },
             [](const Message&) {});
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], MessageType::kHeartbeat);
  EXPECT_EQ(delivered[1], MessageType::kMeterValues);
  EXPECT_EQ(queue.pending(), 0u);
}

// --- Heartbeat lease boundary (satellite: lease expiry edge case) -----------

FleetSpec tiny_spec() {
  FleetSpec spec;
  spec.name = "tiny";
  spec.stations = 4;
  spec.feeders = 2;
  spec.sim_hours = 0.25;
  spec.seed = 7;
  spec.arrival_rate_per_station_per_h = 6.0;  // keep sessions flowing
  spec.session_energy_min_kwh = 1.0;
  spec.session_energy_max_kwh = 3.0;
  return spec;
}

// A station must throttle exactly at the tick where now - last_contact
// reaches the lease — not one tick later.
TEST(HeartbeatLease, ExpiresExactlyAtBoundaryTick) {
  ev::fleet::StationConfig config;
  config.lease_s = 30.0;
  config.heartbeat_period_s = 10.0;
  config.arrival_rate_per_h = 0.0;  // no sessions; isolate the lease logic
  ev::fleet::ChargePoint station(0, config, ev::security::Key(32, 0x11), 5);

  std::vector<Message> outbox;
  // Boot and make contact at t = boot time.
  double contact_s = -1.0;
  for (double t = 0.0; t <= 20.0 && contact_s < 0.0; t += 1.0) {
    outbox.clear();
    station.advance(t, 1.0, true, outbox);
    for (const Message& msg : outbox) {
      if (msg.type == MessageType::kBootNotification) {
        ev::fleet::Reply reply;
        reply.in_reply_to = MessageType::kBootNotification;
        reply.status = ev::fleet::ReplyStatus::kAccepted;
        station.deliver(reply, t);
        contact_s = t;
      }
    }
  }
  ASSERT_GE(contact_s, 0.0) << "station never booted";

  // Channel dark from here on. One tick before the boundary: still fresh.
  for (double t = contact_s + 1.0; t < contact_s + config.lease_s; t += 1.0) {
    outbox.clear();
    station.advance(t, 1.0, false, outbox);
    EXPECT_FALSE(station.throttled()) << "throttled early at t=" << t;
  }
  // Exactly at last_contact + lease: throttled (>= boundary, not >).
  outbox.clear();
  station.advance(contact_s + config.lease_s, 1.0, false, outbox);
  EXPECT_TRUE(station.throttled());
  EXPECT_EQ(station.stats().lease_expiries, 1u);
}

// --- Whole-run robustness invariants ----------------------------------------

// Heartbeat loss must throttle affected stations to the safe minimum within
// one lease period, and reconnect must clear the throttle.
TEST(FleetRun, BlackoutThrottlesWithinOneLeasePeriod) {
  FleetSpec spec = tiny_spec();
  spec.stations = 8;
  spec.sim_hours = 0.5;
  spec.arrival_rate_per_station_per_h = 12.0;
  // Stations 0..7 all blacked out for 300 s starting at 600 s.
  spec.grid_faults.push_back(
      GridFaultSpec{600.0, GridFaultKindSpec::kCommsBlackout, 0, 8.0, 300.0});
  const FleetResult result = ev::fleet::run_fleet(spec, 1);

  EXPECT_EQ(result.grid_violations, 0u);
  // Every station that was mid-lease at blackout start must have expired.
  EXPECT_GT(result.stations.lease_expiries, 0u);
  EXPECT_GT(result.stations.throttle_ticks, 0u);
  EXPECT_EQ(result.stations.reconnects, result.stations.lease_expiries);
  EXPECT_EQ(result.throttled_peak, 8u);
}

// An injected capacity drop must never strand an authorized session: open
// transactions survive shedding (suspended, not dropped) and the grid limit
// holds throughout.
TEST(FleetRun, CapacityDropNeverStrandsOrOvercommits) {
  FleetSpec spec = tiny_spec();
  spec.stations = 16;
  spec.feeders = 4;
  spec.sim_hours = 1.0;
  spec.grid_capacity_kw = 16 * 32 * 400.0 / 1000.0;  // full fleet fits...
  spec.arrival_rate_per_station_per_h = 8.0;
  // ...until 85% of it disappears for 10 minutes.
  spec.grid_faults.push_back(
      GridFaultSpec{900.0, GridFaultKindSpec::kCapacityDrop, 0, 0.85, 600.0});
  const FleetResult result = ev::fleet::run_fleet(spec, 1);

  EXPECT_EQ(result.grid_violations, 0u);
  EXPECT_GT(result.mode_ticks[static_cast<std::size_t>(
                ev::fleet::GridMode::kShedLoad)] +
                result.mode_ticks[static_cast<std::size_t>(
                    ev::fleet::GridMode::kConstrained)],
            0u)
      << "the drop never degraded the mode";
  // Conservation: every arrival is accounted for — completed, rejected,
  // abandoned, or still open/in-progress at the end. Nothing vanishes.
  EXPECT_GE(result.stations.arrivals,
            result.stations.sessions_completed + result.stations.sessions_rejected +
                result.stations.sessions_abandoned);
  EXPECT_GT(result.stations.sessions_completed, 0u);
  // Suspended sessions resumed once capacity returned: by the end the
  // balancer is back to normal and nothing is shed.
  EXPECT_EQ(result.final_mode, ev::fleet::GridMode::kNormal);
}

// Rogue stations (corrupted credentials) must be rejected cleanly by the
// HMAC challenge-response — never authorized, never crashing the run.
TEST(FleetRun, RogueStationsRejectedCleanly) {
  FleetSpec spec = tiny_spec();
  spec.stations = 6;
  spec.rogue_stations = 2;
  spec.sim_hours = 0.5;
  spec.arrival_rate_per_station_per_h = 10.0;
  const FleetResult result = ev::fleet::run_fleet(spec, 1);

  EXPECT_GT(result.central.authorize_rejected, 0u);
  EXPECT_EQ(result.central.authorize_rejected, result.stations.sessions_rejected);
  EXPECT_GT(result.central.authorize_accepted, 0u);  // honest stations fine
  EXPECT_EQ(result.grid_violations, 0u);
}

// Dead-lettered accounting messages must be journaled and redelivered on
// reconnect so billing converges (billed == delivered energy of every
// stopped session, cumulative meters make redelivery idempotent).
TEST(FleetRun, AccountingConvergesAfterBlackout) {
  FleetSpec spec = tiny_spec();
  spec.stations = 8;
  spec.sim_hours = 1.0;
  spec.arrival_rate_per_station_per_h = 12.0;
  spec.retry_max_attempts = 2;  // force dead letters quickly
  spec.grid_faults.push_back(
      GridFaultSpec{600.0, GridFaultKindSpec::kCommsBlackout, 0, 8.0, 400.0});
  const FleetResult result = ev::fleet::run_fleet(spec, 1);

  EXPECT_GT(result.messages_dead_lettered, 0u);
  EXPECT_GT(result.stations.redelivered, 0u);
  EXPECT_EQ(result.journal_pending_end, 0u) << "journal never drained";
  // Conservation law of the retry queues: nothing vanishes. (Redelivered
  // journal entries pass through enqueue() again, so they are already part
  // of the enqueued count.)
  EXPECT_EQ(result.messages_delivered + result.messages_dead_lettered +
                result.retry_pending_end,
            result.messages_enqueued);
  // Billed energy covers every stopped transaction's final meter; it can
  // only trail delivered energy by what is still open at the end.
  EXPECT_LE(result.central.billed_kwh,
            result.stations.energy_delivered_kwh + 1e-9);
  EXPECT_EQ(result.grid_violations, 0u);
}

// --- Determinism ------------------------------------------------------------

TEST(FleetRun, ReportByteIdenticalAcrossJobsAndReruns) {
  FleetSpec spec = tiny_spec();
  spec.stations = 12;
  spec.feeders = 3;
  spec.msg_loss_probability = 0.05;
  spec.grid_faults.push_back(
      GridFaultSpec{300.0, GridFaultKindSpec::kCapacityDrop, 0, 0.6, 300.0});
  spec.grid_faults.push_back(
      GridFaultSpec{700.0, GridFaultKindSpec::kFeederPartition, 1, 0.0, 120.0});

  const std::string serial = ev::fleet::fleet_report_json(ev::fleet::run_fleet(spec, 1));
  const std::string parallel =
      ev::fleet::fleet_report_json(ev::fleet::run_fleet(spec, 4));
  const std::string rerun = ev::fleet::fleet_report_json(ev::fleet::run_fleet(spec, 4));
  EXPECT_EQ(serial, parallel) << "--jobs changed the report bytes";
  EXPECT_EQ(parallel, rerun) << "same-seed rerun changed the report bytes";

  FleetSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(serial, ev::fleet::fleet_report_json(ev::fleet::run_fleet(other, 2)))
      << "seed does not reach the simulation";
}

TEST(FleetRun, MetricsRegistryMatchesReport) {
  const FleetSpec spec = tiny_spec();
  ev::obs::MetricsRegistry metrics;
  const FleetResult result = ev::fleet::run_fleet(spec, 2, &metrics);

  EXPECT_EQ(metrics.counter_value(metrics.find("fleet.sessions_completed")),
            result.stations.sessions_completed);
  EXPECT_EQ(metrics.counter_value(metrics.find("fleet.grid_violations")), 0u);
  EXPECT_EQ(
      metrics.histogram_stats(metrics.find("fleet.decision_latency_s")).count(),
      result.central.decision_latency_s.count());
  EXPECT_DOUBLE_EQ(metrics.gauge_value(metrics.find("fleet.peak_draw_kw")),
                   result.peak_draw_kw);
}

// --- WorkerPool -------------------------------------------------------------

TEST(WorkerPool, RunsEveryIndexAcrossRounds) {
  ev::campaign::WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> hits(64, 0);
    pool.run(64, [&](int i) { hits[static_cast<std::size_t>(i)] += 1; });
    for (int i = 0; i < 64; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "round " << round;
  }
}

TEST(WorkerPool, SingleJobRunsInline) {
  ev::campaign::WorkerPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<int> order;
  pool.run(8, [&](int i) { order.push_back(i); });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(WorkerPool, RethrowsTaskException) {
  ev::campaign::WorkerPool pool(3);
  EXPECT_THROW(
      pool.run(16,
               [&](int i) {
                 if (i == 7) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool must still be usable after an exception round.
  std::atomic<int> done{0};
  pool.run(16, [&](int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
