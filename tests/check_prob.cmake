# Round-trip test for `evsys check --prob`, run under ctest (see
# tests/CMakeLists.txt):
#   armed error models  -> exit 0, prob.* rules present, byte-identical
#                          JSON across two runs
#   zero-valued models  -> --prob output byte-identical to the plain check
#   no fault plan       -> --prob output byte-identical to the plain check
# Expects -DEVSYS=<path to the evsys binary> and -DSOURCE_DIR=<repo root>.
if(NOT DEFINED EVSYS OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DEVSYS=<binary> -DSOURCE_DIR=<repo root>")
endif()

function(run_check out)
  execute_process(
    COMMAND "${EVSYS}" check ${ARGN} --out "${out}"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys check ${ARGN}: expected exit 0, got ${code}")
  endif()
endfunction()

function(expect_identical a b what)
  execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files "${a}" "${b}"
                  RESULT_VARIABLE differs)
  if(NOT differs EQUAL 0)
    message(FATAL_ERROR "${what}: reports differ (${a} vs ${b})")
  endif()
  message(STATUS "byte-identical: ${what}")
endfunction()

set(armed "${SOURCE_DIR}/tests/data/error_model.scn")
set(zero "${SOURCE_DIR}/tests/data/error_model_zero.scn")
set(clean "${SOURCE_DIR}/examples/scenarios/city_commute.scn")
set(dir "${CMAKE_CURRENT_BINARY_DIR}")

# Armed models: the prob.* rules must actually appear, and the report must
# be deterministic across reruns.
run_check("${dir}/prob_armed_a.json" "${armed}" --prob)
run_check("${dir}/prob_armed_b.json" "${armed}" --prob)
expect_identical("${dir}/prob_armed_a.json" "${dir}/prob_armed_b.json"
                 "check --prob rerun on armed error models")
file(READ "${dir}/prob_armed_a.json" armed_json)
foreach(rule IN ITEMS "prob.bus_error" "prob.frame_miss")
  if(NOT armed_json MATCHES "${rule}")
    message(FATAL_ERROR "check --prob on ${armed} emitted no ${rule} rule")
  endif()
endforeach()
message(STATUS "prob.bus_error + prob.frame_miss present for armed models")

# Zero-valued error models: --prob degenerates to the deterministic pass.
run_check("${dir}/prob_zero.json" "${zero}" --prob)
run_check("${dir}/det_zero.json" "${zero}")
expect_identical("${dir}/prob_zero.json" "${dir}/det_zero.json"
                 "check --prob degenerates at rate 0")
if(det_zero MATCHES "prob\\.")
  message(FATAL_ERROR "deterministic check emitted prob.* rules")
endif()

# No fault plan at all: same degeneracy.
run_check("${dir}/prob_clean.json" "${clean}" --prob)
run_check("${dir}/det_clean.json" "${clean}")
expect_identical("${dir}/prob_clean.json" "${dir}/det_clean.json"
                 "check --prob degenerates with no fault plan")
