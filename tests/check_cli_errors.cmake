# Error-path contract of the evsys CLI, run under ctest (see
# tests/CMakeLists.txt):
#   unknown verb           -> exit 2, stderr enumerates every valid verb
#   unknown template kind  -> exit 2, stderr enumerates the template kinds
#   explicit 'template scenario' and bare 'template' -> identical output
# Expects -DEVSYS=<path to the evsys binary>.
if(NOT DEFINED EVSYS)
  message(FATAL_ERROR "pass -DEVSYS=<binary>")
endif()

execute_process(
  COMMAND "${EVSYS}" frobnicate
  RESULT_VARIABLE code
  ERROR_VARIABLE err
  OUTPUT_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "unknown verb: expected exit 2, got ${code}")
endif()
if(NOT err MATCHES "unknown command 'frobnicate'")
  message(FATAL_ERROR "unknown verb: stderr does not name the bad verb:\n${err}")
endif()
foreach(verb IN ITEMS campaign check fleet print run synthesize template)
  if(NOT err MATCHES "${verb}")
    message(FATAL_ERROR "unknown verb: stderr does not list '${verb}':\n${err}")
  endif()
endforeach()
message(STATUS "unknown verb enumerates all valid verbs")

execute_process(
  COMMAND "${EVSYS}" template starship
  RESULT_VARIABLE code
  ERROR_VARIABLE err
  OUTPUT_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "unknown template kind: expected exit 2, got ${code}")
endif()
if(NOT err MATCHES "unknown template kind 'starship'")
  message(FATAL_ERROR "unknown template kind: bad stderr:\n${err}")
endif()
foreach(kind IN ITEMS scenario fleet)
  if(NOT err MATCHES "${kind}")
    message(FATAL_ERROR "unknown template kind: stderr does not list '${kind}':\n${err}")
  endif()
endforeach()
message(STATUS "unknown template kind enumerates scenario and fleet")

execute_process(
  COMMAND "${EVSYS}" template
  RESULT_VARIABLE code
  OUTPUT_VARIABLE bare)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "bare 'template' failed with ${code}")
endif()
execute_process(
  COMMAND "${EVSYS}" template scenario
  RESULT_VARIABLE code
  OUTPUT_VARIABLE explicit)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "'template scenario' failed with ${code}")
endif()
if(NOT bare STREQUAL explicit)
  message(FATAL_ERROR "'template' and 'template scenario' outputs differ")
endif()
message(STATUS "'template scenario' matches bare 'template'")

execute_process(
  COMMAND "${EVSYS}"
  RESULT_VARIABLE code
  OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "no arguments: expected exit 2, got ${code}")
endif()
message(STATUS "bare invocation exits 2 with usage")
