// Unit tests for the BMS: SoC estimators, balancing policies, the safety
// monitor, and the central battery manager.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "ev/bms/balancing.h"
#include "ev/bms/battery_manager.h"
#include "ev/bms/module_manager.h"
#include "ev/bms/safety.h"
#include "ev/bms/soc_estimator.h"
#include "ev/util/rng.h"

namespace {

using namespace ev::bms;
using namespace ev::battery;

// ---------------------------------------------------------- estimators ----

TEST(CoulombCounting, ExactWithPerfectSensor) {
  CoulombCountingEstimator est(10.0, 0.8);
  // 10 A discharge for 360 s = 0.1 of capacity.
  for (int i = 0; i < 360; ++i) est.update(10.0, 3.7, 1.0);
  EXPECT_NEAR(est.soc(), 0.7, 1e-9);
}

TEST(CoulombCounting, DriftsUnderBias) {
  CoulombCountingEstimator est(10.0, 0.5);
  // True current zero, sensed 0.05 A bias: estimate walks away linearly.
  for (int i = 0; i < 3600; ++i) est.update(0.05, 3.7, 1.0);
  EXPECT_NEAR(est.soc(), 0.5 - 0.05 * 3600 / 36000.0, 1e-6);
}

TEST(CoulombCounting, RejectsNonPositiveCapacity) {
  EXPECT_THROW(CoulombCountingEstimator(0.0, 0.5), std::invalid_argument);
}

TEST(VoltageCorrected, ConvergesFromWrongInitialGuess) {
  auto curve = std::make_shared<const OcvCurve>(OcvCurve::nmc());
  VoltageCorrectedEstimator est(10.0, 0.2, curve, 0.0015, 0.05);
  // True cell sits at 0.7: rested terminal voltage = OCV(0.7).
  const double v_true = curve->voltage(0.7);
  for (int i = 0; i < 2000; ++i) est.update(0.0, v_true, 1.0);
  EXPECT_NEAR(est.soc(), 0.7, 0.02);
}

TEST(VoltageCorrected, ResistsSensorBias) {
  auto curve = std::make_shared<const OcvCurve>(OcvCurve::nmc());
  VoltageCorrectedEstimator corrected(10.0, 0.5, curve, 0.0015, 0.05);
  CoulombCountingEstimator naive(10.0, 0.5);
  // True state stays 0.5 (no real current) but the sensor reports 0.05 A.
  const double v_true = curve->voltage(0.5);
  for (int i = 0; i < 7200; ++i) {
    corrected.update(0.05, v_true, 1.0);
    naive.update(0.05, v_true, 1.0);
  }
  EXPECT_LT(std::abs(corrected.soc() - 0.5), std::abs(naive.soc() - 0.5) / 4.0);
}

TEST(VoltageCorrected, NullCurveRejected) {
  EXPECT_THROW(VoltageCorrectedEstimator(10.0, 0.5, nullptr, 0.001),
               std::invalid_argument);
}

// ----------------------------------------------------------- balancing ----

CellParameters cell_params() {
  CellParameters p;
  p.capacity_ah = 10.0;
  return p;
}

SeriesModule unbalanced_module() {
  std::vector<Cell> cells;
  cells.emplace_back(cell_params(), OcvCurve::nmc(), 0.62);
  cells.emplace_back(cell_params(), OcvCurve::nmc(), 0.55);
  cells.emplace_back(cell_params(), OcvCurve::nmc(), 0.50);
  return SeriesModule(std::move(cells));
}

TEST(SocSpreadHelper, ComputesMaxMinusMin) {
  const std::vector<double> socs{0.5, 0.62, 0.55};
  EXPECT_NEAR(soc_spread(socs), 0.12, 1e-12);
  EXPECT_EQ(soc_spread({}), 0.0);
}

TEST(PassiveBalancer, EngagesBleedOnHighCells) {
  SeriesModule m = unbalanced_module();
  PassiveBalancer policy(0.003);
  const std::vector<double> est{0.62, 0.55, 0.50};
  policy.decide(est, m, 0.50);
  EXPECT_TRUE(m.bleed_engaged(0));
  EXPECT_TRUE(m.bleed_engaged(1));
  EXPECT_FALSE(m.bleed_engaged(2));  // the reference (lowest) cell
}

TEST(ActiveBalancer, TransfersFromMaxToMin) {
  SeriesModule m = unbalanced_module();
  ActiveBalancer policy(0.003);
  const std::vector<double> est{0.62, 0.55, 0.50};
  policy.decide(est, m, 0.50);
  EXPECT_TRUE(m.transfer_active());
  for (std::size_t i = 0; i < m.cell_count(); ++i) EXPECT_FALSE(m.bleed_engaged(i));
}

TEST(ActiveBalancer, RestsWhenConverged) {
  SeriesModule m = unbalanced_module();
  ActiveBalancer policy(0.01);
  const std::vector<double> est{0.501, 0.500, 0.502};
  policy.decide(est, m, 0.50);
  EXPECT_FALSE(m.transfer_active());
  EXPECT_TRUE(policy.converged(est));
}

TEST(NoBalancer, ReleasesEverything) {
  SeriesModule m = unbalanced_module();
  m.set_bleed(0, true);
  m.command_transfer(0, 2);
  NoBalancer policy;
  policy.decide(std::vector<double>{0.6, 0.5, 0.4}, m, 0.4);
  EXPECT_FALSE(m.bleed_engaged(0));
  EXPECT_FALSE(m.transfer_active());
}

// Property: both real policies drive the true SoC spread below tolerance.
class BalancingConvergence : public ::testing::TestWithParam<BalancingKind> {};

TEST_P(BalancingConvergence, SpreadShrinksToTolerance) {
  SeriesModule m = unbalanced_module();
  const double tol = 0.005;
  std::unique_ptr<BalancingStrategy> policy;
  switch (GetParam()) {
    case BalancingKind::kPassive: policy = std::make_unique<PassiveBalancer>(tol); break;
    case BalancingKind::kActive: policy = std::make_unique<ActiveBalancer>(tol); break;
    default: GTEST_SKIP();
  }
  // Idle pack, ideal estimates (policy quality is what is under test).
  for (int step = 0; step < 400000 && m.soc_spread() > tol; ++step) {
    std::vector<double> est;
    for (std::size_t i = 0; i < m.cell_count(); ++i) est.push_back(m.cell(i).soc());
    const double target = *std::min_element(est.begin(), est.end());
    policy->decide(est, m, target);
    (void)m.step(0.0, 1.0);
  }
  EXPECT_LE(m.soc_spread(), tol * 1.2);
}

INSTANTIATE_TEST_SUITE_P(Policies, BalancingConvergence,
                         ::testing::Values(BalancingKind::kPassive,
                                           BalancingKind::kActive));

TEST(Balancing, ActiveWastesLessEnergyThanPassive) {
  SeriesModule passive_m = unbalanced_module();
  SeriesModule active_m = unbalanced_module();
  PassiveBalancer passive(0.005);
  ActiveBalancer active(0.005);
  for (int step = 0; step < 400000; ++step) {
    std::vector<double> est_p, est_a;
    for (std::size_t i = 0; i < 3; ++i) {
      est_p.push_back(passive_m.cell(i).soc());
      est_a.push_back(active_m.cell(i).soc());
    }
    if (passive_m.soc_spread() > 0.005) {
      passive.decide(est_p, passive_m, *std::min_element(est_p.begin(), est_p.end()));
      (void)passive_m.step(0.0, 1.0);
    }
    if (active_m.soc_spread() > 0.005) {
      active.decide(est_a, active_m, *std::min_element(est_a.begin(), est_a.end()));
      (void)active_m.step(0.0, 1.0);
    }
  }
  const double passive_waste = passive_m.bleed_energy_j();
  const double active_waste = active_m.transfer_loss_j();
  EXPECT_GT(passive_waste, 3.0 * active_waste);
  // Active balancing leaves more charge in the weakest cell.
  EXPECT_GT(active_m.min_soc(), passive_m.min_soc() + 0.02);
}

// -------------------------------------------------------------- safety ----

TEST(SafetyMonitor, DebouncesTransients) {
  SafetyMonitor mon;
  const std::vector<double> bad_v{4.5};
  const std::vector<double> good_v{3.7};
  const std::vector<double> temps{25.0};
  // Two violating samples (below the 3-sample debounce), then recovery.
  (void)mon.evaluate(bad_v, temps, 0.0);
  (void)mon.evaluate(bad_v, temps, 0.0);
  (void)mon.evaluate(good_v, temps, 0.0);
  EXPECT_FALSE(mon.tripped());
  EXPECT_TRUE(mon.faults().empty());
}

TEST(SafetyMonitor, LatchesAfterDebounce) {
  SafetyMonitor mon;
  const std::vector<double> bad_v{4.5};
  const std::vector<double> temps{25.0};
  SafetyAction action = SafetyAction::kNone;
  for (int i = 0; i < 3; ++i) action = mon.evaluate(bad_v, temps, 0.0);
  EXPECT_EQ(action, SafetyAction::kOpenContactor);
  EXPECT_TRUE(mon.tripped());
  ASSERT_EQ(mon.faults().size(), 1u);
  EXPECT_EQ(mon.faults()[0].kind, FaultKind::kOvervoltage);
  // Latching: healthy samples do not clear the trip.
  const std::vector<double> good_v{3.7};
  EXPECT_EQ(mon.evaluate(good_v, temps, 0.0), SafetyAction::kOpenContactor);
  mon.reset();
  EXPECT_FALSE(mon.tripped());
}

TEST(SafetyMonitor, ResetClearsLatchesAndDebounceCounters) {
  SafetyMonitor mon;
  const std::vector<double> bad_v{4.5};
  const std::vector<double> temps{25.0};
  // Trip fully, then accumulate two fresh violating samples (half of a new
  // debounce count) before the service reset.
  for (int i = 0; i < 3; ++i) (void)mon.evaluate(bad_v, temps, 0.0);
  ASSERT_TRUE(mon.tripped());
  ASSERT_FALSE(mon.faults().empty());
  (void)mon.evaluate(bad_v, temps, 0.0);
  (void)mon.evaluate(bad_v, temps, 0.0);

  mon.reset();
  EXPECT_FALSE(mon.tripped());
  EXPECT_TRUE(mon.faults().empty());

  // The half-counted violation must NOT survive the reset: two more bad
  // samples make only 2 of 3 debounce counts, so the monitor stays untripped.
  (void)mon.evaluate(bad_v, temps, 0.0);
  SafetyAction action = mon.evaluate(bad_v, temps, 0.0);
  EXPECT_NE(action, SafetyAction::kOpenContactor);
  EXPECT_FALSE(mon.tripped());
  EXPECT_TRUE(mon.faults().empty());
  // The third consecutive sample after reset re-latches normally.
  action = mon.evaluate(bad_v, temps, 0.0);
  EXPECT_EQ(action, SafetyAction::kOpenContactor);
}

TEST(SafetyMonitor, WarnsBeforeTripping) {
  SafetyMonitor mon;
  // Inside hard limits but within the warning margin.
  const std::vector<double> v{4.17};
  const std::vector<double> t{25.0};
  EXPECT_EQ(mon.evaluate(v, t, 0.0), SafetyAction::kDerate);
  EXPECT_FALSE(mon.tripped());
}

TEST(SafetyMonitor, ThermalRunawayIsImmediate) {
  SafetyMonitor mon;
  const std::vector<double> v{3.7};
  const std::vector<double> hot{85.0};
  const auto action = mon.evaluate(v, hot, 0.0);
  EXPECT_EQ(action, SafetyAction::kOpenContactor);
  bool found = false;
  for (const auto& f : mon.faults())
    if (f.kind == FaultKind::kThermalRunaway) found = true;
  EXPECT_TRUE(found);
}

TEST(SafetyMonitor, OvercurrentBothDirections) {
  SafetyMonitor mon;
  const std::vector<double> v{3.7};
  const std::vector<double> t{25.0};
  for (int i = 0; i < 3; ++i) (void)mon.evaluate(v, t, 500.0);
  EXPECT_TRUE(mon.tripped());
  SafetyMonitor mon2;
  for (int i = 0; i < 3; ++i) (void)mon2.evaluate(v, t, -200.0);
  EXPECT_TRUE(mon2.tripped());
}

TEST(SafetyMonitor, FaultNames) {
  EXPECT_EQ(to_string(FaultKind::kOvervoltage), "overvoltage");
  EXPECT_EQ(to_string(FaultKind::kThermalRunaway), "thermal-runaway");
}

// ------------------------------------------------------ battery manager ----

TEST(BatteryManager, ReportsPlausibleSoc) {
  ev::util::Rng rng(21);
  PackConfig pc;
  pc.initial_soc = 0.8;
  Pack pack(pc, rng);
  BmsConfig bc;
  bc.initial_soc_estimate = 0.8;
  BatteryManager bms(pack, bc);
  for (int i = 0; i < 100; ++i) {
    (void)pack.step(20.0, 0.1);
    (void)bms.step(pack, 0.1, rng);
  }
  EXPECT_NEAR(bms.report().pack_soc, pack.mean_soc(), 0.02);
  EXPECT_GT(bms.report().discharge_power_limit_w, 0.0);
}

TEST(BatteryManager, TripsOnDeepOvercharge) {
  ev::util::Rng rng(23);
  PackConfig pc;
  pc.initial_soc = 0.99;
  Pack pack(pc, rng);
  BmsConfig bc;
  bc.initial_soc_estimate = 0.99;
  BatteryManager bms(pack, bc);
  // Hard overcharge until the monitor reacts.
  for (int i = 0; i < 3000 && !bms.safety().tripped(); ++i) {
    (void)pack.step(-60.0, 1.0);
    (void)bms.step(pack, 1.0, rng);
  }
  EXPECT_TRUE(bms.safety().tripped());
  EXPECT_FALSE(pack.contactor_closed());
  EXPECT_DOUBLE_EQ(bms.report().discharge_power_limit_w, 0.0);
}

TEST(BatteryManager, ChargeLimitTapersNearFull) {
  ev::util::Rng rng(25);
  PackConfig pc;
  pc.initial_soc = 0.97;
  pc.soc_spread_sigma = 0.0;
  Pack pack(pc, rng);
  BmsConfig bc;
  bc.initial_soc_estimate = 0.97;
  BatteryManager bms(pack, bc);
  (void)pack.step(0.0, 0.1);
  const BmsReport r = bms.step(pack, 0.1, rng);
  EXPECT_LT(r.charge_power_limit_w, r.discharge_power_limit_w);
}

TEST(BatteryManager, BalancingReducesSpreadOverTime) {
  ev::util::Rng rng(27);
  PackConfig pc;
  pc.module_count = 2;
  pc.cells_per_module = 4;
  pc.soc_spread_sigma = 0.03;
  Pack pack(pc, rng);
  BmsConfig bc;
  bc.balancing = BalancingKind::kActive;
  bc.initial_soc_estimate = 0.9;
  bc.estimator = EstimatorKind::kVoltageCorrected;
  BatteryManager bms(pack, bc);
  const double spread_before = pack.max_soc() - pack.min_soc();
  for (int i = 0; i < 30000; ++i) {
    (void)pack.step(0.0, 1.0);
    (void)bms.step(pack, 1.0, rng);
  }
  const double spread_after = pack.max_soc() - pack.min_soc();
  EXPECT_LT(spread_after, spread_before * 0.5);
}

TEST(BatteryManager, InterModuleTransferEqualizesModules) {
  ev::util::Rng rng(41);
  PackConfig pc;
  pc.module_count = 2;
  pc.cells_per_module = 4;
  pc.soc_spread_sigma = 0.0;
  pc.initial_soc = 0.7;
  Pack pack(pc, rng);
  // Skew one whole module up: intra-module balancing alone cannot fix this.
  for (std::size_t c = 0; c < 4; ++c)
    pack.module(0).cell(c).inject_charge(0.08 * pack.module(0).cell(c).charge_coulomb());
  const double spread_before = pack.max_soc() - pack.min_soc();
  ASSERT_GT(spread_before, 0.05);

  BmsConfig bc;
  bc.balancing = BalancingKind::kActive;
  bc.initial_soc_estimate = 0.7;
  BatteryManager bms(pack, bc);
  for (int i = 0; i < 40000; ++i) {
    (void)pack.step(0.0, 1.0);
    (void)bms.step(pack, 1.0, rng);
  }
  EXPECT_LT(pack.max_soc() - pack.min_soc(), spread_before * 0.3);
  EXPECT_GT(pack.total_transfer_loss_j(), 0.0);
}

TEST(BatteryManager, PassiveReachesPackWideTarget) {
  ev::util::Rng rng(43);
  PackConfig pc;
  pc.module_count = 2;
  pc.cells_per_module = 3;
  pc.soc_spread_sigma = 0.0;
  pc.initial_soc = 0.7;
  Pack pack(pc, rng);
  // Module 0 sits above module 1: the pack-wide target must pull it down.
  for (std::size_t c = 0; c < 3; ++c)
    pack.module(0).cell(c).inject_charge(0.05 * pack.module(0).cell(c).charge_coulomb());
  BmsConfig bc;
  bc.balancing = BalancingKind::kPassive;
  bc.initial_soc_estimate = 0.7;
  BatteryManager bms(pack, bc);
  const double spread_before = pack.max_soc() - pack.min_soc();
  for (int i = 0; i < 80000; ++i) {
    (void)pack.step(0.0, 1.0);
    (void)bms.step(pack, 1.0, rng);
  }
  EXPECT_LT(pack.max_soc() - pack.min_soc(), spread_before * 0.3);
  EXPECT_GT(pack.total_bleed_energy_j(), 0.0);
}

TEST(ModuleManager, MeasuresThroughSensors) {
  ev::util::Rng rng(29);
  std::vector<Cell> cells;
  cells.emplace_back(cell_params(), OcvCurve::nmc(), 0.6);
  cells.emplace_back(cell_params(), OcvCurve::nmc(), 0.6);
  SeriesModule module(std::move(cells));
  auto curve = std::make_shared<const OcvCurve>(OcvCurve::nmc());
  ModuleManager mm(2, 10.0, 0.6, EstimatorKind::kVoltageCorrected, curve, 0.0015,
                   std::make_unique<PassiveBalancer>());
  mm.step(module, 0.0, 1.0, rng);
  ASSERT_EQ(mm.measured_voltages().size(), 2u);
  EXPECT_NEAR(mm.measured_voltages()[0], module.cell(0).terminal_voltage(0.0), 0.01);
  EXPECT_NEAR(mm.estimated_soc()[0], 0.6, 0.05);
}

TEST(ModuleManager, RejectsBadConstruction) {
  auto curve = std::make_shared<const OcvCurve>(OcvCurve::nmc());
  EXPECT_THROW(ModuleManager(0, 10.0, 0.5, EstimatorKind::kCoulombCounting, curve, 0.001,
                             std::make_unique<NoBalancer>()),
               std::invalid_argument);
  EXPECT_THROW(ModuleManager(2, 10.0, 0.5, EstimatorKind::kCoulombCounting, curve, 0.001,
                             nullptr),
               std::invalid_argument);
}

}  // namespace
