// Unit tests for the event-count-automata verification layer: requirement
// monitors, system models, and the product model checker.
#include <gtest/gtest.h>

#include "ev/verification/automaton.h"
#include "ev/verification/model_checker.h"
#include "ev/verification/system_model.h"

namespace {

using namespace ev::verification;

std::vector<Slot> pattern(std::initializer_list<int> bits) {
  std::vector<Slot> p;
  for (int b : bits) p.push_back(b ? Slot::kTransmit : Slot::kDrop);
  return p;
}

// -------------------------------------------------------------- monitors ----

TEST(MaxConsecutiveDrops, AcceptsWithinBound) {
  const MonitorDfa m = MonitorDfa::max_consecutive_drops(2);
  EXPECT_TRUE(m.accepts(pattern({1, 0, 0, 1, 0, 1, 0, 0, 1})));
}

TEST(MaxConsecutiveDrops, RejectsBurst) {
  const MonitorDfa m = MonitorDfa::max_consecutive_drops(2);
  EXPECT_FALSE(m.accepts(pattern({1, 0, 0, 0, 1})));
}

TEST(MaxConsecutiveDrops, ZeroToleranceMeansEverySlot) {
  const MonitorDfa m = MonitorDfa::max_consecutive_drops(0);
  EXPECT_TRUE(m.accepts(pattern({1, 1, 1})));
  EXPECT_FALSE(m.accepts(pattern({1, 0, 1})));
}

TEST(AtLeastMofN, AcceptsDensePattern) {
  const MonitorDfa m = MonitorDfa::at_least_m_of_n(2, 4);
  EXPECT_TRUE(m.accepts(pattern({1, 1, 0, 1, 1, 0, 1, 1})));
}

TEST(AtLeastMofN, RejectsSparseWindow) {
  const MonitorDfa m = MonitorDfa::at_least_m_of_n(3, 4);
  // Window 1,0,0,1 has only two transmissions.
  EXPECT_FALSE(m.accepts(pattern({1, 0, 0, 1})));
}

TEST(AtLeastMofN, StateCountIsExponential) {
  EXPECT_EQ(MonitorDfa::at_least_m_of_n(2, 5).state_count(), (1u << 4) + 1);
  EXPECT_EQ(MonitorDfa::at_least_m_of_n(2, 9).state_count(), (1u << 8) + 1);
}

TEST(AtLeastMofN, BoundsValidated) {
  EXPECT_THROW(MonitorDfa::at_least_m_of_n(5, 4), std::invalid_argument);
  EXPECT_THROW(MonitorDfa::at_least_m_of_n(1, 0), std::invalid_argument);
  EXPECT_THROW(MonitorDfa::at_least_m_of_n(1, 30), std::invalid_argument);
}

TEST(MonitorDfa, ValidatesTrapErrorState) {
  // Error state that is not a trap must be rejected.
  std::vector<std::array<std::size_t, 2>> tr = {{1, 0}, {0, 0}};
  EXPECT_THROW(MonitorDfa(tr, 0, 1, "bad"), std::invalid_argument);
}

TEST(MonitorDfa, DescriptionsHuman) {
  EXPECT_NE(MonitorDfa::at_least_m_of_n(2, 4).description().find("at least 2"),
            std::string::npos);
  EXPECT_NE(MonitorDfa::max_consecutive_drops(3).description().find("3"),
            std::string::npos);
}

// ---------------------------------------------------------- system models ----

TEST(TimeTriggered, EmitsGapPerCycle) {
  const TransmissionSystem s = TransmissionSystem::time_triggered(5, 1);
  EXPECT_EQ(s.state_count(), 5u);
  // Deterministic: one edge per state.
  for (std::size_t k = 0; k < 5; ++k) EXPECT_EQ(s.edges(k).size(), 1u);
}

TEST(Arbitrated, BoundedNondeterminism) {
  const TransmissionSystem s = TransmissionSystem::arbitrated(3);
  EXPECT_EQ(s.state_count(), 4u);
  EXPECT_EQ(s.edges(0).size(), 2u);  // win or lose
  EXPECT_EQ(s.edges(3).size(), 1u);  // forced win at the bound
}

TEST(SystemModel, ValidatesEdges) {
  std::vector<std::vector<NfaEdge>> edges(1);
  EXPECT_THROW(TransmissionSystem(edges, "empty state"), std::invalid_argument);
  edges[0].push_back(NfaEdge{Slot::kTransmit, 7});
  EXPECT_THROW(TransmissionSystem(edges, "bad target"), std::invalid_argument);
}

// -------------------------------------------------------------- checking ----

TEST(Verify, TimeTriggeredMeetsLooseRequirement) {
  // 1 gap slot per 5-cycle: satisfies "at least 3 of any 5".
  const auto sys = TransmissionSystem::time_triggered(5, 1);
  const auto req = MonitorDfa::at_least_m_of_n(3, 5);
  const auto result = verify(sys, req);
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.counterexample.empty());
  EXPECT_GT(result.product_states, 0u);
}

TEST(Verify, TimeTriggeredViolatesTightRequirement) {
  // 2 gap slots per 5-cycle cannot give 4-of-5 everywhere.
  const auto sys = TransmissionSystem::time_triggered(5, 2);
  const auto req = MonitorDfa::at_least_m_of_n(4, 5);
  const auto result = verify(sys, req);
  EXPECT_FALSE(result.verified);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(Verify, ArbitratedWithinDropBudget) {
  // Bursts of at most 2 losses meet "never 3 consecutive drops".
  const auto sys = TransmissionSystem::arbitrated(2);
  const auto req = MonitorDfa::max_consecutive_drops(2);
  EXPECT_TRUE(verify(sys, req).verified);
}

TEST(Verify, ArbitratedExceedsTighterBudget) {
  const auto sys = TransmissionSystem::arbitrated(3);
  const auto req = MonitorDfa::max_consecutive_drops(2);
  const auto result = verify(sys, req);
  EXPECT_FALSE(result.verified);
  // BFS counterexample is minimal: exactly 3 drops.
  EXPECT_EQ(result.counterexample.size(), 3u);
}

TEST(Verify, UnboundedDropsFailEverything) {
  const auto sys = TransmissionSystem::unbounded_drops();
  EXPECT_FALSE(verify(sys, MonitorDfa::max_consecutive_drops(5)).verified);
  EXPECT_FALSE(verify(sys, MonitorDfa::at_least_m_of_n(1, 8)).verified);
}

TEST(Verify, CounterexampleActuallyViolates) {
  const auto sys = TransmissionSystem::arbitrated(4);
  const auto req = MonitorDfa::max_consecutive_drops(2);
  const auto result = verify(sys, req);
  ASSERT_FALSE(result.verified);
  EXPECT_FALSE(req.accepts(result.counterexample));
}

TEST(Verify, ProductStateCountGrowsWithWindow) {
  const auto sys = TransmissionSystem::arbitrated(3);
  const auto small = verify(sys, MonitorDfa::at_least_m_of_n(2, 6));
  const auto large = verify(sys, MonitorDfa::at_least_m_of_n(2, 12));
  // Same verdict machinery, exponentially more product states — the
  // scalability challenge the paper highlights.
  EXPECT_GT(large.product_states + large.transitions_explored,
            4 * (small.product_states + small.transitions_explored));
}

TEST(Verify, DeterministicSystemSmallProduct) {
  const auto sys = TransmissionSystem::time_triggered(10, 1);
  const auto result = verify(sys, MonitorDfa::max_consecutive_drops(1));
  EXPECT_TRUE(result.verified);
  // Deterministic system: product reachable set is linear in the cycle.
  EXPECT_LE(result.product_states, 10u * 3u);
}

}  // namespace
