// Unit tests for the dependency-free scenario description: text round
// trips, parser diagnostics, validation, and the deterministic number
// format every exporter shares.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "ev/config/scenario.h"

namespace {

using namespace ev::config;

ScenarioSpec fully_loaded_spec() {
  ScenarioSpec spec;
  spec.name = "kitchen-sink";
  spec.drive.cycle = CycleKind::kHighway;
  spec.drive.repeat = 3;
  spec.pack.module_count = 6;
  spec.pack.cells_per_module = 10;
  spec.pack.initial_soc = 0.8125;
  spec.pack.soc_spread_sigma = 0.021;
  spec.pack.lfp_chemistry = true;
  spec.bms.balancing = Balancing::kActive;
  spec.bms.initial_soc_estimate = 0.75;
  spec.powertrain.seed = 12345;
  spec.powertrain.aux_power_w = 612.5;
  spec.network.load_scale = 1.5;
  spec.network.can_bit_rate = 250e3;
  spec.network.lin_bit_rate = 9600.0;
  spec.network.flexray_bit_rate = 5e6;
  spec.timing.control_period_s = 0.05;
  spec.timing.bms_publish_period_s = 0.2;
  spec.timing.middleware_frame_us = 10000;
  spec.subsystems.obs = false;
  spec.subsystems.faults = true;
  spec.subsystems.health = true;
  spec.subsystems.security = true;
  spec.fault_seed = 99;
  spec.faults = {
      FaultEventSpec{1.25, FaultKind::kBusDrop, "safety_can", 5.0},
      FaultEventSpec{2.0, FaultKind::kBusCorrupt, "comfort_can", 3.0},
      FaultEventSpec{3.5, FaultKind::kBusOff, "safety_can", 0.02},
      FaultEventSpec{4.0, FaultKind::kBusBabble, "body_lin", 0.5},
      FaultEventSpec{5.0, FaultKind::kPartitionCrash, "information", 0.0},
      FaultEventSpec{6.0, FaultKind::kPartitionHang, "hmi", 4.0},
      FaultEventSpec{7.0, FaultKind::kSensorStuck, "17", 5.5},
      FaultEventSpec{8.0, FaultKind::kBusErrorRate, "safety_can", 312.5},
      FaultEventSpec{9.0, FaultKind::kBusErrorProb, "comfort_can", 0.0225},
  };
  return spec;
}

// ------------------------------------------------------------ round trip ----

TEST(ScenarioText, DefaultSpecRoundTrips) {
  const ScenarioSpec spec;
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
}

TEST(ScenarioText, FullyLoadedSpecRoundTrips) {
  const ScenarioSpec spec = fully_loaded_spec();
  const ScenarioSpec parsed = ScenarioSpec::from_text(spec.to_text());
  EXPECT_EQ(parsed, spec);
  // And the canonical rendering is a fixed point.
  EXPECT_EQ(parsed.to_text(), spec.to_text());
}

TEST(ScenarioText, AwkwardDoublesRoundTrip) {
  ScenarioSpec spec;
  spec.timing.control_period_s = 0.1;               // not exactly representable
  spec.powertrain.aux_power_w = 1.0 / 3.0;          // needs 17 digits
  spec.network.can_bit_rate = 1e-308;               // near-subnormal
  spec.pack.initial_soc = 0.30000000000000004;      // classic 0.1+0.2
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
}

TEST(ScenarioText, MissingKeysKeepDefaults) {
  const ScenarioSpec spec = ScenarioSpec::from_text("scenario.name = tiny\n");
  ScenarioSpec expected;
  expected.name = "tiny";
  EXPECT_EQ(spec, expected);
}

TEST(ScenarioText, CommentsAndBlankLinesIgnored) {
  const ScenarioSpec spec = ScenarioSpec::from_text(
      "# a comment\n\n  \t\nscenario.name = commented\n# trailing\n");
  EXPECT_EQ(spec.name, "commented");
}

TEST(ScenarioFile, SaveLoadRoundTrips) {
  const ScenarioSpec spec = fully_loaded_spec();
  const std::string path = ::testing::TempDir() + "config_test_roundtrip.scn";
  ASSERT_TRUE(save_scenario_file(spec, path));
  EXPECT_EQ(load_scenario_file(path), spec);
  std::remove(path.c_str());
}

TEST(ScenarioFile, MissingFileThrows) {
  EXPECT_THROW((void)load_scenario_file("/nonexistent/nowhere.scn"),
               std::invalid_argument);
}

// ------------------------------------------------------ arch mutations ----

// The synthesizer edits scenarios exclusively through the ArchSpec mutators;
// every mutated spec must survive the text round trip losslessly.
TEST(ScenarioArch, MutatedSpecRoundTripsThroughText) {
  ScenarioSpec spec = fully_loaded_spec();
  spec.arch.set_frame_bus(0x010, "comfort_can");
  spec.arch.set_frame_bus(0x203, "comfort_can");
  spec.arch.set_frame_id(0x300, 0x303);
  spec.arch.set_frame_id(0x303, 0x300);
  spec.arch.set_fr_slot(0x100, 7);
  spec.arch.set_fr_slot(0x107, 0);
  spec.arch.set_partition_windows({{"hmi", 8000}, {"information", 4000}});
  spec.validate();

  const ScenarioSpec parsed = ScenarioSpec::from_text(spec.to_text());
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.to_text(), spec.to_text());
}

TEST(ScenarioArch, MutatorsReplaceAndRemoveEntries) {
  ScenarioSpec spec;
  spec.arch.set_frame_bus(0x010, "comfort_can");
  spec.arch.set_frame_bus(0x010, "safety_can");  // replaces, no duplicate
  ASSERT_EQ(spec.arch.frame_buses.size(), 1u);
  EXPECT_EQ(spec.arch.frame_buses[0].bus, "safety_can");
  spec.arch.clear_frame_bus(0x010);
  EXPECT_TRUE(spec.arch.frame_buses.empty());

  spec.arch.set_frame_id(0x300, 0x310);
  ASSERT_EQ(spec.arch.frame_ids.size(), 1u);
  spec.arch.set_frame_id(0x300, 0x300);  // identity removes the entry
  EXPECT_TRUE(spec.arch.frame_ids.empty());

  spec.arch.set_fr_slot(0x100, 3);
  spec.arch.set_fr_slot(0x100, 5);  // replaces
  ASSERT_EQ(spec.arch.fr_slots.size(), 1u);
  EXPECT_EQ(spec.arch.fr_slots[0].slot, 5u);
  spec.arch.clear_fr_slots();
  EXPECT_TRUE(spec.arch.fr_slots.empty());
  EXPECT_TRUE(spec.arch.empty());
}

TEST(ScenarioArch, MutatorsKeepEntriesSortedForEmission) {
  ScenarioSpec spec;
  spec.arch.set_frame_bus(0x203, "comfort_can");
  spec.arch.set_frame_bus(0x010, "safety_can");
  ASSERT_EQ(spec.arch.frame_buses.size(), 2u);
  EXPECT_LT(spec.arch.frame_buses[0].frame_id, spec.arch.frame_buses[1].frame_id);

  spec.arch.set_frame_id(0x302, 0x011);
  spec.arch.set_frame_id(0x011, 0x302);
  ASSERT_EQ(spec.arch.frame_ids.size(), 2u);
  EXPECT_LT(spec.arch.frame_ids[0].frame_id, spec.arch.frame_ids[1].frame_id);
  spec.validate();  // the swap is a legal permutation
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
}

TEST(ScenarioArch, ValidateRejectsIllFormedOverrides) {
  ScenarioSpec unknown_bus;
  unknown_bus.arch.set_frame_bus(0x010, "hyperloop");
  EXPECT_THROW(unknown_bus.validate(), std::invalid_argument);

  ScenarioSpec duplicate_new_id;
  duplicate_new_id.arch.set_frame_id(0x300, 0x310);
  duplicate_new_id.arch.set_frame_id(0x301, 0x310);  // two frames, one id
  EXPECT_THROW(duplicate_new_id.validate(), std::invalid_argument);

  ScenarioSpec duplicate_slot;
  duplicate_slot.arch.set_fr_slot(0x100, 2);
  duplicate_slot.arch.set_fr_slot(0x101, 2);  // two frames, one slot
  EXPECT_THROW(duplicate_slot.validate(), std::invalid_argument);

  ScenarioSpec bad_partition;
  bad_partition.arch.set_partition_windows({{"hmi", 0}});  // budget < 1
  EXPECT_THROW(bad_partition.validate(), std::invalid_argument);

  ScenarioSpec repeated_partition;
  repeated_partition.arch.set_partition_windows({{"hmi", 100}, {"hmi", 200}});
  EXPECT_THROW(repeated_partition.validate(), std::invalid_argument);
}

TEST(ScenarioArch, ArchLinesParseBackFromText) {
  const ScenarioSpec spec = ScenarioSpec::from_text(
      "scenario.name = archy\n"
      "arch.frame_bus.0 = 0x010 comfort_can\n"
      "arch.frame_id.0 = 0x300 0x310\n"
      "arch.fr_slot.0 = 0x100 4\n"
      "arch.partition.0 = hmi 9000\n");
  ASSERT_EQ(spec.arch.frame_buses.size(), 1u);
  EXPECT_EQ(spec.arch.frame_buses[0].frame_id, 0x010u);
  EXPECT_EQ(spec.arch.frame_buses[0].bus, "comfort_can");
  ASSERT_EQ(spec.arch.frame_ids.size(), 1u);
  EXPECT_EQ(spec.arch.frame_ids[0].new_id, 0x310u);
  ASSERT_EQ(spec.arch.fr_slots.size(), 1u);
  EXPECT_EQ(spec.arch.fr_slots[0].slot, 4u);
  ASSERT_EQ(spec.arch.partitions.size(), 1u);
  EXPECT_EQ(spec.arch.partitions[0].partition, "hmi");
  EXPECT_EQ(spec.arch.partitions[0].budget_us, 9000);
}

// ----------------------------------------------------------------- parser ----

TEST(ScenarioParser, RejectsUnknownKey) {
  EXPECT_THROW((void)ScenarioSpec::from_text("pack.modles = 4\n"),
               std::invalid_argument);
}

TEST(ScenarioParser, RejectsLineWithoutEquals) {
  EXPECT_THROW((void)ScenarioSpec::from_text("just some words\n"),
               std::invalid_argument);
}

TEST(ScenarioParser, RejectsBadEnumValues) {
  EXPECT_THROW((void)ScenarioSpec::from_text("drive.cycle = offroad\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_text("bms.balancing = magic\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_text("subsystems.obs = maybe\n"),
               std::invalid_argument);
}

TEST(ScenarioParser, RejectsNonNumericScalars) {
  EXPECT_THROW((void)ScenarioSpec::from_text("pack.initial_soc = high\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_text("powertrain.seed = -3\n"),
               std::invalid_argument);
}

// Substring assertion helper for parser diagnostics.
void expect_parse_rejects(const std::string& line, const std::string& needle) {
  try {
    (void)ScenarioSpec::from_text(line);
    FAIL() << "accepted: " << line;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "for " << line << " got: " << e.what();
  }
}

TEST(ScenarioParser, RejectsOutOfRangeScalars) {
  // strtod/strtoull saturate on ERANGE (1e999 → inf, 20-digit integers →
  // ULLONG_MAX); the parser must fail typed instead of accepting the clamp.
  expect_parse_rejects("powertrain.aux_power_w = 1e999\n", "out of range");
  expect_parse_rejects("powertrain.aux_power_w = -1e999\n", "out of range");
  expect_parse_rejects("pack.initial_soc = 1e999\n", "out of range");
  // Total underflow to zero is also a silent value change.
  expect_parse_rejects("powertrain.aux_power_w = 1e-999\n", "out of range");
  // u64 overflow (> 2^64 - 1) and i64 overflow (> 2^63 - 1).
  expect_parse_rejects("drive.repeat = 99999999999999999999\n", "out of range");
  expect_parse_rejects("powertrain.seed = 99999999999999999999\n", "out of range");
  expect_parse_rejects("timing.middleware_frame_us = 99999999999999999999\n",
                       "out of range");
  expect_parse_rejects("timing.middleware_frame_us = -99999999999999999999\n",
                       "out of range");
}

TEST(ScenarioParser, RejectsNonFiniteDoubles) {
  // inf/nan would leak through every range check in validate(); to_text can
  // never emit them, so the grammar rejects them outright.
  expect_parse_rejects("powertrain.aux_power_w = inf\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = -inf\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = nan\n", "expects a number");
  expect_parse_rejects("network.load_scale = nan\n", "expects a number");
}

TEST(ScenarioParser, RejectsGrammarBeyondWhatToTextEmits) {
  // format_double never produces a leading '+', hex floats, a bare '.',
  // or embedded whitespace — accepting them would make round trips lossy.
  expect_parse_rejects("powertrain.aux_power_w = +1.5\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = 0x1p3\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = 1.\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = .5\n", "expects a number");
  expect_parse_rejects("powertrain.aux_power_w = 1e\n", "expects a number");
  expect_parse_rejects("drive.repeat = +3\n", "non-negative integer");
  expect_parse_rejects("drive.repeat = 0x10\n", "non-negative integer");
  expect_parse_rejects("drive.repeat = 3.0\n", "non-negative integer");
  expect_parse_rejects("timing.middleware_frame_us = +20000\n", "integer");
  // The exponent form to_text does emit (e.g. 5e+05) still parses.
  ScenarioSpec spec = ScenarioSpec::from_text("network.can_bit_rate = 5e+05\n");
  EXPECT_EQ(spec.network.can_bit_rate, 500e3);
  spec = ScenarioSpec::from_text("network.can_bit_rate = 2.5E5\n");
  EXPECT_EQ(spec.network.can_bit_rate, 250e3);
}

TEST(ScenarioParser, RejectsEmptyValue) {
  expect_parse_rejects("drive.repeat =\n", "empty");
  expect_parse_rejects("= 3\n", "empty");
}

TEST(ScenarioValidate, RejectsNonFiniteFields) {
  // Programmatic specs can hold inf/nan without going through the parser;
  // validate() must close the same hole (NaN passes every `< lo || > hi`
  // range check, +inf passes one-sided lower bounds).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  ScenarioSpec spec;
  spec.pack.initial_soc = nan;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.powertrain.aux_power_w = inf;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.network.load_scale = nan;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.pack.soc_spread_sigma = inf;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.timing.control_period_s = nan;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.faults.push_back({nan, FaultKind::kBusDrop, "safety_can", 2.0});
  spec.subsystems.faults = true;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.faults.push_back({1.0, FaultKind::kBusDrop, "safety_can", nan});
  spec.subsystems.faults = true;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioParser, RejectsDuplicateKeys) {
  // Last-wins would silently accept two contradictory lines; the parser
  // rejects the ambiguity instead, naming the repeated key.
  try {
    (void)ScenarioSpec::from_text(
        "drive.repeat = 2\n"
        "pack.module_count = 4\n"
        "drive.repeat = 3\n");
    FAIL() << "duplicate key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("drive.repeat"), std::string::npos);
  }
  // Repeating the same value is still a duplicate — the format is one line
  // per key by construction (to_text never emits two).
  EXPECT_THROW((void)ScenarioSpec::from_text(
                   "scenario.name = a\n"
                   "scenario.name = a\n"),
               std::invalid_argument);
}

TEST(ScenarioParser, RejectsMalformedFaultLines) {
  // Wrong field count.
  EXPECT_THROW((void)ScenarioSpec::from_text("fault.0 = 2 bus.drop safety_can\n"),
               std::invalid_argument);
  // Unknown kind.
  EXPECT_THROW(
      (void)ScenarioSpec::from_text("fault.0 = 2 bus.melt safety_can 1\n"),
      std::invalid_argument);
  // Numbering must start at 0 and be consecutive.
  EXPECT_THROW((void)ScenarioSpec::from_text("fault.1 = 2 bus.drop safety_can 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::from_text(
                   "fault.0 = 2 bus.drop safety_can 1\n"
                   "fault.2 = 3 bus.drop safety_can 1\n"),
               std::invalid_argument);
}

// ------------------------------------------------------------- validation ----

TEST(ScenarioValidate, ErrorModelFaultsRoundTripAndParse) {
  const ScenarioSpec spec = ScenarioSpec::from_text(
      "fault.0 = 1 bus.error_rate safety_can 250\n"
      "fault.1 = 2.5 bus.error_prob comfort_can 0.03125\n");
  ASSERT_EQ(spec.faults.size(), 2u);
  EXPECT_EQ(spec.faults[0].kind, FaultKind::kBusErrorRate);
  EXPECT_EQ(spec.faults[0].target, "safety_can");
  EXPECT_EQ(spec.faults[0].value, 250.0);
  EXPECT_EQ(spec.faults[1].kind, FaultKind::kBusErrorProb);
  EXPECT_EQ(spec.faults[1].value, 0.03125);
  EXPECT_EQ(ScenarioSpec::from_text(spec.to_text()), spec);
  EXPECT_EQ(to_string(FaultKind::kBusErrorRate), "bus.error_rate");
  EXPECT_EQ(to_string(FaultKind::kBusErrorProb), "bus.error_prob");
}

TEST(ScenarioValidate, RejectsOutOfRangeErrorModelParameters) {
  const auto with_fault = [](FaultKind kind, double value) {
    ScenarioSpec spec;
    spec.faults = {FaultEventSpec{0.0, kind, "safety_can", value}};
    return spec;
  };
  // Negative, infinite, and NaN rates are all typed config errors.
  EXPECT_THROW(with_fault(FaultKind::kBusErrorRate, -1.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(with_fault(FaultKind::kBusErrorRate,
                          std::numeric_limits<double>::infinity())
                   .validate(),
               std::invalid_argument);
  EXPECT_THROW(with_fault(FaultKind::kBusErrorRate,
                          std::numeric_limits<double>::quiet_NaN())
                   .validate(),
               std::invalid_argument);
  // Probabilities live in [0, 1]; NaN fails the range check too.
  EXPECT_THROW(with_fault(FaultKind::kBusErrorProb, -0.1).validate(),
               std::invalid_argument);
  EXPECT_THROW(with_fault(FaultKind::kBusErrorProb, 1.0001).validate(),
               std::invalid_argument);
  EXPECT_THROW(with_fault(FaultKind::kBusErrorProb,
                          std::numeric_limits<double>::quiet_NaN())
                   .validate(),
               std::invalid_argument);
  // The closed boundaries are valid: rate 0 and the probability endpoints.
  EXPECT_NO_THROW(with_fault(FaultKind::kBusErrorRate, 0.0).validate());
  EXPECT_NO_THROW(with_fault(FaultKind::kBusErrorProb, 0.0).validate());
  EXPECT_NO_THROW(with_fault(FaultKind::kBusErrorProb, 1.0).validate());
}

TEST(ScenarioValidate, RejectsBadTiming) {
  ScenarioSpec spec;
  spec.timing.control_period_s = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.timing.bms_publish_period_s = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.timing.middleware_frame_us = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsOutOfRangeSocAndCounts) {
  ScenarioSpec spec;
  spec.pack.initial_soc = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.drive.repeat = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.pack.module_count = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.name = "has a space";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioValidate, RejectsIllFormedFaultEvents) {
  ScenarioSpec spec;
  spec.faults.push_back(FaultEventSpec{-1.0, FaultKind::kBusDrop, "safety_can", 1.0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.faults = {FaultEventSpec{1.0, FaultKind::kBusDrop, "", 1.0}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.faults = {FaultEventSpec{1.0, FaultKind::kBusDrop, "safety_can", 0.0}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.faults = {FaultEventSpec{1.0, FaultKind::kBusOff, "safety_can", 0.0}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  // A well-formed event passes.
  spec.faults = {FaultEventSpec{1.0, FaultKind::kBusOff, "safety_can", 0.01}};
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioValidate, FromTextValidatesResult) {
  EXPECT_THROW((void)ScenarioSpec::from_text("drive.repeat = 0\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------- format_double ----

TEST(FormatDouble, ShortestRoundTrippableForm) {
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-2.5), "-2.5");
  for (const double v : {0.1, 1.0 / 3.0, 3.141592653589793, 1e-308, 450.0,
                         0.30000000000000004, -7.25e9}) {
    EXPECT_EQ(std::strtod(format_double(v).c_str(), nullptr), v);
  }
}

}  // namespace
