# Determinism contract of the fleet charging backend, run under ctest (see
# tests/CMakeLists.txt): the same .fleet scenario through `evsys fleet` must
# render a byte-identical report for any --jobs value — the parallel station
# advance may not leak scheduling order into the serial fold.
# Expects -DEVSYS=<path to the evsys binary> and -DSOURCE_DIR=<repo root>.
if(NOT DEFINED EVSYS OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "pass -DEVSYS=<binary> -DSOURCE_DIR=<repo root>")
endif()

set(scenario "${SOURCE_DIR}/examples/scenarios/depot_fleet.fleet")
set(out_serial "${CMAKE_CURRENT_BINARY_DIR}/fleet_jobs1.json")
set(out_parallel "${CMAKE_CURRENT_BINARY_DIR}/fleet_jobs8.json")

foreach(jobs_out IN ITEMS "1;${out_serial}" "8;${out_parallel}")
  list(GET jobs_out 0 jobs)
  list(GET jobs_out 1 out)
  execute_process(
    COMMAND "${EVSYS}" fleet "${scenario}" --jobs "${jobs}" --out "${out}"
    RESULT_VARIABLE code
    ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "evsys fleet --jobs ${jobs} failed with ${code}")
  endif()
endforeach()

execute_process(COMMAND "${CMAKE_COMMAND}" -E compare_files
                "${out_serial}" "${out_parallel}"
                RESULT_VARIABLE differs)
if(NOT differs EQUAL 0)
  message(FATAL_ERROR
    "fleet report differs between --jobs 1 and --jobs 8 — the station fan "
    "leaks scheduling order into the fold")
endif()
message(STATUS "deterministic: fleet --jobs 1 and --jobs 8 reports byte-identical")
