// Tests for the E25 fuzz harness: generator determinism and validity,
// property-style text round trips over generated ScenarioSpecs and
// FleetSpecs, the single-spec pipeline, the delta-shrinker, and the
// jobs-independence of the campaign report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>

#include "ev/analysis/model.h"
#include "ev/config/fleet.h"
#include "ev/config/scenario.h"
#include "ev/fuzz/fuzz.h"

namespace {

using namespace ev::fuzz;

constexpr int kPropertyCount = 100;
constexpr std::uint64_t kSeed = 42;

// ---- generator ----

TEST(FuzzGenerator, IsDeterministicPerSeedAndIndex) {
  const ScenarioGenerator a(kSeed);
  const ScenarioGenerator b(kSeed);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.scenario(i), b.scenario(i)) << "scenario index " << i;
    EXPECT_EQ(a.fleet(i), b.fleet(i)) << "fleet index " << i;
  }
  // Different seeds diverge, and within a seed the stream is not constant.
  const ScenarioGenerator c(kSeed + 1);
  EXPECT_NE(a.scenario(0), c.scenario(0));
  EXPECT_NE(a.scenario(0), a.scenario(1));
}

TEST(FuzzGenerator, EveryScenarioValidatesAndExtracts) {
  const ScenarioGenerator gen(kSeed);
  for (int i = 0; i < kPropertyCount; ++i) {
    const ev::config::ScenarioSpec spec = gen.scenario(i);
    EXPECT_NO_THROW(spec.validate()) << "scenario index " << i;
    EXPECT_NO_THROW((void)ev::analysis::extract_model(spec))
        << "scenario index " << i;
  }
}

TEST(FuzzGenerator, ScenarioRoundTripsExactly) {
  // The property the tentpole exists to defend: to_text → from_text is the
  // identity on every valid spec, including the weird corners the
  // generator reaches (fault plans, arch overrides, error models).
  const ScenarioGenerator gen(kSeed);
  for (int i = 0; i < kPropertyCount; ++i) {
    const ev::config::ScenarioSpec spec = gen.scenario(i);
    const ev::config::ScenarioSpec back =
        ev::config::ScenarioSpec::from_text(spec.to_text());
    EXPECT_EQ(spec, back) << "scenario index " << i;
  }
}

TEST(FuzzGenerator, FleetRoundTripsExactly) {
  const ScenarioGenerator gen(kSeed);
  for (int i = 0; i < kPropertyCount; ++i) {
    const ev::config::FleetSpec spec = gen.fleet(i);
    EXPECT_NO_THROW(spec.validate()) << "fleet index " << i;
    const ev::config::FleetSpec back =
        ev::config::FleetSpec::from_text(spec.to_text());
    EXPECT_EQ(spec, back) << "fleet index " << i;
  }
}

TEST(FuzzGenerator, StreamCoversTheInterestingFeatures) {
  // A generator that silently stopped producing faults or arch overrides
  // would hollow the campaign out while staying green.
  const ScenarioGenerator gen(kSeed);
  int with_faults = 0;
  int with_error_model = 0;
  int with_arch = 0;
  std::set<std::string> cycles;
  for (int i = 0; i < kPropertyCount; ++i) {
    const ev::config::ScenarioSpec spec = gen.scenario(i);
    if (!spec.faults.empty()) ++with_faults;
    for (const auto& f : spec.faults) {
      if (f.kind == ev::config::FaultKind::kBusErrorRate ||
          f.kind == ev::config::FaultKind::kBusErrorProb)
        ++with_error_model;
    }
    if (!spec.arch.frame_buses.empty() || !spec.arch.frame_ids.empty() ||
        !spec.arch.fr_slots.empty() || !spec.arch.partitions.empty())
      ++with_arch;
    cycles.insert(ev::config::to_string(spec.drive.cycle));
  }
  EXPECT_GT(with_faults, kPropertyCount / 4);
  EXPECT_GT(with_error_model, 0);
  EXPECT_GT(with_arch, kPropertyCount / 4);
  EXPECT_GE(cycles.size(), 2u);
}

// ---- single-spec pipeline ----

TEST(FuzzPipeline, StockSpecSimulatesWithActiveOracles) {
  ev::config::ScenarioSpec spec;
  spec.name = "fuzz-pipeline-smoke";
  spec.subsystems.obs = true;
  const ScenarioOutcome outcome = evaluate_scenario(spec);
  EXPECT_EQ(outcome.verdict, Verdict::kSimulated)
      << to_string(outcome.failure) << ": " << outcome.detail;
  EXPECT_EQ(outcome.failure, FailureKind::kNone);
  EXPECT_EQ(outcome.check_errors, 0u);
  // A clean fault-free run must actually compare E19 bounds, and the
  // digest pins the result JSON.
  EXPECT_GT(outcome.bound_comparisons, 0u);
  EXPECT_EQ(outcome.prob_comparisons, 0u);
  EXPECT_NE(outcome.result_digest, 0u);
}

TEST(FuzzPipeline, ErrorSpecIsRejectedNotSimulated) {
  // An unschedulable bus is a check *error*: the pre-filter must reject it
  // instead of simulating a spec static analysis already condemned.
  ev::config::ScenarioSpec spec;
  spec.name = "fuzz-pipeline-reject";
  spec.network.load_scale = 4.0;
  spec.network.can_bit_rate = 125e3;
  const ScenarioOutcome outcome = evaluate_scenario(spec);
  EXPECT_EQ(outcome.verdict, Verdict::kRejected);
  EXPECT_GT(outcome.check_errors, 0u);
}

// ---- shrinker ----

TEST(FuzzShrinker, MinimizesToThePredicateCore) {
  // Build a deliberately noisy spec, then shrink against a synthetic
  // predicate ("still contains a bus.off fault"). Everything irrelevant
  // to the predicate must fall away.
  const ScenarioGenerator gen(kSeed);
  ev::config::ScenarioSpec spec = gen.scenario(3);
  spec.subsystems.faults = true;
  spec.faults.push_back({5.0, ev::config::FaultKind::kBusOff, "safety_can", 0.1});
  spec.faults.push_back({6.0, ev::config::FaultKind::kBusDrop, "comfort_can", 3.0});
  spec.faults.push_back(
      {7.0, ev::config::FaultKind::kSensorStuck, "0", 3.6});
  spec.drive.repeat = 2;
  spec.subsystems.security = true;
  ASSERT_NO_THROW(spec.validate());

  int evals = 0;
  const auto still_fails = [&](const ev::config::ScenarioSpec& s) {
    ++evals;
    return std::any_of(s.faults.begin(), s.faults.end(), [](const auto& f) {
      return f.kind == ev::config::FaultKind::kBusOff;
    });
  };
  const ev::config::ScenarioSpec small = shrink_spec(spec, still_fails, 200);

  ASSERT_EQ(small.faults.size(), 1u);
  EXPECT_EQ(small.faults[0].kind, ev::config::FaultKind::kBusOff);
  EXPECT_TRUE(small.arch.frame_buses.empty());
  EXPECT_TRUE(small.arch.frame_ids.empty());
  EXPECT_TRUE(small.arch.fr_slots.empty());
  EXPECT_TRUE(small.arch.partitions.empty());
  EXPECT_EQ(small.drive.repeat, 1u);
  EXPECT_FALSE(small.subsystems.security);
  EXPECT_NO_THROW(small.validate());
  EXPECT_GT(evals, 0);
  EXPECT_LE(evals, 200);
}

TEST(FuzzShrinker, ReturnsInputWhenPredicateNeverHolds) {
  ev::config::ScenarioSpec spec;
  spec.name = "shrink-noop";
  const ev::config::ScenarioSpec out =
      shrink_spec(spec, [](const auto&) { return false; }, 10);
  EXPECT_EQ(out, spec);
}

// ---- campaign determinism ----

TEST(FuzzCampaign, ReportIsIndependentOfJobs) {
  FuzzOptions options;
  options.seed = 7;
  options.count = 4;
  options.shrink = false;
  options.jobs = 1;
  const FuzzResult serial = run_fuzz(options);
  options.jobs = 4;
  const FuzzResult parallel = run_fuzz(options);
  EXPECT_EQ(fuzz_json(serial), fuzz_json(parallel));
  EXPECT_EQ(serial.failures(), 0u);
  EXPECT_EQ(static_cast<int>(serial.scenarios.size()), options.count);
  EXPECT_GT(serial.fleets_generated, 0);
}

}  // namespace
