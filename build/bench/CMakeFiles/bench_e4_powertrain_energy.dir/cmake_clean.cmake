file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_powertrain_energy.dir/bench_e4_powertrain_energy.cpp.o"
  "CMakeFiles/bench_e4_powertrain_energy.dir/bench_e4_powertrain_energy.cpp.o.d"
  "bench_e4_powertrain_energy"
  "bench_e4_powertrain_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_powertrain_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
