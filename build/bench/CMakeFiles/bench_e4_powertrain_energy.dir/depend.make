# Empty dependencies file for bench_e4_powertrain_energy.
# This may be replaced when dependencies are built.
