# Empty dependencies file for bench_e8_consolidation.
# This may be replaced when dependencies are built.
