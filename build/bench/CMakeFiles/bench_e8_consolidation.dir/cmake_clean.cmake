file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_consolidation.dir/bench_e8_consolidation.cpp.o"
  "CMakeFiles/bench_e8_consolidation.dir/bench_e8_consolidation.cpp.o.d"
  "bench_e8_consolidation"
  "bench_e8_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
