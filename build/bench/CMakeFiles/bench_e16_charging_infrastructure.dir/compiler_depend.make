# Empty compiler generated dependencies file for bench_e16_charging_infrastructure.
# This may be replaced when dependencies are built.
