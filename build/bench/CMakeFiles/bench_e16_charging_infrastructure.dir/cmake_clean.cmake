file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_charging_infrastructure.dir/bench_e16_charging_infrastructure.cpp.o"
  "CMakeFiles/bench_e16_charging_infrastructure.dir/bench_e16_charging_infrastructure.cpp.o.d"
  "bench_e16_charging_infrastructure"
  "bench_e16_charging_infrastructure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_charging_infrastructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
