# Empty dependencies file for bench_e7_protocol_bandwidth.
# This may be replaced when dependencies are built.
