file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_protocol_bandwidth.dir/bench_e7_protocol_bandwidth.cpp.o"
  "CMakeFiles/bench_e7_protocol_bandwidth.dir/bench_e7_protocol_bandwidth.cpp.o.d"
  "bench_e7_protocol_bandwidth"
  "bench_e7_protocol_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_protocol_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
