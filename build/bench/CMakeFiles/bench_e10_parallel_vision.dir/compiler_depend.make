# Empty compiler generated dependencies file for bench_e10_parallel_vision.
# This may be replaced when dependencies are built.
