file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_parallel_vision.dir/bench_e10_parallel_vision.cpp.o"
  "CMakeFiles/bench_e10_parallel_vision.dir/bench_e10_parallel_vision.cpp.o.d"
  "bench_e10_parallel_vision"
  "bench_e10_parallel_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_parallel_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
