# Empty dependencies file for bench_e1_network_architecture.
# This may be replaced when dependencies are built.
