file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_tt_vs_et.dir/bench_e5_tt_vs_et.cpp.o"
  "CMakeFiles/bench_e5_tt_vs_et.dir/bench_e5_tt_vs_et.cpp.o.d"
  "bench_e5_tt_vs_et"
  "bench_e5_tt_vs_et.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_tt_vs_et.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
