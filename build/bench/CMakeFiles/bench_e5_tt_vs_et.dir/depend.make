# Empty dependencies file for bench_e5_tt_vs_et.
# This may be replaced when dependencies are built.
