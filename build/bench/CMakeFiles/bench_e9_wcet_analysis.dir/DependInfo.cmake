
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e9_wcet_analysis.cpp" "bench/CMakeFiles/bench_e9_wcet_analysis.dir/bench_e9_wcet_analysis.cpp.o" "gcc" "bench/CMakeFiles/bench_e9_wcet_analysis.dir/bench_e9_wcet_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/ev_network.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduling/CMakeFiles/ev_scheduling.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/ev_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/verification/CMakeFiles/ev_verification.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ev_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/ev_security.dir/DependInfo.cmake"
  "/root/repo/build/src/ecu/CMakeFiles/ev_ecu.dir/DependInfo.cmake"
  "/root/repo/build/src/powertrain/CMakeFiles/ev_powertrain.dir/DependInfo.cmake"
  "/root/repo/build/src/bms/CMakeFiles/ev_bms.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/ev_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/motor/CMakeFiles/ev_motor.dir/DependInfo.cmake"
  "/root/repo/build/src/bywire/CMakeFiles/ev_bywire.dir/DependInfo.cmake"
  "/root/repo/build/src/infra/CMakeFiles/ev_infra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
