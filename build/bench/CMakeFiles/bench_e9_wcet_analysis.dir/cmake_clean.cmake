file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_wcet_analysis.dir/bench_e9_wcet_analysis.cpp.o"
  "CMakeFiles/bench_e9_wcet_analysis.dir/bench_e9_wcet_analysis.cpp.o.d"
  "bench_e9_wcet_analysis"
  "bench_e9_wcet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_wcet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
