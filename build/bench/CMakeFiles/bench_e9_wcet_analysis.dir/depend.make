# Empty dependencies file for bench_e9_wcet_analysis.
# This may be replaced when dependencies are built.
