# Empty dependencies file for bench_e2_cell_balancing.
# This may be replaced when dependencies are built.
