file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_cell_balancing.dir/bench_e2_cell_balancing.cpp.o"
  "CMakeFiles/bench_e2_cell_balancing.dir/bench_e2_cell_balancing.cpp.o.d"
  "bench_e2_cell_balancing"
  "bench_e2_cell_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_cell_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
