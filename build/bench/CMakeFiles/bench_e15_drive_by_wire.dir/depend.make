# Empty dependencies file for bench_e15_drive_by_wire.
# This may be replaced when dependencies are built.
