file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_drive_by_wire.dir/bench_e15_drive_by_wire.cpp.o"
  "CMakeFiles/bench_e15_drive_by_wire.dir/bench_e15_drive_by_wire.cpp.o.d"
  "bench_e15_drive_by_wire"
  "bench_e15_drive_by_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_drive_by_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
