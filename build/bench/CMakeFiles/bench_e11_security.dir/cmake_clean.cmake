file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_security.dir/bench_e11_security.cpp.o"
  "CMakeFiles/bench_e11_security.dir/bench_e11_security.cpp.o.d"
  "bench_e11_security"
  "bench_e11_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
