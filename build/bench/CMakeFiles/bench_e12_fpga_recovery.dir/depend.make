# Empty dependencies file for bench_e12_fpga_recovery.
# This may be replaced when dependencies are built.
