# Empty compiler generated dependencies file for bench_e3_motor_control.
# This may be replaced when dependencies are built.
