# Empty dependencies file for bench_e6_schedule_integration.
# This may be replaced when dependencies are built.
