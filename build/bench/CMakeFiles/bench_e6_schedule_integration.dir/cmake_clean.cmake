file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_schedule_integration.dir/bench_e6_schedule_integration.cpp.o"
  "CMakeFiles/bench_e6_schedule_integration.dir/bench_e6_schedule_integration.cpp.o.d"
  "bench_e6_schedule_integration"
  "bench_e6_schedule_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_schedule_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
