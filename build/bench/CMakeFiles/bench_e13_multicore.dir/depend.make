# Empty dependencies file for bench_e13_multicore.
# This may be replaced when dependencies are built.
