file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_multicore.dir/bench_e13_multicore.cpp.o"
  "CMakeFiles/bench_e13_multicore.dir/bench_e13_multicore.cpp.o.d"
  "bench_e13_multicore"
  "bench_e13_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
