# Empty compiler generated dependencies file for fault_tolerant_motor.
# This may be replaced when dependencies are built.
