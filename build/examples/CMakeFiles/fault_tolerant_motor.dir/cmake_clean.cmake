file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_motor.dir/fault_tolerant_motor.cpp.o"
  "CMakeFiles/fault_tolerant_motor.dir/fault_tolerant_motor.cpp.o.d"
  "fault_tolerant_motor"
  "fault_tolerant_motor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_motor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
