file(REMOVE_RECURSE
  "CMakeFiles/network_architect.dir/network_architect.cpp.o"
  "CMakeFiles/network_architect.dir/network_architect.cpp.o.d"
  "network_architect"
  "network_architect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_architect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
