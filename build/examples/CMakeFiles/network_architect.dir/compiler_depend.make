# Empty compiler generated dependencies file for network_architect.
# This may be replaced when dependencies are built.
