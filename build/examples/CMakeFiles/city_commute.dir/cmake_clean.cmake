file(REMOVE_RECURSE
  "CMakeFiles/city_commute.dir/city_commute.cpp.o"
  "CMakeFiles/city_commute.dir/city_commute.cpp.o.d"
  "city_commute"
  "city_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
