# Empty compiler generated dependencies file for city_commute.
# This may be replaced when dependencies are built.
