# Empty compiler generated dependencies file for secure_charging.
# This may be replaced when dependencies are built.
