file(REMOVE_RECURSE
  "CMakeFiles/secure_charging.dir/secure_charging.cpp.o"
  "CMakeFiles/secure_charging.dir/secure_charging.cpp.o.d"
  "secure_charging"
  "secure_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
