file(REMOVE_RECURSE
  "CMakeFiles/bms_test.dir/bms_test.cpp.o"
  "CMakeFiles/bms_test.dir/bms_test.cpp.o.d"
  "bms_test"
  "bms_test.pdb"
  "bms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
