# Empty dependencies file for bms_test.
# This may be replaced when dependencies are built.
