# Empty dependencies file for bywire_test.
# This may be replaced when dependencies are built.
