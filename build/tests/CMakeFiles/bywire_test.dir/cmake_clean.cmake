file(REMOVE_RECURSE
  "CMakeFiles/bywire_test.dir/bywire_test.cpp.o"
  "CMakeFiles/bywire_test.dir/bywire_test.cpp.o.d"
  "bywire_test"
  "bywire_test.pdb"
  "bywire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bywire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
