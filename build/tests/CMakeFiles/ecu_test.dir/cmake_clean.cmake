file(REMOVE_RECURSE
  "CMakeFiles/ecu_test.dir/ecu_test.cpp.o"
  "CMakeFiles/ecu_test.dir/ecu_test.cpp.o.d"
  "ecu_test"
  "ecu_test.pdb"
  "ecu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
