file(REMOVE_RECURSE
  "CMakeFiles/powertrain_test.dir/powertrain_test.cpp.o"
  "CMakeFiles/powertrain_test.dir/powertrain_test.cpp.o.d"
  "powertrain_test"
  "powertrain_test.pdb"
  "powertrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powertrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
