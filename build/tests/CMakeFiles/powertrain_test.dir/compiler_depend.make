# Empty compiler generated dependencies file for powertrain_test.
# This may be replaced when dependencies are built.
