file(REMOVE_RECURSE
  "CMakeFiles/motor_test.dir/motor_test.cpp.o"
  "CMakeFiles/motor_test.dir/motor_test.cpp.o.d"
  "motor_test"
  "motor_test.pdb"
  "motor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
