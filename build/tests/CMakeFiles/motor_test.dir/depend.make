# Empty dependencies file for motor_test.
# This may be replaced when dependencies are built.
