file(REMOVE_RECURSE
  "CMakeFiles/verification_test.dir/verification_test.cpp.o"
  "CMakeFiles/verification_test.dir/verification_test.cpp.o.d"
  "verification_test"
  "verification_test.pdb"
  "verification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
