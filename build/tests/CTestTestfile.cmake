# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/battery_test[1]_include.cmake")
include("/root/repo/build/tests/bms_test[1]_include.cmake")
include("/root/repo/build/tests/motor_test[1]_include.cmake")
include("/root/repo/build/tests/powertrain_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/scheduling_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/verification_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/ecu_test[1]_include.cmake")
include("/root/repo/build/tests/bywire_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
