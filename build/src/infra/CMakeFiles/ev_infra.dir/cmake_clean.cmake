file(REMOVE_RECURSE
  "CMakeFiles/ev_infra.dir/src/charging_network.cpp.o"
  "CMakeFiles/ev_infra.dir/src/charging_network.cpp.o.d"
  "libev_infra.a"
  "libev_infra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_infra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
