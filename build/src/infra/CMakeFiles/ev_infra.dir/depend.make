# Empty dependencies file for ev_infra.
# This may be replaced when dependencies are built.
