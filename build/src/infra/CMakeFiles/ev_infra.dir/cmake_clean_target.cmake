file(REMOVE_RECURSE
  "libev_infra.a"
)
