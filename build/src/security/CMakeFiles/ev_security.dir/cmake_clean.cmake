file(REMOVE_RECURSE
  "CMakeFiles/ev_security.dir/src/chacha20.cpp.o"
  "CMakeFiles/ev_security.dir/src/chacha20.cpp.o.d"
  "CMakeFiles/ev_security.dir/src/charging.cpp.o"
  "CMakeFiles/ev_security.dir/src/charging.cpp.o.d"
  "CMakeFiles/ev_security.dir/src/hmac.cpp.o"
  "CMakeFiles/ev_security.dir/src/hmac.cpp.o.d"
  "CMakeFiles/ev_security.dir/src/secure_channel.cpp.o"
  "CMakeFiles/ev_security.dir/src/secure_channel.cpp.o.d"
  "CMakeFiles/ev_security.dir/src/sha256.cpp.o"
  "CMakeFiles/ev_security.dir/src/sha256.cpp.o.d"
  "libev_security.a"
  "libev_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
