
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/src/chacha20.cpp" "src/security/CMakeFiles/ev_security.dir/src/chacha20.cpp.o" "gcc" "src/security/CMakeFiles/ev_security.dir/src/chacha20.cpp.o.d"
  "/root/repo/src/security/src/charging.cpp" "src/security/CMakeFiles/ev_security.dir/src/charging.cpp.o" "gcc" "src/security/CMakeFiles/ev_security.dir/src/charging.cpp.o.d"
  "/root/repo/src/security/src/hmac.cpp" "src/security/CMakeFiles/ev_security.dir/src/hmac.cpp.o" "gcc" "src/security/CMakeFiles/ev_security.dir/src/hmac.cpp.o.d"
  "/root/repo/src/security/src/secure_channel.cpp" "src/security/CMakeFiles/ev_security.dir/src/secure_channel.cpp.o" "gcc" "src/security/CMakeFiles/ev_security.dir/src/secure_channel.cpp.o.d"
  "/root/repo/src/security/src/sha256.cpp" "src/security/CMakeFiles/ev_security.dir/src/sha256.cpp.o" "gcc" "src/security/CMakeFiles/ev_security.dir/src/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
