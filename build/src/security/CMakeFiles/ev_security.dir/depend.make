# Empty dependencies file for ev_security.
# This may be replaced when dependencies are built.
