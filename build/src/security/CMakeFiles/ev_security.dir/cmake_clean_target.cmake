file(REMOVE_RECURSE
  "libev_security.a"
)
