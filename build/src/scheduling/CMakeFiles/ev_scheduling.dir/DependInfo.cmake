
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduling/src/integration.cpp" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/integration.cpp.o" "gcc" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/integration.cpp.o.d"
  "/root/repo/src/scheduling/src/response_time.cpp" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/response_time.cpp.o" "gcc" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/response_time.cpp.o.d"
  "/root/repo/src/scheduling/src/synthesis.cpp" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/synthesis.cpp.o" "gcc" "src/scheduling/CMakeFiles/ev_scheduling.dir/src/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
