# Empty compiler generated dependencies file for ev_scheduling.
# This may be replaced when dependencies are built.
