file(REMOVE_RECURSE
  "libev_scheduling.a"
)
