file(REMOVE_RECURSE
  "CMakeFiles/ev_scheduling.dir/src/integration.cpp.o"
  "CMakeFiles/ev_scheduling.dir/src/integration.cpp.o.d"
  "CMakeFiles/ev_scheduling.dir/src/response_time.cpp.o"
  "CMakeFiles/ev_scheduling.dir/src/response_time.cpp.o.d"
  "CMakeFiles/ev_scheduling.dir/src/synthesis.cpp.o"
  "CMakeFiles/ev_scheduling.dir/src/synthesis.cpp.o.d"
  "libev_scheduling.a"
  "libev_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
