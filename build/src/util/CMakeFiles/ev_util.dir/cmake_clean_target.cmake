file(REMOVE_RECURSE
  "libev_util.a"
)
