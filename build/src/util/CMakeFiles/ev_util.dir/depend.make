# Empty dependencies file for ev_util.
# This may be replaced when dependencies are built.
