file(REMOVE_RECURSE
  "CMakeFiles/ev_util.dir/src/crc.cpp.o"
  "CMakeFiles/ev_util.dir/src/crc.cpp.o.d"
  "CMakeFiles/ev_util.dir/src/logging.cpp.o"
  "CMakeFiles/ev_util.dir/src/logging.cpp.o.d"
  "CMakeFiles/ev_util.dir/src/stats.cpp.o"
  "CMakeFiles/ev_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/ev_util.dir/src/table.cpp.o"
  "CMakeFiles/ev_util.dir/src/table.cpp.o.d"
  "libev_util.a"
  "libev_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
