file(REMOVE_RECURSE
  "CMakeFiles/ev_timing.dir/src/abstract_cache.cpp.o"
  "CMakeFiles/ev_timing.dir/src/abstract_cache.cpp.o.d"
  "CMakeFiles/ev_timing.dir/src/cache.cpp.o"
  "CMakeFiles/ev_timing.dir/src/cache.cpp.o.d"
  "CMakeFiles/ev_timing.dir/src/collecting.cpp.o"
  "CMakeFiles/ev_timing.dir/src/collecting.cpp.o.d"
  "CMakeFiles/ev_timing.dir/src/program.cpp.o"
  "CMakeFiles/ev_timing.dir/src/program.cpp.o.d"
  "CMakeFiles/ev_timing.dir/src/spm.cpp.o"
  "CMakeFiles/ev_timing.dir/src/spm.cpp.o.d"
  "CMakeFiles/ev_timing.dir/src/wcet.cpp.o"
  "CMakeFiles/ev_timing.dir/src/wcet.cpp.o.d"
  "libev_timing.a"
  "libev_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
