file(REMOVE_RECURSE
  "libev_timing.a"
)
