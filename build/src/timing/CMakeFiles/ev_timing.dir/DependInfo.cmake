
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/src/abstract_cache.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/abstract_cache.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/abstract_cache.cpp.o.d"
  "/root/repo/src/timing/src/cache.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/cache.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/cache.cpp.o.d"
  "/root/repo/src/timing/src/collecting.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/collecting.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/collecting.cpp.o.d"
  "/root/repo/src/timing/src/program.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/program.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/program.cpp.o.d"
  "/root/repo/src/timing/src/spm.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/spm.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/spm.cpp.o.d"
  "/root/repo/src/timing/src/wcet.cpp" "src/timing/CMakeFiles/ev_timing.dir/src/wcet.cpp.o" "gcc" "src/timing/CMakeFiles/ev_timing.dir/src/wcet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
