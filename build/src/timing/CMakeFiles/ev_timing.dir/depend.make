# Empty dependencies file for ev_timing.
# This may be replaced when dependencies are built.
