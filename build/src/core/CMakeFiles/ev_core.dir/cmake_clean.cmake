file(REMOVE_RECURSE
  "CMakeFiles/ev_core.dir/src/architecture.cpp.o"
  "CMakeFiles/ev_core.dir/src/architecture.cpp.o.d"
  "CMakeFiles/ev_core.dir/src/cosim.cpp.o"
  "CMakeFiles/ev_core.dir/src/cosim.cpp.o.d"
  "CMakeFiles/ev_core.dir/src/evaluation.cpp.o"
  "CMakeFiles/ev_core.dir/src/evaluation.cpp.o.d"
  "CMakeFiles/ev_core.dir/src/synthesis.cpp.o"
  "CMakeFiles/ev_core.dir/src/synthesis.cpp.o.d"
  "libev_core.a"
  "libev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
