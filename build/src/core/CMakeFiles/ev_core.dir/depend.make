# Empty dependencies file for ev_core.
# This may be replaced when dependencies are built.
