file(REMOVE_RECURSE
  "libev_core.a"
)
