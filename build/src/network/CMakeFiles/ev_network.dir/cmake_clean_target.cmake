file(REMOVE_RECURSE
  "libev_network.a"
)
