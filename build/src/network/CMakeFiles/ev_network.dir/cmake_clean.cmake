file(REMOVE_RECURSE
  "CMakeFiles/ev_network.dir/src/bus.cpp.o"
  "CMakeFiles/ev_network.dir/src/bus.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/can.cpp.o"
  "CMakeFiles/ev_network.dir/src/can.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/ethernet.cpp.o"
  "CMakeFiles/ev_network.dir/src/ethernet.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/flexray.cpp.o"
  "CMakeFiles/ev_network.dir/src/flexray.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/gateway.cpp.o"
  "CMakeFiles/ev_network.dir/src/gateway.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/lin.cpp.o"
  "CMakeFiles/ev_network.dir/src/lin.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/most.cpp.o"
  "CMakeFiles/ev_network.dir/src/most.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/ptp.cpp.o"
  "CMakeFiles/ev_network.dir/src/ptp.cpp.o.d"
  "CMakeFiles/ev_network.dir/src/topology.cpp.o"
  "CMakeFiles/ev_network.dir/src/topology.cpp.o.d"
  "libev_network.a"
  "libev_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
