
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/src/bus.cpp" "src/network/CMakeFiles/ev_network.dir/src/bus.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/bus.cpp.o.d"
  "/root/repo/src/network/src/can.cpp" "src/network/CMakeFiles/ev_network.dir/src/can.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/can.cpp.o.d"
  "/root/repo/src/network/src/ethernet.cpp" "src/network/CMakeFiles/ev_network.dir/src/ethernet.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/ethernet.cpp.o.d"
  "/root/repo/src/network/src/flexray.cpp" "src/network/CMakeFiles/ev_network.dir/src/flexray.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/flexray.cpp.o.d"
  "/root/repo/src/network/src/gateway.cpp" "src/network/CMakeFiles/ev_network.dir/src/gateway.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/gateway.cpp.o.d"
  "/root/repo/src/network/src/lin.cpp" "src/network/CMakeFiles/ev_network.dir/src/lin.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/lin.cpp.o.d"
  "/root/repo/src/network/src/most.cpp" "src/network/CMakeFiles/ev_network.dir/src/most.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/most.cpp.o.d"
  "/root/repo/src/network/src/ptp.cpp" "src/network/CMakeFiles/ev_network.dir/src/ptp.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/ptp.cpp.o.d"
  "/root/repo/src/network/src/topology.cpp" "src/network/CMakeFiles/ev_network.dir/src/topology.cpp.o" "gcc" "src/network/CMakeFiles/ev_network.dir/src/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
