# Empty compiler generated dependencies file for ev_network.
# This may be replaced when dependencies are built.
