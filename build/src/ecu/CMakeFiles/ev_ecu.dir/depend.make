# Empty dependencies file for ev_ecu.
# This may be replaced when dependencies are built.
