
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecu/src/fpga.cpp" "src/ecu/CMakeFiles/ev_ecu.dir/src/fpga.cpp.o" "gcc" "src/ecu/CMakeFiles/ev_ecu.dir/src/fpga.cpp.o.d"
  "/root/repo/src/ecu/src/multicore.cpp" "src/ecu/CMakeFiles/ev_ecu.dir/src/multicore.cpp.o" "gcc" "src/ecu/CMakeFiles/ev_ecu.dir/src/multicore.cpp.o.d"
  "/root/repo/src/ecu/src/vision.cpp" "src/ecu/CMakeFiles/ev_ecu.dir/src/vision.cpp.o" "gcc" "src/ecu/CMakeFiles/ev_ecu.dir/src/vision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduling/CMakeFiles/ev_scheduling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
