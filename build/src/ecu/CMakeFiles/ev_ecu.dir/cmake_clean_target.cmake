file(REMOVE_RECURSE
  "libev_ecu.a"
)
