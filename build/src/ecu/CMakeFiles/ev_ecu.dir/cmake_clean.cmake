file(REMOVE_RECURSE
  "CMakeFiles/ev_ecu.dir/src/fpga.cpp.o"
  "CMakeFiles/ev_ecu.dir/src/fpga.cpp.o.d"
  "CMakeFiles/ev_ecu.dir/src/multicore.cpp.o"
  "CMakeFiles/ev_ecu.dir/src/multicore.cpp.o.d"
  "CMakeFiles/ev_ecu.dir/src/vision.cpp.o"
  "CMakeFiles/ev_ecu.dir/src/vision.cpp.o.d"
  "libev_ecu.a"
  "libev_ecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_ecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
