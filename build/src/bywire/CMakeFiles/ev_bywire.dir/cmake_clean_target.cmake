file(REMOVE_RECURSE
  "libev_bywire.a"
)
