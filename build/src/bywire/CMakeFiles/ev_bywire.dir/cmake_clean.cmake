file(REMOVE_RECURSE
  "CMakeFiles/ev_bywire.dir/src/brake_system.cpp.o"
  "CMakeFiles/ev_bywire.dir/src/brake_system.cpp.o.d"
  "CMakeFiles/ev_bywire.dir/src/redundancy.cpp.o"
  "CMakeFiles/ev_bywire.dir/src/redundancy.cpp.o.d"
  "libev_bywire.a"
  "libev_bywire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_bywire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
