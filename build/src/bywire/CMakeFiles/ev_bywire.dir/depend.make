# Empty dependencies file for ev_bywire.
# This may be replaced when dependencies are built.
