
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bywire/src/brake_system.cpp" "src/bywire/CMakeFiles/ev_bywire.dir/src/brake_system.cpp.o" "gcc" "src/bywire/CMakeFiles/ev_bywire.dir/src/brake_system.cpp.o.d"
  "/root/repo/src/bywire/src/redundancy.cpp" "src/bywire/CMakeFiles/ev_bywire.dir/src/redundancy.cpp.o" "gcc" "src/bywire/CMakeFiles/ev_bywire.dir/src/redundancy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
