file(REMOVE_RECURSE
  "libev_powertrain.a"
)
