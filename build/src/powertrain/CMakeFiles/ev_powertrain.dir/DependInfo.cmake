
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/powertrain/src/dcdc.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/dcdc.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/dcdc.cpp.o.d"
  "/root/repo/src/powertrain/src/drive_cycle.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/drive_cycle.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/drive_cycle.cpp.o.d"
  "/root/repo/src/powertrain/src/driver.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/driver.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/driver.cpp.o.d"
  "/root/repo/src/powertrain/src/motor_map.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/motor_map.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/motor_map.cpp.o.d"
  "/root/repo/src/powertrain/src/range.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/range.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/range.cpp.o.d"
  "/root/repo/src/powertrain/src/regen.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/regen.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/regen.cpp.o.d"
  "/root/repo/src/powertrain/src/simulation.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/simulation.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/simulation.cpp.o.d"
  "/root/repo/src/powertrain/src/vehicle.cpp" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/vehicle.cpp.o" "gcc" "src/powertrain/CMakeFiles/ev_powertrain.dir/src/vehicle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/battery/CMakeFiles/ev_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/bms/CMakeFiles/ev_bms.dir/DependInfo.cmake"
  "/root/repo/build/src/motor/CMakeFiles/ev_motor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
