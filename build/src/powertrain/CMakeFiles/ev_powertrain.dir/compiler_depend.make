# Empty compiler generated dependencies file for ev_powertrain.
# This may be replaced when dependencies are built.
