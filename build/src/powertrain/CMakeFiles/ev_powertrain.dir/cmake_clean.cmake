file(REMOVE_RECURSE
  "CMakeFiles/ev_powertrain.dir/src/dcdc.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/dcdc.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/drive_cycle.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/drive_cycle.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/driver.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/driver.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/motor_map.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/motor_map.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/range.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/range.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/regen.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/regen.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/simulation.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/simulation.cpp.o.d"
  "CMakeFiles/ev_powertrain.dir/src/vehicle.cpp.o"
  "CMakeFiles/ev_powertrain.dir/src/vehicle.cpp.o.d"
  "libev_powertrain.a"
  "libev_powertrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_powertrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
