file(REMOVE_RECURSE
  "CMakeFiles/ev_verification.dir/src/automaton.cpp.o"
  "CMakeFiles/ev_verification.dir/src/automaton.cpp.o.d"
  "CMakeFiles/ev_verification.dir/src/model_checker.cpp.o"
  "CMakeFiles/ev_verification.dir/src/model_checker.cpp.o.d"
  "CMakeFiles/ev_verification.dir/src/system_model.cpp.o"
  "CMakeFiles/ev_verification.dir/src/system_model.cpp.o.d"
  "libev_verification.a"
  "libev_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
