# Empty compiler generated dependencies file for ev_verification.
# This may be replaced when dependencies are built.
