
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verification/src/automaton.cpp" "src/verification/CMakeFiles/ev_verification.dir/src/automaton.cpp.o" "gcc" "src/verification/CMakeFiles/ev_verification.dir/src/automaton.cpp.o.d"
  "/root/repo/src/verification/src/model_checker.cpp" "src/verification/CMakeFiles/ev_verification.dir/src/model_checker.cpp.o" "gcc" "src/verification/CMakeFiles/ev_verification.dir/src/model_checker.cpp.o.d"
  "/root/repo/src/verification/src/system_model.cpp" "src/verification/CMakeFiles/ev_verification.dir/src/system_model.cpp.o" "gcc" "src/verification/CMakeFiles/ev_verification.dir/src/system_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
