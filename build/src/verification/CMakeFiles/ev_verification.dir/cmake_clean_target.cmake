file(REMOVE_RECURSE
  "libev_verification.a"
)
