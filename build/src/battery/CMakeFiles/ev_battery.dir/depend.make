# Empty dependencies file for ev_battery.
# This may be replaced when dependencies are built.
