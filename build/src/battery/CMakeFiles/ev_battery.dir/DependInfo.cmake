
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/src/cell.cpp" "src/battery/CMakeFiles/ev_battery.dir/src/cell.cpp.o" "gcc" "src/battery/CMakeFiles/ev_battery.dir/src/cell.cpp.o.d"
  "/root/repo/src/battery/src/module.cpp" "src/battery/CMakeFiles/ev_battery.dir/src/module.cpp.o" "gcc" "src/battery/CMakeFiles/ev_battery.dir/src/module.cpp.o.d"
  "/root/repo/src/battery/src/ocv_curve.cpp" "src/battery/CMakeFiles/ev_battery.dir/src/ocv_curve.cpp.o" "gcc" "src/battery/CMakeFiles/ev_battery.dir/src/ocv_curve.cpp.o.d"
  "/root/repo/src/battery/src/pack.cpp" "src/battery/CMakeFiles/ev_battery.dir/src/pack.cpp.o" "gcc" "src/battery/CMakeFiles/ev_battery.dir/src/pack.cpp.o.d"
  "/root/repo/src/battery/src/sensors.cpp" "src/battery/CMakeFiles/ev_battery.dir/src/sensors.cpp.o" "gcc" "src/battery/CMakeFiles/ev_battery.dir/src/sensors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
