file(REMOVE_RECURSE
  "libev_battery.a"
)
