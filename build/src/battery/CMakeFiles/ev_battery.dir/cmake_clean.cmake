file(REMOVE_RECURSE
  "CMakeFiles/ev_battery.dir/src/cell.cpp.o"
  "CMakeFiles/ev_battery.dir/src/cell.cpp.o.d"
  "CMakeFiles/ev_battery.dir/src/module.cpp.o"
  "CMakeFiles/ev_battery.dir/src/module.cpp.o.d"
  "CMakeFiles/ev_battery.dir/src/ocv_curve.cpp.o"
  "CMakeFiles/ev_battery.dir/src/ocv_curve.cpp.o.d"
  "CMakeFiles/ev_battery.dir/src/pack.cpp.o"
  "CMakeFiles/ev_battery.dir/src/pack.cpp.o.d"
  "CMakeFiles/ev_battery.dir/src/sensors.cpp.o"
  "CMakeFiles/ev_battery.dir/src/sensors.cpp.o.d"
  "libev_battery.a"
  "libev_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
