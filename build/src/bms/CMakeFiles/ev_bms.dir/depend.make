# Empty dependencies file for ev_bms.
# This may be replaced when dependencies are built.
