file(REMOVE_RECURSE
  "CMakeFiles/ev_bms.dir/src/balancing.cpp.o"
  "CMakeFiles/ev_bms.dir/src/balancing.cpp.o.d"
  "CMakeFiles/ev_bms.dir/src/battery_manager.cpp.o"
  "CMakeFiles/ev_bms.dir/src/battery_manager.cpp.o.d"
  "CMakeFiles/ev_bms.dir/src/module_manager.cpp.o"
  "CMakeFiles/ev_bms.dir/src/module_manager.cpp.o.d"
  "CMakeFiles/ev_bms.dir/src/safety.cpp.o"
  "CMakeFiles/ev_bms.dir/src/safety.cpp.o.d"
  "CMakeFiles/ev_bms.dir/src/soc_estimator.cpp.o"
  "CMakeFiles/ev_bms.dir/src/soc_estimator.cpp.o.d"
  "libev_bms.a"
  "libev_bms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_bms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
