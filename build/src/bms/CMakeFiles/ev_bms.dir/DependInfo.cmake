
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bms/src/balancing.cpp" "src/bms/CMakeFiles/ev_bms.dir/src/balancing.cpp.o" "gcc" "src/bms/CMakeFiles/ev_bms.dir/src/balancing.cpp.o.d"
  "/root/repo/src/bms/src/battery_manager.cpp" "src/bms/CMakeFiles/ev_bms.dir/src/battery_manager.cpp.o" "gcc" "src/bms/CMakeFiles/ev_bms.dir/src/battery_manager.cpp.o.d"
  "/root/repo/src/bms/src/module_manager.cpp" "src/bms/CMakeFiles/ev_bms.dir/src/module_manager.cpp.o" "gcc" "src/bms/CMakeFiles/ev_bms.dir/src/module_manager.cpp.o.d"
  "/root/repo/src/bms/src/safety.cpp" "src/bms/CMakeFiles/ev_bms.dir/src/safety.cpp.o" "gcc" "src/bms/CMakeFiles/ev_bms.dir/src/safety.cpp.o.d"
  "/root/repo/src/bms/src/soc_estimator.cpp" "src/bms/CMakeFiles/ev_bms.dir/src/soc_estimator.cpp.o" "gcc" "src/bms/CMakeFiles/ev_bms.dir/src/soc_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/battery/CMakeFiles/ev_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
