file(REMOVE_RECURSE
  "libev_bms.a"
)
