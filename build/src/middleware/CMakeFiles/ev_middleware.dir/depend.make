# Empty dependencies file for ev_middleware.
# This may be replaced when dependencies are built.
