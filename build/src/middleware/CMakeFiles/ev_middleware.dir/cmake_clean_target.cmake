file(REMOVE_RECURSE
  "libev_middleware.a"
)
