
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/src/middleware.cpp" "src/middleware/CMakeFiles/ev_middleware.dir/src/middleware.cpp.o" "gcc" "src/middleware/CMakeFiles/ev_middleware.dir/src/middleware.cpp.o.d"
  "/root/repo/src/middleware/src/partition.cpp" "src/middleware/CMakeFiles/ev_middleware.dir/src/partition.cpp.o" "gcc" "src/middleware/CMakeFiles/ev_middleware.dir/src/partition.cpp.o.d"
  "/root/repo/src/middleware/src/pubsub.cpp" "src/middleware/CMakeFiles/ev_middleware.dir/src/pubsub.cpp.o" "gcc" "src/middleware/CMakeFiles/ev_middleware.dir/src/pubsub.cpp.o.d"
  "/root/repo/src/middleware/src/services.cpp" "src/middleware/CMakeFiles/ev_middleware.dir/src/services.cpp.o" "gcc" "src/middleware/CMakeFiles/ev_middleware.dir/src/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ev_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
