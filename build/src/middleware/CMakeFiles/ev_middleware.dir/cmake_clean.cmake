file(REMOVE_RECURSE
  "CMakeFiles/ev_middleware.dir/src/middleware.cpp.o"
  "CMakeFiles/ev_middleware.dir/src/middleware.cpp.o.d"
  "CMakeFiles/ev_middleware.dir/src/partition.cpp.o"
  "CMakeFiles/ev_middleware.dir/src/partition.cpp.o.d"
  "CMakeFiles/ev_middleware.dir/src/pubsub.cpp.o"
  "CMakeFiles/ev_middleware.dir/src/pubsub.cpp.o.d"
  "CMakeFiles/ev_middleware.dir/src/services.cpp.o"
  "CMakeFiles/ev_middleware.dir/src/services.cpp.o.d"
  "libev_middleware.a"
  "libev_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
