file(REMOVE_RECURSE
  "libev_motor.a"
)
