# Empty dependencies file for ev_motor.
# This may be replaced when dependencies are built.
