file(REMOVE_RECURSE
  "CMakeFiles/ev_motor.dir/src/drive.cpp.o"
  "CMakeFiles/ev_motor.dir/src/drive.cpp.o.d"
  "CMakeFiles/ev_motor.dir/src/fault.cpp.o"
  "CMakeFiles/ev_motor.dir/src/fault.cpp.o.d"
  "CMakeFiles/ev_motor.dir/src/foc.cpp.o"
  "CMakeFiles/ev_motor.dir/src/foc.cpp.o.d"
  "CMakeFiles/ev_motor.dir/src/inverter.cpp.o"
  "CMakeFiles/ev_motor.dir/src/inverter.cpp.o.d"
  "CMakeFiles/ev_motor.dir/src/pmsm.cpp.o"
  "CMakeFiles/ev_motor.dir/src/pmsm.cpp.o.d"
  "CMakeFiles/ev_motor.dir/src/svm.cpp.o"
  "CMakeFiles/ev_motor.dir/src/svm.cpp.o.d"
  "libev_motor.a"
  "libev_motor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_motor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
