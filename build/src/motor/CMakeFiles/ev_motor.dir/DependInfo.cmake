
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/motor/src/drive.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/drive.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/drive.cpp.o.d"
  "/root/repo/src/motor/src/fault.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/fault.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/fault.cpp.o.d"
  "/root/repo/src/motor/src/foc.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/foc.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/foc.cpp.o.d"
  "/root/repo/src/motor/src/inverter.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/inverter.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/inverter.cpp.o.d"
  "/root/repo/src/motor/src/pmsm.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/pmsm.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/pmsm.cpp.o.d"
  "/root/repo/src/motor/src/svm.cpp" "src/motor/CMakeFiles/ev_motor.dir/src/svm.cpp.o" "gcc" "src/motor/CMakeFiles/ev_motor.dir/src/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ev_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
