file(REMOVE_RECURSE
  "CMakeFiles/ev_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/ev_sim.dir/src/simulator.cpp.o.d"
  "CMakeFiles/ev_sim.dir/src/trace.cpp.o"
  "CMakeFiles/ev_sim.dir/src/trace.cpp.o.d"
  "libev_sim.a"
  "libev_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ev_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
