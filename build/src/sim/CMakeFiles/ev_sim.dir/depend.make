# Empty dependencies file for ev_sim.
# This may be replaced when dependencies are built.
