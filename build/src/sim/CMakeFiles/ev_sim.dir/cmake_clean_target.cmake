file(REMOVE_RECURSE
  "libev_sim.a"
)
