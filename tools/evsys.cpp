// evsys — scenario-driven whole-vehicle runner. Loads a declarative
// scenario file (see examples/scenarios/*.scn), builds the composed
// VehicleSystem through the core builder, drives the scenario's cycle
// under co-simulation, and emits the deterministic result JSON: same
// scenario file + same seed ⇒ byte-identical output.
//
//   $ evsys run examples/scenarios/city_commute.scn
//   $ evsys run limp.scn --out limp.result.json --metrics limp
//   $ evsys print examples/scenarios/city_commute.scn   # canonical round-trip
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run <scenario.scn> [--out <file>] [--metrics <base>]\n"
               "       %s print <scenario.scn>\n"
               "       %s template\n"
               "\n"
               "  run       build the vehicle the scenario describes, drive its\n"
               "            cycle, and write the deterministic result JSON to\n"
               "            stdout (or --out <file>). --metrics <base> also\n"
               "            exports <base>.metrics.json/.metrics.csv from the\n"
               "            observability subsystem.\n"
               "  print     parse + validate a scenario and print its canonical\n"
               "            text form (a lossless round-trip).\n"
               "  template  print a default scenario to start from.\n",
               argv0, argv0, argv0);
  return 2;
}

int cmd_run(const std::string& path, const std::string& out_path,
            const std::string& metrics_base) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  std::unique_ptr<ev::core::VehicleSystem> vehicle;
  const ev::core::ScenarioRunResult result = ev::core::run_scenario(spec, &vehicle);

  if (!metrics_base.empty()) {
    auto* obs = vehicle->find_subsystem<ev::core::ObservabilitySubsystem>();
    if (obs == nullptr) {
      std::fprintf(stderr, "evsys: --metrics needs 'subsystems.obs = true'\n");
      return 1;
    }
    if (!obs->export_files(metrics_base)) {
      std::fprintf(stderr, "evsys: could not write metrics files '%s.*'\n",
                   metrics_base.c_str());
      return 1;
    }
  }

  if (out_path.empty()) {
    ev::core::write_result_json(result, std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  ev::core::write_result_json(result, out);
  return out ? 0 : 1;
}

int cmd_print(const std::string& path) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  std::fputs(spec.to_text().c_str(), stdout);
  return 0;
}

int cmd_template() {
  std::fputs(ev::config::ScenarioSpec{}.to_text().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "template") return cmd_template();
    if (command == "print") {
      if (argc != 3) return usage(argv[0]);
      return cmd_print(argv[2]);
    }
    if (command == "run") {
      if (argc < 3) return usage(argv[0]);
      std::string out_path, metrics_base;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
          metrics_base = argv[++i];
        } else {
          return usage(argv[0]);
        }
      }
      return cmd_run(argv[2], out_path, metrics_base);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "evsys: %s\n", e.what());
    return 1;
  }
}
