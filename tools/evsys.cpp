// evsys — scenario-driven whole-vehicle runner. Loads a declarative
// scenario file (see examples/scenarios/*.scn), builds the composed
// VehicleSystem through the core builder, drives the scenario's cycle
// under co-simulation, and emits the deterministic result JSON: same
// scenario file + same seed ⇒ byte-identical output.
//
//   $ evsys run examples/scenarios/city_commute.scn
//   $ evsys run limp.scn --out limp.result.json --metrics limp
//   $ evsys campaign city.scn --seeds 8 --jobs 4       # parallel seed ladder
//   $ evsys fleet examples/scenarios/depot_fleet.fleet --jobs 8   # fleet run
//   $ evsys check examples/scenarios/city_commute.scn   # static analysis
//   $ evsys synthesize overloaded.scn --seed 1          # repair + optimize
//   $ evsys print examples/scenarios/city_commute.scn   # canonical round-trip
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/prob.h"
#include "ev/campaign/campaign.h"
#include "ev/config/fleet.h"
#include "ev/config/scenario.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/fleet/simulation.h"
#include "ev/fuzz/fuzz.h"
#include "ev/obs/export.h"
#include "ev/synthesis/synthesis.h"

namespace {

// Single source of truth for the error paths: every valid verb and template
// kind, in the order the usage text lists them.
constexpr const char* kVerbs[] = {"campaign", "check", "fleet",      "fuzz",
                                  "print",    "run",   "synthesize", "template"};
constexpr const char* kTemplateKinds[] = {"scenario", "fleet"};

template <std::size_t N>
std::string join_names(const char* const (&names)[N]) {
  std::string out;
  for (const char* name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run <scenario.scn> [--out <file>] [--metrics <base>]\n"
               "       %s campaign <scenario.scn> [--seeds <n>] [--first <seed>]\n"
               "                [--stride <n>] [--jobs <n>] [--out <file>]\n"
               "       %s fleet <scenario.fleet> [--jobs <n>] [--out <file>]\n"
               "                [--metrics <base>]\n"
               "       %s check <scenario.scn> [--prob] [--out <file>]\n"
               "       %s fuzz [--seed <n>] [--count <n>] [--jobs <n>]\n"
               "                [--out <file>] [--repro-dir <dir>] [--no-shrink]\n"
               "       %s synthesize <scenario.scn> [--seed <n>] [--iters <n>]\n"
               "                [--jobs <n>] [--out <file>] [--report <file>]\n"
               "                [--cross-check]\n"
               "       %s print <scenario.scn>\n"
               "       %s template [scenario|fleet]\n"
               "\n"
               "  run       build the vehicle the scenario describes, drive its\n"
               "            cycle, and write the deterministic result JSON to\n"
               "            stdout (or --out <file>). --metrics <base> also\n"
               "            exports <base>.metrics.json/.metrics.csv from the\n"
               "            observability subsystem.\n"
               "  campaign  run the scenario once per rung of the seed ladder\n"
               "            first + i*stride (i < seeds, default 8 seeds from 1)\n"
               "            on --jobs worker threads (default 1; 0 = one per\n"
               "            hardware thread), each rung on a private simulator,\n"
               "            and write one deterministic campaign report JSON —\n"
               "            per-seed digests, cross-seed min/mean/max tables,\n"
               "            and the merged metrics — to stdout (or --out).\n"
               "            Output is byte-identical for any --jobs value.\n"
               "  check     statically analyze the composed vehicle without\n"
               "            running it: schedulability bounds per ECU and bus,\n"
               "            plus wiring lints. Diagnostics JSON goes to stdout\n"
               "            (or --out <file>), a summary to stderr. Exit code:\n"
               "            0 clean, 1 errors, 3 warnings only. --prob adds the\n"
               "            probabilistic fault-aware timing pass: per-frame\n"
               "            deadline-miss probabilities (prob.* rules) under\n"
               "            the scenario's bus.error_rate / bus.error_prob\n"
               "            fault specs; with no such spec the output is\n"
               "            byte-identical to the plain check.\n"
               "  fleet     simulate the OCPP-style fleet charging backend the\n"
               "            .fleet scenario describes — heartbeat leases,\n"
               "            retry/backoff control channel, grid-aware load\n"
               "            balancing under injected grid faults — on --jobs\n"
               "            worker threads (default 1; 0 = one per hardware\n"
               "            thread) and write the deterministic fleet report\n"
               "            JSON to stdout (or --out). --metrics <base> also\n"
               "            exports <base>.metrics.json/.metrics.csv. Output\n"
               "            is byte-identical for any --jobs value.\n"
               "  fuzz      differential-test the whole stack: derive --count\n"
               "            valid-by-construction scenarios from --seed, run\n"
               "            each through text round-trip, static check (as a\n"
               "            pre-filter), co-simulation, and the E19/E24/\n"
               "            conservation oracles on --jobs worker threads\n"
               "            (default 1; 0 = one per hardware thread). Failures\n"
               "            are delta-shrunk (--no-shrink skips that) and\n"
               "            dumped as reproducer .scn files under --repro-dir.\n"
               "            The campaign report JSON goes to stdout (or --out)\n"
               "            and is byte-identical for any --jobs value. Exit\n"
               "            code: 0 when every oracle held, 1 otherwise.\n"
               "  synthesize\n"
               "            invert check: search the architecture design space\n"
               "            (frame placement, CAN priorities, FlexRay slots,\n"
               "            partition windows, bit rate, load scale) for a\n"
               "            repaired scenario that passes check cleanly, then\n"
               "            anneal it for slack and busload. The synthesized\n"
               "            scenario text goes to stdout (or --out <file>),\n"
               "            the deterministic search report JSON to --report\n"
               "            <file>, a summary to stderr. Same seed ⇒\n"
               "            byte-identical output for any --jobs value. Exit\n"
               "            code: 0 when the result is feasible, 1 otherwise.\n"
               "  print     parse + validate a scenario and print its canonical\n"
               "            text form (a lossless round-trip).\n"
               "  template  print a default scenario to start from\n"
               "            ('template fleet' prints a fleet scenario).\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

int cmd_campaign(const std::string& path, const ev::campaign::CampaignOptions& options,
                 const std::string& out_path) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  const ev::campaign::CampaignResult result =
      ev::campaign::run_scenario_campaign(spec, options);

  std::fprintf(stderr, "evsys campaign: %s — %d seed(s) from %llu, stride %llu\n",
               result.scenario.c_str(), result.seeds.count,
               static_cast<unsigned long long>(result.seeds.first),
               static_cast<unsigned long long>(result.seeds.stride));

  if (out_path.empty()) {
    ev::campaign::write_campaign_json(result, std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  ev::campaign::write_campaign_json(result, out);
  return out ? 0 : 1;
}

int cmd_check(const std::string& path, bool probabilistic,
              const std::string& out_path) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  const ev::analysis::Report report =
      probabilistic ? ev::analysis::analyze_probabilistic_scenario(spec)
                    : ev::analysis::analyze_scenario(spec);

  if (out_path.empty()) {
    ev::analysis::write_report_json(report, std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    ev::analysis::write_report_json(report, out);
    if (!out) return 1;
  }

  std::fprintf(stderr, "evsys check: %s — %zu error(s), %zu warning(s), %zu bound(s)\n",
               report.scenario.c_str(),
               report.count(ev::analysis::Severity::kError),
               report.count(ev::analysis::Severity::kWarning),
               report.count(ev::analysis::Severity::kInfo));
  for (const ev::analysis::Diagnostic& d : report.diagnostics)
    if (d.severity != ev::analysis::Severity::kInfo)
      std::fprintf(stderr, "  %s %s [%s] %s\n",
                   ev::analysis::to_string(d.severity).c_str(), d.subject.c_str(),
                   d.rule_id.c_str(), d.message.c_str());
  return ev::analysis::exit_code_for(report);
}

int cmd_run(const std::string& path, const std::string& out_path,
            const std::string& metrics_base) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  std::unique_ptr<ev::core::VehicleSystem> vehicle;
  const ev::core::ScenarioRunResult result = ev::core::run_scenario(spec, &vehicle);

  if (!metrics_base.empty()) {
    auto* obs = vehicle->find_subsystem<ev::core::ObservabilitySubsystem>();
    if (obs == nullptr) {
      std::fprintf(stderr, "evsys: --metrics needs 'subsystems.obs = true'\n");
      return 1;
    }
    if (!obs->export_files(metrics_base)) {
      std::fprintf(stderr, "evsys: could not write metrics files '%s.*'\n",
                   metrics_base.c_str());
      return 1;
    }
  }

  if (out_path.empty()) {
    ev::core::write_result_json(result, std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  ev::core::write_result_json(result, out);
  return out ? 0 : 1;
}

int cmd_fleet(const std::string& path, int jobs, const std::string& out_path,
              const std::string& metrics_base) {
  const ev::config::FleetSpec spec = ev::config::load_fleet_file(path);
  ev::obs::MetricsRegistry metrics;
  const ev::fleet::FleetResult result = ev::fleet::run_fleet(
      spec, jobs, metrics_base.empty() ? nullptr : &metrics);

  std::fprintf(stderr,
               "evsys fleet: %s — %llu station(s), %llu tick(s), mode %s, "
               "%llu session(s) completed, %llu grid violation(s)\n",
               result.name.c_str(),
               static_cast<unsigned long long>(result.station_count),
               static_cast<unsigned long long>(result.ticks),
               ev::fleet::to_string(result.final_mode).c_str(),
               static_cast<unsigned long long>(result.stations.sessions_completed),
               static_cast<unsigned long long>(result.grid_violations));

  if (!metrics_base.empty()) {
    if (!ev::obs::write_metrics_json_file(metrics, metrics_base + ".metrics.json") ||
        !ev::obs::write_metrics_csv_file(metrics, metrics_base + ".metrics.csv")) {
      std::fprintf(stderr, "evsys: could not write metrics files '%s.*'\n",
                   metrics_base.c_str());
      return 1;
    }
  }

  if (out_path.empty()) {
    ev::fleet::write_fleet_json(result, std::cout);
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  ev::fleet::write_fleet_json(result, out);
  return out ? 0 : 1;
}

int cmd_synthesize(const std::string& path, const ev::synthesis::SynthesisOptions& options,
                   const std::string& out_path, const std::string& report_path) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  const ev::synthesis::SynthesisResult result = ev::synthesis::synthesize(spec, options);

  std::fprintf(stderr,
               "evsys synthesize: %s — %s at load_scale %s, "
               "%llu move(s) evaluated, %llu accepted, %zu Pareto point(s)\n",
               result.spec.name.c_str(), result.feasible ? "feasible" : "infeasible",
               ev::config::format_double(result.load_scale).c_str(),
               static_cast<unsigned long long>(result.moves_evaluated),
               static_cast<unsigned long long>(result.moves_accepted),
               result.pareto.size());

  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::fprintf(stderr, "evsys: cannot write '%s'\n", report_path.c_str());
      return 1;
    }
    ev::synthesis::write_synthesis_json(result, report);
    if (!report) return 1;
  }

  const std::string text = result.spec.to_text();
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << text;
    if (!out) return 1;
  }
  return result.feasible ? 0 : 1;
}

int cmd_fuzz(const ev::fuzz::FuzzOptions& options, const std::string& out_path) {
  const ev::fuzz::FuzzResult result = ev::fuzz::run_fuzz(options);
  const std::string json = ev::fuzz::fuzz_json(result);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "evsys: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << json;
  }
  std::size_t rejected = 0, simulated = 0;
  for (const ev::fuzz::ScenarioOutcome& outcome : result.scenarios) {
    if (outcome.verdict == ev::fuzz::Verdict::kRejected) ++rejected;
    if (outcome.verdict == ev::fuzz::Verdict::kSimulated) ++simulated;
  }
  const std::size_t failures = result.failures();
  std::fprintf(stderr,
               "evsys fuzz: seed %llu, %d scenarios (%zu simulated, %zu "
               "rejected by check), %d fleet round trips, %zu failures\n",
               static_cast<unsigned long long>(result.seed), result.count,
               simulated, rejected, result.fleets_generated, failures);
  for (const ev::fuzz::ScenarioOutcome& outcome : result.scenarios)
    if (outcome.failure != ev::fuzz::FailureKind::kNone)
      std::fprintf(stderr, "evsys fuzz: [%d] %s: %s%s%s\n", outcome.index,
                   ev::fuzz::to_string(outcome.failure), outcome.detail.c_str(),
                   outcome.reproducer.empty() ? "" : " — reproducer ",
                   outcome.reproducer.c_str());
  return failures > 0 ? 1 : 0;
}

int cmd_print(const std::string& path) {
  const ev::config::ScenarioSpec spec = ev::config::load_scenario_file(path);
  std::fputs(spec.to_text().c_str(), stdout);
  return 0;
}

int cmd_template() {
  std::fputs(ev::config::ScenarioSpec{}.to_text().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "template") {
      if (argc >= 3 && std::strcmp(argv[2], "fleet") == 0) {
        std::fputs(ev::config::FleetSpec{}.to_text().c_str(), stdout);
        return 0;
      }
      if (argc >= 3 && std::strcmp(argv[2], "scenario") != 0) {
        std::fprintf(stderr, "evsys: unknown template kind '%s' (valid: %s)\n",
                     argv[2], join_names(kTemplateKinds).c_str());
        return 2;
      }
      return cmd_template();
    }
    if (command == "fleet") {
      if (argc < 3) return usage(argv[0]);
      int jobs = 1;
      std::string out_path, metrics_base;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
          metrics_base = argv[++i];
        } else {
          return usage(argv[0]);
        }
      }
      return cmd_fleet(argv[2], jobs, out_path, metrics_base);
    }
    if (command == "print") {
      if (argc != 3) return usage(argv[0]);
      return cmd_print(argv[2]);
    }
    if (command == "check") {
      if (argc < 3) return usage(argv[0]);
      bool probabilistic = false;
      std::string out_path;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--prob") == 0) {
          probabilistic = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else {
          return usage(argv[0]);
        }
      }
      return cmd_check(argv[2], probabilistic, out_path);
    }
    if (command == "campaign") {
      if (argc < 3) return usage(argv[0]);
      ev::campaign::CampaignOptions options;
      options.seeds.count = 8;
      std::string out_path;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
          options.seeds.count = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--first") == 0 && i + 1 < argc) {
          options.seeds.first = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
          options.seeds.stride = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          options.jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else {
          return usage(argv[0]);
        }
      }
      if (options.seeds.count < 1 || options.seeds.stride == 0) {
        std::fprintf(stderr, "evsys: --seeds must be >= 1 and --stride >= 1\n");
        return 2;
      }
      return cmd_campaign(argv[2], options, out_path);
    }
    if (command == "run") {
      if (argc < 3) return usage(argv[0]);
      std::string out_path, metrics_base;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
          metrics_base = argv[++i];
        } else {
          return usage(argv[0]);
        }
      }
      return cmd_run(argv[2], out_path, metrics_base);
    }
    if (command == "fuzz") {
      ev::fuzz::FuzzOptions options;
      std::string out_path;
      for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
          options.count = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          options.jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--repro-dir") == 0 && i + 1 < argc) {
          options.reproducer_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
          options.shrink = false;
        } else {
          return usage(argv[0]);
        }
      }
      if (options.count < 1) {
        std::fprintf(stderr, "evsys: --count must be >= 1\n");
        return 2;
      }
      return cmd_fuzz(options, out_path);
    }
    if (command == "synthesize") {
      if (argc < 3) return usage(argv[0]);
      ev::synthesis::SynthesisOptions options;
      std::string out_path, report_path;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
          options.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
          options.iters = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
          options.jobs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
          out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
          report_path = argv[++i];
        } else if (std::strcmp(argv[i], "--cross-check") == 0) {
          options.cross_check = true;
        } else {
          return usage(argv[0]);
        }
      }
      if (options.iters < 0) {
        std::fprintf(stderr, "evsys: --iters must be >= 0\n");
        return 2;
      }
      return cmd_synthesize(argv[2], options, out_path, report_path);
    }
    std::fprintf(stderr, "evsys: unknown command '%s' (valid: %s)\n",
                 command.c_str(), join_names(kVerbs).c_str());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "evsys: %s\n", e.what());
    return 1;
  }
}
