#include "ev/network/ptp.h"

#include <cmath>

namespace ev::network {

PtpSync::PtpSync(sim::Simulator& sim, std::vector<double> drifts_ppm, PtpConfig config,
                 util::Rng& rng)
    : sim_(&sim), config_(config), rng_(&rng) {
  slaves_.reserve(drifts_ppm.size());
  for (double d : drifts_ppm)
    // Initial offsets up to +-10 us, as after a cold start.
    slaves_.emplace_back(d, rng.uniform(-10e-6, 10e-6));
}

void PtpSync::start() {
  if (started_) return;
  started_ = true;
  sim_->schedule_periodic(sim::Time::seconds(config_.sync_interval_s),
                          sim::Time::seconds(config_.sync_interval_s),
                          [this] { run_round(); });
}

void PtpSync::run_round() {
  const sim::Time now = sim_->now();
  for (auto& slave : slaves_) {
    // Residual just before correction: the maximum accumulated error.
    residuals_.add(std::fabs(slave.error_s(now)));

    // Two-way exchange. True master timestamps are exact; each timestamp
    // capture adds jitter. The computed offset estimate is
    //   offset = ((t2 - t1) - (t4 - t3)) / 2
    // which cancels the symmetric path delay but keeps asymmetry + jitter.
    const double t_true = now.to_seconds();
    const auto jitter = [this] { return rng_->normal(0.0, config_.delay_jitter_s); };
    const double t1 = t_true;  // master send (master clock = true time)
    const double t2 = slave.read(now) + config_.path_delay_s + config_.asymmetry_s + jitter();
    const double t3 = slave.read(now) + 10e-6;  // slave delay-req send
    const double t4 = t_true + 10e-6 + config_.path_delay_s - config_.asymmetry_s + jitter();
    const double offset = ((t2 - t1) - (t4 - t3)) / 2.0;
    slave.correct(offset);
    // First-order syntonization: cancel the deterministic drift accumulated
    // over the coming interval (real servos estimate this from successive
    // offsets; using the known drift models a converged rate estimate).
    slave.correct_rate(-slave.drift_ppm() * 1e-6 * config_.sync_interval_s);
  }
  ++rounds_;
}

}  // namespace ev::network
