#include "ev/network/ethernet.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ev::network {

EthernetSwitch::EthernetSwitch(sim::Simulator& sim, std::string name, std::size_t port_count,
                               double bit_rate_bps, double forwarding_delay_s)
    : Bus(sim, std::move(name), bit_rate_bps),
      egress_(port_count),
      forwarding_delay_s_(forwarding_delay_s) {
  if (port_count == 0) throw std::invalid_argument("EthernetSwitch: need at least one port");
}

void EthernetSwitch::attach(NodeId node, std::size_t port) {
  if (port >= egress_.size()) throw std::out_of_range("EthernetSwitch: port out of range");
  node_port_[node] = port;
}

void EthernetSwitch::add_route(std::uint32_t id, EthRoute route) {
  for (std::size_t p : route.egress_ports)
    if (p >= egress_.size()) throw std::out_of_range("EthernetSwitch: route port out of range");
  routes_[id] = std::move(route);
}

void EthernetSwitch::enable_cbs(std::size_t port, double idle_slope_fraction) {
  Egress& e = egress_.at(port);
  e.cbs_enabled = true;
  e.idle_slope = idle_slope_fraction * bit_rate();
  e.credit_bits = 0.0;
  e.credit_updated = simulator().now();
}

void EthernetSwitch::set_gate_schedule(std::size_t port, GateSchedule schedule) {
  if (schedule.cycle_s <= 0.0)
    throw std::invalid_argument("EthernetSwitch: gate cycle must be positive");
  egress_.at(port).gates = std::move(schedule);
}

std::size_t EthernetSwitch::frame_bits(std::size_t payload_bytes) noexcept {
  const std::size_t payload = std::max<std::size_t>(payload_bytes, 46);
  return (8 + 14 + payload + 4 + 12) * 8;  // preamble + header + data + FCS + IFG
}

bool EthernetSwitch::do_send(Frame frame) {
  const auto port_it = node_port_.find(frame.source);
  if (port_it == node_port_.end()) return false;
  const auto route_it = routes_.find(frame.id);
  if (route_it == routes_.end()) return false;
  if (frame.created == sim::Time{}) frame.created = simulator().now();
  frame.sequence = next_sequence();

  // Uplink transmission (node -> switch) plus store-and-forward processing.
  const sim::Time uplink = tx_time(frame_bits(frame.payload_size));
  account_busy(uplink);
  const EthRoute& route = route_it->second;
  const EthClass cls = route.traffic_class;
  simulator().schedule_in(
      uplink + sim::Time::seconds(forwarding_delay_s_),
      [this, frame = std::move(frame), ports = route.egress_ports, cls]() mutable {
        for (std::size_t i = 0; i < ports.size(); ++i)
          enqueue_egress(ports[i], frame, cls);
      });
  return true;
}

void EthernetSwitch::enqueue_egress(std::size_t port, Frame frame, EthClass cls) {
  Egress& e = egress_[port];
  e.queues[static_cast<std::size_t>(cls)].push_back(std::move(frame));
  service_port(port);
}

void EthernetSwitch::update_credit(Egress& e, sim::Time now) const {
  if (!e.cbs_enabled) return;
  const double dt = (now - e.credit_updated).to_seconds();
  if (dt <= 0.0) return;
  const auto& qa = e.queues[static_cast<std::size_t>(EthClass::kAvbClassA)];
  // Credit accrues at idle slope while frames wait or while recovering from
  // negative credit; it resets toward zero when the queue is idle.
  if (!qa.empty() || e.credit_bits < 0.0)
    e.credit_bits = std::min(e.credit_bits + e.idle_slope * dt, 0.75 * e.idle_slope * 0.001);
  else
    e.credit_bits = std::min(e.credit_bits, 0.0);
  e.credit_updated = now;
}

bool EthernetSwitch::gate_allows(const Egress& e, int prio, sim::Time now, sim::Time tx,
                                 sim::Time* next_try) const {
  if (!e.gates) return true;
  const GateSchedule& gs = *e.gates;
  const sim::Time cycle = sim::Time::seconds(gs.cycle_s);
  const sim::Time phase = now % cycle;
  const bool is_tt = prio == static_cast<int>(EthClass::kTimeTriggered);
  sim::Time best_next = sim::Time::max();
  for (int lap = 0; lap < 2; ++lap) {
    const sim::Time lap_offset = cycle * lap;
    for (const GateWindow& w : gs.windows) {
      if (w.tt_only != is_tt) continue;
      const sim::Time start = sim::Time::seconds(w.offset_s) + lap_offset;
      const sim::Time end = start + sim::Time::seconds(w.duration_s);
      if (phase >= start && phase + tx <= end) return true;  // fits now (guard band)
      if (start > phase) best_next = std::min(best_next, now + (start - phase));
    }
  }
  if (next_try && best_next != sim::Time::max()) *next_try = std::min(*next_try, best_next);
  return false;
}

void EthernetSwitch::service_port(std::size_t port) {
  Egress& e = egress_[port];
  if (e.busy) return;
  const sim::Time now = simulator().now();
  update_credit(e, now);

  sim::Time next_try = sim::Time::max();
  for (int prio = 7; prio >= 0; --prio) {
    auto& q = e.queues[static_cast<std::size_t>(prio)];
    if (q.empty()) continue;
    const sim::Time tx = tx_time(frame_bits(q.front().payload_size));
    if (!gate_allows(e, prio, now, tx, &next_try)) continue;
    if (e.cbs_enabled && prio == static_cast<int>(EthClass::kAvbClassA) &&
        e.credit_bits < 0.0) {
      // Credit recovers at idle slope; retry when it reaches zero. Round the
      // wait up to one microsecond so a vanishing credit deficit can never
      // produce a zero-delay retry loop at a single timestamp.
      const double wait_s = std::max(-e.credit_bits / e.idle_slope, 1e-6);
      next_try = std::min(next_try, now + sim::Time::seconds(wait_s));
      continue;
    }
    Frame frame = std::move(q.front());
    q.pop_front();
    e.busy = true;
    if (e.cbs_enabled && prio == static_cast<int>(EthClass::kAvbClassA)) {
      // Send slope: credit drains by the non-reserved rate during service.
      e.credit_bits -= (bit_rate() - e.idle_slope) * tx.to_seconds();
      e.credit_updated = now + tx;
    }
    account_busy(tx);
    simulator().schedule_in(tx, [this, port, frame = std::move(frame)]() mutable {
      egress_[port].busy = false;
      deliver(frame);
      service_port(port);
    });
    return;
  }
  // Nothing eligible now: re-arm at the earliest gate/credit opportunity.
  if (next_try != sim::Time::max() && e.retry_event == 0) {
    e.retry_event = simulator().schedule_at(next_try, [this, port] {
      egress_[port].retry_event = 0;
      service_port(port);
    });
  }
}

std::size_t EthernetSwitch::egress_depth(std::size_t port) const {
  const Egress& e = egress_.at(port);
  std::size_t n = 0;
  for (const auto& q : e.queues) n += q.size();
  return n;
}

}  // namespace ev::network
