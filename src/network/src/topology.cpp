#include "ev/network/topology.h"

#include <algorithm>

namespace ev::network {

namespace {

// Frame-id blocks per domain keep gateway translation unambiguous.
constexpr std::uint32_t kChassisBase = 0x100;
constexpr std::uint32_t kSafetyBase = 0x200;
constexpr std::uint32_t kComfortBase = 0x300;
constexpr std::uint32_t kLinBase = 0x10;
constexpr std::uint32_t kMostBase = 0x800;

}  // namespace

Figure1Network::Figure1Network(sim::Simulator& sim, const Figure1Config& config)
    : sim_(&sim), config_(config) {
  // --- Chassis FlexRay: time-triggered control traffic ----------------------
  FlexRayConfig fr;
  fr.static_payload_bytes = 16;
  fr.static_slots = {
      {kChassisBase + 0, 1, 16},  // brake command (brake-by-wire)
      {kChassisBase + 1, 2, 16},  // steering command
      {kChassisBase + 2, 3, 16},  // wheel speeds front
      {kChassisBase + 3, 3, 16},  // wheel speeds rear
      {kChassisBase + 4, 4, 16},  // motor torque command
      {kChassisBase + 5, 5, 16},  // motor status
      {kChassisBase + 6, 6, 16},  // BMS pack status
      {kChassisBase + 7, 7, 16},  // suspension
  };
  chassis_fr_ = std::make_unique<FlexRayBus>(sim, "chassis(FlexRay)", fr,
                                             config.flexray_bit_rate);

  // --- Safety CAN: airbag/ABS/ESP event + periodic traffic -------------------
  safety_can_ = std::make_unique<CanBus>(sim, "safety(CAN)", config.can_bit_rate);

  // --- Comfort CAN ------------------------------------------------------------
  comfort_can_ = std::make_unique<CanBus>(sim, "comfort(CAN)", config.can_bit_rate);

  // --- Body LIN sub-network ----------------------------------------------------
  std::vector<LinSlot> lin_schedule = {
      {kLinBase + 0, 30, 2},  // window lift switches
      {kLinBase + 1, 31, 2},  // mirror position
      {kLinBase + 2, 32, 4},  // rain/light sensor
      {kLinBase + 3, 33, 2},  // seat heater
  };
  body_lin_ = std::make_unique<LinBus>(sim, "sub-network(LIN)", std::move(lin_schedule),
                                       0.01, config.lin_bit_rate);

  // --- Infotainment MOST --------------------------------------------------------
  std::vector<MostStream> streams = {
      {kMostBase + 0, 8},  // main audio stream
      {kMostBase + 1, 4},  // voice channel
  };
  most_ = std::make_unique<MostBus>(sim, "infotainment(MOST)", std::move(streams));

  // --- Central gateway -----------------------------------------------------------
  gateway_ = std::make_unique<Gateway>(sim, "central-gateway");
  // Wheel speeds chassis -> comfort (dashboard display).
  gateway_->add_route({chassis_fr_.get(), kChassisBase + 2, comfort_can_.get(),
                       kComfortBase + 0x40, 8});
  // BMS pack status chassis -> MOST (range display in infotainment).
  gateway_->add_route({chassis_fr_.get(), kChassisBase + 6, most_.get(),
                       kMostBase + 0x40, 0});
  // Crash signal safety -> chassis (triggers HV shutdown).
  gateway_->add_route({safety_can_.get(), kSafetyBase + 0, chassis_fr_.get(),
                       kChassisBase + 0x50, 8});
  // Climate state comfort -> MOST (UI).
  gateway_->add_route({comfort_can_.get(), kComfortBase + 1, most_.get(),
                       kMostBase + 0x41, 0});

  // --- Periodic traffic -------------------------------------------------------
  const double s = 1.0 / std::max(config.load_scale, 1e-6);
  // Chassis control loops at 10 ms, status at 100 ms.
  add_source({chassis_fr_.get(), kChassisBase + 0, 1, 16, 0.010 * s, 0.0, "brake cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 1, 2, 16, 0.010 * s, 0.001, "steering cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 2, 3, 16, 0.010 * s, 0.002, "wheel spd F"});
  add_source({chassis_fr_.get(), kChassisBase + 3, 3, 16, 0.010 * s, 0.003, "wheel spd R"});
  add_source({chassis_fr_.get(), kChassisBase + 4, 4, 16, 0.010 * s, 0.004, "torque cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 5, 5, 16, 0.020 * s, 0.005, "motor status"});
  if (config.synthetic_bms_source)
    add_source({chassis_fr_.get(), kChassisBase + 6, 6, 16, 0.100 * s, 0.006, "BMS status"});
  add_source({chassis_fr_.get(), kChassisBase + 7, 7, 16, 0.020 * s, 0.007, "suspension"});
  // Safety CAN.
  add_source({safety_can_.get(), kSafetyBase + 0, 10, 8, 0.100 * s, 0.0, "crash status"});
  add_source({safety_can_.get(), kSafetyBase + 1, 11, 8, 0.010 * s, 0.001, "ABS status"});
  add_source({safety_can_.get(), kSafetyBase + 2, 12, 8, 0.010 * s, 0.002, "ESP status"});
  add_source({safety_can_.get(), kSafetyBase + 3, 13, 6, 0.020 * s, 0.003, "airbag diag"});
  add_source({safety_can_.get(), kSafetyBase + 4, 14, 8, 0.050 * s, 0.004, "belt status"});
  // Comfort CAN.
  add_source({comfort_can_.get(), kComfortBase + 0, 20, 8, 0.050 * s, 0.0, "door status"});
  add_source({comfort_can_.get(), kComfortBase + 1, 21, 8, 0.100 * s, 0.01, "climate"});
  add_source({comfort_can_.get(), kComfortBase + 2, 22, 4, 0.200 * s, 0.02, "seat pos"});
  add_source({comfort_can_.get(), kComfortBase + 3, 23, 8, 0.100 * s, 0.03, "lighting"});
  // LIN slaves publish each slot period.
  add_source({body_lin_.get(), kLinBase + 0, 30, 2, 0.040 * s, 0.0, "window sw"});
  add_source({body_lin_.get(), kLinBase + 1, 31, 2, 0.040 * s, 0.01, "mirror pos"});
  add_source({body_lin_.get(), kLinBase + 2, 32, 4, 0.040 * s, 0.02, "rain sensor"});
  add_source({body_lin_.get(), kLinBase + 3, 33, 2, 0.040 * s, 0.03, "seat heater"});
  // MOST: audio isochronous blocks + nav async bursts.
  add_source({most_.get(), kMostBase + 0, 40, 8, 0.005, 0.0, "audio block"});
  add_source({most_.get(), kMostBase + 2, 41, 256, 0.050 * s, 0.01, "nav data"});

  // --- Cross-domain latency probes ------------------------------------------
  monitor_flow({"wheel-speed->dashboard", comfort_can_.get(), kComfortBase + 0x40});
  monitor_flow({"bms->infotainment", most_.get(), kMostBase + 0x40});
  monitor_flow({"crash->chassis", chassis_fr_.get(), kChassisBase + 0x50});
}

void Figure1Network::add_source(PeriodicSource src) { sources_.push_back(std::move(src)); }

void Figure1Network::monitor_flow(const CrossDomainFlow& flow) {
  auto& series = flow_latency_[flow.name];
  const std::uint32_t id = flow.destination_id;
  flow.destination_bus->subscribe([&series, id](const Frame& f, sim::Time at) {
    if (f.id == id) series.add((at - f.created).to_seconds());
  });
}

void Figure1Network::start() {
  if (started_) return;
  started_ = true;
  body_lin_->start();
  most_->start();
  chassis_fr_->start();
  for (const PeriodicSource& src : sources_) {
    Bus* bus = src.bus;
    Frame proto;
    proto.id = src.frame_id;
    proto.source = src.source;
    proto.payload_size = src.payload_bytes;
    sim_->schedule_periodic(sim::Time::seconds(src.offset_s) + sim::Time::us(1),
                            sim::Time::seconds(src.period_s),
                            [bus, proto]() mutable { (void)bus->send(proto); });
  }
}

std::vector<Bus*> Figure1Network::buses() noexcept {
  return {body_lin_.get(), comfort_can_.get(), most_.get(), safety_can_.get(),
          chassis_fr_.get()};
}

}  // namespace ev::network
