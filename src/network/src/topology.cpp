#include "ev/network/topology.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ev::network {

namespace {

// Frame-id blocks per domain keep gateway translation unambiguous.
constexpr std::uint32_t kChassisBase = 0x100;
constexpr std::uint32_t kSafetyBase = 0x200;
constexpr std::uint32_t kComfortBase = 0x300;
constexpr std::uint32_t kLinBase = 0x10;
constexpr std::uint32_t kMostBase = 0x800;

[[noreturn]] void arch_fail(const std::string& what) {
  throw std::invalid_argument("figure1 arch: " + what);
}

// Applies the static-slot permutation: overridden frames sit at their
// requested slot index, the remaining frames fill free slots in default
// order. The result is always a permutation of the default slot list.
std::vector<FlexRaySlot> permute_static_slots(
    std::vector<FlexRaySlot> base, const std::vector<ArchOverrides::FrSlot>& overrides) {
  if (overrides.empty()) return base;
  std::vector<FlexRaySlot> out(base.size());
  std::vector<char> slot_taken(base.size(), 0);
  std::vector<char> frame_placed(base.size(), 0);
  for (const ArchOverrides::FrSlot& o : overrides) {
    std::size_t src = base.size();
    for (std::size_t i = 0; i < base.size(); ++i)
      if (base[i].frame_id == o.frame_id) src = i;
    if (src == base.size())
      arch_fail("fr_slot names a frame with no default static slot");
    if (o.slot >= base.size()) arch_fail("fr_slot index out of range");
    if (slot_taken[o.slot] != 0) arch_fail("fr_slot assigns one slot twice");
    if (frame_placed[src] != 0) arch_fail("fr_slot places one frame twice");
    out[o.slot] = base[src];
    slot_taken[o.slot] = 1;
    frame_placed[src] = 1;
  }
  std::size_t next = 0;
  for (std::size_t slot = 0; slot < base.size(); ++slot) {
    if (slot_taken[slot] != 0) continue;
    while (frame_placed[next] != 0) ++next;
    out[slot] = base[next];
    frame_placed[next] = 1;
  }
  return out;
}

}  // namespace

Figure1Network::Figure1Network(sim::Simulator& sim, const Figure1Config& config)
    : sim_(&sim), config_(config) {
  // --- Chassis FlexRay: time-triggered control traffic ----------------------
  FlexRayConfig fr;
  fr.static_payload_bytes = 16;
  fr.static_slots = permute_static_slots(
      {
          {kChassisBase + 0, 1, 16},  // brake command (brake-by-wire)
          {kChassisBase + 1, 2, 16},  // steering command
          {kChassisBase + 2, 3, 16},  // wheel speeds front
          {kChassisBase + 3, 3, 16},  // wheel speeds rear
          {kChassisBase + 4, 4, 16},  // motor torque command
          {kChassisBase + 5, 5, 16},  // motor status
          {kChassisBase + 6, 6, 16},  // BMS pack status
          {kChassisBase + 7, 7, 16},  // suspension
      },
      config.arch.fr_slots);
  chassis_fr_ = std::make_unique<FlexRayBus>(sim, "chassis(FlexRay)", fr,
                                             config.flexray_bit_rate);

  // --- Safety CAN: airbag/ABS/ESP event + periodic traffic -------------------
  safety_can_ = std::make_unique<CanBus>(sim, "safety(CAN)", config.can_bit_rate);

  // --- Comfort CAN ------------------------------------------------------------
  comfort_can_ = std::make_unique<CanBus>(sim, "comfort(CAN)", config.can_bit_rate);

  // --- Body LIN sub-network ----------------------------------------------------
  std::vector<LinSlot> lin_schedule = {
      {kLinBase + 0, 30, 2},  // window lift switches
      {kLinBase + 1, 31, 2},  // mirror position
      {kLinBase + 2, 32, 4},  // rain/light sensor
      {kLinBase + 3, 33, 2},  // seat heater
  };
  body_lin_ = std::make_unique<LinBus>(sim, "sub-network(LIN)", std::move(lin_schedule),
                                       0.01, config.lin_bit_rate);

  // --- Infotainment MOST --------------------------------------------------------
  std::vector<MostStream> streams = {
      {kMostBase + 0, 8},  // main audio stream
      {kMostBase + 1, 4},  // voice channel
  };
  most_ = std::make_unique<MostBus>(sim, "infotainment(MOST)", std::move(streams));

  // --- Central gateway -----------------------------------------------------------
  gateway_ = std::make_unique<Gateway>(sim, "central-gateway");

  // --- Periodic traffic -------------------------------------------------------
  const double s = 1.0 / std::max(config.load_scale, 1e-6);
  // Chassis control loops at 10 ms, status at 100 ms.
  add_source({chassis_fr_.get(), kChassisBase + 0, 1, 16, 0.010 * s, 0.0, "brake cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 1, 2, 16, 0.010 * s, 0.001, "steering cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 2, 3, 16, 0.010 * s, 0.002, "wheel spd F"});
  add_source({chassis_fr_.get(), kChassisBase + 3, 3, 16, 0.010 * s, 0.003, "wheel spd R"});
  add_source({chassis_fr_.get(), kChassisBase + 4, 4, 16, 0.010 * s, 0.004, "torque cmd"});
  add_source({chassis_fr_.get(), kChassisBase + 5, 5, 16, 0.020 * s, 0.005, "motor status"});
  if (config.synthetic_bms_source)
    add_source({chassis_fr_.get(), kChassisBase + 6, 6, 16, 0.100 * s, 0.006, "BMS status"});
  add_source({chassis_fr_.get(), kChassisBase + 7, 7, 16, 0.020 * s, 0.007, "suspension"});
  // Safety CAN.
  add_source({safety_can_.get(), kSafetyBase + 0, 10, 8, 0.100 * s, 0.0, "crash status"});
  add_source({safety_can_.get(), kSafetyBase + 1, 11, 8, 0.010 * s, 0.001, "ABS status"});
  add_source({safety_can_.get(), kSafetyBase + 2, 12, 8, 0.010 * s, 0.002, "ESP status"});
  add_source({safety_can_.get(), kSafetyBase + 3, 13, 6, 0.020 * s, 0.003, "airbag diag"});
  add_source({safety_can_.get(), kSafetyBase + 4, 14, 8, 0.050 * s, 0.004, "belt status"});
  // Comfort CAN.
  add_source({comfort_can_.get(), kComfortBase + 0, 20, 8, 0.050 * s, 0.0, "door status"});
  add_source({comfort_can_.get(), kComfortBase + 1, 21, 8, 0.100 * s, 0.01, "climate"});
  add_source({comfort_can_.get(), kComfortBase + 2, 22, 4, 0.200 * s, 0.02, "seat pos"});
  add_source({comfort_can_.get(), kComfortBase + 3, 23, 8, 0.100 * s, 0.03, "lighting"});
  // LIN slaves publish each slot period.
  add_source({body_lin_.get(), kLinBase + 0, 30, 2, 0.040 * s, 0.0, "window sw"});
  add_source({body_lin_.get(), kLinBase + 1, 31, 2, 0.040 * s, 0.01, "mirror pos"});
  add_source({body_lin_.get(), kLinBase + 2, 32, 4, 0.040 * s, 0.02, "rain sensor"});
  add_source({body_lin_.get(), kLinBase + 3, 33, 2, 0.040 * s, 0.03, "seat heater"});
  // MOST: audio isochronous blocks + nav async bursts.
  add_source({most_.get(), kMostBase + 0, 40, 8, 0.005, 0.0, "audio block"});
  add_source({most_.get(), kMostBase + 2, 41, 256, 0.050 * s, 0.01, "nav data"});

  // --- Arch overrides (bus moves + CAN renumbering) --------------------------
  apply_arch_overrides();

  // --- Gateway routes (match/translated ids follow any renumbering) ---------
  const auto fid = [&config](std::uint32_t id) {
    for (const ArchOverrides::FrameId& o : config.arch.frame_ids)
      if (o.frame_id == id) return o.new_id;
    return id;
  };
  // Wheel speeds chassis -> comfort (dashboard display).
  gateway_->add_route({chassis_fr_.get(), fid(kChassisBase + 2), comfort_can_.get(),
                       fid(kComfortBase + 0x40), 8});
  // BMS pack status chassis -> MOST (range display in infotainment).
  gateway_->add_route({chassis_fr_.get(), fid(kChassisBase + 6), most_.get(),
                       kMostBase + 0x40, 0});
  // Crash signal safety -> chassis (triggers HV shutdown).
  gateway_->add_route({safety_can_.get(), fid(kSafetyBase + 0), chassis_fr_.get(),
                       kChassisBase + 0x50, 8});
  // Climate state comfort -> MOST (UI).
  gateway_->add_route({comfort_can_.get(), fid(kComfortBase + 1), most_.get(),
                       kMostBase + 0x41, 0});

  // A renumbering that lands on an id already used on the same bus would
  // merge two flows; reject the design instead.
  std::vector<std::pair<const Bus*, std::uint32_t>> wire_ids;
  for (const PeriodicSource& src : sources_) wire_ids.emplace_back(src.bus, src.frame_id);
  wire_ids.emplace_back(comfort_can_.get(), fid(kComfortBase + 0x40));
  wire_ids.emplace_back(most_.get(), kMostBase + 0x40);
  wire_ids.emplace_back(chassis_fr_.get(), kChassisBase + 0x50);
  wire_ids.emplace_back(most_.get(), kMostBase + 0x41);
  if (!config.synthetic_bms_source)
    wire_ids.emplace_back(chassis_fr_.get(), kFrameIdBmsStatus);
  std::sort(wire_ids.begin(), wire_ids.end());
  for (std::size_t i = 1; i < wire_ids.size(); ++i)
    if (wire_ids[i] == wire_ids[i - 1]) arch_fail("duplicate frame id on one bus");

  // --- Cross-domain latency probes ------------------------------------------
  monitor_flow({"wheel-speed->dashboard", comfort_can_.get(), fid(kComfortBase + 0x40)});
  monitor_flow({"bms->infotainment", most_.get(), kMostBase + 0x40});
  monitor_flow({"crash->chassis", chassis_fr_.get(), kChassisBase + 0x50});
}

void Figure1Network::add_source(PeriodicSource src) {
  src.base_id = src.frame_id;
  sources_.push_back(std::move(src));
}

void Figure1Network::apply_arch_overrides() {
  const ArchOverrides& arch = config_.arch;
  if (arch.frame_buses.empty() && arch.frame_ids.empty()) return;
  Bus* const by_index[] = {body_lin_.get(), comfort_can_.get(), most_.get(),
                           safety_can_.get(), chassis_fr_.get()};
  constexpr std::size_t kBusCount = 5;
  // Frames a gateway route matches stay put: moving the source would
  // silently sever the cross-domain flow.
  const std::uint32_t route_matched[] = {kChassisBase + 2, kChassisBase + 6,
                                         kSafetyBase + 0, kComfortBase + 1};
  const auto find_source = [this](std::uint32_t base_id) -> PeriodicSource* {
    for (PeriodicSource& src : sources_)
      if (src.base_id == base_id) return &src;
    return nullptr;
  };
  for (const ArchOverrides::FrameBus& o : arch.frame_buses) {
    if (o.bus_index >= kBusCount) arch_fail("frame_bus index out of range");
    PeriodicSource* src = find_source(o.frame_id);
    if (src == nullptr) arch_fail("frame_bus names an unknown frame");
    if (src->bus == most_.get()) arch_fail("MOST frames are anchored");
    for (std::uint32_t anchored : route_matched)
      if (o.frame_id == anchored) arch_fail("gateway-routed frames are anchored");
    src->bus = by_index[o.bus_index];
  }
  for (const ArchOverrides::FrameId& o : arch.frame_ids) {
    if (PeriodicSource* src = find_source(o.frame_id)) {
      if (src->bus != comfort_can_.get() && src->bus != safety_can_.get())
        arch_fail("only frames on a CAN bus can be renumbered");
      src->frame_id = o.new_id;
      continue;
    }
    // The only renumberable non-source frame: the gateway-translated wheel
    // speed copy on comfort CAN (applied when routes are built).
    if (o.frame_id != kComfortBase + 0x40)
      arch_fail("frame_id names an unknown or fixed-id frame");
  }
}

void Figure1Network::monitor_flow(const CrossDomainFlow& flow) {
  auto& series = flow_latency_[flow.name];
  const std::uint32_t id = flow.destination_id;
  flow.destination_bus->subscribe([&series, id](const Frame& f, sim::Time at) {
    if (f.id == id) series.add((at - f.created).to_seconds());
  });
}

void Figure1Network::start() {
  if (started_) return;
  started_ = true;
  body_lin_->start();
  most_->start();
  chassis_fr_->start();
  for (const PeriodicSource& src : sources_) {
    Bus* bus = src.bus;
    Frame proto;
    proto.id = src.frame_id;
    proto.source = src.source;
    proto.payload_size = src.payload_bytes;
    sim_->schedule_periodic(sim::Time::seconds(src.offset_s) + sim::Time::us(1),
                            sim::Time::seconds(src.period_s),
                            [bus, proto]() mutable { (void)bus->send(proto); });
  }
}

std::vector<Bus*> Figure1Network::buses() noexcept {
  return {body_lin_.get(), comfort_can_.get(), most_.get(), safety_can_.get(),
          chassis_fr_.get()};
}

}  // namespace ev::network
