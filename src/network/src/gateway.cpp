#include "ev/network/gateway.h"

#include <algorithm>

namespace ev::network {

Gateway::Gateway(sim::Simulator& sim, std::string name, double processing_delay_s)
    : sim_(&sim), name_(std::move(name)), processing_delay_s_(processing_delay_s) {}

void Gateway::add_route(GatewayRoute route) {
  if (std::find(subscribed_.begin(), subscribed_.end(), route.from) == subscribed_.end()) {
    Bus* from = route.from;
    from->subscribe([this, from](const Frame& frame, sim::Time) { on_frame(from, frame); });
    subscribed_.push_back(from);
  }
  routes_.push_back(route);
}

void Gateway::on_frame(Bus* from, const Frame& frame) {
  for (const GatewayRoute& route : routes_) {
    if (route.from != from || route.match_id != frame.id) continue;
    Frame out = frame;
    out.id = route.translated_id;
    if (route.translated_payload > 0) out.payload_size = route.translated_payload;
    // Keep out.created: end-to-end latency accumulates across hops.
    Bus* to = route.to;
    sim_->schedule_in(sim::Time::seconds(processing_delay_s_), [this, to, out]() mutable {
      if (to->send(std::move(out)))
        ++forwarded_;
      else
        ++dropped_;
    });
  }
}

}  // namespace ev::network
