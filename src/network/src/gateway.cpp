#include "ev/network/gateway.h"

#include <algorithm>

namespace ev::network {

Gateway::Gateway(sim::Simulator& sim, std::string name, double processing_delay_s)
    : sim_(&sim), name_(std::move(name)), processing_delay_s_(processing_delay_s) {}

void Gateway::add_route(GatewayRoute route) {
  if (std::find(subscribed_.begin(), subscribed_.end(), route.from) == subscribed_.end()) {
    Bus* from = route.from;
    from->subscribe([this, from](const Frame& frame, sim::Time) { on_frame(from, frame); });
    subscribed_.push_back(from);
  }
  routes_.push_back(route);
}

void Gateway::attach_observer(obs::MetricsRegistry& registry) {
  const std::string base = "net.gw." + name_ + ".";
  metrics_ = &registry;
  forwarded_metric_ = registry.counter(base + "forwarded");
  dropped_metric_ = registry.counter(base + "dropped");
  hop_latency_metric_ = registry.histogram(base + "hop_latency_us", 0.0, 1e4, 64);
}

void Gateway::on_frame(Bus* from, const Frame& frame) {
  for (const GatewayRoute& route : routes_) {
    if (route.from != from || route.match_id != frame.id) continue;
    Frame out = frame;
    out.id = route.translated_id;
    if (route.translated_payload > 0) out.payload_size = route.translated_payload;
    // Keep out.created: end-to-end latency accumulates across hops.
    Bus* to = route.to;
    const sim::Time arrived = sim_->now();
    sim_->schedule_in(sim::Time::seconds(processing_delay_s_),
                      [this, to, out, arrived]() mutable {
      const bool accepted = to->send(std::move(out));
      if (accepted)
        ++forwarded_;
      else
        ++dropped_;
      if (metrics_) {
        metrics_->add(accepted ? forwarded_metric_ : dropped_metric_);
        metrics_->observe(hop_latency_metric_, (sim_->now() - arrived).to_us());
      }
    });
  }
}

}  // namespace ev::network
