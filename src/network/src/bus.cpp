#include "ev/network/bus.h"

#include <stdexcept>

namespace ev::network {

Bus::Bus(sim::Simulator& sim, std::string name, double bit_rate_bps)
    : sim_(&sim), name_(std::move(name)), bit_rate_bps_(bit_rate_bps) {
  if (bit_rate_bps <= 0.0) throw std::invalid_argument("Bus: bit rate must be positive");
}

sim::Time Bus::tx_time(std::size_t bits) const noexcept {
  return sim::Time::seconds(static_cast<double>(bits) / bit_rate_bps_);
}

double Bus::utilization() const noexcept {
  const double elapsed = sim_->now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  return busy_.to_seconds() / elapsed;
}

void Bus::deliver(const Frame& frame) {
  ++delivered_;
  delivered_bytes_ += frame.payload_size;
  const sim::Time latency = sim_->now() - frame.created;
  latency_s_.add(latency.to_seconds());
  if (metrics_) {
    metrics_->add(frames_metric_);
    metrics_->add(bytes_metric_, frame.payload_size);
    metrics_->observe(latency_metric_, latency.to_us());
    metrics_->set(utilization_metric_, utilization());
  }
  for (const auto& r : receivers_) r(frame, sim_->now());
}

void Bus::attach_observer(obs::MetricsRegistry& registry) {
  const std::string base = "net." + name_ + ".";
  metrics_ = &registry;
  frames_metric_ = registry.counter(base + "frames");
  bytes_metric_ = registry.counter(base + "payload_bytes");
  latency_metric_ = registry.histogram(base + "frame_latency_us", 0.0, 1e5, 64);
  utilization_metric_ = registry.gauge(base + "utilization");
}

}  // namespace ev::network
