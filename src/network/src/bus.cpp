#include "ev/network/bus.h"

#include <stdexcept>

namespace ev::network {

Bus::Bus(sim::Simulator& sim, std::string name, double bit_rate_bps)
    : sim_(&sim), name_(std::move(name)), bit_rate_bps_(bit_rate_bps) {
  if (bit_rate_bps <= 0.0) throw std::invalid_argument("Bus: bit rate must be positive");
}

sim::Time Bus::tx_time(std::size_t bits) const noexcept {
  return sim::Time::seconds(static_cast<double>(bits) / bit_rate_bps_);
}

double Bus::utilization() const noexcept {
  const double elapsed = sim_->now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  return busy_.to_seconds() / elapsed;
}

void Bus::deliver(const Frame& frame) {
  ++delivered_;
  delivered_bytes_ += frame.payload_size;
  latency_s_.add((sim_->now() - frame.created).to_seconds());
  for (const auto& r : receivers_) r(frame, sim_->now());
}

}  // namespace ev::network
