#include "ev/network/bus.h"

#include <stdexcept>

#include "ev/util/crc.h"

namespace ev::network {

Bus::Bus(sim::Simulator& sim, std::string name, double bit_rate_bps)
    : sim_(&sim), name_(std::move(name)), bit_rate_bps_(bit_rate_bps) {
  if (bit_rate_bps <= 0.0) throw std::invalid_argument("Bus: bit rate must be positive");
}

sim::Time Bus::tx_time(std::size_t bits) const noexcept {
  return sim::Time::seconds(static_cast<double>(bits) / bit_rate_bps_);
}

double Bus::utilization() const noexcept {
  const double elapsed = sim_->now().to_seconds();
  if (elapsed <= 0.0) return 0.0;
  return busy_.to_seconds() / elapsed;
}

bool Bus::send(Frame frame) {
  if (bus_off_until_ != sim::Time{} && sim_->now() < bus_off_until_) {
    ++busoff_rejected_;
    if (metrics_) metrics_->add(busoff_rejected_metric_);
    return false;
  }
  return do_send(std::move(frame));
}

void Bus::inject_bus_off(sim::Time recovery) { bus_off_until_ = sim_->now() + recovery; }

bool Bus::bus_off() const noexcept {
  return bus_off_until_ != sim::Time{} && sim_->now() < bus_off_until_;
}

bool Bus::consume_delivery_fault(const Frame& frame) {
  if (drop_pending_ > 0) {
    --drop_pending_;
    ++fault_dropped_;
    if (metrics_) metrics_->add(fault_dropped_metric_);
    return true;
  }
  // Corruption: flip one payload bit in flight; the receiving controller's
  // CRC check catches the mismatch and discards the frame. Frames carrying
  // actual payload bytes exercise the real CRC-15 machinery; size-only
  // frames model the same detected-and-discarded outcome directly.
  --corrupt_pending_;
  if (!frame.payload.empty()) {
    const std::uint16_t expected = util::crc15_can(frame.payload);
    std::vector<std::uint8_t> mangled = frame.payload;
    mangled[0] ^= 0x01;
    if (util::crc15_can(mangled) == expected) return false;  // undetectable (never for CRC-15)
  }
  ++fault_corrupted_;
  if (metrics_) metrics_->add(fault_corrupted_metric_);
  return true;
}

void Bus::deliver(const Frame& frame) {
  if (drop_pending_ > 0 || corrupt_pending_ > 0) {
    if (consume_delivery_fault(frame)) return;
  }
  ++delivered_;
  delivered_bytes_ += frame.payload_size;
  const sim::Time latency = sim_->now() - frame.created;
  latency_s_.add(latency.to_seconds());
  if (metrics_) {
    metrics_->add(frames_metric_);
    metrics_->add(bytes_metric_, frame.payload_size);
    metrics_->observe(latency_metric_, latency.to_us());
    metrics_->set(utilization_metric_, utilization());
  }
  for (const auto& r : receivers_) r(frame, sim_->now());
}

void Bus::attach_observer(obs::MetricsRegistry& registry) {
  const std::string base = "net." + name_ + ".";
  metrics_ = &registry;
  frames_metric_ = registry.counter(base + "frames");
  bytes_metric_ = registry.counter(base + "payload_bytes");
  latency_metric_ = registry.histogram(base + "frame_latency_us", 0.0, 1e5, 64);
  utilization_metric_ = registry.gauge(base + "utilization");
  fault_dropped_metric_ = registry.counter(base + "fault.dropped");
  fault_corrupted_metric_ = registry.counter(base + "fault.corrupted");
  busoff_rejected_metric_ = registry.counter(base + "fault.busoff_rejected");
}

}  // namespace ev::network
