#include "ev/network/flexray.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ev::network {

std::size_t FlexRayBus::frame_bits(std::size_t payload_bytes) noexcept {
  // 8 bytes header+trailer with the payload, each byte preceded by a 2-bit
  // byte-start sequence, plus transmission start/end sequences (~14 bits).
  return (5 + payload_bytes + 3) * 10 + 14;
}

FlexRayBus::FlexRayBus(sim::Simulator& sim, std::string name, FlexRayConfig config,
                       double bit_rate_bps)
    : Bus(sim, std::move(name), bit_rate_bps), config_(std::move(config)) {
  slot_s_ = static_cast<double>(frame_bits(config_.static_payload_bytes)) / bit_rate() +
            2e-6;  // action-point offset margin
  static_segment_s_ = slot_s_ * static_cast<double>(config_.static_slots.size());
  cycle_s_ = static_segment_s_ +
             static_cast<double>(config_.minislot_count) * config_.minislot_s + config_.nit_s;
  static_buffer_.resize(config_.static_slots.size());
  for (std::size_t i = 0; i < config_.static_slots.size(); ++i) {
    const auto [it, inserted] = static_index_.emplace(config_.static_slots[i].frame_id, i);
    if (!inserted)
      throw std::invalid_argument("FlexRayBus: duplicate frame id in static schedule");
  }
}

bool FlexRayBus::do_send(Frame frame) {
  if (frame.created == sim::Time{}) frame.created = simulator().now();
  frame.sequence = next_sequence();
  const auto it = static_index_.find(frame.id);
  if (it != static_index_.end()) {
    frame.payload_size = config_.static_slots[it->second].payload_bytes;
    static_buffer_[it->second] = std::move(frame);
    return true;
  }
  // Dynamic segment: the frame must fit in the minislot budget of one cycle.
  const double tx_s = static_cast<double>(frame_bits(frame.payload_size)) / bit_rate();
  const double dyn_s = static_cast<double>(config_.minislot_count) * config_.minislot_s;
  if (tx_s > dyn_s) return false;
  dynamic_queue_.push_back(std::move(frame));
  return true;
}

void FlexRayBus::start(sim::Time start) {
  if (started_) return;
  started_ = true;
  simulator().schedule_periodic(start, sim::Time::seconds(cycle_s_), [this] { run_cycle(); });
}

void FlexRayBus::run_cycle() {
  // --- Static segment: each slot fires at its fixed offset -----------------
  for (std::size_t i = 0; i < static_buffer_.size(); ++i) {
    if (!static_buffer_[i]) continue;
    Frame frame = *static_buffer_[i];
    static_buffer_[i].reset();
    const double offset_s = slot_s_ * static_cast<double>(i);
    const double tx_s =
        static_cast<double>(frame_bits(config_.static_payload_bytes)) / bit_rate();
    account_busy(sim::Time::seconds(tx_s));
    simulator().schedule_in(sim::Time::seconds(offset_s + tx_s),
                            [this, frame = std::move(frame)] { deliver(frame); });
  }

  // --- Dynamic segment: ascending id, minislot-counted ----------------------
  std::sort(dynamic_queue_.begin(), dynamic_queue_.end(), [](const Frame& a, const Frame& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.sequence < b.sequence;
  });
  double used_s = 0.0;
  const double dyn_budget_s =
      static_cast<double>(config_.minislot_count) * config_.minislot_s;
  std::size_t served = 0;
  for (const Frame& frame : dynamic_queue_) {
    const double tx_s = static_cast<double>(frame_bits(frame.payload_size)) / bit_rate();
    // A dynamic frame occupies a whole number of minislots.
    const double occupied_s =
        std::ceil(tx_s / config_.minislot_s) * config_.minislot_s;
    if (used_s + occupied_s > dyn_budget_s) break;  // id too large for what remains
    const double offset_s = static_segment_s_ + used_s;
    account_busy(sim::Time::seconds(tx_s));
    Frame copy = frame;
    simulator().schedule_in(sim::Time::seconds(offset_s + tx_s),
                            [this, copy = std::move(copy)] { deliver(copy); });
    used_s += occupied_s;
    ++served;
  }
  dynamic_queue_.erase(dynamic_queue_.begin(),
                       dynamic_queue_.begin() + static_cast<std::ptrdiff_t>(served));
}

}  // namespace ev::network
