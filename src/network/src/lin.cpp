#include "ev/network/lin.h"

#include <stdexcept>

namespace ev::network {

LinBus::LinBus(sim::Simulator& sim, std::string name, std::vector<LinSlot> schedule,
               double slot_time_s, double bit_rate_bps)
    : Bus(sim, std::move(name), bit_rate_bps),
      schedule_(std::move(schedule)),
      slot_time_s_(slot_time_s) {
  if (schedule_.empty()) throw std::invalid_argument("LinBus: schedule table is empty");
  for (const auto& slot : schedule_) {
    if (slot.payload_bytes == 0 || slot.payload_bytes > 8)
      throw std::invalid_argument("LinBus: payload must be 1..8 bytes");
    const double frame_time = static_cast<double>(frame_bits(slot.payload_bytes)) / bit_rate();
    if (frame_time > slot_time_s)
      throw std::invalid_argument("LinBus: slot time shorter than frame time");
  }
  buffered_.resize(schedule_.size());
}

std::size_t LinBus::frame_bits(std::size_t payload_bytes) noexcept {
  // Header: break (14) + sync (10) + protected id (10). Response: n data
  // bytes + checksum, each as a UART byte (10 bits).
  return 34 + (payload_bytes + 1) * 10;
}

bool LinBus::do_send(Frame frame) {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (schedule_[i].frame_id == frame.id) {
      if (frame.created == sim::Time{}) frame.created = simulator().now();
      frame.sequence = next_sequence();
      frame.payload_size = schedule_[i].payload_bytes;
      buffered_[i] = std::move(frame);
      return true;
    }
  }
  return false;  // no slot configured for this id
}

void LinBus::start(sim::Time start) {
  if (started_) return;
  started_ = true;
  simulator().schedule_periodic(start, sim::Time::seconds(slot_time_s_), [this] {
    run_slot(next_slot_);
    next_slot_ = (next_slot_ + 1) % schedule_.size();
  });
}

void LinBus::run_slot(std::size_t index) {
  const LinSlot& slot = schedule_[index];
  if (!buffered_[index]) return;  // header answered by nobody: bus idles
  Frame frame = *buffered_[index];
  buffered_[index].reset();
  const sim::Time tx = tx_time(frame_bits(slot.payload_bytes));
  account_busy(tx);
  simulator().schedule_in(tx, [this, frame = std::move(frame)] { deliver(frame); });
}

}  // namespace ev::network
