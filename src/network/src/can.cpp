#include "ev/network/can.h"

#include <algorithm>
#include <cmath>

namespace ev::network {

CanBus::CanBus(sim::Simulator& sim, std::string name, double bit_rate_bps)
    : Bus(sim, std::move(name), bit_rate_bps) {}

std::size_t CanBus::frame_bits(std::size_t payload_bytes) noexcept {
  // Standard frame: SOF(1) + ID(11) + RTR(1) + control(6) + data(8n) +
  // CRC(15) + CRC del(1) + ACK(2) + EOF(7) + IFS(3) = 47 + 8n, of which
  // 34 + 8n bits are subject to stuffing (worst case one stuff bit per 4).
  const std::size_t n = payload_bytes;
  return 47 + 8 * n + (34 + 8 * n - 1) / 4;
}

bool CanBus::do_send(Frame frame) {
  if (frame.payload_size > 8) return false;
  if (frame.created == sim::Time{}) frame.created = simulator().now();
  frame.sequence = next_sequence();
  pending_.push_back(std::move(frame));
  try_start_transmission();
  return true;
}

void CanBus::try_start_transmission() {
  if (busy_ || pending_.empty()) return;
  // Arbitration: lowest identifier wins; FIFO among equal identifiers.
  auto winner = std::min_element(pending_.begin(), pending_.end(),
                                 [](const Frame& a, const Frame& b) {
                                   if (a.id != b.id) return a.id < b.id;
                                   return a.sequence < b.sequence;
                                 });
  transmitting_ = std::move(*winner);
  pending_.erase(winner);
  busy_ = true;
  const sim::Time tx = tx_time(frame_bits(transmitting_->payload_size));
  account_busy(tx);
  simulator().schedule_in(tx, [this] { finish_transmission(); });
}

void CanBus::finish_transmission() {
  deliver(*transmitting_);
  transmitting_.reset();
  busy_ = false;
  try_start_transmission();
}

std::vector<CanResponseTime> can_response_times(const std::vector<CanMessageSpec>& messages,
                                                double bit_rate_bps) {
  const double tau_bit = 1.0 / bit_rate_bps;
  auto tx_of = [&](const CanMessageSpec& m) {
    return static_cast<double>(CanBus::frame_bits(m.payload_bytes)) * tau_bit;
  };

  std::vector<CanMessageSpec> sorted = messages;
  std::sort(sorted.begin(), sorted.end(),
            [](const CanMessageSpec& a, const CanMessageSpec& b) { return a.id < b.id; });

  std::vector<CanResponseTime> results;
  results.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const CanMessageSpec& mi = sorted[i];
    const double ci = tx_of(mi);
    // Blocking: the longest lower-priority frame that may have started.
    double blocking = 0.0;
    for (std::size_t j = i + 1; j < sorted.size(); ++j)
      blocking = std::max(blocking, tx_of(sorted[j]));

    // Fixed point on the queuing delay w.
    double w = blocking;
    bool converged = false;
    for (int iter = 0; iter < 10000; ++iter) {
      double w_next = blocking;
      for (std::size_t j = 0; j < i; ++j) {
        const CanMessageSpec& mj = sorted[j];
        w_next += std::ceil((w + mj.jitter_s + tau_bit) / mj.period_s) * tx_of(mj);
      }
      if (std::fabs(w_next - w) < 1e-12) {
        w = w_next;
        converged = true;
        break;
      }
      w = w_next;
      if (w > 10.0 * mi.period_s) break;  // clearly diverging
    }
    CanResponseTime r;
    r.id = mi.id;
    r.worst_case_s = mi.jitter_s + w + ci;
    r.schedulable = converged && r.worst_case_s <= mi.period_s;
    results.push_back(r);
  }
  return results;
}

}  // namespace ev::network
