#include "ev/network/can.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ev::network {

CanBus::CanBus(sim::Simulator& sim, std::string name, double bit_rate_bps)
    : Bus(sim, std::move(name), bit_rate_bps) {}

std::size_t CanBus::frame_bits(std::size_t payload_bytes) noexcept {
  // Standard frame: SOF(1) + ID(11) + RTR(1) + control(6) + data(8n) +
  // CRC(15) + CRC del(1) + ACK(2) + EOF(7) + IFS(3) = 47 + 8n, of which
  // 34 + 8n bits are subject to stuffing (worst case one stuff bit per 4).
  const std::size_t n = payload_bytes;
  return 47 + 8 * n + (34 + 8 * n - 1) / 4;
}

bool CanBus::do_send(Frame frame) {
  if (frame.payload_size > 8) return false;
  if (frame.created == sim::Time{}) frame.created = simulator().now();
  frame.sequence = next_sequence();
  pending_.push_back(std::move(frame));
  try_start_transmission();
  return true;
}

void CanBus::try_start_transmission() {
  if (busy_ || pending_.empty()) return;
  // Arbitration: lowest identifier wins; FIFO among equal identifiers.
  auto winner = std::min_element(pending_.begin(), pending_.end(),
                                 [](const Frame& a, const Frame& b) {
                                   if (a.id != b.id) return a.id < b.id;
                                   return a.sequence < b.sequence;
                                 });
  transmitting_ = std::move(*winner);
  pending_.erase(winner);
  busy_ = true;
  const sim::Time tx = tx_time(frame_bits(transmitting_->payload_size));
  if (error_armed_) {
    if (const std::optional<sim::Time> hit = next_error_within(tx)) {
      // The frame dies `*hit` into the attempt; the bus then signals the
      // error flag before arbitration reopens and the frame retransmits.
      const sim::Time recovery = *hit + tx_time(kErrorRecoveryBits);
      ++fault_errors_;
      if (observer() != nullptr) observer()->add(fault_errors_metric_);
      account_busy(recovery);
      simulator().schedule_in(recovery, [this] { abort_transmission(); });
      return;
    }
  }
  account_busy(tx);
  simulator().schedule_in(tx, [this] { finish_transmission(); });
}

void CanBus::finish_transmission() {
  deliver(*transmitting_);
  transmitting_.reset();
  busy_ = false;
  try_start_transmission();
}

void CanBus::abort_transmission() {
  // CAN automatic retransmission: the destroyed frame re-enters arbitration
  // keeping its original sequence (and hence its FIFO position among equal
  // identifiers) — errors delay frames, they never drop them.
  pending_.push_back(std::move(*transmitting_));
  transmitting_.reset();
  busy_ = false;
  try_start_transmission();
}

void CanBus::arm_error_model(const CanErrorModel& model) {
  error_model_ = model;
  error_armed_ = model.armed();
  error_rng_ = util::Rng(model.seed);
  next_error_s_ = std::numeric_limits<double>::infinity();
  if (model.poisson_rate_per_s > 0.0)
    next_error_s_ = simulator().now().to_seconds() +
                    error_rng_.exponential(model.poisson_rate_per_s);
  if (error_armed_ && observer() != nullptr && fault_errors_metric_ == obs::kInvalidId)
    fault_errors_metric_ = observer()->counter("net." + name() + ".fault.errors");
}

std::optional<sim::Time> CanBus::next_error_within(sim::Time tx) {
  const double now_s = simulator().now().to_seconds();
  const double tx_s = tx.to_seconds();
  double hit_s = std::numeric_limits<double>::infinity();
  if (error_model_.poisson_rate_per_s > 0.0) {
    // Arrivals that fell while the bus was idle hit no frame; advancing by
    // fresh exponential gaps keeps the process Poisson on the wire clock.
    while (next_error_s_ < now_s)
      next_error_s_ += error_rng_.exponential(error_model_.poisson_rate_per_s);
    if (next_error_s_ < now_s + tx_s) {
      hit_s = next_error_s_ - now_s;
      next_error_s_ += error_rng_.exponential(error_model_.poisson_rate_per_s);
    }
  }
  if (error_model_.per_attempt_prob > 0.0 &&
      error_rng_.bernoulli(error_model_.per_attempt_prob))
    // A CRC-detected corruption surfaces at the end of the frame.
    hit_s = std::min(hit_s, tx_s);
  if (!std::isfinite(hit_s)) return std::nullopt;
  return sim::Time::seconds(hit_s);
}

std::vector<CanResponseTime> can_response_times(const std::vector<CanMessageSpec>& messages,
                                                double bit_rate_bps) {
  return can_response_times(messages, bit_rate_bps, 0.0, 0);
}

std::vector<CanResponseTime> can_response_times(const std::vector<CanMessageSpec>& messages,
                                                double bit_rate_bps,
                                                double error_overhead_s, int errors) {
  const double tau_bit = 1.0 / bit_rate_bps;
  auto tx_of = [&](const CanMessageSpec& m) {
    return static_cast<double>(CanBus::frame_bits(m.payload_bytes)) * tau_bit;
  };
  // k error recoveries lengthen every level-i busy period by k*O (Broster
  // 2002). With zero errors this term is +0.0, leaving the error-free fixed
  // point bit-identical.
  const double recovery = error_overhead_s * static_cast<double>(errors);

  std::vector<CanMessageSpec> sorted = messages;
  std::sort(sorted.begin(), sorted.end(),
            [](const CanMessageSpec& a, const CanMessageSpec& b) { return a.id < b.id; });

  std::vector<CanResponseTime> results;
  results.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const CanMessageSpec& mi = sorted[i];
    const double ci = tx_of(mi);
    // Blocking: the longest lower-priority frame that may have started.
    double blocking = 0.0;
    for (std::size_t j = i + 1; j < sorted.size(); ++j)
      blocking = std::max(blocking, tx_of(sorted[j]));

    // Fixed point on the queuing delay w.
    double w = blocking + recovery;
    bool converged = false;
    for (int iter = 0; iter < 10000; ++iter) {
      double w_next = blocking + recovery;
      for (std::size_t j = 0; j < i; ++j) {
        const CanMessageSpec& mj = sorted[j];
        w_next += std::ceil((w + mj.jitter_s + tau_bit) / mj.period_s) * tx_of(mj);
      }
      if (std::fabs(w_next - w) < 1e-12) {
        w = w_next;
        converged = true;
        break;
      }
      w = w_next;
      if (w > 10.0 * mi.period_s) break;  // clearly diverging
    }
    CanResponseTime r;
    r.id = mi.id;
    r.worst_case_s = mi.jitter_s + w + ci;
    r.schedulable = converged && r.worst_case_s <= mi.period_s;
    results.push_back(r);
  }
  return results;
}

}  // namespace ev::network
