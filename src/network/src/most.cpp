#include "ev/network/most.h"

#include <stdexcept>

namespace ev::network {

MostBus::MostBus(sim::Simulator& sim, std::string name, std::vector<MostStream> streams,
                 double bit_rate_bps, double frame_rate_hz)
    : Bus(sim, std::move(name), bit_rate_bps), frame_rate_hz_(frame_rate_hz) {
  frame_bytes_ = static_cast<std::size_t>(bit_rate_bps / frame_rate_hz / 8.0);
  for (const auto& s : streams) {
    if (!streams_.emplace(s.stream_id, s).second)
      throw std::invalid_argument("MostBus: duplicate stream id");
    sync_bytes_ += s.bytes_per_frame;
  }
  if (sync_bytes_ > frame_bytes_)
    throw std::invalid_argument("MostBus: synchronous reservation exceeds frame size");
}

std::size_t MostBus::async_bytes_per_frame() const noexcept {
  // Control channel and management overhead take a fixed share (~6 bytes of
  // a 64-byte MOST25 frame).
  const std::size_t overhead = frame_bytes_ / 10;
  return frame_bytes_ - sync_bytes_ - overhead;
}

bool MostBus::do_send(Frame frame) {
  if (frame.created == sim::Time{}) frame.created = simulator().now();
  frame.sequence = next_sequence();
  const auto it = streams_.find(frame.id);
  if (it != streams_.end()) {
    // Isochronous: the sample block is carried in the reserved bytes of the
    // next frame and arrives one frame period later.
    account_busy(tx_time(it->second.bytes_per_frame * 8));
    simulator().schedule_in(sim::Time::seconds(frame_period_s()),
                            [this, frame = std::move(frame)] { deliver(frame); });
    return true;
  }
  async_queue_.push_back(std::move(frame));
  return true;
}

void MostBus::start(sim::Time start) {
  if (started_) return;
  started_ = true;
  simulator().schedule_periodic(start, sim::Time::seconds(frame_period_s()),
                                [this] { run_frame(); });
}

void MostBus::run_frame() {
  std::size_t budget = async_bytes_per_frame();
  while (!async_queue_.empty() && budget > 0) {
    Frame& head = async_queue_.front();
    const std::size_t remaining = head.payload_size - async_progress_bytes_;
    if (remaining > budget) {
      async_progress_bytes_ += budget;
      account_busy(tx_time(budget * 8));
      budget = 0;
      break;
    }
    budget -= remaining;
    account_busy(tx_time(remaining * 8));
    Frame done = std::move(head);
    async_queue_.erase(async_queue_.begin());
    async_progress_bytes_ = 0;
    // Last fragment lands at the end of this frame period.
    simulator().schedule_in(sim::Time::seconds(frame_period_s()),
                            [this, done = std::move(done)] { deliver(done); });
  }
}

}  // namespace ev::network
