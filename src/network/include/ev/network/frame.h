/// \file frame.h
/// Frame and node abstractions shared by all in-vehicle bus models (CAN,
/// LIN, FlexRay, MOST, Ethernet) of the paper's Fig. 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ev/sim/time.h"

namespace ev::network {

/// Identifies an attached controller (ECU communication endpoint).
using NodeId = std::uint32_t;

/// A frame in flight. `id` doubles as the arbitration priority on CAN
/// (lower wins) and as the stream/slot identifier on scheduled buses.
struct Frame {
  std::uint32_t id = 0;          ///< Message identifier / priority.
  NodeId source = 0;             ///< Sending node.
  std::size_t payload_size = 8;  ///< Payload bytes (protocol limits apply).
  std::vector<std::uint8_t> payload;  ///< Optional payload content.
  sim::Time created;             ///< When the sender queued the frame.
  std::uint64_t sequence = 0;    ///< Monotonic per-bus sequence (set by the bus).
};

/// Delivery callback: invoked at the simulation time the frame's last bit
/// arrives at the receivers.
using DeliveryHandler = std::function<void(const Frame&, sim::Time delivered)>;

}  // namespace ev::network
