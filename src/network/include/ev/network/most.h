/// \file most.h
/// Media Oriented Systems Transport model: the infotainment ring of Fig. 1.
/// MOST divides a fixed 44.1 kHz frame into a synchronous region (reserved
/// streaming bandwidth, constant latency) and an asynchronous region
/// (packet data, FCFS) — modelled here at the bandwidth-allocation level.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ev/network/bus.h"

namespace ev::network {

/// A reserved synchronous stream.
struct MostStream {
  std::uint32_t stream_id = 0;    ///< Frame id carrying this stream.
  std::size_t bytes_per_frame = 4;  ///< Reserved bytes in every MOST frame.
};

/// MOST25-style ring: 25 Mbit/s gross, 512-bit frames at 44.1 kHz.
class MostBus : public Bus {
 public:
  MostBus(sim::Simulator& sim, std::string name, std::vector<MostStream> streams,
          double bit_rate_bps = 25e6, double frame_rate_hz = 44100.0);

  /// Starts the ring's frame clock.
  void start(sim::Time start = {});

  /// Frame period [s].
  [[nodiscard]] double frame_period_s() const noexcept { return 1.0 / frame_rate_hz_; }
  /// Bytes of every frame reserved for synchronous streams.
  [[nodiscard]] std::size_t synchronous_bytes() const noexcept { return sync_bytes_; }
  /// Bytes per frame available to asynchronous traffic.
  [[nodiscard]] std::size_t async_bytes_per_frame() const noexcept;
  /// Whether \p id has a reserved synchronous stream (constant latency path).
  [[nodiscard]] bool is_synchronous(std::uint32_t id) const {
    return streams_.count(id) > 0;
  }

 protected:
  /// Synchronous ids deliver after exactly one frame period (isochronous
  /// pipeline); other ids use the asynchronous region, which serves a
  /// limited byte budget per frame FCFS.
  bool do_send(Frame frame) override;

 private:
  void run_frame();

  std::map<std::uint32_t, MostStream> streams_;
  double frame_rate_hz_;
  std::size_t frame_bytes_;  ///< Total bytes per MOST frame.
  std::size_t sync_bytes_ = 0;
  std::vector<Frame> async_queue_;
  std::size_t async_progress_bytes_ = 0;  ///< Bytes of queue head already carried.
  bool started_ = false;
};

}  // namespace ev::network
