/// \file can.h
/// Controller Area Network model: event-triggered, non-destructive
/// priority arbitration (lowest identifier wins), non-preemptive
/// transmission, broadcast delivery. Includes the classic worst-case
/// response-time analysis for periodic CAN traffic, the tool that exposes
/// why unbounded event-triggered buses struggle with the determinism the
/// paper demands for EV control traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ev/network/bus.h"

namespace ev::network {

/// CAN 2.0A bus. Payload limited to 8 bytes; frames exceeding it are
/// rejected by send().
class CanBus : public Bus {
 public:
  /// \p bit_rate_bps is the nominal rate (classic high-speed CAN: 500 kbit/s;
  /// the protocol maximum is 1 Mbit/s).
  CanBus(sim::Simulator& sim, std::string name, double bit_rate_bps = 500e3);

  /// Number of frames waiting for arbitration right now.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return pending_.size(); }

  /// On-the-wire size of a CAN frame with \p payload_bytes of data,
  /// including worst-case bit stuffing, in bits (standard 11-bit identifier).
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bytes) noexcept;

 protected:
  bool do_send(Frame frame) override;

 private:
  void try_start_transmission();
  void finish_transmission();

  std::vector<Frame> pending_;  // arbitration pool, winner = min id then FIFO
  std::optional<Frame> transmitting_;
  bool busy_ = false;
};

/// One periodic message for the offline response-time analysis.
struct CanMessageSpec {
  std::uint32_t id = 0;          ///< Identifier (priority, lower wins).
  std::size_t payload_bytes = 8; ///< Data length.
  double period_s = 0.01;        ///< Activation period.
  double jitter_s = 0.0;         ///< Release jitter.
};

/// Result of the analysis for one message.
struct CanResponseTime {
  std::uint32_t id = 0;
  double worst_case_s = 0.0;  ///< Upper bound on queuing + transmission time.
  bool schedulable = true;    ///< False if the bound exceeded the period (busy
                              ///< period diverges within one period).
};

/// Classic worst-case response-time analysis (Tindell; Davis et al. 2007
/// revision): R_i = J_i + w_i + C_i with the blocking + higher-priority
/// interference fixed point for w_i. \p bit_rate_bps must match the bus.
[[nodiscard]] std::vector<CanResponseTime> can_response_times(
    const std::vector<CanMessageSpec>& messages, double bit_rate_bps);

}  // namespace ev::network
