/// \file can.h
/// Controller Area Network model: event-triggered, non-destructive
/// priority arbitration (lowest identifier wins), non-preemptive
/// transmission, broadcast delivery. Includes the classic worst-case
/// response-time analysis for periodic CAN traffic, the tool that exposes
/// why unbounded event-triggered buses struggle with the determinism the
/// paper demands for EV control traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ev/network/bus.h"
#include "ev/util/rng.h"

namespace ev::network {

/// Seeded stochastic transmission-error process for a CAN bus, the
/// simulation side of the E24 probabilistic timing analysis. Both channels
/// may be active at once:
///  - Poisson: bit errors arrive at `poisson_rate_per_s` on the wire clock;
///    an arrival during a transmission destroys that frame.
///  - Bernoulli: each transmission attempt independently errors with
///    `per_attempt_prob` (detected at the end of the frame, the worst case).
/// An errored frame pays the 31-bit error-flag recovery and re-enters
/// arbitration with its original FIFO position (CAN automatic
/// retransmission) — errors add latency, they never lose frames.
struct CanErrorModel {
  double poisson_rate_per_s = 0.0;  ///< Errors per second (>= 0).
  double per_attempt_prob = 0.0;    ///< Per-attempt error probability [0, 1].
  std::uint64_t seed = 1;           ///< Seed of the private error Rng.

  [[nodiscard]] bool armed() const noexcept {
    return poisson_rate_per_s > 0.0 || per_attempt_prob > 0.0;
  }
};

/// CAN 2.0A bus. Payload limited to 8 bytes; frames exceeding it are
/// rejected by send().
class CanBus : public Bus {
 public:
  /// \p bit_rate_bps is the nominal rate (classic high-speed CAN: 500 kbit/s;
  /// the protocol maximum is 1 Mbit/s).
  CanBus(sim::Simulator& sim, std::string name, double bit_rate_bps = 500e3);

  /// Number of frames waiting for arbitration right now.
  [[nodiscard]] std::size_t queue_depth() const noexcept { return pending_.size(); }

  /// On-the-wire size of a CAN frame with \p payload_bytes of data,
  /// including worst-case bit stuffing, in bits (standard 11-bit identifier).
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bytes) noexcept;

  /// Active error flag (6) + error delimiter (8) + intermission (3) plus the
  /// worst-case echo of superposed flags — the classic 31-bit recovery
  /// overhead Broster's analysis charges per error.
  static constexpr std::size_t kErrorRecoveryBits = 31;

  /// Arms (or, with an all-zero model, disarms) the seeded error process.
  /// With no model ever armed the transmission path pays one untaken branch
  /// — behaviour and observable state stay bit-identical to a plain bus.
  /// Registers counter `net.<name>.fault.errors` when an observer is
  /// attached and the model is armed.
  void arm_error_model(const CanErrorModel& model);

  /// Transmission attempts destroyed by the armed error model (each one
  /// caused exactly one retransmission).
  [[nodiscard]] std::size_t fault_error_count() const noexcept { return fault_errors_; }

 protected:
  bool do_send(Frame frame) override;

 private:
  void try_start_transmission();
  void finish_transmission();
  void abort_transmission();
  /// First error striking a transmission of length \p tx starting now, as an
  /// offset from now, or unset when this attempt goes through clean.
  [[nodiscard]] std::optional<sim::Time> next_error_within(sim::Time tx);

  std::vector<Frame> pending_;  // arbitration pool, winner = min id then FIFO
  std::optional<Frame> transmitting_;
  bool busy_ = false;
  // Injected-error state (inert until arm_error_model).
  bool error_armed_ = false;
  CanErrorModel error_model_;
  util::Rng error_rng_;
  double next_error_s_ = 0.0;  // absolute time of the next Poisson arrival
  std::size_t fault_errors_ = 0;
  obs::MetricId fault_errors_metric_ = obs::kInvalidId;
};

/// One periodic message for the offline response-time analysis.
struct CanMessageSpec {
  std::uint32_t id = 0;          ///< Identifier (priority, lower wins).
  std::size_t payload_bytes = 8; ///< Data length.
  double period_s = 0.01;        ///< Activation period.
  double jitter_s = 0.0;         ///< Release jitter.
};

/// Result of the analysis for one message.
struct CanResponseTime {
  std::uint32_t id = 0;
  double worst_case_s = 0.0;  ///< Upper bound on queuing + transmission time.
  bool schedulable = true;    ///< False if the bound exceeded the period (busy
                              ///< period diverges within one period).
};

/// Classic worst-case response-time analysis (Tindell; Davis et al. 2007
/// revision): R_i = J_i + w_i + C_i with the blocking + higher-priority
/// interference fixed point for w_i. \p bit_rate_bps must match the bus.
[[nodiscard]] std::vector<CanResponseTime> can_response_times(
    const std::vector<CanMessageSpec>& messages, double bit_rate_bps);

/// Broster-style fault-aware variant: the busy period additionally absorbs
/// \p errors error recoveries of \p error_overhead_s each (error flag plus
/// the retransmission of the longest frame), i.e. R_i(k) with
/// w = B_i + k*O + interference. With (0.0, 0) this is bit-identical to the
/// error-free analysis above — the probabilistic pass degenerates to the
/// deterministic bound by construction.
[[nodiscard]] std::vector<CanResponseTime> can_response_times(
    const std::vector<CanMessageSpec>& messages, double bit_rate_bps,
    double error_overhead_s, int errors);

}  // namespace ev::network
