/// \file bus.h
/// Common interface of the in-vehicle bus models. Every bus is a broadcast
/// medium driven by the discrete-event simulator; concrete classes implement
/// the protocol-specific media access (arbitration, schedule table, TDMA,
/// switching) that determines latency and determinism.
#pragma once

#include <cstddef>
#include <string>

#include "ev/network/frame.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"
#include "ev/util/stats.h"

namespace ev::network {

/// Abstract broadcast bus.
class Bus {
 public:
  /// \p sim must outlive the bus.
  Bus(sim::Simulator& sim, std::string name, double bit_rate_bps);
  virtual ~Bus() = default;
  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Queues \p frame for transmission from its source node. Returns false if
  /// the protocol rejects it (payload too large, no slot assigned, ...).
  /// If frame.created is unset (zero) it is stamped with the current time;
  /// gateways keep the original stamp so end-to-end latency spans hops.
  virtual bool send(Frame frame) = 0;

  /// Registers a broadcast receiver; every delivered frame is passed to all
  /// subscribers (nodes filter by id themselves, as real controllers do with
  /// acceptance masks).
  void subscribe(DeliveryHandler handler) { receivers_.push_back(std::move(handler)); }

  /// Bus name (for reports).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Nominal bit rate [bit/s].
  [[nodiscard]] double bit_rate() const noexcept { return bit_rate_bps_; }
  /// Fraction of elapsed simulation time the medium was busy, in [0,1].
  [[nodiscard]] double utilization() const noexcept;
  /// Frames delivered so far.
  [[nodiscard]] std::size_t delivered_count() const noexcept { return delivered_; }
  /// Queue-to-delivery latency distribution [s].
  [[nodiscard]] const util::SampleSeries& latency() const noexcept { return latency_s_; }
  /// Total payload bytes delivered (goodput accounting).
  [[nodiscard]] std::size_t delivered_payload_bytes() const noexcept {
    return delivered_bytes_;
  }

  /// Attaches observability. Registers (under the bus name):
  ///  - counter   `net.<name>.frames` — frames delivered
  ///  - counter   `net.<name>.payload_bytes` — goodput
  ///  - histogram `net.<name>.frame_latency_us` — queue-to-delivery latency
  ///  - gauge     `net.<name>.utilization` — busy fraction, updated on every
  ///    delivery (bus-load gauge)
  /// Ids are interned here; delivery stays allocation-free. \p registry must
  /// outlive the bus's use of it.
  void attach_observer(obs::MetricsRegistry& registry);

 protected:
  /// Transmission time of \p bits at the nominal rate.
  [[nodiscard]] sim::Time tx_time(std::size_t bits) const noexcept;
  /// Invokes all receivers and records latency/stat accounting.
  void deliver(const Frame& frame);
  /// Accounts \p busy time of the medium.
  void account_busy(sim::Time busy) noexcept { busy_ += busy; }
  /// The simulation kernel.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  /// Stamps and returns the next frame sequence number.
  [[nodiscard]] std::uint64_t next_sequence() noexcept { return seq_++; }

 private:
  sim::Simulator* sim_;
  std::string name_;
  double bit_rate_bps_;
  std::vector<DeliveryHandler> receivers_;
  sim::Time busy_{};
  std::size_t delivered_ = 0;
  std::size_t delivered_bytes_ = 0;
  util::SampleSeries latency_s_;
  std::uint64_t seq_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId frames_metric_ = obs::kInvalidId;
  obs::MetricId bytes_metric_ = obs::kInvalidId;
  obs::MetricId latency_metric_ = obs::kInvalidId;
  obs::MetricId utilization_metric_ = obs::kInvalidId;
};

}  // namespace ev::network
