/// \file bus.h
/// Common interface of the in-vehicle bus models. Every bus is a broadcast
/// medium driven by the discrete-event simulator; concrete classes implement
/// the protocol-specific media access (arbitration, schedule table, TDMA,
/// switching) that determines latency and determinism. The base class also
/// hosts the protocol-independent fault model (frame drop, payload
/// corruption caught by the delivery CRC check, transient bus-off) used by
/// the ev::faults injection layer; with no fault armed the hot paths pay one
/// untaken branch each.
#pragma once

#include <cstddef>
#include <string>

#include "ev/network/frame.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"
#include "ev/util/stats.h"

namespace ev::network {

/// Abstract broadcast bus.
class Bus {
 public:
  /// \p sim must outlive the bus.
  Bus(sim::Simulator& sim, std::string name, double bit_rate_bps);
  virtual ~Bus() = default;
  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Queues \p frame for transmission from its source node. Returns false if
  /// the protocol rejects it (payload too large, no slot assigned, ...) or
  /// the medium is in an injected bus-off recovery window.
  /// If frame.created is unset (zero) it is stamped with the current time;
  /// gateways keep the original stamp so end-to-end latency spans hops.
  bool send(Frame frame);

  /// Registers a broadcast receiver; every delivered frame is passed to all
  /// subscribers (nodes filter by id themselves, as real controllers do with
  /// acceptance masks).
  void subscribe(DeliveryHandler handler) { receivers_.push_back(std::move(handler)); }

  /// Bus name (for reports).
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Nominal bit rate [bit/s].
  [[nodiscard]] double bit_rate() const noexcept { return bit_rate_bps_; }
  /// Fraction of elapsed simulation time the medium was busy, in [0,1].
  [[nodiscard]] double utilization() const noexcept;
  /// Frames delivered so far.
  [[nodiscard]] std::size_t delivered_count() const noexcept { return delivered_; }
  /// Queue-to-delivery latency distribution [s].
  [[nodiscard]] const util::SampleSeries& latency() const noexcept { return latency_s_; }
  /// Total payload bytes delivered (goodput accounting).
  [[nodiscard]] std::size_t delivered_payload_bytes() const noexcept {
    return delivered_bytes_;
  }

  /// Attaches observability. Registers (under the bus name):
  ///  - counter   `net.<name>.frames` — frames delivered
  ///  - counter   `net.<name>.payload_bytes` — goodput
  ///  - histogram `net.<name>.frame_latency_us` — queue-to-delivery latency
  ///  - gauge     `net.<name>.utilization` — busy fraction, updated on every
  ///    delivery (bus-load gauge)
  ///  - counters  `net.<name>.fault.dropped` / `.fault.corrupted` /
  ///    `.fault.busoff_rejected` — injected-fault accounting
  /// Ids are interned here; delivery stays allocation-free. \p registry must
  /// outlive the bus's use of it.
  void attach_observer(obs::MetricsRegistry& registry);

  // --- fault injection (driven by ev::faults; zero-cost while unused) ------
  /// Drops the next \p frames deliveries silently (frame loss on the medium).
  void inject_drop(std::size_t frames) noexcept { drop_pending_ += frames; }
  /// Bit-corrupts the payload of the next \p frames deliveries. The delivery
  /// path recomputes the CRC-15 checksum, detects the mismatch, and discards
  /// the frame (the receiver-side CRC reaction every protocol shares).
  void inject_corruption(std::size_t frames) noexcept { corrupt_pending_ += frames; }
  /// Takes the medium offline: send() rejects every frame until \p recovery
  /// has elapsed (transient bus-off / error-passive recovery).
  void inject_bus_off(sim::Time recovery);
  /// True while an injected bus-off window is active.
  [[nodiscard]] bool bus_off() const noexcept;
  /// Frames discarded by injected drop faults.
  [[nodiscard]] std::size_t fault_dropped_count() const noexcept { return fault_dropped_; }
  /// Frames discarded after a CRC mismatch caused by injected corruption.
  [[nodiscard]] std::size_t fault_corrupted_count() const noexcept {
    return fault_corrupted_;
  }
  /// Sends rejected while the bus was in an injected bus-off window.
  [[nodiscard]] std::size_t busoff_rejected_count() const noexcept {
    return busoff_rejected_;
  }

 protected:
  /// Protocol-specific media access; called by send() once the fault gate
  /// has passed. Same contract as send().
  virtual bool do_send(Frame frame) = 0;
  /// Transmission time of \p bits at the nominal rate.
  [[nodiscard]] sim::Time tx_time(std::size_t bits) const noexcept;
  /// Invokes all receivers and records latency/stat accounting.
  void deliver(const Frame& frame);
  /// Accounts \p busy time of the medium.
  void account_busy(sim::Time busy) noexcept { busy_ += busy; }
  /// The simulation kernel.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  /// The registry attach_observer() wired up, or nullptr. Lets protocol
  /// subclasses register their own metrics lazily (e.g. only once a fault
  /// model is armed) without widening the default metric set.
  [[nodiscard]] obs::MetricsRegistry* observer() const noexcept { return metrics_; }
  /// Stamps and returns the next frame sequence number.
  [[nodiscard]] std::uint64_t next_sequence() noexcept { return seq_++; }

 private:
  /// Consumes one pending drop/corruption fault for \p frame; true when the
  /// frame must be discarded instead of delivered.
  bool consume_delivery_fault(const Frame& frame);

  sim::Simulator* sim_;
  std::string name_;
  double bit_rate_bps_;
  std::vector<DeliveryHandler> receivers_;
  sim::Time busy_{};
  std::size_t delivered_ = 0;
  std::size_t delivered_bytes_ = 0;
  util::SampleSeries latency_s_;
  std::uint64_t seq_ = 0;
  // Injected-fault state (all zero on the happy path).
  std::size_t drop_pending_ = 0;
  std::size_t corrupt_pending_ = 0;
  sim::Time bus_off_until_{};
  std::size_t fault_dropped_ = 0;
  std::size_t fault_corrupted_ = 0;
  std::size_t busoff_rejected_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId frames_metric_ = obs::kInvalidId;
  obs::MetricId bytes_metric_ = obs::kInvalidId;
  obs::MetricId latency_metric_ = obs::kInvalidId;
  obs::MetricId utilization_metric_ = obs::kInvalidId;
  obs::MetricId fault_dropped_metric_ = obs::kInvalidId;
  obs::MetricId fault_corrupted_metric_ = obs::kInvalidId;
  obs::MetricId busoff_rejected_metric_ = obs::kInvalidId;
};

}  // namespace ev::network
