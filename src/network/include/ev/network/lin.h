/// \file lin.h
/// Local Interconnect Network: the low-cost, master-scheduled sub-bus used
/// for body/comfort peripherals in Fig. 1. All communication follows the
/// master's schedule table — a miniature of the time-triggered paradigm at
/// 19.2 kbit/s.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ev/network/bus.h"

namespace ev::network {

/// One entry of the LIN master's schedule table.
struct LinSlot {
  std::uint32_t frame_id = 0;  ///< Protected identifier (0..59).
  NodeId publisher = 0;        ///< Node that answers the header with data.
  std::size_t payload_bytes = 8;  ///< 1..8 bytes.
};

/// LIN 2.x bus with a cyclically executed schedule table. Nodes publish by
/// calling send(); the frame is buffered and transmitted when the matching
/// slot comes up (send() outside a configured slot id fails).
class LinBus : public Bus {
 public:
  /// \p slot_time_s is the schedule-table time base per slot (must cover the
  /// longest frame; typical 10 ms).
  LinBus(sim::Simulator& sim, std::string name, std::vector<LinSlot> schedule,
         double slot_time_s = 0.01, double bit_rate_bps = 19200.0);

  /// Starts executing the schedule table at simulation time \p start.
  void start(sim::Time start = {});

  /// Length of one full table cycle [s].
  [[nodiscard]] double cycle_time_s() const noexcept {
    return slot_time_s_ * static_cast<double>(schedule_.size());
  }
  /// The schedule table.
  [[nodiscard]] const std::vector<LinSlot>& schedule() const noexcept { return schedule_; }

  /// On-the-wire bits of a LIN frame: header (break+sync+pid ~ 34 bits) plus
  /// response ((n+1) bytes with start/stop bits).
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bytes) noexcept;

 protected:
  /// Buffers the latest value for the frame's slot; the slot transmits the
  /// most recent buffered frame (LIN signals are state, not queues).
  bool do_send(Frame frame) override;

 private:
  void run_slot(std::size_t index);

  std::vector<LinSlot> schedule_;
  double slot_time_s_;
  std::vector<std::optional<Frame>> buffered_;  // per schedule slot
  std::size_t next_slot_ = 0;
  bool started_ = false;
};

}  // namespace ev::network
