/// \file flexray.h
/// FlexRay bus model ([12]): the hybrid protocol the paper highlights as the
/// deterministic backbone candidate — a TDMA *static segment* giving
/// time-triggered frames fixed slots each cycle, plus a minislot-arbitrated
/// *dynamic segment* for event-triggered traffic, at 10 Mbit/s.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ev/network/bus.h"

namespace ev::network {

/// Static-segment slot assignment.
struct FlexRaySlot {
  std::uint32_t frame_id = 0;   ///< Message carried in this slot.
  NodeId publisher = 0;         ///< Owning node.
  std::size_t payload_bytes = 16;  ///< Fixed static payload (all slots equal size).
};

/// Cycle-level configuration.
struct FlexRayConfig {
  std::vector<FlexRaySlot> static_slots;  ///< One entry per static slot, in order.
  std::size_t static_payload_bytes = 16;  ///< Uniform static slot payload size.
  std::size_t minislot_count = 40;        ///< Dynamic segment length in minislots.
  double minislot_s = 5e-6;               ///< Minislot duration.
  double nit_s = 50e-6;                   ///< Network idle time at cycle end.
};

/// FlexRay bus. Frames whose id has a static slot are state-buffered and
/// sent in their slot every cycle; all other ids contend for the dynamic
/// segment in priority (ascending id) order.
class FlexRayBus : public Bus {
 public:
  FlexRayBus(sim::Simulator& sim, std::string name, FlexRayConfig config,
             double bit_rate_bps = 10e6);

  /// Starts cycle execution at \p start.
  void start(sim::Time start = {});

  /// Communication-cycle length [s].
  [[nodiscard]] double cycle_time_s() const noexcept { return cycle_s_; }
  /// Static-segment length [s].
  [[nodiscard]] double static_segment_s() const noexcept { return static_segment_s_; }
  /// Configured slots.
  [[nodiscard]] const FlexRayConfig& config() const noexcept { return config_; }
  /// Dynamic frames waiting for minislots.
  [[nodiscard]] std::size_t dynamic_backlog() const noexcept { return dynamic_queue_.size(); }

  /// Encoded frame size: header (5 bytes) + payload + trailer (3 bytes),
  /// byte-start sequences (10 bits/byte) plus start/end sequences.
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bytes) noexcept;

 protected:
  /// Static ids: buffers the latest value (state semantics). Dynamic ids:
  /// queues the frame (event semantics). Fails if a dynamic payload exceeds
  /// what the whole dynamic segment can carry.
  bool do_send(Frame frame) override;

 private:
  void run_cycle();

  FlexRayConfig config_;
  double slot_s_;            ///< Static slot duration.
  double static_segment_s_;  ///< All static slots.
  double cycle_s_;           ///< Full cycle.
  std::map<std::uint32_t, std::size_t> static_index_;  ///< id -> slot position.
  std::vector<std::optional<Frame>> static_buffer_;
  std::vector<Frame> dynamic_queue_;
  bool started_ = false;
};

}  // namespace ev::network
