/// \file ethernet.h
/// Switched automotive Ethernet ([13],[14]): the 100 Mbit/s candidate
/// backbone for next-generation EVs. The model is a single store-and-forward
/// switch with per-port strict-priority egress queues, an optional AVB
/// credit-based shaper on the class-A queue, and an optional time-aware
/// gate schedule that turns the port into a time-triggered link — standard
/// Ethernet is non-deterministic, and these two extensions are exactly the
/// remedies the paper names.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "ev/network/bus.h"

namespace ev::network {

/// Traffic class of a stream, mapped to an egress priority queue.
enum class EthClass : std::uint8_t {
  kBestEffort = 0,     ///< Lowest priority.
  kAvbClassB = 4,
  kAvbClassA = 6,      ///< Credit-based shaped.
  kTimeTriggered = 7,  ///< Highest; gated by the time-aware schedule if present.
};

/// A gate window within the time-aware shaper cycle.
struct GateWindow {
  double offset_s = 0.0;    ///< Start within the cycle.
  double duration_s = 0.0;  ///< Window length.
  bool tt_only = true;      ///< True: only TT passes; false: everything but TT.
};

/// Time-aware shaper configuration for one egress port.
struct GateSchedule {
  double cycle_s = 0.001;            ///< Gating cycle.
  std::vector<GateWindow> windows;   ///< Non-overlapping, sorted by offset.
};

/// Stream routing entry: which egress ports a frame id fans out to, and its
/// traffic class.
struct EthRoute {
  std::vector<std::size_t> egress_ports;
  EthClass traffic_class = EthClass::kBestEffort;
};

/// Single full-duplex store-and-forward switch. Nodes attach to ports;
/// send() models the node's uplink transmission, the forwarding delay, and
/// the egress queuing/transmission toward every routed port.
class EthernetSwitch : public Bus {
 public:
  /// \p port_count ports, all at \p bit_rate_bps; \p forwarding_delay_s is
  /// the store-and-forward processing latency.
  EthernetSwitch(sim::Simulator& sim, std::string name, std::size_t port_count,
                 double bit_rate_bps = 100e6, double forwarding_delay_s = 4e-6);

  /// Binds \p node to \p port (the node's uplink).
  void attach(NodeId node, std::size_t port);

  /// Routes frame id \p id to \p route (destinations + class).
  void add_route(std::uint32_t id, EthRoute route);

  /// Enables the AVB credit-based shaper on the class-A queue of \p port
  /// with \p idle_slope_fraction of the line rate reserved.
  void enable_cbs(std::size_t port, double idle_slope_fraction = 0.75);

  /// Installs a time-aware gate schedule on \p port.
  void set_gate_schedule(std::size_t port, GateSchedule schedule);

  /// On-the-wire bits including preamble (8 B), header+FCS (18 B), padding
  /// to the 46-byte minimum payload, and interframe gap (12 B).
  [[nodiscard]] static std::size_t frame_bits(std::size_t payload_bytes) noexcept;

  /// Current depth of the egress queue at \p port across all priorities.
  [[nodiscard]] std::size_t egress_depth(std::size_t port) const;

 protected:
  /// Sends a frame from its source node's port through the switch. Fails if
  /// the source is not attached or the id has no route. Payload is clamped
  /// to the Ethernet minimum of 46 bytes for timing purposes.
  bool do_send(Frame frame) override;

 private:
  struct Egress {
    std::array<std::deque<Frame>, 8> queues;
    bool busy = false;
    // Credit-based shaper (class A queue only).
    bool cbs_enabled = false;
    double idle_slope = 0.0;   ///< bits/s of credit gain.
    double credit_bits = 0.0;
    sim::Time credit_updated{};
    std::optional<GateSchedule> gates;
    sim::EventId retry_event = 0;
  };

  void enqueue_egress(std::size_t port, Frame frame, EthClass cls);
  void service_port(std::size_t port);
  /// Whether priority \p prio may start a transmission of \p tx at \p now;
  /// if not, *next_try is set to the earliest time worth re-checking.
  [[nodiscard]] bool gate_allows(const Egress& e, int prio, sim::Time now, sim::Time tx,
                                 sim::Time* next_try) const;
  void update_credit(Egress& e, sim::Time now) const;

  std::map<NodeId, std::size_t> node_port_;
  std::map<std::uint32_t, EthRoute> routes_;
  std::vector<Egress> egress_;
  double forwarding_delay_s_;
};

}  // namespace ev::network
