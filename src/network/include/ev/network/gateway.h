/// \file gateway.h
/// Central gateway interconnecting heterogeneous buses (the hub of Fig. 1).
/// Subscribes to source buses and re-injects selected frames into target
/// buses after a store-and-forward processing delay, optionally translating
/// identifiers and payload sizes between protocols.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ev/network/bus.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace ev::network {

/// One routing rule of the gateway.
struct GatewayRoute {
  Bus* from = nullptr;               ///< Source bus.
  std::uint32_t match_id = 0;        ///< Frame id to forward.
  Bus* to = nullptr;                 ///< Target bus.
  std::uint32_t translated_id = 0;   ///< Id on the target bus.
  std::size_t translated_payload = 0;  ///< 0 keeps the original size (clamped
                                       ///< to the target protocol by the bus).
};

/// Store-and-forward protocol gateway. The original frame creation time is
/// preserved so end-to-end latency measurements span the whole path.
class Gateway {
 public:
  /// \p processing_delay_s models lookup + protocol conversion per frame.
  Gateway(sim::Simulator& sim, std::string name, double processing_delay_s = 200e-6);

  /// Installs \p route; subscribes to the source bus on first use.
  void add_route(GatewayRoute route);

  /// Installed routing rules (for static analysis of the wiring).
  [[nodiscard]] const std::vector<GatewayRoute>& routes() const noexcept {
    return routes_;
  }
  /// Store-and-forward processing delay per frame [s].
  [[nodiscard]] double processing_delay_s() const noexcept {
    return processing_delay_s_;
  }

  /// Frames forwarded so far.
  [[nodiscard]] std::size_t forwarded_count() const noexcept { return forwarded_; }
  /// Frames dropped because the target bus rejected them.
  [[nodiscard]] std::size_t dropped_count() const noexcept { return dropped_; }
  /// Gateway name.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Attaches observability, mirroring Bus::attach_observer. Registers:
  ///  - counter   `net.gw.<name>.forwarded` — frames re-injected downstream
  ///  - counter   `net.gw.<name>.dropped` — frames the target bus rejected
  ///  - histogram `net.gw.<name>.hop_latency_us` — per-hop latency from
  ///    arrival at the gateway to hand-off at the target bus
  /// Ids are interned here; \p registry must outlive the gateway's use.
  void attach_observer(obs::MetricsRegistry& registry);

 private:
  void on_frame(Bus* from, const Frame& frame);

  sim::Simulator* sim_;
  std::string name_;
  double processing_delay_s_;
  std::vector<GatewayRoute> routes_;
  std::vector<Bus*> subscribed_;
  std::size_t forwarded_ = 0;
  std::size_t dropped_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId forwarded_metric_ = obs::kInvalidId;
  obs::MetricId dropped_metric_ = obs::kInvalidId;
  obs::MetricId hop_latency_metric_ = obs::kInvalidId;
};

}  // namespace ev::network
