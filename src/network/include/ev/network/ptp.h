/// \file ptp.h
/// Precision Time Protocol ([15]) style clock synchronization: the
/// prerequisite for time-triggered Ethernet schedules and for the global
/// task/message schedules of Section 3.1. Each ECU clock drifts; periodic
/// two-way sync exchanges estimate offset (and rate) and discipline the
/// slave clocks. The residual error distribution is what bounds schedule
/// guard bands.
#pragma once

#include <cstddef>
#include <vector>

#include "ev/sim/simulator.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"

namespace ev::network {

/// A free-running local clock with constant rate error (ppm) and offset.
class DriftingClock {
 public:
  /// \p drift_ppm parts-per-million rate error; \p initial_offset_s start
  /// offset relative to perfect time.
  explicit DriftingClock(double drift_ppm = 0.0, double initial_offset_s = 0.0) noexcept
      : drift_ppm_(drift_ppm), offset_s_(initial_offset_s) {}

  /// Local reading when true (simulation) time is \p true_time.
  [[nodiscard]] double read(sim::Time true_time) const noexcept {
    return offset_s_ + true_time.to_seconds() * (1.0 + drift_ppm_ * 1e-6) + rate_corr_s_;
  }

  /// Error vs. true time [s].
  [[nodiscard]] double error_s(sim::Time true_time) const noexcept {
    return read(true_time) - true_time.to_seconds();
  }

  /// Applies a servo correction of \p delta_s (subtracted from the offset).
  void correct(double delta_s) noexcept { offset_s_ -= delta_s; }

  /// Adjusts the accumulated rate-correction term (syntonization).
  void correct_rate(double delta_s) noexcept { rate_corr_s_ += delta_s; }

  [[nodiscard]] double drift_ppm() const noexcept { return drift_ppm_; }

 private:
  double drift_ppm_;
  double offset_s_;
  double rate_corr_s_ = 0.0;
};

/// Configuration of the sync service.
struct PtpConfig {
  double sync_interval_s = 0.125;  ///< Standard gPTP 8 Hz sync rate.
  double path_delay_s = 2e-6;      ///< Mean one-way propagation + bridge delay.
  double delay_jitter_s = 100e-9;  ///< Per-message timestamping jitter (sigma).
  double asymmetry_s = 0.0;        ///< Uncompensated path asymmetry (error floor).
};

/// Master + N slaves synchronization simulation. Runs the two-way exchange
/// (sync/follow-up + delay request/response) arithmetic every interval and
/// disciplines each slave's clock; records the residual error sampled just
/// before each correction (the worst point of the cycle).
class PtpSync {
 public:
  /// \p drifts_ppm gives one slave clock per entry; the master is perfect.
  PtpSync(sim::Simulator& sim, std::vector<double> drifts_ppm, PtpConfig config,
          util::Rng& rng);

  /// Starts periodic synchronization.
  void start();

  /// Residual |error| samples across all slaves [s].
  [[nodiscard]] const util::SampleSeries& residual_error() const noexcept {
    return residuals_;
  }
  /// Slave clock \p i.
  [[nodiscard]] const DriftingClock& slave(std::size_t i) const { return slaves_.at(i); }
  /// Number of sync rounds completed.
  [[nodiscard]] std::size_t rounds() const noexcept { return rounds_; }

 private:
  void run_round();

  sim::Simulator* sim_;
  std::vector<DriftingClock> slaves_;
  PtpConfig config_;
  util::Rng* rng_;
  util::SampleSeries residuals_;
  std::size_t rounds_ = 0;
  bool started_ = false;
};

}  // namespace ev::network
