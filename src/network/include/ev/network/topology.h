/// \file topology.h
/// Builder for the paper's Fig. 1 reference topology: five heterogeneous
/// domain buses (body LIN sub-network, comfort CAN, infotainment MOST,
/// safety CAN, chassis FlexRay) interconnected by a central gateway, loaded
/// with a representative periodic message set and cross-domain flows.
/// Experiment E1 measures this network.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ev/network/can.h"
#include "ev/network/flexray.h"
#include "ev/network/gateway.h"
#include "ev/network/lin.h"
#include "ev/network/most.h"
#include "ev/sim/simulator.h"
#include "ev/util/stats.h"

namespace ev::network {

/// Well-known frame ids of the Fig. 1 message set (public so co-simulations
/// and examples can publish/observe real data on these flows).
inline constexpr std::uint32_t kFrameIdBrakeCmd = 0x100;
inline constexpr std::uint32_t kFrameIdTorqueCmd = 0x104;
inline constexpr std::uint32_t kFrameIdBmsStatus = 0x106;
inline constexpr std::uint32_t kFrameIdBmsOnMost = 0x840;
inline constexpr std::uint32_t kFrameIdCrashOnChassis = 0x150;

/// One periodic traffic source.
struct PeriodicSource {
  Bus* bus = nullptr;
  std::uint32_t frame_id = 0;  ///< Wire identifier (after any arch remap).
  NodeId source = 0;
  std::size_t payload_bytes = 8;
  double period_s = 0.01;
  double offset_s = 0.0;
  std::string description;
  std::uint32_t base_id = 0;   ///< Original Fig. 1 identifier (arch key).
};

/// A monitored cross-domain flow (traverses the central gateway).
struct CrossDomainFlow {
  std::string name;
  Bus* destination_bus = nullptr;
  std::uint32_t destination_id = 0;
};

/// Architecture overrides applied on top of the default Fig. 1 deployment
/// (the network-level mirror of config::ArchSpec). Every entry is keyed by
/// the *original* frame identifier; the builder validates feasibility and
/// throws std::invalid_argument on anchored or unknown frames.
struct ArchOverrides {
  struct FrameBus {
    std::uint32_t frame_id = 0;
    std::size_t bus_index = 0;  ///< Index into Figure1Network::buses() order.
  };
  struct FrameId {
    std::uint32_t frame_id = 0;
    std::uint32_t new_id = 0;
  };
  struct FrSlot {
    std::uint32_t frame_id = 0;
    std::size_t slot = 0;  ///< 0-based chassis static-slot index.
  };
  std::vector<FrameBus> frame_buses;  ///< Move sources across buses.
  std::vector<FrameId> frame_ids;     ///< Renumber frames on CAN buses.
  std::vector<FrSlot> fr_slots;       ///< Permute chassis static slots.

  [[nodiscard]] bool empty() const {
    return frame_buses.empty() && frame_ids.empty() && fr_slots.empty();
  }
};

/// Scaling knobs for the generated load.
struct Figure1Config {
  double load_scale = 1.0;   ///< Multiplies message rates (1.0 = nominal).
  double can_bit_rate = 500e3;
  double lin_bit_rate = 19200.0;
  double flexray_bit_rate = 10e6;
  /// When false, the synthetic BMS status source is omitted so a
  /// co-simulation can publish real battery data under the same frame id.
  bool synthetic_bms_source = true;
  ArchOverrides arch;        ///< Deployment overrides (may be empty).
};

/// The instantiated Fig. 1 network. Owns the buses, the gateway, the traffic
/// sources, and per-flow end-to-end latency probes.
class Figure1Network {
 public:
  /// Builds buses, schedule tables, routes, and traffic per \p config on
  /// \p sim (which must outlive this object).
  Figure1Network(sim::Simulator& sim, const Figure1Config& config = {});

  /// Starts scheduled buses and all periodic sources.
  void start();

  /// Domain buses.
  [[nodiscard]] LinBus& body_lin() noexcept { return *body_lin_; }
  [[nodiscard]] CanBus& comfort_can() noexcept { return *comfort_can_; }
  [[nodiscard]] MostBus& infotainment_most() noexcept { return *most_; }
  [[nodiscard]] CanBus& safety_can() noexcept { return *safety_can_; }
  [[nodiscard]] FlexRayBus& chassis_flexray() noexcept { return *chassis_fr_; }
  /// The central gateway.
  [[nodiscard]] Gateway& gateway() noexcept { return *gateway_; }
  /// All five buses for iteration (stable order: LIN, comfort CAN, MOST,
  /// safety CAN, chassis FlexRay).
  [[nodiscard]] std::vector<Bus*> buses() noexcept;
  /// Configured traffic sources.
  [[nodiscard]] const std::vector<PeriodicSource>& sources() const noexcept {
    return sources_;
  }
  /// End-to-end latency samples per monitored cross-domain flow [s].
  [[nodiscard]] const std::map<std::string, util::SampleSeries>& flow_latency()
      const noexcept {
    return flow_latency_;
  }

 private:
  void add_source(PeriodicSource src);
  void apply_arch_overrides();
  void monitor_flow(const CrossDomainFlow& flow);

  sim::Simulator* sim_;
  Figure1Config config_;
  std::unique_ptr<LinBus> body_lin_;
  std::unique_ptr<CanBus> comfort_can_;
  std::unique_ptr<MostBus> most_;
  std::unique_ptr<CanBus> safety_can_;
  std::unique_ptr<FlexRayBus> chassis_fr_;
  std::unique_ptr<Gateway> gateway_;
  std::vector<PeriodicSource> sources_;
  std::map<std::string, util::SampleSeries> flow_latency_;
  bool started_ = false;
};

}  // namespace ev::network
