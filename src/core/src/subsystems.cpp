#include "ev/core/subsystems.h"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "ev/network/bus.h"
#include "ev/network/can.h"
#include "ev/obs/export.h"

namespace ev::core {
namespace {

/// Scenario-facing bus names (stable, independent of display names).
network::Bus* resolve_bus(VehicleSystem& vehicle, const std::string& target) {
  network::Figure1Network& net = vehicle.network();
  if (target == "body_lin") return &net.body_lin();
  if (target == "comfort_can") return &net.comfort_can();
  if (target == "infotainment_most") return &net.infotainment_most();
  if (target == "safety_can") return &net.safety_can();
  if (target == "chassis_flexray") return &net.chassis_flexray();
  throw std::invalid_argument("FaultsSubsystem: unknown bus '" + target + "'");
}

std::size_t resolve_partition(VehicleSystem& vehicle, const std::string& target) {
  middleware::Middleware& cockpit = vehicle.cockpit();
  for (std::size_t p = 0; p < cockpit.partition_count(); ++p)
    if (cockpit.partition(p).name() == target) return p;
  throw std::invalid_argument("FaultsSubsystem: unknown cockpit partition '" + target +
                              "'");
}

std::size_t parse_cell_index(const std::string& target) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(target.c_str(), &end, 10);
  if (end == target.c_str() || *end != '\0')
    throw std::invalid_argument("FaultsSubsystem: sensor fault target '" + target +
                                "' is not a cell index");
  return static_cast<std::size_t>(v);
}

}  // namespace

// ----------------------------------------------------------- observability --

ObservabilitySubsystem::~ObservabilitySubsystem() {
  if (sim_ && sim_->observer() == observer_.get()) sim_->set_observer(nullptr);
}

void ObservabilitySubsystem::attach(VehicleSystem& vehicle) {
  sim_ = &vehicle.simulator();
  observer_ = std::make_unique<obs::SimObserver>(metrics_);
  vehicle.simulator().set_observer(observer_.get());
  for (network::Bus* bus : vehicle.network().buses()) bus->attach_observer(metrics_);
  vehicle.network().gateway().attach_observer(metrics_);
  vehicle.cockpit().attach_observer(metrics_, &trace_);
}

void ObservabilitySubsystem::after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) {
  out.set("events_dispatched",
          static_cast<double>(vehicle.simulator().dispatched()));
  out.set("spans_recorded", static_cast<double>(trace_.spans().size()));
}

bool ObservabilitySubsystem::export_files(const std::string& base) const {
  bool ok = obs::write_metrics_json_file(metrics_, base + ".metrics.json");
  ok = obs::write_metrics_csv_file(metrics_, base + ".metrics.csv") && ok;
  if (!trace_.spans().empty())
    ok = obs::write_chrome_trace_file(trace_, base + ".trace.json") && ok;
  return ok;
}

// ------------------------------------------------------------------ faults --

FaultsSubsystem::FaultsSubsystem(Options options) : options_(std::move(options)) {}

void FaultsSubsystem::attach(VehicleSystem& vehicle) {
  sim::Simulator& sim = vehicle.simulator();
  degradation_ = std::make_unique<faults::DegradationManager>(sim, options_.policy);
  degradation_->set_listener([this, &vehicle, &sim](faults::DriveMode from,
                                                    faults::DriveMode to,
                                                    const std::string& cause) {
    vehicle.powertrain().set_drive_limits(degradation_->torque_limit_fraction(),
                                          degradation_->speed_limit_mps());
    mode_changes_.push_back(ModeChange{sim.now().to_seconds(), from, to, cause});
  });

  watcher_ = std::make_unique<faults::NetworkHealthWatcher>(sim, *degradation_,
                                                            options_.watch);
  for (network::Bus* bus : vehicle.network().buses()) watcher_->watch(*bus);

  plan_ = std::make_unique<faults::FaultPlan>(options_.seed);
  plan_->set_degradation(degradation_.get());

  if (auto* obs = vehicle.find_subsystem<ObservabilitySubsystem>()) {
    degradation_->attach_observer(obs->metrics());
    watcher_->attach_observer(obs->metrics());
    plan_->attach_observer(obs->metrics());
  }
}

void FaultsSubsystem::before_run(VehicleSystem& vehicle) {
  sim::Simulator& sim = vehicle.simulator();
  for (const config::FaultEventSpec& event : options_.events) {
    const sim::Time at = sim::Time::seconds(event.at_s);
    const std::string label = config::to_string(event.kind) + "." + event.target;
    switch (event.kind) {
      case config::FaultKind::kBusDrop: {
        network::Bus* bus = resolve_bus(vehicle, event.target);
        const auto frames = static_cast<std::size_t>(event.value);
        plan_->add(at, label, [bus, frames] { bus->inject_drop(frames); });
        break;
      }
      case config::FaultKind::kBusCorrupt: {
        network::Bus* bus = resolve_bus(vehicle, event.target);
        const auto frames = static_cast<std::size_t>(event.value);
        plan_->add(at, label, [bus, frames] { bus->inject_corruption(frames); });
        break;
      }
      case config::FaultKind::kBusOff: {
        network::Bus* bus = resolve_bus(vehicle, event.target);
        const sim::Time recovery = sim::Time::seconds(event.value);
        plan_->add(at, label, [bus, recovery] { bus->inject_bus_off(recovery); });
        break;
      }
      case config::FaultKind::kBusBabble: {
        network::Bus* bus = resolve_bus(vehicle, event.target);
        babblers_.push_back(std::make_unique<faults::BabblingIdiot>(sim, *bus));
        faults::BabblingIdiot* idiot = babblers_.back().get();
        const sim::Time duration = sim::Time::seconds(event.value);
        plan_->add(at, label, [&sim, idiot, duration] {
          idiot->start();
          sim.schedule_in(duration, [idiot] { idiot->stop(); });
        });
        break;
      }
      case config::FaultKind::kPartitionCrash: {
        const std::size_t p = resolve_partition(vehicle, event.target);
        middleware::Middleware* cockpit = &vehicle.cockpit();
        plan_->add(at, label, [cockpit, p] { cockpit->partition(p).inject_crash(); });
        break;
      }
      case config::FaultKind::kPartitionHang: {
        const std::size_t p = resolve_partition(vehicle, event.target);
        middleware::Middleware* cockpit = &vehicle.cockpit();
        const auto windows = static_cast<std::uint32_t>(event.value);
        plan_->add(at, label,
                   [cockpit, p, windows] { cockpit->partition(p).inject_hang(windows); });
        break;
      }
      case config::FaultKind::kBusErrorRate:
      case config::FaultKind::kBusErrorProb: {
        auto* can = dynamic_cast<network::CanBus*>(resolve_bus(vehicle, event.target));
        if (can == nullptr)
          throw std::invalid_argument("fault '" + label +
                                      "': stochastic error models need a CAN bus");
        // Arm at the scheduled instant; rate and probability specs on the
        // same bus share one model, so stage the merge here and (re)arm with
        // the combined figures. The RNG stream is derived from the plan seed
        // so campaigns replay bit-identically per seed.
        network::CanErrorModel* staged = &staged_errors_[can];
        if (event.kind == config::FaultKind::kBusErrorRate)
          staged->poisson_rate_per_s += event.value;
        else if (staged->per_attempt_prob == 0.0)  // exact for the single-spec case
          staged->per_attempt_prob = event.value;
        else
          staged->per_attempt_prob =
              1.0 - (1.0 - staged->per_attempt_prob) * (1.0 - event.value);
        staged->seed = options_.seed ^ (0x9e3779b97f4a7c15ULL +
                                        std::hash<std::string>{}(event.target));
        const network::CanErrorModel armed = *staged;
        plan_->add(at, label, [can, armed] { can->arm_error_model(armed); });
        break;
      }
      case config::FaultKind::kSensorStuck: {
        const std::size_t cell = parse_cell_index(event.target);
        bms::BatteryManager* bms = &vehicle.powertrain().bms();
        const double stuck_v = event.value;
        plan_->add(at, label, [bms, cell, stuck_v] {
          battery::SensorFault stuck;
          stuck.mode = battery::SensorFaultMode::kStuckAt;
          stuck.stuck_value = stuck_v;
          bms->inject_voltage_sensor_fault(cell, stuck);
        });
        break;
      }
    }
  }
  plan_->arm(sim);
  watcher_->start();

  // BMS detection input: feed the safety verdict of each control period into
  // the mode machine. Scheduled before run() queues the plant stepping event,
  // so at equal timestamps this reads the previous period's report — one
  // period of latency, deterministically.
  const sim::Time period = sim::Time::seconds(vehicle.config().control_period_s);
  powertrain::PowertrainSimulation* plant = &vehicle.powertrain();
  faults::DegradationManager* degradation = degradation_.get();
  sim.schedule_periodic(period, period, [plant, degradation] {
    degradation->on_bms(plant->bms().report().action);
  });
}

void FaultsSubsystem::after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) {
  (void)vehicle;
  out.set("final_mode",
          static_cast<double>(static_cast<std::uint8_t>(degradation_->mode())));
  out.set("transitions", static_cast<double>(degradation_->transitions()));
  out.set("injections_planned", static_cast<double>(plan_->planned()));
  out.set("injections_fired", static_cast<double>(plan_->injections().size()));
  out.set("bus_fault_episodes", static_cast<double>(watcher_->faults_reported()));
  out.set("partition_restarts", static_cast<double>(degradation_->partition_restarts()));
  out.set("torque_limit_fraction", degradation_->torque_limit_fraction());
}

// ------------------------------------------------------------------ health --

HealthSubsystem::HealthSubsystem(middleware::HealthConfig config) : config_(config) {}

void HealthSubsystem::attach(VehicleSystem& vehicle) { (void)vehicle; }

void HealthSubsystem::before_run(VehicleSystem& vehicle) {
  monitor_ = std::make_unique<middleware::HealthMonitor>(vehicle.simulator(),
                                                         vehicle.cockpit(), config_);
  if (auto* faults = vehicle.find_subsystem<FaultsSubsystem>()) {
    faults::DegradationManager* degradation = &faults->degradation();
    monitor_->set_listener(
        [degradation](std::size_t, middleware::HealthEvent event, sim::Time) {
          if (event == middleware::HealthEvent::kRestart)
            degradation->on_partition_restart();
        });
  }
  if (auto* obs = vehicle.find_subsystem<ObservabilitySubsystem>())
    monitor_->attach_observer(obs->metrics());
  monitor_->start();
}

void HealthSubsystem::after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) {
  (void)vehicle;
  out.set("restarts", static_cast<double>(monitor_->restarts()));
  out.set("heartbeat_misses", static_cast<double>(monitor_->heartbeat_misses()));
}

// ---------------------------------------------------------------- security --

SecuritySubsystem::SecuritySubsystem() : SecuritySubsystem(Options{}) {}

SecuritySubsystem::SecuritySubsystem(Options options) : options_(options) {}

void SecuritySubsystem::attach(VehicleSystem& vehicle) {
  // Deterministic pre-shared key: what a production system would provision
  // at manufacturing; a fixed value keeps same-seed runs byte-identical.
  security::Key master(32);
  for (std::size_t i = 0; i < master.size(); ++i)
    master[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 29));
  sender_ = std::make_unique<security::SecureChannel>(master, kFrameIdSecureTelemetry,
                                                      options_.channel);
  receiver_ = std::make_unique<security::SecureChannel>(master, kFrameIdSecureTelemetry,
                                                        options_.channel);

  vehicle.network().chassis_flexray().subscribe(
      [this](const network::Frame& f, sim::Time) {
        if (f.id != kFrameIdSecureTelemetry) return;
        if (receiver_->unprotect(f.payload))
          ++verified_;
        else
          ++rejected_;
      });
}

void SecuritySubsystem::before_run(VehicleSystem& vehicle) {
  sim::Simulator& sim = vehicle.simulator();
  network::FlexRayBus* chassis = &vehicle.network().chassis_flexray();
  powertrain::PowertrainSimulation* plant = &vehicle.powertrain();
  const sim::Time period = sim::Time::seconds(options_.publish_period_s);
  sim.schedule_periodic(period, period, [this, &sim, chassis, plant] {
    std::uint8_t telemetry[2 * sizeof(double)];
    const double soc = plant->bms().report().pack_soc;
    const double t_s = sim.now().to_seconds();
    std::memcpy(telemetry, &soc, sizeof(double));
    std::memcpy(telemetry + sizeof(double), &t_s, sizeof(double));
    network::Frame f;
    f.id = kFrameIdSecureTelemetry;
    f.source = 8;
    f.payload = sender_->protect(telemetry);
    f.payload_size = f.payload.size();
    if (chassis->send(std::move(f))) ++sent_;
  });
}

void SecuritySubsystem::after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) {
  (void)vehicle;
  out.set("frames_protected", static_cast<double>(sent_));
  out.set("frames_authenticated", static_cast<double>(verified_));
  out.set("frames_rejected", static_cast<double>(rejected_));
  out.set("overhead_bytes", static_cast<double>(sender_->overhead_bytes()));
}

}  // namespace ev::core
