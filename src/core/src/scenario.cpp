#include "ev/core/scenario.h"

#include <ostream>
#include <sstream>

#include "ev/core/subsystems.h"

namespace ev::core {
namespace {

bms::BalancingKind to_balancing(config::Balancing balancing) {
  switch (balancing) {
    case config::Balancing::kNone: return bms::BalancingKind::kNone;
    case config::Balancing::kPassive: return bms::BalancingKind::kPassive;
    case config::Balancing::kActive: return bms::BalancingKind::kActive;
  }
  return bms::BalancingKind::kPassive;
}

void json_value(std::ostream& out, double value) {
  out << config::format_double(value);
}

}  // namespace

VehicleSystemConfig to_vehicle_config(const config::ScenarioSpec& spec) {
  spec.validate();
  VehicleSystemConfig cfg;
  cfg.powertrain.pack.module_count = static_cast<std::size_t>(spec.pack.module_count);
  cfg.powertrain.pack.cells_per_module =
      static_cast<std::size_t>(spec.pack.cells_per_module);
  cfg.powertrain.pack.initial_soc = spec.pack.initial_soc;
  cfg.powertrain.pack.soc_spread_sigma = spec.pack.soc_spread_sigma;
  cfg.powertrain.pack.use_lfp_chemistry = spec.pack.lfp_chemistry;
  cfg.powertrain.bms.balancing = to_balancing(spec.bms.balancing);
  cfg.powertrain.bms.initial_soc_estimate = spec.bms.initial_soc_estimate;
  cfg.powertrain.seed = spec.powertrain.seed;
  cfg.powertrain.aux_power_w = spec.powertrain.aux_power_w;
  cfg.network.load_scale = spec.network.load_scale;
  cfg.network.can_bit_rate = spec.network.can_bit_rate;
  cfg.network.lin_bit_rate = spec.network.lin_bit_rate;
  cfg.network.flexray_bit_rate = spec.network.flexray_bit_rate;
  for (const config::FrameBusSpec& e : spec.arch.frame_buses) {
    std::size_t bus_index = 0;
    while (bus_index < config::kArchBusCount &&
           e.bus != config::kArchBusNames[bus_index])
      ++bus_index;
    cfg.network.arch.frame_buses.push_back({e.frame_id, bus_index});
  }
  for (const config::FrameIdSpec& e : spec.arch.frame_ids)
    cfg.network.arch.frame_ids.push_back({e.frame_id, e.new_id});
  for (const config::FrSlotSpec& e : spec.arch.fr_slots)
    cfg.network.arch.fr_slots.push_back({e.frame_id, static_cast<std::size_t>(e.slot)});
  for (const config::PartitionWindowSpec& e : spec.arch.partitions)
    cfg.partition_windows.push_back({e.partition, e.budget_us});
  cfg.control_period_s = spec.timing.control_period_s;
  cfg.bms_publish_period_s = spec.timing.bms_publish_period_s;
  cfg.middleware_frame_us = spec.timing.middleware_frame_us;
  return cfg;
}

powertrain::DriveCycle to_drive_cycle(const config::ScenarioSpec& spec) {
  powertrain::DriveCycle base = [&] {
    switch (spec.drive.cycle) {
      case config::CycleKind::kHighway: return powertrain::DriveCycle::highway();
      case config::CycleKind::kSuburban: return powertrain::DriveCycle::suburban();
      case config::CycleKind::kUrban: break;
    }
    return powertrain::DriveCycle::urban();
  }();
  if (spec.drive.repeat <= 1) return base;
  return powertrain::DriveCycle::repeat(base, static_cast<int>(spec.drive.repeat));
}

std::unique_ptr<VehicleSystem> build_vehicle(const config::ScenarioSpec& spec) {
  auto vehicle = std::make_unique<VehicleSystem>(to_vehicle_config(spec));
  // Attachment order matters: obs first so everyone else can find the
  // registry, faults before health so the watchdog can feed the mode machine.
  if (spec.subsystems.obs)
    vehicle->attach(std::make_unique<ObservabilitySubsystem>());
  if (spec.subsystems.security)
    vehicle->attach(std::make_unique<SecuritySubsystem>());
  if (spec.subsystems.faults) {
    FaultsSubsystem::Options options;
    options.seed = spec.fault_seed;
    options.events = spec.faults;
    vehicle->attach(std::make_unique<FaultsSubsystem>(std::move(options)));
  }
  if (spec.subsystems.health) vehicle->attach(std::make_unique<HealthSubsystem>());
  return vehicle;
}

ScenarioRunResult run_scenario(const config::ScenarioSpec& spec,
                               std::unique_ptr<VehicleSystem>* vehicle_out) {
  std::unique_ptr<VehicleSystem> vehicle = build_vehicle(spec);
  ScenarioRunResult result;
  result.scenario = spec.name;
  result.cosim = vehicle->run(to_drive_cycle(spec));
  if (vehicle_out != nullptr) *vehicle_out = std::move(vehicle);
  return result;
}

void write_result_json(const ScenarioRunResult& result, std::ostream& out) {
  const CoSimResult& r = result.cosim;
  const powertrain::CycleResult& c = r.cycle;
  out << "{\"scenario\":\"" << result.scenario << "\",";
  out << "\"drive\":{";
  out << "\"distance_km\":";
  json_value(out, c.distance_km);
  out << ",\"duration_s\":";
  json_value(out, c.duration_s);
  out << ",\"battery_energy_out_wh\":";
  json_value(out, c.battery_energy_out_wh);
  out << ",\"battery_energy_in_wh\":";
  json_value(out, c.battery_energy_in_wh);
  out << ",\"regen_recovered_wh\":";
  json_value(out, c.regen_recovered_wh);
  out << ",\"friction_brake_loss_wh\":";
  json_value(out, c.friction_brake_loss_wh);
  out << ",\"aux_energy_wh\":";
  json_value(out, c.aux_energy_wh);
  out << ",\"consumption_wh_km\":";
  json_value(out, c.consumption_wh_km);
  out << ",\"final_soc\":";
  json_value(out, c.final_soc);
  out << ",\"battery_depleted\":" << (c.battery_depleted ? "true" : "false");
  out << ",\"safety_tripped\":" << (c.safety_tripped ? "true" : "false");
  out << "},";
  out << "\"telemetry\":{";
  out << "\"bms_frames_published\":" << r.bms_frames_published;
  out << ",\"bms_frames_at_hmi\":" << r.bms_frames_at_hmi;
  out << ",\"bms_to_hmi_latency_ms\":";
  json_value(out, r.bms_to_hmi_latency_ms);
  out << ",\"range_service_calls\":" << r.range_service_calls;
  out << ",\"last_range_km\":";
  json_value(out, r.last_range_km);
  out << "},";
  out << "\"subsystems\":{";
  for (std::size_t i = 0; i < r.subsystems.size(); ++i) {
    const SubsystemSnapshot& snap = r.subsystems[i];
    if (i > 0) out << ",";
    out << "\"" << snap.name << "\":{";
    for (std::size_t k = 0; k < snap.values.size(); ++k) {
      if (k > 0) out << ",";
      out << "\"" << snap.values[k].first << "\":";
      json_value(out, snap.values[k].second);
    }
    out << "}";
  }
  out << "}}\n";
}

std::string result_json(const ScenarioRunResult& result) {
  std::ostringstream out;
  write_result_json(result, out);
  return out.str();
}

}  // namespace ev::core
