#include "ev/core/architecture.h"

#include <stdexcept>

namespace ev::core {

std::string to_string(Domain domain) {
  switch (domain) {
    case Domain::kChassis: return "chassis";
    case Domain::kSafety: return "safety";
    case Domain::kComfort: return "comfort";
    case Domain::kInfotainment: return "infotainment";
    case Domain::kBody: return "body";
  }
  return "?";
}

std::string to_string(BusTech tech) {
  switch (tech) {
    case BusTech::kCan: return "CAN";
    case BusTech::kLin: return "LIN";
    case BusTech::kFlexRay: return "FlexRay";
    case BusTech::kMost: return "MOST";
    case BusTech::kEthernet: return "Ethernet";
  }
  return "?";
}

double bit_rate_of(BusTech tech) noexcept {
  switch (tech) {
    case BusTech::kCan: return 500e3;
    case BusTech::kLin: return 19.2e3;
    case BusTech::kFlexRay: return 10e6;
    case BusTech::kMost: return 25e6;
    case BusTech::kEthernet: return 100e6;
  }
  return 0.0;
}

double controller_cost_of(BusTech tech) noexcept {
  // Relative scale (CAN transceiver = 1).
  switch (tech) {
    case BusTech::kCan: return 1.0;
    case BusTech::kLin: return 0.4;
    case BusTech::kFlexRay: return 2.5;
    case BusTech::kMost: return 3.0;
    case BusTech::kEthernet: return 2.0;
  }
  return 0.0;
}

std::size_t Architecture::ecu_of(std::size_t f) const {
  for (std::size_t e = 0; e < ecus.size(); ++e)
    for (std::size_t hosted : ecus[e].hosted_functions)
      if (hosted == f) return e;
  throw std::out_of_range("Architecture::ecu_of: function not mapped");
}

bool Architecture::signal_is_local(const SignalSpec& s) const {
  return ecu_of(s.from) == ecu_of(s.to);
}

FunctionNetwork reference_function_network(std::size_t scale) {
  FunctionNetwork net;
  auto fn = [&](const char* name, Domain d, Criticality c, std::int64_t period_us,
                std::int64_t wcet_us) {
    net.functions.push_back(FunctionSpec{name, d, c, period_us, wcet_us});
    return net.functions.size() - 1;
  };
  auto sig = [&](const char* name, std::size_t from, std::size_t to, std::size_t bytes,
                 std::int64_t period_us) {
    net.signals.push_back(SignalSpec{name, from, to, bytes, period_us});
  };

  // --- Chassis / powertrain (hard real-time) --------------------------------
  const auto brake_pedal = fn("brake-pedal-acq", Domain::kChassis, Criticality::kAsilD, 5000, 300);
  const auto brake_ctrl = fn("brake-by-wire-ctrl", Domain::kChassis, Criticality::kAsilD, 5000, 800);
  const auto steer = fn("steer-by-wire-ctrl", Domain::kChassis, Criticality::kAsilD, 5000, 700);
  const auto torque = fn("torque-coordinator", Domain::kChassis, Criticality::kAsilD, 10000, 900);
  const auto motor_ctl = fn("motor-foc", Domain::kChassis, Criticality::kAsilD, 10000, 600);
  const auto regen = fn("regen-blending", Domain::kChassis, Criticality::kAsilD, 10000, 500);
  const auto wheel_spd = fn("wheel-speed-acq", Domain::kChassis, Criticality::kAsilB, 10000, 200);
  const auto susp = fn("suspension-ctrl", Domain::kChassis, Criticality::kAsilB, 20000, 600);
  // --- Safety ---------------------------------------------------------------
  const auto abs_f = fn("abs-esp", Domain::kSafety, Criticality::kAsilD, 10000, 900);
  const auto airbag = fn("airbag-ctrl", Domain::kSafety, Criticality::kAsilD, 10000, 300);
  const auto pedestrian = fn("pedestrian-warning", Domain::kSafety, Criticality::kAsilB, 50000, 4000);
  const auto crash = fn("crash-detection", Domain::kSafety, Criticality::kAsilD, 10000, 250);
  // --- Energy (BMS / charging) -----------------------------------------------
  const auto bms_f = fn("battery-manager", Domain::kChassis, Criticality::kAsilD, 100000, 1500);
  const auto balancer = fn("cell-balancer", Domain::kChassis, Criticality::kAsilB, 100000, 700);
  const auto charger = fn("charge-controller", Domain::kChassis, Criticality::kAsilB, 100000, 800);
  const auto range_f = fn("range-estimator", Domain::kInfotainment, Criticality::kQm, 200000, 1200);
  // --- Comfort / body ----------------------------------------------------------
  const auto climate = fn("climate-ctrl", Domain::kComfort, Criticality::kQm, 100000, 1000);
  const auto door = fn("door-module", Domain::kComfort, Criticality::kQm, 50000, 300);
  const auto seat = fn("seat-module", Domain::kComfort, Criticality::kQm, 200000, 300);
  const auto light = fn("light-ctrl", Domain::kBody, Criticality::kQm, 100000, 250);
  const auto wiper = fn("wiper-ctrl", Domain::kBody, Criticality::kQm, 50000, 250);
  const auto window = fn("window-lift", Domain::kBody, Criticality::kQm, 50000, 200);
  // --- Infotainment --------------------------------------------------------------
  const auto hmi = fn("hmi-main", Domain::kInfotainment, Criticality::kQm, 50000, 5000);
  const auto audio = fn("audio-dsp", Domain::kInfotainment, Criticality::kQm, 20000, 2000);
  const auto nav = fn("navigation", Domain::kInfotainment, Criticality::kQm, 200000, 8000);
  const auto telem = fn("telematics-v2x", Domain::kInfotainment, Criticality::kQm, 100000, 3000);

  // --- Signals -------------------------------------------------------------
  sig("pedal->brake", brake_pedal, brake_ctrl, 8, 5000);
  sig("brake->torque", brake_ctrl, torque, 8, 10000);
  sig("brake->regen", brake_ctrl, regen, 8, 10000);
  sig("regen->torque", regen, torque, 8, 10000);
  sig("torque->motor", torque, motor_ctl, 8, 10000);
  sig("wheel->abs", wheel_spd, abs_f, 8, 10000);
  sig("wheel->brake", wheel_spd, brake_ctrl, 8, 10000);
  sig("wheel->susp", wheel_spd, susp, 8, 20000);
  sig("abs->torque", abs_f, torque, 8, 10000);
  sig("crash->airbag", crash, airbag, 4, 10000);
  sig("crash->bms", crash, bms_f, 4, 10000);
  sig("bms->torque", bms_f, torque, 8, 100000);
  sig("bms->range", bms_f, range_f, 16, 200000);
  sig("bms->balancer", bms_f, balancer, 8, 100000);
  sig("charger->bms", charger, bms_f, 8, 100000);
  sig("range->hmi", range_f, hmi, 16, 200000);
  sig("nav->range", nav, range_f, 32, 200000);
  sig("pedestrian->hmi", pedestrian, hmi, 8, 50000);
  sig("wheel->hmi", wheel_spd, hmi, 8, 50000);
  sig("climate->hmi", climate, hmi, 8, 100000);
  sig("steer->susp", steer, susp, 8, 20000);
  sig("telem->nav", telem, nav, 64, 200000);
  sig("audio<-hmi", hmi, audio, 16, 50000);
  sig("door->light", door, light, 2, 100000);
  sig("wiper<-body", wiper, light, 2, 100000);
  sig("window<-door", door, window, 2, 50000);

  // --- Optional growth for sweeps -------------------------------------------
  for (std::size_t k = 1; k < scale; ++k) {
    const std::string suffix = "#" + std::to_string(k);
    const auto extra1 = fn(("body-node" + suffix).c_str(), Domain::kBody, Criticality::kQm,
                           100000, 300);
    const auto extra2 = fn(("comfort-node" + suffix).c_str(), Domain::kComfort,
                           Criticality::kQm, 100000, 500);
    sig(("body-sig" + suffix).c_str(), extra1, light, 2, 100000);
    sig(("comfort-sig" + suffix).c_str(), extra2, climate, 4, 100000);
  }
  return net;
}

}  // namespace ev::core
