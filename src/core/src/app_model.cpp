#include "ev/core/app_model.h"

#include "ev/core/cosim.h"
#include "ev/middleware/health.h"

namespace ev::core {

CockpitAppModel cockpit_app_model(const VehicleSystemConfig& config,
                                  bool health_enabled) {
  CockpitAppModel app;
  app.ecu_name = "cockpit-controller";
  app.major_frame_us = config.middleware_frame_us;

  PartitionModel information;
  information.name = "information";
  information.budget_us = 4000;
  // The range service handler executes inside the caller's window; the
  // partition itself hosts no periodic runnable beyond monitoring.

  PartitionModel hmi;
  hmi.name = "hmi";
  hmi.budget_us = 8000;
  hmi.runnables.push_back(RunnableModel{"hmi-range-widget", 200000, 1500});

  app.partitions.push_back(std::move(information));
  app.partitions.push_back(std::move(hmi));

  if (health_enabled) {
    const middleware::HealthConfig health{};
    const std::int64_t period =
        health.check_period_us > 0 ? health.check_period_us : app.major_frame_us;
    for (PartitionModel& partition : app.partitions)
      partition.runnables.push_back(
          RunnableModel{"heartbeat", period, health.heartbeat_wcet_us});
  }

  TopicModel pack_state;
  pack_state.id = kTopicPackState;
  pack_state.name = "pack.state";
  pack_state.payload_bytes = sizeof(PackStateSample);
  pack_state.publishers = {"network-rx"};
  pack_state.subscribers = {"information"};
  app.topics.push_back(std::move(pack_state));

  return app;
}

}  // namespace ev::core
