#include "ev/core/app_model.h"

#include <stdexcept>

#include "ev/core/cosim.h"
#include "ev/middleware/health.h"

namespace ev::core {

namespace {

// Reorders and re-budgets the default partitions per the override plan.
// The plan must be a complete one-to-one renaming-free mapping: every
// default partition named exactly once, nothing unknown.
std::vector<PartitionModel> apply_partition_windows(
    std::vector<PartitionModel> partitions,
    const std::vector<PartitionWindowOverride>& windows) {
  std::vector<PartitionModel> out;
  std::vector<char> used(partitions.size(), 0);
  for (const PartitionWindowOverride& w : windows) {
    std::size_t at = partitions.size();
    for (std::size_t i = 0; i < partitions.size(); ++i)
      if (partitions[i].name == w.partition) at = i;
    if (at == partitions.size())
      throw std::invalid_argument("cockpit app: partition window names unknown partition '" +
                                  w.partition + "'");
    if (used[at] != 0)
      throw std::invalid_argument("cockpit app: partition window lists '" + w.partition +
                                  "' twice");
    used[at] = 1;
    PartitionModel p = std::move(partitions[at]);
    p.budget_us = w.budget_us;
    out.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < partitions.size(); ++i)
    if (used[i] == 0)
      throw std::invalid_argument("cockpit app: partition window plan omits '" +
                                  partitions[i].name + "'");
  return out;
}

}  // namespace

CockpitAppModel cockpit_app_model(const VehicleSystemConfig& config,
                                  bool health_enabled) {
  CockpitAppModel app;
  app.ecu_name = "cockpit-controller";
  app.major_frame_us = config.middleware_frame_us;

  PartitionModel information;
  information.name = "information";
  information.budget_us = 4000;
  // The range service handler executes inside the caller's window; the
  // partition itself hosts no periodic runnable beyond monitoring.

  PartitionModel hmi;
  hmi.name = "hmi";
  hmi.budget_us = 8000;
  hmi.runnables.push_back(RunnableModel{"hmi-range-widget", 200000, 1500});

  app.partitions.push_back(std::move(information));
  app.partitions.push_back(std::move(hmi));

  if (!config.partition_windows.empty())
    app.partitions =
        apply_partition_windows(std::move(app.partitions), config.partition_windows);

  if (health_enabled) {
    const middleware::HealthConfig health{};
    const std::int64_t period =
        health.check_period_us > 0 ? health.check_period_us : app.major_frame_us;
    for (PartitionModel& partition : app.partitions)
      partition.runnables.push_back(
          RunnableModel{"heartbeat", period, health.heartbeat_wcet_us});
  }

  TopicModel pack_state;
  pack_state.id = kTopicPackState;
  pack_state.name = "pack.state";
  pack_state.payload_bytes = sizeof(PackStateSample);
  pack_state.publishers = {"network-rx"};
  pack_state.subscribers = {"information"};
  app.topics.push_back(std::move(pack_state));

  return app;
}

}  // namespace ev::core
