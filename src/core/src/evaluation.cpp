#include "ev/core/evaluation.h"

#include <algorithm>
#include <cmath>

namespace ev::core {

ArchitectureMetrics evaluate(const Architecture& arch, const EvaluationOptions& options) {
  ArchitectureMetrics m;
  m.ecu_count = arch.ecus.size();
  m.bus_count = arch.buses.size();
  m.gateway_count = arch.gateway_count;

  // --- Wiring: per bus, a trunk spanning its ECU positions plus one stub per
  // attachment; gateways sit at the trunk ends (position 0).
  for (const BusInstance& bus : arch.buses) {
    if (bus.attached_ecus.empty()) continue;
    double lo = 1e9;
    double hi = -1e9;
    for (std::size_t e : bus.attached_ecus) {
      lo = std::min(lo, arch.ecus[e].position_m);
      hi = std::max(hi, arch.ecus[e].position_m);
    }
    m.wiring_m += (hi - lo) + options.stub_length_m * static_cast<double>(bus.attached_ecus.size());
    if (arch.gateway_count > 0) m.wiring_m += lo;  // trunk run to the central gateway
  }

  // --- Hardware cost: ECUs + one bus controller per attachment + gateways.
  for (const EcuInstance& ecu : arch.ecus) m.hardware_cost += ecu.unit_cost;
  for (const BusInstance& bus : arch.buses)
    m.hardware_cost +=
        controller_cost_of(bus.tech) * static_cast<double>(bus.attached_ecus.size());
  m.hardware_cost += options.gateway_cost * static_cast<double>(arch.gateway_count);

  // --- Compute utilization per ECU (interference-inflated on multi-core).
  double util_sum = 0.0;
  for (const EcuInstance& ecu : arch.ecus) {
    const double inflate =
        ecu.cores > 1
            ? 1.0 + options.interference_factor * static_cast<double>(ecu.cores - 1)
            : 1.0;
    double demand = 0.0;
    for (std::size_t f : ecu.hosted_functions) {
      const FunctionSpec& fun = arch.network.functions[f];
      demand += static_cast<double>(fun.wcet_us) * inflate / static_cast<double>(fun.period_us);
    }
    const double u = demand / static_cast<double>(ecu.cores);
    util_sum += u;
    m.max_utilization = std::max(m.max_utilization, u);
  }
  m.mean_utilization = arch.ecus.empty() ? 0.0 : util_sum / static_cast<double>(arch.ecus.size());
  m.flexibility = std::max(0.0, 1.0 - m.mean_utilization);

  // --- Signals: local vs. networked, and per-bus load.
  std::vector<double> bus_load(arch.buses.size(), 0.0);
  auto bus_of_ecu = [&](std::size_t e) -> std::size_t {
    for (std::size_t b = 0; b < arch.buses.size(); ++b)
      for (std::size_t a : arch.buses[b].attached_ecus)
        if (a == e) return b;
    return arch.buses.size();  // unattached (should not happen)
  };
  for (const SignalSpec& s : arch.network.signals) {
    if (arch.signal_is_local(s)) {
      ++m.local_signals;
      continue;
    }
    ++m.cross_ecu_signals;
    // Frame overhead factor ~2 for small payloads (headers, stuffing).
    const double bits = static_cast<double>(s.bytes) * 8.0 * 2.0;
    const double rate = bits / (static_cast<double>(s.period_us) * 1e-6);
    const std::size_t src_bus = bus_of_ecu(arch.ecu_of(s.from));
    const std::size_t dst_bus = bus_of_ecu(arch.ecu_of(s.to));
    if (src_bus < bus_load.size()) bus_load[src_bus] += rate;
    if (dst_bus != src_bus && dst_bus < bus_load.size()) bus_load[dst_bus] += rate;
  }
  for (std::size_t b = 0; b < arch.buses.size(); ++b) {
    const double load = bus_load[b] / bit_rate_of(arch.buses[b].tech);
    m.worst_bus_load = std::max(m.worst_bus_load, load);
    if (load >= 1.0) m.buses_feasible = false;
  }
  return m;
}

}  // namespace ev::core
