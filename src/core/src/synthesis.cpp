#include "ev/core/synthesis.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace ev::core {

namespace {

/// Deterministic trunk position per domain (meters along the harness spine);
/// federated ECUs spread around their domain anchor.
double domain_anchor_m(Domain d) {
  switch (d) {
    case Domain::kChassis: return 0.8;
    case Domain::kSafety: return 1.4;
    case Domain::kComfort: return 2.2;
    case Domain::kInfotainment: return 1.8;
    case Domain::kBody: return 3.0;
  }
  return 2.0;
}

BusTech domain_bus_tech(Domain d) {
  switch (d) {
    case Domain::kChassis: return BusTech::kFlexRay;
    case Domain::kSafety: return BusTech::kCan;
    case Domain::kComfort: return BusTech::kCan;
    case Domain::kInfotainment: return BusTech::kMost;
    case Domain::kBody: return BusTech::kLin;
  }
  return BusTech::kCan;
}

}  // namespace

Architecture synthesize_federated(const FunctionNetwork& network) {
  Architecture arch;
  arch.style = "federated";
  arch.network = network;

  std::map<Domain, std::size_t> bus_of_domain;
  for (std::size_t f = 0; f < network.functions.size(); ++f) {
    const FunctionSpec& fun = network.functions[f];
    // One single-core ECU per function, spread around the domain anchor.
    EcuInstance ecu;
    ecu.name = "ecu-" + fun.name;
    ecu.cores = 1;
    ecu.unit_cost = 1.0;
    const double spread = 0.15 * static_cast<double>(f % 5);
    ecu.position_m = domain_anchor_m(fun.domain) + spread;
    ecu.hosted_functions = {f};
    arch.ecus.push_back(std::move(ecu));

    const Domain d = fun.domain;
    if (!bus_of_domain.contains(d)) {
      BusInstance bus;
      bus.name = to_string(d) + "-bus";
      bus.tech = domain_bus_tech(d);
      bus_of_domain[d] = arch.buses.size();
      arch.buses.push_back(std::move(bus));
    }
    arch.buses[bus_of_domain[d]].attached_ecus.push_back(arch.ecus.size() - 1);
  }
  arch.gateway_count = 1;  // central gateway joining the domain buses
  return arch;
}

Architecture synthesize_integrated(const FunctionNetwork& network,
                                   const IntegratedOptions& options) {
  Architecture arch;
  arch.style = "integrated";
  arch.network = network;

  // Segregation classes: without partitioned middleware, ASIL-D and QM
  // software may not share an ECU, forcing more boxes.
  auto segregation_class = [&](const FunctionSpec& f) {
    if (options.partitioned_middleware) return 0;
    return f.criticality == Criticality::kAsilD ? 1 : 2;
  };

  // First-fit decreasing per segregation class onto multi-core ECUs.
  std::vector<std::size_t> order(network.functions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& fa = network.functions[a];
    const auto& fb = network.functions[b];
    const double ua = static_cast<double>(fa.wcet_us) / static_cast<double>(fa.period_us);
    const double ub = static_cast<double>(fb.wcet_us) / static_cast<double>(fb.period_us);
    return ua > ub;
  });

  struct OpenEcu {
    int seg_class;
    std::vector<double> core_u;
    std::size_t index;
  };
  std::vector<OpenEcu> open;
  const double inflate =
      1.0 + options.interference_factor * static_cast<double>(options.cores_per_ecu - 1);

  for (std::size_t f : order) {
    const FunctionSpec& fun = network.functions[f];
    const double u = static_cast<double>(fun.wcet_us) * inflate /
                     static_cast<double>(fun.period_us);
    const int seg = segregation_class(fun);
    bool placed = false;
    for (OpenEcu& e : open) {
      if (e.seg_class != seg) continue;
      for (double& cu : e.core_u) {
        if (cu + u <= options.utilization_bound) {
          cu += u;
          arch.ecus[e.index].hosted_functions.push_back(f);
          placed = true;
          break;
        }
      }
      if (placed) break;
    }
    if (!placed) {
      EcuInstance ecu;
      ecu.name = "domain-controller-" + std::to_string(arch.ecus.size());
      ecu.cores = options.cores_per_ecu;
      ecu.unit_cost = 3.5;  // a multi-core domain controller costs more per box
      ecu.position_m = 1.0 + 0.6 * static_cast<double>(arch.ecus.size());
      ecu.hosted_functions = {f};
      arch.ecus.push_back(std::move(ecu));
      OpenEcu oe;
      oe.seg_class = seg;
      oe.core_u.assign(options.cores_per_ecu, 0.0);
      oe.core_u[0] = u;
      oe.index = arch.ecus.size() - 1;
      open.push_back(std::move(oe));
    }
  }

  BusInstance backbone;
  backbone.name = "backbone";
  backbone.tech = options.backbone;
  backbone.attached_ecus.resize(arch.ecus.size());
  std::iota(backbone.attached_ecus.begin(), backbone.attached_ecus.end(), 0);
  arch.buses.push_back(std::move(backbone));
  arch.gateway_count = 0;  // homogeneous network needs no protocol gateways
  return arch;
}

}  // namespace ev::core
