#include "ev/core/cosim.h"

#include <cstring>
#include <stdexcept>

#include "ev/core/app_model.h"

namespace ev::core {

VehicleSystem::VehicleSystem(VehicleSystemConfig config) : config_(std::move(config)) {
  if (config_.control_period_s <= 0.0)
    throw std::invalid_argument("VehicleSystemConfig: control_period_s must be positive");
  if (config_.bms_publish_period_s <= 0.0)
    throw std::invalid_argument(
        "VehicleSystemConfig: bms_publish_period_s must be positive");
  if (config_.middleware_frame_us <= 0)
    throw std::invalid_argument(
        "VehicleSystemConfig: middleware_frame_us must be positive");
  config_.network.synthetic_bms_source = false;  // the real BMS publishes instead
  config_.powertrain.dt_s = config_.control_period_s;
  powertrain_ = std::make_unique<powertrain::PowertrainSimulation>(config_.powertrain);
  network_ = std::make_unique<network::Figure1Network>(sim_, config_.network);
  cockpit_ = std::make_unique<middleware::Middleware>(sim_, "cockpit-controller",
                                                      config_.middleware_frame_us);
}

Subsystem& VehicleSystem::attach(std::unique_ptr<Subsystem> subsystem) {
  subsystems_.push_back(std::move(subsystem));
  subsystems_.back()->attach(*this);
  return *subsystems_.back();
}

CoSimResult VehicleSystem::run(const powertrain::DriveCycle& cycle) {
  CoSimResult result;

  // --- Cockpit software: partitions per the static application model --------
  // The same model feeds ev::analysis, so the statically verified partition
  // set is by construction the one that runs.
  const CockpitAppModel app = cockpit_app_model(config_, /*health_enabled=*/false);
  std::size_t info_part = 0;
  std::size_t hmi_part = 0;
  for (const PartitionModel& partition : app.partitions) {
    const std::size_t index = cockpit_->create_partition(
        partition.name, partition.budget_us, partition.criticality);
    if (partition.name == "information") info_part = index;
    if (partition.name == "hmi") hmi_part = index;
  }

  // Latest pack state as it arrives over the network (what the cockpit sees,
  // not simulation ground truth). Fed by the pack.state topic below, so the
  // information partition observes the sample at a deterministic flush point
  // rather than in network-interrupt context.
  struct CockpitView {
    double soc = 0.0;
    double usable_wh = 0.0;
    bool fresh = false;
  };
  auto view = std::make_shared<CockpitView>();
  middleware::Topic<PackStateSample> pack_state(cockpit_->broker(), kTopicPackState);
  pack_state.subscribe([view](const PackStateSample& sample) {
    view->soc = sample.soc;
    view->usable_wh = sample.usable_wh;
    view->fresh = true;
  });

  // The information partition provides the range service from network data.
  cockpit_->services().provide(
      "range", &cockpit_->partition(info_part),
      [this, view](const std::vector<std::uint8_t>&)
          -> std::optional<std::vector<std::uint8_t>> {
        if (!view->fresh) return std::nullopt;
        const double km =
            powertrain_->range_estimator().remaining_range_km(view->usable_wh);
        std::vector<std::uint8_t> out(sizeof(double));
        std::memcpy(out.data(), &km, sizeof(double));
        return out;
      });

  // The HMI partition polls the range service every period.
  double last_range_km = 0.0;
  std::size_t range_calls = 0;
  cockpit_->deploy(hmi_part, middleware::Runnable{
                                 "hmi-range-widget", 200000, 1500,
                                 [this, &last_range_km, &range_calls] {
                                   const auto resp =
                                       cockpit_->services().call("range", {});
                                   if (resp.status == middleware::CallStatus::kOk &&
                                       resp.payload.size() >= sizeof(double)) {
                                     std::memcpy(&last_range_km, resp.payload.data(),
                                                 sizeof(double));
                                     ++range_calls;
                                   }
                                   return middleware::RunOutcome::kOk;
                                 }});

  // --- Infotainment domain receives the forwarded BMS frames -----------------
  std::size_t bms_at_hmi = 0;
  double latency_sum_ms = 0.0;
  network_->infotainment_most().subscribe(
      [&bms_at_hmi, &latency_sum_ms, &pack_state](const network::Frame& f,
                                                  sim::Time at) {
        if (f.id != network::kFrameIdBmsOnMost) return;
        ++bms_at_hmi;
        latency_sum_ms += (at - f.created).to_ms();
        if (f.payload.size() >= 2 * sizeof(double)) {
          PackStateSample sample;
          std::memcpy(&sample.soc, f.payload.data(), sizeof(double));
          std::memcpy(&sample.usable_wh, f.payload.data() + sizeof(double),
                      sizeof(double));
          pack_state.publish(sample, at.to_us());
        }
      });

  // --- Periodic processes ------------------------------------------------------
  // The cockpit application exists; let every subsystem arm itself (fault
  // plans, watchdogs, watchers) before the clock starts.
  for (const auto& s : subsystems_) s->before_run(*this);
  network_->start();
  cockpit_->start();

  // Powertrain stepping.
  const double t_end = cycle.duration_s();
  double local_t = 0.0;
  sim::ScheduledHandle step_ev{
      sim_, sim_.schedule_periodic(sim::Time{}, sim::Time::seconds(config_.control_period_s),
                                   [this, &cycle, &local_t] {
                                     (void)powertrain_->step(cycle.speed_at(local_t));
                                     local_t += config_.control_period_s;
                                   })};

  // BMS publication onto the chassis FlexRay (payload: soc, usable Wh).
  std::size_t published = 0;
  sim::ScheduledHandle publish_ev{
      sim_, sim_.schedule_periodic(
                sim::Time::seconds(config_.bms_publish_period_s),
                         sim::Time::seconds(config_.bms_publish_period_s),
                         [this, &published] {
                           network::Frame f;
                           f.id = network::kFrameIdBmsStatus;
                           f.source = 6;
                           f.payload.resize(2 * sizeof(double));
                           const double soc = powertrain_->bms().report().pack_soc;
                           const double wh = powertrain_->pack().usable_energy_wh();
                           std::memcpy(f.payload.data(), &soc, sizeof(double));
                           std::memcpy(f.payload.data() + sizeof(double), &wh,
                                       sizeof(double));
                           f.payload_size = f.payload.size();
                           if (network_->chassis_flexray().send(std::move(f))) ++published;
                         })};

  sim_.run_until(sim::Time::seconds(t_end));
  // Cancel this run's periodic events: their lambdas capture locals of this
  // frame and must never fire after return. The RAII handles would do this
  // at scope exit anyway; cancelling here keeps the kernel clean before the
  // result harvest below.
  (void)step_ev.cancel();
  (void)publish_ev.cancel();

  // Harvest the powertrain ledger (the powertrain stepped inside events, so
  // its internal ledger covers exactly this cycle).
  result.cycle = powertrain_->ledger();
  result.cycle.distance_km = powertrain_->vehicle().distance_m() / 1000.0;
  result.cycle.duration_s = powertrain_->time_s();
  result.cycle.final_soc = powertrain_->pack().mean_soc();
  const double net_wh =
      result.cycle.battery_energy_out_wh - result.cycle.battery_energy_in_wh;
  result.cycle.consumption_wh_km =
      result.cycle.distance_km > 0.01 ? net_wh / result.cycle.distance_km : 0.0;
  result.bms_frames_published = published;
  result.bms_frames_at_hmi = bms_at_hmi;
  result.bms_to_hmi_latency_ms = bms_at_hmi > 0 ? latency_sum_ms / static_cast<double>(bms_at_hmi) : 0.0;
  result.range_service_calls = range_calls;
  result.last_range_km = last_range_km;
  for (const auto& s : subsystems_) {
    SubsystemSnapshot snap;
    snap.name = std::string(s->name());
    s->after_run(*this, snap);
    result.subsystems.push_back(std::move(snap));
  }
  return result;
}

}  // namespace ev::core
