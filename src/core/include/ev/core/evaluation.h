/// \file evaluation.h
/// Architecture evaluation: scores a deployment on the axes the paper
/// argues about — ECU count, wiring, hardware cost, utilization
/// (flexibility headroom), bus load, and end-to-end schedulability of the
/// signal chains. Experiment E8 compares the federated and integrated
/// styles on these metrics.
#pragma once

#include "ev/core/architecture.h"

namespace ev::core {

/// Evaluation output.
struct ArchitectureMetrics {
  std::size_t ecu_count = 0;
  std::size_t bus_count = 0;
  std::size_t gateway_count = 0;
  double wiring_m = 0.0;          ///< Harness length (trunk + stubs).
  double hardware_cost = 0.0;     ///< ECUs + bus controllers + gateways.
  double mean_utilization = 0.0;  ///< Mean per-ECU compute utilization.
  double max_utilization = 0.0;
  std::size_t cross_ecu_signals = 0;  ///< Signals that need the network.
  std::size_t local_signals = 0;      ///< Signals resolved in ECU memory.
  double worst_bus_load = 0.0;        ///< Highest bus bandwidth utilization.
  bool buses_feasible = true;         ///< All bus loads < 1.
  double flexibility = 0.0;  ///< Spare utilization capacity (0..1) for new functions.
};

/// Evaluation assumptions.
struct EvaluationOptions {
  double stub_length_m = 0.8;      ///< Wire from an ECU to its bus trunk.
  double gateway_cost = 5.0;       ///< Relative cost of a central gateway.
  double interference_factor = 0.08;  ///< Must match the synthesis options.
};

/// Scores \p arch.
[[nodiscard]] ArchitectureMetrics evaluate(const Architecture& arch,
                                           const EvaluationOptions& options = {});

}  // namespace ev::core
