/// \file scenario.h
/// From declarative scenario to running vehicle. This is where the
/// dependency-free config::ScenarioSpec meets the composition root: the
/// builder maps the spec onto a VehicleSystemConfig, attaches the enabled
/// Subsystem adapters (obs, security, faults, health — in that order, so
/// later subsystems can look up earlier ones), and the runner drives the
/// spec's cycle and renders the outcome as deterministic JSON. Same
/// scenario + same seed ⇒ byte-identical JSON; the `evsys` CLI and the E18
/// campaign are thin wrappers around these functions.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ev/config/scenario.h"
#include "ev/core/cosim.h"
#include "ev/powertrain/drive_cycle.h"

namespace ev::core {

/// Maps the spec's pack/BMS/powertrain/network/timing sections onto a
/// VehicleSystemConfig (remaining plant parameters keep their defaults).
[[nodiscard]] VehicleSystemConfig to_vehicle_config(const config::ScenarioSpec& spec);

/// Builds the drive mission the spec describes.
[[nodiscard]] powertrain::DriveCycle to_drive_cycle(const config::ScenarioSpec& spec);

/// Validates \p spec, constructs the vehicle, and attaches every enabled
/// subsystem. The returned system is ready for one run().
[[nodiscard]] std::unique_ptr<VehicleSystem> build_vehicle(
    const config::ScenarioSpec& spec);

/// Outcome of one scenario run.
struct ScenarioRunResult {
  std::string scenario;  ///< spec.name
  CoSimResult cosim;
};

/// One-call experiment: build_vehicle + run. \p vehicle_out, when non-null,
/// receives the (already-run) system for further inspection.
[[nodiscard]] ScenarioRunResult run_scenario(
    const config::ScenarioSpec& spec,
    std::unique_ptr<VehicleSystem>* vehicle_out = nullptr);

/// Renders the result as one deterministic JSON object: scenario name, the
/// energy/driving ledger, the cross-domain telemetry figures, and one
/// section per subsystem snapshot. All doubles in shortest round-trippable
/// form, keys in fixed order.
void write_result_json(const ScenarioRunResult& result, std::ostream& out);
[[nodiscard]] std::string result_json(const ScenarioRunResult& result);

}  // namespace ev::core
