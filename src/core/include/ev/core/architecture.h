/// \file architecture.h
/// Electric/electronic architecture description model — the design object of
/// the whole paper. A vehicle is a set of software *functions* exchanging
/// *signals*, deployed onto *ECUs* attached to *buses*; the architecture
/// style (federated one-function-per-ECU vs. integrated/consolidated) is a
/// property of the deployment, and the evaluation module scores it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::core {

/// Vehicle domain a function belongs to (drives bus selection in the
/// federated style, mirroring Fig. 1).
enum class Domain { kChassis, kSafety, kComfort, kInfotainment, kBody };

/// Name for reports.
[[nodiscard]] std::string to_string(Domain domain);

/// Automotive safety integrity level (coarse).
enum class Criticality { kQm, kAsilB, kAsilD };

/// One software function.
struct FunctionSpec {
  std::string name;
  Domain domain = Domain::kComfort;
  Criticality criticality = Criticality::kQm;
  std::int64_t period_us = 20000;
  std::int64_t wcet_us = 1000;  ///< On the reference single-core ECU.
};

/// A signal between two functions.
struct SignalSpec {
  std::string name;
  std::size_t from = 0;  ///< Producer function index.
  std::size_t to = 0;    ///< Consumer function index.
  std::size_t bytes = 8;
  std::int64_t period_us = 20000;
};

/// The functional network to deploy.
struct FunctionNetwork {
  std::vector<FunctionSpec> functions;
  std::vector<SignalSpec> signals;
};

/// Bus technology of a deployed bus.
enum class BusTech { kCan, kLin, kFlexRay, kMost, kEthernet };

/// Name for reports.
[[nodiscard]] std::string to_string(BusTech tech);

/// Nominal bit rate of a technology [bit/s].
[[nodiscard]] double bit_rate_of(BusTech tech) noexcept;

/// Relative hardware cost of one bus controller/transceiver of a technology.
[[nodiscard]] double controller_cost_of(BusTech tech) noexcept;

/// A deployed ECU.
struct EcuInstance {
  std::string name;
  std::size_t cores = 1;
  double position_m = 0.0;   ///< Along the wiring trunk (vehicle length axis).
  double unit_cost = 1.0;    ///< Relative hardware cost.
  std::vector<std::size_t> hosted_functions;  ///< Function indices.
};

/// A deployed bus.
struct BusInstance {
  std::string name;
  BusTech tech = BusTech::kCan;
  std::vector<std::size_t> attached_ecus;  ///< ECU indices.
};

/// A complete deployment.
struct Architecture {
  std::string style;                ///< "federated" or "integrated" (or custom).
  FunctionNetwork network;          ///< What is deployed.
  std::vector<EcuInstance> ecus;
  std::vector<BusInstance> buses;
  std::size_t gateway_count = 0;

  /// ECU hosting function \p f; throws if unmapped.
  [[nodiscard]] std::size_t ecu_of(std::size_t f) const;
  /// True when producer and consumer of \p s share an ECU.
  [[nodiscard]] bool signal_is_local(const SignalSpec& s) const;
};

/// A representative compact-EV function network (~30 functions across all
/// domains with realistic periods, WCETs, and signal fan-out). \p scale
/// repeats the comfort/body tail to grow the system for sweeps.
[[nodiscard]] FunctionNetwork reference_function_network(std::size_t scale = 1);

}  // namespace ev::core
