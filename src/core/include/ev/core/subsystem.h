/// \file subsystem.h
/// The pluggable-subsystem interface of the composition root. A Subsystem
/// is one cross-cutting capability — observability, fault injection +
/// degradation, middleware health monitoring, authenticated telemetry —
/// packaged so VehicleSystem can bind it into the co-simulation without the
/// experiment hand-wiring listeners across layers. Lifecycle: attach() once
/// when the subsystem is handed to the vehicle (the plant, network, and
/// cockpit middleware exist; cockpit partitions do not yet), before_run()
/// when run() has created the cockpit application and is about to start the
/// clock, and after_run() once the drive completed, to contribute a named
/// section of deterministic key/value results to the CoSimResult.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ev::core {

class VehicleSystem;

/// One subsystem's contribution to a run's result: insertion-ordered
/// key/value pairs, all derived from simulation state so same-seed runs
/// snapshot identical values.
struct SubsystemSnapshot {
  std::string name;
  std::vector<std::pair<std::string, double>> values;

  void set(std::string key, double value) {
    values.emplace_back(std::move(key), value);
  }
};

/// Base class for pluggable vehicle subsystems.
class Subsystem {
 public:
  virtual ~Subsystem() = default;

  /// Stable name, used as the snapshot section and for lookups in reports.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Binds to the constructed vehicle: simulator observer hooks, bus
  /// subscriptions, degradation wiring into the plant. Called exactly once,
  /// from VehicleSystem::attach(), in attachment order.
  virtual void attach(VehicleSystem& vehicle) = 0;

  /// Called by VehicleSystem::run() after the cockpit application exists
  /// and before the simulation clock starts: arm fault plans, start
  /// watchdogs and watchers.
  virtual void before_run(VehicleSystem& vehicle) { (void)vehicle; }

  /// Called by VehicleSystem::run() after the drive completed. Fill \p out
  /// with this subsystem's result section (out.name is pre-set).
  virtual void after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) {
    (void)vehicle;
    (void)out;
  }
};

}  // namespace ev::core
