/// \file subsystems.h
/// The standard Subsystem adapters the composition root knows how to build
/// from a scenario description:
///  - ObservabilitySubsystem: one MetricsRegistry + span sink observing the
///    kernel, every Fig. 1 bus, and the cockpit middleware;
///  - FaultsSubsystem: seeded FaultPlan resolved against buses/partitions/
///    cells by name, NetworkHealthWatcher over all buses, and the
///    DegradationManager driving the plant's torque/speed limits;
///  - HealthSubsystem: heartbeat watchdog over the cockpit partitions,
///    feeding partition restarts into the degradation manager when one is
///    attached;
///  - SecuritySubsystem: authenticated (HMAC + replay-protected) telemetry
///    frames on the chassis FlexRay backbone, verified at the receiver.
/// Each adapter owns its domain objects; experiments reach them through
/// VehicleSystem::find_subsystem<T>() for reporting.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ev/config/scenario.h"
#include "ev/core/cosim.h"
#include "ev/core/subsystem.h"
#include "ev/faults/degradation.h"
#include "ev/faults/fault_plan.h"
#include "ev/faults/network_faults.h"
#include "ev/middleware/health.h"
#include "ev/network/can.h"
#include "ev/obs/metrics.h"
#include "ev/obs/sim_observer.h"
#include "ev/obs/span_trace.h"
#include "ev/security/secure_channel.h"

namespace ev::core {

/// Frame id of the authenticated telemetry flow on the chassis FlexRay.
inline constexpr std::uint32_t kFrameIdSecureTelemetry = 0x160;

/// Observes kernel, buses, and middleware into one registry/span sink.
class ObservabilitySubsystem final : public Subsystem {
 public:
  /// Detaches the kernel observer: sibling subsystems destroyed later may
  /// still cancel events (RAII handles), which notifies the observer.
  ~ObservabilitySubsystem() override;

  [[nodiscard]] std::string_view name() const noexcept override { return "obs"; }
  void attach(VehicleSystem& vehicle) override;
  void after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) override;

  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] obs::TraceLog& trace() noexcept { return trace_; }

  /// Writes <base>.metrics.json, <base>.metrics.csv, and — when spans were
  /// recorded — <base>.trace.json. Returns false when any write failed.
  bool export_files(const std::string& base) const;

 private:
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  std::unique_ptr<obs::SimObserver> observer_;
  sim::Simulator* sim_ = nullptr;  // where observer_ is registered
};

/// Seeded fault injection + network health watching + graceful degradation.
class FaultsSubsystem final : public Subsystem {
 public:
  struct Options {
    std::uint64_t seed = 1;
    std::vector<config::FaultEventSpec> events;
    faults::DegradationPolicy policy{};
    faults::NetworkWatchConfig watch{};
  };

  explicit FaultsSubsystem(Options options);

  [[nodiscard]] std::string_view name() const noexcept override { return "faults"; }
  void attach(VehicleSystem& vehicle) override;
  void before_run(VehicleSystem& vehicle) override;
  void after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) override;

  [[nodiscard]] faults::DegradationManager& degradation() noexcept { return *degradation_; }
  [[nodiscard]] faults::FaultPlan& plan() noexcept { return *plan_; }
  [[nodiscard]] faults::NetworkHealthWatcher& watcher() noexcept { return *watcher_; }
  /// Mode transitions recorded during the run, as (time_s, from, to, cause).
  struct ModeChange {
    double t_s;
    faults::DriveMode from;
    faults::DriveMode to;
    std::string cause;
  };
  [[nodiscard]] const std::vector<ModeChange>& mode_changes() const noexcept {
    return mode_changes_;
  }

 private:
  Options options_;
  std::unique_ptr<faults::DegradationManager> degradation_;
  std::unique_ptr<faults::NetworkHealthWatcher> watcher_;
  std::unique_ptr<faults::FaultPlan> plan_;
  std::vector<std::unique_ptr<faults::BabblingIdiot>> babblers_;
  /// Combined stochastic error model per CAN bus: rate and probability specs
  /// targeting the same bus merge before arming (mirrors
  /// analysis::derive_error_models so sim and analyzer agree).
  std::map<network::CanBus*, network::CanErrorModel> staged_errors_;
  std::vector<ModeChange> mode_changes_;
};

/// Heartbeat watchdog over the cockpit partitions.
class HealthSubsystem final : public Subsystem {
 public:
  explicit HealthSubsystem(middleware::HealthConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "health"; }
  void attach(VehicleSystem& vehicle) override;
  void before_run(VehicleSystem& vehicle) override;
  void after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) override;

  /// Valid after before_run() (the monitor needs the partitions to exist).
  [[nodiscard]] middleware::HealthMonitor& monitor() noexcept { return *monitor_; }

 private:
  middleware::HealthConfig config_;
  std::unique_ptr<middleware::HealthMonitor> monitor_;
};

/// Authenticated pack-telemetry frames on the chassis FlexRay: a sender
/// channel protects (counter + truncated HMAC, ChaCha20 payload) a periodic
/// telemetry message, the receiving end verifies every frame. The paper's
/// §4.2 argument made operational inside the composed vehicle.
class SecuritySubsystem final : public Subsystem {
 public:
  struct Options {
    double publish_period_s = 0.1;  ///< Telemetry period on the chassis bus.
    security::ChannelConfig channel{};
  };

  SecuritySubsystem();
  explicit SecuritySubsystem(Options options);

  [[nodiscard]] std::string_view name() const noexcept override { return "security"; }
  void attach(VehicleSystem& vehicle) override;
  void before_run(VehicleSystem& vehicle) override;
  void after_run(VehicleSystem& vehicle, SubsystemSnapshot& out) override;

  [[nodiscard]] std::uint64_t frames_protected() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t frames_authenticated() const noexcept { return verified_; }
  [[nodiscard]] std::uint64_t frames_rejected() const noexcept { return rejected_; }

 private:
  Options options_;
  std::unique_ptr<security::SecureChannel> sender_;
  std::unique_ptr<security::SecureChannel> receiver_;
  std::uint64_t sent_ = 0;
  std::uint64_t verified_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ev::core
