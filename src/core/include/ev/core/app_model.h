/// \file app_model.h
/// Static description of the cockpit application the composition root
/// deploys: which partitions exist with which budgets, which runnables they
/// host, and which pub/sub topics flow between them. VehicleSystem::run()
/// creates its partitions from this model and the ev::analysis layer reads
/// the very same model for schedulability analysis and wiring lints — one
/// source of truth, so what is verified statically is what runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ev/middleware/pubsub.h"

namespace ev::core {

struct VehicleSystemConfig;

/// Topic id of the pack-state samples the network receiver publishes into
/// the cockpit broker (decoded from the forwarded BMS frames on MOST).
inline constexpr middleware::TopicId kTopicPackState = 0x01;

/// Payload of kTopicPackState (POD — the wire form is the object bytes).
struct PackStateSample {
  double soc = 0.0;        ///< Pack state of charge as received over the network.
  double usable_wh = 0.0;  ///< Usable pack energy [Wh].
};

/// One deployed runnable, as the analyzer needs to see it.
struct RunnableModel {
  std::string name;
  std::int64_t period_us = 0;  ///< Activation period.
  std::int64_t wcet_us = 0;    ///< Declared worst-case execution time.
};

/// One cockpit partition with its per-major-frame budget.
struct PartitionModel {
  std::string name;
  std::int64_t budget_us = 0;
  int criticality = 0;
  std::vector<RunnableModel> runnables;
};

/// One broker topic with its declared endpoints. Publishers/subscribers name
/// partitions, or pseudo-endpoints (e.g. "network-rx") for event-context
/// publications that run outside any partition window.
struct TopicModel {
  middleware::TopicId id = 0;
  std::string name;
  std::size_t payload_bytes = 0;
  std::vector<std::string> publishers;
  std::vector<std::string> subscribers;
};

/// The cockpit ECU's application, statically described.
struct CockpitAppModel {
  std::string ecu_name;
  std::int64_t major_frame_us = 0;
  std::vector<PartitionModel> partitions;
  std::vector<TopicModel> topics;
};

/// The application VehicleSystem::run() deploys for \p config. When
/// \p health_enabled, every partition additionally carries the heartbeat
/// runnable the HealthSubsystem's monitor deploys (period = one major frame,
/// tiny WCET) so budget analysis sees the monitoring overhead too.
[[nodiscard]] CockpitAppModel cockpit_app_model(const VehicleSystemConfig& config,
                                               bool health_enabled);

}  // namespace ev::core
