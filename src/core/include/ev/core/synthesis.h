/// \file synthesis.h
/// Architecture synthesis: turns a function network into a deployed
/// architecture in either of the two styles the paper contrasts —
/// *federated* (one function per single-core ECU, heterogeneous per-domain
/// buses joined by a central gateway: today's grown architecture, Fig. 1)
/// or *integrated* (functions consolidated onto few multi-core ECUs behind
/// one deterministic backbone: the paradigm shift of Section 3).
#pragma once

#include "ev/core/architecture.h"
#include "ev/ecu/multicore.h"

namespace ev::core {

/// Knobs for the integrated style.
struct IntegratedOptions {
  std::size_t cores_per_ecu = 4;
  double utilization_bound = 0.8;   ///< Per-core cap for placement.
  double interference_factor = 0.08;
  BusTech backbone = BusTech::kEthernet;
  /// ASIL-D functions are never co-located on a core with QM functions
  /// unless the middleware provides partitions; modelled as a flag that
  /// relaxes the segregation constraint.
  bool partitioned_middleware = true;
};

/// Builds the federated deployment: every function gets its own ECU on its
/// domain's bus; domains are joined by a central gateway.
[[nodiscard]] Architecture synthesize_federated(const FunctionNetwork& network);

/// Builds the integrated deployment: consolidates functions onto as few
/// multi-core ECUs as the utilization/segregation constraints allow, all on
/// one backbone bus.
[[nodiscard]] Architecture synthesize_integrated(const FunctionNetwork& network,
                                                 const IntegratedOptions& options = {});

}  // namespace ev::core
