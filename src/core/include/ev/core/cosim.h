/// \file cosim.h
/// Whole-vehicle co-simulation: the powertrain plant (battery + BMS + motor
/// + vehicle), the Fig. 1 in-vehicle network, and the middleware-hosted
/// cockpit software run against one discrete-event clock. Real battery data
/// flows over the chassis FlexRay through the central gateway into the
/// infotainment domain, and the range information system is served through
/// the SOA registry — the paper's architecture, end to end and executable.
/// VehicleSystem is the composition root: cross-cutting capabilities
/// (observability, fault injection + degradation, health monitoring,
/// authenticated telemetry) plug in as Subsystem adapters instead of being
/// hand-wired by every experiment.
#pragma once

#include <memory>
#include <vector>

#include "ev/core/subsystem.h"
#include "ev/middleware/middleware.h"
#include "ev/network/topology.h"
#include "ev/powertrain/simulation.h"
#include "ev/sim/simulator.h"

namespace ev::core {

/// One cockpit partition-window override: list order is the major-frame
/// window order, `budget_us` the window length (see config::ArchSpec).
struct PartitionWindowOverride {
  std::string partition;
  std::int64_t budget_us = 0;
};

/// Co-simulation configuration.
struct VehicleSystemConfig {
  powertrain::PowertrainConfig powertrain;
  network::Figure1Config network;
  double control_period_s = 0.1;    ///< Powertrain stepping period.
  double bms_publish_period_s = 0.1;  ///< Pack status publication period.
  std::int64_t middleware_frame_us = 20000;  ///< Cockpit ECU major frame.
  /// When non-empty, replaces the default cockpit partition schedule; must
  /// name every default partition exactly once (cockpit_app_model throws
  /// std::invalid_argument otherwise).
  std::vector<PartitionWindowOverride> partition_windows;
};

/// Result of a co-simulated drive.
struct CoSimResult {
  powertrain::CycleResult cycle;          ///< Energy/driving ledger.
  std::size_t bms_frames_published = 0;   ///< Chassis-bus publications.
  std::size_t bms_frames_at_hmi = 0;      ///< Received in the infotainment domain.
  double bms_to_hmi_latency_ms = 0.0;     ///< Mean cross-domain latency.
  std::size_t range_service_calls = 0;    ///< SOA calls served.
  double last_range_km = 0.0;             ///< Final remaining-range answer.
  /// One section per attached subsystem, in attachment order.
  std::vector<SubsystemSnapshot> subsystems;
};

/// The bound system.
class VehicleSystem {
 public:
  /// Validates the timing configuration: non-positive control_period_s,
  /// bms_publish_period_s, or middleware_frame_us throw
  /// std::invalid_argument before anything is built.
  explicit VehicleSystem(VehicleSystemConfig config = {});

  /// Hands \p subsystem to the vehicle and binds it (Subsystem::attach) in
  /// attachment order. Call before run(); subsystems that look each other
  /// up (health -> faults' degradation manager) resolve against everything
  /// attached earlier. Returns the attached subsystem for direct access.
  Subsystem& attach(std::unique_ptr<Subsystem> subsystem);

  /// First attached subsystem of dynamic type T, or nullptr.
  template <typename T>
  [[nodiscard]] T* find_subsystem() noexcept {
    for (const auto& s : subsystems_)
      if (auto* typed = dynamic_cast<T*>(s.get())) return typed;
    return nullptr;
  }

  /// Drives \p cycle to completion under co-simulation. Builds the cockpit
  /// application, runs every attached subsystem's before_run/after_run
  /// around the drive, and snapshots each into the result. One drive per
  /// VehicleSystem: construct a fresh system for the next run.
  CoSimResult run(const powertrain::DriveCycle& cycle);

  /// Component access (after or between runs).
  [[nodiscard]] const powertrain::PowertrainSimulation& powertrain() const noexcept {
    return *powertrain_;
  }
  [[nodiscard]] powertrain::PowertrainSimulation& powertrain() noexcept {
    return *powertrain_;
  }
  [[nodiscard]] network::Figure1Network& network() noexcept { return *network_; }
  [[nodiscard]] middleware::Middleware& cockpit() noexcept { return *cockpit_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] const VehicleSystemConfig& config() const noexcept { return config_; }

 private:
  VehicleSystemConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<powertrain::PowertrainSimulation> powertrain_;
  std::unique_ptr<network::Figure1Network> network_;
  std::unique_ptr<middleware::Middleware> cockpit_;
  std::vector<std::unique_ptr<Subsystem>> subsystems_;
};

}  // namespace ev::core
