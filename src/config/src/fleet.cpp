#include "ev/config/fleet.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "ev/config/scenario.h"  // format_double
#include "kv_text.h"

namespace ev::config {
namespace {

using detail::fail;

GridFaultKindSpec parse_grid_fault_kind(const std::string& s) {
  if (s == "grid.capacity_drop") return GridFaultKindSpec::kCapacityDrop;
  if (s == "grid.feeder_partition") return GridFaultKindSpec::kFeederPartition;
  if (s == "comms.blackout") return GridFaultKindSpec::kCommsBlackout;
  fail("fleet: unknown grid fault kind '" + s + "'");
}

double parse_double(const std::string& s, const std::string& key) {
  return detail::parse_double(s, key, "fleet");
}
std::uint64_t parse_u64(const std::string& s, const std::string& key) {
  return detail::parse_u64(s, key, "fleet");
}

}  // namespace

std::string to_string(GridFaultKindSpec kind) {
  switch (kind) {
    case GridFaultKindSpec::kCapacityDrop: return "grid.capacity_drop";
    case GridFaultKindSpec::kFeederPartition: return "grid.feeder_partition";
    case GridFaultKindSpec::kCommsBlackout: return "comms.blackout";
  }
  return "grid.capacity_drop";
}

void FleetSpec::validate() const {
  // NaN slips through the range comparisons below (every comparison is
  // false) and +inf passes one-sided lower-bound checks, so finiteness is
  // asserted first; a valid spec holds only finite doubles, matching what
  // the parser accepts.
  const auto finite = [](double v, const char* what) {
    if (!std::isfinite(v)) fail(std::string("fleet: ") + what + " must be finite");
  };
  finite(sim_hours, "fleet.sim_hours");
  finite(tick_s, "fleet.tick_s");
  finite(station_max_current_a, "station.max_current_a");
  finite(station_min_current_a, "station.min_current_a");
  finite(station_safe_current_a, "station.safe_current_a");
  finite(station_voltage_v, "station.voltage_v");
  finite(arrival_rate_per_station_per_h, "sessions.arrival_rate_per_station_per_h");
  finite(session_energy_min_kwh, "sessions.energy_min_kwh");
  finite(session_energy_max_kwh, "sessions.energy_max_kwh");
  finite(meter_period_s, "sessions.meter_period_s");
  finite(grid_capacity_kw, "grid.capacity_kw");
  finite(rebalance_period_s, "grid.rebalance_period_s");
  finite(heartbeat_period_s, "heartbeat.period_s");
  finite(heartbeat_lease_s, "heartbeat.lease_s");
  finite(msg_loss_probability, "channel.loss_probability");
  finite(retry_timeout_s, "retry.timeout_s");
  finite(retry_backoff_base_s, "retry.backoff_base_s");
  finite(retry_backoff_cap_s, "retry.backoff_cap_s");
  finite(retry_jitter, "retry.jitter");
  if (name.empty()) fail("fleet: name must not be empty");
  if (name.find_first_of(" \t\n=") != std::string::npos)
    fail("fleet: name must not contain whitespace or '='");
  if (stations == 0) fail("fleet: fleet.stations must be positive");
  if (feeders == 0) fail("fleet: fleet.feeders must be positive");
  if (feeders > stations) fail("fleet: fleet.feeders must not exceed fleet.stations");
  if (sim_hours <= 0.0) fail("fleet: fleet.sim_hours must be positive");
  if (tick_s <= 0.0) fail("fleet: fleet.tick_s must be positive");
  if (station_max_current_a <= 0.0)
    fail("fleet: station.max_current_a must be positive");
  if (station_min_current_a <= 0.0 || station_min_current_a > station_max_current_a)
    fail("fleet: station.min_current_a must lie in (0, station.max_current_a]");
  if (station_safe_current_a <= 0.0 || station_safe_current_a > station_max_current_a)
    fail("fleet: station.safe_current_a must lie in (0, station.max_current_a]");
  if (station_voltage_v <= 0.0) fail("fleet: station.voltage_v must be positive");
  if (rogue_stations > stations)
    fail("fleet: station.rogue_count must not exceed fleet.stations");
  if (arrival_rate_per_station_per_h < 0.0)
    fail("fleet: sessions.arrival_rate_per_station_per_h must be non-negative");
  if (session_energy_min_kwh <= 0.0 || session_energy_max_kwh < session_energy_min_kwh)
    fail("fleet: sessions.energy_min_kwh/_max_kwh must satisfy 0 < min <= max");
  if (meter_period_s <= 0.0) fail("fleet: sessions.meter_period_s must be positive");
  if (grid_capacity_kw <= 0.0) fail("fleet: grid.capacity_kw must be positive");
  if (rebalance_period_s < tick_s)
    fail("fleet: grid.rebalance_period_s must be >= fleet.tick_s");
  if (heartbeat_period_s <= 0.0) fail("fleet: heartbeat.period_s must be positive");
  if (heartbeat_lease_s < heartbeat_period_s)
    fail("fleet: heartbeat.lease_s must be >= heartbeat.period_s");
  if (msg_loss_probability < 0.0 || msg_loss_probability >= 1.0)
    fail("fleet: channel.loss_probability must lie in [0, 1)");
  if (retry_max_attempts == 0) fail("fleet: retry.max_attempts must be >= 1");
  if (retry_timeout_s <= 0.0) fail("fleet: retry.timeout_s must be positive");
  if (retry_backoff_base_s <= 0.0) fail("fleet: retry.backoff_base_s must be positive");
  if (retry_backoff_cap_s < retry_backoff_base_s)
    fail("fleet: retry.backoff_cap_s must be >= retry.backoff_base_s");
  if (retry_jitter < 0.0 || retry_jitter > 1.0)
    fail("fleet: retry.jitter must lie in [0, 1]");
  for (std::size_t i = 0; i < grid_faults.size(); ++i) {
    const GridFaultSpec& f = grid_faults[i];
    const std::string at = "gridfault." + std::to_string(i);
    if (!std::isfinite(f.at_s)) fail("fleet: " + at + " time must be finite");
    if (!std::isfinite(f.value)) fail("fleet: " + at + " value must be finite");
    if (!std::isfinite(f.duration_s)) fail("fleet: " + at + " duration must be finite");
    if (f.at_s < 0.0) fail("fleet: " + at + " time must be non-negative");
    if (f.duration_s <= 0.0) fail("fleet: " + at + " needs a positive duration");
    switch (f.kind) {
      case GridFaultKindSpec::kCapacityDrop:
        if (f.value <= 0.0 || f.value > 1.0)
          fail("fleet: " + at + " capacity drop fraction must lie in (0, 1]");
        break;
      case GridFaultKindSpec::kFeederPartition:
        if (f.target >= feeders) fail("fleet: " + at + " names an unknown feeder");
        break;
      case GridFaultKindSpec::kCommsBlackout:
        if (f.value < 1.0) fail("fleet: " + at + " needs a station count >= 1");
        if (f.target >= stations || f.target + static_cast<std::uint64_t>(f.value) > stations)
          fail("fleet: " + at + " station range exceeds the fleet");
        break;
    }
  }
}

std::string FleetSpec::to_text() const {
  std::ostringstream out;
  out << "# evsys fleet scenario\n";
  out << "fleet.name = " << name << "\n";
  out << "fleet.stations = " << stations << "\n";
  out << "fleet.feeders = " << feeders << "\n";
  out << "fleet.sim_hours = " << format_double(sim_hours) << "\n";
  out << "fleet.tick_s = " << format_double(tick_s) << "\n";
  out << "fleet.seed = " << seed << "\n";
  out << "station.max_current_a = " << format_double(station_max_current_a) << "\n";
  out << "station.min_current_a = " << format_double(station_min_current_a) << "\n";
  out << "station.safe_current_a = " << format_double(station_safe_current_a) << "\n";
  out << "station.voltage_v = " << format_double(station_voltage_v) << "\n";
  out << "station.rogue_count = " << rogue_stations << "\n";
  out << "sessions.arrival_rate_per_station_per_h = "
      << format_double(arrival_rate_per_station_per_h) << "\n";
  out << "sessions.energy_min_kwh = " << format_double(session_energy_min_kwh) << "\n";
  out << "sessions.energy_max_kwh = " << format_double(session_energy_max_kwh) << "\n";
  out << "sessions.meter_period_s = " << format_double(meter_period_s) << "\n";
  out << "grid.capacity_kw = " << format_double(grid_capacity_kw) << "\n";
  out << "grid.rebalance_period_s = " << format_double(rebalance_period_s) << "\n";
  out << "heartbeat.period_s = " << format_double(heartbeat_period_s) << "\n";
  out << "heartbeat.lease_s = " << format_double(heartbeat_lease_s) << "\n";
  out << "channel.loss_probability = " << format_double(msg_loss_probability) << "\n";
  out << "retry.max_attempts = " << retry_max_attempts << "\n";
  out << "retry.timeout_s = " << format_double(retry_timeout_s) << "\n";
  out << "retry.backoff_base_s = " << format_double(retry_backoff_base_s) << "\n";
  out << "retry.backoff_cap_s = " << format_double(retry_backoff_cap_s) << "\n";
  out << "retry.jitter = " << format_double(retry_jitter) << "\n";
  for (std::size_t i = 0; i < grid_faults.size(); ++i) {
    const GridFaultSpec& f = grid_faults[i];
    out << "gridfault." << i << " = " << format_double(f.at_s) << " "
        << to_string(f.kind) << " " << f.target << " " << format_double(f.value)
        << " " << format_double(f.duration_s) << "\n";
  }
  return out.str();
}

FleetSpec FleetSpec::from_text(const std::string& text) {
  FleetSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t next_fault = 0;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    const std::string stripped = detail::trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      fail("fleet: expected 'key = value', got '" + stripped + "'");
    const std::string key = detail::trim(stripped.substr(0, eq));
    const std::string value = detail::trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty())
      fail("fleet: empty key or value in '" + stripped + "'");
    if (!seen.insert(key).second) fail("fleet: duplicate key '" + key + "'");

    if (key == "fleet.name") {
      spec.name = value;
    } else if (key == "fleet.stations") {
      spec.stations = parse_u64(value, key);
    } else if (key == "fleet.feeders") {
      spec.feeders = parse_u64(value, key);
    } else if (key == "fleet.sim_hours") {
      spec.sim_hours = parse_double(value, key);
    } else if (key == "fleet.tick_s") {
      spec.tick_s = parse_double(value, key);
    } else if (key == "fleet.seed") {
      spec.seed = parse_u64(value, key);
    } else if (key == "station.max_current_a") {
      spec.station_max_current_a = parse_double(value, key);
    } else if (key == "station.min_current_a") {
      spec.station_min_current_a = parse_double(value, key);
    } else if (key == "station.safe_current_a") {
      spec.station_safe_current_a = parse_double(value, key);
    } else if (key == "station.voltage_v") {
      spec.station_voltage_v = parse_double(value, key);
    } else if (key == "station.rogue_count") {
      spec.rogue_stations = parse_u64(value, key);
    } else if (key == "sessions.arrival_rate_per_station_per_h") {
      spec.arrival_rate_per_station_per_h = parse_double(value, key);
    } else if (key == "sessions.energy_min_kwh") {
      spec.session_energy_min_kwh = parse_double(value, key);
    } else if (key == "sessions.energy_max_kwh") {
      spec.session_energy_max_kwh = parse_double(value, key);
    } else if (key == "sessions.meter_period_s") {
      spec.meter_period_s = parse_double(value, key);
    } else if (key == "grid.capacity_kw") {
      spec.grid_capacity_kw = parse_double(value, key);
    } else if (key == "grid.rebalance_period_s") {
      spec.rebalance_period_s = parse_double(value, key);
    } else if (key == "heartbeat.period_s") {
      spec.heartbeat_period_s = parse_double(value, key);
    } else if (key == "heartbeat.lease_s") {
      spec.heartbeat_lease_s = parse_double(value, key);
    } else if (key == "channel.loss_probability") {
      spec.msg_loss_probability = parse_double(value, key);
    } else if (key == "retry.max_attempts") {
      spec.retry_max_attempts = parse_u64(value, key);
    } else if (key == "retry.timeout_s") {
      spec.retry_timeout_s = parse_double(value, key);
    } else if (key == "retry.backoff_base_s") {
      spec.retry_backoff_base_s = parse_double(value, key);
    } else if (key == "retry.backoff_cap_s") {
      spec.retry_backoff_cap_s = parse_double(value, key);
    } else if (key == "retry.jitter") {
      spec.retry_jitter = parse_double(value, key);
    } else if (key.rfind("gridfault.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(10), key);
      if (index != next_fault)
        fail("fleet: gridfault entries must be numbered consecutively from 0; got '" +
             key + "'");
      const std::vector<std::string> fields = detail::split_ws(value);
      if (fields.size() != 5)
        fail("fleet: '" + key +
             "' expects '<at_s> <kind> <target> <value> <duration_s>'");
      GridFaultSpec f;
      f.at_s = parse_double(fields[0], key);
      f.kind = parse_grid_fault_kind(fields[1]);
      f.target = parse_u64(fields[2], key);
      f.value = parse_double(fields[3], key);
      f.duration_s = parse_double(fields[4], key);
      spec.grid_faults.push_back(f);
      ++next_fault;
    } else {
      fail("fleet: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

FleetSpec load_fleet_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("fleet: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return FleetSpec::from_text(buf.str());
}

bool save_fleet_file(const FleetSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << spec.to_text();
  return static_cast<bool>(out);
}

}  // namespace ev::config
