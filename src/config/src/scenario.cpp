#include "ev/config/scenario.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "kv_text.h"

namespace ev::config {
namespace {

using detail::fail;
using detail::split_ws;
using detail::trim;

// --- enum <-> text ----------------------------------------------------------

CycleKind parse_cycle(const std::string& s) {
  if (s == "urban") return CycleKind::kUrban;
  if (s == "highway") return CycleKind::kHighway;
  if (s == "suburban") return CycleKind::kSuburban;
  fail("scenario: unknown drive cycle '" + s + "'");
}

Balancing parse_balancing(const std::string& s) {
  if (s == "none") return Balancing::kNone;
  if (s == "passive") return Balancing::kPassive;
  if (s == "active") return Balancing::kActive;
  fail("scenario: unknown balancing policy '" + s + "'");
}

FaultKind parse_fault_kind(const std::string& s) {
  if (s == "bus.drop") return FaultKind::kBusDrop;
  if (s == "bus.corrupt") return FaultKind::kBusCorrupt;
  if (s == "bus.off") return FaultKind::kBusOff;
  if (s == "bus.babble") return FaultKind::kBusBabble;
  if (s == "partition.crash") return FaultKind::kPartitionCrash;
  if (s == "partition.hang") return FaultKind::kPartitionHang;
  if (s == "bms.stuck_voltage") return FaultKind::kSensorStuck;
  if (s == "bus.error_rate") return FaultKind::kBusErrorRate;
  if (s == "bus.error_prob") return FaultKind::kBusErrorProb;
  fail("scenario: unknown fault kind '" + s + "'");
}

// --- scalar parsing ---------------------------------------------------------

double parse_double(const std::string& s, const std::string& key) {
  return detail::parse_double(s, key, "scenario");
}

std::uint64_t parse_u64(const std::string& s, const std::string& key) {
  return detail::parse_u64(s, key, "scenario");
}

std::int64_t parse_i64(const std::string& s, const std::string& key) {
  return detail::parse_i64(s, key, "scenario");
}

bool parse_bool(const std::string& s, const std::string& key) {
  return detail::parse_bool(s, key, "scenario");
}

// --- arch helpers -----------------------------------------------------------

// Frame identifiers appear in scenario text exactly as the analyzer prints
// them: `0x` plus at least three lowercase hex digits.
std::string format_frame_id(std::uint32_t id) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%03x", id);
  return buf;
}

std::uint32_t parse_frame_id(const std::string& s, const std::string& key) {
  if (s.rfind("0x", 0) != 0)
    fail("scenario: '" + key + "' expects a 0x-prefixed frame id, got '" + s + "'");
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str() + 2, &end, 16);
  if (end == s.c_str() + 2 || *end != '\0' || v > 0x1FFFFFFFUL)
    fail("scenario: '" + key + "' expects a 0x-prefixed frame id, got '" + s + "'");
  return static_cast<std::uint32_t>(v);
}

bool known_bus_name(const std::string& bus) {
  for (std::size_t i = 0; i < kArchBusCount; ++i)
    if (bus == kArchBusNames[i]) return true;
  return false;
}

// Inserts or replaces the entry for `frame_id` while keeping the list
// sorted by frame id — the canonical form ArchSpec::validate() demands.
template <typename Entry>
Entry& upsert_by_frame_id(std::vector<Entry>& entries, std::uint32_t frame_id) {
  std::size_t pos = 0;
  while (pos < entries.size() && entries[pos].frame_id < frame_id) ++pos;
  if (pos == entries.size() || entries[pos].frame_id != frame_id) {
    Entry e;
    e.frame_id = frame_id;
    entries.insert(entries.begin() + static_cast<std::ptrdiff_t>(pos), e);
  }
  return entries[pos];
}

template <typename Entry>
void erase_by_frame_id(std::vector<Entry>& entries, std::uint32_t frame_id) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].frame_id == frame_id) {
      entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace

void ArchSpec::set_frame_bus(std::uint32_t frame_id, const std::string& bus) {
  upsert_by_frame_id(frame_buses, frame_id).bus = bus;
}

void ArchSpec::clear_frame_bus(std::uint32_t frame_id) {
  erase_by_frame_id(frame_buses, frame_id);
}

void ArchSpec::set_frame_id(std::uint32_t frame_id, std::uint32_t new_id) {
  if (new_id == frame_id) {
    erase_by_frame_id(frame_ids, frame_id);
    return;
  }
  upsert_by_frame_id(frame_ids, frame_id).new_id = new_id;
}

void ArchSpec::set_fr_slot(std::uint32_t frame_id, std::uint64_t slot) {
  upsert_by_frame_id(fr_slots, frame_id).slot = slot;
}

void ArchSpec::clear_fr_slots() { fr_slots.clear(); }

void ArchSpec::set_partition_windows(std::vector<PartitionWindowSpec> windows) {
  partitions = std::move(windows);
}

std::string format_double(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string to_string(CycleKind kind) {
  switch (kind) {
    case CycleKind::kUrban: return "urban";
    case CycleKind::kHighway: return "highway";
    case CycleKind::kSuburban: return "suburban";
  }
  return "urban";
}

std::string to_string(Balancing balancing) {
  switch (balancing) {
    case Balancing::kNone: return "none";
    case Balancing::kPassive: return "passive";
    case Balancing::kActive: return "active";
  }
  return "passive";
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBusDrop: return "bus.drop";
    case FaultKind::kBusCorrupt: return "bus.corrupt";
    case FaultKind::kBusOff: return "bus.off";
    case FaultKind::kBusBabble: return "bus.babble";
    case FaultKind::kPartitionCrash: return "partition.crash";
    case FaultKind::kPartitionHang: return "partition.hang";
    case FaultKind::kSensorStuck: return "bms.stuck_voltage";
    case FaultKind::kBusErrorRate: return "bus.error_rate";
    case FaultKind::kBusErrorProb: return "bus.error_prob";
  }
  return "bus.drop";
}

void ScenarioSpec::validate() const {
  // Range checks below are written as `v < lo || v > hi`, which NaN slips
  // through (every comparison is false) and +inf slips past one-sided `< lo`
  // checks — so finiteness is asserted explicitly first. A valid spec holds
  // only finite doubles, which keeps the to_text/from_text round trip closed
  // (the parser rejects non-finite values).
  const auto finite = [](double v, const char* what) {
    if (!std::isfinite(v)) fail(std::string("scenario: ") + what + " must be finite");
  };
  finite(pack.initial_soc, "pack.initial_soc");
  finite(pack.soc_spread_sigma, "pack.soc_spread_sigma");
  finite(bms.initial_soc_estimate, "bms.initial_soc_estimate");
  finite(powertrain.aux_power_w, "powertrain.aux_power_w");
  finite(network.load_scale, "network.load_scale");
  finite(network.can_bit_rate, "network.can_bit_rate");
  finite(network.lin_bit_rate, "network.lin_bit_rate");
  finite(network.flexray_bit_rate, "network.flexray_bit_rate");
  finite(timing.control_period_s, "timing.control_period_s");
  finite(timing.bms_publish_period_s, "timing.bms_publish_period_s");
  if (name.empty()) fail("scenario: name must not be empty");
  if (name.find_first_of(" \t\n=") != std::string::npos)
    fail("scenario: name must not contain whitespace or '='");
  if (drive.repeat == 0) fail("scenario: drive.repeat must be >= 1");
  if (pack.module_count == 0) fail("scenario: pack.module_count must be positive");
  if (pack.cells_per_module == 0)
    fail("scenario: pack.cells_per_module must be positive");
  if (pack.initial_soc < 0.0 || pack.initial_soc > 1.0)
    fail("scenario: pack.initial_soc must lie in [0, 1]");
  if (pack.soc_spread_sigma < 0.0)
    fail("scenario: pack.soc_spread_sigma must be non-negative");
  if (bms.initial_soc_estimate < 0.0 || bms.initial_soc_estimate > 1.0)
    fail("scenario: bms.initial_soc_estimate must lie in [0, 1]");
  if (powertrain.aux_power_w < 0.0)
    fail("scenario: powertrain.aux_power_w must be non-negative");
  if (network.load_scale <= 0.0) fail("scenario: network.load_scale must be positive");
  if (network.can_bit_rate <= 0.0 || network.lin_bit_rate <= 0.0 ||
      network.flexray_bit_rate <= 0.0)
    fail("scenario: network bit rates must be positive");
  if (timing.control_period_s <= 0.0)
    fail("scenario: timing.control_period_s must be positive");
  if (timing.bms_publish_period_s <= 0.0)
    fail("scenario: timing.bms_publish_period_s must be positive");
  if (timing.middleware_frame_us <= 0)
    fail("scenario: timing.middleware_frame_us must be positive");
  for (std::size_t i = 0; i < arch.frame_buses.size(); ++i) {
    const FrameBusSpec& e = arch.frame_buses[i];
    if (!known_bus_name(e.bus))
      fail("scenario: arch.frame_bus." + std::to_string(i) + " names unknown bus '" +
           e.bus + "'");
    if (i > 0 && arch.frame_buses[i - 1].frame_id >= e.frame_id)
      fail("scenario: arch.frame_bus entries must be in strictly increasing "
           "frame-id order");
  }
  for (std::size_t i = 0; i < arch.frame_ids.size(); ++i) {
    const FrameIdSpec& e = arch.frame_ids[i];
    if (e.new_id == e.frame_id)
      fail("scenario: arch.frame_id." + std::to_string(i) +
           " is an identity mapping; remove it");
    if (i > 0 && arch.frame_ids[i - 1].frame_id >= e.frame_id)
      fail("scenario: arch.frame_id entries must be in strictly increasing "
           "frame-id order");
    for (std::size_t j = 0; j < i; ++j)
      if (arch.frame_ids[j].new_id == e.new_id)
        fail("scenario: arch.frame_id entries assign duplicate id " +
             std::to_string(e.new_id));
  }
  for (std::size_t i = 0; i < arch.fr_slots.size(); ++i) {
    const FrSlotSpec& e = arch.fr_slots[i];
    if (i > 0 && arch.fr_slots[i - 1].frame_id >= e.frame_id)
      fail("scenario: arch.fr_slot entries must be in strictly increasing "
           "frame-id order");
    for (std::size_t j = 0; j < i; ++j)
      if (arch.fr_slots[j].slot == e.slot)
        fail("scenario: arch.fr_slot entries assign duplicate slot " +
             std::to_string(e.slot));
  }
  for (std::size_t i = 0; i < arch.partitions.size(); ++i) {
    const PartitionWindowSpec& e = arch.partitions[i];
    const std::string at = "arch.partition." + std::to_string(i);
    if (e.partition.empty()) fail("scenario: " + at + " needs a partition name");
    if (e.partition.find_first_of(" \t") != std::string::npos)
      fail("scenario: " + at + " name must not contain whitespace");
    if (e.budget_us < 1) fail("scenario: " + at + " needs a budget >= 1 us");
    for (std::size_t j = 0; j < i; ++j)
      if (arch.partitions[j].partition == e.partition)
        fail("scenario: arch.partition lists '" + e.partition + "' twice");
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultEventSpec& f = faults[i];
    const std::string at = "fault." + std::to_string(i);
    if (!std::isfinite(f.at_s)) fail("scenario: " + at + " time must be finite");
    if (!std::isfinite(f.value)) fail("scenario: " + at + " value must be finite");
    if (f.at_s < 0.0) fail("scenario: " + at + " time must be non-negative");
    if (f.target.empty()) fail("scenario: " + at + " needs a target");
    if (f.target.find_first_of(" \t") != std::string::npos)
      fail("scenario: " + at + " target must not contain whitespace");
    if ((f.kind == FaultKind::kBusDrop || f.kind == FaultKind::kBusCorrupt ||
         f.kind == FaultKind::kPartitionHang) &&
        f.value < 1.0)
      fail("scenario: " + at + " needs a count >= 1");
    if ((f.kind == FaultKind::kBusOff || f.kind == FaultKind::kBusBabble) &&
        f.value <= 0.0)
      fail("scenario: " + at + " needs a positive duration");
    // Stochastic error models: reject out-of-range parameters here so the
    // analyzer and the simulation never see a rate they would have to clamp.
    // !(x >= 0) also catches NaN.
    if (f.kind == FaultKind::kBusErrorRate &&
        (!(f.value >= 0.0) || !std::isfinite(f.value)))
      fail("scenario: " + at + " needs a finite error rate >= 0 [errors/s]");
    if (f.kind == FaultKind::kBusErrorProb &&
        !(f.value >= 0.0 && f.value <= 1.0))
      fail("scenario: " + at + " needs an error probability in [0, 1]");
  }
}

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "# evsys scenario\n";
  out << "scenario.name = " << name << "\n";
  out << "drive.cycle = " << to_string(drive.cycle) << "\n";
  out << "drive.repeat = " << drive.repeat << "\n";
  out << "pack.module_count = " << pack.module_count << "\n";
  out << "pack.cells_per_module = " << pack.cells_per_module << "\n";
  out << "pack.initial_soc = " << format_double(pack.initial_soc) << "\n";
  out << "pack.soc_spread_sigma = " << format_double(pack.soc_spread_sigma) << "\n";
  out << "pack.lfp_chemistry = " << (pack.lfp_chemistry ? "true" : "false") << "\n";
  out << "bms.balancing = " << to_string(bms.balancing) << "\n";
  out << "bms.initial_soc_estimate = " << format_double(bms.initial_soc_estimate)
      << "\n";
  out << "powertrain.seed = " << powertrain.seed << "\n";
  out << "powertrain.aux_power_w = " << format_double(powertrain.aux_power_w) << "\n";
  out << "network.load_scale = " << format_double(network.load_scale) << "\n";
  out << "network.can_bit_rate = " << format_double(network.can_bit_rate) << "\n";
  out << "network.lin_bit_rate = " << format_double(network.lin_bit_rate) << "\n";
  out << "network.flexray_bit_rate = " << format_double(network.flexray_bit_rate)
      << "\n";
  out << "timing.control_period_s = " << format_double(timing.control_period_s) << "\n";
  out << "timing.bms_publish_period_s = " << format_double(timing.bms_publish_period_s)
      << "\n";
  out << "timing.middleware_frame_us = " << timing.middleware_frame_us << "\n";
  out << "subsystems.obs = " << (subsystems.obs ? "true" : "false") << "\n";
  out << "subsystems.faults = " << (subsystems.faults ? "true" : "false") << "\n";
  out << "subsystems.health = " << (subsystems.health ? "true" : "false") << "\n";
  out << "subsystems.security = " << (subsystems.security ? "true" : "false") << "\n";
  for (std::size_t i = 0; i < arch.frame_buses.size(); ++i) {
    out << "arch.frame_bus." << i << " = " << format_frame_id(arch.frame_buses[i].frame_id)
        << " " << arch.frame_buses[i].bus << "\n";
  }
  for (std::size_t i = 0; i < arch.frame_ids.size(); ++i) {
    out << "arch.frame_id." << i << " = " << format_frame_id(arch.frame_ids[i].frame_id)
        << " " << format_frame_id(arch.frame_ids[i].new_id) << "\n";
  }
  for (std::size_t i = 0; i < arch.fr_slots.size(); ++i) {
    out << "arch.fr_slot." << i << " = " << format_frame_id(arch.fr_slots[i].frame_id)
        << " " << arch.fr_slots[i].slot << "\n";
  }
  for (std::size_t i = 0; i < arch.partitions.size(); ++i) {
    out << "arch.partition." << i << " = " << arch.partitions[i].partition << " "
        << arch.partitions[i].budget_us << "\n";
  }
  out << "faults.seed = " << fault_seed << "\n";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultEventSpec& f = faults[i];
    out << "fault." << i << " = " << format_double(f.at_s) << " "
        << to_string(f.kind) << " " << f.target << " " << format_double(f.value)
        << "\n";
  }
  return out.str();
}

ScenarioSpec ScenarioSpec::from_text(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t next_fault = 0;
  std::set<std::string> seen;
  while (std::getline(in, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos)
      fail("scenario: expected 'key = value', got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty())
      fail("scenario: empty key or value in '" + stripped + "'");
    // Silently letting the last occurrence win would make two contradictory
    // lines a valid experiment description; reject the ambiguity instead.
    // (fault.N keys are unique already: the consecutive-numbering check
    // below rejects a reused index.)
    if (!seen.insert(key).second)
      fail("scenario: duplicate key '" + key + "'");

    if (key == "scenario.name") {
      spec.name = value;
    } else if (key == "drive.cycle") {
      spec.drive.cycle = parse_cycle(value);
    } else if (key == "drive.repeat") {
      spec.drive.repeat = parse_u64(value, key);
    } else if (key == "pack.module_count") {
      spec.pack.module_count = parse_u64(value, key);
    } else if (key == "pack.cells_per_module") {
      spec.pack.cells_per_module = parse_u64(value, key);
    } else if (key == "pack.initial_soc") {
      spec.pack.initial_soc = parse_double(value, key);
    } else if (key == "pack.soc_spread_sigma") {
      spec.pack.soc_spread_sigma = parse_double(value, key);
    } else if (key == "pack.lfp_chemistry") {
      spec.pack.lfp_chemistry = parse_bool(value, key);
    } else if (key == "bms.balancing") {
      spec.bms.balancing = parse_balancing(value);
    } else if (key == "bms.initial_soc_estimate") {
      spec.bms.initial_soc_estimate = parse_double(value, key);
    } else if (key == "powertrain.seed") {
      spec.powertrain.seed = parse_u64(value, key);
    } else if (key == "powertrain.aux_power_w") {
      spec.powertrain.aux_power_w = parse_double(value, key);
    } else if (key == "network.load_scale") {
      spec.network.load_scale = parse_double(value, key);
    } else if (key == "network.can_bit_rate") {
      spec.network.can_bit_rate = parse_double(value, key);
    } else if (key == "network.lin_bit_rate") {
      spec.network.lin_bit_rate = parse_double(value, key);
    } else if (key == "network.flexray_bit_rate") {
      spec.network.flexray_bit_rate = parse_double(value, key);
    } else if (key == "timing.control_period_s") {
      spec.timing.control_period_s = parse_double(value, key);
    } else if (key == "timing.bms_publish_period_s") {
      spec.timing.bms_publish_period_s = parse_double(value, key);
    } else if (key == "timing.middleware_frame_us") {
      spec.timing.middleware_frame_us = parse_i64(value, key);
    } else if (key == "subsystems.obs") {
      spec.subsystems.obs = parse_bool(value, key);
    } else if (key == "subsystems.faults") {
      spec.subsystems.faults = parse_bool(value, key);
    } else if (key == "subsystems.health") {
      spec.subsystems.health = parse_bool(value, key);
    } else if (key == "subsystems.security") {
      spec.subsystems.security = parse_bool(value, key);
    } else if (key == "faults.seed") {
      spec.fault_seed = parse_u64(value, key);
    } else if (key.rfind("arch.frame_bus.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(15), key);
      if (index != spec.arch.frame_buses.size())
        fail("scenario: arch.frame_bus entries must be numbered consecutively "
             "from 0; got '" + key + "'");
      const std::vector<std::string> fields = split_ws(value);
      if (fields.size() != 2)
        fail("scenario: '" + key + "' expects '<frame_id> <bus>'");
      FrameBusSpec e;
      e.frame_id = parse_frame_id(fields[0], key);
      e.bus = fields[1];
      spec.arch.frame_buses.push_back(std::move(e));
    } else if (key.rfind("arch.frame_id.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(14), key);
      if (index != spec.arch.frame_ids.size())
        fail("scenario: arch.frame_id entries must be numbered consecutively "
             "from 0; got '" + key + "'");
      const std::vector<std::string> fields = split_ws(value);
      if (fields.size() != 2)
        fail("scenario: '" + key + "' expects '<frame_id> <new_id>'");
      FrameIdSpec e;
      e.frame_id = parse_frame_id(fields[0], key);
      e.new_id = parse_frame_id(fields[1], key);
      spec.arch.frame_ids.push_back(e);
    } else if (key.rfind("arch.fr_slot.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(13), key);
      if (index != spec.arch.fr_slots.size())
        fail("scenario: arch.fr_slot entries must be numbered consecutively "
             "from 0; got '" + key + "'");
      const std::vector<std::string> fields = split_ws(value);
      if (fields.size() != 2)
        fail("scenario: '" + key + "' expects '<frame_id> <slot>'");
      FrSlotSpec e;
      e.frame_id = parse_frame_id(fields[0], key);
      e.slot = parse_u64(fields[1], key);
      spec.arch.fr_slots.push_back(e);
    } else if (key.rfind("arch.partition.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(15), key);
      if (index != spec.arch.partitions.size())
        fail("scenario: arch.partition entries must be numbered consecutively "
             "from 0; got '" + key + "'");
      const std::vector<std::string> fields = split_ws(value);
      if (fields.size() != 2)
        fail("scenario: '" + key + "' expects '<partition> <budget_us>'");
      PartitionWindowSpec e;
      e.partition = fields[0];
      e.budget_us = parse_i64(fields[1], key);
      spec.arch.partitions.push_back(std::move(e));
    } else if (key.rfind("fault.", 0) == 0) {
      const std::uint64_t index = parse_u64(key.substr(6), key);
      if (index != next_fault)
        fail("scenario: fault entries must be numbered consecutively from 0; got '" +
             key + "'");
      const std::vector<std::string> fields = split_ws(value);
      if (fields.size() != 4)
        fail("scenario: '" + key + "' expects '<at_s> <kind> <target> <value>'");
      FaultEventSpec f;
      f.at_s = parse_double(fields[0], key);
      f.kind = parse_fault_kind(fields[1]);
      f.target = fields[2];
      f.value = parse_double(fields[3], key);
      spec.faults.push_back(std::move(f));
      ++next_fault;
    } else {
      fail("scenario: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("scenario: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return ScenarioSpec::from_text(buf.str());
}

bool save_scenario_file(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << spec.to_text();
  return static_cast<bool>(out);
}

}  // namespace ev::config
