/// \file kv_text.h
/// Internal helpers shared by the `key = value` spec parsers (ScenarioSpec,
/// FleetSpec): scalar parsing with uniform error messages, whitespace
/// handling, and line splitting. Every parser passes its own context prefix
/// ("scenario", "fleet") so diagnostics name the format being read.
#pragma once

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ev::config::detail {

[[noreturn]] inline void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

inline double parse_double(const std::string& s, const std::string& key,
                           const char* ctx) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    fail(std::string(ctx) + ": '" + key + "' expects a number, got '" + s + "'");
  return v;
}

inline std::uint64_t parse_u64(const std::string& s, const std::string& key,
                               const char* ctx) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s.front() == '-')
    fail(std::string(ctx) + ": '" + key + "' expects a non-negative integer, got '" +
         s + "'");
  return static_cast<std::uint64_t>(v);
}

inline std::int64_t parse_i64(const std::string& s, const std::string& key,
                              const char* ctx) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    fail(std::string(ctx) + ": '" + key + "' expects an integer, got '" + s + "'");
  return static_cast<std::int64_t>(v);
}

inline bool parse_bool(const std::string& s, const std::string& key, const char* ctx) {
  if (s == "true") return true;
  if (s == "false") return false;
  fail(std::string(ctx) + ": '" + key + "' expects true or false, got '" + s + "'");
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

inline std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace ev::config::detail
