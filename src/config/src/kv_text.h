/// \file kv_text.h
/// Internal helpers shared by the `key = value` spec parsers (ScenarioSpec,
/// FleetSpec): scalar parsing with uniform error messages, whitespace
/// handling, and line splitting. Every parser passes its own context prefix
/// ("scenario", "fleet") so diagnostics name the format being read.
///
/// The scalar grammars accept exactly what `to_text()` emits — and nothing
/// more — so that `from_text` is a closed inverse of `to_text`:
///
///   double:  -?digits[.digits][(e|E)[+|-]digits]
///   u64:     digits
///   i64:     -?digits
///
/// strtod/strtoull extensions (leading '+', hex floats like `0x1p3`,
/// `inf`/`nan`, embedded whitespace) are rejected: `format_double` can never
/// produce them, so accepting them would make the round trip lossy. Range
/// errors (overflow to ±inf / integer clamp, underflow to zero) fail typed
/// instead of silently saturating.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ev::config::detail {

[[noreturn]] inline void fail(const std::string& what) {
  throw std::invalid_argument(what);
}

/// True when \p s matches the decimal grammar above. \p allow_sign permits a
/// single leading '-'; \p allow_fraction permits the fraction/exponent tail.
inline bool match_decimal(const std::string& s, bool allow_sign,
                          bool allow_fraction) {
  std::size_t i = 0;
  if (allow_sign && i < s.size() && s[i] == '-') ++i;
  std::size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
    ++digits;
  }
  if (digits == 0) return false;
  if (allow_fraction && i < s.size() && s[i] == '.') {
    ++i;
    std::size_t frac = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
      ++frac;
    }
    if (frac == 0) return false;
  }
  if (allow_fraction && i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    std::size_t exp = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
      ++exp;
    }
    if (exp == 0) return false;
  }
  return i == s.size();
}

[[noreturn]] inline void fail_range(const std::string& s, const std::string& key,
                                    const char* ctx) {
  fail(std::string(ctx) + ": '" + key + "' value out of range: '" + s + "'");
}

inline double parse_double(const std::string& s, const std::string& key,
                           const char* ctx) {
  if (!match_decimal(s, /*allow_sign=*/true, /*allow_fraction=*/true))
    fail(std::string(ctx) + ": '" + key + "' expects a number, got '" + s + "'");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    fail(std::string(ctx) + ": '" + key + "' expects a number, got '" + s + "'");
  // Overflow saturates to ±HUGE_VAL and total underflow to zero, both with
  // ERANGE. Denormal results may also set ERANGE on some libcs — those are
  // representable and round-trip through format_double, so keep them.
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL || v == 0.0))
    fail_range(s, key, ctx);
  if (!std::isfinite(v)) fail_range(s, key, ctx);
  return v;
}

inline std::uint64_t parse_u64(const std::string& s, const std::string& key,
                               const char* ctx) {
  if (!match_decimal(s, /*allow_sign=*/false, /*allow_fraction=*/false))
    fail(std::string(ctx) + ": '" + key + "' expects a non-negative integer, got '" +
         s + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    fail(std::string(ctx) + ": '" + key + "' expects a non-negative integer, got '" +
         s + "'");
  if (errno == ERANGE) fail_range(s, key, ctx);
  return static_cast<std::uint64_t>(v);
}

inline std::int64_t parse_i64(const std::string& s, const std::string& key,
                              const char* ctx) {
  if (!match_decimal(s, /*allow_sign=*/true, /*allow_fraction=*/false))
    fail(std::string(ctx) + ": '" + key + "' expects an integer, got '" + s + "'");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0')
    fail(std::string(ctx) + ": '" + key + "' expects an integer, got '" + s + "'");
  if (errno == ERANGE) fail_range(s, key, ctx);
  return static_cast<std::int64_t>(v);
}

inline bool parse_bool(const std::string& s, const std::string& key, const char* ctx) {
  if (s == "true") return true;
  if (s == "false") return false;
  fail(std::string(ctx) + ": '" + key + "' expects true or false, got '" + s + "'");
}

inline std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

inline std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace ev::config::detail
