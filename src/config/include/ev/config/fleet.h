/// \file fleet.h
/// Declarative fleet-charging scenario descriptions. A FleetSpec is the
/// single source of truth for one fleet run of the OCPP-style central
/// system: the station population and its electrical envelope, the session
/// arrival model, the grid capacity and rebalance cadence, the heartbeat
/// lease, the retry/backoff policy of the control channel, and the grid
/// fault timeline. Like ScenarioSpec it is plain data that round-trips
/// losslessly through the `key = value` text format (conventionally a
/// `.fleet` file, so vehicle-scenario tooling that globs `*.scn` never
/// mistakes one for the other); `src/fleet` turns a spec into a run and
/// `evsys fleet` binds the two together.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::config {

/// Grid-side fault kinds (mirrors faults::GridFaultKind without the
/// dependency — config stays standard-library-only).
enum class GridFaultKindSpec : std::uint8_t {
  kCapacityDrop,     ///< Scale capacity by (1 - value) for duration_s.
  kFeederPartition,  ///< Feeder `target` loses its control channel.
  kCommsBlackout,    ///< Stations [target, target + value) lose heartbeats.
};

/// One planned grid fault, active over [at_s, at_s + duration_s).
struct GridFaultSpec {
  double at_s = 0.0;
  GridFaultKindSpec kind = GridFaultKindSpec::kCapacityDrop;
  std::uint64_t target = 0;  ///< Feeder index or first station index.
  double value = 0.0;        ///< Drop fraction in [0, 1] or station count.
  double duration_s = 0.0;

  friend bool operator==(const GridFaultSpec&, const GridFaultSpec&) = default;
};

/// One complete declarative fleet-charging scenario.
struct FleetSpec {
  std::string name = "fleet";

  // Fleet shape and clock.
  std::uint64_t stations = 64;   ///< Charge points, index 0..stations-1.
  std::uint64_t feeders = 4;     ///< Grid feeders; station i is on i % feeders.
  double sim_hours = 2.0;        ///< Simulated span.
  double tick_s = 1.0;           ///< Control tick (stations advance per tick).
  std::uint64_t seed = 1;        ///< Root seed of every stochastic draw.

  // Station electrical envelope (identical across the population).
  double station_max_current_a = 32.0;
  double station_min_current_a = 6.0;   ///< Floor for an active session.
  double station_safe_current_a = 8.0;  ///< ThrottleAlive fallback current.
  double station_voltage_v = 400.0;
  std::uint64_t rogue_stations = 0;  ///< First N stations carry bad credentials.

  // Session arrival / demand model.
  double arrival_rate_per_station_per_h = 0.6;
  double session_energy_min_kwh = 5.0;
  double session_energy_max_kwh = 30.0;
  double meter_period_s = 60.0;  ///< Cumulative MeterValues cadence.

  // Grid.
  double grid_capacity_kw = 600.0;
  double rebalance_period_s = 5.0;  ///< Load-balancer cadence (>= tick_s).

  // Heartbeat liveness lease.
  double heartbeat_period_s = 10.0;
  double heartbeat_lease_s = 30.0;  ///< Loss of contact >= lease throttles.

  // Control channel and retry policy.
  double msg_loss_probability = 0.0;  ///< Per-send Bernoulli loss.
  std::uint64_t retry_max_attempts = 5;
  double retry_timeout_s = 2.0;       ///< Detection delay before a retry.
  double retry_backoff_base_s = 2.0;  ///< Doubles per attempt, capped below.
  double retry_backoff_cap_s = 60.0;
  double retry_jitter = 0.1;  ///< Fractional seeded jitter on each backoff.

  std::vector<GridFaultSpec> grid_faults;  ///< Planned grid faults (may be empty).

  /// Throws std::invalid_argument naming the first violated constraint.
  void validate() const;

  /// Renders every field as one `key = value` line; from_text(to_text(s))
  /// == s for any valid spec.
  [[nodiscard]] std::string to_text() const;

  /// Parses the to_text() format (comments/blank lines ignored, unknown and
  /// duplicate keys rejected, missing keys keep defaults); validates.
  [[nodiscard]] static FleetSpec from_text(const std::string& text);

  friend bool operator==(const FleetSpec&, const FleetSpec&) = default;
};

/// Enum names as they appear in fleet scenario text.
[[nodiscard]] std::string to_string(GridFaultKindSpec kind);

/// Reads and parses a fleet scenario file. Throws std::invalid_argument
/// when the file cannot be read or fails to parse.
[[nodiscard]] FleetSpec load_fleet_file(const std::string& path);

/// Writes spec.to_text() to \p path; returns false when the file cannot be
/// opened.
bool save_fleet_file(const FleetSpec& spec, const std::string& path);

}  // namespace ev::config
