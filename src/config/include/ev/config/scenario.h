/// \file scenario.h
/// Declarative whole-vehicle scenario descriptions. A ScenarioSpec is the
/// single source of truth for one co-simulated experiment: battery pack,
/// BMS policy, powertrain, the Fig. 1 network, co-simulation timing, the
/// seeded fault plan, and which pluggable subsystems are enabled. The spec
/// is plain data — this module depends on nothing but the standard library
/// — and round-trips losslessly through a line-based `key = value` text
/// format, so scenarios can live in version control and two runs of the
/// same file are the same experiment by construction. `core` turns a spec
/// into a running VehicleSystem; the `evsys` CLI binds the two together.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::config {

/// Drive-cycle selector (mirrors powertrain::DriveCycle's built-in library
/// without depending on it).
enum class CycleKind : std::uint8_t { kUrban, kHighway, kSuburban };

/// BMS balancing policy selector (mirrors bms::BalancingKind).
enum class Balancing : std::uint8_t { kNone, kPassive, kActive };

/// One planned fault injection. `target` names a Fig. 1 bus
/// (`body_lin`, `comfort_can`, `infotainment_most`, `safety_can`,
/// `chassis_flexray`), a cockpit partition, or — for sensor faults — a
/// global cell index rendered as a decimal string.
enum class FaultKind : std::uint8_t {
  kBusDrop,         ///< Drop the next `value` frames on the target bus.
  kBusCorrupt,      ///< Corrupt the next `value` frame payloads.
  kBusOff,          ///< Take the bus offline for `value` seconds.
  kBusBabble,       ///< Babbling idiot on the bus for `value` seconds.
  kPartitionCrash,  ///< Crash the named cockpit partition.
  kPartitionHang,   ///< Hang the named partition for `value` major frames.
  kSensorStuck,     ///< Stick cell `target`'s voltage sensor at `value` V.
  kBusErrorRate,    ///< Poisson transmission-error process on the target CAN
                    ///< bus: `value` is the error rate [errors/s] (>= 0,
                    ///< finite). Errored frames retransmit after the CAN
                    ///< error-flag recovery; `evsys check --prob` turns the
                    ///< rate into per-frame deadline-miss probabilities.
  kBusErrorProb,    ///< Bernoulli per-transmission-attempt error on the
                    ///< target CAN bus: `value` is a probability in [0, 1].
};

struct FaultEventSpec {
  double at_s = 0.0;     ///< Injection time [s] on the simulation clock.
  FaultKind kind = FaultKind::kBusDrop;
  std::string target;    ///< Bus name, partition name, or cell index.
  double value = 0.0;    ///< Kind-specific magnitude (see FaultKind).

  friend bool operator==(const FaultEventSpec&, const FaultEventSpec&) = default;
};

/// Battery pack description (the subset of battery::PackConfig an
/// experiment varies; everything else keeps the plant defaults).
struct PackSpec {
  std::uint64_t module_count = 8;
  std::uint64_t cells_per_module = 12;
  double initial_soc = 0.9;
  double soc_spread_sigma = 0.015;
  bool lfp_chemistry = false;

  friend bool operator==(const PackSpec&, const PackSpec&) = default;
};

/// BMS policy description.
struct BmsSpec {
  Balancing balancing = Balancing::kPassive;
  double initial_soc_estimate = 0.9;

  friend bool operator==(const BmsSpec&, const BmsSpec&) = default;
};

/// Powertrain knobs.
struct PowertrainSpec {
  std::uint64_t seed = 1;        ///< Reproducibility seed for the plant.
  double aux_power_w = 450.0;    ///< Constant 12 V auxiliary load.

  friend bool operator==(const PowertrainSpec&, const PowertrainSpec&) = default;
};

/// Fig. 1 network scaling knobs (mirrors network::Figure1Config).
struct NetworkSpec {
  double load_scale = 1.0;
  double can_bit_rate = 500e3;
  double lin_bit_rate = 19200.0;
  double flexray_bit_rate = 10e6;

  friend bool operator==(const NetworkSpec&, const NetworkSpec&) = default;
};

/// Co-simulation timing (mirrors core::VehicleSystemConfig periods).
struct TimingSpec {
  double control_period_s = 0.1;
  double bms_publish_period_s = 0.1;
  std::int64_t middleware_frame_us = 20000;

  friend bool operator==(const TimingSpec&, const TimingSpec&) = default;
};

/// One frame-placement override: the frame whose *original* Fig. 1
/// identifier is `frame_id` is produced on the named bus instead of its
/// default one. Only plain periodic sources can move — frames that feed a
/// gateway route, co-simulation frames (BMS status, secure telemetry), and
/// MOST streams are anchored, and the network builder rejects moves of
/// those.
struct FrameBusSpec {
  std::uint32_t frame_id = 0;  ///< Original Fig. 1 identifier.
  std::string bus;             ///< Target bus scenario name (e.g. `comfort_can`).

  friend bool operator==(const FrameBusSpec&, const FrameBusSpec&) = default;
};

/// One CAN identifier reassignment: the frame originally numbered
/// `frame_id` transmits as `new_id` instead. On CAN the identifier *is* the
/// priority (lower wins arbitration), so this is the priority-assignment
/// knob. Only frames whose final bus is CAN accept a new identifier.
struct FrameIdSpec {
  std::uint32_t frame_id = 0;  ///< Original Fig. 1 identifier.
  std::uint32_t new_id = 0;    ///< Identifier actually used on the wire.

  friend bool operator==(const FrameIdSpec&, const FrameIdSpec&) = default;
};

/// One FlexRay static-slot assignment: the chassis frame originally
/// numbered `frame_id` owns static slot `slot` (0-based TDMA position).
/// Unlisted static frames fill the remaining slots in default order.
struct FrSlotSpec {
  std::uint32_t frame_id = 0;  ///< Original Fig. 1 identifier.
  std::uint64_t slot = 0;      ///< 0-based static-slot index.

  friend bool operator==(const FrSlotSpec&, const FrSlotSpec&) = default;
};

/// One cockpit partition window: order in `ArchSpec::partitions` is the
/// major-frame window order, `budget_us` the window length. When present,
/// the list must name every default partition exactly once.
struct PartitionWindowSpec {
  std::string partition;         ///< Partition name (e.g. `hmi`).
  std::int64_t budget_us = 0;    ///< Window budget [us] in the major frame.

  friend bool operator==(const PartitionWindowSpec&, const PartitionWindowSpec&) =
      default;
};

/// Architecture overrides on top of the default Fig. 1 deployment — the
/// design-space coordinates `evsys synthesize` explores. Every list is
/// keyed by *original* frame identifier and kept in canonical form
/// (strictly increasing ids) so that equal designs compare equal and
/// serialization is deterministic. An empty ArchSpec is the stock
/// architecture; such specs emit no `arch.*` lines at all.
struct ArchSpec {
  std::vector<FrameBusSpec> frame_buses;        ///< Sorted by frame_id.
  std::vector<FrameIdSpec> frame_ids;           ///< Sorted by frame_id.
  std::vector<FrSlotSpec> fr_slots;             ///< Sorted by frame_id.
  std::vector<PartitionWindowSpec> partitions;  ///< In window order.

  [[nodiscard]] bool empty() const {
    return frame_buses.empty() && frame_ids.empty() && fr_slots.empty() &&
           partitions.empty();
  }

  /// Move `frame_id` to `bus`, replacing any existing entry for the frame.
  void set_frame_bus(std::uint32_t frame_id, const std::string& bus);
  /// Drop the placement override for `frame_id` (frame returns home).
  void clear_frame_bus(std::uint32_t frame_id);
  /// Reassign `frame_id`'s wire identifier. `new_id == frame_id` removes
  /// the entry (identity overrides are never stored).
  void set_frame_id(std::uint32_t frame_id, std::uint32_t new_id);
  /// Pin `frame_id` to static slot `slot`, replacing any existing entry.
  void set_fr_slot(std::uint32_t frame_id, std::uint64_t slot);
  /// Drop all static-slot assignments (default slot order).
  void clear_fr_slots();
  /// Replace the partition window plan wholesale (order = window order).
  void set_partition_windows(std::vector<PartitionWindowSpec> windows);

  friend bool operator==(const ArchSpec&, const ArchSpec&) = default;
};

/// Fig. 1 bus scenario names in bus-index order — the only values
/// `FrameBusSpec::bus` accepts.
inline constexpr const char* kArchBusNames[] = {
    "body_lin", "comfort_can", "infotainment_most", "safety_can",
    "chassis_flexray"};
inline constexpr std::size_t kArchBusCount = 5;

/// Which pluggable subsystems the composition root attaches.
struct SubsystemsSpec {
  bool obs = true;        ///< Metrics registry + kernel/bus/middleware observers.
  bool faults = false;    ///< FaultPlan + health watcher + degradation manager.
  bool health = false;    ///< Middleware heartbeat watchdog.
  bool security = false;  ///< Authenticated telemetry frames on the chassis bus.

  friend bool operator==(const SubsystemsSpec&, const SubsystemsSpec&) = default;
};

/// The drive mission.
struct DriveSpec {
  CycleKind cycle = CycleKind::kUrban;
  std::uint64_t repeat = 1;  ///< Cycle repetitions driven back to back.

  friend bool operator==(const DriveSpec&, const DriveSpec&) = default;
};

/// One complete declarative scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  DriveSpec drive;
  PackSpec pack;
  BmsSpec bms;
  PowertrainSpec powertrain;
  NetworkSpec network;
  TimingSpec timing;
  SubsystemsSpec subsystems;
  ArchSpec arch;                       ///< Architecture overrides (may be empty).
  std::uint64_t fault_seed = 1;        ///< Seed of the FaultPlan RNG.
  std::vector<FaultEventSpec> faults;  ///< Planned injections (may be empty).

  /// Throws std::invalid_argument naming the first violated constraint:
  /// positive periods/rates/counts, SoC values in [0, 1], non-negative
  /// injection times, targets present where the kind needs one.
  void validate() const;

  /// Renders every field as one `key = value` line (doubles in shortest
  /// round-trippable form). from_text(to_text(s)) == s for any valid spec.
  [[nodiscard]] std::string to_text() const;

  /// Parses the to_text() format: `#` comments and blank lines ignored,
  /// unknown and duplicate keys rejected, missing keys keep their defaults.
  /// Throws std::invalid_argument with the offending line on any malformed
  /// input, and validate()s the result before returning it.
  [[nodiscard]] static ScenarioSpec from_text(const std::string& text);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Enum names as they appear in scenario text.
[[nodiscard]] std::string to_string(CycleKind kind);
[[nodiscard]] std::string to_string(Balancing balancing);
[[nodiscard]] std::string to_string(FaultKind kind);

/// Reads and parses a scenario file. Throws std::invalid_argument when the
/// file cannot be read or fails to parse.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

/// Writes spec.to_text() to \p path; returns false when the file cannot be
/// opened.
bool save_scenario_file(const ScenarioSpec& spec, const std::string& path);

/// Shortest decimal form of \p value that parses back to the same double —
/// the deterministic number format of scenario text (and of every exporter
/// fed from it).
[[nodiscard]] std::string format_double(double value);

}  // namespace ev::config
