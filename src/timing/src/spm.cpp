#include "ev/timing/spm.h"

#include <algorithm>
#include <map>

namespace ev::timing {

namespace {

std::uint64_t line_of(std::uint64_t address, const SpmConfig& config) {
  return address / config.line_bytes * config.line_bytes;
}

}  // namespace

std::int64_t spm_wcet_cycles(const Program& program, const SpmConfig& config,
                             const std::set<std::uint64_t>& lines) {
  if (program.blocks.empty()) return 0;
  const std::vector<int> order = program.topological_order();
  std::vector<std::int64_t> longest(program.blocks.size(), -1);
  longest[static_cast<std::size_t>(order.front())] = 0;
  std::int64_t wcet = 0;
  for (int id : order) {
    const auto idx = static_cast<std::size_t>(id);
    if (longest[idx] < 0) continue;
    const BasicBlock& block = program.blocks[idx];
    std::int64_t per_iter = 0;
    for (std::uint64_t addr : block.accesses)
      per_iter += lines.contains(line_of(addr, config)) ? config.spm_cycles
                                                        : config.memory_cycles;
    const std::int64_t through = longest[idx] + per_iter * block.iterations;
    if (block.successors.empty()) wcet = std::max(wcet, through);
    for (int succ : block.successors)
      longest[static_cast<std::size_t>(succ)] =
          std::max(longest[static_cast<std::size_t>(succ)], through);
  }
  return wcet;
}

SpmAllocation allocate_spm(const Program& program, const SpmConfig& config) {
  SpmAllocation result;
  // Worst-case access frequency per line: every block contributes its
  // iteration-weighted accesses (conservative: all blocks, since any block
  // may lie on the worst path and the knapsack only needs a ranking).
  std::map<std::uint64_t, std::int64_t> frequency;
  for (const BasicBlock& block : program.blocks)
    for (std::uint64_t addr : block.accesses)
      frequency[line_of(addr, config)] += block.iterations;

  std::vector<std::pair<std::uint64_t, std::int64_t>> ranked(frequency.begin(),
                                                             frequency.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie break
  });
  for (std::size_t i = 0; i < ranked.size() && i < config.capacity_lines; ++i)
    result.lines.insert(ranked[i].first);

  result.wcet_cycles = spm_wcet_cycles(program, config, result.lines);
  for (const BasicBlock& block : program.blocks) {
    for (std::uint64_t addr : block.accesses) {
      result.total_static_accesses += block.iterations;
      if (result.lines.contains(line_of(addr, config)))
        result.spm_static_accesses += block.iterations;
    }
  }
  return result;
}

}  // namespace ev::timing
