#include <algorithm>
#include <set>

#include "ev/timing/analysis.h"

namespace ev::timing {

AnalysisResult collecting_analysis(const Program& program, const CacheConfig& config,
                                   std::size_t max_states) {
  AnalysisResult result;
  result.blocks.resize(program.blocks.size());
  const std::vector<int> order = program.topological_order();

  // Reachable concrete cache states at each block entry.
  std::vector<std::set<std::vector<SetState>>> in_states(program.blocks.size());
  in_states[static_cast<std::size_t>(order.front())].insert(
      CacheSim(config).state());

  for (int id : order) {
    const auto idx = static_cast<std::size_t>(id);
    const BasicBlock& block = program.blocks[idx];
    const auto& incoming = in_states[idx];
    BlockClassification cls;

    const bool overflow = incoming.empty() || incoming.size() > max_states;
    if (overflow) {
      // Scalability wall: degrade soundly to "unknown" for this block.
      cls.first_iteration.assign(block.accesses.size(), Classification::kNotClassified);
      cls.steady_state = cls.first_iteration;
      result.blocks[idx] = std::move(cls);
      // Successors inherit an (unknown) empty-state marker: propagate one
      // cold state to keep the analysis running; soundness of the WCET bound
      // is preserved because these blocks classify as NC.
      for (int succ : block.successors)
        in_states[static_cast<std::size_t>(succ)].insert(CacheSim(config).state());
      continue;
    }

    // Track per-access hit behaviour across every incoming state and every
    // iteration.
    const std::size_t n_acc = block.accesses.size();
    std::vector<bool> all_hit_first(n_acc, true), all_miss_first(n_acc, true);
    std::vector<bool> all_hit_steady(n_acc, true), all_miss_steady(n_acc, true);
    std::set<std::vector<SetState>> outgoing;

    for (const auto& state : incoming) {
      CacheSim sim(config);
      sim.set_state(state);
      for (std::int64_t iter = 0; iter < block.iterations; ++iter) {
        for (std::size_t a = 0; a < n_acc; ++a) {
          const bool hit = sim.access(block.accesses[a]);
          ++result.states_explored;
          if (iter == 0) {
            all_hit_first[a] = all_hit_first[a] && hit;
            all_miss_first[a] = all_miss_first[a] && !hit;
          } else {
            all_hit_steady[a] = all_hit_steady[a] && hit;
            all_miss_steady[a] = all_miss_steady[a] && !hit;
          }
        }
      }
      outgoing.insert(sim.state());
    }

    auto classify = [](bool all_hit, bool all_miss) {
      if (all_hit) return Classification::kAlwaysHit;
      if (all_miss) return Classification::kAlwaysMiss;
      return Classification::kNotClassified;
    };
    for (std::size_t a = 0; a < n_acc; ++a) {
      cls.first_iteration.push_back(classify(all_hit_first[a], all_miss_first[a]));
      cls.steady_state.push_back(block.iterations > 1
                                     ? classify(all_hit_steady[a], all_miss_steady[a])
                                     : cls.first_iteration.back());
    }
    result.blocks[idx] = std::move(cls);

    for (int succ : block.successors) {
      auto& target = in_states[static_cast<std::size_t>(succ)];
      target.insert(outgoing.begin(), outgoing.end());
    }
  }
  return result;
}

}  // namespace ev::timing
