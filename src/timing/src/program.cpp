#include "ev/timing/program.h"

#include <stdexcept>

namespace ev::timing {

std::vector<int> Program::topological_order() const {
  const std::size_t n = blocks.size();
  std::vector<int> in_degree(n, 0);
  for (const BasicBlock& b : blocks)
    for (int s : b.successors) {
      if (s < 0 || static_cast<std::size_t>(s) >= n)
        throw std::invalid_argument("Program: successor out of range");
      ++in_degree[static_cast<std::size_t>(s)];
    }
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (in_degree[i] == 0) ready.push_back(static_cast<int>(i));
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int s : blocks[static_cast<std::size_t>(v)].successors)
      if (--in_degree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
  }
  if (order.size() != n) throw std::invalid_argument("Program: CFG has a cycle");
  return order;
}

std::size_t Program::access_count() const noexcept {
  std::size_t n = 0;
  for (const BasicBlock& b : blocks) n += b.accesses.size();
  return n;
}

double Program::path_count() const {
  const std::vector<int> order = topological_order();
  std::vector<double> paths(blocks.size(), 0.0);
  paths[0] = 1.0;
  double total = 0.0;
  for (int id : order) {
    const BasicBlock& b = blocks[static_cast<std::size_t>(id)];
    if (b.successors.empty()) total += paths[static_cast<std::size_t>(id)];
    for (int s : b.successors) paths[static_cast<std::size_t>(s)] += paths[static_cast<std::size_t>(id)];
  }
  return total;
}

namespace {

std::uint64_t pick_address(const ProgramGenConfig& config, util::Rng& rng,
                           std::uint64_t* next_cold) {
  if (rng.bernoulli(config.reuse_probability)) {
    return 0x1000 +
           64 * static_cast<std::uint64_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(config.working_set_lines) - 1));
  }
  // Cold access: a fresh line never seen before (streaming data).
  const std::uint64_t addr = *next_cold;
  *next_cold += 64;
  return addr;
}

BasicBlock make_block(int id, const ProgramGenConfig& config, util::Rng& rng,
                      std::uint64_t* next_cold) {
  BasicBlock b;
  b.id = id;
  b.accesses.reserve(config.accesses_per_block);
  for (std::size_t i = 0; i < config.accesses_per_block; ++i)
    b.accesses.push_back(pick_address(config, rng, next_cold));
  if (rng.bernoulli(config.loop_probability))
    b.iterations = rng.uniform_int(2, config.max_loop_iterations);
  return b;
}

}  // namespace

Program generate_program(const ProgramGenConfig& config, util::Rng& rng) {
  Program prog;
  std::uint64_t next_cold = 0x100000;
  int next_id = 0;
  int tail = -1;  // block waiting for a successor

  auto append = [&](int id) {
    if (tail >= 0) prog.blocks[static_cast<std::size_t>(tail)].successors.push_back(id);
  };

  for (std::size_t seg = 0; seg < config.segments; ++seg) {
    if (rng.bernoulli(config.branch_probability)) {
      // Diamond: fork -> {then, else} -> join.
      const int fork = next_id++;
      const int then_b = next_id++;
      const int else_b = next_id++;
      const int join = next_id++;
      prog.blocks.push_back(make_block(fork, config, rng, &next_cold));
      prog.blocks.push_back(make_block(then_b, config, rng, &next_cold));
      prog.blocks.push_back(make_block(else_b, config, rng, &next_cold));
      prog.blocks.push_back(make_block(join, config, rng, &next_cold));
      append(fork);
      prog.blocks[static_cast<std::size_t>(fork)].successors = {then_b, else_b};
      prog.blocks[static_cast<std::size_t>(then_b)].successors = {join};
      prog.blocks[static_cast<std::size_t>(else_b)].successors = {join};
      tail = join;
    } else {
      const int id = next_id++;
      prog.blocks.push_back(make_block(id, config, rng, &next_cold));
      append(id);
      tail = id;
    }
  }
  return prog;
}

}  // namespace ev::timing
