#include <algorithm>
#include <stdexcept>

#include "ev/timing/analysis.h"

namespace ev::timing {

namespace {

std::int64_t access_cost(Classification c, const CacheConfig& config) {
  // The bound must assume a miss unless a hit is proven.
  return c == Classification::kAlwaysHit ? config.hit_cycles : config.miss_cycles;
}

std::int64_t block_bound(const BasicBlock& block, const BlockClassification& cls,
                         const CacheConfig& config) {
  std::int64_t first = 0;
  std::int64_t steady = 0;
  for (std::size_t a = 0; a < block.accesses.size(); ++a) {
    first += access_cost(cls.first_iteration.at(a), config);
    steady += access_cost(cls.steady_state.at(a), config);
  }
  return first + (block.iterations - 1) * steady;
}

}  // namespace

std::int64_t wcet_bound_cycles(const Program& program, const CacheConfig& config,
                               const AnalysisResult& analysis) {
  if (analysis.blocks.size() != program.blocks.size())
    throw std::invalid_argument("wcet_bound_cycles: analysis does not match program");
  const std::vector<int> order = program.topological_order();
  std::vector<std::int64_t> longest(program.blocks.size(), -1);
  longest[static_cast<std::size_t>(order.front())] = 0;
  std::int64_t wcet = 0;
  for (int id : order) {
    const auto idx = static_cast<std::size_t>(id);
    if (longest[idx] < 0) continue;  // unreachable
    const std::int64_t through =
        longest[idx] + block_bound(program.blocks[idx], analysis.blocks[idx], config);
    if (program.blocks[idx].successors.empty()) wcet = std::max(wcet, through);
    for (int succ : program.blocks[idx].successors)
      longest[static_cast<std::size_t>(succ)] =
          std::max(longest[static_cast<std::size_t>(succ)], through);
  }
  return wcet;
}

namespace {

std::int64_t run_block(CacheSim& sim, const BasicBlock& block) {
  const std::int64_t before = sim.cycles();
  for (std::int64_t iter = 0; iter < block.iterations; ++iter)
    for (std::uint64_t addr : block.accesses) (void)sim.access(addr);
  return sim.cycles() - before;
}

std::int64_t dfs_exact(const Program& program, const CacheConfig& config,
                       const CacheSim& incoming, int id) {
  CacheSim sim = incoming;
  const BasicBlock& block = program.blocks[static_cast<std::size_t>(id)];
  const std::int64_t cost = run_block(sim, block);
  if (block.successors.empty()) return cost;
  std::int64_t best = 0;
  for (int succ : block.successors)
    best = std::max(best, dfs_exact(program, config, sim, succ));
  return cost + best;
}

}  // namespace

std::int64_t exact_wcet_cycles(const Program& program, const CacheConfig& config,
                               double max_paths) {
  if (program.blocks.empty()) return 0;
  if (program.path_count() > max_paths) return -1;
  const CacheSim cold(config);
  return dfs_exact(program, config, cold, program.topological_order().front());
}

std::int64_t observed_wcet_cycles(const Program& program, const CacheConfig& config,
                                  std::size_t samples, util::Rng& rng) {
  if (program.blocks.empty()) return 0;
  const int entry = program.topological_order().front();
  std::int64_t worst = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    CacheSim sim(config);
    int id = entry;
    std::int64_t total = 0;
    while (true) {
      const BasicBlock& block = program.blocks[static_cast<std::size_t>(id)];
      total += run_block(sim, block);
      if (block.successors.empty()) break;
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(block.successors.size()) - 1));
      id = block.successors[pick];
    }
    worst = std::max(worst, total);
  }
  return worst;
}

}  // namespace ev::timing
