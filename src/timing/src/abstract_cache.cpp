#include <algorithm>
#include <bit>
#include <map>

#include "ev/timing/analysis.h"

namespace ev::timing {

namespace {

/// Abstract must-cache: per set, an upper bound on each resident line's LRU
/// age. A line is guaranteed resident iff its bound is < effective ways.
struct MustState {
  // One map per cache set: tag -> age upper bound.
  std::vector<std::map<std::uint64_t, int>> sets;

  bool operator==(const MustState& other) const { return sets == other.sets; }
};

/// Join at CFG merge points: only lines present in both survive, with the
/// worse (larger) age bound.
MustState join(const MustState& a, const MustState& b) {
  MustState out;
  out.sets.resize(a.sets.size());
  for (std::size_t s = 0; s < a.sets.size(); ++s) {
    for (const auto& [tag, age_a] : a.sets[s]) {
      const auto it = b.sets[s].find(tag);
      if (it != b.sets[s].end()) out.sets[s][tag] = std::max(age_a, it->second);
    }
  }
  return out;
}

/// Must-update for one access under LRU with \p ways.
void must_access(MustState& st, std::size_t set, std::uint64_t tag, int ways) {
  auto& m = st.sets[set];
  const auto it = m.find(tag);
  const int old_age = it == m.end() ? ways : it->second;
  // Lines younger than the accessed line's old age grow one step older.
  for (auto& [t, age] : m) {
    if (t == tag) continue;
    if (age < old_age) ++age;
  }
  // Evict lines whose bound reached the associativity.
  for (auto i = m.begin(); i != m.end();) {
    if (i->second >= ways)
      i = m.erase(i);
    else
      ++i;
  }
  m[tag] = 0;
}

/// Effective associativity for the must-analysis: published relative-
/// competitiveness reductions (Reineke et al.): FIFO(k) gives LRU(1)
/// guarantees; tree-PLRU(k) gives LRU(log2 k + 1).
int effective_ways(const CacheConfig& config) {
  switch (config.policy) {
    case Replacement::kLru: return static_cast<int>(config.ways);
    case Replacement::kFifo: return 1;
    case Replacement::kPlru:
      return static_cast<int>(std::bit_width(config.ways));  // log2(k) + 1
  }
  return 1;
}

}  // namespace

AnalysisResult must_analysis(const Program& program, const CacheConfig& config) {
  AnalysisResult result;
  result.blocks.resize(program.blocks.size());
  const int ways = effective_ways(config);
  const std::vector<int> order = program.topological_order();

  // Incoming abstract state per block (joined over predecessors).
  std::vector<MustState> in_state(program.blocks.size());
  std::vector<bool> has_state(program.blocks.size(), false);
  MustState entry;
  entry.sets.resize(config.sets);
  in_state[static_cast<std::size_t>(order.front())] = entry;
  has_state[static_cast<std::size_t>(order.front())] = true;

  CacheSim geometry(config);  // only for set/tag decomposition

  for (int id : order) {
    const auto idx = static_cast<std::size_t>(id);
    const BasicBlock& block = program.blocks[idx];
    MustState st = in_state[idx];
    BlockClassification cls;

    // First iteration: classify against the incoming state.
    for (std::uint64_t addr : block.accesses) {
      const std::size_t set = geometry.set_of(addr);
      const std::uint64_t tag = geometry.tag_of(addr);
      const auto it = st.sets[set].find(tag);
      const bool hit = it != st.sets[set].end() && it->second < ways;
      cls.first_iteration.push_back(hit ? Classification::kAlwaysHit
                                        : Classification::kNotClassified);
      must_access(st, set, tag, ways);
      ++result.states_explored;
    }

    // Steady state for loop blocks: iterate the block transfer to a local
    // fixed point (bounded by associativity), then classify once more.
    if (block.iterations > 1) {
      MustState steady = st;
      for (int round = 0; round < ways + 1; ++round) {
        MustState next = steady;
        for (std::uint64_t addr : block.accesses)
          must_access(next, geometry.set_of(addr), geometry.tag_of(addr), ways);
        next = join(next, steady);  // entry of another iteration
        if (next == steady) break;
        steady = next;
      }
      MustState scratch = steady;
      for (std::uint64_t addr : block.accesses) {
        const std::size_t set = geometry.set_of(addr);
        const std::uint64_t tag = geometry.tag_of(addr);
        const auto it = scratch.sets[set].find(tag);
        const bool hit = it != scratch.sets[set].end() && it->second < ways;
        cls.steady_state.push_back(hit ? Classification::kAlwaysHit
                                       : Classification::kNotClassified);
        must_access(scratch, set, tag, ways);
        ++result.states_explored;
      }
      // The block's outgoing state after all iterations.
      st = scratch;
    } else {
      cls.steady_state = cls.first_iteration;
    }

    result.blocks[idx] = std::move(cls);

    for (int succ : block.successors) {
      const auto sidx = static_cast<std::size_t>(succ);
      if (!has_state[sidx]) {
        in_state[sidx] = st;
        has_state[sidx] = true;
      } else {
        in_state[sidx] = join(in_state[sidx], st);
      }
    }
  }
  return result;
}

}  // namespace ev::timing
