#include "ev/timing/cache.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ev::timing {

std::string to_string(Replacement policy) {
  switch (policy) {
    case Replacement::kLru: return "LRU";
    case Replacement::kFifo: return "FIFO";
    case Replacement::kPlru: return "PLRU";
  }
  return "?";
}

CacheSim::CacheSim(CacheConfig config) : config_(config) {
  if (config.sets == 0 || config.ways == 0)
    throw std::invalid_argument("CacheSim: sets and ways must be positive");
  if (config.policy == Replacement::kPlru && !std::has_single_bit(config.ways))
    throw std::invalid_argument("CacheSim: PLRU needs power-of-two associativity");
  sets_.resize(config.sets);
  if (config.policy == Replacement::kPlru)
    for (auto& s : sets_) s.plru_bits.assign(config.ways - 1, false);
}

std::size_t CacheSim::set_of(std::uint64_t address) const noexcept {
  return (address / config_.line_bytes) % config_.sets;
}

std::uint64_t CacheSim::tag_of(std::uint64_t address) const noexcept {
  return address / config_.line_bytes / config_.sets;
}

void CacheSim::set_state(std::vector<SetState> state) {
  if (state.size() != sets_.size())
    throw std::invalid_argument("CacheSim::set_state: wrong set count");
  sets_ = std::move(state);
}

namespace {

/// Tree-PLRU: follow the direction bits to the victim leaf, flipping visited
/// bits away from the victim on the way (standard implementation).
std::size_t plru_victim(std::vector<bool>& bits, std::size_t ways) {
  std::size_t node = 0;
  std::size_t leaf = 0;
  std::size_t range = ways;
  while (range > 1) {
    const bool right = bits[node];
    bits[node] = !right;  // point away from the chosen victim
    range /= 2;
    if (right) leaf += range;
    node = 2 * node + 1 + (right ? 1 : 0);
  }
  return leaf;
}

/// Tree-PLRU touch: set the bits on the path to \p way to point away from it.
void plru_touch(std::vector<bool>& bits, std::size_t ways, std::size_t way) {
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t range = ways;
  while (range > 1) {
    range /= 2;
    const bool in_right = way >= lo + range;
    bits[node] = !in_right;  // point to the *other* half
    node = 2 * node + 1 + (in_right ? 1 : 0);
    if (in_right) lo += range;
  }
}

}  // namespace

bool CacheSim::access_set(SetState& set, std::uint64_t tag) {
  auto& lines = set.lines;
  const auto it = std::find(lines.begin(), lines.end(), tag);
  switch (config_.policy) {
    case Replacement::kLru: {
      if (it != lines.end()) {
        // Move to MRU position (front).
        lines.erase(it);
        lines.insert(lines.begin(), tag);
        return true;
      }
      lines.insert(lines.begin(), tag);
      if (lines.size() > config_.ways) lines.pop_back();
      return false;
    }
    case Replacement::kFifo: {
      if (it != lines.end()) return true;  // FIFO: hits do not reorder
      lines.push_back(tag);
      if (lines.size() > config_.ways) lines.erase(lines.begin());
      return false;
    }
    case Replacement::kPlru: {
      if (it != lines.end()) {
        plru_touch(set.plru_bits, config_.ways, static_cast<std::size_t>(it - lines.begin()));
        return true;
      }
      if (lines.size() < config_.ways) {
        lines.push_back(tag);
        plru_touch(set.plru_bits, config_.ways, lines.size() - 1);
        return false;
      }
      const std::size_t victim = plru_victim(set.plru_bits, config_.ways);
      lines[victim] = tag;
      plru_touch(set.plru_bits, config_.ways, victim);
      return false;
    }
  }
  return false;
}

bool CacheSim::access(std::uint64_t address) {
  const bool hit = access_set(sets_[set_of(address)], tag_of(address));
  if (hit) {
    ++hits_;
    cycles_ += config_.hit_cycles;
  } else {
    ++misses_;
    cycles_ += config_.miss_cycles;
  }
  return hit;
}

}  // namespace ev::timing
