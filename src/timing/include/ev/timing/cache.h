/// \file cache.h
/// Concrete set-associative cache simulation with the three replacement
/// policies the paper contrasts: LRU (best predictability), FIFO, and
/// tree-PLRU (both "much harder to analyse" [30]). The concrete simulator
/// provides observed hit/miss behaviour and the exact states the collecting
/// analysis enumerates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::timing {

/// Replacement policy.
enum class Replacement { kLru, kFifo, kPlru };

/// Name for reports.
[[nodiscard]] std::string to_string(Replacement policy);

/// Geometry and timing of the cache.
struct CacheConfig {
  std::size_t sets = 8;
  std::size_t ways = 4;          ///< For kPlru must be a power of two.
  std::size_t line_bytes = 64;
  std::int64_t hit_cycles = 1;
  std::int64_t miss_cycles = 20;
  Replacement policy = Replacement::kLru;
};

/// Concrete state of one cache set: the resident tags plus the policy's
/// bookkeeping. Comparable so the collecting analysis can deduplicate
/// states.
struct SetState {
  /// Resident tags. Order encodes policy state: LRU keeps most-recent first;
  /// FIFO keeps insertion order (oldest first).
  std::vector<std::uint64_t> lines;
  /// Tree-PLRU direction bits (ways - 1 of them), empty for LRU/FIFO.
  std::vector<bool> plru_bits;

  auto operator<=>(const SetState&) const = default;
};

/// A simulatable cache.
class CacheSim {
 public:
  explicit CacheSim(CacheConfig config);

  /// Performs one access; returns true on hit and updates policy state.
  bool access(std::uint64_t address);

  /// Hits observed so far.
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  /// Misses observed so far.
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Total access cycles accumulated (hits * hit + misses * miss).
  [[nodiscard]] std::int64_t cycles() const noexcept { return cycles_; }
  /// Configuration.
  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  /// Full cache state (for the collecting analysis).
  [[nodiscard]] const std::vector<SetState>& state() const noexcept { return sets_; }
  /// Replaces the full state (collecting analysis explores from snapshots).
  void set_state(std::vector<SetState> state);
  /// Set/tag decomposition helpers.
  [[nodiscard]] std::size_t set_of(std::uint64_t address) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t address) const noexcept;

 private:
  bool access_set(SetState& set, std::uint64_t tag);

  CacheConfig config_;
  std::vector<SetState> sets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::int64_t cycles_ = 0;
};

}  // namespace ev::timing
