/// \file analysis.h
/// Static cache/WCET analyses of Section 4.1:
///  - Abstract-interpretation must-analysis ([30], Theiling/Ferdinand/
///    Wilhelm): scalable, sound, loses precision — and for FIFO/PLRU the
///    guarantees shrink further via the published relative-competitiveness
///    reductions to LRU.
///  - Precise path-enumeration analysis ([31]): exact concrete cache states
///    along every path — tight but exponential in program size.
///  - Classification-based WCET bound and simulation-based observed WCET,
///    whose ratio quantifies the precision/scalability trade-off of E9.
#pragma once

#include <cstdint>
#include <vector>

#include "ev/timing/cache.h"
#include "ev/timing/program.h"
#include "ev/util/rng.h"

namespace ev::timing {

/// Static classification of one access point.
enum class Classification {
  kAlwaysHit,      ///< Proven hit on every execution.
  kAlwaysMiss,     ///< Proven miss on every execution (collecting only).
  kNotClassified,  ///< Unknown: the WCET bound must assume a miss.
};

/// Per-block classification: one entry per access, for the first loop
/// iteration and for the steady state of later iterations.
struct BlockClassification {
  std::vector<Classification> first_iteration;
  std::vector<Classification> steady_state;
};

/// Result of a classification analysis over a whole program.
struct AnalysisResult {
  std::vector<BlockClassification> blocks;  ///< Indexed like Program::blocks.
  std::size_t states_explored = 0;          ///< Work measure (abstract or concrete).
};

/// Abstract must-analysis. Sound for all three policies: LRU is analysed at
/// full associativity; FIFO and tree-PLRU are analysed through their
/// relative-competitiveness reduction (FIFO(k) -> LRU(1),
/// PLRU(k) -> LRU(log2 k + 1)), which is exactly why those policies obtain
/// far fewer guaranteed hits.
[[nodiscard]] AnalysisResult must_analysis(const Program& program, const CacheConfig& config);

/// Precise collecting analysis: propagates *sets of exact cache states*
/// through the CFG, classifying each access against every reachable state.
/// Exponential in the number of branches; \p max_states caps the explored
/// state-set size per block (beyond it the analysis degrades the block to
/// NotClassified, mirroring the scalability failure of [31]).
[[nodiscard]] AnalysisResult collecting_analysis(const Program& program,
                                                 const CacheConfig& config,
                                                 std::size_t max_states = 1 << 16);

/// WCET bound from a classification: NotClassified and AlwaysMiss cost a
/// miss; longest path over the DAG with per-block
/// first + (iterations-1) * steady cost.
[[nodiscard]] std::int64_t wcet_bound_cycles(const Program& program,
                                             const CacheConfig& config,
                                             const AnalysisResult& analysis);

/// Exact WCET by exhaustive path enumeration with concrete cache simulation.
/// Returns -1 when the program has more than \p max_paths paths.
[[nodiscard]] std::int64_t exact_wcet_cycles(const Program& program,
                                             const CacheConfig& config,
                                             double max_paths = 4e6);

/// Observed execution time: simulates \p samples random paths and returns
/// the maximum observed cycle count (a lower bound on the true WCET).
[[nodiscard]] std::int64_t observed_wcet_cycles(const Program& program,
                                                const CacheConfig& config,
                                                std::size_t samples, util::Rng& rng);

}  // namespace ev::timing
