/// \file program.h
/// Program model for static timing analysis (Section 4.1, "Precise Timing
/// Analysis"): an acyclic control-flow graph of basic blocks, each with its
/// sequence of memory accesses and a loop-iteration bound (loops are
/// pre-summarized into block iteration counts, the standard simplification
/// for path-based WCET). A deterministic generator produces synthetic
/// programs with controllable size and locality for the E9 sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "ev/util/rng.h"

namespace ev::timing {

/// A basic block: straight-line code touching a sequence of memory lines.
struct BasicBlock {
  int id = 0;
  std::vector<std::uint64_t> accesses;  ///< Memory line addresses, in order.
  std::int64_t iterations = 1;          ///< Execution-count bound (loop bound).
  std::vector<int> successors;          ///< Outgoing CFG edges (block ids).
};

/// An acyclic CFG with a unique entry (first block) and implicit exits
/// (blocks without successors).
struct Program {
  std::vector<BasicBlock> blocks;  ///< Block ids equal their index.

  /// All blocks in topological order (ids). Throws on a cycle.
  [[nodiscard]] std::vector<int> topological_order() const;
  /// Total number of memory accesses across all blocks (static count).
  [[nodiscard]] std::size_t access_count() const noexcept;
  /// Number of structurally distinct entry-to-exit paths.
  [[nodiscard]] double path_count() const;
};

/// Generator knobs.
struct ProgramGenConfig {
  std::size_t segments = 10;       ///< Sequential segments (each a block or a diamond).
  double branch_probability = 0.5; ///< Chance a segment is an if/else diamond.
  std::size_t accesses_per_block = 12;
  std::size_t working_set_lines = 24;  ///< Hot pool the blocks draw from.
  double reuse_probability = 0.7;      ///< Chance an access hits the hot pool.
  std::int64_t max_loop_iterations = 8;
  double loop_probability = 0.3;       ///< Chance a block carries a loop bound.
};

/// Deterministically generates a synthetic program from \p rng.
[[nodiscard]] Program generate_program(const ProgramGenConfig& config, util::Rng& rng);

}  // namespace ev::timing
