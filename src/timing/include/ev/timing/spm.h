/// \file spm.h
/// Scratchpad memory allocation ([32]): the software-controlled alternative
/// to caches. Allocation is decided at compile time, so every access cost is
/// statically known — the WCET bound is *exact* (predictability), at the
/// price of lower average performance than a well-behaved cache. Experiment
/// E9 reports both sides of that trade.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "ev/timing/program.h"

namespace ev::timing {

/// SPM geometry and timing.
struct SpmConfig {
  std::size_t capacity_lines = 16;  ///< Lines the scratchpad can hold.
  std::size_t line_bytes = 64;
  std::int64_t spm_cycles = 1;      ///< Access cost for allocated lines.
  std::int64_t memory_cycles = 20;  ///< Access cost for everything else.
};

/// A computed allocation plus its exact WCET.
struct SpmAllocation {
  std::set<std::uint64_t> lines;       ///< Line base addresses placed in SPM.
  std::int64_t wcet_cycles = 0;        ///< Exact longest-path execution time.
  std::int64_t total_static_accesses = 0;
  std::int64_t spm_static_accesses = 0;  ///< Accesses served by the SPM.
};

/// Computes worst-case per-line access frequencies (weighting each block by
/// its iteration bound and the structurally worst path) and allocates the
/// most frequently used lines to the SPM (optimal for uniform line sizes).
/// Returns allocation and the exact WCET under it.
[[nodiscard]] SpmAllocation allocate_spm(const Program& program, const SpmConfig& config);

/// Exact WCET of \p program when \p lines are in the SPM (longest path with
/// statically known access costs).
[[nodiscard]] std::int64_t spm_wcet_cycles(const Program& program, const SpmConfig& config,
                                           const std::set<std::uint64_t>& lines);

}  // namespace ev::timing
