/// \file drive.h
/// Complete motor-drive assembly: FOC controller + space-vector modulator +
/// switched six-IGBT inverter + PMSM, with fault injection, online fault
/// detection, and post-fault reconfiguration to the four-switch topology.
/// This is the executable version of the paper's Fig. 3 plus its
/// fault-tolerant control discussion.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "ev/motor/fault.h"
#include "ev/motor/foc.h"
#include "ev/motor/inverter.h"
#include "ev/motor/pmsm.h"
#include "ev/motor/svm.h"

namespace ev::motor {

/// Drive assembly parameters.
struct DriveConfig {
  PmsmParameters machine;
  FocConfig foc;
  double pwm_frequency_hz = 10000.0;  ///< Control and switching frequency.
  int substeps_per_period = 10;       ///< Switched-waveform resolution per period.
  bool fault_tolerant = true;         ///< Enable detection + reconfiguration.
};

/// Operating mode of the drive.
enum class DriveMode {
  kNormal,        ///< Six-switch operation, no fault present.
  kFaulted,       ///< Fault present but not yet detected/handled.
  kReconfigured,  ///< Four-switch post-fault operation.
};

/// Closed-loop motor drive stepped one PWM period at a time.
class MotorDrive {
 public:
  explicit MotorDrive(DriveConfig config = {});

  /// Advances one PWM period in speed mode: \p speed_ref_rad_s mechanical
  /// speed command against \p load_torque_nm shaft load.
  void step(double speed_ref_rad_s, double load_torque_nm);

  /// Advances one PWM period in torque mode with q-current ref \p iq_ref_a.
  void step_torque(double iq_ref_a, double load_torque_nm);

  /// Injects an open-circuit fault on \p sw (takes effect immediately).
  void inject_open_fault(Igbt sw);

  /// The machine model (read access for measurements).
  [[nodiscard]] const Pmsm& machine() const noexcept { return pmsm_; }
  /// The inverter model.
  [[nodiscard]] const Inverter& inverter() const noexcept { return inverter_; }
  /// Elapsed drive time [s].
  [[nodiscard]] double time_s() const noexcept { return time_s_; }
  /// Current operating mode.
  [[nodiscard]] DriveMode mode() const noexcept { return mode_; }
  /// Control/PWM period [s].
  [[nodiscard]] double period_s() const noexcept { return 1.0 / config_.pwm_frequency_hz; }
  /// Time from fault injection to detection, once detected [s].
  [[nodiscard]] std::optional<double> detection_latency_s() const noexcept {
    return detection_latency_s_;
  }
  /// Phase-a current samples recorded each sub-step since recording started.
  [[nodiscard]] const std::vector<double>& recorded_current_a() const noexcept {
    return record_ia_;
  }
  /// Line-to-line voltage v_ab samples recorded each sub-step.
  [[nodiscard]] const std::vector<double>& recorded_vab() const noexcept {
    return record_vab_;
  }
  /// Torque samples recorded once per PWM period.
  [[nodiscard]] const std::vector<double>& recorded_torque() const noexcept {
    return record_torque_;
  }
  /// Starts (true) or stops (false) waveform recording.
  void set_recording(bool on) noexcept { recording_ = on; }
  /// Clears recorded waveforms.
  void clear_recording() noexcept;
  /// Sub-step sample rate of the recordings [Hz].
  [[nodiscard]] double record_rate_hz() const noexcept {
    return config_.pwm_frequency_hz * config_.substeps_per_period;
  }

 private:
  void run_period(const AlphaBeta& v_ref, double load_torque_nm);
  void handle_fault_response();

  DriveConfig config_;
  Pmsm pmsm_;
  Inverter inverter_;
  FocController controller_;
  OpenSwitchDetector detector_;
  std::optional<FourSwitchModulator> b4_;
  DriveMode mode_ = DriveMode::kNormal;
  double time_s_ = 0.0;
  std::optional<double> fault_time_s_;
  std::optional<double> detection_latency_s_;
  bool recording_ = false;
  std::vector<double> record_ia_;
  std::vector<double> record_vab_;
  std::vector<double> record_torque_;
};

/// Amplitude of the \p harmonic-th multiple of \p fundamental_hz in
/// \p samples taken at \p sample_rate_hz (Goertzel single-bin DFT).
[[nodiscard]] double harmonic_amplitude(std::span<const double> samples,
                                        double sample_rate_hz, double fundamental_hz,
                                        int harmonic);

/// Total harmonic distortion up to \p max_harmonic relative to the
/// fundamental: sqrt(sum h>=2 A_h^2) / A_1.
[[nodiscard]] double total_harmonic_distortion(std::span<const double> samples,
                                               double sample_rate_hz,
                                               double fundamental_hz,
                                               int max_harmonic = 20);

}  // namespace ev::motor
