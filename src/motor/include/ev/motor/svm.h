/// \file svm.h
/// Space-vector modulation ([5] in the paper): converts a demanded stator
/// voltage vector into per-leg duty cycles such that the six IGBTs of the
/// inverter synthesize three sinusoidal, 2*pi/3-shifted waveforms (Fig. 3).
/// Implemented as min-max common-mode injection, which is mathematically
/// equivalent to classic sector-based SVPWM and extends the linear range to
/// Vdc/sqrt(3).
#pragma once

#include "ev/motor/transforms.h"

namespace ev::motor {

/// Duty cycles of the three inverter legs, each in [0, 1].
struct Duties {
  double a = 0.5;
  double b = 0.5;
  double c = 0.5;
};

/// Space-vector modulator for the full six-switch (B6) inverter.
class SvmModulator {
 public:
  /// Computes leg duties realizing stationary-frame voltage \p v_ref with dc
  /// link voltage \p vdc. Saturates at the SVM linear-region hexagon
  /// boundary (|v| <= vdc/sqrt(3)) by amplitude scaling.
  [[nodiscard]] static Duties modulate(const AlphaBeta& v_ref, double vdc) noexcept;

  /// Maximum phase-voltage amplitude realizable in the linear region [V].
  [[nodiscard]] static double max_amplitude(double vdc) noexcept;

  /// SVM sector (1..6) of the reference vector; exposed for tests and for
  /// the fault-tolerant controller's diagnostics.
  [[nodiscard]] static int sector(const AlphaBeta& v_ref) noexcept;
};

/// Four-switch (B4) modulator used after an IGBT open fault: the faulty leg
/// is isolated and its phase is tied to the dc-link midpoint, so only the
/// two healthy legs switch. Line-to-line voltages are preserved by shifting
/// the common-mode reference, at the cost of half the dc-link utilization —
/// the classic post-fault topology the paper's fault-tolerant control
/// strategy targets.
class FourSwitchModulator {
 public:
  /// \p faulty_phase: 0 = a, 1 = b, 2 = c.
  explicit FourSwitchModulator(int faulty_phase);

  /// Computes duties for the two healthy legs; the faulty leg's duty is
  /// reported as exactly 0.5 (midpoint clamp, not switched).
  [[nodiscard]] Duties modulate(const AlphaBeta& v_ref, double vdc) const noexcept;

  /// The isolated phase index.
  [[nodiscard]] int faulty_phase() const noexcept { return faulty_phase_; }

 private:
  int faulty_phase_;
};

}  // namespace ev::motor
