/// \file inverter.h
/// Two-level six-IGBT voltage-source inverter (Fig. 3) with per-switch
/// open-circuit fault injection. Produces the switched phase voltages seen
/// by the machine given the commanded leg states, accounting for the
/// freewheeling-diode paths that determine post-fault behaviour.
#pragma once

#include <array>

#include "ev/motor/svm.h"
#include "ev/motor/transforms.h"

namespace ev::motor {

/// The six controllable switches: upper (sa, sb, sc) and lower
/// (sa_bar, sb_bar, sc_bar) of each leg.
enum class Igbt { kUpperA = 0, kLowerA, kUpperB, kLowerB, kUpperC, kLowerC };

/// Commanded state of the three legs: true = upper switch on (leg tied high),
/// false = lower switch on. Dead time is neglected at this modelling level.
struct LegStates {
  bool a = false;
  bool b = false;
  bool c = false;
};

/// Switched inverter with dc link \p vdc. Open-circuit faults may be
/// injected per IGBT; a faulty commanded switch does not conduct and the
/// leg output is determined by the antiparallel diodes and the phase
/// current direction — the mechanism that drives the motor "into
/// unpredicted operating modes" per the paper.
class Inverter {
 public:
  explicit Inverter(double vdc = 400.0) noexcept : vdc_(vdc) {}

  /// Injects (true) or clears (false) an open-circuit fault on \p sw.
  void set_open_fault(Igbt sw, bool faulty) noexcept;
  /// True when \p sw has an injected open fault.
  [[nodiscard]] bool has_open_fault(Igbt sw) const noexcept;
  /// True when any switch is faulty.
  [[nodiscard]] bool any_fault() const noexcept;

  /// Isolates a whole leg (both switches off permanently) and ties its
  /// phase to the dc-link midpoint — the post-fault B4 reconfiguration.
  void isolate_leg_to_midpoint(int phase) noexcept;
  /// True when \p phase (0..2) has been tied to the midpoint.
  [[nodiscard]] bool leg_isolated(int phase) const noexcept { return midpoint_[unsigned(phase)]; }

  /// Leg output voltages (relative to the negative rail) for commanded
  /// states \p cmd with instantaneous phase currents \p i (needed to resolve
  /// diode conduction under faults).
  [[nodiscard]] Abc leg_voltages(const LegStates& cmd, const Abc& i) const noexcept;

  /// Phase-to-neutral voltages for an isolated-neutral machine:
  /// v_xn = v_x - (v_a + v_b + v_c)/3.
  [[nodiscard]] Abc phase_voltages(const LegStates& cmd, const Abc& i) const noexcept;

  /// Converts center-aligned-carrier comparison of \p duties at carrier
  /// position \p carrier (0..1 within the PWM period) into leg states.
  [[nodiscard]] static LegStates compare_carrier(const Duties& duties,
                                                 double carrier) noexcept;

  /// DC-link voltage [V].
  [[nodiscard]] double vdc() const noexcept { return vdc_; }
  void set_vdc(double vdc) noexcept { vdc_ = vdc; }

 private:
  [[nodiscard]] double leg_voltage(bool cmd_high, bool upper_ok, bool lower_ok, bool tied_mid,
                                   double current) const noexcept;

  double vdc_;
  std::array<bool, 6> open_fault_{};  // indexed by Igbt
  std::array<bool, 3> midpoint_{};    // leg tied to Vdc/2
};

}  // namespace ev::motor
