/// \file transforms.h
/// Reference-frame transforms for three-phase machines: Clarke (abc ->
/// stationary alpha-beta) and Park (alpha-beta -> rotating dq), both
/// amplitude-invariant, plus their inverses. These are the coordinate
/// changes field-oriented control is built on.
#pragma once

#include <cmath>

namespace ev::motor {

/// A three-phase quantity (currents or voltages), phases a, b, c.
struct Abc {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

/// A stationary-frame two-phase quantity.
struct AlphaBeta {
  double alpha = 0.0;
  double beta = 0.0;
};

/// A rotor-frame two-phase quantity.
struct Dq {
  double d = 0.0;
  double q = 0.0;
};

/// Clarke transform, amplitude-invariant (2/3 scaling).
[[nodiscard]] inline AlphaBeta clarke(const Abc& x) noexcept {
  constexpr double kSqrt3Over2 = 0.86602540378443864676;
  return AlphaBeta{(2.0 / 3.0) * (x.a - 0.5 * x.b - 0.5 * x.c),
                   (2.0 / 3.0) * kSqrt3Over2 * (x.b - x.c)};
}

/// Inverse Clarke transform (balanced: a + b + c = 0).
[[nodiscard]] inline Abc inverse_clarke(const AlphaBeta& x) noexcept {
  constexpr double kSqrt3Over2 = 0.86602540378443864676;
  return Abc{x.alpha, -0.5 * x.alpha + kSqrt3Over2 * x.beta,
             -0.5 * x.alpha - kSqrt3Over2 * x.beta};
}

/// Park transform into a frame at electrical angle \p theta_e.
[[nodiscard]] inline Dq park(const AlphaBeta& x, double theta_e) noexcept {
  const double c = std::cos(theta_e);
  const double s = std::sin(theta_e);
  return Dq{x.alpha * c + x.beta * s, -x.alpha * s + x.beta * c};
}

/// Inverse Park transform from a frame at electrical angle \p theta_e.
[[nodiscard]] inline AlphaBeta inverse_park(const Dq& x, double theta_e) noexcept {
  const double c = std::cos(theta_e);
  const double s = std::sin(theta_e);
  return AlphaBeta{x.d * c - x.q * s, x.d * s + x.q * c};
}

}  // namespace ev::motor
