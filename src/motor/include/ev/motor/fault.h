/// \file fault.h
/// Open-IGBT fault detection. An open switch removes one half-wave of the
/// affected phase current, producing a dc offset whose sign identifies which
/// switch of the leg failed — the diagnostic the fault-tolerant control
/// strategy of the paper needs before it can recompute post-fault PWM
/// sequences "quickly enough".
#pragma once

#include <cstddef>
#include <optional>

#include "ev/motor/inverter.h"
#include "ev/motor/transforms.h"

namespace ev::motor {

/// A located inverter fault.
struct FaultDiagnosis {
  int phase = -1;        ///< 0 = a, 1 = b, 2 = c.
  bool upper = false;    ///< True: upper switch open; false: lower.
  [[nodiscard]] Igbt igbt() const noexcept {
    return static_cast<Igbt>(phase * 2 + (upper ? 0 : 1));
  }
};

/// Sliding-window mean-current detector. sample() is called every control
/// period; once a phase's normalized mean current exceeds the threshold for
/// a full window, the fault is latched and diagnose() returns it.
class OpenSwitchDetector {
 public:
  /// \p window is the number of samples averaged (should cover at least one
  /// electrical period); \p threshold the normalized |mean|/|amplitude|
  /// ratio that triggers (healthy sinusoidal currents have ~0 mean).
  explicit OpenSwitchDetector(std::size_t window = 400, double threshold = 0.25);

  /// Feeds one sample of the three phase currents.
  void sample(const Abc& currents);

  /// Latched diagnosis, if any fault has been detected.
  [[nodiscard]] std::optional<FaultDiagnosis> diagnose() const noexcept { return latched_; }

  /// Number of samples consumed since construction or reset.
  [[nodiscard]] std::size_t samples_seen() const noexcept { return seen_; }

  /// Clears all accumulated state and any latched diagnosis.
  void reset() noexcept;

 private:
  std::size_t window_;
  double threshold_;
  std::size_t seen_ = 0;
  double sum_[3] = {0, 0, 0};
  double abs_sum_[3] = {0, 0, 0};
  std::optional<FaultDiagnosis> latched_;
};

}  // namespace ev::motor
