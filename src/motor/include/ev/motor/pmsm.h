/// \file pmsm.h
/// Permanent-magnet synchronous machine model in the rotor (dq) reference
/// frame, with an abc-terminal interface for the switched inverter. The
/// paper's Fig. 3 drives exactly this machine from a six-IGBT inverter.
#pragma once

#include "ev/motor/transforms.h"

namespace ev::motor {

/// Electrical and mechanical machine parameters. Defaults approximate a
/// 80 kW-class EV traction PMSM.
struct PmsmParameters {
  double stator_resistance_ohm = 0.01;   ///< Rs.
  double ld_henry = 0.3e-3;              ///< Direct-axis inductance.
  double lq_henry = 0.45e-3;             ///< Quadrature-axis inductance.
  double flux_linkage_wb = 0.12;         ///< Permanent-magnet flux linkage.
  int pole_pairs = 4;                    ///< p.
  double inertia_kg_m2 = 0.05;           ///< Rotor + reflected load inertia.
  double friction_nm_s = 0.002;          ///< Viscous friction coefficient.
};

/// PMSM state advanced by fixed-step integration. Electrical angle theta_e
/// wraps continuously; omega is mechanical.
class Pmsm {
 public:
  explicit Pmsm(PmsmParameters params = {}) noexcept : params_(params) {}

  /// Advances the machine by \p dt_s under stator voltage \p v (abc,
  /// line-to-neutral) and shaft load torque \p load_torque_nm (positive
  /// opposes motion).
  void step(const Abc& v, double load_torque_nm, double dt_s) noexcept;

  /// Phase currents at the terminals [A].
  [[nodiscard]] Abc currents() const noexcept;
  /// dq-frame currents [A].
  [[nodiscard]] Dq currents_dq() const noexcept { return Dq{i_d_, i_q_}; }
  /// Electromagnetic torque [Nm].
  [[nodiscard]] double torque_nm() const noexcept;
  /// Mechanical angular velocity [rad/s].
  [[nodiscard]] double speed_rad_s() const noexcept { return omega_m_; }
  /// Electrical rotor angle [rad], wrapped to [0, 2*pi).
  [[nodiscard]] double electrical_angle() const noexcept { return theta_e_; }
  /// Electrical angular velocity [rad/s].
  [[nodiscard]] double electrical_speed() const noexcept {
    return omega_m_ * params_.pole_pairs;
  }
  /// Machine parameters.
  [[nodiscard]] const PmsmParameters& params() const noexcept { return params_; }

  /// Forces the mechanical state (test/bench setup helper).
  void set_speed(double omega_m_rad_s) noexcept { omega_m_ = omega_m_rad_s; }

 private:
  PmsmParameters params_;
  double i_d_ = 0.0;
  double i_q_ = 0.0;
  double omega_m_ = 0.0;
  double theta_e_ = 0.0;
};

}  // namespace ev::motor
