/// \file foc.h
/// Field-oriented control: cascaded speed and dq-current PI loops producing
/// the stator voltage reference the space-vector modulator realizes. This is
/// the "efficient and reliable control of electric motors" layer of the
/// paper's Section 2, and the control task whose post-fault PWM sequences
/// must be recomputed in real time.
#pragma once

#include "ev/motor/pmsm.h"
#include "ev/motor/transforms.h"

namespace ev::motor {

/// Discrete PI regulator with output clamping and back-calculation
/// anti-windup.
class PiController {
 public:
  /// \p kp proportional gain, \p ki integral gain per second, output limited
  /// to [-limit, limit].
  PiController(double kp, double ki, double limit) noexcept
      : kp_(kp), ki_(ki), limit_(limit) {}

  /// Advances by \p dt_s with tracking error \p error; returns the clamped
  /// actuation.
  [[nodiscard]] double update(double error, double dt_s) noexcept;

  /// Clears the integrator.
  void reset() noexcept { integral_ = 0.0; }
  /// Current integrator state (exposed for tests).
  [[nodiscard]] double integral() const noexcept { return integral_; }

 private:
  double kp_;
  double ki_;
  double limit_;
  double integral_ = 0.0;
};

/// FOC tuning and limits.
struct FocConfig {
  double speed_kp = 8.0;        ///< Speed loop gain [A per rad/s].
  double speed_ki = 20.0;       ///< Speed loop integral gain.
  double current_kp = 1.2;      ///< Current loop gain [V/A].
  double current_ki = 900.0;    ///< Current loop integral gain.
  double max_phase_current_a = 300.0;  ///< Current (torque) limit.
  double vdc = 400.0;           ///< DC-link voltage for the voltage limit.
};

/// Cascaded FOC controller: speed PI -> i_q reference (i_d ref = 0 for a
/// surface-mount machine), current PIs -> v_dq, decoupling feed-forward,
/// inverse Park to the stationary frame.
class FocController {
 public:
  explicit FocController(FocConfig config, PmsmParameters machine = {}) noexcept;

  /// One control period: computes the stationary-frame voltage reference
  /// from the speed command and the measured currents/angle/speed.
  [[nodiscard]] AlphaBeta update(double speed_ref_rad_s, double speed_rad_s,
                                 const Dq& i_meas, double theta_e, double dt_s) noexcept;

  /// Torque-mode variant: commands \p iq_ref directly (used by the
  /// powertrain torque path) instead of closing the speed loop.
  [[nodiscard]] AlphaBeta update_torque(double iq_ref, const Dq& i_meas, double theta_e,
                                        double speed_rad_s, double dt_s) noexcept;

  /// Resets all integrators (used at fault reconfiguration).
  void reset() noexcept;

  /// Last commanded q-axis current reference [A].
  [[nodiscard]] double iq_reference() const noexcept { return last_iq_ref_; }

 private:
  FocConfig config_;
  PmsmParameters machine_;
  PiController speed_pi_;
  PiController id_pi_;
  PiController iq_pi_;
  double last_iq_ref_ = 0.0;
};

}  // namespace ev::motor
