#include "ev/motor/fault.h"

#include <cmath>

namespace ev::motor {

OpenSwitchDetector::OpenSwitchDetector(std::size_t window, double threshold)
    : window_(window), threshold_(threshold) {}

void OpenSwitchDetector::sample(const Abc& currents) {
  if (latched_) return;
  const double i[3] = {currents.a, currents.b, currents.c};
  for (int p = 0; p < 3; ++p) {
    sum_[p] += i[p];
    abs_sum_[p] += std::fabs(i[p]);
  }
  ++seen_;
  if (seen_ < window_) return;

  for (int p = 0; p < 3; ++p) {
    const double mean = sum_[p] / static_cast<double>(seen_);
    const double mean_abs = abs_sum_[p] / static_cast<double>(seen_);
    if (mean_abs < 1e-3) continue;  // phase carries no current; nothing to judge
    if (std::fabs(mean) / mean_abs > threshold_) {
      // An open *upper* switch suppresses the positive half-wave, leaving a
      // negative mean; an open lower switch leaves a positive mean.
      latched_ = FaultDiagnosis{p, mean < 0.0};
      return;
    }
  }
  // Window elapsed without detection: restart accumulation.
  seen_ = 0;
  for (int p = 0; p < 3; ++p) {
    sum_[p] = 0.0;
    abs_sum_[p] = 0.0;
  }
}

void OpenSwitchDetector::reset() noexcept {
  seen_ = 0;
  for (int p = 0; p < 3; ++p) {
    sum_[p] = 0.0;
    abs_sum_[p] = 0.0;
  }
  latched_.reset();
}

}  // namespace ev::motor
