#include "ev/motor/foc.h"

#include <cmath>

#include "ev/util/math.h"

namespace ev::motor {

double PiController::update(double error, double dt_s) noexcept {
  integral_ += ki_ * error * dt_s;
  double out = kp_ * error + integral_;
  const double clamped = util::clamp(out, -limit_, limit_);
  // Back-calculation anti-windup: bleed the integrator by the clipped excess.
  integral_ += clamped - out;
  return clamped;
}

FocController::FocController(FocConfig config, PmsmParameters machine) noexcept
    : config_(config),
      machine_(machine),
      speed_pi_(config.speed_kp, config.speed_ki, config.max_phase_current_a),
      id_pi_(config.current_kp, config.current_ki, config.vdc / std::sqrt(3.0)),
      iq_pi_(config.current_kp, config.current_ki, config.vdc / std::sqrt(3.0)) {}

AlphaBeta FocController::update(double speed_ref_rad_s, double speed_rad_s, const Dq& i_meas,
                                double theta_e, double dt_s) noexcept {
  const double iq_ref = speed_pi_.update(speed_ref_rad_s - speed_rad_s, dt_s);
  return update_torque(iq_ref, i_meas, theta_e, speed_rad_s, dt_s);
}

AlphaBeta FocController::update_torque(double iq_ref, const Dq& i_meas, double theta_e,
                                       double speed_rad_s, double dt_s) noexcept {
  last_iq_ref_ = util::clamp(iq_ref, -config_.max_phase_current_a,
                             config_.max_phase_current_a);
  const double omega_e = speed_rad_s * machine_.pole_pairs;
  // Current loops with cross-coupling and back-EMF feed-forward.
  double v_d = id_pi_.update(0.0 - i_meas.d, dt_s) - omega_e * machine_.lq_henry * i_meas.q;
  double v_q = iq_pi_.update(last_iq_ref_ - i_meas.q, dt_s) +
               omega_e * (machine_.ld_henry * i_meas.d + machine_.flux_linkage_wb);
  // Voltage-vector limit at the SVM linear boundary.
  const double vmax = config_.vdc / std::sqrt(3.0);
  const double mag = std::hypot(v_d, v_q);
  if (mag > vmax && mag > 0.0) {
    v_d *= vmax / mag;
    v_q *= vmax / mag;
  }
  return inverse_park(Dq{v_d, v_q}, theta_e);
}

void FocController::reset() noexcept {
  speed_pi_.reset();
  id_pi_.reset();
  iq_pi_.reset();
}

}  // namespace ev::motor
