#include "ev/motor/pmsm.h"

#include "ev/util/math.h"

namespace ev::motor {

void Pmsm::step(const Abc& v, double load_torque_nm, double dt_s) noexcept {
  const Dq v_dq = park(clarke(v), theta_e_);
  const double omega_e = omega_m_ * params_.pole_pairs;

  // Standard PMSM dq equations (motor convention):
  //   Ld di_d/dt = v_d - Rs i_d + omega_e Lq i_q
  //   Lq di_q/dt = v_q - Rs i_q - omega_e (Ld i_d + psi_f)
  const double did =
      (v_dq.d - params_.stator_resistance_ohm * i_d_ + omega_e * params_.lq_henry * i_q_) /
      params_.ld_henry;
  const double diq = (v_dq.q - params_.stator_resistance_ohm * i_q_ -
                      omega_e * (params_.ld_henry * i_d_ + params_.flux_linkage_wb)) /
                     params_.lq_henry;
  i_d_ += did * dt_s;
  i_q_ += diq * dt_s;

  const double te = torque_nm();
  const double domega =
      (te - load_torque_nm - params_.friction_nm_s * omega_m_) / params_.inertia_kg_m2;
  omega_m_ += domega * dt_s;
  theta_e_ = util::wrap_angle(theta_e_ + omega_m_ * params_.pole_pairs * dt_s);
}

Abc Pmsm::currents() const noexcept {
  return inverse_clarke(inverse_park(Dq{i_d_, i_q_}, theta_e_));
}

double Pmsm::torque_nm() const noexcept {
  return 1.5 * params_.pole_pairs *
         (params_.flux_linkage_wb * i_q_ + (params_.ld_henry - params_.lq_henry) * i_d_ * i_q_);
}

}  // namespace ev::motor
