#include "ev/motor/inverter.h"

namespace ev::motor {

void Inverter::set_open_fault(Igbt sw, bool faulty) noexcept {
  open_fault_[static_cast<unsigned>(sw)] = faulty;
}

bool Inverter::has_open_fault(Igbt sw) const noexcept {
  return open_fault_[static_cast<unsigned>(sw)];
}

bool Inverter::any_fault() const noexcept {
  for (bool f : open_fault_)
    if (f) return true;
  return false;
}

void Inverter::isolate_leg_to_midpoint(int phase) noexcept {
  if (phase < 0 || phase > 2) return;
  midpoint_[static_cast<unsigned>(phase)] = true;
}

double Inverter::leg_voltage(bool cmd_high, bool upper_ok, bool lower_ok, bool tied_mid,
                             double current) const noexcept {
  if (tied_mid) return vdc_ / 2.0;
  if (cmd_high) {
    if (upper_ok) return vdc_;
    // Upper switch open: positive phase current (into the motor) commutates
    // to the lower freewheeling diode (0 V); negative current returns
    // through the upper diode (Vdc).
    if (current < 0.0) return vdc_;
    if (current > 0.0) return 0.0;
    return vdc_ / 2.0;  // zero current: leg floats near midpoint
  }
  if (lower_ok) return 0.0;
  // Lower switch open: positive current still freewheels through the lower
  // diode (0 V); negative current is forced through the upper diode (Vdc).
  if (current > 0.0) return 0.0;
  if (current < 0.0) return vdc_;
  return vdc_ / 2.0;
}

Abc Inverter::leg_voltages(const LegStates& cmd, const Abc& i) const noexcept {
  Abc v;
  v.a = leg_voltage(cmd.a, !open_fault_[0], !open_fault_[1], midpoint_[0], i.a);
  v.b = leg_voltage(cmd.b, !open_fault_[2], !open_fault_[3], midpoint_[1], i.b);
  v.c = leg_voltage(cmd.c, !open_fault_[4], !open_fault_[5], midpoint_[2], i.c);
  return v;
}

Abc Inverter::phase_voltages(const LegStates& cmd, const Abc& i) const noexcept {
  const Abc v = leg_voltages(cmd, i);
  const double vn = (v.a + v.b + v.c) / 3.0;
  return Abc{v.a - vn, v.b - vn, v.c - vn};
}

LegStates Inverter::compare_carrier(const Duties& duties, double carrier) noexcept {
  // Center-aligned (triangular) carrier: a leg is high while the carrier
  // distance from the period centre is inside its duty window.
  auto high = [carrier](double duty) {
    // Triangle position: 0 at the period edges, 1 at the centre. The on-time
    // of each leg is centred in the period (7-segment symmetric pattern).
    const double tri = 2.0 * (carrier < 0.5 ? carrier : 1.0 - carrier);
    return tri > 1.0 - duty;
  };
  return LegStates{high(duties.a), high(duties.b), high(duties.c)};
}

}  // namespace ev::motor
