#include "ev/motor/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ev/util/math.h"

namespace ev::motor {

double SvmModulator::max_amplitude(double vdc) noexcept { return vdc / std::sqrt(3.0); }

Duties SvmModulator::modulate(const AlphaBeta& v_ref, double vdc) noexcept {
  AlphaBeta v = v_ref;
  // Amplitude saturation at the linear-region boundary.
  const double mag = std::hypot(v.alpha, v.beta);
  const double vmax = max_amplitude(vdc);
  if (mag > vmax && mag > 0.0) {
    const double k = vmax / mag;
    v.alpha *= k;
    v.beta *= k;
  }
  const Abc ph = inverse_clarke(v);
  // Min-max (symmetric) common-mode injection: centres the active vectors in
  // the carrier period, equivalent to 7-segment SVPWM.
  const double vmax_ph = std::max({ph.a, ph.b, ph.c});
  const double vmin_ph = std::min({ph.a, ph.b, ph.c});
  const double offset = -(vmax_ph + vmin_ph) / 2.0;
  Duties d;
  d.a = util::clamp(0.5 + (ph.a + offset) / vdc, 0.0, 1.0);
  d.b = util::clamp(0.5 + (ph.b + offset) / vdc, 0.0, 1.0);
  d.c = util::clamp(0.5 + (ph.c + offset) / vdc, 0.0, 1.0);
  return d;
}

int SvmModulator::sector(const AlphaBeta& v_ref) noexcept {
  double angle = std::atan2(v_ref.beta, v_ref.alpha);
  if (angle < 0.0) angle += util::kTwoPi;
  return static_cast<int>(angle / (util::kPi / 3.0)) % 6 + 1;
}

FourSwitchModulator::FourSwitchModulator(int faulty_phase) : faulty_phase_(faulty_phase) {
  if (faulty_phase < 0 || faulty_phase > 2)
    throw std::invalid_argument("FourSwitchModulator: phase must be 0, 1, or 2");
}

Duties FourSwitchModulator::modulate(const AlphaBeta& v_ref, double vdc) const noexcept {
  const Abc ph = inverse_clarke(v_ref);
  const double faulty_v = faulty_phase_ == 0 ? ph.a : (faulty_phase_ == 1 ? ph.b : ph.c);
  // Shift all phase references so the faulty phase sits at the dc midpoint;
  // line-to-line voltages (all the motor sees) are unchanged by the shift.
  auto duty_of = [&](double v_phase) {
    return util::clamp(0.5 + (v_phase - faulty_v) / vdc, 0.0, 1.0);
  };
  Duties d;
  d.a = faulty_phase_ == 0 ? 0.5 : duty_of(ph.a);
  d.b = faulty_phase_ == 1 ? 0.5 : duty_of(ph.b);
  d.c = faulty_phase_ == 2 ? 0.5 : duty_of(ph.c);
  return d;
}

}  // namespace ev::motor
