#include "ev/motor/drive.h"

#include <cmath>

#include "ev/util/math.h"

namespace ev::motor {

MotorDrive::MotorDrive(DriveConfig config)
    : config_(config),
      pmsm_(config.machine),
      inverter_(config.foc.vdc),
      controller_(config.foc, config.machine) {}

void MotorDrive::inject_open_fault(Igbt sw) {
  inverter_.set_open_fault(sw, true);
  if (mode_ == DriveMode::kNormal) {
    mode_ = DriveMode::kFaulted;
    fault_time_s_ = time_s_;
  }
}

void MotorDrive::clear_recording() noexcept {
  record_ia_.clear();
  record_vab_.clear();
  record_torque_.clear();
}

void MotorDrive::step(double speed_ref_rad_s, double load_torque_nm) {
  const double dt = period_s();
  const AlphaBeta v_ref =
      controller_.update(speed_ref_rad_s, pmsm_.speed_rad_s(), pmsm_.currents_dq(),
                         pmsm_.electrical_angle(), dt);
  run_period(v_ref, load_torque_nm);
}

void MotorDrive::step_torque(double iq_ref_a, double load_torque_nm) {
  const double dt = period_s();
  const AlphaBeta v_ref =
      controller_.update_torque(iq_ref_a, pmsm_.currents_dq(), pmsm_.electrical_angle(),
                                pmsm_.speed_rad_s(), dt);
  run_period(v_ref, load_torque_nm);
}

void MotorDrive::run_period(const AlphaBeta& v_ref, double load_torque_nm) {
  const Duties duties = b4_ ? b4_->modulate(v_ref, inverter_.vdc())
                            : SvmModulator::modulate(v_ref, inverter_.vdc());
  const int n = config_.substeps_per_period;
  const double dt_sub = period_s() / n;
  for (int k = 0; k < n; ++k) {
    const double carrier = (static_cast<double>(k) + 0.5) / n;
    const Abc i = pmsm_.currents();
    const LegStates states = Inverter::compare_carrier(duties, carrier);
    const Abc v = inverter_.phase_voltages(states, i);
    pmsm_.step(v, load_torque_nm, dt_sub);
    if (recording_) {
      record_ia_.push_back(i.a);
      const Abc legs = inverter_.leg_voltages(states, i);
      record_vab_.push_back(legs.a - legs.b);
    }
  }
  if (recording_) record_torque_.push_back(pmsm_.torque_nm());
  time_s_ += period_s();

  if (config_.fault_tolerant) {
    detector_.sample(pmsm_.currents());
    handle_fault_response();
  }
}

void MotorDrive::handle_fault_response() {
  if (mode_ != DriveMode::kFaulted) return;
  const auto diagnosis = detector_.diagnose();
  if (!diagnosis) return;
  // Reconfigure: isolate the diagnosed leg onto the dc-link midpoint and
  // switch modulation to the four-switch topology; the controller restarts
  // its integrators to recompute the post-fault operating point.
  inverter_.isolate_leg_to_midpoint(diagnosis->phase);
  b4_.emplace(diagnosis->phase);
  controller_.reset();
  mode_ = DriveMode::kReconfigured;
  if (fault_time_s_) detection_latency_s_ = time_s_ - *fault_time_s_;
}

double harmonic_amplitude(std::span<const double> samples, double sample_rate_hz,
                          double fundamental_hz, int harmonic) {
  if (samples.empty() || harmonic < 1) return 0.0;
  // Goertzel algorithm at the exact (possibly non-bin) target frequency.
  const double freq = fundamental_hz * harmonic;
  const double omega = util::kTwoPi * freq / sample_rate_hz;
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double x : samples) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double real = s_prev - s_prev2 * std::cos(omega);
  const double imag = s_prev2 * std::sin(omega);
  const double n = static_cast<double>(samples.size());
  return 2.0 * std::sqrt(real * real + imag * imag) / n;
}

double total_harmonic_distortion(std::span<const double> samples, double sample_rate_hz,
                                 double fundamental_hz, int max_harmonic) {
  const double a1 = harmonic_amplitude(samples, sample_rate_hz, fundamental_hz, 1);
  if (a1 <= 0.0) return 0.0;
  double acc = 0.0;
  for (int h = 2; h <= max_harmonic; ++h) {
    const double ah = harmonic_amplitude(samples, sample_rate_hz, fundamental_hz, h);
    acc += ah * ah;
  }
  return std::sqrt(acc) / a1;
}

}  // namespace ev::motor
