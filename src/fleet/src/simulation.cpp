#include "ev/fleet/simulation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <span>
#include <sstream>
#include <vector>

#include "ev/campaign/worker_pool.h"
#include "ev/config/scenario.h"  // format_double
#include "ev/faults/grid_faults.h"
#include "ev/util/crc.h"
#include "ev/util/rng.h"

namespace ev::fleet {
namespace {

faults::GridFaultKind map_kind(config::GridFaultKindSpec kind) {
  switch (kind) {
    case config::GridFaultKindSpec::kCapacityDrop:
      return faults::GridFaultKind::kCapacityDrop;
    case config::GridFaultKindSpec::kFeederPartition:
      return faults::GridFaultKind::kFeederPartition;
    case config::GridFaultKindSpec::kCommsBlackout:
      return faults::GridFaultKind::kCommsBlackout;
  }
  return faults::GridFaultKind::kCapacityDrop;
}

faults::GridFaultTimeline build_timeline(const config::FleetSpec& spec) {
  std::vector<faults::GridFaultEvent> events;
  events.reserve(spec.grid_faults.size());
  for (const config::GridFaultSpec& f : spec.grid_faults) {
    faults::GridFaultEvent event;
    event.at_s = f.at_s;
    event.kind = map_kind(f.kind);
    event.target = static_cast<std::size_t>(f.target);
    event.value = f.value;
    event.duration_s = f.duration_s;
    events.push_back(event);
  }
  return faults::GridFaultTimeline(std::move(events));
}

/// Fleet master key, derived from the spec seed alone.
security::Key derive_master(std::uint64_t seed) {
  util::Rng rng(seed ^ 0xfeedc0ffee123457ULL);
  security::Key master(32);
  for (std::size_t block = 0; block < 4; ++block) {
    const std::uint64_t word = rng.next_u64();
    std::memcpy(master.data() + block * 8, &word, 8);
  }
  return master;
}

void fold_station_stats(StationStats& into, const StationStats& from) {
  into.arrivals += from.arrivals;
  into.sessions_started += from.sessions_started;
  into.sessions_completed += from.sessions_completed;
  into.sessions_rejected += from.sessions_rejected;
  into.sessions_abandoned += from.sessions_abandoned;
  into.suspend_events += from.suspend_events;
  into.lease_expiries += from.lease_expiries;
  into.reconnects += from.reconnects;
  into.throttle_ticks += from.throttle_ticks;
  into.meter_reports += from.meter_reports;
  into.dead_letters += from.dead_letters;
  into.redelivered += from.redelivered;
  into.energy_delivered_kwh += from.energy_delivered_kwh;
}

void record_metrics(const FleetResult& result, obs::MetricsRegistry& metrics) {
  metrics.add(metrics.counter("fleet.ticks"), result.ticks);
  metrics.add(metrics.counter("fleet.arrivals"), result.stations.arrivals);
  metrics.add(metrics.counter("fleet.sessions_started"),
              result.stations.sessions_started);
  metrics.add(metrics.counter("fleet.sessions_completed"),
              result.stations.sessions_completed);
  metrics.add(metrics.counter("fleet.sessions_rejected"),
              result.stations.sessions_rejected);
  metrics.add(metrics.counter("fleet.sessions_abandoned"),
              result.stations.sessions_abandoned);
  metrics.add(metrics.counter("fleet.messages_delivered"), result.messages_delivered);
  metrics.add(metrics.counter("fleet.messages_retried"), result.messages_retried);
  metrics.add(metrics.counter("fleet.messages_dead_lettered"),
              result.messages_dead_lettered);
  metrics.add(metrics.counter("fleet.lease_expiries"), result.stations.lease_expiries);
  metrics.add(metrics.counter("fleet.reconnects"), result.stations.reconnects);
  metrics.add(metrics.counter("fleet.rebalances"), result.central.rebalances);
  metrics.add(metrics.counter("fleet.shed_suspensions"),
              result.central.shed_suspensions);
  metrics.add(metrics.counter("fleet.authorize_rejected"),
              result.central.authorize_rejected);
  metrics.add(metrics.counter("fleet.grid_violations"), result.grid_violations);
  metrics.set_max(metrics.gauge("fleet.peak_draw_kw"), result.peak_draw_kw);
  metrics.set(metrics.gauge("fleet.min_headroom_kw"), result.min_headroom_kw);
  metrics.set(metrics.gauge("fleet.open_transactions_end"),
              static_cast<double>(result.open_transactions_end));
  const double hours = result.sim_hours > 0.0 ? result.sim_hours : 1.0;
  metrics.set(metrics.gauge("fleet.sessions_per_hour"),
              static_cast<double>(result.stations.sessions_completed) / hours);
  metrics.set(metrics.gauge("fleet.billed_kwh"), result.central.billed_kwh);
  const obs::MetricId latency =
      metrics.histogram("fleet.decision_latency_s", 0.0, 120.0, 48);
  for (const double sample : result.central.decision_latency_s.samples())
    metrics.observe(latency, sample);
}

/// Canonical end-state summary: one line per station plus the central
/// totals. CRC-32 of this text is the run digest the determinism CI job
/// compares across --jobs values.
std::uint32_t end_state_digest(const std::vector<ChargePoint>& stations,
                               const CentralSystem& central,
                               const FleetResult& result) {
  std::ostringstream out;
  for (const ChargePoint& cp : stations) {
    const StationStats& s = cp.stats();
    out << cp.index() << ' ' << to_string(cp.state()) << ' '
        << config::format_double(cp.draw_a()) << ' '
        << config::format_double(s.energy_delivered_kwh) << ' ' << s.arrivals
        << ' ' << s.sessions_completed << ' ' << s.dead_letters << ' '
        << cp.retry_queue().delivered() << '\n';
  }
  out << "central " << central.stats().stops << ' '
      << config::format_double(central.stats().billed_kwh) << ' '
      << result.grid_violations << ' '
      << config::format_double(result.peak_draw_kw) << '\n';
  const std::string text = out.str();
  return util::crc32_ieee(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace

FleetResult run_fleet(const config::FleetSpec& spec, int jobs,
                      obs::MetricsRegistry* metrics) {
  spec.validate();

  const auto n = static_cast<std::uint32_t>(spec.stations);
  const faults::GridFaultTimeline timeline = build_timeline(spec);
  const security::Key master = derive_master(spec.seed);

  StationConfig station_config;
  station_config.max_current_a = spec.station_max_current_a;
  station_config.min_current_a = spec.station_min_current_a;
  station_config.safe_current_a = spec.station_safe_current_a;
  station_config.voltage_v = spec.station_voltage_v;
  station_config.heartbeat_period_s = spec.heartbeat_period_s;
  station_config.lease_s = spec.heartbeat_lease_s;
  station_config.arrival_rate_per_h = spec.arrival_rate_per_station_per_h;
  station_config.energy_min_kwh = spec.session_energy_min_kwh;
  station_config.energy_max_kwh = spec.session_energy_max_kwh;
  station_config.meter_period_s = spec.meter_period_s;
  station_config.loss_probability = spec.msg_loss_probability;
  station_config.retry.max_attempts =
      static_cast<std::uint32_t>(spec.retry_max_attempts);
  station_config.retry.timeout_s = spec.retry_timeout_s;
  station_config.retry.backoff_base_s = spec.retry_backoff_base_s;
  station_config.retry.backoff_cap_s = spec.retry_backoff_cap_s;
  station_config.retry.jitter = spec.retry_jitter;

  CentralConfig central_config;
  central_config.station_count = n;
  central_config.voltage_v = spec.station_voltage_v;
  central_config.max_current_a = spec.station_max_current_a;
  central_config.min_current_a = spec.station_min_current_a;
  central_config.safe_current_a = spec.station_safe_current_a;
  central_config.lease_s = spec.heartbeat_lease_s;
  central_config.capacity_kw = spec.grid_capacity_kw;
  CentralSystem central(central_config, master);

  std::vector<ChargePoint> stations;
  stations.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    security::Key credential = station_credential(master, i);
    if (i < spec.rogue_stations) credential[0] ^= 0x5A;  // corrupted provisioning
    stations.emplace_back(i, station_config, std::move(credential),
                          spec.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
  }

  FleetResult result;
  result.name = spec.name;
  result.station_count = spec.stations;
  result.seed = spec.seed;
  result.sim_hours = spec.sim_hours;
  result.ticks = static_cast<std::uint64_t>(
      std::llround(spec.sim_hours * 3600.0 / spec.tick_s));
  if (result.ticks == 0) result.ticks = 1;
  result.min_headroom_kw = spec.grid_capacity_kw;

  campaign::WorkerPool pool(jobs);
  std::vector<std::vector<Message>> outboxes(n);
  std::vector<bool> reachable(n, true);
  const int count = static_cast<int>(n);
  double next_rebalance_s = 0.0;
  double prev_t = 0.0;
  double capacity_kw = spec.grid_capacity_kw;

  for (std::uint64_t tick = 0; tick < result.ticks; ++tick) {
    const double t = static_cast<double>(tick) * spec.tick_s;

    // (1) Grid state for this tick, straight off the immutable timeline.
    capacity_kw = spec.grid_capacity_kw * timeline.capacity_scale(t);
    bool island = false;
    for (std::uint64_t feeder = 0; feeder < spec.feeders; ++feeder)
      island = island || timeline.feeder_partitioned(feeder, t);
    for (std::uint32_t i = 0; i < n; ++i)
      reachable[i] = !timeline.station_blacked_out(i, t) &&
                     !timeline.feeder_partitioned(i % spec.feeders, t);

    // (2) Rebalance on cadence — or immediately when the grid changed, so a
    // capacity drop is answered within one tick, not one period.
    if (tick == 0 || t >= next_rebalance_s || timeline.changed_between(prev_t, t)) {
      const std::vector<double> grants =
          central.rebalance(t, capacity_kw, reachable, island);
      for (std::uint32_t i = 0; i < n; ++i)
        if (grants[i] >= 0.0 && reachable[i]) stations[i].set_allocated(grants[i], t);
      next_rebalance_s = t + spec.rebalance_period_s;
    }
    prev_t = t;

    // (3) Parallel station advance: each worker writes its own outbox slot
    // and draws its own RNG only, so handout order cannot leak into state.
    pool.run(count, [&](int i) {
      const auto idx = static_cast<std::uint32_t>(i);
      outboxes[idx].clear();
      stations[idx].advance(t, spec.tick_s, reachable[idx], outboxes[idx]);
    });

    // (4) Serial fold in station-index order erases scheduling order: the
    // central system sees the same message sequence for any --jobs value.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (const Message& msg : outboxes[i]) {
        const Reply reply = central.process(msg, t);
        stations[i].deliver(reply, t);
      }
    }

    // (5) Grid-safety invariant and per-tick observables.
    double draw_a = 0.0;
    std::uint32_t throttled = 0;
    for (const ChargePoint& cp : stations) {
      draw_a += cp.draw_a();
      if (cp.throttled()) ++throttled;
    }
    const double draw_kw = draw_a * spec.station_voltage_v / 1000.0;
    if (draw_kw > capacity_kw + 1e-6) ++result.grid_violations;
    result.peak_draw_kw = std::max(result.peak_draw_kw, draw_kw);
    result.min_headroom_kw = std::min(result.min_headroom_kw, capacity_kw - draw_kw);
    result.throttled_peak = std::max(result.throttled_peak, throttled);
    ++result.mode_ticks[static_cast<std::size_t>(central.mode())];
  }

  for (const ChargePoint& cp : stations) {
    fold_station_stats(result.stations, cp.stats());
    result.messages_enqueued += cp.retry_queue().enqueued();
    result.messages_attempts += cp.retry_queue().attempts();
    result.messages_delivered += cp.retry_queue().delivered();
    result.messages_retried += cp.retry_queue().retries();
    result.messages_dead_lettered += cp.retry_queue().dead_letters();
    result.retry_pending_end += cp.retry_queue().pending();
    result.journal_pending_end += cp.journal_size();
  }
  result.final_mode = central.mode();
  result.final_capacity_kw = capacity_kw;
  result.open_transactions_end = central.open_transactions();
  result.central = central.stats();
  result.digest = end_state_digest(stations, central, result);

  if (metrics != nullptr) record_metrics(result, *metrics);
  return result;
}

namespace {

void write_double(std::ostream& out, double value) {
  out << config::format_double(value);
}

}  // namespace

void write_fleet_json(const FleetResult& result, std::ostream& out) {
  char digest[16];
  std::snprintf(digest, sizeof digest, "%08x", result.digest);
  out << "{\"fleet\":\"" << result.name << "\",\"stations\":" << result.station_count
      << ",\"seed\":" << result.seed << ",\"ticks\":" << result.ticks
      << ",\"sim_hours\":";
  write_double(out, result.sim_hours);
  out << ",\"final_mode\":\"" << to_string(result.final_mode) << "\",\"digest\":\""
      << digest << "\",";

  out << "\"grid\":{\"violations\":" << result.grid_violations << ",\"peak_draw_kw\":";
  write_double(out, result.peak_draw_kw);
  out << ",\"min_headroom_kw\":";
  write_double(out, result.min_headroom_kw);
  out << ",\"final_capacity_kw\":";
  write_double(out, result.final_capacity_kw);
  out << ",\"mode_ticks\":{\"normal\":" << result.mode_ticks[0]
      << ",\"constrained\":" << result.mode_ticks[1]
      << ",\"shed_load\":" << result.mode_ticks[2]
      << ",\"island\":" << result.mode_ticks[3] << "}},";

  const StationStats& s = result.stations;
  out << "\"sessions\":{\"arrivals\":" << s.arrivals
      << ",\"started\":" << s.sessions_started
      << ",\"completed\":" << s.sessions_completed
      << ",\"rejected\":" << s.sessions_rejected
      << ",\"abandoned\":" << s.sessions_abandoned
      << ",\"open_at_end\":" << result.open_transactions_end
      << ",\"energy_delivered_kwh\":";
  write_double(out, s.energy_delivered_kwh);
  out << ",\"billed_kwh\":";
  write_double(out, result.central.billed_kwh);
  out << "},";

  const util::SampleSeries& lat = result.central.decision_latency_s;
  out << "\"control\":{\"enqueued\":" << result.messages_enqueued
      << ",\"attempts\":" << result.messages_attempts
      << ",\"delivered\":" << result.messages_delivered
      << ",\"retries\":" << result.messages_retried
      << ",\"dead_letters\":" << result.messages_dead_lettered
      << ",\"redelivered\":" << s.redelivered
      << ",\"retry_pending_end\":" << result.retry_pending_end
      << ",\"journal_pending_end\":" << result.journal_pending_end
      << ",\"latency_s\":{\"count\":" << lat.count() << ",\"mean\":";
  write_double(out, lat.mean());
  out << ",\"p50\":";
  write_double(out, lat.percentile(50.0));
  out << ",\"p95\":";
  write_double(out, lat.percentile(95.0));
  out << ",\"p99\":";
  write_double(out, lat.percentile(99.0));
  out << ",\"max\":";
  write_double(out, lat.max());
  out << "}},";

  out << "\"liveness\":{\"lease_expiries\":" << s.lease_expiries
      << ",\"reconnects\":" << s.reconnects
      << ",\"throttle_ticks\":" << s.throttle_ticks
      << ",\"throttled_peak\":" << result.throttled_peak
      << ",\"suspend_events\":" << s.suspend_events
      << ",\"stale_reservations\":" << result.central.stale_reservations
      << ",\"shed_suspensions\":" << result.central.shed_suspensions
      << ",\"rebalances\":" << result.central.rebalances << "},";

  out << "\"security\":{\"challenges\":" << result.central.authorize_challenges
      << ",\"accepted\":" << result.central.authorize_accepted
      << ",\"rejected\":" << result.central.authorize_rejected << "}}\n";
}

std::string fleet_report_json(const FleetResult& result) {
  std::ostringstream out;
  write_fleet_json(result, out);
  return out.str();
}

}  // namespace ev::fleet
