#include "ev/fleet/messages.h"

namespace ev::fleet {

std::string to_string(MessageType type) {
  switch (type) {
    case MessageType::kBootNotification: return "BootNotification";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kAuthorize: return "Authorize";
    case MessageType::kStartTransaction: return "StartTransaction";
    case MessageType::kMeterValues: return "MeterValues";
    case MessageType::kStopTransaction: return "StopTransaction";
  }
  return "unknown";
}

}  // namespace ev::fleet
