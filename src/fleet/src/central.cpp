#include "ev/fleet/central.h"

#include <algorithm>
#include <cstring>

#include "ev/security/sha256.h"

namespace ev::fleet {

namespace {

/// Challenge for (station, session): the first 16 bytes of
/// SHA-256(master || "chal" || station || session). A pure function of the
/// tuple — no central RNG — so challenge bytes are identical regardless of
/// message arrival order or worker count.
std::array<std::uint8_t, 16> derive_challenge(std::span<const std::uint8_t> master,
                                              std::uint32_t station,
                                              std::uint32_t session) {
  security::Sha256 hasher;
  hasher.update(master);
  static constexpr std::uint8_t kLabel[4] = {'c', 'h', 'a', 'l'};
  hasher.update(kLabel);
  std::uint8_t ids[8];
  std::memcpy(ids, &station, 4);
  std::memcpy(ids + 4, &session, 4);
  hasher.update(ids);
  const security::Digest digest = hasher.finish();
  std::array<std::uint8_t, 16> challenge{};
  std::copy_n(digest.begin(), challenge.size(), challenge.begin());
  return challenge;
}

/// The tag a genuine station produces for a challenge (same layout as
/// ChargePoint::deliver builds).
security::Digest expected_tag(std::span<const std::uint8_t> credential,
                              const std::array<std::uint8_t, 16>& challenge,
                              std::uint32_t station, std::uint32_t session) {
  std::uint8_t buf[24];
  std::memcpy(buf, challenge.data(), 16);
  std::memcpy(buf + 16, &station, 4);
  std::memcpy(buf + 20, &session, 4);
  return security::hmac_sha256(credential, buf);
}

}  // namespace

std::string to_string(GridMode mode) {
  switch (mode) {
    case GridMode::kNormal: return "normal";
    case GridMode::kConstrained: return "constrained";
    case GridMode::kShedLoad: return "shed_load";
    case GridMode::kIsland: return "island";
  }
  return "unknown";
}

security::Key station_credential(std::span<const std::uint8_t> master,
                                 std::uint32_t station) {
  std::uint8_t context[8] = {'s', 't', 'n', ':'};
  std::memcpy(context + 4, &station, 4);
  return security::derive_key(master, context);
}

CentralSystem::CentralSystem(const CentralConfig& config, security::Key master)
    : config_(config), master_(std::move(master)), accounts_(config.station_count) {
  last_capacity_kw_ = config_.capacity_kw;
}

bool CentralSystem::stale(const Account& acc, double now_s) const noexcept {
  return !acc.heard || now_s - acc.last_heard_s >= config_.lease_s;
}

double CentralSystem::reserve_a(const Account& acc, double now_s) const noexcept {
  if (acc.tx_session == 0) return 0.0;
  if (stale(acc, now_s)) return config_.safe_current_a;
  return acc.allocated_a;
}

double CentralSystem::committed_a(double now_s) const noexcept {
  double total = 0.0;
  for (const Account& acc : accounts_) total += reserve_a(acc, now_s);
  return total;
}

double CentralSystem::station_reserve_a(std::uint32_t station, double now_s) const {
  return reserve_a(accounts_.at(station), now_s);
}

std::uint32_t CentralSystem::open_transactions() const noexcept {
  std::uint32_t open = 0;
  for (const Account& acc : accounts_)
    if (acc.tx_session != 0) ++open;
  return open;
}

Reply CentralSystem::process(const Message& msg, double now_s) {
  Account& acc = accounts_.at(msg.station);
  // Mirror of the station's reconnect rule: while it was lease-stale only
  // the ThrottleAlive safe minimum was reserved for it, so its pre-silence
  // grant is void until the next rebalance hands out a fresh one.
  if (acc.tx_session != 0 && stale(acc, now_s))
    acc.allocated_a = std::min(acc.allocated_a, config_.safe_current_a);
  acc.heard = true;
  acc.last_heard_s = now_s;
  stats_.decision_latency_s.add(now_s - msg.created_s);

  Reply reply;
  reply.in_reply_to = msg.type;
  reply.session = msg.session;
  switch (msg.type) {
    case MessageType::kBootNotification:
      ++stats_.boots;
      acc.booted = true;
      reply.status = ReplyStatus::kAccepted;
      break;
    case MessageType::kHeartbeat:
      ++stats_.heartbeats;
      reply.status = ReplyStatus::kAccepted;
      break;
    case MessageType::kAuthorize:
      reply = handle_authorize(msg, acc);
      break;
    case MessageType::kStartTransaction:
      reply = handle_start(msg, acc, now_s);
      break;
    case MessageType::kMeterValues:
      if (acc.tx_session == msg.session && msg.session != 0) {
        ++stats_.meter_updates;
        // Cumulative meters: the maximum seen is the session total so far,
        // no matter how often a reading is redelivered.
        acc.tx_meter_kwh = std::max(acc.tx_meter_kwh, msg.meter_kwh);
      }
      reply.status = ReplyStatus::kAccepted;
      break;
    case MessageType::kStopTransaction:
      reply = handle_stop(msg, acc);
      break;
  }
  return reply;
}

Reply CentralSystem::handle_authorize(const Message& msg, Account& acc) {
  Reply reply;
  reply.in_reply_to = MessageType::kAuthorize;
  reply.session = msg.session;
  if (msg.auth_phase == 0) {
    ++stats_.authorize_challenges;
    const auto challenge = derive_challenge(master_, msg.station, msg.session);
    const security::Key credential = station_credential(master_, msg.station);
    acc.challenge_session = msg.session;
    acc.expected_tag = expected_tag(credential, challenge, msg.station, msg.session);
    reply.status = ReplyStatus::kChallenge;
    reply.challenge = challenge;
    return reply;
  }
  if (acc.challenge_session == msg.session && msg.session != 0 &&
      security::constant_time_equal(msg.tag, acc.expected_tag)) {
    ++stats_.authorize_accepted;
    acc.authorized_session = msg.session;
    acc.challenge_session = 0;
    reply.status = ReplyStatus::kAccepted;
  } else {
    ++stats_.authorize_rejected;
    acc.challenge_session = 0;
    reply.status = ReplyStatus::kRejected;
  }
  return reply;
}

Reply CentralSystem::handle_start(const Message& msg, Account& acc, double now_s) {
  Reply reply;
  reply.in_reply_to = MessageType::kStartTransaction;
  reply.session = msg.session;
  if (acc.authorized_session != msg.session || msg.session == 0 ||
      acc.tx_session != 0) {
    ++stats_.starts_rejected;
    reply.status = ReplyStatus::kRejected;
    return reply;
  }
  acc.authorized_session = 0;
  acc.tx_session = msg.session;
  acc.tx_start_s = now_s;
  acc.tx_meter_kwh = 0.0;
  // Initial grant from the headroom left by every other reservation at the
  // last-known capacity; below the usable minimum the session starts
  // suspended and waits for the next rebalance (never rejected for power).
  const double capacity_a = last_capacity_kw_ * 1000.0 / config_.voltage_v;
  const double headroom = capacity_a - committed_a(now_s);
  if (headroom >= config_.min_current_a) {
    acc.allocated_a = std::min(config_.max_current_a, headroom);
    ++stats_.starts_accepted;
  } else {
    acc.allocated_a = 0.0;
    ++stats_.starts_suspended;
  }
  reply.status = ReplyStatus::kAccepted;
  reply.allocated_a = acc.allocated_a;
  return reply;
}

Reply CentralSystem::handle_stop(const Message& msg, Account& acc) {
  Reply reply;
  reply.in_reply_to = MessageType::kStopTransaction;
  reply.session = msg.session;
  reply.status = ReplyStatus::kAccepted;
  if (acc.tx_session == msg.session && msg.session != 0) {
    ++stats_.stops;
    stats_.billed_kwh += std::max(acc.tx_meter_kwh, msg.meter_kwh);
    acc.tx_session = 0;
    acc.tx_meter_kwh = 0.0;
    acc.allocated_a = 0.0;
  } else {
    // Redelivered after an earlier copy was billed, or for a session the
    // central never saw start: acknowledge, never double-bill.
    ++stats_.stop_duplicates;
  }
  return reply;
}

std::vector<double> CentralSystem::rebalance(double now_s, double capacity_kw,
                                             const std::vector<bool>& reachable,
                                             bool island_active) {
  ++stats_.rebalances;
  last_capacity_kw_ = capacity_kw;
  const double capacity_a = capacity_kw * 1000.0 / config_.voltage_v;

  std::vector<double> grants(accounts_.size(), -1.0);
  double reserved = 0.0;
  std::vector<std::uint32_t> active;  // reachable, fresh, open transaction
  for (std::uint32_t i = 0; i < accounts_.size(); ++i) {
    const Account& acc = accounts_[i];
    if (acc.tx_session == 0) {
      if (i < reachable.size() && reachable[i]) grants[i] = 0.0;
      continue;
    }
    const bool up = i < reachable.size() && reachable[i];
    if (!up || stale(acc, now_s)) {
      if (stale(acc, now_s)) ++stats_.stale_reservations;
      reserved += reserve_a(acc, now_s);
    } else {
      active.push_back(i);
    }
  }

  const double budget = std::max(0.0, capacity_a - reserved);
  bool constrained = false;
  bool shed = false;
  if (!active.empty()) {
    const double share = budget / static_cast<double>(active.size());
    if (share >= config_.max_current_a) {
      for (std::uint32_t i : active) {
        accounts_[i].allocated_a = config_.max_current_a;
        grants[i] = config_.max_current_a;
      }
    } else if (share >= config_.min_current_a) {
      constrained = true;
      for (std::uint32_t i : active) {
        accounts_[i].allocated_a = share;
        grants[i] = share;
      }
    } else {
      // Shed load: the oldest sessions keep power (first-come-first-served,
      // station index breaks ties deterministically); the rest are
      // suspended at 0 A but their transactions stay open — a capacity drop
      // never strands an authorized session.
      shed = true;
      std::sort(active.begin(), active.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (accounts_[a].tx_start_s != accounts_[b].tx_start_s)
                    return accounts_[a].tx_start_s < accounts_[b].tx_start_s;
                  return a < b;
                });
      const auto keep = std::min<std::size_t>(
          active.size(),
          static_cast<std::size_t>(budget / config_.min_current_a));
      const double keep_share =
          keep == 0 ? 0.0
                    : std::min(config_.max_current_a,
                               budget / static_cast<double>(keep));
      for (std::size_t k = 0; k < active.size(); ++k) {
        const std::uint32_t i = active[k];
        const double grant = k < keep ? keep_share : 0.0;
        if (grant <= 0.0) ++stats_.shed_suspensions;
        accounts_[i].allocated_a = grant;
        grants[i] = grant;
      }
    }
  }

  if (island_active)
    mode_ = GridMode::kIsland;
  else if (shed)
    mode_ = GridMode::kShedLoad;
  else if (constrained)
    mode_ = GridMode::kConstrained;
  else
    mode_ = GridMode::kNormal;
  return grants;
}

}  // namespace ev::fleet
