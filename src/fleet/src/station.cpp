#include "ev/fleet/station.h"

#include <algorithm>
#include <cstring>

namespace ev::fleet {

std::string to_string(StationState state) {
  switch (state) {
    case StationState::kOffline: return "offline";
    case StationState::kAvailable: return "available";
    case StationState::kAuthorizing: return "authorizing";
    case StationState::kStarting: return "starting";
    case StationState::kCharging: return "charging";
    case StationState::kSuspended: return "suspended";
  }
  return "unknown";
}

ChargePoint::ChargePoint(std::uint32_t index, const StationConfig& config,
                         security::Key credential, std::uint64_t seed)
    : index_(index),
      config_(config),
      credential_(std::move(credential)),
      rng_(seed),
      retry_(config.retry) {
  // Stagger boots and heartbeats across the fleet so the central system is
  // not hit by a synchronized thundering herd on every period boundary.
  boot_at_s_ = rng_.uniform(0.0, config_.heartbeat_period_s);
  hb_phase_s_ = rng_.uniform(0.0, config_.heartbeat_period_s);
}

void ChargePoint::advance(double now_s, double dt_s, bool channel_up,
                          std::vector<Message>& outbox) {
  if (!boot_enqueued_ && now_s >= boot_at_s_) {
    boot_enqueued_ = true;
    enqueue(MessageType::kBootNotification, now_s, now_s);
  }

  // ThrottleAlive: a full lease without hearing the central system drops an
  // active session to the safe minimum, autonomously.
  if (has_contact_ && !throttled_ && now_s - last_contact_s_ >= config_.lease_s) {
    throttled_ = true;
    ++stats_.lease_expiries;
  }

  if (state_ == StationState::kAvailable) {
    if (!arrival_armed_) {
      arrival_armed_ = true;
      next_arrival_s_ = now_s + rng_.exponential(config_.arrival_rate_per_h / 3600.0);
    }
    if (now_s >= next_arrival_s_) {
      arrival_armed_ = false;
      ++stats_.arrivals;
      session_ = next_session_++;
      need_kwh_ = rng_.uniform(config_.energy_min_kwh, config_.energy_max_kwh);
      session_kwh_ = 0.0;
      auth_created_s_ = now_s;
      state_ = StationState::kAuthorizing;
      enqueue(MessageType::kAuthorize, now_s, now_s);
    }
  }

  draw_a_ = compute_draw();
  if (session_ != 0 &&
      (state_ == StationState::kCharging || state_ == StationState::kSuspended)) {
    if (throttled_) ++stats_.throttle_ticks;
    const double kwh = draw_a_ * config_.voltage_v * dt_s / 3.6e6;
    session_kwh_ += kwh;
    stats_.energy_delivered_kwh += kwh;
    if (session_kwh_ >= need_kwh_) {
      ++stats_.sessions_completed;
      enqueue(MessageType::kStopTransaction, now_s, now_s);
      end_session_locally(now_s);
      draw_a_ = 0.0;
    } else if (now_s >= next_meter_s_) {
      ++stats_.meter_reports;
      enqueue(MessageType::kMeterValues, now_s, now_s);
      next_meter_s_ += config_.meter_period_s;
    }
  }

  if (state_ != StationState::kOffline && !heartbeat_pending_ &&
      now_s >= next_heartbeat_s_) {
    heartbeat_pending_ = true;
    enqueue(MessageType::kHeartbeat, now_s, now_s);
    next_heartbeat_s_ = now_s + config_.heartbeat_period_s;
  }

  bool reboot = false;
  retry_.pump(
      now_s, rng_,
      [&](const Message& msg) {
        if (!channel_up) return false;
        if (config_.loss_probability > 0.0 && rng_.bernoulli(config_.loss_probability))
          return false;
        outbox.push_back(msg);
        return true;
      },
      [&](const Message& msg) {
        ++stats_.dead_letters;
        switch (msg.type) {
          case MessageType::kMeterValues:
          case MessageType::kStopTransaction:
            // Accounting must converge: journal and redeliver on reconnect.
            journal_.push_back(msg);
            break;
          case MessageType::kAuthorize:
          case MessageType::kStartTransaction:
            if (msg.session == session_) {
              ++stats_.sessions_abandoned;
              end_session_locally(now_s);
            }
            break;
          case MessageType::kHeartbeat:
            heartbeat_pending_ = false;
            break;
          case MessageType::kBootNotification:
            reboot = true;
            break;
        }
      });
  if (reboot && state_ == StationState::kOffline) {
    // Budget spent while unreachable: cool down one period, then re-boot
    // with a fresh message (and a fresh attempt budget).
    boot_enqueued_ = false;
    boot_at_s_ = now_s + config_.heartbeat_period_s;
  }
}

void ChargePoint::deliver(const Reply& reply, double now_s) {
  has_contact_ = true;
  last_contact_s_ = now_s;
  if (throttled_) {
    throttled_ = false;
    ++stats_.reconnects;
    // The central system has been reserving only the safe minimum for us
    // while we were silent (and may have granted the rest away), so the old
    // allocation is void: stay at the safe level until a fresh grant.
    allocated_a_ = std::min(allocated_a_, config_.safe_current_a);
  }
  if (!journal_.empty()) {
    // Reconnected: push the dead-lettered accounting backlog through the
    // retry queue again, original timestamps intact.
    for (const Message& msg : journal_) {
      retry_.enqueue(msg, now_s);
      ++stats_.redelivered;
    }
    journal_.clear();
  }

  switch (reply.in_reply_to) {
    case MessageType::kBootNotification:
      if (state_ == StationState::kOffline && reply.status == ReplyStatus::kAccepted) {
        state_ = StationState::kAvailable;
        next_heartbeat_s_ = now_s + hb_phase_s_;
      }
      break;
    case MessageType::kHeartbeat:
      heartbeat_pending_ = false;
      break;
    case MessageType::kAuthorize: {
      if (reply.session != session_ || state_ != StationState::kAuthorizing) break;
      if (reply.status == ReplyStatus::kChallenge) {
        // Answer: HMAC-SHA-256 over challenge || station || session under
        // the provisioned credential. The original created_s rides along so
        // the central's authorize latency spans the whole round trip.
        std::uint8_t buf[24];
        std::memcpy(buf, reply.challenge.data(), 16);
        std::memcpy(buf + 16, &index_, 4);
        std::memcpy(buf + 20, &session_, 4);
        const security::Digest tag = security::hmac_sha256(credential_, buf);
        Message answer;
        answer.type = MessageType::kAuthorize;
        answer.station = index_;
        answer.session = session_;
        answer.auth_phase = 1;
        answer.created_s = auth_created_s_;
        std::copy(tag.begin(), tag.end(), answer.tag.begin());
        retry_.enqueue(answer, now_s);
      } else if (reply.status == ReplyStatus::kAccepted) {
        state_ = StationState::kStarting;
        enqueue(MessageType::kStartTransaction, now_s, now_s);
      } else {
        ++stats_.sessions_rejected;
        end_session_locally(now_s);
      }
      break;
    }
    case MessageType::kStartTransaction:
      if (reply.session != session_ || state_ != StationState::kStarting) break;
      if (reply.status == ReplyStatus::kAccepted) {
        ++stats_.sessions_started;
        next_meter_s_ = now_s + config_.meter_period_s;
        allocated_a_ = reply.allocated_a >= 0.0
                           ? std::min(reply.allocated_a, config_.max_current_a)
                           : config_.safe_current_a;
        if (allocated_a_ > 0.0) {
          state_ = StationState::kCharging;
        } else {
          state_ = StationState::kSuspended;
          ++stats_.suspend_events;
        }
      } else {
        ++stats_.sessions_rejected;
        end_session_locally(now_s);
      }
      break;
    case MessageType::kMeterValues:
    case MessageType::kStopTransaction:
      break;  // Pure acks; accounting lives on the central side.
  }
}

void ChargePoint::set_allocated(double current_a, double /*now_s*/) {
  allocated_a_ = std::clamp(current_a, 0.0, config_.max_current_a);
  if (session_ == 0) return;
  if (state_ == StationState::kCharging && allocated_a_ <= 0.0) {
    state_ = StationState::kSuspended;
    ++stats_.suspend_events;
  } else if (state_ == StationState::kSuspended && allocated_a_ > 0.0) {
    state_ = StationState::kCharging;
  }
}

void ChargePoint::enqueue(MessageType type, double now_s, double created_s) {
  Message msg;
  msg.type = type;
  msg.station = index_;
  msg.session = session_;
  msg.created_s = created_s;
  msg.meter_kwh = session_kwh_;
  retry_.enqueue(msg, now_s);
}

void ChargePoint::end_session_locally(double /*now_s*/) {
  session_ = 0;
  need_kwh_ = 0.0;
  session_kwh_ = 0.0;
  allocated_a_ = 0.0;
  arrival_armed_ = false;
  if (state_ != StationState::kOffline) state_ = StationState::kAvailable;
}

double ChargePoint::compute_draw() const noexcept {
  if (session_ == 0 || state_ != StationState::kCharging) return 0.0;
  if (throttled_) return std::min(config_.safe_current_a, config_.max_current_a);
  return std::clamp(allocated_a_, 0.0, config_.max_current_a);
}

}  // namespace ev::fleet
