/// \file messages.h
/// Wire vocabulary of the fleet charging backend, modeled on the OCPP 1.6J
/// charge-point -> central-system call set: BootNotification, Heartbeat,
/// Authorize (two-phase challenge-response over the security layer),
/// StartTransaction, MeterValues, StopTransaction. Messages are plain data;
/// the retry queue owns delivery semantics and the central system owns the
/// replies.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ev::fleet {

/// Charge-point initiated calls (the OCPP 1.6 core-profile subset the
/// simulation reproduces).
enum class MessageType : std::uint8_t {
  kBootNotification,
  kHeartbeat,
  kAuthorize,
  kStartTransaction,
  kMeterValues,
  kStopTransaction,
};

[[nodiscard]] std::string to_string(MessageType type);

/// One charge-point -> central call. `created_s` is the *first* enqueue
/// time and survives retries and dead-letter redelivery, so the central
/// system's control-decision latency includes every backoff the message
/// sat through. MeterValues/StopTransaction carry the *cumulative* session
/// energy, which makes redelivery idempotent (the central bills the
/// maximum it has seen, never a sum of duplicates).
struct Message {
  MessageType type = MessageType::kHeartbeat;
  std::uint32_t station = 0;
  std::uint32_t session = 0;   ///< Station-local session ordinal (0 = none).
  std::uint8_t auth_phase = 0;  ///< Authorize: 0 = request, 1 = challenge answer.
  double created_s = 0.0;
  double meter_kwh = 0.0;      ///< Cumulative session energy (Meter/Stop).
  std::array<std::uint8_t, 32> tag{};  ///< HMAC-SHA-256 (Authorize phase 1).
};

/// Central decision attached to a reply.
enum class ReplyStatus : std::uint8_t { kAccepted, kRejected, kChallenge };

/// Central -> charge-point reply, returned synchronously for every call
/// that reaches the central system (the call leg carries the loss/retry
/// model; replies to a delivered call are not lost separately).
struct Reply {
  MessageType in_reply_to = MessageType::kHeartbeat;
  ReplyStatus status = ReplyStatus::kAccepted;
  std::uint32_t session = 0;
  std::array<std::uint8_t, 16> challenge{};  ///< kChallenge payload.
  double allocated_a = -1.0;  ///< Start ack: initial current grant (< 0 = none).
};

}  // namespace ev::fleet
