/// \file retry.h
/// Deterministic retry/timeout/exponential-backoff queue for control
/// messages. Every send attempt either reaches the central system, re-arms
/// with `timeout + min(cap, base * 2^(attempt-1)) * (1 + jitter*u)` where u
/// is drawn from the *owning station's* seeded RNG (so two same-seed runs
/// back off at bit-identical times), or — once the bounded attempt budget
/// is exhausted — lands in the caller's dead-letter handler. The queue
/// never drops a message silently: delivered + dead-lettered == enqueued,
/// always.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ev/fleet/messages.h"
#include "ev/util/rng.h"

namespace ev::fleet {

/// Bounded-budget backoff policy (all stations of a fleet share one).
struct RetryPolicy {
  std::uint32_t max_attempts = 5;  ///< Attempt budget; >= 1.
  double timeout_s = 2.0;          ///< Loss-detection delay before any retry.
  double backoff_base_s = 2.0;     ///< First backoff; doubles per attempt.
  double backoff_cap_s = 60.0;     ///< Exponential growth saturates here.
  double jitter = 0.1;             ///< Fractional seeded jitter in [0, 1].
};

/// Per-station outgoing message queue with retry bookkeeping.
class RetryQueue {
 public:
  explicit RetryQueue(const RetryPolicy& policy) : policy_(policy) {}

  /// Queues \p msg, first attempt due immediately.
  void enqueue(const Message& msg, double now_s) {
    entries_.push_back(Entry{msg, 0, now_s});
    ++enqueued_;
  }

  /// The retry delay after \p attempt failed attempts (>= 1). Consumes
  /// exactly one RNG draw, so the stream position is a pure function of the
  /// failure count.
  [[nodiscard]] double backoff_delay_s(std::uint32_t attempt, util::Rng& rng) const {
    const double exponent = static_cast<double>(attempt >= 1 ? attempt - 1 : 0);
    const double backoff =
        std::min(policy_.backoff_cap_s, policy_.backoff_base_s * std::exp2(exponent));
    return policy_.timeout_s + backoff * (1.0 + policy_.jitter * rng.uniform());
  }

  /// Attempts every due entry in enqueue order. \p try_send(msg) returns
  /// true when the message reached the central system; on failure the entry
  /// re-arms with backoff, or — when the attempt budget is spent — is
  /// handed to \p on_dead_letter(msg) and removed. Entries that are not due
  /// yet keep their position.
  template <typename SendFn, typename DeadFn>
  void pump(double now_s, util::Rng& rng, SendFn&& try_send, DeadFn&& on_dead_letter) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      Entry entry = entries_[i];
      bool remove = false;
      if (entry.due_s <= now_s) {
        ++entry.attempts;
        ++attempts_;
        if (try_send(entry.msg)) {
          ++delivered_;
          remove = true;
        } else if (entry.attempts >= policy_.max_attempts) {
          ++dead_letters_;
          on_dead_letter(entry.msg);
          remove = true;
        } else {
          ++retries_;
          entry.due_s = now_s + backoff_delay_s(entry.attempts, rng);
        }
      }
      if (!remove) entries_[keep++] = entry;
    }
    entries_.resize(keep);
  }

  /// True when a message of \p type is still queued (pending or backing off).
  [[nodiscard]] bool has(MessageType type) const noexcept {
    for (const Entry& e : entries_)
      if (e.msg.type == type) return true;
    return false;
  }

  [[nodiscard]] std::size_t pending() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t enqueued() const noexcept { return enqueued_; }
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t dead_letters() const noexcept { return dead_letters_; }
  /// Due time of the next pending entry; +inf when empty (test hook).
  [[nodiscard]] double next_due_s() const noexcept {
    double due = std::numeric_limits<double>::infinity();
    for (const Entry& e : entries_) due = std::min(due, e.due_s);
    return due;
  }

 private:
  struct Entry {
    Message msg;
    std::uint32_t attempts = 0;
    double due_s = 0.0;
  };

  RetryPolicy policy_;
  std::vector<Entry> entries_;
  std::uint64_t enqueued_ = 0;
  std::uint64_t attempts_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t dead_letters_ = 0;
};

}  // namespace ev::fleet
