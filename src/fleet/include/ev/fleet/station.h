/// \file station.h
/// Charge-point model of the fleet backend. A ChargePoint owns everything a
/// real station firmware would: its session state machine (boot, authorize,
/// charge, stop), the cumulative session meter, its retry queue, and the
/// heartbeat liveness lease. Robustness contract (ThrottleAlive): whenever
/// the station has heard nothing from the central system for a full lease
/// period it *autonomously* throttles an active session to the safe minimum
/// current and keeps it there until the next central reply — so a fleet
/// that loses its control plane degrades to a known-safe draw the central
/// system can reserve for, instead of an unbounded one.
///
/// advance() is called once per tick from the campaign worker pool and
/// touches only this station's state plus its private seeded RNG, which is
/// what makes the per-tick station fan embarrassingly parallel and the run
/// byte-identical for any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "ev/fleet/messages.h"
#include "ev/fleet/retry.h"
#include "ev/security/hmac.h"
#include "ev/util/rng.h"

namespace ev::fleet {

/// Station lifecycle (kSuspended keeps the session; it resumes when the
/// load balancer grants current again).
enum class StationState : std::uint8_t {
  kOffline,      ///< Not yet booted (BootNotification pending).
  kAvailable,    ///< Booted, no vehicle.
  kAuthorizing,  ///< Vehicle plugged, challenge-response in flight.
  kStarting,     ///< Authorized, StartTransaction in flight.
  kCharging,     ///< Transaction open, drawing allocated (or safe) current.
  kSuspended,    ///< Transaction open, shed to 0 A by the load balancer.
};

[[nodiscard]] std::string to_string(StationState state);

/// Everything one station accumulates; folded in station-index order.
struct StationStats {
  std::uint64_t arrivals = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t sessions_abandoned = 0;  ///< Retry budget spent on auth/start.
  std::uint64_t suspend_events = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t throttle_ticks = 0;
  std::uint64_t meter_reports = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t redelivered = 0;
  double energy_delivered_kwh = 0.0;
};

/// Per-station constants, derived once from the FleetSpec.
struct StationConfig {
  double max_current_a = 32.0;
  double min_current_a = 6.0;
  double safe_current_a = 8.0;
  double voltage_v = 400.0;
  double heartbeat_period_s = 10.0;
  double lease_s = 30.0;
  double arrival_rate_per_h = 0.6;
  double energy_min_kwh = 5.0;
  double energy_max_kwh = 30.0;
  double meter_period_s = 60.0;
  double loss_probability = 0.0;
  RetryPolicy retry;
};

class ChargePoint {
 public:
  /// \p credential is the provisioned key material for the authorize
  /// round-trip (a rogue station simply holds the wrong bytes); \p seed
  /// feeds the station's private RNG (arrivals, session energy, backoff
  /// jitter, heartbeat phase).
  ChargePoint(std::uint32_t index, const StationConfig& config,
              security::Key credential, std::uint64_t seed);

  /// One control tick: lease check, vehicle arrival, charge integration,
  /// meter/heartbeat cadence, then one retry-queue pump. Messages that got
  /// through the channel this tick are appended to \p outbox (for the
  /// serial central fold). \p channel_up reflects partitions/blackouts;
  /// per-send Bernoulli loss comes on top from the station RNG.
  void advance(double now_s, double dt_s, bool channel_up, std::vector<Message>& outbox);

  /// Serial phase: a central reply reached the station. Renews the
  /// liveness lease, flushes the dead-letter journal, and drives the
  /// session state machine.
  void deliver(const Reply& reply, double now_s);

  /// Load-balancer push (only invoked while the station is reachable).
  /// 0 A while a transaction is open suspends the session; a positive grant
  /// resumes it.
  void set_allocated(double current_a, double now_s);

  /// Current drawn during the last advance() tick [A].
  [[nodiscard]] double draw_a() const noexcept { return draw_a_; }
  [[nodiscard]] StationState state() const noexcept { return state_; }
  [[nodiscard]] bool throttled() const noexcept { return throttled_; }
  [[nodiscard]] double allocated_a() const noexcept { return allocated_a_; }
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] const StationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RetryQueue& retry_queue() const noexcept { return retry_; }
  /// Open-session ordinal (0 = none) and its demand/progress (test hooks).
  [[nodiscard]] std::uint32_t session() const noexcept { return session_; }
  [[nodiscard]] double session_need_kwh() const noexcept { return need_kwh_; }
  [[nodiscard]] double session_delivered_kwh() const noexcept { return session_kwh_; }
  /// Journaled (dead-lettered, not yet redelivered) accounting messages.
  [[nodiscard]] std::size_t journal_size() const noexcept { return journal_.size(); }

 private:
  void enqueue(MessageType type, double now_s, double created_s);
  void end_session_locally(double now_s);
  [[nodiscard]] double compute_draw() const noexcept;

  std::uint32_t index_;
  StationConfig config_;
  security::Key credential_;
  util::Rng rng_;
  RetryQueue retry_;

  StationState state_ = StationState::kOffline;
  StationStats stats_;
  std::vector<Message> journal_;  ///< Dead-lettered Meter/Stop awaiting contact.

  double boot_at_s_ = 0.0;
  double hb_phase_s_ = 0.0;  ///< Seeded stagger of the first heartbeat after boot.
  bool boot_enqueued_ = false;
  bool has_contact_ = false;
  double last_contact_s_ = 0.0;
  bool throttled_ = false;

  double next_arrival_s_ = 0.0;
  bool arrival_armed_ = false;

  std::uint32_t session_ = 0;        ///< Ordinal of the open session (0 = none).
  std::uint32_t next_session_ = 1;
  double need_kwh_ = 0.0;
  double session_kwh_ = 0.0;
  double auth_created_s_ = 0.0;      ///< First-enqueue time of the Authorize.

  double allocated_a_ = 0.0;
  double draw_a_ = 0.0;
  double next_meter_s_ = 0.0;
  double next_heartbeat_s_ = 0.0;
  bool heartbeat_pending_ = false;
};

}  // namespace ev::fleet
