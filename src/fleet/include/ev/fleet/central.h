/// \file central.h
/// OCPP-style central system: the fleet's single point of truth for
/// authorization (challenge-response over the security layer), transaction
/// accounting (idempotent under retry and dead-letter redelivery — cumulative
/// meters, bill the maximum seen), and grid-aware load balancing. The
/// degradation ladder normal -> constrained -> shed-load -> island is decided
/// here at every rebalance; the grid-safety invariant is that the sum of
/// per-station reservations never exceeds the live grid capacity, where an
/// unreachable or silent station is reserved its last grant until its
/// heartbeat lease runs out and the ThrottleAlive safe minimum afterwards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ev/fleet/messages.h"
#include "ev/security/hmac.h"
#include "ev/util/stats.h"

namespace ev::fleet {

/// Depth of degraded operation, decided per rebalance.
enum class GridMode : std::uint8_t {
  kNormal,       ///< Every active session at full current.
  kConstrained,  ///< Uniformly reduced grants, everyone still charging.
  kShedLoad,     ///< Not enough for all: newest sessions suspended at 0 A.
  kIsland,       ///< A feeder partition split the fleet from the control plane.
};

[[nodiscard]] std::string to_string(GridMode mode);

/// The credential provisioned to station \p station and expected by the
/// central system — one derivation both sides share (a rogue station is one
/// holding anything else).
[[nodiscard]] security::Key station_credential(std::span<const std::uint8_t> master,
                                               std::uint32_t station);

/// Central-side configuration (mirrors the FleetSpec station/grid block).
struct CentralConfig {
  std::uint32_t station_count = 0;
  double voltage_v = 400.0;
  double max_current_a = 32.0;
  double min_current_a = 6.0;
  double safe_current_a = 8.0;
  double lease_s = 30.0;
  double capacity_kw = 600.0;
};

/// Central-side totals; every counter is driven by message processing or
/// rebalancing, never by wall-clock.
struct CentralStats {
  std::uint64_t boots = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t authorize_challenges = 0;
  std::uint64_t authorize_accepted = 0;
  std::uint64_t authorize_rejected = 0;
  std::uint64_t starts_accepted = 0;
  std::uint64_t starts_suspended = 0;  ///< Accepted with a 0 A initial grant.
  std::uint64_t starts_rejected = 0;
  std::uint64_t meter_updates = 0;
  std::uint64_t stops = 0;
  std::uint64_t stop_duplicates = 0;
  std::uint64_t rebalances = 0;
  std::uint64_t shed_suspensions = 0;   ///< Grants forced to 0 A by shedding.
  std::uint64_t stale_reservations = 0; ///< Stale stations seen at rebalances.
  double billed_kwh = 0.0;
  util::SampleSeries decision_latency_s;  ///< now - Message.created_s.
};

class CentralSystem {
 public:
  CentralSystem(const CentralConfig& config, security::Key master);

  /// Handles one delivered charge-point call and returns the reply (replies
  /// to a delivered call are not lost separately; the call leg carries the
  /// loss model). Also renews the station's liveness record.
  [[nodiscard]] Reply process(const Message& msg, double now_s);

  /// Re-solves every per-station grant against \p capacity_kw. Entry i of
  /// the result is the new grant for station i, or -1 when the central
  /// system must not push to it (unreachable, or no open transaction).
  /// Unreachable and lease-stale stations keep a reservation instead: their
  /// last grant until last_heard + lease, the ThrottleAlive safe minimum
  /// beyond it — so the reachable stations' budget can never overcommit the
  /// grid even while part of the fleet is silent.
  std::vector<double> rebalance(double now_s, double capacity_kw,
                                const std::vector<bool>& reachable,
                                bool island_active);

  [[nodiscard]] GridMode mode() const noexcept { return mode_; }
  [[nodiscard]] const CentralStats& stats() const noexcept { return stats_; }
  [[nodiscard]] CentralStats& stats() noexcept { return stats_; }
  /// Transactions currently open (started, no stop billed yet).
  [[nodiscard]] std::uint32_t open_transactions() const noexcept;
  /// Sum of reservations/grants for all open transactions at \p now_s [A].
  [[nodiscard]] double committed_a(double now_s) const noexcept;
  /// Central-side grant/reservation view of one station (test hook) [A].
  [[nodiscard]] double station_reserve_a(std::uint32_t station, double now_s) const;
  /// Capacity the balancer solved against at the latest rebalance [kW].
  [[nodiscard]] double last_capacity_kw() const noexcept { return last_capacity_kw_; }

 private:
  struct Account {
    bool booted = false;
    bool heard = false;
    double last_heard_s = 0.0;
    // Challenge-response in flight.
    std::uint32_t challenge_session = 0;
    security::Digest expected_tag{};
    // Authorized-but-not-started session (0 = none).
    std::uint32_t authorized_session = 0;
    // Open transaction (0 = none).
    std::uint32_t tx_session = 0;
    double tx_start_s = 0.0;
    double tx_meter_kwh = 0.0;
    double allocated_a = 0.0;
  };

  [[nodiscard]] bool stale(const Account& acc, double now_s) const noexcept;
  [[nodiscard]] double reserve_a(const Account& acc, double now_s) const noexcept;
  [[nodiscard]] Reply handle_authorize(const Message& msg, Account& acc);
  [[nodiscard]] Reply handle_start(const Message& msg, Account& acc, double now_s);
  [[nodiscard]] Reply handle_stop(const Message& msg, Account& acc);

  CentralConfig config_;
  security::Key master_;
  std::vector<Account> accounts_;
  CentralStats stats_;
  GridMode mode_ = GridMode::kNormal;
  double last_capacity_kw_ = 0.0;
};

}  // namespace ev::fleet
