/// \file simulation.h
/// The fleet tick loop: binds the station population, the central system,
/// the grid fault timeline, and the campaign worker pool into one
/// deterministic run. Per tick: (1) grid state is read off the immutable
/// fault timeline; (2) the central system rebalances when its cadence is due
/// or the grid changed; (3) every station advances in parallel, each writing
/// only its own outbox slot and drawing only from its own RNG; (4) the
/// outboxes are folded serially in station-index order through the central
/// system; (5) the grid-safety invariant (total draw <= live capacity) is
/// checked. Steps 3's handout order is the only nondeterminism and step 4
/// erases it, so reports are byte-identical for any --jobs value.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "ev/config/fleet.h"
#include "ev/fleet/central.h"
#include "ev/fleet/station.h"
#include "ev/obs/metrics.h"

namespace ev::fleet {

/// Aggregate outcome of one fleet run; everything write_fleet_json emits.
struct FleetResult {
  std::string name;
  std::uint64_t station_count = 0;
  std::uint64_t seed = 0;
  std::uint64_t ticks = 0;
  double sim_hours = 0.0;
  GridMode final_mode = GridMode::kNormal;
  std::uint32_t digest = 0;  ///< CRC-32 of the canonical end-state summary.

  // Grid-safety observables. grid_violations must be 0 on every run — a
  // nonzero value means the reservation logic overcommitted the grid.
  std::uint64_t grid_violations = 0;
  double peak_draw_kw = 0.0;
  double min_headroom_kw = 0.0;
  double final_capacity_kw = 0.0;
  std::array<std::uint64_t, 4> mode_ticks{};  ///< Indexed by GridMode.

  // Station-side fold (index order) and end-of-run control-plane residue.
  StationStats stations;
  std::uint64_t messages_enqueued = 0;
  std::uint64_t messages_attempts = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_retried = 0;
  std::uint64_t messages_dead_lettered = 0;
  std::uint64_t retry_pending_end = 0;    ///< Still in retry queues at end.
  std::uint64_t journal_pending_end = 0;  ///< Dead-lettered, not yet redelivered.
  std::uint32_t open_transactions_end = 0;
  std::uint32_t throttled_peak = 0;  ///< Most stations throttled in one tick.

  CentralStats central;
};

/// Runs \p spec on up to \p jobs worker threads (resolve_jobs semantics).
/// When \p metrics is non-null, fleet.* counters/gauges/histograms are
/// recorded into it — all derived from simulation state, never wall-clock.
/// Throws std::invalid_argument when the spec fails validation.
[[nodiscard]] FleetResult run_fleet(const config::FleetSpec& spec, int jobs,
                                    obs::MetricsRegistry* metrics = nullptr);

/// Writes the deterministic single-line JSON report (shortest-round-trip
/// doubles; byte-identical across --jobs values and same-seed reruns).
void write_fleet_json(const FleetResult& result, std::ostream& out);

/// write_fleet_json into a string.
[[nodiscard]] std::string fleet_report_json(const FleetResult& result);

}  // namespace ev::fleet
