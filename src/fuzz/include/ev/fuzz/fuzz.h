/// \file fuzz.h
/// Seeded differential-testing harness over the whole stack (E25). A
/// deterministic ScenarioGenerator derives valid-by-construction
/// ScenarioSpecs — randomized drive missions, pack/BMS/network/timing
/// knobs, `arch.*` deployment overrides mutated against the extracted
/// model (so every override is feasible), and kind-valid fault plans
/// including the stochastic bus error models — and every spec runs the
/// full pipeline:
///
///   1. text round trip: to_text → from_text → exact spec equality,
///   2. `evsys check` as a cheap pre-filter (error specs are rejected,
///      never simulated — that is a legitimate generator outcome, not a
///      failure),
///   3. co-simulation for checked-clean specs,
///   4. oracles: conservation invariants on the energy/telemetry ledger,
///      the E19 contract (no observed maximum exceeds its static bound,
///      on surfaces no fault can perturb), and the E24 contract (analytic
///      P(miss) dominates the observed miss frequency on every armed CAN
///      bus).
///
/// Failures are minimized by a greedy delta-shrinker over generator
/// choices and dumped as reproducer `.scn` files. The report is a pure
/// function of (seed, count): byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "ev/config/fleet.h"
#include "ev/config/scenario.h"

namespace ev::fuzz {

/// Derives specs deterministically from (root seed, index). Equal
/// arguments produce equal specs on every platform; every spec passes
/// validate() and survives model extraction by construction.
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t root_seed) noexcept
      : root_seed_(root_seed) {}

  /// The index-th scenario of this seed's stream.
  [[nodiscard]] config::ScenarioSpec scenario(int index) const;
  /// The index-th fleet spec of this seed's stream (round-trip property
  /// coverage for the second `key = value` parser).
  [[nodiscard]] config::FleetSpec fleet(int index) const;

  [[nodiscard]] std::uint64_t root_seed() const noexcept { return root_seed_; }

 private:
  std::uint64_t root_seed_ = 1;
};

/// How one generated scenario fared.
enum class Verdict : std::uint8_t {
  kRejected,   ///< Static pre-filter found errors; not simulated.
  kSimulated,  ///< Simulated, every oracle upheld.
  kFailed,     ///< Some pipeline stage or oracle failed (see FailureKind).
};

/// What failed, when something did. The shrinker minimizes while
/// preserving this kind, so a reproducer still fails the same way.
enum class FailureKind : std::uint8_t {
  kNone,
  kRoundTrip,       ///< to_text → from_text did not reproduce the spec.
  kCheckThrow,      ///< Model extraction / analysis threw.
  kSimThrow,        ///< The co-simulation threw.
  kConservation,    ///< Energy/telemetry ledger invariant violated.
  kBoundViolation,  ///< An observed maximum exceeded its static bound.
  kProbViolation,   ///< Observed miss frequency exceeded analytic P(miss).
};

[[nodiscard]] const char* to_string(Verdict verdict) noexcept;
[[nodiscard]] const char* to_string(FailureKind kind) noexcept;

/// Pipeline outcome of one scenario.
struct ScenarioOutcome {
  int index = 0;
  Verdict verdict = Verdict::kRejected;
  FailureKind failure = FailureKind::kNone;
  std::string detail;              ///< Deterministic description (failures).
  std::size_t check_errors = 0;    ///< Pre-filter error diagnostics.
  std::size_t check_warnings = 0;  ///< Pre-filter warning diagnostics.
  std::size_t bound_comparisons = 0;  ///< E19 bound-vs-observed pairs.
  std::size_t prob_comparisons = 0;   ///< E24 P(miss)-vs-frequency pairs.
  std::uint32_t result_digest = 0;    ///< CRC-32 of the run's result JSON.
  config::ScenarioSpec spec;          ///< Minimized when failed.
  std::string reproducer;             ///< Dumped file name, when any.
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  int count = 100;
  int jobs = 1;
  bool shrink = true;           ///< Minimize failing specs before reporting.
  int shrink_budget = 48;       ///< Max pipeline re-evaluations per failure.
  std::string reproducer_dir;   ///< Dump minimized failures here (optional).
  double prob_send_s = 8.0;     ///< Send window of the prob-oracle testbed.
};

/// Everything one fuzz campaign produced. A pure function of
/// (options.seed, options.count) — jobs only changes wall time.
struct FuzzResult {
  std::uint64_t seed = 1;
  int count = 0;
  std::vector<ScenarioOutcome> scenarios;
  int fleets_generated = 0;
  std::vector<int> fleet_round_trip_failures;  ///< Failing fleet indexes.

  /// Failed scenarios + fleet round-trip mismatches.
  [[nodiscard]] std::size_t failures() const noexcept;
};

/// Runs stages 1-4 on one spec. No shrinking, no file I/O; index is left 0.
[[nodiscard]] ScenarioOutcome evaluate_scenario(const config::ScenarioSpec& spec,
                                                double prob_send_s = 8.0);

/// Greedy delta-shrinker: repeatedly applies simplifying edits (drop a
/// fault, clear an arch section, reset a section to defaults, shorten the
/// mission) and keeps an edit iff \p still_fails holds on the edited spec,
/// until a fixpoint or \p max_evals predicate evaluations. Every candidate
/// passes validate() before the predicate sees it.
[[nodiscard]] config::ScenarioSpec shrink_spec(
    const config::ScenarioSpec& spec,
    const std::function<bool(const config::ScenarioSpec&)>& still_fails,
    int max_evals);

/// The campaign: generate, fan over the worker pool, fold in index order,
/// shrink + dump reproducers for failures.
[[nodiscard]] FuzzResult run_fuzz(const FuzzOptions& options);

/// Renders the deterministic campaign report (no wall times, no job
/// counts; doubles in shortest round-trippable form, fixed key order).
void write_fuzz_json(const FuzzResult& result, std::ostream& out);
[[nodiscard]] std::string fuzz_json(const FuzzResult& result);

}  // namespace ev::fuzz
