#include "ev/fuzz/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ev/analysis/analyzer.h"
#include "ev/analysis/prob.h"
#include "ev/campaign/worker_pool.h"
#include "ev/core/scenario.h"
#include "ev/core/subsystems.h"
#include "ev/network/can.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"
#include "ev/util/crc.h"
#include "ev/util/rng.h"
#include "ev/util/stats.h"

namespace ev::fuzz {
namespace {

using analysis::BusModel;
using analysis::Diagnostic;
using analysis::FrameMissBound;
using analysis::FrameModel;
using analysis::ProbOutcome;
using analysis::Report;
using analysis::VehicleModel;
using config::FaultKind;
using config::ScenarioSpec;

/// SplitMix64 over (root seed, index): one independent scenario stream per
/// index, identical on every platform.
std::uint64_t mix(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Coarse rounding keeps generated `.scn` files readable; any double
/// round-trips exactly through format_double, so this is cosmetic only.
double round_to(double v, double step) { return std::round(v / step) * step; }

template <typename T, std::size_t N>
T pick(util::Rng& rng, const T (&options)[N]) {
  return options[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(N) - 1))];
}

bool is_bus_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBusDrop:
    case FaultKind::kBusCorrupt:
    case FaultKind::kBusOff:
    case FaultKind::kBusBabble:
    case FaultKind::kBusErrorRate:
    case FaultKind::kBusErrorProb:
      return true;
    default:
      return false;
  }
}

bool is_partition_fault(FaultKind kind) {
  return kind == FaultKind::kPartitionCrash || kind == FaultKind::kPartitionHang;
}

bool is_error_model_fault(FaultKind kind) {
  return kind == FaultKind::kBusErrorRate || kind == FaultKind::kBusErrorProb;
}

/// Draws a kind-valid fault plan against the extracted model: bus faults
/// name real buses (error models CAN only), partition faults name cockpit
/// partitions, sensor faults index real cells.
void generate_faults(util::Rng& rng, const VehicleModel& model, ScenarioSpec& spec) {
  if (!rng.bernoulli(0.55)) return;
  static constexpr const char* kAnyBus[] = {
      "body_lin", "comfort_can", "infotainment_most", "safety_can",
      "chassis_flexray"};
  static constexpr const char* kCanBus[] = {"comfort_can", "safety_can"};
  const auto faults = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < faults; ++i) {
    config::FaultEventSpec fault;
    fault.at_s = round_to(rng.uniform(1.0, 40.0), 0.01);
    switch (rng.uniform_int(0, 8)) {
      case 0:
        fault.kind = FaultKind::kBusDrop;
        fault.target = pick(rng, kAnyBus);
        fault.value = static_cast<double>(rng.uniform_int(1, 8));
        break;
      case 1:
        fault.kind = FaultKind::kBusCorrupt;
        fault.target = pick(rng, kAnyBus);
        fault.value = static_cast<double>(rng.uniform_int(1, 8));
        break;
      case 2:
        fault.kind = FaultKind::kBusOff;
        fault.target = pick(rng, kAnyBus);
        fault.value = round_to(rng.uniform(0.02, 0.2), 0.001);
        break;
      case 3:
        fault.kind = FaultKind::kBusBabble;
        fault.target = pick(rng, kAnyBus);
        fault.value = round_to(rng.uniform(0.05, 0.3), 0.001);
        break;
      case 4:
        fault.kind = FaultKind::kPartitionCrash;
        fault.target = model.app
                           .partitions[static_cast<std::size_t>(rng.uniform_int(
                               0,
                               static_cast<std::int64_t>(
                                   model.app.partitions.size()) -
                                   1))]
                           .name;
        fault.value = 0.0;
        break;
      case 5:
        fault.kind = FaultKind::kPartitionHang;
        fault.target = model.app
                           .partitions[static_cast<std::size_t>(rng.uniform_int(
                               0,
                               static_cast<std::int64_t>(
                                   model.app.partitions.size()) -
                                   1))]
                           .name;
        fault.value = static_cast<double>(rng.uniform_int(1, 5));
        break;
      case 6:
        fault.kind = FaultKind::kSensorStuck;
        fault.target = std::to_string(rng.uniform_int(
            0, static_cast<std::int64_t>(model.cell_count) - 1));
        fault.value = round_to(rng.uniform(2.9, 4.1), 0.01);
        break;
      case 7:
        fault.kind = FaultKind::kBusErrorRate;
        fault.target = pick(rng, kCanBus);
        fault.value = round_to(rng.uniform(0.0, 200.0), 0.1);
        break;
      default:
        fault.kind = FaultKind::kBusErrorProb;
        fault.target = pick(rng, kCanBus);
        fault.value = round_to(rng.uniform(0.0, 0.03), 0.0001);
        break;
    }
    spec.faults.push_back(std::move(fault));
  }
  spec.subsystems.faults = true;
  spec.fault_seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
}

/// Mutates `arch.*` against the extracted model so every override is
/// feasible by construction: moved frames are movable (and CAN-sized),
/// renumbered ids swap within one CAN bus's existing pool, FlexRay slots
/// permute the stock static assignment, partition windows cover every
/// default partition and fit the major frame.
void generate_arch(util::Rng& rng, const VehicleModel& model, ScenarioSpec& spec) {
  switch (rng.uniform_int(0, 5)) {
    case 2: {  // Move one or two movable frames onto a CAN bus.
      std::vector<const FrameModel*> movable;
      for (const FrameModel& frame : model.frames)
        if (frame.movable && !frame.routed && frame.payload_bytes <= 8)
          movable.push_back(&frame);
      if (movable.empty()) break;
      const auto moves = rng.uniform_int(1, 2);
      std::set<std::uint32_t> moved;
      for (std::int64_t m = 0; m < moves; ++m) {
        const FrameModel* frame = movable[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(movable.size()) - 1))];
        if (!moved.insert(frame->base_id).second) continue;
        spec.arch.set_frame_bus(frame->base_id,
                                rng.bernoulli(0.5) ? "comfort_can" : "safety_can");
      }
      break;
    }
    case 3: {  // Swap two wire identifiers within one CAN bus's pool.
      const std::size_t bus = rng.bernoulli(0.5) ? 1 : 3;
      std::vector<const FrameModel*> pool;
      for (const FrameModel& frame : model.frames)
        if (frame.bus == bus && frame.id_mutable && !frame.routed)
          pool.push_back(&frame);
      if (pool.size() < 2) break;
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
      auto b = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 2));
      if (b >= a) ++b;
      spec.arch.set_frame_id(pool[a]->base_id, pool[b]->id);
      spec.arch.set_frame_id(pool[b]->base_id, pool[a]->id);
      break;
    }
    case 4: {  // Permute the chassis FlexRay static-slot assignment.
      const BusModel& chassis = model.buses[4];
      std::vector<std::pair<std::uint32_t, std::uint64_t>> slots;
      for (const auto& [id, slot] : chassis.fr_static_slot) {
        const bool local = std::any_of(
            model.frames.begin(), model.frames.end(), [&](const FrameModel& f) {
              return f.bus == 4 && !f.routed && f.id == id && f.base_id == id;
            });
        if (local) slots.emplace_back(id, static_cast<std::uint64_t>(slot));
      }
      if (slots.size() < 2) break;
      // Fisher-Yates over the slot values; the id order stays canonical.
      for (std::size_t i = slots.size() - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i)));
        std::swap(slots[i].second, slots[j].second);
      }
      for (const auto& [id, slot] : slots) spec.arch.set_fr_slot(id, slot);
      break;
    }
    case 5: {  // Re-plan the cockpit partition windows (order + budgets).
      std::vector<config::PartitionWindowSpec> windows;
      std::int64_t total = 0;
      for (const core::PartitionModel& partition : model.app.partitions) {
        windows.push_back({partition.name, partition.budget_us});
        total += partition.budget_us;
      }
      if (windows.empty()) break;
      // Grow budgets into the spare major-frame time (never shrink, so the
      // default demand still fits), then shuffle the window order.
      std::int64_t slack = spec.timing.middleware_frame_us - total;
      for (config::PartitionWindowSpec& window : windows) {
        if (slack <= 0) break;
        const std::int64_t grow = rng.uniform_int(0, slack / 2);
        window.budget_us += grow;
        slack -= grow;
      }
      for (std::size_t i = windows.size() - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i)));
        std::swap(windows[i], windows[j]);
      }
      spec.arch.set_partition_windows(std::move(windows));
      break;
    }
    default:  // Stock architecture (weighted: 2 of 6 categories mutate not).
      break;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Non-empty description of the first violated ledger invariant.
std::string conservation_violation(const core::ScenarioRunResult& run) {
  const auto& cycle = run.cosim.cycle;
  const auto finite_nonneg = [](double v, const char* what) -> std::string {
    if (!std::isfinite(v) || v < 0.0)
      return std::string(what) + " = " + config::format_double(v) +
             " (expected finite and >= 0)";
    return {};
  };
  std::string err;
  if (!(err = finite_nonneg(cycle.duration_s, "cycle.duration_s")).empty())
    return err;
  if (!(err = finite_nonneg(cycle.distance_km, "cycle.distance_km")).empty())
    return err;
  if (!(err = finite_nonneg(cycle.battery_energy_out_wh, "battery_energy_out_wh"))
           .empty())
    return err;
  if (!(err = finite_nonneg(cycle.battery_energy_in_wh, "battery_energy_in_wh"))
           .empty())
    return err;
  if (!(err = finite_nonneg(cycle.regen_recovered_wh, "regen_recovered_wh")).empty())
    return err;
  if (!(err = finite_nonneg(cycle.friction_brake_loss_wh, "friction_brake_loss_wh"))
           .empty())
    return err;
  if (!(err = finite_nonneg(cycle.motor_loss_wh, "motor_loss_wh")).empty())
    return err;
  if (!(err = finite_nonneg(cycle.aux_energy_wh, "aux_energy_wh")).empty())
    return err;
  if (cycle.duration_s <= 0.0) return "cycle.duration_s must be positive";
  if (!std::isfinite(cycle.final_soc) || cycle.final_soc < -1e-9 ||
      cycle.final_soc > 1.0 + 1e-9)
    return "final_soc = " + config::format_double(cycle.final_soc) +
           " outside [0, 1]";
  // Regen recovered is energy_in minus charging losses — it can never
  // exceed what actually flowed back into the pack.
  if (cycle.regen_recovered_wh > cycle.battery_energy_in_wh + 1e-6)
    return "regen_recovered_wh " + config::format_double(cycle.regen_recovered_wh) +
           " exceeds battery_energy_in_wh " +
           config::format_double(cycle.battery_energy_in_wh);
  if (run.cosim.bms_frames_at_hmi > run.cosim.bms_frames_published)
    return "bms_frames_at_hmi " + std::to_string(run.cosim.bms_frames_at_hmi) +
           " exceeds bms_frames_published " +
           std::to_string(run.cosim.bms_frames_published);
  return {};
}

/// E19 contract on every surface no declared fault can perturb. Faulted
/// buses (and buses that receive gateway routes from them) are excluded
/// from the frame-latency compare, partition faults exclude the pub/sub
/// compare, any bus fault excludes the gateway-hop compare — the static
/// bounds are deterministic and make no claim under those faults.
std::string bound_violations(const VehicleModel& model, const Report& report,
                             core::VehicleSystem& vehicle, const ScenarioSpec& spec,
                             std::size_t* comparisons) {
  auto* obs = vehicle.find_subsystem<core::ObservabilitySubsystem>();
  if (obs == nullptr) return {};
  obs::MetricsRegistry& metrics = obs->metrics();

  bool any_bus_fault = false;
  bool any_partition_fault = false;
  std::set<std::size_t> tainted;
  for (const config::FaultEventSpec& fault : spec.faults) {
    if (is_partition_fault(fault.kind)) any_partition_fault = true;
    if (!is_bus_fault(fault.kind)) continue;
    any_bus_fault = true;
    for (std::size_t b = 0; b < model.buses.size(); ++b)
      if (model.buses[b].scenario_name == fault.target) tainted.insert(b);
  }
  // A faulted bus perturbs every bus it routes into (the gateway re-injects
  // late or babbled frames there), transitively.
  for (bool changed = true; changed;) {
    changed = false;
    for (const analysis::RouteModel& route : model.routes)
      if (tainted.count(route.from_bus) != 0 && tainted.count(route.to_bus) == 0) {
        tainted.insert(route.to_bus);
        changed = true;
      }
  }

  const auto observed_max = [&metrics](const std::string& name, double* max,
                                       std::size_t* samples) {
    const obs::MetricId id = metrics.find(name);
    if (id == obs::kInvalidId) return false;
    const util::RunningStats& stats = metrics.histogram_stats(id);
    if (stats.count() == 0) return false;
    *max = stats.max();
    *samples = stats.count();
    return true;
  };

  for (std::size_t b = 0; b < model.buses.size(); ++b) {
    if (tainted.count(b) != 0) continue;
    const BusModel& bus = model.buses[b];
    const Diagnostic* d = report.find("rta.bus", bus.scenario_name);
    if (d == nullptr) continue;
    double max = 0.0;
    std::size_t samples = 0;
    if (!observed_max("net." + bus.display_name + ".frame_latency_us", &max,
                      &samples))
      continue;
    ++*comparisons;
    if (max > d->bound)
      return bus.scenario_name + " frame latency " + config::format_double(max) +
             " us exceeds static bound " + config::format_double(d->bound) + " us";
  }
  if (!any_partition_fault) {
    double pubsub_bound = 0.0;
    for (const Diagnostic& d : report.diagnostics)
      if (d.rule_id == "rta.pubsub") pubsub_bound = std::max(pubsub_bound, d.bound);
    double max = 0.0;
    std::size_t samples = 0;
    if (pubsub_bound > 0.0 &&
        observed_max("mw." + model.app.ecu_name + ".pubsub.delivery_latency_us",
                     &max, &samples)) {
      ++*comparisons;
      if (max > pubsub_bound)
        return "pub/sub delivery latency " + config::format_double(max) +
               " us exceeds static bound " + config::format_double(pubsub_bound) +
               " us";
    }
  }
  if (!any_bus_fault) {
    if (const Diagnostic* d = report.find("gw.delay", "central-gateway")) {
      double max = 0.0;
      std::size_t samples = 0;
      if (observed_max("net.gw.central-gateway.hop_latency_us", &max, &samples)) {
        ++*comparisons;
        if (max > d->bound)
          return "gateway hop latency " + config::format_double(max) +
                 " us exceeds static bound " + config::format_double(d->bound) +
                 " us";
      }
    }
  }
  return {};
}

/// Per-frame tally of one prob-oracle testbed run (E24's harness).
struct FrameTally {
  std::size_t sent = 0;
  std::size_t missed = 0;
};

/// One standalone fault-injection run of armed CAN bus \p bus_idx: every
/// analyzer-modelled frame is sent on its period from t = 0 (the
/// synchronous critical instant), the seeded error model destroys
/// transmissions, and deliveries later than one period count as misses.
std::vector<FrameTally> run_prob_testbed(const VehicleModel& model,
                                         std::size_t bus_idx,
                                         const analysis::BusErrorModel& error_model,
                                         std::uint64_t seed, double send_s) {
  const BusModel& bus_model = model.buses[bus_idx];
  sim::Simulator sim;
  network::CanBus bus(sim, bus_model.scenario_name, bus_model.bit_rate_bps);

  network::CanErrorModel armed;
  armed.poisson_rate_per_s = error_model.poisson_rate_per_s;
  armed.per_attempt_prob = error_model.per_attempt_prob;
  armed.seed = seed ^ (0x9e3779b97f4a7c15ULL * (bus_idx + 1));
  bus.arm_error_model(armed);

  std::vector<std::size_t> frames;
  std::map<std::uint32_t, std::size_t> slot_of_id;
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (model.frames[f].bus == bus_idx && model.frames[f].payload_bytes <= 8) {
      slot_of_id[model.frames[f].id] = frames.size();
      frames.push_back(f);
    }

  std::vector<FrameTally> tallies(frames.size());
  bus.subscribe([&](const network::Frame& frame, sim::Time delivered) {
    const auto it = slot_of_id.find(frame.id);
    if (it == slot_of_id.end()) return;
    const double latency_s = (delivered - frame.created).to_seconds();
    if (latency_s > model.frames[frames[it->second]].period_s + 1e-12)
      ++tallies[it->second].missed;
  });

  const sim::Time send_until = sim::Time::seconds(send_s);
  for (std::size_t s = 0; s < frames.size(); ++s) {
    const FrameModel& frame = model.frames[frames[s]];
    sim.schedule_periodic(sim::Time{}, sim::Time::seconds(frame.period_s), [&, s] {
      if (sim.now() > send_until) return;
      network::Frame tx;
      tx.id = model.frames[frames[s]].id;
      tx.payload_size = model.frames[frames[s]].payload_bytes;
      if (bus.send(tx)) ++tallies[s].sent;
    });
  }
  sim.run_until(send_until + sim::Time::seconds(3.0));
  return tallies;
}

/// Two-sided Hoeffding slack with failure mass 1e-9 per comparison: an
/// observation beyond analytic + tolerance is a real soundness violation,
/// not sampling noise.
double hoeffding_tolerance(std::size_t n) {
  if (n == 0) return 1.0;
  return std::sqrt(std::log(1e9) / (2.0 * static_cast<double>(n)));
}

/// E24 contract for every armed CAN bus of \p spec.
std::string prob_violations(const VehicleModel& model, const ScenarioSpec& spec,
                            double send_s, std::size_t* comparisons) {
  if (std::none_of(spec.faults.begin(), spec.faults.end(),
                   [](const config::FaultEventSpec& fault) {
                     return is_error_model_fault(fault.kind);
                   }))
    return {};
  analysis::ProbabilisticCanAnalyzer analyzer(model);
  for (std::size_t b = 0; b < model.buses.size(); ++b) {
    const ProbOutcome& outcome = analyzer.bus_outcome(b);
    if (!outcome.model.armed() ||
        model.buses[b].protocol != analysis::Protocol::kCan)
      continue;
    const std::vector<FrameTally> tallies =
        run_prob_testbed(model, b, analyzer.error_models()[b],
                         spec.fault_seed, send_s);
    for (std::size_t s = 0; s < outcome.frames.size(); ++s) {
      const FrameMissBound& bound = outcome.frames[s];
      const FrameTally& tally = tallies[s];
      if (tally.sent == 0) continue;
      ++*comparisons;
      const double observed = static_cast<double>(tally.missed) /
                              static_cast<double>(tally.sent);
      const double limit =
          bound.miss_probability + hoeffding_tolerance(tally.sent);
      if (observed > limit) {
        char id_hex[16];
        std::snprintf(id_hex, sizeof id_hex, "0x%x",
                      model.frames[bound.frame].id);
        return model.buses[b].scenario_name + "/" + id_hex +
               " observed miss frequency " + config::format_double(observed) +
               " exceeds analytic bound " +
               config::format_double(bound.miss_probability) + " + tolerance " +
               config::format_double(limit - bound.miss_probability);
      }
    }
  }
  return {};
}

}  // namespace

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

config::ScenarioSpec ScenarioGenerator::scenario(int index) const {
  util::Rng rng(mix(root_seed_, static_cast<std::uint64_t>(index)));
  ScenarioSpec spec;
  spec.name = "fuzz-s" + std::to_string(root_seed_) + "-" + std::to_string(index);

  static constexpr config::CycleKind kCycles[] = {config::CycleKind::kUrban,
                                                  config::CycleKind::kHighway,
                                                  config::CycleKind::kSuburban};
  spec.drive.cycle = pick(rng, kCycles);
  spec.drive.repeat = rng.bernoulli(0.1) ? 2 : 1;

  spec.pack.module_count = static_cast<std::uint64_t>(rng.uniform_int(2, 8));
  spec.pack.cells_per_module = static_cast<std::uint64_t>(rng.uniform_int(4, 12));
  spec.pack.initial_soc = round_to(rng.uniform(0.55, 0.95), 0.001);
  spec.pack.soc_spread_sigma = round_to(rng.uniform(0.0, 0.03), 0.0001);
  spec.pack.lfp_chemistry = rng.bernoulli(0.25);

  static constexpr config::Balancing kBalancing[] = {config::Balancing::kNone,
                                                     config::Balancing::kPassive,
                                                     config::Balancing::kActive};
  spec.bms.balancing = pick(rng, kBalancing);
  spec.bms.initial_soc_estimate = round_to(
      std::clamp(spec.pack.initial_soc + rng.uniform(-0.04, 0.04), 0.0, 1.0),
      0.001);

  spec.powertrain.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
  spec.powertrain.aux_power_w = round_to(rng.uniform(100.0, 900.0), 0.1);

  spec.network.load_scale = round_to(rng.uniform(0.5, 2.0), 0.01);
  static constexpr double kCanRates[] = {125e3, 250e3, 500e3, 800e3, 1e6};
  static constexpr double kLinRates[] = {9600.0, 19200.0};
  static constexpr double kFrRates[] = {5e6, 10e6};
  spec.network.can_bit_rate = pick(rng, kCanRates);
  spec.network.lin_bit_rate = pick(rng, kLinRates);
  spec.network.flexray_bit_rate = pick(rng, kFrRates);

  static constexpr double kControlPeriods[] = {0.05, 0.1, 0.2};
  static constexpr double kPublishPeriods[] = {0.1, 0.2};
  static constexpr std::int64_t kFrames[] = {20000, 40000};
  spec.timing.control_period_s = pick(rng, kControlPeriods);
  spec.timing.bms_publish_period_s = pick(rng, kPublishPeriods);
  spec.timing.middleware_frame_us = pick(rng, kFrames);

  spec.subsystems.obs = true;  // the oracles read the histograms
  spec.subsystems.health = rng.bernoulli(0.5);
  spec.subsystems.security = rng.bernoulli(0.3);

  // Arch overrides and fault plans mutate against the model this spec
  // extracts without them — that is what makes every override feasible and
  // every fault target real by construction.
  const VehicleModel model = analysis::extract_model(spec);
  generate_arch(rng, model, spec);
  generate_faults(rng, model, spec);
  return spec;
}

config::FleetSpec ScenarioGenerator::fleet(int index) const {
  // Offset stream: fleet specs never share draws with scenario(index).
  util::Rng rng(mix(root_seed_ ^ 0xf1ee7f1ee7ULL, static_cast<std::uint64_t>(index)));
  config::FleetSpec spec;
  spec.name =
      "fuzz-fleet-s" + std::to_string(root_seed_) + "-" + std::to_string(index);
  spec.stations = static_cast<std::uint64_t>(rng.uniform_int(4, 128));
  spec.feeders = static_cast<std::uint64_t>(
      rng.uniform_int(1, std::min<std::int64_t>(8, static_cast<std::int64_t>(
                                                       spec.stations))));
  spec.sim_hours = round_to(rng.uniform(0.5, 4.0), 0.01);
  static constexpr double kTicks[] = {0.5, 1.0, 2.0};
  spec.tick_s = pick(rng, kTicks);
  spec.seed = static_cast<std::uint64_t>(rng.uniform_int(1, 1000000));
  spec.station_max_current_a = round_to(rng.uniform(16.0, 64.0), 0.1);
  spec.station_min_current_a = round_to(rng.uniform(2.0, 8.0), 0.1);
  spec.station_safe_current_a = round_to(rng.uniform(4.0, 12.0), 0.1);
  static constexpr double kVoltages[] = {400.0, 800.0};
  spec.station_voltage_v = pick(rng, kVoltages);
  spec.rogue_stations = static_cast<std::uint64_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(spec.stations) / 8));
  spec.arrival_rate_per_station_per_h = round_to(rng.uniform(0.1, 1.5), 0.01);
  spec.session_energy_min_kwh = round_to(rng.uniform(2.0, 10.0), 0.1);
  spec.session_energy_max_kwh =
      round_to(spec.session_energy_min_kwh + rng.uniform(5.0, 30.0), 0.1);
  static constexpr double kMeterPeriods[] = {30.0, 60.0, 120.0};
  spec.meter_period_s = pick(rng, kMeterPeriods);
  spec.grid_capacity_kw = round_to(rng.uniform(200.0, 1200.0), 0.1);
  spec.rebalance_period_s = spec.tick_s * static_cast<double>(rng.uniform_int(1, 10));
  spec.heartbeat_period_s = round_to(rng.uniform(5.0, 15.0), 0.1);
  spec.heartbeat_lease_s =
      round_to(spec.heartbeat_period_s * rng.uniform(1.0, 4.0), 0.1);
  if (spec.heartbeat_lease_s < spec.heartbeat_period_s)
    spec.heartbeat_lease_s = spec.heartbeat_period_s;
  spec.msg_loss_probability = round_to(rng.uniform(0.0, 0.3), 0.001);
  spec.retry_max_attempts = static_cast<std::uint64_t>(rng.uniform_int(1, 8));
  spec.retry_timeout_s = round_to(rng.uniform(0.5, 5.0), 0.01);
  spec.retry_backoff_base_s = round_to(rng.uniform(0.5, 4.0), 0.01);
  spec.retry_backoff_cap_s =
      round_to(spec.retry_backoff_base_s * rng.uniform(1.0, 30.0), 0.01);
  if (spec.retry_backoff_cap_s < spec.retry_backoff_base_s)
    spec.retry_backoff_cap_s = spec.retry_backoff_base_s;
  spec.retry_jitter = round_to(rng.uniform(0.0, 1.0), 0.001);

  const auto grid_faults = rng.uniform_int(0, 3);
  const double horizon_s = spec.sim_hours * 3600.0;
  for (std::int64_t i = 0; i < grid_faults; ++i) {
    config::GridFaultSpec fault;
    fault.at_s = round_to(rng.uniform(0.0, horizon_s * 0.8), 1.0);
    fault.duration_s = round_to(rng.uniform(10.0, 600.0), 1.0);
    switch (rng.uniform_int(0, 2)) {
      case 0:
        fault.kind = config::GridFaultKindSpec::kCapacityDrop;
        fault.value = round_to(rng.uniform(0.1, 1.0), 0.01);
        if (fault.value <= 0.0) fault.value = 0.1;
        break;
      case 1:
        fault.kind = config::GridFaultKindSpec::kFeederPartition;
        fault.target = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.feeders) - 1));
        break;
      default:
        fault.kind = config::GridFaultKindSpec::kCommsBlackout;
        fault.target = static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.stations) - 1));
        fault.value = static_cast<double>(rng.uniform_int(
            1, static_cast<std::int64_t>(spec.stations - fault.target)));
        break;
    }
    spec.grid_faults.push_back(fault);
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kRejected: return "rejected";
    case Verdict::kSimulated: return "simulated";
    case Verdict::kFailed: return "failed";
  }
  return "?";
}

const char* to_string(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kRoundTrip: return "round_trip";
    case FailureKind::kCheckThrow: return "check_throw";
    case FailureKind::kSimThrow: return "sim_throw";
    case FailureKind::kConservation: return "conservation";
    case FailureKind::kBoundViolation: return "bound_violation";
    case FailureKind::kProbViolation: return "prob_violation";
  }
  return "?";
}

ScenarioOutcome evaluate_scenario(const config::ScenarioSpec& spec,
                                  double prob_send_s) {
  ScenarioOutcome out;
  out.spec = spec;

  const auto failed = [&out](FailureKind kind, std::string detail) {
    out.verdict = Verdict::kFailed;
    out.failure = kind;
    out.detail = std::move(detail);
  };

  // 1. Lossless text round trip.
  try {
    const ScenarioSpec back = ScenarioSpec::from_text(spec.to_text());
    if (!(back == spec)) {
      failed(FailureKind::kRoundTrip,
             "from_text(to_text(spec)) differs from the original spec");
      return out;
    }
  } catch (const std::exception& e) {
    failed(FailureKind::kRoundTrip, e.what());
    return out;
  }

  // 2. Static pre-filter.
  VehicleModel model;
  Report report;
  try {
    model = analysis::extract_model(spec);
    report = analysis::analyze(model);
  } catch (const std::exception& e) {
    failed(FailureKind::kCheckThrow, e.what());
    return out;
  }
  out.check_errors = report.count(analysis::Severity::kError);
  out.check_warnings = report.count(analysis::Severity::kWarning);
  if (out.check_errors > 0) {
    out.verdict = Verdict::kRejected;
    return out;
  }

  // 3. Co-simulation.
  std::unique_ptr<core::VehicleSystem> vehicle;
  core::ScenarioRunResult run;
  try {
    run = core::run_scenario(spec, &vehicle);
  } catch (const std::exception& e) {
    failed(FailureKind::kSimThrow, e.what());
    return out;
  }
  const std::string result = core::result_json(run);
  out.result_digest = util::crc32_ieee(
      {reinterpret_cast<const std::uint8_t*>(result.data()), result.size()});

  // 4. Oracles.
  std::string err = conservation_violation(run);
  if (!err.empty()) {
    failed(FailureKind::kConservation, err);
    return out;
  }
  err = bound_violations(model, report, *vehicle, spec, &out.bound_comparisons);
  if (!err.empty()) {
    failed(FailureKind::kBoundViolation, err);
    return out;
  }
  err = prob_violations(model, spec, prob_send_s, &out.prob_comparisons);
  if (!err.empty()) {
    failed(FailureKind::kProbViolation, err);
    return out;
  }
  out.verdict = Verdict::kSimulated;
  return out;
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

config::ScenarioSpec shrink_spec(
    const config::ScenarioSpec& spec,
    const std::function<bool(const config::ScenarioSpec&)>& still_fails,
    int max_evals) {
  int evals = 0;
  ScenarioSpec best = spec;

  const auto keep = [&](const ScenarioSpec& candidate) {
    if (evals >= max_evals) return false;
    try {
      candidate.validate();
    } catch (const std::exception&) {
      return false;  // never hand the predicate an invalid spec
    }
    ++evals;
    if (!still_fails(candidate)) return false;
    best = candidate;
    return true;
  };

  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;
    // Drop faults one at a time (last to first keeps earlier indexes valid).
    for (std::size_t i = best.faults.size(); i-- > 0;) {
      ScenarioSpec candidate = best;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (keep(candidate)) progress = true;
    }
    // Clear arch sections wholesale.
    const auto clear_section = [&](auto member) {
      if ((best.arch.*member).empty()) return;
      ScenarioSpec candidate = best;
      (candidate.arch.*member).clear();
      if (keep(candidate)) progress = true;
    };
    clear_section(&config::ArchSpec::frame_buses);
    clear_section(&config::ArchSpec::frame_ids);
    clear_section(&config::ArchSpec::fr_slots);
    clear_section(&config::ArchSpec::partitions);
    // Shorten the mission.
    if (best.drive.repeat > 1) {
      ScenarioSpec candidate = best;
      candidate.drive.repeat = 1;
      if (keep(candidate)) progress = true;
    }
    if (best.drive.cycle != config::CycleKind::kUrban) {
      ScenarioSpec candidate = best;
      candidate.drive.cycle = config::CycleKind::kUrban;
      if (keep(candidate)) progress = true;
    }
    // Disable optional subsystems.
    if (best.subsystems.security) {
      ScenarioSpec candidate = best;
      candidate.subsystems.security = false;
      if (keep(candidate)) progress = true;
    }
    if (best.subsystems.health) {
      ScenarioSpec candidate = best;
      candidate.subsystems.health = false;
      if (keep(candidate)) progress = true;
    }
    if (best.subsystems.faults && best.faults.empty()) {
      ScenarioSpec candidate = best;
      candidate.subsystems.faults = false;
      if (keep(candidate)) progress = true;
    }
    // Reset whole sections to their defaults.
    const auto reset_section = [&](auto member) {
      using Section = std::decay_t<decltype(best.*member)>;
      if (best.*member == Section{}) return;
      ScenarioSpec candidate = best;
      candidate.*member = Section{};
      if (keep(candidate)) progress = true;
    };
    reset_section(&ScenarioSpec::pack);
    reset_section(&ScenarioSpec::bms);
    reset_section(&ScenarioSpec::powertrain);
    reset_section(&ScenarioSpec::network);
    reset_section(&ScenarioSpec::timing);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

std::size_t FuzzResult::failures() const noexcept {
  std::size_t n = fleet_round_trip_failures.size();
  for (const ScenarioOutcome& outcome : scenarios)
    if (outcome.failure != FailureKind::kNone) ++n;
  return n;
}

FuzzResult run_fuzz(const FuzzOptions& options) {
  FuzzResult result;
  result.seed = options.seed;
  result.count = std::max(options.count, 0);
  const ScenarioGenerator generator(options.seed);

  // Fan over the worker pool into per-index slots: each slot is a pure
  // function of (seed, index), so the folded report is byte-identical for
  // any --jobs value.
  result.scenarios.resize(static_cast<std::size_t>(result.count));
  campaign::WorkerPool pool(options.jobs);
  pool.run(result.count, [&](int index) {
    const ScenarioSpec spec = generator.scenario(index);
    ScenarioOutcome outcome = evaluate_scenario(spec, options.prob_send_s);
    outcome.index = index;
    if (outcome.failure != FailureKind::kNone && options.shrink) {
      const FailureKind kind = outcome.failure;
      outcome.spec = shrink_spec(
          spec,
          [&](const ScenarioSpec& candidate) {
            return evaluate_scenario(candidate, options.prob_send_s).failure ==
                   kind;
          },
          options.shrink_budget);
    }
    result.scenarios[static_cast<std::size_t>(index)] = std::move(outcome);
  });

  // Fleet round trips exercise the second `key = value` parser; they are
  // text-only and cheap, so they run serially.
  result.fleets_generated = result.count / 4;
  for (int i = 0; i < result.fleets_generated; ++i) {
    const config::FleetSpec spec = generator.fleet(i);
    bool ok = false;
    try {
      ok = config::FleetSpec::from_text(spec.to_text()) == spec;
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) result.fleet_round_trip_failures.push_back(i);
  }

  // Reproducers, serially in index order.
  if (!options.reproducer_dir.empty()) {
    for (ScenarioOutcome& outcome : result.scenarios) {
      if (outcome.failure == FailureKind::kNone) continue;
      outcome.reproducer = outcome.spec.name + ".repro.scn";
      config::save_scenario_file(outcome.spec,
                                 options.reproducer_dir + "/" + outcome.reproducer);
    }
  }
  return result;
}

void write_fuzz_json(const FuzzResult& result, std::ostream& out) {
  std::size_t rejected = 0, simulated = 0, failed = 0, warnings = 0;
  std::size_t bound_comparisons = 0, prob_comparisons = 0;
  for (const ScenarioOutcome& outcome : result.scenarios) {
    warnings += outcome.check_warnings;
    bound_comparisons += outcome.bound_comparisons;
    prob_comparisons += outcome.prob_comparisons;
    switch (outcome.verdict) {
      case Verdict::kRejected: ++rejected; break;
      case Verdict::kSimulated: ++simulated; break;
      case Verdict::kFailed: ++failed; break;
    }
  }
  out << "{\n  \"experiment\": \"fuzz\",\n  \"seed\": " << result.seed
      << ",\n  \"count\": " << result.count << ",\n  \"summary\": {"
      << "\"rejected\": " << rejected << ", \"simulated\": " << simulated
      << ", \"failed\": " << failed << ", \"check_warnings\": " << warnings
      << ", \"bound_comparisons\": " << bound_comparisons
      << ", \"prob_comparisons\": " << prob_comparisons
      << ", \"fleets\": " << result.fleets_generated
      << ", \"fleet_round_trip_failures\": "
      << result.fleet_round_trip_failures.size() << "},\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const ScenarioOutcome& outcome = result.scenarios[i];
    char digest[16];
    std::snprintf(digest, sizeof digest, "0x%08x", outcome.result_digest);
    out << "    {\"index\": " << outcome.index << ", \"name\": \""
        << json_escape(outcome.spec.name) << "\", \"verdict\": \""
        << to_string(outcome.verdict) << "\", \"check_errors\": "
        << outcome.check_errors << ", \"check_warnings\": "
        << outcome.check_warnings << ", \"bound_comparisons\": "
        << outcome.bound_comparisons << ", \"prob_comparisons\": "
        << outcome.prob_comparisons << ", \"digest\": \"" << digest << "\"}"
        << (i + 1 < result.scenarios.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"failures\": [\n";
  bool first = true;
  for (const ScenarioOutcome& outcome : result.scenarios) {
    if (outcome.failure == FailureKind::kNone) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    {\"index\": " << outcome.index << ", \"kind\": \""
        << to_string(outcome.failure) << "\", \"detail\": \""
        << json_escape(outcome.detail) << "\", \"reproducer\": \""
        << json_escape(outcome.reproducer) << "\"}";
  }
  for (const int index : result.fleet_round_trip_failures) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"fleet_index\": " << index
        << ", \"kind\": \"fleet_round_trip\"}";
  }
  if (!first) out << "\n";
  out << "  ]\n}\n";
}

std::string fuzz_json(const FuzzResult& result) {
  std::ostringstream out;
  write_fuzz_json(result, out);
  return out.str();
}

}  // namespace ev::fuzz
