/// \file synthesis.h
/// Design-space synthesizer: the inverse of `evsys check`. Where check maps
/// a scenario to diagnostics, synthesize maps a (possibly infeasible)
/// scenario to a repaired and optimized one, by searching the architecture
/// coordinates ArchSpec exposes — frame placement across the five Fig. 1
/// buses, CAN identifier (= priority) assignment, FlexRay static-slot
/// permutation, cockpit partition windows — plus the CAN bit-rate and
/// load-scale knobs. The search is seeded and fully deterministic: the same
/// spec, seed, and iteration budget give a byte-identical result for any
/// worker count, because all random draws happen on the coordinator and
/// candidates are evaluated into per-index slots (the campaign determinism
/// pattern). Fitness comes from the incremental analysis::FitnessEvaluator,
/// so a synthesized design is feasible exactly when `evsys check` exits 0
/// on it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ev/analysis/fitness.h"
#include "ev/config/scenario.h"

namespace ev::synthesis {

/// Search knobs.
struct SynthesisOptions {
  std::uint64_t seed = 1;     ///< Seed of the coordinator RNG.
  int iters = 200;            ///< Annealing rounds (each evaluates a batch).
  int jobs = 1;               ///< Worker threads (<= 0: one per hw thread).
  bool cross_check = false;   ///< Full-recompute check after every accept.
};

/// One point of the quality trade-off surface (larger slack is better,
/// smaller busload / deployment are better).
struct ParetoPoint {
  analysis::Fitness fitness;
  bool accepted = false;  ///< Whether the search moved to this design.

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// Everything one synthesize() run produced.
struct SynthesisResult {
  config::ScenarioSpec spec;   ///< The synthesized (repaired) scenario.
  analysis::Fitness fitness;   ///< Its evaluated fitness.
  bool feasible = false;       ///< fitness.feasible(): check would exit 0.
  std::uint64_t seed = 0;      ///< Seed the search ran with.
  int iters = 0;               ///< Annealing rounds the search ran.
  double load_scale = 0.0;     ///< Capacity the ladder settled on.
  std::size_t ladder_steps = 0;      ///< Load-ladder rungs evaluated.
  std::uint64_t moves_evaluated = 0; ///< Candidate designs scored.
  std::uint64_t moves_accepted = 0;  ///< Moves the annealer took.
  std::uint64_t bus_pass_evals = 0;  ///< Incremental single-bus passes spent.
  std::vector<ParetoPoint> pareto;   ///< Non-dominated feasible points, in
                                     ///< slack-descending order.
};

/// Synthesizes a feasible architecture for \p spec (which must validate()).
/// Phase A repairs structure along a descending load ladder until the
/// design passes every check; phase B anneals frame placement, priorities,
/// slots, and windows to improve worst-case slack and busload. Throws
/// std::logic_error if the internal spec/evaluator mirror ever diverges
/// (the synthesized spec is re-extracted and cross-checked before return).
[[nodiscard]] SynthesisResult synthesize(const config::ScenarioSpec& spec,
                                         const SynthesisOptions& options);

/// Renders the deterministic synthesis report JSON (no timing, no worker
/// count — byte-identical across reruns and --jobs values).
void write_synthesis_json(const SynthesisResult& result, std::ostream& out);
[[nodiscard]] std::string synthesis_json(const SynthesisResult& result);

// --- building blocks (exposed for unit tests) -------------------------------

/// Audsley-style lowest-priority-first CAN identifier assignment for the
/// frames of \p bus: reuses the bus's existing id pool, hands the largest
/// (lowest-priority) id to a frame that is schedulable there, and recurses
/// upward. Returns wire ids by frame index (only the frames on the bus).
/// Frames the caller may not renumber never appear (the evaluator's
/// id_mutable flag gates them); release jitters are taken from the
/// evaluator's settled bounds.
[[nodiscard]] std::map<std::size_t, std::uint32_t> assign_can_ids(
    analysis::FitnessEvaluator& evaluator, std::size_t bus);

/// Rate-monotonic FlexRay static-slot construction: shorter-period frames
/// get earlier slots (ties by id). Returns the full id -> slot map over the
/// same ids the bus's current slot table owns.
[[nodiscard]] std::map<std::uint32_t, std::size_t> rm_fr_slots(
    const analysis::VehicleModel& model, std::size_t bus);

/// First-fit-decreasing partition window packing: each partition's budget
/// becomes its runnable demand (at least 1 us), windows ordered by
/// decreasing budget (ties by name). Returns (partition, budget) in window
/// order, or an empty vector when the demands cannot fit the major frame
/// (the caller keeps the current plan — the rollback path).
[[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> ffd_partition_windows(
    const analysis::VehicleModel& model);

/// True when \p a dominates \p b (no worse in every objective, better in at
/// least one) over (worst_slack_us max, peak_busload min, deployment min).
[[nodiscard]] bool dominates(const analysis::Fitness& a, const analysis::Fitness& b);

/// The scalar annealing energy (lower is better): feasibility violations
/// dominate, then slack, busload, and deployment in lexicographic-ish
/// weighting.
[[nodiscard]] double energy(const analysis::Fitness& fitness);

}  // namespace ev::synthesis
