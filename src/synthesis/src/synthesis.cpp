#include "ev/synthesis/synthesis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "ev/analysis/model.h"
#include "ev/campaign/worker_pool.h"
#include "ev/network/can.h"
#include "ev/util/math.h"
#include "ev/util/rng.h"

namespace ev::synthesis {
namespace {

using analysis::BusIssue;
using analysis::BusIssueKind;
using analysis::Fitness;
using analysis::FitnessEvaluator;
using analysis::FrameModel;
using analysis::Protocol;
using analysis::VehicleModel;

/// Temporary wire-id block used while permuting CAN identifiers. 0x700..0x7ff
/// sits between the comfort (0x3xx) and MOST (0x8xx) id blocks and is never
/// assigned by the topology or the synthesizer.
constexpr std::uint32_t kTempIdBase = 0x700;

/// Home bus of a frame by its Fig. 1 id block (the placement an empty
/// ArchSpec produces).
std::size_t default_bus_of(std::uint32_t base_id) {
  if (base_id >= 0x800) return 2;                      // MOST
  if (base_id >= 0x300) return 1;                      // comfort CAN
  if (base_id >= 0x200) return 3;                      // safety CAN
  if (base_id >= 0x100) return 4;                      // chassis FlexRay
  return 0;                                            // body LIN
}

bool is_can(const VehicleModel& model, std::size_t bus) {
  return model.buses[bus].protocol == Protocol::kCan;
}

/// One scenario plus the incremental evaluator mirroring it. Every mutation
/// goes through apply_move / the apply_* helpers so the two never diverge.
struct Design {
  config::ScenarioSpec spec;
  FitnessEvaluator eval;

  explicit Design(config::ScenarioSpec s)
      : spec(std::move(s)), eval(analysis::extract_model(spec)) {}
};

/// One candidate design mutation (the annealer's move alphabet).
struct Move {
  enum class Kind : std::uint8_t {
    kNone,         ///< Deliberate no-op (infeasible draw degraded here).
    kMoveFrame,    ///< Re-place one movable frame on another bus.
    kSwapIds,      ///< Swap the wire ids of two frames on one CAN bus.
    kSwapSlots,    ///< Swap two chassis static slots.
    kSwapWindows,  ///< Swap two partition windows.
  };
  Kind kind = Kind::kNone;
  std::size_t frame = 0;                         // kMoveFrame
  std::size_t to_bus = 0;                        // kMoveFrame
  std::size_t frame_a = 0, frame_b = 0;          // kSwapIds
  std::uint32_t slot_id_a = 0, slot_id_b = 0;    // kSwapSlots
  std::size_t win_a = 0, win_b = 0;              // kSwapWindows
};

/// Applies one wire-id reassignment to the evaluator and (optionally) the
/// spec mirror. `assignment` maps frame index -> new wire id and must be
/// collision-free as a whole; a two-phase pass through the temp block keeps
/// the gateway route syncing unambiguous while ids swap places.
void apply_id_assignment(FitnessEvaluator& eval, config::ScenarioSpec* spec,
                         const std::map<std::size_t, std::uint32_t>& assignment) {
  std::vector<std::pair<std::size_t, std::uint32_t>> changed;
  for (const auto& [frame, id] : assignment)
    if (eval.model().frames[frame].id != id) changed.emplace_back(frame, id);
  std::uint32_t temp = kTempIdBase;
  for (const auto& [frame, id] : changed) eval.renumber_frame(frame, temp++);
  for (const auto& [frame, id] : changed) {
    eval.renumber_frame(frame, id);
    if (spec != nullptr)
      spec->arch.set_frame_id(eval.model().frames[frame].base_id, id);
  }
}

void apply_fr_slots(FitnessEvaluator& eval, config::ScenarioSpec* spec,
                    const std::map<std::uint32_t, std::size_t>& id_to_slot) {
  eval.set_fr_slots(id_to_slot);
  if (spec == nullptr) return;
  spec->arch.clear_fr_slots();
  // The default table assigns slot i to the i-th id in ascending order; an
  // identity permutation needs no override lines at all.
  std::size_t rank = 0;
  bool identity = true;
  for (const auto& [id, slot] : id_to_slot) identity &= slot == rank++;
  if (identity) return;
  for (const auto& [id, slot] : id_to_slot) spec->arch.set_fr_slot(id, slot);
}

void apply_partition_windows(
    FitnessEvaluator& eval, config::ScenarioSpec* spec,
    const std::vector<std::pair<std::string, std::int64_t>>& windows) {
  eval.set_partition_windows(windows);
  if (spec == nullptr) return;
  std::vector<config::PartitionWindowSpec> plan;
  plan.reserve(windows.size());
  for (const auto& [partition, budget_us] : windows)
    plan.push_back({partition, budget_us});
  spec->arch.set_partition_windows(std::move(plan));
}

/// Applies \p move to the evaluator and, when \p spec is given, mirrors it
/// into the scenario's ArchSpec so that re-extracting the spec reproduces
/// the evaluator's model exactly.
void apply_move(FitnessEvaluator& eval, config::ScenarioSpec* spec, const Move& move) {
  switch (move.kind) {
    case Move::Kind::kNone:
      break;
    case Move::Kind::kMoveFrame: {
      const FrameModel& frame = eval.model().frames[move.frame];
      const std::uint32_t base = frame.base_id;
      // A renumbering is a CAN-only notion: leaving CAN restores the
      // original id first (the network builder rejects remaps elsewhere).
      if (frame.id != base && !is_can(eval.model(), move.to_bus)) {
        eval.renumber_frame(move.frame, base);
        if (spec != nullptr) spec->arch.set_frame_id(base, base);
      }
      eval.move_frame(move.frame, move.to_bus);
      if (spec != nullptr) {
        if (move.to_bus == default_bus_of(base))
          spec->arch.clear_frame_bus(base);
        else
          spec->arch.set_frame_bus(base, config::kArchBusNames[move.to_bus]);
      }
      break;
    }
    case Move::Kind::kSwapIds: {
      const std::uint32_t id_a = eval.model().frames[move.frame_a].id;
      const std::uint32_t id_b = eval.model().frames[move.frame_b].id;
      apply_id_assignment(eval, spec,
                          {{move.frame_a, id_b}, {move.frame_b, id_a}});
      break;
    }
    case Move::Kind::kSwapSlots: {
      for (std::size_t b = 0; b < eval.model().buses.size(); ++b) {
        if (eval.model().buses[b].protocol != Protocol::kFlexRay) continue;
        std::map<std::uint32_t, std::size_t> slots =
            eval.model().buses[b].fr_static_slot;
        std::swap(slots.at(move.slot_id_a), slots.at(move.slot_id_b));
        apply_fr_slots(eval, spec, slots);
      }
      break;
    }
    case Move::Kind::kSwapWindows: {
      std::vector<std::pair<std::string, std::int64_t>> windows;
      for (const core::PartitionModel& partition : eval.model().app.partitions)
        windows.emplace_back(partition.name, partition.budget_us);
      std::swap(windows[move.win_a], windows[move.win_b]);
      apply_partition_windows(eval, spec, windows);
      break;
    }
  }
}

void apply_can_bit_rate(Design& design, double bit_rate_bps) {
  design.spec.network.can_bit_rate = bit_rate_bps;
  design.eval.set_can_bit_rate(bit_rate_bps);
}

/// Frame indices the annealer may re-place (sorted, deterministic).
std::vector<std::size_t> movable_frames(const VehicleModel& model) {
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < model.frames.size(); ++f)
    if (model.frames[f].movable && !model.frames[f].routed) out.push_back(f);
  return out;
}

/// Frames on \p bus whose id the synthesizer may reassign (CAN frames the
/// analyzer actually schedules — oversized payloads are excluded exactly as
/// the RTA excludes them).
std::vector<std::size_t> renumberable_on_bus(const FitnessEvaluator& eval,
                                             std::size_t bus) {
  std::vector<std::size_t> out;
  for (const std::size_t f : eval.frames_on_bus(bus)) {
    const FrameModel& frame = eval.model().frames[f];
    if (frame.id_mutable && frame.payload_bytes <= 8) out.push_back(f);
  }
  return out;
}

bool wire_id_in_use(const FitnessEvaluator& eval, std::size_t bus, std::uint32_t id) {
  for (const std::size_t f : eval.frames_on_bus(bus))
    if (eval.model().frames[f].id == id) return true;
  return false;
}

// ------------------------------------------------------------ phase A -------

/// True when any CAN bus still shows an overload or a blown deadline.
bool can_buses_unhappy(FitnessEvaluator& eval) {
  eval.evaluate();
  for (std::size_t b = 0; b < eval.model().buses.size(); ++b) {
    if (!is_can(eval.model(), b)) continue;
    const analysis::BusOutcome& outcome = eval.bus_outcome(b);
    if (outcome.overloaded) return true;
    for (const BusIssue& issue : outcome.issues)
      if (issue.kind == BusIssueKind::kCanUnschedulable) return true;
  }
  return false;
}

/// Structural repair of one ladder rung: enable health coverage, evict
/// frames their bus rejects, raise the CAN bit rate along {500k, 800k, 1M},
/// Audsley-assign CAN ids, build rate-monotonic FlexRay slots, and re-pack
/// partition windows when the ECU complains. Deterministic throughout.
Design repair(const config::ScenarioSpec& input) {
  config::ScenarioSpec spec = input;
  // Disabled health is a guaranteed warning per partition
  // (health.uncovered_partition); a feasible design must watch its ECUs.
  if (!spec.subsystems.health) spec.subsystems.health = true;
  Design design(std::move(spec));
  design.eval.evaluate();

  // --- Evict frames their current bus cannot carry --------------------------
  // LIN rejects ids outside the schedule table and blurs oversampled state;
  // CAN rejects >8-byte payloads; the FlexRay dynamic segment rejects frames
  // longer than itself. Move offenders to a CAN bus (or home) when allowed.
  for (std::size_t b = 0; b < design.eval.model().buses.size(); ++b) {
    // Snapshot the issue list: moves below invalidate the outcome.
    const std::vector<BusIssue> issues = design.eval.bus_outcome(b).issues;
    for (const BusIssue& issue : issues) {
      const FrameModel& frame = design.eval.model().frames[issue.frame];
      if (!frame.movable || frame.routed) continue;
      Move move;
      move.kind = Move::Kind::kMoveFrame;
      move.frame = issue.frame;
      switch (issue.kind) {
        case BusIssueKind::kLinNoSlot:
        case BusIssueKind::kLinOversampled: {
          // Least-loaded CAN bus takes the body traffic; ties go to comfort.
          design.eval.evaluate();
          move.to_bus =
              design.eval.bus_outcome(3).load < design.eval.bus_outcome(1).load ? 3 : 1;
          break;
        }
        case BusIssueKind::kCanPayload:
        case BusIssueKind::kFrDynamicOverflow: {
          const std::size_t home = default_bus_of(frame.base_id);
          if (home == frame.bus) continue;  // already home; nothing to repair
          move.to_bus = home;
          break;
        }
        case BusIssueKind::kCanUnschedulable:
        case BusIssueKind::kFrOversampled:
          continue;  // priority / slot assignment handles these below
      }
      if (wire_id_in_use(design.eval, move.to_bus, frame.id)) continue;
      apply_move(design.eval, &design.spec, move);
    }
  }

  // --- Rate-monotonic chassis slots (chassis bounds feed routed jitter) -----
  for (std::size_t b = 0; b < design.eval.model().buses.size(); ++b)
    if (design.eval.model().buses[b].protocol == Protocol::kFlexRay) {
      const std::map<std::uint32_t, std::size_t> slots =
          rm_fr_slots(design.eval.model(), b);
      if (slots != design.eval.model().buses[b].fr_static_slot)
        apply_fr_slots(design.eval, &design.spec, slots);
    }

  // --- Priorities first, bandwidth only if priorities cannot save it --------
  static constexpr double kCanRateLadder[] = {500e3, 800e3, 1e6};
  for (;;) {
    for (std::size_t b = 0; b < design.eval.model().buses.size(); ++b)
      if (is_can(design.eval.model(), b))
        apply_id_assignment(design.eval, &design.spec, assign_can_ids(design.eval, b));
    if (!can_buses_unhappy(design.eval)) break;
    double next = 0.0;
    for (const double rate : kCanRateLadder)
      if (rate > design.spec.network.can_bit_rate) {
        next = rate;
        break;
      }
    if (next == 0.0) break;  // bit-rate ladder exhausted
    apply_can_bit_rate(design, next);
  }

  // --- Partition windows: FFD re-pack with rollback -------------------------
  design.eval.evaluate();
  const analysis::EcuOutcome& ecu = design.eval.ecu_outcome();
  bool ecu_bad = ecu.frame_overflow;
  for (const scheduling::FpResponse& window : ecu.windows)
    ecu_bad |= !window.schedulable;
  for (std::size_t i = 0; i < ecu.partition_demand.size(); ++i)
    ecu_bad |= ecu.partition_demand[i] >
               design.eval.model().app.partitions[i].budget_us;
  if (ecu_bad) {
    const std::vector<std::pair<std::string, std::int64_t>> windows =
        ffd_partition_windows(design.eval.model());
    if (!windows.empty())  // empty = demands exceed the major frame: rollback
      apply_partition_windows(design.eval, &design.spec, windows);
  }

  design.eval.evaluate();
  return design;
}

// ------------------------------------------------------------ phase B -------

/// Draws one candidate move from the coordinator RNG. Draw counts vary by
/// kind, but the stream position depends only on the (deterministic) design
/// state, never on worker scheduling.
Move draw_move(util::Rng& rng, const FitnessEvaluator& eval) {
  Move move;
  const VehicleModel& model = eval.model();
  switch (rng.uniform_int(0, 3)) {
    case 0: {  // re-place a movable frame
      const std::vector<std::size_t> frames = movable_frames(model);
      if (frames.empty()) break;
      const std::size_t frame =
          frames[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(frames.size()) - 1))];
      // Target: any bus except MOST (streams are closed) and the current one.
      std::vector<std::size_t> targets;
      for (const std::size_t b : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4}})
        if (b != model.frames[frame].bus) targets.push_back(b);
      const std::size_t to_bus =
          targets[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(targets.size()) - 1))];
      // The frame lands with its current id (or its base id when leaving
      // CAN); refuse draws that would collide on the target bus.
      const std::uint32_t landing_id = is_can(model, to_bus)
                                           ? model.frames[frame].id
                                           : model.frames[frame].base_id;
      if (wire_id_in_use(eval, to_bus, landing_id)) break;
      move.kind = Move::Kind::kMoveFrame;
      move.frame = frame;
      move.to_bus = to_bus;
      break;
    }
    case 1: {  // swap two CAN identifiers
      const std::size_t bus = rng.uniform_int(0, 1) == 0 ? 1 : 3;
      const std::vector<std::size_t> frames = renumberable_on_bus(eval, bus);
      if (frames.size() < 2) break;
      const std::int64_t n = static_cast<std::int64_t>(frames.size());
      const std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      std::size_t b = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
      if (b >= a) ++b;
      move.kind = Move::Kind::kSwapIds;
      move.frame_a = frames[a];
      move.frame_b = frames[b];
      break;
    }
    case 2: {  // swap two chassis static slots
      const auto& slots = model.buses[4].fr_static_slot;
      if (slots.size() < 2) break;
      std::vector<std::uint32_t> ids;
      for (const auto& [id, slot] : slots) ids.push_back(id);
      const std::int64_t n = static_cast<std::int64_t>(ids.size());
      const std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      std::size_t b = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
      if (b >= a) ++b;
      move.kind = Move::Kind::kSwapSlots;
      move.slot_id_a = ids[a];
      move.slot_id_b = ids[b];
      break;
    }
    default: {  // swap two partition windows
      const std::int64_t n = static_cast<std::int64_t>(model.app.partitions.size());
      if (n < 2) break;
      const std::size_t a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      std::size_t b = static_cast<std::size_t>(rng.uniform_int(0, n - 2));
      if (b >= a) ++b;
      move.kind = Move::Kind::kSwapWindows;
      move.win_a = a;
      move.win_b = b;
      break;
    }
  }
  return move;
}

void pareto_insert(std::vector<ParetoPoint>& archive, const Fitness& fitness,
                   bool accepted) {
  if (!fitness.feasible()) return;
  for (ParetoPoint& point : archive) {
    if (point.fitness == fitness) {
      point.accepted |= accepted;
      return;
    }
    if (dominates(point.fitness, fitness)) return;
  }
  archive.erase(std::remove_if(archive.begin(), archive.end(),
                               [&fitness](const ParetoPoint& point) {
                                 return dominates(fitness, point.fitness);
                               }),
                archive.end());
  archive.push_back({fitness, accepted});
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_fitness_json(const Fitness& fitness, std::ostream& out) {
  out << "{\"errors\": " << fitness.errors << ", \"warnings\": " << fitness.warnings
      << ", \"worst_slack_us\": " << config::format_double(fitness.worst_slack_us)
      << ", \"peak_busload\": " << config::format_double(fitness.peak_busload)
      << ", \"deployment\": " << fitness.deployment << "}";
}

}  // namespace

// ---------------------------------------------------------- public API ------

bool dominates(const Fitness& a, const Fitness& b) {
  const bool no_worse = a.worst_slack_us >= b.worst_slack_us &&
                        a.peak_busload <= b.peak_busload &&
                        a.deployment <= b.deployment;
  const bool better = a.worst_slack_us > b.worst_slack_us ||
                      a.peak_busload < b.peak_busload || a.deployment < b.deployment;
  return no_worse && better;
}

double energy(const Fitness& fitness) {
  return 1e6 * static_cast<double>(fitness.errors + fitness.warnings) -
         fitness.worst_slack_us + 100.0 * fitness.peak_busload +
         10.0 * static_cast<double>(fitness.deployment);
}

std::map<std::size_t, std::uint32_t> assign_can_ids(FitnessEvaluator& evaluator,
                                                    std::size_t bus) {
  evaluator.evaluate();
  const VehicleModel& model = evaluator.model();
  const std::vector<std::size_t> frames = renumberable_on_bus(evaluator, bus);
  std::map<std::size_t, std::uint32_t> assignment;
  if (frames.size() < 2) return assignment;

  std::vector<std::uint32_t> pool;
  for (const std::size_t f : frames) pool.push_back(model.frames[f].id);
  std::sort(pool.begin(), pool.end());

  const auto jitter_of = [&](std::size_t f) {
    const FrameModel& frame = model.frames[f];
    if (!frame.routed) return 0.0;
    return evaluator.frame_bounds()[frame.source_frame].e2e_s + model.gateway_delay_s;
  };

  // Audsley's lowest-priority-first argument: whether a message is
  // schedulable with the lowest remaining priority depends only on the SET
  // of messages above it, so priorities can be fixed bottom-up, trying the
  // longest-period (least urgent) messages first at each level.
  std::vector<std::size_t> unassigned = frames;
  for (std::size_t level = pool.size(); level-- > 0;) {
    const std::uint32_t id = pool[level];
    std::vector<std::size_t> candidates = unassigned;
    std::sort(candidates.begin(), candidates.end(),
              [&model](std::size_t a, std::size_t b) {
                if (model.frames[a].period_s != model.frames[b].period_s)
                  return model.frames[a].period_s > model.frames[b].period_s;
                return model.frames[a].base_id > model.frames[b].base_id;
              });
    std::size_t chosen = candidates.front();
    for (const std::size_t candidate : candidates) {
      // Trial assignment: candidate at this (lowest remaining) id, the rest
      // of the unassigned set on the remaining ids in ascending order.
      std::vector<network::CanMessageSpec> specs;
      std::size_t next_free = 0;
      for (const std::size_t f : unassigned) {
        network::CanMessageSpec spec;
        spec.id = f == candidate ? id : pool[next_free++];
        spec.payload_bytes = model.frames[f].payload_bytes;
        spec.period_s = model.frames[f].period_s;
        spec.jitter_s = jitter_of(f);
        specs.push_back(spec);
      }
      for (const auto& [f, assigned_id] : assignment) {
        network::CanMessageSpec spec;
        spec.id = assigned_id;
        spec.payload_bytes = model.frames[f].payload_bytes;
        spec.period_s = model.frames[f].period_s;
        spec.jitter_s = jitter_of(f);
        specs.push_back(spec);
      }
      const std::uint32_t trial_id = id;
      bool schedulable = false;
      for (const network::CanResponseTime& response :
           network::can_response_times(specs, model.buses[bus].bit_rate_bps))
        if (response.id == trial_id) schedulable = response.schedulable;
      if (schedulable) {
        chosen = candidate;
        break;
      }
    }
    assignment[chosen] = id;
    unassigned.erase(std::find(unassigned.begin(), unassigned.end(), chosen));
    pool.resize(level);  // ids below `level` remain for the frames above
  }
  return assignment;
}

std::map<std::uint32_t, std::size_t> rm_fr_slots(const VehicleModel& model,
                                                 std::size_t bus) {
  const auto& current = model.buses[bus].fr_static_slot;
  // Period per slot-owning id; ids whose frame moved away sort last.
  std::vector<std::pair<double, std::uint32_t>> order;
  for (const auto& [id, slot] : current) {
    double period_s = std::numeric_limits<double>::infinity();
    for (const FrameModel& frame : model.frames)
      if (frame.bus == bus && frame.id == id) period_s = frame.period_s;
    order.emplace_back(period_s, id);
  }
  std::sort(order.begin(), order.end());  // period asc, ties by id asc
  std::map<std::uint32_t, std::size_t> out;
  for (std::size_t slot = 0; slot < order.size(); ++slot)
    out[order[slot].second] = slot;
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> ffd_partition_windows(
    const VehicleModel& model) {
  const core::CockpitAppModel& app = model.app;
  std::vector<std::pair<std::string, std::int64_t>> windows;
  std::int64_t total = 0;
  for (const core::PartitionModel& partition : app.partitions) {
    std::int64_t demand = 0;
    for (const core::RunnableModel& runnable : partition.runnables) {
      const std::int64_t activations =
          runnable.period_us > 0
              ? std::max<std::int64_t>(
                    1, util::ceil_div(app.major_frame_us, runnable.period_us))
              : 1;
      demand += runnable.wcet_us * activations;
    }
    const std::int64_t budget = std::max<std::int64_t>(demand, 1);
    windows.emplace_back(partition.name, budget);
    total += budget;
  }
  if (total > app.major_frame_us) return {};  // cannot fit: caller rolls back
  std::sort(windows.begin(), windows.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return windows;
}

SynthesisResult synthesize(const config::ScenarioSpec& input,
                           const SynthesisOptions& options) {
  input.validate();
  SynthesisResult result;
  result.seed = options.seed;
  result.iters = options.iters;

  // --- Phase A: structural repair along a descending load ladder ------------
  // A scenario can be architecturally infeasible at its requested load (no
  // placement/priority choice helps when a routed frame's upstream bound
  // alone exceeds its period), so the synthesizer also searches the capacity
  // axis: highest load first, stepping down until the repaired design passes
  // every check. The floor is the nominal load (or the requested one when
  // the user asked for less than nominal).
  static constexpr double kLadder[] = {1.0,  0.75, 0.6,   0.5,  0.4,  0.3, 0.25,
                                       0.2,  0.15, 0.125, 0.1,  0.075, 0.05};
  const double requested = input.network.load_scale;
  const double floor = std::min(requested, 1.0);
  std::unique_ptr<Design> best;
  double best_energy = std::numeric_limits<double>::infinity();
  double last_ls = -1.0;
  for (const double factor : kLadder) {
    const double ls = std::max(requested * factor, floor);
    if (ls == last_ls) continue;
    last_ls = ls;
    config::ScenarioSpec rung = input;
    rung.network.load_scale = ls;
    auto design = std::make_unique<Design>(repair(rung));
    const Fitness fitness = design->eval.evaluate();
    ++result.ladder_steps;
    if (energy(fitness) < best_energy) {
      best_energy = energy(fitness);
      best = std::move(design);
    }
    if (best->eval.evaluate().feasible()) break;
    if (ls == floor) break;
  }
  Design current = std::move(*best);
  if (options.cross_check) current.eval.set_cross_check(true);
  Fitness current_fitness = current.eval.evaluate();
  double current_energy = energy(current_fitness);

  config::ScenarioSpec best_spec = current.spec;
  Fitness best_fitness = current_fitness;
  best_energy = current_energy;
  pareto_insert(result.pareto, current_fitness, true);

  // --- Phase B: seeded annealing over the architecture moves ----------------
  // All RNG draws happen here on the coordinator; workers only score copies
  // into per-index slots, so the result is byte-identical for any --jobs.
  util::Rng rng(options.seed);
  campaign::WorkerPool pool(options.jobs);
  constexpr int kCandidatesPerRound = 8;
  double temperature = 1000.0;
  for (int round = 0; round < options.iters; ++round) {
    std::vector<Move> moves(kCandidatesPerRound);
    for (Move& move : moves) move = draw_move(rng, current.eval);

    struct Slot {
      Fitness fitness;
      std::uint64_t passes = 0;
      bool valid = false;
    };
    std::vector<Slot> slots(moves.size());
    pool.run(static_cast<int>(moves.size()), [&](int i) {
      try {
        FitnessEvaluator trial = current.eval;  // copy-evaluate, master untouched
        const std::uint64_t before = trial.bus_pass_evals();
        apply_move(trial, nullptr, moves[static_cast<std::size_t>(i)]);
        slots[static_cast<std::size_t>(i)].fitness = trial.evaluate();
        slots[static_cast<std::size_t>(i)].passes = trial.bus_pass_evals() - before;
        slots[static_cast<std::size_t>(i)].valid = true;
      } catch (...) {
        slots[static_cast<std::size_t>(i)].valid = false;
      }
    });

    int chosen = -1;
    double chosen_energy = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].valid) continue;
      result.moves_evaluated += 1;
      result.bus_pass_evals += slots[i].passes;
      pareto_insert(result.pareto, slots[i].fitness, false);
      const double e = energy(slots[i].fitness);
      if (e < chosen_energy) {
        chosen_energy = e;
        chosen = static_cast<int>(i);
      }
    }

    // Fixed draw count per round regardless of the branch taken.
    const double accept_draw = rng.uniform();
    if (chosen >= 0 && moves[static_cast<std::size_t>(chosen)].kind != Move::Kind::kNone) {
      const double delta = chosen_energy - current_energy;
      if (delta <= 0.0 || accept_draw < std::exp(-delta / temperature)) {
        apply_move(current.eval, &current.spec, moves[static_cast<std::size_t>(chosen)]);
        current_fitness = current.eval.evaluate();
        current_energy = energy(current_fitness);
        ++result.moves_accepted;
        pareto_insert(result.pareto, current_fitness, true);
        if (current_energy < best_energy) {
          best_energy = current_energy;
          best_fitness = current_fitness;
          best_spec = current.spec;
        }
      }
    }
    temperature *= 0.97;
  }

  result.spec = std::move(best_spec);
  result.fitness = best_fitness;
  result.feasible = best_fitness.feasible();
  result.load_scale = result.spec.network.load_scale;
  result.bus_pass_evals += current.eval.bus_pass_evals();

  std::sort(result.pareto.begin(), result.pareto.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.fitness.worst_slack_us != b.fitness.worst_slack_us)
                return a.fitness.worst_slack_us > b.fitness.worst_slack_us;
              if (a.fitness.peak_busload != b.fitness.peak_busload)
                return a.fitness.peak_busload < b.fitness.peak_busload;
              return a.fitness.deployment < b.fitness.deployment;
            });

  // --- The E19 contract: the emitted spec IS the evaluated design -----------
  // Re-extract the synthesized scenario from scratch and require the fresh
  // analysis to agree with the search's bookkeeping; any divergence means
  // the spec/evaluator mirror lied and the artifact cannot be trusted.
  FitnessEvaluator fresh(analysis::extract_model(result.spec));
  if (!(fresh.evaluate() == result.fitness))
    throw std::logic_error(
        "synthesize: spec/evaluator mirror diverged — re-extracted fitness "
        "differs from the searched design");
  return result;
}

void write_synthesis_json(const SynthesisResult& result, std::ostream& out) {
  out << "{\n";
  out << "  \"scenario\": \"" << json_escape(result.spec.name) << "\",\n";
  out << "  \"seed\": " << result.seed << ",\n";
  out << "  \"iters\": " << result.iters << ",\n";
  out << "  \"feasible\": " << (result.feasible ? "true" : "false") << ",\n";
  out << "  \"load_scale\": " << config::format_double(result.load_scale) << ",\n";
  out << "  \"can_bit_rate\": " << config::format_double(result.spec.network.can_bit_rate)
      << ",\n";
  out << "  \"ladder_steps\": " << result.ladder_steps << ",\n";
  out << "  \"moves_evaluated\": " << result.moves_evaluated << ",\n";
  out << "  \"moves_accepted\": " << result.moves_accepted << ",\n";
  out << "  \"bus_pass_evals\": " << result.bus_pass_evals << ",\n";
  out << "  \"fitness\": ";
  write_fitness_json(result.fitness, out);
  out << ",\n";
  out << "  \"pareto\": [";
  for (std::size_t i = 0; i < result.pareto.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ");
    out << "{\"accepted\": " << (result.pareto[i].accepted ? "true" : "false")
        << ", \"fitness\": ";
    write_fitness_json(result.pareto[i].fitness, out);
    out << "}";
  }
  out << (result.pareto.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

std::string synthesis_json(const SynthesisResult& result) {
  std::ostringstream out;
  write_synthesis_json(result, out);
  return out.str();
}

}  // namespace ev::synthesis
