/// \file fpga.h
/// FPGA computing platform with partial reconfiguration ([25],[26]): the
/// fabric hosts isolated modules in reconfigurable regions; a fault in one
/// region is recovered by reconfiguring that region alone while a redundant
/// low-spec mode covers the gap. Compared against full-device
/// reconfiguration, spare-ECU failover, and dual-hardware redundancy in
/// experiment E12.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ev/util/rng.h"

namespace ev::ecu {

/// How a faulted compute module is brought back.
enum class RecoveryStrategy {
  kPartialReconfiguration,  ///< Reconfigure only the faulty region.
  kFullReconfiguration,     ///< Reprogram the whole device (all modules stop).
  kEcuFailover,             ///< Reboot the function on a spare ECU.
  kDualHardware,            ///< Hot standby: instant switchover, 2x hardware.
};

/// Name for reports.
[[nodiscard]] std::string to_string(RecoveryStrategy strategy);

/// Fabric and environment parameters.
struct FpgaConfig {
  std::size_t region_count = 6;        ///< Reconfigurable regions (one module each).
  double region_bitstream_kb = 300.0;  ///< Partial bitstream per region.
  double config_throughput_kb_per_ms = 400.0;  ///< ICAP-class configuration port.
  double full_bitstream_kb = 3800.0;   ///< Whole-device bitstream.
  double ecu_reboot_s = 2.5;           ///< Spare ECU boot + application start.
  double switchover_s = 0.2e-3;        ///< Hot-standby switch + state sync.
  double fault_rate_per_hour = 2.0;    ///< Transient (SEU-class) faults, whole device.
};

/// Outcome of a mission simulation.
struct RecoveryReport {
  RecoveryStrategy strategy{};
  std::size_t faults = 0;
  double downtime_s = 0.0;          ///< Sum of per-fault outage of the affected function.
  double system_downtime_s = 0.0;   ///< Outage of *unaffected* functions (isolation).
  double availability = 1.0;        ///< 1 - affected downtime / mission.
  double hardware_overhead = 0.0;   ///< Extra hardware vs. a single plain device.
};

/// Per-fault recovery time of \p strategy under \p config [s].
[[nodiscard]] double recovery_time_s(const FpgaConfig& config, RecoveryStrategy strategy);

/// Simulates \p mission_s of operation with Poisson faults and returns the
/// availability ledger for \p strategy.
[[nodiscard]] RecoveryReport simulate_mission(const FpgaConfig& config,
                                              RecoveryStrategy strategy, double mission_s,
                                              util::Rng& rng);

}  // namespace ev::ecu
