/// \file multicore.h
/// Multi-core ECU model (Section 3.2): partitioned assignment of
/// time-triggered task sets onto cores, with a shared-resource interference
/// model (memory bus/cache contention inflates WCETs as more cores are
/// active). Used by experiment E13 to measure how many functions one
/// consolidated ECU hosts as the core count grows — and where interference
/// saturates the gain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ev/scheduling/response_time.h"

namespace ev::ecu {

/// A hosted software function (maps to one task here).
struct HostedFunction {
  std::string name;
  std::int64_t period_us = 10000;
  std::int64_t wcet_us = 500;  ///< Isolated (single-core) WCET.
};

/// Multi-core platform parameters.
struct MulticoreConfig {
  std::size_t core_count = 4;
  /// WCET inflation per *additional* active core, from shared memory/bus
  /// contention: effective = isolated * (1 + factor * (active_cores - 1)).
  double interference_factor = 0.08;
  /// Maximum admissible per-core utilization (time-triggered, non-preemptive
  /// tables do not pack to 100%).
  double utilization_bound = 0.8;
};

/// Result of partitioned assignment.
struct PlacementResult {
  bool all_placed = false;
  std::vector<int> core_of;          ///< Core index per function, -1 = rejected.
  std::vector<double> core_utilization;  ///< Effective utilization per core.
  std::size_t placed_count = 0;
};

/// Partitioned first-fit-decreasing placement under the interference model.
class MulticoreEcu {
 public:
  explicit MulticoreEcu(MulticoreConfig config = {}) noexcept : config_(config) {}

  /// Attempts to place every function; interference is computed against the
  /// number of cores that end up non-empty (fixed point: placement is
  /// re-validated at the final interference level).
  [[nodiscard]] PlacementResult place(const std::vector<HostedFunction>& functions) const;

  /// Greedy capacity probe: how many of \p functions (taken in order) fit.
  [[nodiscard]] std::size_t capacity(const std::vector<HostedFunction>& functions) const;

  [[nodiscard]] const MulticoreConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double effective_utilization(const HostedFunction& f,
                                             std::size_t active_cores) const noexcept;

  MulticoreConfig config_;
};

}  // namespace ev::ecu
