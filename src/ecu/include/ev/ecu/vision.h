/// \file vision.h
/// Camera-based pedestrian recognition workload ([23]): the safety function
/// the paper motivates for near-silent EVs. A HOG-style detection pipeline
/// (gradients -> cell histograms -> sliding-window scoring) runs either
/// scalar or on a data-parallel accelerator model (thread pool standing in
/// for the GPU's hardware parallelism). Results are bit-identical across
/// both paths; experiment E10 measures the speed-up.
#pragma once

#include <cstdint>
#include <vector>

#include "ev/util/rng.h"

namespace ev::ecu {

/// 8-bit grayscale image.
struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  ///< Row-major, width*height entries.

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
};

/// A detection: window position and matching score.
struct Detection {
  std::size_t x = 0;
  std::size_t y = 0;
  double score = 0.0;
};

/// Renders a synthetic street scene of the given size with \p pedestrians
/// bright vertical figures over textured background (deterministic in rng).
[[nodiscard]] Image generate_scene(std::size_t width, std::size_t height,
                                   std::size_t pedestrians, util::Rng& rng);

/// Detection parameters.
struct DetectorConfig {
  std::size_t window_w = 16;   ///< Detection window size in pixels.
  std::size_t window_h = 32;
  std::size_t stride = 8;      ///< Window step.
  double threshold = 0.55;     ///< Score threshold for reporting.
};

/// Scalar reference implementation.
[[nodiscard]] std::vector<Detection> detect_pedestrians_scalar(const Image& image,
                                                               const DetectorConfig& config);

/// Data-parallel implementation: rows of windows are processed concurrently
/// by \p workers threads (the accelerator model). Produces exactly the same
/// detections as the scalar path.
[[nodiscard]] std::vector<Detection> detect_pedestrians_parallel(
    const Image& image, const DetectorConfig& config, std::size_t workers);

}  // namespace ev::ecu
