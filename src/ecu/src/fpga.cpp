#include "ev/ecu/fpga.h"

namespace ev::ecu {

std::string to_string(RecoveryStrategy strategy) {
  switch (strategy) {
    case RecoveryStrategy::kPartialReconfiguration: return "partial-reconfig";
    case RecoveryStrategy::kFullReconfiguration: return "full-reconfig";
    case RecoveryStrategy::kEcuFailover: return "ECU-failover";
    case RecoveryStrategy::kDualHardware: return "dual-hardware";
  }
  return "?";
}

double recovery_time_s(const FpgaConfig& config, RecoveryStrategy strategy) {
  switch (strategy) {
    case RecoveryStrategy::kPartialReconfiguration:
      return config.region_bitstream_kb / config.config_throughput_kb_per_ms / 1000.0;
    case RecoveryStrategy::kFullReconfiguration:
      return config.full_bitstream_kb / config.config_throughput_kb_per_ms / 1000.0;
    case RecoveryStrategy::kEcuFailover:
      return config.ecu_reboot_s;
    case RecoveryStrategy::kDualHardware:
      return config.switchover_s;
  }
  return 0.0;
}

RecoveryReport simulate_mission(const FpgaConfig& config, RecoveryStrategy strategy,
                                double mission_s, util::Rng& rng) {
  RecoveryReport report;
  report.strategy = strategy;
  const double rate_per_s = config.fault_rate_per_hour / 3600.0;
  const double per_fault = recovery_time_s(config, strategy);

  double t = rate_per_s > 0.0 ? rng.exponential(rate_per_s) : mission_s + 1.0;
  while (t < mission_s) {
    ++report.faults;
    report.downtime_s += per_fault;
    // Isolation: full reconfiguration and ECU failover take down every
    // module; partial reconfiguration and hot standby keep the others alive.
    if (strategy == RecoveryStrategy::kFullReconfiguration ||
        strategy == RecoveryStrategy::kEcuFailover)
      report.system_downtime_s +=
          per_fault * static_cast<double>(config.region_count - 1);
    t += rng.exponential(rate_per_s);
  }

  report.availability = mission_s > 0.0 ? 1.0 - report.downtime_s / mission_s : 1.0;
  switch (strategy) {
    case RecoveryStrategy::kDualHardware: report.hardware_overhead = 1.0; break;
    case RecoveryStrategy::kEcuFailover: report.hardware_overhead = 1.0; break;
    case RecoveryStrategy::kPartialReconfiguration:
      // One spare low-spec region hosting the degraded mode.
      report.hardware_overhead = 1.0 / static_cast<double>(config.region_count);
      break;
    case RecoveryStrategy::kFullReconfiguration: report.hardware_overhead = 0.0; break;
  }
  return report;
}

}  // namespace ev::ecu
