#include "ev/ecu/vision.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace ev::ecu {

Image generate_scene(std::size_t width, std::size_t height, std::size_t pedestrians,
                     util::Rng& rng) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);
  // Textured road/background.
  for (auto& p : img.pixels) p = static_cast<std::uint8_t>(70 + rng.uniform_int(0, 30));
  // Bright vertical figures with a head blob (crude but edge-rich).
  for (std::size_t k = 0; k < pedestrians; ++k) {
    const auto cx = static_cast<std::size_t>(rng.uniform_int(10, static_cast<std::int64_t>(width) - 11));
    const auto top = static_cast<std::size_t>(rng.uniform_int(5, std::max<std::int64_t>(6, static_cast<std::int64_t>(height) - 40)));
    const std::size_t body_h = 28;
    for (std::size_t y = top; y < std::min(top + body_h, height); ++y) {
      const std::size_t half = (y < top + 6) ? 3 : 2;  // head wider than body
      for (std::size_t x = cx > half ? cx - half : 0; x <= std::min(cx + half, width - 1); ++x)
        img.pixels[y * width + x] = static_cast<std::uint8_t>(200 + rng.uniform_int(0, 40));
    }
  }
  return img;
}

namespace {

/// Gradient-energy score of one window: fraction of strong vertical edges,
/// the dominant feature of an upright figure.
double window_score(const Image& img, std::size_t wx, std::size_t wy,
                    const DetectorConfig& cfg) {
  double vertical_edges = 0.0;
  double total = 0.0;
  for (std::size_t y = wy + 1; y + 1 < wy + cfg.window_h && y + 1 < img.height; ++y) {
    for (std::size_t x = wx + 1; x + 1 < wx + cfg.window_w && x + 1 < img.width; ++x) {
      const double gx = static_cast<double>(img.at(x + 1, y)) - img.at(x - 1, y);
      const double gy = static_cast<double>(img.at(x, y + 1)) - img.at(x, y - 1);
      const double mag = std::sqrt(gx * gx + gy * gy);
      total += 1.0;
      // A vertical contour has a strong horizontal gradient.
      if (mag > 40.0 && std::fabs(gx) > std::fabs(gy)) vertical_edges += 1.0;
    }
  }
  return total > 0.0 ? vertical_edges / total * 8.0 : 0.0;  // scaled to ~[0, 1.5]
}

void scan_rows(const Image& img, const DetectorConfig& cfg, std::size_t row_begin,
               std::size_t row_end, std::vector<Detection>* out) {
  for (std::size_t wy = row_begin; wy < row_end; wy += cfg.stride) {
    if (wy + cfg.window_h > img.height) break;
    for (std::size_t wx = 0; wx + cfg.window_w <= img.width; wx += cfg.stride) {
      const double score = window_score(img, wx, wy, cfg);
      if (score >= cfg.threshold) out->push_back(Detection{wx, wy, score});
    }
  }
}

}  // namespace

std::vector<Detection> detect_pedestrians_scalar(const Image& image,
                                                 const DetectorConfig& config) {
  std::vector<Detection> out;
  scan_rows(image, config, 0, image.height, &out);
  return out;
}

std::vector<Detection> detect_pedestrians_parallel(const Image& image,
                                                   const DetectorConfig& config,
                                                   std::size_t workers) {
  if (workers <= 1) return detect_pedestrians_scalar(image, config);
  // Split the window-row space into contiguous stride-aligned chunks.
  const std::size_t total_rows =
      image.height >= config.window_h ? (image.height - config.window_h) / config.stride + 1
                                      : 0;
  const std::size_t chunk = (total_rows + workers - 1) / workers;
  std::vector<std::vector<Detection>> partial(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t first_row = w * chunk;
    const std::size_t last_row = std::min(total_rows, first_row + chunk);
    threads.emplace_back([&, w, first_row, last_row] {
      scan_rows(image, config, first_row * config.stride, last_row * config.stride,
                &partial[w]);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Detection> out;
  for (auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace ev::ecu
