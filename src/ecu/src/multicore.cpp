#include "ev/ecu/multicore.h"

#include <algorithm>
#include <numeric>

namespace ev::ecu {

double MulticoreEcu::effective_utilization(const HostedFunction& f,
                                           std::size_t active_cores) const noexcept {
  const double inflate =
      1.0 + config_.interference_factor * static_cast<double>(active_cores - 1);
  return static_cast<double>(f.wcet_us) * inflate / static_cast<double>(f.period_us);
}

PlacementResult MulticoreEcu::place(const std::vector<HostedFunction>& functions) const {
  PlacementResult result;
  result.core_of.assign(functions.size(), -1);
  result.core_utilization.assign(config_.core_count, 0.0);

  // Sort by isolated utilization, largest first (first-fit decreasing).
  std::vector<std::size_t> order(functions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ua = static_cast<double>(functions[a].wcet_us) / static_cast<double>(functions[a].period_us);
    const double ub = static_cast<double>(functions[b].wcet_us) / static_cast<double>(functions[b].period_us);
    return ua > ub;
  });

  // Pessimistic fixed point: assume all cores active for interference (the
  // consolidated steady state), place, then report at that level.
  const std::size_t active = config_.core_count;
  for (std::size_t idx : order) {
    const double u = effective_utilization(functions[idx], active);
    int best = -1;
    for (std::size_t c = 0; c < config_.core_count; ++c) {
      if (result.core_utilization[c] + u <= config_.utilization_bound) {
        best = static_cast<int>(c);
        break;
      }
    }
    if (best >= 0) {
      result.core_of[idx] = best;
      result.core_utilization[static_cast<std::size_t>(best)] += u;
      ++result.placed_count;
    }
  }
  result.all_placed = result.placed_count == functions.size();
  return result;
}

std::size_t MulticoreEcu::capacity(const std::vector<HostedFunction>& functions) const {
  std::vector<double> core_u(config_.core_count, 0.0);
  const std::size_t active = config_.core_count;
  std::size_t placed = 0;
  for (const HostedFunction& f : functions) {
    const double u = effective_utilization(f, active);
    bool fitted = false;
    for (double& cu : core_u) {
      if (cu + u <= config_.utilization_bound) {
        cu += u;
        fitted = true;
        break;
      }
    }
    if (!fitted) break;  // in-order capacity probe stops at the first reject
    ++placed;
  }
  return placed;
}

}  // namespace ev::ecu
