#include "ev/bywire/brake_system.h"

#include <cmath>

namespace ev::bywire {

BrakeMissionReport simulate_brake_mission(const BrakeSystemConfig& config, double hours,
                                          util::Rng& rng) {
  RedundantChannelSet channels =
      config.diverse ? make_diverse_redundancy(config.replicas, config.random_fault_rate,
                                               config.systematic_fault_rate)
                     : make_identical_redundancy(config.replicas, config.random_fault_rate,
                                                 config.systematic_fault_rate);

  const auto total_cycles =
      static_cast<std::uint64_t>(hours * 3600.0 * config.cycle_rate_hz);
  BrakeMissionReport report;

  double pedal = 0.0;
  for (std::uint64_t k = 0; k < total_cycles; ++k) {
    // Stop-and-go pedal profile: occasional braking episodes.
    if (pedal <= 0.0 && rng.bernoulli(0.002)) pedal = rng.uniform(0.2, 1.0);
    if (pedal > 0.0) pedal = std::max(0.0, pedal - 0.01);

    // Duplicated pedal sensing: both sensors must fail in the same cycle to
    // corrupt the demand; model as a tiny squared probability folded in.
    if (rng.bernoulli(config.sensor_fault_rate * config.sensor_fault_rate)) pedal = 1.0;

    (void)channels.actuate(pedal, rng);
  }

  report.cycles = channels.cycles();
  report.loss_of_function_cycles = channels.invalid_cycles();
  report.wrong_output_cycles = channels.undetected_wrong_cycles();
  report.availability =
      1.0 - static_cast<double>(report.loss_of_function_cycles) /
                static_cast<double>(std::max<std::uint64_t>(report.cycles, 1));
  report.dangerous_rate_per_hour =
      static_cast<double>(report.wrong_output_cycles) / std::max(hours, 1e-9);
  return report;
}

}  // namespace ev::bywire
