#include "ev/bywire/redundancy.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace ev::bywire {

RedundantChannelSet::RedundantChannelSet(std::vector<ChannelConfig> channels,
                                         double systematic_fault_rate,
                                         double agreement_tolerance)
    : channels_(std::move(channels)),
      systematic_fault_rate_(systematic_fault_rate),
      agreement_tolerance_(agreement_tolerance) {
  if (channels_.empty())
    throw std::invalid_argument("RedundantChannelSet: need at least one channel");
  faulted_.assign(channels_.size(), false);
  int max_impl = 0;
  for (const ChannelConfig& c : channels_) max_impl = std::max(max_impl, c.implementation_id);
  impl_faulted_.assign(static_cast<std::size_t>(max_impl) + 1, false);
}

std::size_t RedundantChannelSet::implementation_count() const {
  std::set<int> ids;
  for (const ChannelConfig& c : channels_) ids.insert(c.implementation_id);
  return ids.size();
}

void RedundantChannelSet::inject_systematic_fault(int implementation_id) {
  if (implementation_id >= 0 &&
      static_cast<std::size_t>(implementation_id) < impl_faulted_.size())
    impl_faulted_[static_cast<std::size_t>(implementation_id)] = true;
}

void RedundantChannelSet::inject_random_fault(std::size_t index) {
  if (index >= faulted_.size())
    throw std::out_of_range("RedundantChannelSet: replica index " + std::to_string(index) +
                            " >= channel count " + std::to_string(faulted_.size()));
  faulted_[index] = true;
}

void RedundantChannelSet::repair() {
  std::fill(faulted_.begin(), faulted_.end(), false);
  std::fill(impl_faulted_.begin(), impl_faulted_.end(), false);
}

VoteResult RedundantChannelSet::actuate(double demand, util::Rng& rng) {
  ++cycles_;
  // Spontaneous fault arrivals this cycle.
  for (std::size_t i = 0; i < channels_.size(); ++i)
    if (!faulted_[i] && rng.bernoulli(channels_[i].random_fault_rate)) faulted_[i] = true;
  if (systematic_fault_rate_ > 0.0 && rng.bernoulli(systematic_fault_rate_)) {
    // A latent software defect triggers: it hits one implementation.
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(impl_faulted_.size()) - 1));
    impl_faulted_[victim] = true;
  }

  // Channel outputs.
  std::vector<double> outputs;
  outputs.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const bool bad =
        faulted_[i] || impl_faulted_[static_cast<std::size_t>(channels_[i].implementation_id)];
    outputs.push_back(bad ? demand + channels_[i].fault_output_error : demand);
  }

  // Median voter with agreement window.
  std::vector<double> sorted = outputs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  std::size_t agreeing = 0;
  for (double o : outputs)
    if (std::fabs(o - median) <= agreement_tolerance_) ++agreeing;

  VoteResult result;
  result.output = median;
  result.disagreeing = channels_.size() - agreeing;
  result.valid = agreeing * 2 > channels_.size();  // strict majority agrees
  const bool median_wrong = std::fabs(median - demand) > agreement_tolerance_;
  result.undetected_wrong = result.valid && median_wrong;
  if (!result.valid) ++invalid_;
  if (result.undetected_wrong) ++undetected_;
  return result;
}

RedundantChannelSet make_identical_redundancy(std::size_t replicas,
                                              double random_fault_rate,
                                              double systematic_fault_rate) {
  std::vector<ChannelConfig> channels;
  for (std::size_t i = 0; i < replicas; ++i)
    channels.push_back(ChannelConfig{0, random_fault_rate, 1.0});
  return RedundantChannelSet(std::move(channels), systematic_fault_rate);
}

RedundantChannelSet make_diverse_redundancy(std::size_t replicas,
                                            double random_fault_rate,
                                            double systematic_fault_rate) {
  std::vector<ChannelConfig> channels;
  for (std::size_t i = 0; i < replicas; ++i) {
    // Diverse implementations fail *differently*: distinct wrong outputs,
    // so two independently failed channels disagree with each other and the
    // voter detects the situation instead of confirming a common value.
    const double error = 0.5 + 0.25 * static_cast<double>(i);
    channels.push_back(ChannelConfig{static_cast<int>(i), random_fault_rate, error});
  }
  return RedundantChannelSet(std::move(channels), systematic_fault_rate);
}

}  // namespace ev::bywire
