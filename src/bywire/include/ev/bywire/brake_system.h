/// \file brake_system.h
/// Brake-by-wire end-to-end channel: pedal sensors -> redundant control
/// channels -> voter -> actuator, with fail-operational accounting over a
/// mission. The paper: "since drive-by-wire is highly safety-critical, it
/// needs to be designed in a fault-tolerant fashion, introducing a certain
/// amount of redundancy in the control system" — and duplication alone is
/// not enough against systematic faults. This model quantifies both points.
#pragma once

#include <cstdint>

#include "ev/bywire/redundancy.h"

namespace ev::bywire {

/// System design under evaluation.
struct BrakeSystemConfig {
  std::size_t replicas = 3;          ///< Redundant control channels.
  bool diverse = true;               ///< Diverse vs identical implementations.
  double random_fault_rate = 1e-7;   ///< Per channel per cycle.
  double systematic_fault_rate = 1e-8;  ///< Per cycle, hits one implementation.
  /// Duplicated pedal sensors: probability one sensor fails per cycle.
  double sensor_fault_rate = 1e-8;
  double cycle_rate_hz = 200.0;      ///< Brake control cycle rate.
};

/// Mission outcome.
struct BrakeMissionReport {
  std::uint64_t cycles = 0;
  std::uint64_t loss_of_function_cycles = 0;  ///< No valid majority (detected).
  std::uint64_t wrong_output_cycles = 0;      ///< Undetected wrong command (dangerous).
  double availability = 1.0;  ///< 1 - loss/total.
  /// Probability per hour of at least one dangerous (undetected-wrong) cycle,
  /// estimated from the mission.
  double dangerous_rate_per_hour = 0.0;
};

/// Simulates \p hours of braking at the configured cycle rate with pedal
/// demands drawn from a stop-and-go profile. Returns the fail-operational
/// statistics for the design.
[[nodiscard]] BrakeMissionReport simulate_brake_mission(const BrakeSystemConfig& config,
                                                        double hours, util::Rng& rng);

}  // namespace ev::bywire
