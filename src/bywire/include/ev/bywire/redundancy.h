/// \file redundancy.h
/// Fault-tolerant drive-by-wire channels (paper Section 2, "Drive-by-wire",
/// ref [10]): redundant computation channels with majority voting. The
/// paper's key observation is that *identical* replicas do not protect
/// against systematic software faults — "functions may have to be
/// implemented by different programmers or at least run on non-identical
/// hardware". The channel model therefore distinguishes *random* hardware
/// faults (independent per replica) from *systematic* software faults
/// (common-mode across replicas sharing an implementation).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ev/util/rng.h"

namespace ev::bywire {

/// Failure profile of one replica channel.
struct ChannelConfig {
  /// Which software implementation the replica runs; replicas with equal
  /// ids fail together on a systematic fault.
  int implementation_id = 0;
  /// Random hardware fault probability per actuation cycle.
  double random_fault_rate = 1e-6;
  /// A failed channel produces this output error (fraction of full scale).
  double fault_output_error = 1.0;
};

/// Result of one voted actuation.
struct VoteResult {
  double output = 0.0;          ///< The voted command.
  bool valid = false;           ///< A majority agreed.
  bool undetected_wrong = false;  ///< Majority agreed on a WRONG value.
  std::size_t disagreeing = 0;  ///< Channels voted out this cycle.
};

/// N-channel redundant computation with median/majority voting.
///
/// Each actuate() cycle every healthy channel computes `demand` exactly;
/// faulted channels output demand +- fault_output_error. The voter selects
/// the median and flags validity by the agreement span. Faults are injected
/// per-cycle from the configured rates; a systematic fault event (injected
/// by the caller or drawn from `systematic_fault_rate`) simultaneously
/// corrupts every replica of one implementation.
class RedundantChannelSet {
 public:
  /// \p channels describes the replicas; \p agreement_tolerance is the
  /// maximum spread (fraction of full scale) treated as agreement.
  RedundantChannelSet(std::vector<ChannelConfig> channels,
                      double systematic_fault_rate = 1e-7,
                      double agreement_tolerance = 0.05);

  /// One actuation cycle at demand in [0,1]; randomness from \p rng.
  VoteResult actuate(double demand, util::Rng& rng);

  /// Injects a permanent systematic fault into implementation \p id (all
  /// its replicas start producing wrong outputs).
  void inject_systematic_fault(int implementation_id);

  /// Injects a permanent random (hardware) fault into replica \p index.
  void inject_random_fault(std::size_t index);

  /// Clears all injected faults.
  void repair();

  /// Channels in the set.
  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }
  /// Distinct implementations (diversity degree).
  [[nodiscard]] std::size_t implementation_count() const;
  /// Cycles executed so far.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  /// Cycles with no valid majority (fail-silent loss of function).
  [[nodiscard]] std::uint64_t invalid_cycles() const noexcept { return invalid_; }
  /// Cycles where a wrong value won the vote (the dangerous failure mode).
  [[nodiscard]] std::uint64_t undetected_wrong_cycles() const noexcept {
    return undetected_;
  }

 private:
  std::vector<ChannelConfig> channels_;
  std::vector<bool> faulted_;           ///< Permanent per-replica fault state.
  std::vector<bool> impl_faulted_;      ///< Permanent per-implementation fault.
  double systematic_fault_rate_;
  double agreement_tolerance_;
  std::uint64_t cycles_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t undetected_ = 0;
};

/// Convenience factories for the two designs the paper contrasts.
/// \p replicas identical copies of one implementation:
[[nodiscard]] RedundantChannelSet make_identical_redundancy(std::size_t replicas,
                                                            double random_fault_rate,
                                                            double systematic_fault_rate);
/// \p replicas, each a diverse implementation:
[[nodiscard]] RedundantChannelSet make_diverse_redundancy(std::size_t replicas,
                                                          double random_fault_rate,
                                                          double systematic_fault_rate);

}  // namespace ev::bywire
