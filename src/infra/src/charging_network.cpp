#include "ev/infra/charging_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ev::infra {

double distance_km(const Position& a, const Position& b) noexcept {
  return std::hypot(a.x_km - b.x_km, a.y_km - b.y_km);
}

std::string to_string(AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kNearestStation: return "nearest-station";
    case AssignmentPolicy::kCoordinated: return "coordinated";
  }
  return "?";
}

ChargingNetwork::ChargingNetwork(const FleetConfig& config) : config_(config) {
  util::Rng rng(config.seed);
  stations_.reserve(config.station_count);
  for (std::size_t s = 0; s < config.station_count; ++s) {
    Station st;
    st.position = {rng.uniform(0.0, config.city_size_km),
                   rng.uniform(0.0, config.city_size_km)};
    st.slots = 2;
    st.power_kw = 50.0;
    stations_.push_back(st);
  }
  fleet_.reserve(config.vehicle_count);
  for (std::size_t v = 0; v < config.vehicle_count; ++v) {
    FleetVehicle veh;
    veh.position = {rng.uniform(0.0, config.city_size_km),
                    rng.uniform(0.0, config.city_size_km)};
    veh.destination = {rng.uniform(0.0, config.city_size_km),
                       rng.uniform(0.0, config.city_size_km)};
    veh.soc = rng.uniform(0.3, 0.9);
    fleet_.push_back(veh);
  }
}

namespace {

/// Runtime state per vehicle.
enum class Mode { kDriving, kToStation, kQueued, kCharging, kStranded };

struct VehicleState {
  FleetVehicle v;
  Mode mode = Mode::kDriving;
  std::size_t station = 0;      ///< Target/occupied station when relevant.
  double wait_min = 0.0;        ///< Accumulated queue wait for this visit.
  double detour_km = 0.0;       ///< Extra distance of the current charge trip.
  std::size_t trips = 0;
};

/// Moves \p pos toward \p target by \p step_km; returns remaining distance.
double advance(Position* pos, const Position& target, double step_km) {
  const double d = distance_km(*pos, target);
  if (d <= step_km || d <= 1e-9) {
    *pos = target;
    return 0.0;
  }
  const double f = step_km / d;
  pos->x_km += (target.x_km - pos->x_km) * f;
  pos->y_km += (target.y_km - pos->y_km) * f;
  return d - step_km;
}

}  // namespace

FleetReport ChargingNetwork::run(AssignmentPolicy policy, double v2g_request_kw) {
  util::Rng rng(config_.seed + 1);
  FleetReport report;
  report.policy = policy;

  std::vector<VehicleState> vehicles;
  vehicles.reserve(fleet_.size());
  for (const FleetVehicle& v : fleet_) vehicles.push_back(VehicleState{v});
  std::vector<std::size_t> occupied(stations_.size(), 0);

  const double dt_h = config_.dt_s / 3600.0;
  const auto steps = static_cast<std::size_t>(config_.sim_hours * 3600.0 / config_.dt_s);
  double busy_slot_steps = 0.0;
  double total_slot_steps = 0.0;
  std::vector<double> waits_min;
  std::vector<double> detours_km;

  auto pick_station = [&](const VehicleState& vs) -> std::size_t {
    std::size_t best = 0;
    double best_cost = std::numeric_limits<double>::max();
    for (std::size_t s = 0; s < stations_.size(); ++s) {
      const double dist = distance_km(vs.v.position, stations_[s].position);
      double cost = dist;
      if (policy == AssignmentPolicy::kCoordinated) {
        // The information system knows queue lengths and adds the expected
        // wait converted into equivalent driving distance.
        const double backlog =
            occupied[s] > stations_[s].slots ? 0.0 : 0.0;  // slots tracked below
        (void)backlog;
        double queued_here = 0.0;
        for (const VehicleState& other : vehicles)
          if ((other.mode == Mode::kQueued || other.mode == Mode::kToStation) &&
              other.station == s)
            queued_here += 1.0;
        const double in_service = static_cast<double>(occupied[s]);
        const double expected_wait_h =
            std::max(0.0, in_service + queued_here - static_cast<double>(stations_[s].slots)+ 1.0) *
            0.4;  // ~0.4 h mean service time
        cost = dist + expected_wait_h * vs.v.speed_kmh;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = s;
      }
    }
    return best;
  };

  for (std::size_t step = 0; step < steps; ++step) {
    total_slot_steps += static_cast<double>(stations_.size() * 2);
    for (std::size_t s = 0; s < stations_.size(); ++s)
      busy_slot_steps += static_cast<double>(occupied[s]);

    // V2G: plugged-and-full vehicles serve the grid request round-robin.
    if (v2g_request_kw > 0.0) {
      double remaining_kw = v2g_request_kw;
      for (VehicleState& vs : vehicles) {
        if (remaining_kw <= 0.0) break;
        if (vs.mode != Mode::kCharging) continue;
        if (vs.v.soc <= config_.v2g_reserve_soc) continue;
        const double feed_kw = std::min(remaining_kw, stations_[vs.station].power_kw);
        vs.v.soc -= feed_kw * dt_h / vs.v.battery_kwh;
        report.v2g_energy_kwh += feed_kw * dt_h;
        remaining_kw -= feed_kw;
      }
    }

    for (VehicleState& vs : vehicles) {
      const double step_km = vs.v.speed_kmh * dt_h;
      switch (vs.mode) {
        case Mode::kStranded:
          break;
        case Mode::kDriving: {
          const double before = distance_km(vs.v.position, vs.v.destination);
          (void)before;
          const double remaining = advance(&vs.v.position, vs.v.destination, step_km);
          vs.v.soc -= step_km * vs.v.consumption_kwh_per_km / vs.v.battery_kwh;
          if (vs.v.soc <= 0.0) {
            vs.mode = Mode::kStranded;
            ++report.stranded;
            break;
          }
          if (remaining <= 1e-9) {
            ++vs.trips;
            ++report.trips_completed;
            // New destination: the fleet keeps moving all day.
            vs.v.destination = {rng.uniform(0.0, config_.city_size_km),
                                rng.uniform(0.0, config_.city_size_km)};
          } else if (vs.v.soc < config_.charge_threshold) {
            vs.station = pick_station(vs);
            vs.detour_km = distance_km(vs.v.position, stations_[vs.station].position);
            vs.wait_min = 0.0;
            vs.mode = Mode::kToStation;
          }
          break;
        }
        case Mode::kToStation: {
          const double remaining =
              advance(&vs.v.position, stations_[vs.station].position, step_km);
          vs.v.soc -= step_km * vs.v.consumption_kwh_per_km / vs.v.battery_kwh;
          if (vs.v.soc <= 0.0) {
            vs.mode = Mode::kStranded;
            ++report.stranded;
            break;
          }
          if (remaining <= 1e-9) vs.mode = Mode::kQueued;
          break;
        }
        case Mode::kQueued: {
          if (occupied[vs.station] < stations_[vs.station].slots) {
            ++occupied[vs.station];
            vs.mode = Mode::kCharging;
          } else {
            vs.wait_min += config_.dt_s / 60.0;
          }
          break;
        }
        case Mode::kCharging: {
          vs.v.soc += stations_[vs.station].power_kw * dt_h / vs.v.battery_kwh;
          if (vs.v.soc >= config_.charge_target) {
            vs.v.soc = config_.charge_target;
            --occupied[vs.station];
            waits_min.push_back(vs.wait_min);
            detours_km.push_back(vs.detour_km);
            vs.mode = Mode::kDriving;
          }
          break;
        }
      }
    }
  }

  if (!waits_min.empty()) {
    for (double w : waits_min) {
      report.mean_wait_min += w / static_cast<double>(waits_min.size());
      report.max_wait_min = std::max(report.max_wait_min, w);
    }
  }
  if (!detours_km.empty())
    for (double d : detours_km)
      report.mean_detour_km += d / static_cast<double>(detours_km.size());
  report.station_utilization =
      total_slot_steps > 0.0 ? busy_slot_steps / total_slot_steps : 0.0;
  return report;
}

}  // namespace ev::infra
