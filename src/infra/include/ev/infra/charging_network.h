/// \file charging_network.h
/// Charging infrastructure and fleet information system (paper Section 2,
/// "Information Systems"): "Providing information on available charging
/// stations to drivers can be further qualified by taking into account the
/// locations, energy-consumption and destinations of all vehicles, as well
/// as the number and location of charging stations." This module implements
/// exactly that comparison: an *uncoordinated* policy (every driver heads to
/// the nearest station) against a *coordinated* central assignment that
/// knows the whole fleet, plus V2G energy feedback from plugged vehicles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ev/util/rng.h"

namespace ev::infra {

/// A 2D city coordinate [km].
struct Position {
  double x_km = 0.0;
  double y_km = 0.0;
};

/// Euclidean distance [km].
[[nodiscard]] double distance_km(const Position& a, const Position& b) noexcept;

/// A charging station.
struct Station {
  Position position;
  std::size_t slots = 2;          ///< Simultaneous charging points.
  double power_kw = 50.0;         ///< Per-slot charging power.
};

/// One fleet vehicle.
struct FleetVehicle {
  Position position;
  Position destination;
  double battery_kwh = 40.0;
  double soc = 0.8;
  double consumption_kwh_per_km = 0.16;
  double speed_kmh = 40.0;
};

/// How drivers pick a station when they need charge.
enum class AssignmentPolicy {
  kNearestStation,  ///< Uncoordinated: nearest station, ignore congestion.
  kCoordinated,     ///< Central info system balances distance and queues.
};

/// Name for reports.
[[nodiscard]] std::string to_string(AssignmentPolicy policy);

/// Simulation parameters.
struct FleetConfig {
  std::size_t station_count = 6;
  std::size_t vehicle_count = 60;
  double city_size_km = 20.0;      ///< Square city edge length.
  double charge_threshold = 0.25;  ///< Seek charge below this SoC.
  double charge_target = 0.8;      ///< Unplug at this SoC.
  double v2g_reserve_soc = 0.6;    ///< V2G never discharges below this.
  double sim_hours = 12.0;
  double dt_s = 30.0;
  std::uint64_t seed = 1;
};

/// Outcome of a fleet simulation.
struct FleetReport {
  AssignmentPolicy policy{};
  std::size_t trips_completed = 0;
  std::size_t stranded = 0;            ///< Vehicles that ran empty en route.
  double mean_wait_min = 0.0;          ///< Queue wait at stations.
  double max_wait_min = 0.0;
  double mean_detour_km = 0.0;         ///< Extra distance to reach the station.
  double station_utilization = 0.0;    ///< Mean busy fraction of all slots.
  double v2g_energy_kwh = 0.0;         ///< Energy fed back to the grid.
};

/// The simulated city: stations + fleet + the assignment policy under test.
class ChargingNetwork {
 public:
  /// Builds stations and vehicles deterministically from \p config.
  explicit ChargingNetwork(const FleetConfig& config);

  /// Runs the full scenario under \p policy; \p v2g_request_kw is the grid's
  /// standing power request served by plugged, full-enough vehicles (0
  /// disables V2G).
  [[nodiscard]] FleetReport run(AssignmentPolicy policy, double v2g_request_kw = 0.0);

  /// Stations built for this scenario.
  [[nodiscard]] const std::vector<Station>& stations() const noexcept { return stations_; }
  /// Initial fleet (run() operates on a copy, so scenarios are repeatable).
  [[nodiscard]] const std::vector<FleetVehicle>& fleet() const noexcept { return fleet_; }

 private:
  FleetConfig config_;
  std::vector<Station> stations_;
  std::vector<FleetVehicle> fleet_;
};

}  // namespace ev::infra
