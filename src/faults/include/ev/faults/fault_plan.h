/// \file fault_plan.h
/// Deterministic fault schedule. A FaultPlan is built before the run —
/// optionally using its own seeded RNG to draw injection times and targets —
/// then armed on the simulator, which fires every injection at its exact
/// simulated time. Two runs with the same seed and the same construction
/// code produce bit-identical fault sequences, which is what makes
/// system-wide fault-injection experiments reproducible and comparable.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ev/faults/degradation.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"
#include "ev/util/rng.h"

namespace ev::faults {

/// One fired injection, for reports.
struct Injection {
  std::string label;
  sim::Time at;
};

/// A seeded schedule of fault-injection actions.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

  /// The plan's private RNG — draw injection times/targets from here (and
  /// only here) to keep the schedule a pure function of the seed.
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Schedules \p action to fire at simulated time \p at under \p label.
  /// Must be called before arm().
  void add(sim::Time at, std::string label, std::function<void()> action);

  /// When set, every fired injection first calls
  /// DegradationManager::mark_fault_injected(), so the manager's
  /// `deg.detection_latency_us` histogram measures injection-to-reaction
  /// latency without the experiment wiring anything manually.
  void set_degradation(DegradationManager* manager) noexcept { degradation_ = manager; }

  /// Attaches observability: counter `faults.injected`.
  void attach_observer(obs::MetricsRegistry& registry);

  /// Schedules all planned injections on \p sim. Call once. The plan owns
  /// the scheduled events: destroying it cancels injections that have not
  /// fired yet, so an armed plan may be torn down before the run completes.
  void arm(sim::Simulator& sim);

  /// Entries planned (fired or not).
  [[nodiscard]] std::size_t planned() const noexcept { return planned_.size(); }
  /// Injections fired so far, in firing order.
  [[nodiscard]] const std::vector<Injection>& injections() const noexcept {
    return fired_;
  }

 private:
  struct Planned {
    sim::Time at;
    std::string label;
    std::function<void()> action;
  };

  util::Rng rng_;
  std::vector<Planned> planned_;
  std::vector<sim::ScheduledHandle> scheduled_;  // RAII owners of armed events
  std::vector<Injection> fired_;
  DegradationManager* degradation_ = nullptr;
  bool armed_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId injected_metric_ = obs::kInvalidId;
};

}  // namespace ev::faults
