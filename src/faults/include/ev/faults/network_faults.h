/// \file network_faults.h
/// Network-level fault actors and their detector. BabblingIdiot models the
/// classic failure a time-triggered design guards against: a node that
/// floods the medium with top-priority traffic and starves everyone else.
/// NetworkHealthWatcher is the matching detection service: it polls each
/// bus's public health signals (bus-off state, fault counters, utilization)
/// and reports fault episodes to the DegradationManager.
#pragma once

#include <cstdint>
#include <vector>

#include "ev/faults/degradation.h"
#include "ev/network/bus.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace ev::faults {

/// A node stuck transmitting the highest-priority frame at a short period.
class BabblingIdiot {
 public:
  /// Will babble on \p bus with identifier \p id (0 = wins every CAN
  /// arbitration) every \p period_us, payload \p payload_bytes.
  BabblingIdiot(sim::Simulator& sim, network::Bus& bus, std::uint32_t id = 0,
                std::int64_t period_us = 100, std::size_t payload_bytes = 8);

  /// Starts babbling at the next period boundary.
  void start();
  /// Silences the node (fault removed / bus guardian kicked in). Destroying
  /// the actor silences it too — the periodic event is owned RAII-style.
  void stop();
  /// True while babbling.
  [[nodiscard]] bool active() const noexcept { return event_.active(); }
  /// Frames the idiot has pushed into the bus (accepted sends).
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return sent_; }

 private:
  sim::Simulator* sim_;
  network::Bus* bus_;
  std::uint32_t id_;
  std::int64_t period_us_;
  std::size_t payload_bytes_;
  sim::ScheduledHandle event_;  // owns the babble periodic
  std::uint64_t sent_ = 0;
};

/// Watcher policy.
struct NetworkWatchConfig {
  std::int64_t poll_period_us = 10000;  ///< Health poll period.
  double utilization_limit = 0.9;       ///< Sustained load above this is a fault.
};

/// Polls registered buses and reports fault *episodes* (not individual
/// frames) to the DegradationManager: entering bus-off, new CRC/drop fault
/// activity since the previous poll, or utilization beyond the limit. Each
/// condition reports once per episode so a long burst escalates the mode
/// machine in steps instead of flooding it.
class NetworkHealthWatcher {
 public:
  NetworkHealthWatcher(sim::Simulator& sim, DegradationManager& degradation,
                       NetworkWatchConfig config = {});

  /// Adds \p bus to the watch list. Call before start().
  void watch(network::Bus& bus);

  /// Arms the periodic poll.
  void start();

  /// Attaches observability: counter `net.watch.faults_reported`.
  void attach_observer(obs::MetricsRegistry& registry);

  /// Fault episodes reported to the DegradationManager.
  [[nodiscard]] std::uint64_t faults_reported() const noexcept { return reported_; }

 private:
  struct Watched {
    network::Bus* bus = nullptr;
    std::size_t last_dropped = 0;
    std::size_t last_corrupted = 0;
    bool in_bus_off = false;
    bool over_utilized = false;
  };

  void poll();
  void report();

  sim::Simulator* sim_;
  DegradationManager* degradation_;
  NetworkWatchConfig config_;
  sim::ScheduledHandle poll_event_;  // owns the periodic poll
  std::vector<Watched> watched_;
  bool started_ = false;
  std::uint64_t reported_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId reported_metric_ = obs::kInvalidId;
};

}  // namespace ev::faults
