/// \file grid_faults.h
/// Deterministic grid-side fault timeline for the fleet charging backend.
/// Where FaultPlan injects faults *into a running simulator*, the grid
/// timeline is a pure function of time: the fleet simulation's tick loop
/// queries it each tick for the surviving grid capacity, partitioned
/// feeders, and stations whose control channel is blacked out. Keeping the
/// timeline side-effect free is what lets stations advance in parallel
/// between rebalance ticks — every worker reads the same immutable schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ev::faults {

/// What a grid fault event does while active.
enum class GridFaultKind : std::uint8_t {
  kCapacityDrop,     ///< Scale grid capacity by (1 - value) for the duration.
  kFeederPartition,  ///< Feeder `target` loses its control channel (island).
  kCommsBlackout,    ///< Stations [target, target + value) lose heartbeats.
};

/// One scheduled grid fault, active over [at_s, at_s + duration_s).
struct GridFaultEvent {
  double at_s = 0.0;
  GridFaultKind kind = GridFaultKind::kCapacityDrop;
  std::size_t target = 0;  ///< Feeder index or first station index.
  double value = 0.0;      ///< Drop fraction in [0, 1] or station count.
  double duration_s = 0.0;

  [[nodiscard]] bool active_at(double t) const noexcept {
    return t >= at_s && t < at_s + duration_s;
  }
};

/// The immutable fault schedule of one fleet run. All queries are O(events)
/// — schedules hold a handful of events, and the loop bodies branch on
/// plain doubles, so the per-tick cost is negligible next to the stations.
class GridFaultTimeline {
 public:
  GridFaultTimeline() = default;
  explicit GridFaultTimeline(std::vector<GridFaultEvent> events);

  /// Product of (1 - value) over the capacity drops active at \p t,
  /// clamped to [0, 1].
  [[nodiscard]] double capacity_scale(double t) const noexcept;

  /// True while a partition event covering \p feeder is active.
  [[nodiscard]] bool feeder_partitioned(std::size_t feeder, double t) const noexcept;

  /// True while a comms blackout covering \p station is active (feeder
  /// partitions are queried separately — the caller knows the station->
  /// feeder mapping, this timeline does not).
  [[nodiscard]] bool station_blacked_out(std::size_t station, double t) const noexcept;

  /// Events active at \p t (any kind).
  [[nodiscard]] std::size_t active_count(double t) const noexcept;

  /// True when capacity_scale or any partition/blackout membership can
  /// differ between \p a and \p b — i.e. some event starts or ends inside
  /// (a, b]. The central system uses this to trigger an off-cycle rebalance
  /// the moment grid conditions change.
  [[nodiscard]] bool changed_between(double a, double b) const noexcept;

  [[nodiscard]] const std::vector<GridFaultEvent>& events() const noexcept {
    return events_;
  }

 private:
  std::vector<GridFaultEvent> events_;
};

}  // namespace ev::faults
