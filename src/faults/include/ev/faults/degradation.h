/// \file degradation.h
/// Vehicle-level graceful degradation. The paper's architecture distributes
/// detection across domains — the BMS safety monitor, the motor controller's
/// open-switch detector, the by-wire voter, the middleware watchdog, the
/// network health watcher — but the *reaction* must be coordinated at the
/// vehicle level: a single mode machine that maps every detected fault onto
/// the strongest still-safe driving capability instead of an immediate stop.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>

#include "ev/bms/safety.h"
#include "ev/bywire/redundancy.h"
#include "ev/motor/fault.h"
#include "ev/obs/metrics.h"
#include "ev/sim/simulator.h"

namespace ev::faults {

/// Drive capability modes, ordered by severity. Transitions only escalate;
/// recovery requires an explicit service_reset() (mirrors the latched trip
/// of the BMS SafetyMonitor).
enum class DriveMode : std::uint8_t {
  kNormal = 0,
  kDerated = 1,   ///< Reduced torque/speed; the trip can continue.
  kLimpHome = 2,  ///< Minimal traction to reach the next safe spot.
  kSafeStop = 3,  ///< Torque cut; controlled stop.
};

/// Name of a drive mode for reports.
[[nodiscard]] std::string to_string(DriveMode mode);

/// How each mode constrains the powertrain, and which fault counts trigger
/// which escalation.
struct DegradationPolicy {
  double derated_torque_fraction = 0.5;
  double derated_speed_limit_mps = 27.8;  ///< ~100 km/h.
  double limp_torque_fraction = 0.2;
  double limp_speed_limit_mps = 12.5;  ///< ~45 km/h.
  /// Watchdog-initiated partition restarts before entering kDerated /
  /// kLimpHome. One restart is routine self-healing worth derating for;
  /// repeated restarts mean the platform is unstable.
  std::uint64_t restarts_to_derate = 1;
  std::uint64_t restarts_to_limp = 3;
  /// Network fault reports before entering kDerated / kLimpHome.
  std::uint64_t bus_faults_to_derate = 1;
  std::uint64_t bus_faults_to_limp = 3;
};

/// Aggregates domain health into one vehicle drive mode. Feed it from each
/// domain's existing detector (it never inspects injected-fault state
/// directly); read back torque/speed limits in the powertrain loop.
class DegradationManager {
 public:
  /// Called on every mode escalation with (from, to, cause).
  using Listener = std::function<void(DriveMode, DriveMode, const std::string&)>;

  explicit DegradationManager(sim::Simulator& sim, DegradationPolicy policy = {});

  // --- detection inputs -------------------------------------------------
  /// BMS safety verdict for the period: kDerate -> kDerated, kOpenContactor
  /// -> kSafeStop (no traction without the pack).
  void on_bms(bms::SafetyAction action);
  /// Motor diagnosis: an open switch costs one phase leg -> kLimpHome.
  void on_motor(const std::optional<motor::FaultDiagnosis>& diagnosis);
  /// By-wire vote: disagreement -> kDerated; lost majority -> kSafeStop
  /// (steering/braking cannot run open-loop).
  void on_bywire(const bywire::VoteResult& vote);
  /// Watchdog restarted a partition (wire from HealthMonitor's listener).
  void on_partition_restart();
  /// Network health watcher flagged a bus fault episode.
  void on_bus_fault();

  // --- reaction outputs -------------------------------------------------
  [[nodiscard]] DriveMode mode() const noexcept { return mode_; }
  /// Allowed fraction of full torque in the current mode (0 in kSafeStop).
  [[nodiscard]] double torque_limit_fraction() const noexcept;
  /// Allowed speed [m/s]; unlimited (infinity) in kNormal.
  [[nodiscard]] double speed_limit_mps() const noexcept;

  /// Clears the latched mode and all escalation counters (service reset).
  void service_reset() noexcept;

  /// Marks "a fault was just injected": the next escalation records
  /// now - mark as end-to-end detection latency. Called by FaultPlan.
  void mark_fault_injected() { injected_at_ = sim_->now(); }

  /// Registers \p listener for mode escalations.
  void set_listener(Listener listener) { listener_ = std::move(listener); }

  /// Attaches observability:
  ///  - gauge `deg.mode` (numeric DriveMode value)
  ///  - counter `deg.transitions`
  ///  - counters `deg.events.{bms,motor,bywire,partition,bus}`
  ///  - histogram `deg.detection_latency_us` (injection -> escalation, for
  ///    faults announced via mark_fault_injected())
  void attach_observer(obs::MetricsRegistry& registry);

  /// Mode escalations so far.
  [[nodiscard]] std::uint64_t transitions() const noexcept { return transitions_; }
  /// Partition restarts reported so far.
  [[nodiscard]] std::uint64_t partition_restarts() const noexcept { return restarts_; }
  /// Bus fault episodes reported so far.
  [[nodiscard]] std::uint64_t bus_faults() const noexcept { return bus_faults_; }

 private:
  void escalate(DriveMode target, const std::string& cause);
  void count_event(obs::MetricId id);

  sim::Simulator* sim_;
  DegradationPolicy policy_;
  DriveMode mode_ = DriveMode::kNormal;
  Listener listener_;
  std::uint64_t transitions_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t bus_faults_ = 0;
  std::optional<sim::Time> injected_at_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId mode_metric_ = obs::kInvalidId;
  obs::MetricId transitions_metric_ = obs::kInvalidId;
  obs::MetricId latency_metric_ = obs::kInvalidId;
  obs::MetricId bms_metric_ = obs::kInvalidId;
  obs::MetricId motor_metric_ = obs::kInvalidId;
  obs::MetricId bywire_metric_ = obs::kInvalidId;
  obs::MetricId partition_metric_ = obs::kInvalidId;
  obs::MetricId bus_metric_ = obs::kInvalidId;
};

}  // namespace ev::faults
