#include "ev/faults/network_faults.h"

#include <stdexcept>

namespace ev::faults {

BabblingIdiot::BabblingIdiot(sim::Simulator& sim, network::Bus& bus, std::uint32_t id,
                             std::int64_t period_us, std::size_t payload_bytes)
    : sim_(&sim), bus_(&bus), id_(id), period_us_(period_us),
      payload_bytes_(payload_bytes) {
  if (period_us <= 0) throw std::invalid_argument("BabblingIdiot: period must be positive");
}

void BabblingIdiot::start() {
  if (event_.active()) return;
  event_ = sim::ScheduledHandle{
      *sim_, sim_->schedule_periodic(sim::After{sim::Time::us(period_us_)},
                                     sim::Time::us(period_us_), [this] {
                                       network::Frame frame;
                                       frame.id = id_;
                                       frame.payload_size = payload_bytes_;
                                       if (bus_->send(frame)) ++sent_;
                                     })};
}

void BabblingIdiot::stop() { event_.cancel(); }

NetworkHealthWatcher::NetworkHealthWatcher(sim::Simulator& sim,
                                           DegradationManager& degradation,
                                           NetworkWatchConfig config)
    : sim_(&sim), degradation_(&degradation), config_(config) {
  if (config_.poll_period_us <= 0)
    throw std::invalid_argument("NetworkHealthWatcher: poll period must be positive");
}

void NetworkHealthWatcher::watch(network::Bus& bus) {
  if (started_) throw std::logic_error("NetworkHealthWatcher: cannot watch after start()");
  watched_.push_back(Watched{&bus, bus.fault_dropped_count(), bus.fault_corrupted_count(),
                             false, false});
}

void NetworkHealthWatcher::start() {
  if (started_) throw std::logic_error("NetworkHealthWatcher: already started");
  started_ = true;
  poll_event_ = sim::ScheduledHandle{
      *sim_, sim_->schedule_periodic(sim::After{sim::Time::us(config_.poll_period_us)},
                                     sim::Time::us(config_.poll_period_us),
                                     [this] { poll(); })};
}

void NetworkHealthWatcher::attach_observer(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  reported_metric_ = registry.counter("net.watch.faults_reported");
}

void NetworkHealthWatcher::poll() {
  for (Watched& w : watched_) {
    const bool off = w.bus->bus_off();
    if (off && !w.in_bus_off) report();
    w.in_bus_off = off;

    const std::size_t dropped = w.bus->fault_dropped_count();
    const std::size_t corrupted = w.bus->fault_corrupted_count();
    if (dropped != w.last_dropped || corrupted != w.last_corrupted) report();
    w.last_dropped = dropped;
    w.last_corrupted = corrupted;

    const bool hot = w.bus->utilization() > config_.utilization_limit;
    if (hot && !w.over_utilized) report();
    w.over_utilized = hot;
  }
}

void NetworkHealthWatcher::report() {
  ++reported_;
  if (metrics_) metrics_->add(reported_metric_);
  degradation_->on_bus_fault();
}

}  // namespace ev::faults
