#include "ev/faults/grid_faults.h"

#include <algorithm>
#include <utility>

namespace ev::faults {

GridFaultTimeline::GridFaultTimeline(std::vector<GridFaultEvent> events)
    : events_(std::move(events)) {}

double GridFaultTimeline::capacity_scale(double t) const noexcept {
  double scale = 1.0;
  for (const GridFaultEvent& e : events_)
    if (e.kind == GridFaultKind::kCapacityDrop && e.active_at(t))
      scale *= std::clamp(1.0 - e.value, 0.0, 1.0);
  return scale;
}

bool GridFaultTimeline::feeder_partitioned(std::size_t feeder, double t) const noexcept {
  for (const GridFaultEvent& e : events_)
    if (e.kind == GridFaultKind::kFeederPartition && e.target == feeder && e.active_at(t))
      return true;
  return false;
}

bool GridFaultTimeline::station_blacked_out(std::size_t station, double t) const noexcept {
  for (const GridFaultEvent& e : events_)
    if (e.kind == GridFaultKind::kCommsBlackout && e.active_at(t) &&
        station >= e.target && station < e.target + static_cast<std::size_t>(e.value))
      return true;
  return false;
}

std::size_t GridFaultTimeline::active_count(double t) const noexcept {
  std::size_t n = 0;
  for (const GridFaultEvent& e : events_)
    if (e.active_at(t)) ++n;
  return n;
}

bool GridFaultTimeline::changed_between(double a, double b) const noexcept {
  for (const GridFaultEvent& e : events_) {
    if (e.at_s > a && e.at_s <= b) return true;
    const double end = e.at_s + e.duration_s;
    if (end > a && end <= b) return true;
  }
  return false;
}

}  // namespace ev::faults
