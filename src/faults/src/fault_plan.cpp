#include "ev/faults/fault_plan.h"

#include <stdexcept>
#include <utility>

namespace ev::faults {

void FaultPlan::add(sim::Time at, std::string label, std::function<void()> action) {
  if (armed_) throw std::logic_error("FaultPlan: cannot add after arm()");
  if (!action) throw std::invalid_argument("FaultPlan: action is null");
  planned_.push_back(Planned{at, std::move(label), std::move(action)});
}

void FaultPlan::attach_observer(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  injected_metric_ = registry.counter("faults.injected");
}

void FaultPlan::arm(sim::Simulator& sim) {
  if (armed_) throw std::logic_error("FaultPlan: already armed");
  armed_ = true;
  scheduled_.reserve(planned_.size());
  for (Planned& p : planned_) {
    // The Planned entry outlives the run (the plan owns it), so the handler
    // captures a pointer instead of copying the action. The plan also owns
    // the scheduled events (RAII): destroying an armed plan cancels every
    // injection that has not fired yet, so the handlers' `this` captures can
    // never dangle. Cancelling an already-fired one-shot is a no-op.
    Planned* entry = &p;
    scheduled_.emplace_back(
        sim, sim.schedule_at(p.at, [this, entry, &sim] {
          if (degradation_) degradation_->mark_fault_injected();
          fired_.push_back(Injection{entry->label, sim.now()});
          if (metrics_) metrics_->add(injected_metric_);
          entry->action();
        }));
  }
}

}  // namespace ev::faults
