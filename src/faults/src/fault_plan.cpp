#include "ev/faults/fault_plan.h"

#include <stdexcept>
#include <utility>

namespace ev::faults {

void FaultPlan::add(sim::Time at, std::string label, std::function<void()> action) {
  if (armed_) throw std::logic_error("FaultPlan: cannot add after arm()");
  if (!action) throw std::invalid_argument("FaultPlan: action is null");
  planned_.push_back(Planned{at, std::move(label), std::move(action)});
}

void FaultPlan::attach_observer(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  injected_metric_ = registry.counter("faults.injected");
}

void FaultPlan::arm(sim::Simulator& sim) {
  if (armed_) throw std::logic_error("FaultPlan: already armed");
  armed_ = true;
  for (Planned& p : planned_) {
    // The Planned entry outlives the run (the plan owns it), so the handler
    // captures a pointer instead of copying the action.
    Planned* entry = &p;
    sim.schedule_at(p.at, [this, entry, &sim] {
      if (degradation_) degradation_->mark_fault_injected();
      fired_.push_back(Injection{entry->label, sim.now()});
      if (metrics_) metrics_->add(injected_metric_);
      entry->action();
    });
  }
}

}  // namespace ev::faults
