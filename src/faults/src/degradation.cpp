#include "ev/faults/degradation.h"

namespace ev::faults {

std::string to_string(DriveMode mode) {
  switch (mode) {
    case DriveMode::kNormal: return "normal";
    case DriveMode::kDerated: return "derated";
    case DriveMode::kLimpHome: return "limp_home";
    case DriveMode::kSafeStop: return "safe_stop";
  }
  return "?";
}

DegradationManager::DegradationManager(sim::Simulator& sim, DegradationPolicy policy)
    : sim_(&sim), policy_(policy) {}

void DegradationManager::on_bms(bms::SafetyAction action) {
  if (action == bms::SafetyAction::kNone) return;
  count_event(bms_metric_);
  if (action == bms::SafetyAction::kOpenContactor)
    escalate(DriveMode::kSafeStop, "bms_contactor_open");
  else
    escalate(DriveMode::kDerated, "bms_derate");
}

void DegradationManager::on_motor(const std::optional<motor::FaultDiagnosis>& diagnosis) {
  if (!diagnosis) return;
  count_event(motor_metric_);
  escalate(DriveMode::kLimpHome, "motor_open_switch");
}

void DegradationManager::on_bywire(const bywire::VoteResult& vote) {
  if (!vote.valid) {
    count_event(bywire_metric_);
    escalate(DriveMode::kSafeStop, "bywire_no_majority");
    return;
  }
  if (vote.disagreeing > 0) {
    count_event(bywire_metric_);
    escalate(DriveMode::kDerated, "bywire_disagreement");
  }
}

void DegradationManager::on_partition_restart() {
  ++restarts_;
  count_event(partition_metric_);
  if (restarts_ >= policy_.restarts_to_limp)
    escalate(DriveMode::kLimpHome, "partition_restarts");
  else if (restarts_ >= policy_.restarts_to_derate)
    escalate(DriveMode::kDerated, "partition_restart");
}

void DegradationManager::on_bus_fault() {
  ++bus_faults_;
  count_event(bus_metric_);
  if (bus_faults_ >= policy_.bus_faults_to_limp)
    escalate(DriveMode::kLimpHome, "bus_faults");
  else if (bus_faults_ >= policy_.bus_faults_to_derate)
    escalate(DriveMode::kDerated, "bus_fault");
}

double DegradationManager::torque_limit_fraction() const noexcept {
  switch (mode_) {
    case DriveMode::kNormal: return 1.0;
    case DriveMode::kDerated: return policy_.derated_torque_fraction;
    case DriveMode::kLimpHome: return policy_.limp_torque_fraction;
    case DriveMode::kSafeStop: return 0.0;
  }
  return 0.0;
}

double DegradationManager::speed_limit_mps() const noexcept {
  switch (mode_) {
    case DriveMode::kNormal: return std::numeric_limits<double>::infinity();
    case DriveMode::kDerated: return policy_.derated_speed_limit_mps;
    case DriveMode::kLimpHome: return policy_.limp_speed_limit_mps;
    case DriveMode::kSafeStop: return 0.0;
  }
  return 0.0;
}

void DegradationManager::service_reset() noexcept {
  mode_ = DriveMode::kNormal;
  restarts_ = 0;
  bus_faults_ = 0;
  injected_at_.reset();
  if (metrics_) metrics_->set(mode_metric_, 0.0);
}

void DegradationManager::escalate(DriveMode target, const std::string& cause) {
  if (target <= mode_) return;  // escalate-only latch
  const DriveMode from = mode_;
  mode_ = target;
  ++transitions_;
  if (metrics_) {
    metrics_->set(mode_metric_, static_cast<double>(static_cast<std::uint8_t>(mode_)));
    metrics_->add(transitions_metric_);
    if (injected_at_) {
      metrics_->observe(latency_metric_, (sim_->now() - *injected_at_).to_us());
      injected_at_.reset();
    }
  } else {
    injected_at_.reset();
  }
  if (listener_) listener_(from, mode_, cause);
}

void DegradationManager::count_event(obs::MetricId id) {
  if (metrics_ && id != obs::kInvalidId) metrics_->add(id);
}

void DegradationManager::attach_observer(obs::MetricsRegistry& registry) {
  metrics_ = &registry;
  mode_metric_ = registry.gauge("deg.mode");
  transitions_metric_ = registry.counter("deg.transitions");
  latency_metric_ = registry.histogram("deg.detection_latency_us", 0.0, 1e7, 64);
  bms_metric_ = registry.counter("deg.events.bms");
  motor_metric_ = registry.counter("deg.events.motor");
  bywire_metric_ = registry.counter("deg.events.bywire");
  partition_metric_ = registry.counter("deg.events.partition");
  bus_metric_ = registry.counter("deg.events.bus");
  registry.set(mode_metric_, static_cast<double>(static_cast<std::uint8_t>(mode_)));
}

}  // namespace ev::faults
