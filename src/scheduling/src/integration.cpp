#include "ev/scheduling/integration.h"

#include <algorithm>

namespace ev::scheduling {

namespace {

/// Does subsystem \p s, shifted by \p shift, collide with any already
/// integrated subsystem? Only same-resource activity pairs are checked.
bool collides(const std::vector<Subsystem>& subsystems,
              const std::vector<Schedule>& local,
              const std::vector<std::int64_t>& shifts,
              const std::vector<bool>& integrated, std::size_t s, std::int64_t shift,
              std::size_t* steps) {
  const System& sys_s = subsystems[s].system;
  for (std::size_t t = 0; t < subsystems.size(); ++t) {
    if (!integrated[t] || t == s) continue;
    const System& sys_t = subsystems[t].system;
    for (std::size_t a = 0; a < sys_s.activities.size(); ++a) {
      for (std::size_t b = 0; b < sys_t.activities.size(); ++b) {
        const Activity& aa = sys_s.activities[a];
        const Activity& bb = sys_t.activities[b];
        if (aa.resource != bb.resource) continue;
        ++*steps;
        if (activities_conflict(local[s].offset_us[a] + shift, aa.duration_us,
                                aa.period_us, local[t].offset_us[b] + shifts[t],
                                bb.duration_us, bb.period_us))
          return true;
      }
    }
  }
  return false;
}

}  // namespace

IntegrationResult ScheduleIntegrator::integrate(
    const std::vector<Subsystem>& subsystems) const {
  IntegrationResult result;
  result.local.reserve(subsystems.size());
  result.shift_us.assign(subsystems.size(), 0);

  // Phase 1: independent local synthesis (cheap: each problem is small).
  const MonolithicSynthesizer local_synth(local_options_);
  for (const Subsystem& sub : subsystems) {
    Schedule s = local_synth.synthesize(sub.system);
    result.search_steps += s.search_steps;
    if (!s.feasible) return result;  // a component without a valid local config
    result.local.push_back(std::move(s));
  }

  // Phase 2: greedy shift assignment, largest subsystem first (hardest to
  // place), searching one scalar per subsystem.
  std::vector<std::size_t> order(subsystems.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return subsystems[a].system.activities.size() > subsystems[b].system.activities.size();
  });

  std::vector<bool> integrated(subsystems.size(), false);
  for (std::size_t s : order) {
    // The shift only matters modulo the subsystem's smallest period.
    std::int64_t min_period = INT64_MAX;
    for (const Activity& a : subsystems[s].system.activities)
      min_period = std::min(min_period, a.period_us);
    if (subsystems[s].system.activities.empty()) min_period = shift_granularity_us_;

    bool placed = false;
    for (std::int64_t shift = 0; shift < min_period; shift += shift_granularity_us_) {
      if (!collides(subsystems, result.local, result.shift_us, integrated, s, shift,
                    &result.search_steps)) {
        result.shift_us[s] = shift;
        integrated[s] = true;
        placed = true;
        break;
      }
    }
    if (!placed) return result;  // integration infeasible at this granularity
  }

  result.feasible = true;
  return result;
}

}  // namespace ev::scheduling
