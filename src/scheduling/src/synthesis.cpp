#include "ev/scheduling/synthesis.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "ev/util/math.h"

namespace ev::scheduling {

bool activities_conflict(std::int64_t offset_a, std::int64_t duration_a,
                         std::int64_t period_a, std::int64_t offset_b,
                         std::int64_t duration_b, std::int64_t period_b) noexcept {
  // Two strictly periodic reservations overlap somewhere in the hyperperiod
  // iff the offset difference modulo gcd(Ta, Tb) falls inside the combined
  // occupancy window (Korst et al. criterion).
  const std::int64_t g = util::gcd64(period_a, period_b);
  std::int64_t d = (offset_b - offset_a) % g;
  if (d < 0) d += g;
  return d < duration_a || g - d < duration_b;
}

std::vector<std::size_t> topological_order(const System& system) {
  const std::size_t n = system.activities.size();
  std::map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < n; ++i) index_of[system.activities[i].id] = i;

  std::vector<int> in_degree(n, 0);
  std::vector<std::vector<std::size_t>> successors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (int pred : system.activities[i].predecessors) {
      const auto it = index_of.find(pred);
      if (it == index_of.end())
        throw std::invalid_argument("topological_order: unknown predecessor id");
      successors[it->second].push_back(i);
      ++in_degree[i];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (in_degree[i] == 0) ready.push_back(i);
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (std::size_t s : successors[v])
      if (--in_degree[s] == 0) ready.push_back(s);
  }
  if (order.size() != n)
    throw std::invalid_argument("topological_order: precedence graph has a cycle");
  return order;
}

namespace {

/// Earliest start bound from already-placed predecessors.
std::int64_t precedence_bound(const System& system,
                              const std::map<int, std::size_t>& index_of,
                              const std::vector<std::int64_t>& offsets,
                              const std::vector<bool>& placed, std::size_t i) {
  std::int64_t bound = 0;
  for (int pred : system.activities[i].predecessors) {
    const std::size_t p = index_of.at(pred);
    if (!placed[p]) continue;  // should not happen in topological order
    bound = std::max(bound, offsets[p] + system.activities[p].duration_us);
  }
  return bound;
}

/// First offset >= \p from that is conflict-free on the activity's resource;
/// search window is [lower_bound, lower_bound + period). Returns -1 if none.
std::int64_t find_offset(const System& system, const std::vector<std::int64_t>& offsets,
                         const std::vector<bool>& placed, std::size_t i,
                         std::int64_t lower_bound, std::int64_t from,
                         std::size_t* steps) {
  const Activity& a = system.activities[i];
  const std::int64_t step = std::max<std::int64_t>(system.offset_granularity_us, 1);
  for (std::int64_t o = std::max(lower_bound, from); o < lower_bound + a.period_us;
       o += step) {
    ++*steps;
    bool ok = true;
    for (std::size_t j = 0; j < system.activities.size() && ok; ++j) {
      if (!placed[j] || j == i) continue;
      const Activity& b = system.activities[j];
      if (b.resource != a.resource) continue;
      if (activities_conflict(o, a.duration_us, a.period_us, offsets[j], b.duration_us,
                              b.period_us))
        ok = false;
    }
    if (ok) return o;
  }
  return -1;
}

}  // namespace

Schedule MonolithicSynthesizer::synthesize(const System& system) const {
  Schedule result;
  result.offset_us.assign(system.activities.size(), 0);
  if (system.activities.empty()) {
    result.feasible = true;
    return result;
  }

  const std::vector<std::size_t> order = topological_order(system);
  std::map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < system.activities.size(); ++i)
    index_of[system.activities[i].id] = i;

  std::vector<std::int64_t> offsets(system.activities.size(), 0);
  std::vector<bool> placed(system.activities.size(), false);
  // retry_from[k]: next candidate offset to try for order position k when
  // backtracked into.
  std::vector<std::int64_t> retry_from(order.size(), 0);

  std::size_t steps = 0;
  std::size_t k = 0;
  while (k < order.size()) {
    if (steps >= options_.max_steps) {
      result.search_steps = steps;
      return result;  // budget exhausted: infeasible verdict
    }
    const std::size_t i = order[k];
    const std::int64_t lb = precedence_bound(system, index_of, offsets, placed, i);
    const std::int64_t o =
        find_offset(system, offsets, placed, i, lb, retry_from[k], &steps);
    if (o >= 0) {
      offsets[i] = o;
      placed[i] = true;
      // When we come back to this position after backtracking, resume past o.
      retry_from[k] = o + std::max<std::int64_t>(system.offset_granularity_us, 1);
      ++k;
      if (k < order.size()) retry_from[k] = 0;
    } else {
      if (!options_.allow_backtracking || k == 0) {
        result.search_steps = steps;
        return result;
      }
      // Chronological backtracking: unplace the previous activity and force
      // it to its next alternative.
      --k;
      placed[order[k]] = false;
    }
  }

  result.feasible = true;
  result.offset_us = offsets;
  result.search_steps = steps;
  return result;
}

std::int64_t chain_latency_us(const System& system, const Schedule& schedule,
                              const Chain& chain) {
  if (!schedule.feasible || chain.activity_ids.empty()) return -1;
  std::map<int, std::size_t> index_of;
  for (std::size_t i = 0; i < system.activities.size(); ++i)
    index_of[system.activities[i].id] = i;
  const std::size_t first = index_of.at(chain.activity_ids.front());
  const std::size_t last = index_of.at(chain.activity_ids.back());
  return schedule.offset_us[last] + system.activities[last].duration_us -
         schedule.offset_us[first];
}

}  // namespace ev::scheduling
