#include "ev/scheduling/response_time.h"

#include <algorithm>
#include <stdexcept>

#include "ev/util/math.h"

namespace ev::scheduling {

std::vector<FpResponse> fp_response_times(const std::vector<FpTask>& tasks) {
  std::vector<FpTask> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(),
            [](const FpTask& a, const FpTask& b) { return a.priority < b.priority; });

  std::vector<FpResponse> out;
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const FpTask& ti = sorted[i];
    std::int64_t r = ti.wcet_us;
    bool converged = false;
    for (int iter = 0; iter < 100000; ++iter) {
      std::int64_t r_next = ti.wcet_us;
      for (std::size_t j = 0; j < i; ++j) {
        const FpTask& tj = sorted[j];
        r_next += util::ceil_div(r + tj.jitter_us, tj.period_us) * tj.wcet_us;
      }
      if (r_next == r) {
        converged = true;
        break;
      }
      r = r_next;
      if (r > 100 * ti.period_us) break;  // diverging: overloaded
    }
    FpResponse resp;
    resp.name = ti.name;
    resp.response_us = ti.jitter_us + r;
    resp.schedulable = converged && resp.response_us <= ti.period_us;
    out.push_back(std::move(resp));
  }
  return out;
}

double utilization(const std::vector<FpTask>& tasks) noexcept {
  double u = 0.0;
  for (const FpTask& t : tasks)
    u += static_cast<double>(t.wcet_us) / static_cast<double>(t.period_us);
  return u;
}

std::int64_t sampled_chain_latency_us(const std::vector<std::int64_t>& hop_response_us,
                                      const std::vector<std::int64_t>& hop_period_us) {
  if (hop_response_us.size() != hop_period_us.size())
    throw std::invalid_argument("sampled_chain_latency_us: size mismatch");
  std::int64_t total = 0;
  for (std::size_t i = 0; i < hop_response_us.size(); ++i) {
    total += hop_response_us[i];
    // Every stage after the first may just miss the producer's update and
    // sample it one full period later.
    if (i > 0) total += hop_period_us[i];
  }
  return total;
}

}  // namespace ev::scheduling
