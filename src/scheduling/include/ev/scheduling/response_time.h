/// \file response_time.h
/// Event-triggered counterpart: classic fixed-priority preemptive
/// response-time analysis for ECU tasks, plus worst-case end-to-end latency
/// of sampled (asynchronous) cause-effect chains. Contrasted against the
/// synthesized time-triggered schedules in experiment E5: the event-
/// triggered bound carries sampling delays of up to one period per hop,
/// which is exactly why the paper calls synchronous time-triggered
/// scheduling the way to "significantly reduce end-to-end timing delays".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::scheduling {

/// One fixed-priority periodic task on a single ECU.
struct FpTask {
  std::string name;
  int priority = 0;               ///< Lower number = higher priority.
  std::int64_t period_us = 10000;
  std::int64_t wcet_us = 100;
  std::int64_t jitter_us = 0;     ///< Release jitter.
};

/// Analysis output for one task.
struct FpResponse {
  std::string name;
  std::int64_t response_us = 0;  ///< Worst-case response time.
  bool schedulable = false;      ///< response <= period.

  friend bool operator==(const FpResponse&, const FpResponse&) = default;
};

/// Exact worst-case response times (Joseph & Pandya fixed point with
/// jitter). Tasks may be given in any order.
[[nodiscard]] std::vector<FpResponse> fp_response_times(const std::vector<FpTask>& tasks);

/// Total utilization of a task set (sum wcet/period).
[[nodiscard]] double utilization(const std::vector<FpTask>& tasks) noexcept;

/// Worst-case end-to-end latency of an asynchronous (sampled) chain: each
/// hop contributes its worst-case response time plus up to one period of
/// sampling delay at the consumer (no synchronization between stages).
/// \p hop_response_us and \p hop_period_us are per-stage values in order.
[[nodiscard]] std::int64_t sampled_chain_latency_us(
    const std::vector<std::int64_t>& hop_response_us,
    const std::vector<std::int64_t>& hop_period_us);

}  // namespace ev::scheduling
