/// \file synthesis.h
/// Monolithic (global) time-triggered schedule synthesis: places every task
/// and message of the system jointly, by topologically ordered greedy
/// placement with chronological backtracking. This is the approach whose
/// "limited scalability" the paper points out ([17]) — experiment E6
/// measures exactly how the search effort grows with system size.
#pragma once

#include <cstddef>

#include "ev/scheduling/model.h"

namespace ev::scheduling {

/// Synthesis tuning.
struct SynthesisOptions {
  std::size_t max_steps = 2'000'000;  ///< Search budget before giving up.
  bool allow_backtracking = true;     ///< Disable for a pure greedy baseline.
};

/// Global scheduler.
class MonolithicSynthesizer {
 public:
  explicit MonolithicSynthesizer(SynthesisOptions options = {}) noexcept
      : options_(options) {}

  /// Synthesizes offsets for every activity of \p system. Infeasibility (or
  /// budget exhaustion) yields Schedule::feasible == false.
  [[nodiscard]] Schedule synthesize(const System& system) const;

 private:
  SynthesisOptions options_;
};

/// Topological order of activities by precedence; throws std::invalid_argument
/// on a cycle. Exposed for the integration stage and for tests.
[[nodiscard]] std::vector<std::size_t> topological_order(const System& system);

}  // namespace ev::scheduling
