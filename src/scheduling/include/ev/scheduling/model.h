/// \file model.h
/// Task/message model for time-triggered schedule synthesis (Section 3.1 of
/// the paper, following [17] and [18]). Tasks on ECUs and messages on buses
/// are both "activities" competing for exclusive, strictly periodic access
/// to a resource; precedences link them into sensing-computing-actuating
/// chains with end-to-end requirements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ev::scheduling {

/// Resource index: an ECU or a bus. The synthesis only needs exclusivity,
/// so both are plain indices in one space.
using ResourceId = int;

/// One strictly periodic, non-preemptive activity (task execution or frame
/// transmission). All times in integer microseconds.
struct Activity {
  int id = 0;                      ///< Unique activity id.
  std::string name;                ///< Human-readable label.
  ResourceId resource = 0;         ///< Hosting ECU or bus.
  std::int64_t period_us = 10000;  ///< Activation period.
  std::int64_t duration_us = 100;  ///< WCET or transmission time.
  std::vector<int> predecessors;   ///< Activities that must finish first
                                   ///< (same-period-instance semantics).
};

/// A cause-effect chain (sensor task -> message -> controller task -> ...)
/// with an end-to-end deadline.
struct Chain {
  std::string name;
  std::vector<int> activity_ids;  ///< In precedence order.
  std::int64_t deadline_us = 0;   ///< End-to-end requirement (0 = none).
};

/// A complete synthesis problem.
struct System {
  std::vector<Activity> activities;
  std::vector<Chain> chains;
  std::int64_t offset_granularity_us = 50;  ///< Offset search step.
};

/// Computed schedule: one start offset per activity; all instances start at
/// offset + k * period.
struct Schedule {
  bool feasible = false;
  std::vector<std::int64_t> offset_us;  ///< Indexed by activity position in System.
  std::size_t search_steps = 0;         ///< Candidate placements examined.
};

/// True when two strictly periodic activities with the given offsets would
/// ever overlap on the same resource (classic gcd overlap criterion).
[[nodiscard]] bool activities_conflict(std::int64_t offset_a, std::int64_t duration_a,
                                       std::int64_t period_a, std::int64_t offset_b,
                                       std::int64_t duration_b,
                                       std::int64_t period_b) noexcept;

/// Worst-case end-to-end latency of \p chain under \p schedule (first
/// release to last completion, assuming synthesis placed the chain within
/// one period instance). Returns -1 if the schedule is infeasible.
[[nodiscard]] std::int64_t chain_latency_us(const System& system, const Schedule& schedule,
                                            const Chain& chain);

}  // namespace ev::scheduling
