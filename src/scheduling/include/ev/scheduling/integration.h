/// \file integration.h
/// Modular schedule integration ([18], Sagstetter et al.): each subsystem is
/// scheduled independently (small, fast local problems); the integration
/// phase then searches only one rigid time shift per subsystem so that the
/// combined schedules are conflict-free on shared resources. This mirrors
/// the automotive supply chain — components arrive with a valid local
/// configuration and are integrated late — and is the paper's proposed
/// remedy for the scalability wall of monolithic synthesis.
#pragma once

#include <vector>

#include "ev/scheduling/model.h"
#include "ev/scheduling/synthesis.h"

namespace ev::scheduling {

/// A subsystem: an independently designed component with its own activities.
struct Subsystem {
  std::string name;
  System system;  ///< Local synthesis problem (resource ids are global).
};

/// Result of the integration phase.
struct IntegrationResult {
  bool feasible = false;
  std::vector<Schedule> local;            ///< Local schedules per subsystem.
  std::vector<std::int64_t> shift_us;     ///< Applied shift per subsystem.
  std::size_t search_steps = 0;           ///< Local + integration effort.

  /// Global offset of activity \p a (position in subsystem \p s).
  [[nodiscard]] std::int64_t global_offset_us(std::size_t s, std::size_t a) const {
    return local.at(s).offset_us.at(a) + shift_us.at(s);
  }
};

/// Two-phase modular scheduler.
class ScheduleIntegrator {
 public:
  explicit ScheduleIntegrator(SynthesisOptions local_options = {},
                              std::int64_t shift_granularity_us = 250) noexcept
      : local_options_(local_options), shift_granularity_us_(shift_granularity_us) {}

  /// Schedules every subsystem locally, then searches shifts that integrate
  /// them; fails if any local problem or the shift search is infeasible.
  [[nodiscard]] IntegrationResult integrate(const std::vector<Subsystem>& subsystems) const;

 private:
  SynthesisOptions local_options_;
  std::int64_t shift_granularity_us_;
};

}  // namespace ev::scheduling
