#include "ev/security/secure_channel.h"

#include <cstring>
#include <stdexcept>

namespace ev::security {

SecureChannel::SecureChannel(Key master_key, std::uint32_t channel_id, ChannelConfig config)
    : config_(config) {
  if (config.tag_bytes < 4 || config.tag_bytes > 32)
    throw std::invalid_argument("SecureChannel: tag must be 4..32 bytes");
  if (config.counter_bytes < 2 || config.counter_bytes > 8)
    throw std::invalid_argument("SecureChannel: counter must be 2..8 bytes");
  std::vector<std::uint8_t> ctx_enc = {'e', 'n', 'c',
                                       static_cast<std::uint8_t>(channel_id >> 24),
                                       static_cast<std::uint8_t>(channel_id >> 16),
                                       static_cast<std::uint8_t>(channel_id >> 8),
                                       static_cast<std::uint8_t>(channel_id)};
  std::vector<std::uint8_t> ctx_mac = ctx_enc;
  ctx_mac[0] = 'm';
  ctx_mac[1] = 'a';
  ctx_mac[2] = 'c';
  send_key_ = derive_key(master_key, ctx_enc, 32);
  recv_key_ = send_key_;
  mac_key_ = derive_key(master_key, ctx_mac, 32);
}

std::optional<std::size_t> SecureChannel::max_plaintext(std::size_t frame_payload) const {
  if (frame_payload <= overhead_bytes()) return std::nullopt;
  return frame_payload - overhead_bytes();
}

std::vector<std::uint8_t> SecureChannel::crypt(std::uint64_t counter,
                                               std::span<const std::uint8_t> data) const {
  std::array<std::uint8_t, 12> nonce{};
  for (int i = 0; i < 8; ++i) nonce[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(counter >> (8 * i));
  ChaCha20 cipher(send_key_, nonce);
  std::vector<std::uint8_t> out(data.begin(), data.end());
  cipher.apply(out);
  return out;
}

Digest SecureChannel::tag_of(std::uint64_t counter,
                             std::span<const std::uint8_t> ciphertext) const {
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(8 + ciphertext.size());
  for (int i = 0; i < 8; ++i) mac_input.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  mac_input.insert(mac_input.end(), ciphertext.begin(), ciphertext.end());
  return hmac_sha256(mac_key_, mac_input);
}

std::vector<std::uint8_t> SecureChannel::protect(std::span<const std::uint8_t> plaintext) {
  const std::uint64_t counter = ++send_counter_;
  const std::vector<std::uint8_t> ciphertext =
      config_.encrypt ? crypt(counter, plaintext)
                      : std::vector<std::uint8_t>(plaintext.begin(), plaintext.end());
  const Digest tag = tag_of(counter, ciphertext);

  std::vector<std::uint8_t> wire;
  wire.reserve(config_.counter_bytes + ciphertext.size() + config_.tag_bytes);
  for (std::size_t i = 0; i < config_.counter_bytes; ++i)
    wire.push_back(static_cast<std::uint8_t>(counter >> (8 * i)));
  wire.insert(wire.end(), ciphertext.begin(), ciphertext.end());
  wire.insert(wire.end(), tag.begin(), tag.begin() + static_cast<std::ptrdiff_t>(config_.tag_bytes));
  return wire;
}

std::optional<std::vector<std::uint8_t>> SecureChannel::unprotect(
    std::span<const std::uint8_t> wire, ChannelStatus* status) {
  auto fail = [&](ChannelStatus s) {
    if (status) *status = s;
    return std::nullopt;
  };
  if (wire.size() < overhead_bytes()) return fail(ChannelStatus::kMalformed);

  std::uint64_t counter = 0;
  for (std::size_t i = 0; i < config_.counter_bytes; ++i)
    counter |= static_cast<std::uint64_t>(wire[i]) << (8 * i);
  const std::span<const std::uint8_t> ciphertext =
      wire.subspan(config_.counter_bytes, wire.size() - overhead_bytes());
  const std::span<const std::uint8_t> tag = wire.subspan(wire.size() - config_.tag_bytes);

  const Digest expected = tag_of(counter, ciphertext);
  if (!constant_time_equal(tag, std::span<const std::uint8_t>(expected.data(),
                                                              config_.tag_bytes))) {
    ++bad_tag_;
    return fail(ChannelStatus::kBadTag);
  }
  if (counter <= highest_received_) {
    ++replayed_;
    return fail(ChannelStatus::kReplayed);
  }
  highest_received_ = counter;
  if (status) *status = ChannelStatus::kOk;
  if (!config_.encrypt) return std::vector<std::uint8_t>(ciphertext.begin(), ciphertext.end());
  return crypt(counter, ciphertext);
}

}  // namespace ev::security
