#include "ev/security/chacha20.h"

#include <stdexcept>

namespace ev::security {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) noexcept {
  std::uint32_t& A = s[static_cast<std::size_t>(a)];
  std::uint32_t& B = s[static_cast<std::size_t>(b)];
  std::uint32_t& C = s[static_cast<std::size_t>(c)];
  std::uint32_t& D = s[static_cast<std::size_t>(d)];
  A += B; D ^= A; D = rotl(D, 16);
  C += D; B ^= C; B = rotl(B, 12);
  A += B; D ^= A; D = rotl(D, 8);
  C += D; B ^= C; B = rotl(B, 7);
}

std::uint32_t load32(const std::uint8_t* p) noexcept {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) | (std::uint32_t(p[2]) << 16) |
         (std::uint32_t(p[3]) << 24);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                   std::uint32_t counter) {
  if (key.size() != 32) throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  if (nonce.size() != 12) throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[static_cast<std::size_t>(4 + i)] = load32(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[static_cast<std::size_t>(13 + i)] = load32(nonce.data() + 4 * i);
}

void ChaCha20::refill() noexcept {
  std::array<std::uint32_t, 16> working = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(working, 0, 4, 8, 12);
    quarter_round(working, 1, 5, 9, 13);
    quarter_round(working, 2, 6, 10, 14);
    quarter_round(working, 3, 7, 11, 15);
    quarter_round(working, 0, 5, 10, 15);
    quarter_round(working, 1, 6, 11, 12);
    quarter_round(working, 2, 7, 8, 13);
    quarter_round(working, 3, 4, 9, 14);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = working[i] + state_[i];
    block_[4 * i] = static_cast<std::uint8_t>(v);
    block_[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    block_[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    block_[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];  // block counter
  block_used_ = 0;
}

void ChaCha20::apply(std::span<std::uint8_t> data) noexcept {
  for (std::uint8_t& byte : data) {
    if (block_used_ == 64) refill();
    byte ^= block_[block_used_++];
  }
}

std::vector<std::uint8_t> ChaCha20::transform(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  apply(out);
  return out;
}

}  // namespace ev::security
