#include "ev/security/hmac.h"

#include <algorithm>
#include <stdexcept>

namespace ev::security {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k_block{};
  if (key.size() > kBlock) {
    const Digest d = Sha256::hash(key);
    std::copy(d.begin(), d.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }
  std::array<std::uint8_t, kBlock> ipad;
  std::array<std::uint8_t, kBlock> opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Key derive_key(std::span<const std::uint8_t> master, std::span<const std::uint8_t> context,
               std::size_t length) {
  if (length > 32) throw std::invalid_argument("derive_key: length must be <= 32");
  std::vector<std::uint8_t> info(context.begin(), context.end());
  info.push_back(0x01);
  const Digest d = hmac_sha256(master, info);
  return Key(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(length));
}

}  // namespace ev::security
