#include "ev/security/charging.h"

#include <algorithm>
#include <cstring>

namespace ev::security {

namespace {

std::vector<std::uint8_t> encode_double_le(double v) {
  std::vector<std::uint8_t> out(sizeof(double));
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}

double decode_double_le(const std::vector<std::uint8_t>& data) {
  double v = 0.0;
  if (data.size() >= sizeof(double)) std::memcpy(&v, data.data(), sizeof(double));
  return v;
}

/// Meter report body: 4-byte sequence number + 8-byte energy value. The
/// sequence number is what lets an authenticated receiver reject replays.
std::vector<std::uint8_t> encode_meter(std::uint32_t seq, double kwh) {
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
  const auto e = encode_double_le(kwh);
  out.insert(out.end(), e.begin(), e.end());
  return out;
}

void decode_meter(const std::vector<std::uint8_t>& body, std::uint32_t* seq, double* kwh) {
  *seq = 0;
  *kwh = 0.0;
  if (body.size() < 12) return;
  for (int i = 0; i < 4; ++i) *seq |= static_cast<std::uint32_t>(body[static_cast<std::size_t>(i)]) << (8 * i);
  std::memcpy(kwh, body.data() + 4, sizeof(double));
}

std::vector<std::uint8_t> mac_input(const ChargeMessage& msg) {
  std::vector<std::uint8_t> in;
  in.push_back(static_cast<std::uint8_t>(msg.type));
  in.insert(in.end(), msg.body.begin(), msg.body.end());
  return in;
}

void sign(ChargeMessage& msg, const Key& key) {
  const Digest d = hmac_sha256(key, mac_input(msg));
  msg.tag.assign(d.begin(), d.begin() + 16);
}

bool verify(const ChargeMessage& msg, const Key& key) {
  if (msg.tag.size() != 16) return false;
  const Digest d = hmac_sha256(key, mac_input(msg));
  return constant_time_equal(msg.tag,
                             std::span<const std::uint8_t>(d.data(), 16));
}

}  // namespace

std::vector<ChargeMessage> MitmAttacker::intercept(const ChargeMessage& msg) {
  std::vector<ChargeMessage> out;
  switch (attack_) {
    case Attack::kNone:
      out.push_back(msg);
      break;
    case Attack::kInflateBilling: {
      ChargeMessage m = msg;
      if (m.type == ChargeMessage::Type::kMeterReport && m.body.size() >= 12) {
        // Triple the metered energy in place (sequence number untouched);
        // the tag (if any) no longer matches the body.
        double metered = 0.0;
        std::memcpy(&metered, m.body.data() + 4, sizeof(double));
        metered *= 3.0;
        std::memcpy(m.body.data() + 4, &metered, sizeof(double));
        ++tampered_;
      }
      out.push_back(std::move(m));
      break;
    }
    case Attack::kInjectV2g: {
      out.push_back(msg);
      if (msg.type == ChargeMessage::Type::kMeterReport) {
        // Ride along each meter report with a forged discharge command.
        ChargeMessage forged;
        forged.type = ChargeMessage::Type::kV2gCommand;
        forged.body = encode_double_le(-50.0);  // demand 50 kW discharge
        out.push_back(std::move(forged));
        ++tampered_;
      }
      break;
    }
    case Attack::kReplayMeter: {
      out.push_back(msg);
      if (msg.type == ChargeMessage::Type::kMeterReport) {
        if (!captured_meter_) {
          captured_meter_ = msg;  // capture the first report...
        } else {
          out.push_back(*captured_meter_);  // ...and replay it from then on
          ++tampered_;
        }
      }
      break;
    }
  }
  return out;
}

SessionOutcome run_charging_session(const Key& credential, const ChargingConfig& config,
                                    MitmAttacker& attacker, double power_kw,
                                    double duration_s, util::Rng& rng) {
  SessionOutcome outcome;

  // Session keys: both sides derive from the provisioned credential.
  const std::vector<std::uint8_t> context = {'c', 'h', 'g'};
  const Key session_key = derive_key(credential, context);

  // --- Challenge-response mutual authentication ([36]) ----------------------
  if (config.authenticate) {
    std::vector<std::uint8_t> challenge(16);
    for (auto& b : challenge) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    // Vehicle answers HMAC(session_key, challenge); the station verifies.
    const Digest answer = hmac_sha256(session_key, challenge);
    const Digest expected = hmac_sha256(session_key, challenge);
    if (!constant_time_equal(answer, expected)) {
      outcome.abort_reason = "authentication failed";
      return outcome;
    }
    outcome.authenticated = true;
  }

  // --- Energy transfer with periodic metering ---------------------------------
  // The vehicle meters delivered energy and reports increments with a signed
  // sequence number. The authenticated station rejects bad tags (tampering)
  // and stale sequence numbers (replays); without authentication every
  // message on the wire is believed — the legacy scheme the paper warns
  // about.
  double delivered_kwh = 0.0;
  double billed_kwh = 0.0;
  const int reports = std::max(1, static_cast<int>(duration_s / config.meter_period_s));
  const double kwh_per_report = power_kw * config.meter_period_s / 3600.0;
  std::uint32_t last_seq = 0;

  for (int k = 0; k < reports; ++k) {
    delivered_kwh += kwh_per_report;
    ChargeMessage report;
    report.type = ChargeMessage::Type::kMeterReport;
    report.body = encode_meter(static_cast<std::uint32_t>(k + 1), kwh_per_report);
    if (config.authenticate) sign(report, session_key);

    for (const ChargeMessage& on_wire : attacker.intercept(report)) {
      if (config.authenticate && !verify(on_wire, session_key)) {
        ++outcome.rejected_messages;
        continue;
      }
      switch (on_wire.type) {
        case ChargeMessage::Type::kMeterReport: {
          std::uint32_t seq = 0;
          double kwh = 0.0;
          decode_meter(on_wire.body, &seq, &kwh);
          if (config.authenticate) {
            if (seq <= last_seq) {
              ++outcome.rejected_messages;  // replayed or reordered
              break;
            }
            last_seq = seq;
          }
          billed_kwh += kwh;
          break;
        }
        case ChargeMessage::Type::kV2gCommand:
          ++outcome.accepted_v2g_commands;
          break;
        default:
          break;
      }
    }
  }

  outcome.completed = true;
  outcome.billed_kwh = billed_kwh;
  outcome.delivered_kwh = delivered_kwh;
  return outcome;
}

}  // namespace ev::security
