/// \file hmac.h
/// HMAC-SHA-256 (RFC 2104), constant-time tag comparison, and a minimal
/// HKDF-style key derivation — the authentication primitives behind secure
/// in-vehicle communication and the charging challenge-response ([36]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ev/security/sha256.h"

namespace ev::security {

/// A symmetric key (arbitrary length; 32 bytes recommended).
using Key = std::vector<std::uint8_t>;

/// HMAC-SHA-256 of \p message under \p key.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

/// Constant-time equality of two byte strings (length leak only). Unequal
/// lengths compare false.
[[nodiscard]] bool constant_time_equal(std::span<const std::uint8_t> a,
                                       std::span<const std::uint8_t> b) noexcept;

/// Derives a sub-key from \p master bound to \p context (HKDF-expand-style,
/// single block): HMAC(master, context || 0x01) truncated to \p length
/// (max 32).
[[nodiscard]] Key derive_key(std::span<const std::uint8_t> master,
                             std::span<const std::uint8_t> context,
                             std::size_t length = 32);

}  // namespace ev::security
