/// \file secure_channel.h
/// Authenticated (and optionally encrypted) communication between ECUs.
/// Each protected message carries a monotonic counter (replay protection)
/// and a truncated HMAC tag. The per-frame overhead is what makes classic
/// CAN — with its 8-byte payload — "unsuitable for a secure communication"
/// per the paper, while Ethernet absorbs it easily; experiment E11
/// quantifies this.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ev/security/chacha20.h"
#include "ev/security/hmac.h"

namespace ev::security {

/// Channel configuration.
struct ChannelConfig {
  std::size_t tag_bytes = 8;      ///< Truncated MAC length (4..32).
  std::size_t counter_bytes = 4;  ///< Freshness counter length on the wire.
  bool encrypt = true;            ///< Encrypt payload with ChaCha20.
};

/// Result of unprotect().
enum class ChannelStatus {
  kOk,
  kBadTag,       ///< Authentication failed (tampered or wrong key).
  kReplayed,     ///< Counter not fresh.
  kMalformed,    ///< Too short to contain header + tag.
};

/// One endpoint of a bidirectional secure channel. Both endpoints derive
/// directional keys from the shared master; the sender counter provides
/// nonce uniqueness and replay protection.
class SecureChannel {
 public:
  /// \p master_key is the pre-shared or session key; \p channel_id binds the
  /// derived keys to this logical channel.
  SecureChannel(Key master_key, std::uint32_t channel_id, ChannelConfig config = {});

  /// Protects \p plaintext into a wire message: counter || ciphertext || tag.
  [[nodiscard]] std::vector<std::uint8_t> protect(std::span<const std::uint8_t> plaintext);

  /// Verifies and decrypts a wire message produced by the peer's protect().
  /// On success returns the plaintext and advances the replay window.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> unprotect(
      std::span<const std::uint8_t> wire, ChannelStatus* status = nullptr);

  /// Bytes added to every message (counter + tag).
  [[nodiscard]] std::size_t overhead_bytes() const noexcept {
    return config_.counter_bytes + config_.tag_bytes;
  }
  /// Largest plaintext that fits a frame of \p frame_payload bytes; nullopt
  /// when the overhead alone exceeds the frame (the CAN case).
  [[nodiscard]] std::optional<std::size_t> max_plaintext(std::size_t frame_payload) const;

  /// Messages rejected so far, by reason.
  [[nodiscard]] std::uint64_t rejected_bad_tag() const noexcept { return bad_tag_; }
  [[nodiscard]] std::uint64_t rejected_replayed() const noexcept { return replayed_; }

 private:
  [[nodiscard]] Digest tag_of(std::uint64_t counter,
                              std::span<const std::uint8_t> ciphertext) const;
  [[nodiscard]] std::vector<std::uint8_t> crypt(std::uint64_t counter,
                                                std::span<const std::uint8_t> data) const;

  ChannelConfig config_;
  Key send_key_;
  Key recv_key_;   // same as send key: both directions share a key in this
                   // model; directional separation comes from the counter id
  Key mac_key_;
  std::uint64_t send_counter_ = 0;
  std::uint64_t highest_received_ = 0;
  std::uint64_t bad_tag_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace ev::security
