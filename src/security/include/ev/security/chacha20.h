/// \file chacha20.h
/// ChaCha20 stream cipher (RFC 8439), implemented from scratch: the
/// encryption half of the authenticated secure channel. Chosen over a block
/// cipher for its simplicity and constant-time software profile — properties
/// that matter on automotive-grade microcontrollers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ev::security {

/// ChaCha20 keystream generator / XOR cipher.
class ChaCha20 {
 public:
  /// \p key is 32 bytes, \p nonce 12 bytes, \p counter the initial block
  /// counter (RFC 8439 layout).
  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t counter = 1);

  /// Encrypts (== decrypts) \p data in place by XOR with the keystream.
  void apply(std::span<std::uint8_t> data) noexcept;

  /// Convenience: returns the transformed copy of \p data.
  [[nodiscard]] std::vector<std::uint8_t> transform(std::span<const std::uint8_t> data);

 private:
  void refill() noexcept;

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_{};
  std::size_t block_used_ = 64;  // force refill on first use
};

}  // namespace ev::security
