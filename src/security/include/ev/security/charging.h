/// \file charging.h
/// Charging-plug communication security ([35],[36]): the paper's concrete
/// EV-specific threat is a man-in-the-middle on the connector between car
/// and charging station (billing fraud, malicious V2G commands). This module
/// implements the charging session protocol with optional challenge-response
/// mutual authentication and an active attacker model, so experiment E11
/// can demonstrate which attacks succeed with and without the defence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ev/security/hmac.h"
#include "ev/util/rng.h"

namespace ev::security {

/// A message on the charging connector's communication pair.
struct ChargeMessage {
  enum class Type : std::uint8_t {
    kSessionStart,
    kChallenge,
    kChallengeResponse,
    kMeterReport,   ///< Periodic energy accounting (basis for billing).
    kV2gCommand,    ///< Grid-initiated power setpoint.
    kSessionEnd,
  };
  Type type = Type::kSessionStart;
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> tag;  ///< HMAC over type||body (empty if unauthenticated).
};

/// Protocol configuration shared by both endpoints.
struct ChargingConfig {
  bool authenticate = true;      ///< Run challenge-response + per-message MACs.
  double meter_period_s = 1.0;   ///< Metering report interval.
};

/// Outcome of a completed (or aborted) session.
struct SessionOutcome {
  bool completed = false;
  bool authenticated = false;
  double billed_kwh = 0.0;          ///< What the station will invoice.
  double delivered_kwh = 0.0;       ///< Ground truth delivered energy.
  std::size_t rejected_messages = 0;  ///< Messages dropped by MAC/freshness checks.
  std::size_t accepted_v2g_commands = 0;
  std::string abort_reason;
};

/// The attacker sitting on the connector. Pass-through unless an attack is
/// armed.
class MitmAttacker {
 public:
  enum class Attack {
    kNone,
    kInflateBilling,  ///< Multiply reported meter values.
    kInjectV2g,       ///< Inject a grid discharge command.
    kReplayMeter,     ///< Replay a captured meter report.
  };

  explicit MitmAttacker(Attack attack = Attack::kNone) noexcept : attack_(attack) {}

  /// Applies the armed attack to a message in transit (either direction).
  /// Returns the possibly modified message plus any injected extras.
  [[nodiscard]] std::vector<ChargeMessage> intercept(const ChargeMessage& msg);

  [[nodiscard]] Attack attack() const noexcept { return attack_; }
  /// Messages the attacker tampered with or injected.
  [[nodiscard]] std::size_t tampered() const noexcept { return tampered_; }

 private:
  Attack attack_;
  std::size_t tampered_ = 0;
  std::optional<ChargeMessage> captured_meter_;
};

/// Runs a complete charging session of \p duration_s at \p power_kw between
/// a vehicle and a station sharing \p credential (provisioned key material),
/// with \p attacker on the wire. Returns the station-side outcome.
///
/// With authentication on, tampered/injected/replayed messages fail their
/// MAC or freshness check and are rejected; billing then matches delivery.
/// Without it, the armed attack succeeds.
[[nodiscard]] SessionOutcome run_charging_session(const Key& credential,
                                                  const ChargingConfig& config,
                                                  MitmAttacker& attacker, double power_kw,
                                                  double duration_s, util::Rng& rng);

}  // namespace ev::security
