/// \file sha256.h
/// SHA-256 (FIPS 180-4), implemented from scratch for the security layer of
/// Section 4.2: message authentication on the in-vehicle network and the
/// charging-plug challenge-response both build on it via HMAC.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ev::security {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs \p data.
  void update(std::span<const std::uint8_t> data) noexcept;

  /// Finalizes and returns the digest. The hasher must not be reused after.
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ev::security
