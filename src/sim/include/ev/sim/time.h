/// \file time.h
/// Simulation time as a strong integer type with nanosecond resolution.
/// Integer time makes event ordering exact (no floating-point ties) — a
/// prerequisite for deterministic time-triggered schedules, which the paper
/// identifies as the basis of next-generation EV architectures.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ev::sim {

/// A point in (or duration of) simulation time, in integer nanoseconds.
/// Supports the usual affine arithmetic; factory functions convert from
/// engineering units.
class Time {
 public:
  /// Zero time.
  constexpr Time() noexcept = default;

  /// Duration of \p n nanoseconds.
  [[nodiscard]] static constexpr Time ns(std::int64_t n) noexcept { return Time{n}; }
  /// Duration of \p n microseconds.
  [[nodiscard]] static constexpr Time us(std::int64_t n) noexcept { return Time{n * 1000}; }
  /// Duration of \p n milliseconds.
  [[nodiscard]] static constexpr Time ms(std::int64_t n) noexcept { return Time{n * 1'000'000}; }
  /// Duration of \p n whole seconds.
  [[nodiscard]] static constexpr Time s(std::int64_t n) noexcept {
    return Time{n * 1'000'000'000};
  }
  /// Duration of \p sec fractional seconds, rounded to the nearest ns.
  [[nodiscard]] static constexpr Time seconds(double sec) noexcept {
    return Time{static_cast<std::int64_t>(sec * 1e9 + (sec >= 0 ? 0.5 : -0.5))};
  }
  /// The largest representable time; used as "never".
  [[nodiscard]] static constexpr Time max() noexcept {
    return Time{INT64_MAX};
  }

  /// Raw nanosecond count.
  [[nodiscard]] constexpr std::int64_t count_ns() const noexcept { return ns_; }
  /// Value in fractional seconds.
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  /// Value in fractional milliseconds.
  [[nodiscard]] constexpr double to_ms() const noexcept {
    return static_cast<double>(ns_) * 1e-6;
  }
  /// Value in fractional microseconds.
  [[nodiscard]] constexpr double to_us() const noexcept {
    return static_cast<double>(ns_) * 1e-3;
  }

  constexpr auto operator<=>(const Time&) const noexcept = default;

  constexpr Time& operator+=(Time rhs) noexcept {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) noexcept {
    ns_ -= rhs.ns_;
    return *this;
  }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) noexcept {
    return Time{a.ns_ + b.ns_};
  }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) noexcept {
    return Time{a.ns_ - b.ns_};
  }
  [[nodiscard]] friend constexpr Time operator*(Time a, std::int64_t k) noexcept {
    return Time{a.ns_ * k};
  }
  [[nodiscard]] friend constexpr Time operator*(std::int64_t k, Time a) noexcept {
    return Time{a.ns_ * k};
  }
  /// Integer division: how many whole multiples of \p b fit into \p a.
  [[nodiscard]] friend constexpr std::int64_t operator/(Time a, Time b) noexcept {
    return a.ns_ / b.ns_;
  }
  /// Remainder of a modulo b (both as durations).
  [[nodiscard]] friend constexpr Time operator%(Time a, Time b) noexcept {
    return Time{a.ns_ % b.ns_};
  }

  /// Human-readable rendering with an auto-selected unit (ns/us/ms/s).
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace ev::sim
