/// \file trace.h
/// Time-stamped sample recording for simulation signals (cell voltages,
/// phase currents, bus latencies). Traces feed the statistics and table
/// rendering in the benchmark harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ev/sim/time.h"
#include "ev/util/stats.h"

namespace ev::sim {

/// One recorded observation of a scalar signal.
struct TracePoint {
  Time at;       ///< Simulation time of the observation.
  double value;  ///< Observed value in the signal's unit.
};

/// Append-only scalar signal trace with summary statistics.
class Trace {
 public:
  /// Creates a trace labelled \p name (unit-bearing, e.g. "cell0.voltage [V]").
  explicit Trace(std::string name = {}) : name_(std::move(name)) {}

  /// Records \p value at time \p at.
  void record(Time at, double value) {
    points_.push_back(TracePoint{at, value});
    stats_.add(value);
  }

  /// Signal label.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// All recorded points in time order (record() must be called in order).
  [[nodiscard]] const std::vector<TracePoint>& points() const noexcept { return points_; }
  /// Number of recorded points.
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  /// True when nothing has been recorded.
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  /// Streaming statistics over all recorded values.
  [[nodiscard]] const util::RunningStats& stats() const noexcept { return stats_; }
  /// Last recorded value; throws when empty.
  [[nodiscard]] double last() const { return points_.at(points_.size() - 1).value; }

  /// Linear interpolation of the signal at time \p at; clamps outside the
  /// recorded range. Throws when empty.
  [[nodiscard]] double sample_at(Time at) const;

 private:
  std::string name_;
  std::vector<TracePoint> points_;
  util::RunningStats stats_;
};

}  // namespace ev::sim
